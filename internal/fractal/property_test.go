package fractal

import (
	"testing"
	"testing/quick"
)

// TestPropertyLifecycleStateMachine drives random Start/Stop/Add/Remove
// sequences over a small component forest and checks the invariants the
// deployer relies on:
//
//   - a component is Started iff its last successful lifecycle op was
//     Start;
//   - Remove never succeeds on a started child;
//   - a composite's Stop leaves every descendant stopped;
//   - operations that error leave states unchanged.
func TestPropertyLifecycleStateMachine(t *testing.T) {
	f := func(ops []uint8) bool {
		root, err := NewComposite("root")
		if err != nil {
			return false
		}
		kids := make([]*Component, 4)
		for i := range kids {
			c, err := NewPrimitive(string(rune('a'+i)), nil)
			if err != nil {
				return false
			}
			kids[i] = c
		}
		inRoot := make([]bool, len(kids))
		want := make([]State, len(kids)) // expected state per kid
		wantRoot := Stopped

		snapshot := func() bool {
			if root.State() != wantRoot {
				return false
			}
			for i, c := range kids {
				if c.State() != want[i] {
					return false
				}
				if inRoot[i] != (c.Parent() == root) {
					return false
				}
			}
			return true
		}

		for _, op := range ops {
			i := int(op>>2) % len(kids)
			c := kids[i]
			switch op % 5 {
			case 0: // start child
				err := c.Start()
				if (err == nil) != (want[i] == Stopped) {
					return false
				}
				if err == nil {
					want[i] = Started
				}
			case 1: // stop child
				err := c.Stop()
				if (err == nil) != (want[i] == Started) {
					return false
				}
				if err == nil {
					want[i] = Stopped
				}
			case 2: // add to root
				err := root.Add(c)
				if (err == nil) != !inRoot[i] {
					return false
				}
				if err == nil {
					inRoot[i] = true
				}
			case 3: // remove from root
				_, err := root.Remove(c.Name())
				canRemove := inRoot[i] && want[i] == Stopped
				if (err == nil) != canRemove {
					return false
				}
				if err == nil {
					inRoot[i] = false
				}
			case 4: // toggle root lifecycle
				if wantRoot == Stopped {
					if err := root.Start(); err != nil {
						return false
					}
					wantRoot = Started
					for j := range kids {
						if inRoot[j] {
							want[j] = Started
						}
					}
				} else {
					if err := root.Stop(); err != nil {
						return false
					}
					wantRoot = Stopped
					for j := range kids {
						if inRoot[j] {
							want[j] = Stopped
						}
					}
				}
			}
			if !snapshot() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
