// Package fractal implements the Fractal component model (§3.1 of the
// paper; Bruneton, Coupaye, Stefani — WCOP'02) as used by Jade: run-time
// components with named server/client interfaces, primitive bindings
// between interfaces, composite components encapsulating subcomponents,
// and per-component controllers (attribute, binding, content, lifecycle,
// name) that give management programs introspection and reconfiguration
// over a running architecture.
//
// A component's *content* is the object it encapsulates — for Jade, a
// wrapper around a legacy server. Content objects may implement the
// optional hook interfaces (LifecycleHandler, AttributeHandler,
// BindHandler) to reflect control operations onto the legacy layer; a
// component with no content is a pure architectural node.
package fractal

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Errors returned by the component model.
var (
	ErrNoSuchInterface  = errors.New("fractal: no such interface")
	ErrNoSuchAttribute  = errors.New("fractal: no such attribute")
	ErrNoSuchChild      = errors.New("fractal: no such subcomponent")
	ErrAlreadyBound     = errors.New("fractal: interface already bound")
	ErrNotBound         = errors.New("fractal: interface not bound")
	ErrRoleMismatch     = errors.New("fractal: interface role mismatch")
	ErrSignatureClash   = errors.New("fractal: interface signatures differ")
	ErrNotStopped       = errors.New("fractal: component must be stopped")
	ErrNotStarted       = errors.New("fractal: component is not started")
	ErrAlreadyStarted   = errors.New("fractal: component already started")
	ErrMandatoryUnbound = errors.New("fractal: mandatory client interface unbound")
	ErrNotComposite     = errors.New("fractal: not a composite component")
	ErrDuplicateChild   = errors.New("fractal: duplicate subcomponent name")
	ErrHasParent        = errors.New("fractal: component already has a parent")
	ErrDuplicateItf     = errors.New("fractal: duplicate interface name")
)

// Role distinguishes server (incoming) from client (outgoing) interfaces.
type Role int

// Interface roles.
const (
	Server Role = iota
	Client
)

func (r Role) String() string {
	if r == Server {
		return "server"
	}
	return "client"
}

// Contingency marks whether a client interface must be bound for the
// component to start.
type Contingency int

// Contingency values.
const (
	Mandatory Contingency = iota
	Optional
)

// State is a component lifecycle state.
type State int

// Lifecycle states.
const (
	Stopped State = iota
	Started
)

func (s State) String() string {
	if s == Started {
		return "STARTED"
	}
	return "STOPPED"
}

// Interface is an access point to a component.
type Interface struct {
	name      string
	signature string
	role      Role
	cont      Contingency
	// collection interfaces accept any number of simultaneous bindings
	// (e.g. a load balancer's "workers" client interface).
	collection bool
	// dynamic client interfaces may be re-bound while the component is
	// started (the load balancers support live reconfiguration; Apache's
	// AJP binding does not — it requires a stop/edit/start cycle).
	dynamic bool
	owner   *Component
}

// Name returns the interface name.
func (i *Interface) Name() string { return i.name }

// Signature returns the interface type name; bindings require equality.
func (i *Interface) Signature() string { return i.signature }

// Role returns server or client.
func (i *Interface) Role() Role { return i.role }

// Owner returns the component exposing this interface.
func (i *Interface) Owner() *Component { return i.owner }

// Collection reports whether the interface accepts multiple bindings.
func (i *Interface) Collection() bool { return i.collection }

// Dynamic reports whether the interface may be re-bound while started.
func (i *Interface) Dynamic() bool { return i.dynamic }

// String renders "component.interface".
func (i *Interface) String() string { return i.owner.Name() + "." + i.name }

// ItfSpec declares one interface at component creation.
type ItfSpec struct {
	Name        string
	Signature   string
	Role        Role
	Contingency Contingency
	Collection  bool
	Dynamic     bool
}

// Binding is one primitive binding between a client and a server
// interface.
type Binding struct {
	ClientItf *Interface
	ServerItf *Interface
}

// Content hook interfaces — implemented by wrappers to reflect component
// operations onto the managed legacy software.

// LifecycleHandler receives start/stop operations.
type LifecycleHandler interface {
	OnStart(c *Component) error
	OnStop(c *Component) error
}

// AttributeHandler receives attribute writes (after validation).
type AttributeHandler interface {
	OnSetAttribute(c *Component, name, value string) error
}

// BindHandler receives bind/unbind operations on client interfaces.
type BindHandler interface {
	OnBind(c *Component, itf string, server *Interface) error
	OnUnbind(c *Component, itf string, server *Interface) error
}

// Component is a Fractal component: primitive (content, no children) or
// composite (children).
type Component struct {
	name      string
	composite bool
	content   any
	itfs      map[string]*Interface
	itfOrder  []string
	bindings  map[string][]*Binding
	attrs     map[string]string
	attrOrder []string
	parent    *Component
	children  map[string]*Component
	childSeq  []string
	state     State
}

// NewPrimitive creates a primitive component encapsulating content
// (possibly nil) with the declared interfaces.
func NewPrimitive(name string, content any, itfs ...ItfSpec) (*Component, error) {
	return newComponent(name, false, content, itfs)
}

// NewComposite creates a composite component with the declared interfaces.
func NewComposite(name string, itfs ...ItfSpec) (*Component, error) {
	return newComponent(name, true, nil, itfs)
}

func newComponent(name string, composite bool, content any, itfs []ItfSpec) (*Component, error) {
	if name == "" {
		return nil, errors.New("fractal: component with empty name")
	}
	c := &Component{
		name:      name,
		composite: composite,
		content:   content,
		itfs:      make(map[string]*Interface),
		bindings:  make(map[string][]*Binding),
		attrs:     make(map[string]string),
		children:  make(map[string]*Component),
	}
	for _, spec := range itfs {
		if spec.Name == "" {
			return nil, fmt.Errorf("fractal: component %s: interface with empty name", name)
		}
		if _, dup := c.itfs[spec.Name]; dup {
			return nil, fmt.Errorf("%w: %s.%s", ErrDuplicateItf, name, spec.Name)
		}
		c.itfs[spec.Name] = &Interface{
			name:       spec.Name,
			signature:  spec.Signature,
			role:       spec.Role,
			cont:       spec.Contingency,
			collection: spec.Collection,
			dynamic:    spec.Dynamic,
			owner:      c,
		}
		c.itfOrder = append(c.itfOrder, spec.Name)
	}
	return c, nil
}

// --- Name controller ---

// Name returns the component name.
func (c *Component) Name() string { return c.name }

// Path returns the slash-separated path from the root composite.
func (c *Component) Path() string {
	if c.parent == nil {
		return c.name
	}
	return c.parent.Path() + "/" + c.name
}

// Composite reports whether the component is composite.
func (c *Component) Composite() bool { return c.composite }

// Content returns the encapsulated content object.
func (c *Component) Content() any { return c.content }

// --- Interface introspection ---

// Interface returns the named interface.
func (c *Component) Interface(name string) (*Interface, error) {
	itf, ok := c.itfs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchInterface, c.name, name)
	}
	return itf, nil
}

// MustInterface returns the named interface or panics; for wiring code
// whose interface names are static.
func (c *Component) MustInterface(name string) *Interface {
	itf, err := c.Interface(name)
	if err != nil {
		panic(err)
	}
	return itf
}

// Interfaces returns the component's interfaces in declaration order.
func (c *Component) Interfaces() []*Interface {
	out := make([]*Interface, 0, len(c.itfOrder))
	for _, n := range c.itfOrder {
		out = append(out, c.itfs[n])
	}
	return out
}

// --- Attribute controller ---

// SetAttribute sets a configurable property, invoking the content's
// AttributeHandler so the change is reflected into the legacy layer.
func (c *Component) SetAttribute(name, value string) error {
	if name == "" {
		return errors.New("fractal: empty attribute name")
	}
	if h, ok := c.content.(AttributeHandler); ok {
		if err := h.OnSetAttribute(c, name, value); err != nil {
			return err
		}
	}
	if _, exists := c.attrs[name]; !exists {
		c.attrOrder = append(c.attrOrder, name)
	}
	c.attrs[name] = value
	return nil
}

// Attribute returns an attribute value.
func (c *Component) Attribute(name string) (string, error) {
	v, ok := c.attrs[name]
	if !ok {
		return "", fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, c.name, name)
	}
	return v, nil
}

// AttributeOr returns the attribute or a default when unset.
func (c *Component) AttributeOr(name, def string) string {
	if v, ok := c.attrs[name]; ok {
		return v
	}
	return def
}

// Attributes returns attribute names in first-set order.
func (c *Component) Attributes() []string {
	return append([]string(nil), c.attrOrder...)
}

// --- Binding controller ---

// Bind establishes a primitive binding from this component's client
// interface to a server interface of another component. Non-dynamic
// interfaces require the component to be stopped.
func (c *Component) Bind(clientItf string, server *Interface) error {
	itf, err := c.Interface(clientItf)
	if err != nil {
		return err
	}
	if itf.role != Client {
		return fmt.Errorf("%w: %s is a server interface", ErrRoleMismatch, itf)
	}
	if server == nil {
		return fmt.Errorf("fractal: binding %s to nil interface", itf)
	}
	if server.role != Server {
		return fmt.Errorf("%w: %s is not a server interface", ErrRoleMismatch, server)
	}
	if itf.signature != server.signature {
		return fmt.Errorf("%w: %s(%s) vs %s(%s)", ErrSignatureClash,
			itf, itf.signature, server, server.signature)
	}
	if !itf.dynamic && c.state == Started {
		return fmt.Errorf("%w: bind %s while started", ErrNotStopped, itf)
	}
	existing := c.bindings[clientItf]
	if !itf.collection && len(existing) > 0 {
		return fmt.Errorf("%w: %s", ErrAlreadyBound, itf)
	}
	for _, b := range existing {
		if b.ServerItf == server {
			return fmt.Errorf("%w: %s to %s", ErrAlreadyBound, itf, server)
		}
	}
	if h, ok := c.content.(BindHandler); ok {
		if err := h.OnBind(c, clientItf, server); err != nil {
			return err
		}
	}
	c.bindings[clientItf] = append(existing, &Binding{ClientItf: itf, ServerItf: server})
	return nil
}

// Unbind removes the binding of a client interface. For collection
// interfaces, server selects which binding; for singleton interfaces a
// nil server removes the only binding.
func (c *Component) Unbind(clientItf string, server *Interface) error {
	itf, err := c.Interface(clientItf)
	if err != nil {
		return err
	}
	if itf.role != Client {
		return fmt.Errorf("%w: %s is a server interface", ErrRoleMismatch, itf)
	}
	if !itf.dynamic && c.state == Started {
		return fmt.Errorf("%w: unbind %s while started", ErrNotStopped, itf)
	}
	existing := c.bindings[clientItf]
	if len(existing) == 0 {
		return fmt.Errorf("%w: %s", ErrNotBound, itf)
	}
	idx := -1
	if server == nil {
		if len(existing) > 1 {
			return fmt.Errorf("fractal: %s has %d bindings; specify which to unbind", itf, len(existing))
		}
		idx = 0
	} else {
		for i, b := range existing {
			if b.ServerItf == server {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("%w: %s to %s", ErrNotBound, itf, server)
		}
	}
	target := existing[idx]
	if h, ok := c.content.(BindHandler); ok {
		if err := h.OnUnbind(c, clientItf, target.ServerItf); err != nil {
			return err
		}
	}
	c.bindings[clientItf] = append(existing[:idx], existing[idx+1:]...)
	return nil
}

// Bindings returns the current bindings of a client interface.
func (c *Component) Bindings(clientItf string) []*Binding {
	return append([]*Binding(nil), c.bindings[clientItf]...)
}

// BoundTo returns the single server interface bound to a singleton client
// interface, or nil when unbound.
func (c *Component) BoundTo(clientItf string) *Interface {
	bs := c.bindings[clientItf]
	if len(bs) == 0 {
		return nil
	}
	return bs[0].ServerItf
}

// --- Content controller (composites) ---

// Add inserts a subcomponent into a composite.
func (c *Component) Add(child *Component) error {
	if !c.composite {
		return fmt.Errorf("%w: %s", ErrNotComposite, c.name)
	}
	if child.parent != nil {
		return fmt.Errorf("%w: %s is inside %s", ErrHasParent, child.name, child.parent.name)
	}
	if _, dup := c.children[child.name]; dup {
		return fmt.Errorf("%w: %s in %s", ErrDuplicateChild, child.name, c.name)
	}
	c.children[child.name] = child
	c.childSeq = append(c.childSeq, child.name)
	child.parent = c
	return nil
}

// Remove extracts a subcomponent from a composite. The child must be
// stopped.
func (c *Component) Remove(name string) (*Component, error) {
	if !c.composite {
		return nil, fmt.Errorf("%w: %s", ErrNotComposite, c.name)
	}
	child, ok := c.children[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s in %s", ErrNoSuchChild, name, c.name)
	}
	if child.state == Started {
		return nil, fmt.Errorf("%w: remove %s while started", ErrNotStopped, name)
	}
	delete(c.children, name)
	for i, n := range c.childSeq {
		if n == name {
			c.childSeq = append(c.childSeq[:i], c.childSeq[i+1:]...)
			break
		}
	}
	child.parent = nil
	return child, nil
}

// Child returns a direct subcomponent by name.
func (c *Component) Child(name string) (*Component, error) {
	child, ok := c.children[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s in %s", ErrNoSuchChild, name, c.name)
	}
	return child, nil
}

// Children returns direct subcomponents in insertion order.
func (c *Component) Children() []*Component {
	out := make([]*Component, 0, len(c.childSeq))
	for _, n := range c.childSeq {
		out = append(out, c.children[n])
	}
	return out
}

// Parent returns the enclosing composite, or nil at the root.
func (c *Component) Parent() *Component { return c.parent }

// Find resolves a slash-separated path relative to this component.
func (c *Component) Find(path string) (*Component, error) {
	cur := c
	for _, seg := range strings.Split(path, "/") {
		if seg == "" {
			continue
		}
		next, err := cur.Child(seg)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// Visit walks the component tree depth-first (this component included).
func (c *Component) Visit(fn func(*Component)) {
	fn(c)
	for _, name := range c.childSeq {
		c.children[name].Visit(fn)
	}
}

// --- Lifecycle controller ---

// State returns the lifecycle state.
func (c *Component) State() State { return c.state }

// Start starts the component: mandatory client interfaces must be bound;
// the content's LifecycleHandler runs first; for composites, children
// start in insertion order afterwards. On a child failure, already
// started children are stopped again (best effort).
func (c *Component) Start() error {
	if c.state == Started {
		return fmt.Errorf("%w: %s", ErrAlreadyStarted, c.name)
	}
	for _, n := range c.itfOrder {
		itf := c.itfs[n]
		if itf.role == Client && itf.cont == Mandatory && len(c.bindings[n]) == 0 {
			return fmt.Errorf("%w: %s", ErrMandatoryUnbound, itf)
		}
	}
	if h, ok := c.content.(LifecycleHandler); ok {
		if err := h.OnStart(c); err != nil {
			return fmt.Errorf("fractal: starting %s: %w", c.name, err)
		}
	}
	var started []*Component
	for _, n := range c.childSeq {
		child := c.children[n]
		if child.state == Started {
			continue
		}
		if err := child.Start(); err != nil {
			for i := len(started) - 1; i >= 0; i-- {
				_ = started[i].Stop()
			}
			if h, ok := c.content.(LifecycleHandler); ok {
				_ = h.OnStop(c)
			}
			return fmt.Errorf("fractal: starting %s: %w", c.name, err)
		}
		started = append(started, child)
	}
	c.state = Started
	return nil
}

// Stop stops the component: children stop in reverse insertion order,
// then the content's LifecycleHandler runs.
func (c *Component) Stop() error {
	if c.state != Started {
		return fmt.Errorf("%w: %s", ErrNotStarted, c.name)
	}
	for i := len(c.childSeq) - 1; i >= 0; i-- {
		child := c.children[c.childSeq[i]]
		if child.state == Started {
			if err := child.Stop(); err != nil {
				return fmt.Errorf("fractal: stopping %s: %w", c.name, err)
			}
		}
	}
	if h, ok := c.content.(LifecycleHandler); ok {
		if err := h.OnStop(c); err != nil {
			return fmt.Errorf("fractal: stopping %s: %w", c.name, err)
		}
	}
	c.state = Stopped
	return nil
}

// --- Introspection rendering ---

// Describe renders the component subtree with interfaces, attributes and
// bindings — the uniform management view an administration program reads.
func (c *Component) Describe() string {
	var b strings.Builder
	c.describe(&b, 0)
	return b.String()
}

func (c *Component) describe(b *strings.Builder, depth int) {
	pad := strings.Repeat("  ", depth)
	kind := "primitive"
	if c.composite {
		kind = "composite"
	}
	fmt.Fprintf(b, "%s%s [%s, %s]\n", pad, c.name, kind, c.state)
	attrs := append([]string(nil), c.attrOrder...)
	sort.Strings(attrs)
	for _, a := range attrs {
		fmt.Fprintf(b, "%s  @%s = %s\n", pad, a, c.attrs[a])
	}
	for _, n := range c.itfOrder {
		itf := c.itfs[n]
		if itf.role == Client {
			bs := c.bindings[n]
			if len(bs) == 0 {
				fmt.Fprintf(b, "%s  %s (client %s) -> (unbound)\n", pad, n, itf.signature)
			}
			for _, bd := range bs {
				fmt.Fprintf(b, "%s  %s (client %s) -> %s\n", pad, n, itf.signature, bd.ServerItf)
			}
		} else {
			fmt.Fprintf(b, "%s  %s (server %s)\n", pad, n, itf.signature)
		}
	}
	for _, n := range c.childSeq {
		c.children[n].describe(b, depth+1)
	}
}
