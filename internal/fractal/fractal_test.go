package fractal

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// hookRecorder records content-hook invocations and can inject failures.
type hookRecorder struct {
	log       []string
	failStart bool
	failAttr  bool
	failBind  bool
}

func (h *hookRecorder) OnStart(c *Component) error {
	h.log = append(h.log, "start:"+c.Name())
	if h.failStart {
		return errors.New("content start failed")
	}
	return nil
}

func (h *hookRecorder) OnStop(c *Component) error {
	h.log = append(h.log, "stop:"+c.Name())
	return nil
}

func (h *hookRecorder) OnSetAttribute(c *Component, name, value string) error {
	h.log = append(h.log, fmt.Sprintf("attr:%s=%s", name, value))
	if h.failAttr {
		return errors.New("attribute rejected")
	}
	return nil
}

func (h *hookRecorder) OnBind(c *Component, itf string, server *Interface) error {
	h.log = append(h.log, "bind:"+itf+"->"+server.String())
	if h.failBind {
		return errors.New("bind rejected")
	}
	return nil
}

func (h *hookRecorder) OnUnbind(c *Component, itf string, server *Interface) error {
	h.log = append(h.log, "unbind:"+itf+"->"+server.String())
	return nil
}

func mkServer(t *testing.T, name string) *Component {
	t.Helper()
	c, err := NewPrimitive(name, nil,
		ItfSpec{Name: "svc", Signature: "http", Role: Server})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mkClient(t *testing.T, name string, content any) *Component {
	t.Helper()
	c, err := NewPrimitive(name, content,
		ItfSpec{Name: "out", Signature: "http", Role: Client, Contingency: Optional})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestComponentCreationValidation(t *testing.T) {
	if _, err := NewPrimitive("", nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewPrimitive("x", nil, ItfSpec{Name: ""}); err == nil {
		t.Fatal("empty interface name accepted")
	}
	if _, err := NewPrimitive("x", nil,
		ItfSpec{Name: "a", Signature: "s", Role: Server},
		ItfSpec{Name: "a", Signature: "s", Role: Server}); !errors.Is(err, ErrDuplicateItf) {
		t.Fatalf("duplicate interface: %v", err)
	}
}

func TestInterfaceIntrospection(t *testing.T) {
	c := mkServer(t, "apache1")
	itf, err := c.Interface("svc")
	if err != nil {
		t.Fatal(err)
	}
	if itf.Name() != "svc" || itf.Signature() != "http" || itf.Role() != Server ||
		itf.Owner() != c || itf.String() != "apache1.svc" {
		t.Fatalf("interface introspection wrong: %+v", itf)
	}
	if _, err := c.Interface("ghost"); !errors.Is(err, ErrNoSuchInterface) {
		t.Fatalf("missing interface: %v", err)
	}
	if got := c.Interfaces(); len(got) != 1 || got[0] != itf {
		t.Fatalf("Interfaces = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustInterface on missing itf did not panic")
		}
	}()
	c.MustInterface("ghost")
}

func TestBindUnbindSingleton(t *testing.T) {
	srv := mkServer(t, "tomcat1")
	srv2 := mkServer(t, "tomcat2")
	cli := mkClient(t, "apache1", nil)
	target := srv.MustInterface("svc")
	if err := cli.Bind("out", target); err != nil {
		t.Fatal(err)
	}
	if got := cli.BoundTo("out"); got != target {
		t.Fatalf("BoundTo = %v", got)
	}
	// Singleton interface refuses a second binding.
	if err := cli.Bind("out", srv2.MustInterface("svc")); !errors.Is(err, ErrAlreadyBound) {
		t.Fatalf("second bind: %v", err)
	}
	if err := cli.Unbind("out", nil); err != nil {
		t.Fatal(err)
	}
	if cli.BoundTo("out") != nil {
		t.Fatal("still bound after unbind")
	}
	if err := cli.Unbind("out", nil); !errors.Is(err, ErrNotBound) {
		t.Fatalf("double unbind: %v", err)
	}
}

func TestBindValidation(t *testing.T) {
	srv := mkServer(t, "s")
	cli := mkClient(t, "c", nil)
	// Bind on a server interface.
	if err := srv.Bind("svc", cli.MustInterface("out")); !errors.Is(err, ErrRoleMismatch) {
		t.Fatalf("bind server itf: %v", err)
	}
	// Bind to a client interface.
	cli2 := mkClient(t, "c2", nil)
	if err := cli.Bind("out", cli2.MustInterface("out")); !errors.Is(err, ErrRoleMismatch) {
		t.Fatalf("bind to client itf: %v", err)
	}
	// Signature clash.
	odd, err := NewPrimitive("odd", nil, ItfSpec{Name: "svc", Signature: "jdbc", Role: Server})
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Bind("out", odd.MustInterface("svc")); !errors.Is(err, ErrSignatureClash) {
		t.Fatalf("signature clash: %v", err)
	}
	// Nil target.
	if err := cli.Bind("out", nil); err == nil {
		t.Fatal("nil target accepted")
	}
	// Unknown interface.
	if err := cli.Bind("ghost", srv.MustInterface("svc")); !errors.Is(err, ErrNoSuchInterface) {
		t.Fatalf("bind unknown itf: %v", err)
	}
	if err := cli.Unbind("ghost", nil); !errors.Is(err, ErrNoSuchInterface) {
		t.Fatalf("unbind unknown itf: %v", err)
	}
	if err := srv.Unbind("svc", nil); !errors.Is(err, ErrRoleMismatch) {
		t.Fatalf("unbind server itf: %v", err)
	}
}

func TestStaticBindingRequiresStopped(t *testing.T) {
	srv := mkServer(t, "tomcat1")
	cli := mkClient(t, "apache1", nil)
	if err := cli.Bind("out", srv.MustInterface("svc")); err != nil {
		t.Fatal(err)
	}
	if err := cli.Start(); err != nil {
		t.Fatal(err)
	}
	srv2 := mkServer(t, "tomcat2")
	if err := cli.Unbind("out", nil); !errors.Is(err, ErrNotStopped) {
		t.Fatalf("unbind while started: %v", err)
	}
	if err := cli.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Unbind("out", nil); err != nil {
		t.Fatal(err)
	}
	if err := cli.Bind("out", srv2.MustInterface("svc")); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicCollectionInterface(t *testing.T) {
	lb, err := NewPrimitive("plb", nil,
		ItfSpec{Name: "workers", Signature: "http", Role: Client,
			Contingency: Optional, Collection: true, Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.Start(); err != nil {
		t.Fatal(err)
	}
	t1 := mkServer(t, "tomcat1")
	t2 := mkServer(t, "tomcat2")
	// Dynamic interface binds while started.
	if err := lb.Bind("workers", t1.MustInterface("svc")); err != nil {
		t.Fatal(err)
	}
	if err := lb.Bind("workers", t2.MustInterface("svc")); err != nil {
		t.Fatal(err)
	}
	// Duplicate exact binding refused.
	if err := lb.Bind("workers", t1.MustInterface("svc")); !errors.Is(err, ErrAlreadyBound) {
		t.Fatalf("duplicate collection bind: %v", err)
	}
	if got := lb.Bindings("workers"); len(got) != 2 {
		t.Fatalf("bindings = %d", len(got))
	}
	// Ambiguous unbind requires a target.
	if err := lb.Unbind("workers", nil); err == nil {
		t.Fatal("ambiguous unbind accepted")
	}
	if err := lb.Unbind("workers", t1.MustInterface("svc")); err != nil {
		t.Fatal(err)
	}
	if got := lb.Bindings("workers"); len(got) != 1 || got[0].ServerItf.Owner() != t2 {
		t.Fatalf("bindings after unbind = %v", got)
	}
	// Unbinding a non-bound target fails.
	if err := lb.Unbind("workers", t1.MustInterface("svc")); !errors.Is(err, ErrNotBound) {
		t.Fatalf("unbind absent target: %v", err)
	}
}

func TestMandatoryContingency(t *testing.T) {
	c, err := NewPrimitive("apache1", nil,
		ItfSpec{Name: "ajp", Signature: "ajp13", Role: Client, Contingency: Mandatory})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); !errors.Is(err, ErrMandatoryUnbound) {
		t.Fatalf("start with unbound mandatory itf: %v", err)
	}
	srv, err := NewPrimitive("tomcat1", nil,
		ItfSpec{Name: "ajp", Signature: "ajp13", Role: Server})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Bind("ajp", srv.MustInterface("ajp")); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
}

func TestLifecycleHooksAndStates(t *testing.T) {
	h := &hookRecorder{}
	c := mkClient(t, "x", h)
	if c.State() != Stopped {
		t.Fatal("fresh component not stopped")
	}
	if err := c.Stop(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("stop while stopped: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if c.State() != Started {
		t.Fatal("not started after Start")
	}
	if err := c.Start(); !errors.Is(err, ErrAlreadyStarted) {
		t.Fatalf("double start: %v", err)
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	want := []string{"start:x", "stop:x"}
	if len(h.log) != 2 || h.log[0] != want[0] || h.log[1] != want[1] {
		t.Fatalf("hook log = %v", h.log)
	}
}

func TestContentStartFailurePropagates(t *testing.T) {
	h := &hookRecorder{failStart: true}
	c := mkClient(t, "x", h)
	if err := c.Start(); err == nil {
		t.Fatal("content failure swallowed")
	}
	if c.State() != Stopped {
		t.Fatal("component started despite content failure")
	}
}

func TestCompositeLifecycleOrder(t *testing.T) {
	root, err := NewComposite("j2ee")
	if err != nil {
		t.Fatal(err)
	}
	var log []string
	mk := func(name string) *Component {
		c, err := NewPrimitive(name, &orderedHook{name: name, log: &log},
			ItfSpec{Name: "out", Signature: "http", Role: Client, Contingency: Optional})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk("mysql1"), mk("tomcat1")
	if err := root.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := root.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := root.Start(); err != nil {
		t.Fatal(err)
	}
	if err := root.Stop(); err != nil {
		t.Fatal(err)
	}
	want := []string{"start:mysql1", "start:tomcat1", "stop:tomcat1", "stop:mysql1"}
	if strings.Join(log, ",") != strings.Join(want, ",") {
		t.Fatalf("lifecycle order = %v, want %v", log, want)
	}
}

type orderedHook struct {
	name string
	log  *[]string
	fail bool
}

func (o *orderedHook) OnStart(*Component) error {
	*o.log = append(*o.log, "start:"+o.name)
	if o.fail {
		return errors.New("boom")
	}
	return nil
}

func (o *orderedHook) OnStop(*Component) error {
	*o.log = append(*o.log, "stop:"+o.name)
	return nil
}

func TestCompositeStartRollsBackOnChildFailure(t *testing.T) {
	root, _ := NewComposite("root")
	var log []string
	ok1, _ := NewPrimitive("ok1", &orderedHook{name: "ok1", log: &log})
	bad, _ := NewPrimitive("bad", &orderedHook{name: "bad", log: &log, fail: true})
	for _, c := range []*Component{ok1, bad} {
		if err := root.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := root.Start(); err == nil {
		t.Fatal("composite start succeeded despite failing child")
	}
	if root.State() != Stopped || ok1.State() != Stopped {
		t.Fatalf("states after rollback: root=%v ok1=%v", root.State(), ok1.State())
	}
	joined := strings.Join(log, ",")
	if !strings.Contains(joined, "stop:ok1") {
		t.Fatalf("started sibling not rolled back: %v", log)
	}
}

func TestContentController(t *testing.T) {
	root, _ := NewComposite("root")
	child := mkServer(t, "c1")
	prim := mkServer(t, "p1")
	if err := prim.Add(child); !errors.Is(err, ErrNotComposite) {
		t.Fatalf("Add on primitive: %v", err)
	}
	if err := root.Add(child); err != nil {
		t.Fatal(err)
	}
	if err := root.Add(child); err == nil {
		t.Fatal("re-adding parented child accepted")
	}
	dup := mkServer(t, "c1")
	if err := root.Add(dup); !errors.Is(err, ErrDuplicateChild) {
		t.Fatalf("duplicate child name: %v", err)
	}
	got, err := root.Child("c1")
	if err != nil || got != child {
		t.Fatalf("Child = %v, %v", got, err)
	}
	if child.Parent() != root || child.Path() != "root/c1" {
		t.Fatalf("parent/path wrong: %v %q", child.Parent(), child.Path())
	}
	if _, err := root.Remove("ghost"); !errors.Is(err, ErrNoSuchChild) {
		t.Fatalf("remove ghost: %v", err)
	}
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Remove("c1"); !errors.Is(err, ErrNotStopped) {
		t.Fatalf("remove started child: %v", err)
	}
	if err := child.Stop(); err != nil {
		t.Fatal(err)
	}
	removed, err := root.Remove("c1")
	if err != nil || removed != child || child.Parent() != nil {
		t.Fatalf("Remove = %v, %v", removed, err)
	}
	if len(root.Children()) != 0 {
		t.Fatal("children not empty after removal")
	}
}

func TestFindPath(t *testing.T) {
	root, _ := NewComposite("root")
	mid, _ := NewComposite("web-tier")
	leaf := mkServer(t, "apache1")
	if err := root.Add(mid); err != nil {
		t.Fatal(err)
	}
	if err := mid.Add(leaf); err != nil {
		t.Fatal(err)
	}
	got, err := root.Find("web-tier/apache1")
	if err != nil || got != leaf {
		t.Fatalf("Find = %v, %v", got, err)
	}
	if got, err := root.Find(""); err != nil || got != root {
		t.Fatalf("Find(\"\") = %v, %v", got, err)
	}
	if _, err := root.Find("web-tier/ghost"); !errors.Is(err, ErrNoSuchChild) {
		t.Fatalf("Find ghost: %v", err)
	}
}

func TestVisitOrder(t *testing.T) {
	root, _ := NewComposite("root")
	a, _ := NewComposite("a")
	b := mkServer(t, "b")
	leaf := mkServer(t, "leaf")
	if err := root.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(leaf); err != nil {
		t.Fatal(err)
	}
	if err := root.Add(b); err != nil {
		t.Fatal(err)
	}
	var names []string
	root.Visit(func(c *Component) { names = append(names, c.Name()) })
	want := "root,a,leaf,b"
	if strings.Join(names, ",") != want {
		t.Fatalf("visit order = %v, want %s", names, want)
	}
}

func TestAttributesWithHook(t *testing.T) {
	h := &hookRecorder{}
	c := mkClient(t, "apache1", h)
	if err := c.SetAttribute("port", "80"); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Attribute("port"); err != nil || v != "80" {
		t.Fatalf("Attribute = %q, %v", v, err)
	}
	if err := c.SetAttribute("port", "8080"); err != nil {
		t.Fatal(err)
	}
	if got := c.Attributes(); len(got) != 1 || got[0] != "port" {
		t.Fatalf("Attributes = %v", got)
	}
	if _, err := c.Attribute("ghost"); !errors.Is(err, ErrNoSuchAttribute) {
		t.Fatalf("missing attribute: %v", err)
	}
	if got := c.AttributeOr("ghost", "def"); got != "def" {
		t.Fatalf("AttributeOr = %q", got)
	}
	if err := c.SetAttribute("", "x"); err == nil {
		t.Fatal("empty attribute name accepted")
	}
	// A rejecting hook prevents the attribute from being recorded.
	h.failAttr = true
	if err := c.SetAttribute("bad", "1"); err == nil {
		t.Fatal("rejected attribute accepted")
	}
	if _, err := c.Attribute("bad"); err == nil {
		t.Fatal("rejected attribute stored")
	}
}

func TestBindHookRejection(t *testing.T) {
	h := &hookRecorder{failBind: true}
	srv := mkServer(t, "s")
	cli := mkClient(t, "c", h)
	if err := cli.Bind("out", srv.MustInterface("svc")); err == nil {
		t.Fatal("rejected bind accepted")
	}
	if cli.BoundTo("out") != nil {
		t.Fatal("rejected bind recorded")
	}
}

func TestDescribeRendersArchitecture(t *testing.T) {
	root, _ := NewComposite("j2ee")
	srv := mkServer(t, "tomcat1")
	cli := mkClient(t, "apache1", nil)
	if err := cli.SetAttribute("port", "80"); err != nil {
		t.Fatal(err)
	}
	if err := root.Add(cli); err != nil {
		t.Fatal(err)
	}
	if err := root.Add(srv); err != nil {
		t.Fatal(err)
	}
	if err := cli.Bind("out", srv.MustInterface("svc")); err != nil {
		t.Fatal(err)
	}
	d := root.Describe()
	for _, want := range []string{
		"j2ee [composite, STOPPED]",
		"apache1 [primitive, STOPPED]",
		"@port = 80",
		"out (client http) -> tomcat1.svc",
		"svc (server http)",
	} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestRoleAndStateStrings(t *testing.T) {
	if Server.String() != "server" || Client.String() != "client" {
		t.Fatal("role strings")
	}
	if Stopped.String() != "STOPPED" || Started.String() != "STARTED" {
		t.Fatal("state strings")
	}
}

// Property: any sequence of bind/unbind operations on a collection
// interface leaves Bindings() consistent with the net effect.
func TestPropertyCollectionBindingsConsistent(t *testing.T) {
	servers := make([]*Component, 5)
	for i := range servers {
		s, err := NewPrimitive(fmt.Sprintf("s%d", i), nil,
			ItfSpec{Name: "svc", Signature: "x", Role: Server})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = s
	}
	f := func(ops []uint8) bool {
		lb, err := NewPrimitive("lb", nil,
			ItfSpec{Name: "w", Signature: "x", Role: Client,
				Contingency: Optional, Collection: true, Dynamic: true})
		if err != nil {
			return false
		}
		want := map[int]bool{}
		for _, op := range ops {
			i := int(op) % len(servers)
			target := servers[i].MustInterface("svc")
			if op%2 == 0 {
				if err := lb.Bind("w", target); err == nil {
					want[i] = true
				} else if !want[i] {
					return false // bind failed though not bound
				}
			} else {
				if err := lb.Unbind("w", target); err == nil {
					if !want[i] {
						return false // unbind succeeded though not bound
					}
					delete(want, i)
				} else if want[i] {
					return false
				}
			}
		}
		return len(lb.Bindings("w")) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
