package fractal

import "sort"

// View is the JSON-serializable introspection shape of a component
// subtree, served by the admin endpoint's /components page. Orderings
// are deterministic: attributes sorted by name, interfaces in declaration
// order, children in addition order — so rendering the same tree twice
// yields identical bytes.
type View struct {
	Name       string          `json:"name"`
	Kind       string          `json:"kind"` // "composite" or "primitive"
	State      string          `json:"state"`
	Attributes []AttributeView `json:"attributes,omitempty"`
	Interfaces []InterfaceView `json:"interfaces,omitempty"`
	Children   []View          `json:"children,omitempty"`
}

// AttributeView is one name=value attribute.
type AttributeView struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// InterfaceView is one interface, with its current bindings for client
// roles.
type InterfaceView struct {
	Name       string   `json:"name"`
	Signature  string   `json:"signature"`
	Role       string   `json:"role"`
	Collection bool     `json:"collection,omitempty"`
	Dynamic    bool     `json:"dynamic,omitempty"`
	BoundTo    []string `json:"bound_to,omitempty"`
}

// View renders the component subtree rooted at c.
func (c *Component) View() View {
	kind := "primitive"
	if c.composite {
		kind = "composite"
	}
	v := View{Name: c.name, Kind: kind, State: c.state.String()}
	attrs := append([]string(nil), c.attrOrder...)
	sort.Strings(attrs)
	for _, a := range attrs {
		v.Attributes = append(v.Attributes, AttributeView{Name: a, Value: c.attrs[a]})
	}
	for _, n := range c.itfOrder {
		itf := c.itfs[n]
		iv := InterfaceView{
			Name:       n,
			Signature:  itf.signature,
			Role:       itf.role.String(),
			Collection: itf.collection,
			Dynamic:    itf.dynamic,
		}
		if itf.role == Client {
			for _, bd := range c.bindings[n] {
				iv.BoundTo = append(iv.BoundTo, bd.ServerItf.String())
			}
		}
		v.Interfaces = append(v.Interfaces, iv)
	}
	for _, n := range c.childSeq {
		v.Children = append(v.Children, c.children[n].View())
	}
	return v
}
