// Package selector is the shared backend-selection framework of the
// three balancing tiers (L4 switch, PLB, C-JDBC). Each tier used to
// hardwire its own round-robin / least-pending loop; this package
// factors the choice into one Selector interface with pluggable
// policies, plus a stateful Pool (pool.go) that tracks in-flight
// counts, exponentially-decaying failure and latency reservoirs
// clocked on sim virtual time, and suspected-down backends fed by the
// φ-accrual detector (core.Suspector).
//
// Everything here is deterministic: selection depends only on the
// registration order of backends, their recorded state and the virtual
// clock — never on map iteration or wall time — so equal seeds keep
// producing byte-identical traces.
package selector

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the framework.
var (
	ErrExists    = errors.New("selector: backend already registered")
	ErrUnknown   = errors.New("selector: unknown backend")
	ErrBadWeight = errors.New("selector: weight must be positive")
)

// Policy names a backend-selection strategy.
type Policy int

// Policies.
const (
	// RoundRobin cycles through the backends in registration order.
	RoundRobin Policy = iota
	// WeightedRoundRobin spreads picks proportionally to backend
	// weights using per-round credits (the L4 switch's historic policy).
	WeightedRoundRobin
	// LeastPending picks the backend with the fewest in-flight
	// requests, ties broken by registration order.
	LeastPending
	// Balanced scores each backend by in-flight count plus its decayed
	// failure and latency reservoirs and picks the minimum: a gray
	// (slow-but-alive) backend accumulates latency and in-flight debt
	// and organically stops receiving traffic.
	Balanced
	// Rendezvous maps an affinity key (session ID, SQL text) onto a
	// backend by highest-random-weight hashing: the same key keeps
	// landing on the same backend, and removing one backend only moves
	// the keys that were mapped to it (~1/n of the keyspace).
	Rendezvous
)

// String returns the canonical spelling accepted by ParsePolicy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case WeightedRoundRobin:
		return "weighted-round-robin"
	case LeastPending:
		return "least-pending"
	case Balanced:
		return "balanced"
	case Rendezvous:
		return "rendezvous"
	}
	return "?"
}

// PolicyNames lists the accepted policy spellings.
func PolicyNames() []string {
	return []string{"round-robin", "weighted-round-robin", "least-pending", "balanced", "rendezvous"}
}

// ParsePolicy parses a policy name. "least-connections" is accepted as
// an alias of least-pending (PLB's historic spelling).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "round-robin":
		return RoundRobin, nil
	case "weighted-round-robin":
		return WeightedRoundRobin, nil
	case "least-pending", "least-connections":
		return LeastPending, nil
	case "balanced":
		return Balanced, nil
	case "rendezvous":
		return Rendezvous, nil
	}
	return 0, fmt.Errorf("selector: unknown policy %q (want one of %v)", s, PolicyNames())
}

// Context carries the per-request inputs of a selection: the affinity
// key (empty when the request has none) and the current virtual time.
type Context struct {
	Key string
	Now float64
}

// Selector picks one backend from a non-empty candidate list. The list
// is in registration order and contains only eligible (not suspected
// down) backends; implementations must be deterministic functions of
// the candidates, their recorded state and ctx.
type Selector interface {
	Pick(candidates []*Backend, ctx Context) *Backend
}

// reservoir is an exponentially-decaying accumulator clocked on virtual
// time: Value(now) halves every HalfLife seconds of inactivity. Reads
// are pure (no stored state changes), so concurrent observers can never
// perturb the floating-point trajectory a deterministic run follows.
type reservoir struct {
	halfLife float64
	value    float64
	last     float64
}

func (r *reservoir) add(now, v float64) {
	r.value = r.valueAt(now) + v
	if now > r.last {
		r.last = now
	}
}

func (r *reservoir) valueAt(now float64) float64 {
	if r.value == 0 || now <= r.last {
		return r.value
	}
	return r.value * math.Exp2(-(now-r.last)/r.halfLife)
}

// Backend is the per-backend state the policies score. Its mutable
// fields are owned by the Pool; policies only read them (and consume
// weighted-round-robin credits).
type Backend struct {
	name   string
	weight int

	credit   int
	inflight int
	served   uint64
	failed   uint64

	fail reservoir // decayed failure count
	lat  reservoir // decayed latency sum (seconds)
	latN reservoir // decayed latency sample count

	down      bool
	probing   bool
	downSince float64
}

// Name returns the backend's registered name.
func (b *Backend) Name() string { return b.name }

// Weight returns the backend's weight.
func (b *Backend) Weight() int { return b.weight }

// InFlight returns the current in-flight request count.
func (b *Backend) InFlight() int { return b.inflight }

// Down reports whether the backend is currently marked suspected-down.
func (b *Backend) Down() bool { return b.down }

// Score is the balanced policy's ranking at virtual time now: in-flight
// count plus the decayed failure reservoir (weighted failWeight) plus
// the decayed mean latency in seconds (weighted latWeight). Lower is
// better. Pure: scoring never mutates the backend.
func (b *Backend) Score(now, failWeight, latWeight float64) float64 {
	s := float64(b.inflight) + failWeight*b.fail.valueAt(now)
	if n := b.latN.valueAt(now); n > 1e-9 {
		s += latWeight * b.lat.valueAt(now) / n
	}
	return s
}

// --- policies ---

type roundRobin struct{ next int }

func (p *roundRobin) Pick(cs []*Backend, _ Context) *Backend {
	b := cs[p.next%len(cs)]
	p.next++
	return b
}

// weightedRoundRobin ports the L4 switch's credit scheme: each backend
// holds credit slots refilled to its weight once every eligible credit
// is spent, so a round of sum(weights) picks serves each backend
// exactly weight times.
type weightedRoundRobin struct{}

func (weightedRoundRobin) Pick(cs []*Backend, _ Context) *Backend {
	for pass := 0; pass < 2; pass++ {
		for _, b := range cs {
			if b.credit > 0 {
				b.credit--
				return b
			}
		}
		for _, b := range cs {
			b.credit = b.weight
		}
	}
	return cs[0]
}

type leastPending struct{}

func (leastPending) Pick(cs []*Backend, _ Context) *Backend {
	best := cs[0]
	for _, b := range cs[1:] {
		if b.inflight < best.inflight {
			best = b
		}
	}
	return best
}

type balanced struct {
	failWeight float64
	latWeight  float64
	rr         roundRobin
}

func (p *balanced) Pick(cs []*Backend, ctx Context) *Backend {
	best := cs[0]
	bestScore := best.Score(ctx.Now, p.failWeight, p.latWeight)
	tie := 1
	for _, b := range cs[1:] {
		s := b.Score(ctx.Now, p.failWeight, p.latWeight)
		switch {
		case s < bestScore:
			best, bestScore, tie = b, s, 1
		case s == bestScore:
			tie++
		}
	}
	if tie == len(cs) && bestScore == 0 {
		// Cold start: all backends indistinguishable; round-robin so the
		// first requests spread instead of piling on the first backend.
		return p.rr.Pick(cs, ctx)
	}
	return best
}

type rendezvous struct{ rr roundRobin }

func (p *rendezvous) Pick(cs []*Backend, ctx Context) *Backend {
	if ctx.Key == "" {
		// No affinity key: hashing would pin all traffic to one backend,
		// so degrade to round-robin.
		return p.rr.Pick(cs, ctx)
	}
	best := cs[0]
	bestScore := rendezvousScore(ctx.Key, best.name)
	for _, b := range cs[1:] {
		s := rendezvousScore(ctx.Key, b.name)
		if s > bestScore || (s == bestScore && b.name < best.name) {
			best, bestScore = b, s
		}
	}
	return best
}

// newSelector builds the policy implementation for a pool.
func newSelector(opts Options) Selector {
	switch opts.Policy {
	case WeightedRoundRobin:
		return weightedRoundRobin{}
	case LeastPending:
		return leastPending{}
	case Balanced:
		return &balanced{failWeight: opts.FailureWeight, latWeight: opts.LatencyWeight}
	case Rendezvous:
		return &rendezvous{}
	default:
		return &roundRobin{}
	}
}

// rendezvousScore is the FNV-1a 64 hash of key ++ NUL ++ name: the
// highest-random-weight score of assigning key to name.
func rendezvousScore(key, name string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	h ^= 0
	h *= prime
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return h
}

// RendezvousPick maps key onto one of candidates by highest-random-
// weight hashing: deterministic, stable for identical inputs, and
// removing a candidate only moves the keys that were mapped to it.
// Duplicate candidate names tie towards the lexicographically smallest,
// so permutations of the input produce the same pick. Returns false
// only for an empty candidate list.
func RendezvousPick(key string, candidates []string) (string, bool) {
	if len(candidates) == 0 {
		return "", false
	}
	best := candidates[0]
	bestScore := rendezvousScore(key, best)
	for _, c := range candidates[1:] {
		s := rendezvousScore(key, c)
		if s > bestScore || (s == bestScore && c < best) {
			best, bestScore = c, s
		}
	}
	return best, true
}
