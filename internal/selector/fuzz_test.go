package selector

import (
	"strings"
	"testing"
)

// FuzzRendezvousPick exercises the pure rendezvous-hash kernel: it must
// never panic, always return a member of the candidate set, and return
// the same pick for identical inputs (including candidate order).
// Candidates are encoded as a newline-separated list; empty lines are
// dropped so the empty-set case is covered too.
func FuzzRendezvousPick(f *testing.F) {
	f.Add("session-1", "tomcat1\ntomcat2\ntomcat3")
	f.Add("", "a\nb")
	f.Add("SELECT * FROM items WHERE id=42", "mysql1\nmysql2")
	f.Add("key", "")
	f.Add("k\x00weird", "n1\nn1\nn2")
	f.Add("クライアント", "ノード\nnode")
	f.Fuzz(func(t *testing.T, key, list string) {
		var candidates []string
		for _, c := range strings.Split(list, "\n") {
			if c != "" {
				candidates = append(candidates, c)
			}
		}
		pick, ok := RendezvousPick(key, candidates)
		if len(candidates) == 0 {
			if ok || pick != "" {
				t.Fatalf("empty candidates returned (%q, %v)", pick, ok)
			}
			return
		}
		if !ok {
			t.Fatal("pick failed on non-empty candidates")
		}
		member := false
		for _, c := range candidates {
			if c == pick {
				member = true
				break
			}
		}
		if !member {
			t.Fatalf("pick %q not in candidate set %q", pick, candidates)
		}
		again, _ := RendezvousPick(key, candidates)
		if again != pick {
			t.Fatalf("unstable pick for identical input: %q vs %q", pick, again)
		}
		reversed := make([]string, len(candidates))
		for i, c := range candidates {
			reversed[len(candidates)-1-i] = c
		}
		rpick, _ := RendezvousPick(key, reversed)
		if rpick != pick {
			t.Fatalf("pick depends on candidate order: %q vs %q", pick, rpick)
		}
	})
}
