package selector

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// randomPool builds a pool with n backends (weights in [1,4] for the
// weighted policy, else 1) and a random subset marked down such that at
// least one backend stays healthy.
func randomPool(rng *rand.Rand, policy Policy, n int) (*Pool, []string, map[string]bool) {
	opts := DefaultOptions(policy)
	p := New(opts)
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("backend-%02d", i)
		w := 1
		if policy == WeightedRoundRobin {
			w = 1 + rng.Intn(4)
		}
		if err := p.Add(name, w); err != nil {
			panic(err)
		}
		names = append(names, name)
	}
	down := map[string]bool{}
	for _, name := range names {
		if rng.Intn(3) == 0 {
			down[name] = true
		}
	}
	if len(down) == len(names) {
		delete(down, names[rng.Intn(len(names))])
	}
	for name := range down {
		p.MarkDown(name)
	}
	return p, names, down
}

// Property (a): no policy ever picks a backend marked down while a
// healthy one exists. (The pools use a frozen clock, so probe windows
// never open.)
func TestPropertyNeverPicksDownBackend(t *testing.T) {
	for _, policy := range []Policy{RoundRobin, WeightedRoundRobin, LeastPending, Balanced, Rendezvous} {
		for seed := int64(0); seed < 40; seed++ {
			rng := rand.New(rand.NewSource(seed))
			p, _, down := randomPool(rng, policy, 2+rng.Intn(8))
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("key-%d", rng.Intn(50))
				name, ok := p.Pick(key)
				if !ok {
					t.Fatalf("%v seed %d: pick failed", policy, seed)
				}
				if down[name] {
					t.Fatalf("%v seed %d: picked down backend %s with healthy ones available", policy, seed, name)
				}
				// Random acquire/release churn so in-flight state varies.
				if rng.Intn(2) == 0 {
					p.Acquire(name)
				} else {
					p.Release(name, rng.Float64(), rng.Intn(4) == 0)
				}
			}
		}
	}
}

// Property (b): round-robin and weighted round-robin hit the exact
// round-robin distribution — over k*sum(weights) picks each healthy
// backend is picked exactly k*weight times.
func TestPropertyExactRoundRobinDistribution(t *testing.T) {
	for _, policy := range []Policy{RoundRobin, WeightedRoundRobin} {
		for seed := int64(0); seed < 40; seed++ {
			rng := rand.New(rand.NewSource(100 + seed))
			opts := DefaultOptions(policy)
			p := New(opts)
			n := 2 + rng.Intn(7)
			weights := map[string]int{}
			total := 0
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("b%d", i)
				w := 1
				if policy == WeightedRoundRobin {
					w = 1 + rng.Intn(4)
				}
				if err := p.Add(name, w); err != nil {
					t.Fatal(err)
				}
				weights[name] = w
				total += w
			}
			rounds := 1 + rng.Intn(5)
			counts := map[string]int{}
			for i := 0; i < rounds*total; i++ {
				name, ok := p.Pick("")
				if !ok {
					t.Fatal("pick failed")
				}
				counts[name]++
			}
			for name, w := range weights {
				if counts[name] != rounds*w {
					t.Fatalf("%v seed %d: backend %s picked %d times, want %d (weights %v)",
						policy, seed, name, counts[name], rounds*w, weights)
				}
			}
		}
	}
}

// Property (c): under the balanced scorer with in-flight feedback
// (every pick acquires, nothing releases), pick frequency is monotone
// non-increasing in the backend's base score: a backend with a worse
// failure/latency history is never picked more often than a healthier
// one.
func TestPropertyBalancedPickFrequencyMonotone(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		opts := DefaultOptions(Balanced)
		p := New(opts)
		n := 2 + rng.Intn(7)
		names := make([]string, 0, n)
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("b%d", i)
			if err := p.Add(name, 1); err != nil {
				t.Fatal(err)
			}
			names = append(names, name)
		}
		// Seed each backend with a random failure/latency history.
		for _, name := range names {
			for k := rng.Intn(6); k > 0; k-- {
				p.Acquire(name)
				p.Release(name, rng.Float64(), rng.Intn(2) == 0)
			}
		}
		base := map[string]float64{}
		for _, st := range p.Snapshot() {
			base[st.Name] = st.Score
		}
		counts := map[string]int{}
		for i := 0; i < 300; i++ {
			name, ok := p.Pick("")
			if !ok {
				t.Fatal("pick failed")
			}
			counts[name]++
			p.Acquire(name)
		}
		sorted := append([]string(nil), names...)
		sort.Slice(sorted, func(i, j int) bool { return base[sorted[i]] < base[sorted[j]] })
		for i := 1; i < len(sorted); i++ {
			lo, hi := sorted[i-1], sorted[i]
			if base[lo] < base[hi] && counts[hi] > counts[lo] {
				t.Fatalf("seed %d: backend %s (score %.2f) picked %d times, more than %s (score %.2f, %d picks)",
					seed, hi, base[hi], counts[hi], lo, base[lo], counts[lo])
			}
		}
	}
}

// Property (d): removing one backend moves only the keys that were
// mapped to it — every other key keeps its assignment, and the moved
// fraction is ~1/n of the keyspace.
func TestPropertyRendezvousMinimalDisruption(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		n := 3 + rng.Intn(8)
		candidates := make([]string, 0, n)
		for i := 0; i < n; i++ {
			candidates = append(candidates, fmt.Sprintf("node-%02d", i))
		}
		const keys = 2000
		before := map[string]string{}
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("key-%05d", k)
			pick, ok := RendezvousPick(key, candidates)
			if !ok {
				t.Fatal("pick failed")
			}
			before[key] = pick
		}
		removed := candidates[rng.Intn(n)]
		survivors := make([]string, 0, n-1)
		for _, c := range candidates {
			if c != removed {
				survivors = append(survivors, c)
			}
		}
		moved := 0
		for key, prev := range before {
			pick, ok := RendezvousPick(key, survivors)
			if !ok {
				t.Fatal("pick failed")
			}
			if prev == removed {
				moved++
				continue
			}
			if pick != prev {
				t.Fatalf("seed %d: key %s moved from %s to %s though %s was removed",
					seed, key, prev, pick, removed)
			}
		}
		// The moved fraction is the removed backend's keyspace share:
		// ~1/n with generous tolerance for hash variance.
		frac := float64(moved) / keys
		lo, hi := 0.2/float64(n), 3.0/float64(n)
		if frac < lo || frac > hi {
			t.Fatalf("seed %d: moved fraction %.3f outside [%.3f, %.3f] (n=%d)", seed, frac, lo, hi, n)
		}
	}
}

// Rendezvous picks are stable under candidate permutation and identical
// inputs, and every pick is a member of the candidate set.
func TestPropertyRendezvousStableAndMember(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(9)
		candidates := make([]string, 0, n)
		for i := 0; i < n; i++ {
			candidates = append(candidates, fmt.Sprintf("n%d", rng.Intn(12)))
		}
		key := fmt.Sprintf("k%d", rng.Intn(1000))
		a, ok := RendezvousPick(key, candidates)
		if !ok {
			t.Fatal("pick failed")
		}
		member := false
		for _, c := range candidates {
			if c == a {
				member = true
			}
		}
		if !member {
			t.Fatalf("pick %q not in candidates %v", a, candidates)
		}
		shuffled := append([]string(nil), candidates...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if b, _ := RendezvousPick(key, shuffled); b != a {
			t.Fatalf("pick unstable under permutation: %q vs %q (candidates %v)", a, b, candidates)
		}
		if c, _ := RendezvousPick(key, candidates); c != a {
			t.Fatalf("pick unstable for identical input: %q vs %q", a, c)
		}
	}
}
