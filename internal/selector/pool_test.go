package selector

import (
	"errors"
	"testing"
)

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.String() != name {
			t.Fatalf("ParsePolicy(%q).String() = %q", name, p.String())
		}
	}
	if _, err := ParsePolicy("least-connections"); err != nil {
		t.Fatalf("legacy alias least-connections rejected: %v", err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy(bogus) did not fail")
	}
	if Policy(99).String() != "?" {
		t.Fatal("unknown policy String")
	}
}

func TestPoolAddRemove(t *testing.T) {
	p := New(DefaultOptions(RoundRobin))
	if _, ok := p.Pick(""); ok {
		t.Fatal("empty pool picked a backend")
	}
	if err := p.Add("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Add("a", 1); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate add: %v", err)
	}
	if err := p.Add("bad", 0); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("zero weight: %v", err)
	}
	if err := p.Add("b", 1); err != nil {
		t.Fatal(err)
	}
	if got := p.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names = %v", got)
	}
	if err := p.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove("a"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("double remove: %v", err)
	}
	p.Discard("a") // idempotent
	if p.Len() != 1 || !p.Has("b") || p.Has("a") {
		t.Fatal("pool membership wrong after removals")
	}
}

func TestPoolEvictionHooksFire(t *testing.T) {
	p := New(DefaultOptions(Rendezvous))
	var evicted []string
	p.OnEvict(func(name string) { evicted = append(evicted, name) })
	for _, n := range []string{"a", "b", "c"} {
		if err := p.Add(n, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Remove("b"); err != nil {
		t.Fatal(err)
	}
	p.Discard("c")
	p.Discard("c") // second discard: no entry, no hook
	if len(evicted) != 2 || evicted[0] != "b" || evicted[1] != "c" {
		t.Fatalf("evicted = %v", evicted)
	}
}

func TestPoolAcquireReleaseCounts(t *testing.T) {
	p := New(DefaultOptions(LeastPending))
	if err := p.Add("a", 1); err != nil {
		t.Fatal(err)
	}
	p.Acquire("a")
	p.Acquire("a")
	if got := p.Pendings()["a"]; got != 2 {
		t.Fatalf("pending = %d", got)
	}
	p.Release("a", 0.01, false)
	p.Release("a", 0.02, true)
	if got := p.Pendings()["a"]; got != 0 {
		t.Fatalf("pending after releases = %d", got)
	}
	st := p.Snapshot()
	if len(st) != 1 || st[0].Served != 1 || st[0].Failed != 1 {
		t.Fatalf("snapshot = %+v", st)
	}
	// Releases for departed backends are ignored, never negative.
	p.Acquire("a")
	if err := p.Remove("a"); err != nil {
		t.Fatal(err)
	}
	p.Release("a", 0.01, false)
	if len(p.Pendings()) != 0 {
		t.Fatal("departed backend still has pendings")
	}
}

func TestPoolProbeCycle(t *testing.T) {
	now := 0.0
	opts := DefaultOptions(RoundRobin)
	opts.Now = func() float64 { return now }
	opts.ProbeAfterSeconds = 5
	p := New(opts)
	for _, n := range []string{"a", "b"} {
		if err := p.Add(n, 1); err != nil {
			t.Fatal(err)
		}
	}
	p.MarkDown("a")
	for i := 0; i < 6; i++ {
		name, ok := p.Pick("")
		if !ok || name == "a" {
			t.Fatalf("pick %d returned down backend (%q, %v)", i, name, ok)
		}
	}
	// After the probe interval, exactly one probe goes to a.
	now = 6
	name, ok := p.Pick("")
	if !ok || name != "a" {
		t.Fatalf("expected probe pick of a, got %q", name)
	}
	// While the probe is outstanding, a stays out of rotation.
	if name, _ := p.Pick(""); name == "a" {
		t.Fatal("second pick hit the probing backend")
	}
	// A failed probe rearms the timer: no second probe before 2 intervals.
	p.Release("a", 0.5, true)
	now = 7
	if name, _ := p.Pick(""); name == "a" {
		t.Fatal("probe retried before the interval elapsed")
	}
	now = 12
	if name, _ := p.Pick(""); name != "a" {
		t.Fatal("probe did not retry after the interval")
	}
	// A successful probe restores the backend.
	p.Release("a", 0.01, false)
	if !p.Healthy("a") {
		t.Fatal("successful probe did not mark the backend up")
	}
}

func TestPoolAllDownDegradesGracefully(t *testing.T) {
	p := New(DefaultOptions(LeastPending))
	for _, n := range []string{"a", "b"} {
		if err := p.Add(n, 1); err != nil {
			t.Fatal(err)
		}
	}
	p.MarkDown("a")
	p.MarkDown("b")
	if _, ok := p.Pick(""); !ok {
		t.Fatal("all-down pool refused to pick")
	}
	p.MarkUp("a")
	for i := 0; i < 4; i++ {
		if name, _ := p.Pick(""); name != "a" {
			t.Fatal("pool picked a down backend over a healthy one")
		}
	}
}

type fakeSuspector map[string]bool

func (f fakeSuspector) Suspected(name string) bool { return f[name] }

func TestPoolSyncSuspicions(t *testing.T) {
	p := New(DefaultOptions(Balanced))
	for _, n := range []string{"a", "b"} {
		if err := p.Add(n, 1); err != nil {
			t.Fatal(err)
		}
	}
	sus := fakeSuspector{"a": true}
	p.SyncSuspicions(sus)
	if p.Healthy("a") || !p.Healthy("b") {
		t.Fatal("suspicions not applied")
	}
	sus["a"] = false
	p.SyncSuspicions(sus)
	if !p.Healthy("a") {
		t.Fatal("cleared suspicion did not restore the backend")
	}
	p.SyncSuspicions(nil) // nil suspector: no-op
}

func TestReservoirDecay(t *testing.T) {
	r := reservoir{halfLife: 10}
	r.add(0, 8)
	if v := r.valueAt(10); v < 3.99 || v > 4.01 {
		t.Fatalf("half-life decay: %g", v)
	}
	if v := r.valueAt(30); v < 0.99 || v > 1.01 {
		t.Fatalf("three half-lives: %g", v)
	}
	// Reads are pure: repeated observation does not change the value.
	_ = r.valueAt(20)
	if v := r.valueAt(30); v < 0.99 || v > 1.01 {
		t.Fatalf("observation perturbed the reservoir: %g", v)
	}
	r.add(10, 4)
	if v := r.valueAt(10); v < 7.99 || v > 8.01 {
		t.Fatalf("decay-then-add: %g", v)
	}
}

func TestBalancedScoreComposition(t *testing.T) {
	opts := DefaultOptions(Balanced)
	now := 0.0
	opts.Now = func() float64 { return now }
	p := New(opts)
	for _, n := range []string{"fast", "slow"} {
		if err := p.Add(n, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Record a slow, failing history on "slow" and a clean one on "fast".
	for i := 0; i < 5; i++ {
		p.Acquire("slow")
		p.Release("slow", 2.0, i%2 == 0)
		p.Acquire("fast")
		p.Release("fast", 0.01, false)
	}
	st := p.Snapshot()
	if st[0].Name != "fast" || st[1].Name != "slow" {
		t.Fatalf("snapshot order: %+v", st)
	}
	if st[1].Score <= st[0].Score {
		t.Fatalf("slow backend does not score worse: %+v", st)
	}
	for i := 0; i < 8; i++ {
		if name, _ := p.Pick(""); name != "fast" {
			t.Fatal("balanced picked the degraded backend")
		}
	}
	// The history decays: after many half-lives the backends tie again
	// and cold-start round-robin resumes.
	now = 1e6
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		name, _ := p.Pick("")
		seen[name] = true
	}
	if !seen["slow"] {
		t.Fatal("decayed backend never returned to rotation")
	}
}
