package selector

import (
	"fmt"
	"sort"
	"sync"
)

// Suspector is the subset of the platform's failure-suspicion interface
// the pool consumes (satisfied by netsim.Detector via core.Suspector).
type Suspector interface {
	Suspected(name string) bool
}

// Options tunes a pool and its policy.
type Options struct {
	// Policy is the selection strategy (RoundRobin by default).
	Policy Policy
	// Now is the virtual clock (sim.Engine.Now). Nil reads as a frozen
	// clock at 0: reservoirs never decay and down backends are never
	// probed.
	Now func() float64
	// HalfLifeSeconds is the decay half-life of the failure and latency
	// reservoirs (30 by default).
	HalfLifeSeconds float64
	// ProbeAfterSeconds is how long a suspected-down backend stays
	// unpicked before the pool lets a single probe request through to
	// test it (10 by default; probes repeat every interval until one
	// succeeds or the suspicion is withdrawn).
	ProbeAfterSeconds float64
	// FailureWeight and LatencyWeight scale the balanced score's
	// reservoir terms: score = inflight + FailureWeight * decayed
	// failures + LatencyWeight * decayed mean latency (defaults 10 and
	// 10, making one recent failure or one second of mean latency cost
	// as much as ten in-flight requests or one, respectively).
	FailureWeight float64
	LatencyWeight float64
}

// DefaultOptions returns the framework defaults for a policy.
func DefaultOptions(p Policy) Options {
	return Options{
		Policy:            p,
		HalfLifeSeconds:   30,
		ProbeAfterSeconds: 10,
		FailureWeight:     10,
		LatencyWeight:     10,
	}
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	d := DefaultOptions(o.Policy)
	if o.HalfLifeSeconds <= 0 {
		o.HalfLifeSeconds = d.HalfLifeSeconds
	}
	if o.ProbeAfterSeconds <= 0 {
		o.ProbeAfterSeconds = d.ProbeAfterSeconds
	}
	if o.FailureWeight <= 0 {
		o.FailureWeight = d.FailureWeight
	}
	if o.LatencyWeight <= 0 {
		o.LatencyWeight = d.LatencyWeight
	}
	return o
}

// Pool is the stateful backend set behind one balancer: it owns the
// per-backend bookkeeping (in-flight counts, decay reservoirs, down
// marks), runs the configured Selector over the eligible backends, and
// schedules probe requests that bring suspected-down backends back in.
//
// The simulation goroutine is the only mutator; the mutex exists so
// concurrent read-only observers (the admin plane, race tests) can take
// consistent snapshots without perturbing the run.
type Pool struct {
	mu      sync.Mutex
	opts    Options
	sel     Selector
	entries []*Backend
	onEvict []func(name string)
	// lastNow caches the virtual clock as of the latest mutator call.
	// Observer methods read it instead of opts.Now, which belongs to the
	// simulation goroutine and must never be called concurrently with it.
	lastNow float64
}

// New creates an empty pool.
func New(opts Options) *Pool {
	opts = opts.withDefaults()
	return &Pool{opts: opts, sel: newSelector(opts)}
}

// Policy returns the pool's configured policy.
func (p *Pool) Policy() Policy {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.opts.Policy
}

// SetPolicy swaps the selection strategy live, rebuilding the selector
// over the unchanged backend bookkeeping: in-flight counts, decay
// reservoirs and down marks all survive the swap, so a mid-run policy
// change takes effect on the very next Pick. Simulation goroutine only
// (the runtime-configuration plane's routing view drives it).
func (p *Pool) SetPolicy(policy Policy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if policy == p.opts.Policy {
		return
	}
	p.opts.Policy = policy
	p.sel = newSelector(p.opts)
}

// Retune adjusts the reservoir and probe tuning live. Non-positive
// arguments keep the current value. Existing backends' reservoirs pick
// up the new half-life immediately; the probe interval applies to the
// next eligibility check. Simulation goroutine only.
func (p *Pool) Retune(halfLifeSeconds, probeAfterSeconds float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if halfLifeSeconds > 0 {
		p.opts.HalfLifeSeconds = halfLifeSeconds
		for _, b := range p.entries {
			if b.fail.halfLife > 0 {
				b.fail.halfLife = halfLifeSeconds
			}
			if b.lat.halfLife > 0 {
				b.lat.halfLife = halfLifeSeconds
			}
			if b.latN.halfLife > 0 {
				b.latN.halfLife = halfLifeSeconds
			}
		}
	}
	if probeAfterSeconds > 0 {
		p.opts.ProbeAfterSeconds = probeAfterSeconds
	}
}

func (p *Pool) now() float64 {
	if p.opts.Now != nil {
		p.lastNow = p.opts.Now()
	}
	return p.lastNow
}

func (p *Pool) lookup(name string) *Backend {
	for _, b := range p.entries {
		if b.name == name {
			return b
		}
	}
	return nil
}

// Add registers a backend with a positive weight.
func (p *Pool) Add(name string, weight int) error {
	if weight <= 0 {
		return fmt.Errorf("%w: %d for %s", ErrBadWeight, weight, name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lookup(name) != nil {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	p.entries = append(p.entries, &Backend{name: name, weight: weight, credit: weight})
	return nil
}

// Remove unregisters a backend cleanly (shrink, unbind) and fires the
// eviction hooks so affinity tables drop their entries.
func (p *Pool) Remove(name string) error {
	if !p.remove(name) {
		return fmt.Errorf("%w: %s", ErrUnknown, name)
	}
	return nil
}

// Discard drops a backend that has been fenced or declared dead. Unlike
// Remove it is idempotent: discarding an unknown name is a no-op (the
// repair path may race a clean leave). Eviction hooks fire either way a
// backend leaves, so sticky sessions can never keep routing to it.
func (p *Pool) Discard(name string) {
	p.remove(name)
}

func (p *Pool) remove(name string) bool {
	p.mu.Lock()
	found := false
	for i, b := range p.entries {
		if b.name == name {
			p.entries = append(p.entries[:i], p.entries[i+1:]...)
			found = true
			break
		}
	}
	hooks := p.onEvict
	p.mu.Unlock()
	if found {
		// Outside the lock: hooks may re-enter the pool.
		for _, fn := range hooks {
			fn(name)
		}
	}
	return found
}

// OnEvict registers a hook fired (outside the pool lock) whenever a
// backend leaves the pool, by Remove or Discard. The PLB session table
// and the C-JDBC controller subscribe here to evict affinity entries
// for departed backends.
func (p *Pool) OnEvict(fn func(name string)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onEvict = append(p.onEvict, fn)
}

// Has reports whether a backend is registered.
func (p *Pool) Has(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lookup(name) != nil
}

// Healthy reports whether a backend is registered and not marked down.
func (p *Pool) Healthy(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.lookup(name)
	return b != nil && !b.down
}

// Len returns the number of registered backends.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Names returns the registered backend names, sorted.
func (p *Pool) Names() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.entries))
	for _, b := range p.entries {
		out = append(out, b.name)
	}
	sort.Strings(out)
	return out
}

// Pendings returns every backend's in-flight count, keyed by name.
// Invariant checkers verify the counts never go negative.
func (p *Pool) Pendings() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.entries))
	for _, b := range p.entries {
		out[b.name] = b.inflight
	}
	return out
}

// Pick selects a backend for a request carrying the given affinity key
// (empty when the request has none). A suspected-down backend is never
// picked while a healthy one exists, with one exception: a backend that
// has been down for ProbeAfterSeconds gets a single probe request
// through; its outcome (reported via Release) decides whether it comes
// back. When every backend is down, Pick degrades to selecting among
// all of them — guessing beats refusing. Returns false only when the
// pool is empty.
func (p *Pool) Pick(key string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.entries) == 0 {
		return "", false
	}
	now := p.now()
	// A due probe preempts the policy: one request tests the backend.
	for _, b := range p.entries {
		if b.down && !b.probing && now-b.downSince >= p.opts.ProbeAfterSeconds {
			b.probing = true
			return b.name, true
		}
	}
	elig := make([]*Backend, 0, len(p.entries))
	for _, b := range p.entries {
		if !b.down {
			elig = append(elig, b)
		}
	}
	if len(elig) == 0 {
		elig = append(elig, p.entries...)
	}
	b := p.sel.Pick(elig, Context{Key: key, Now: now})
	return b.name, true
}

// Acquire records a request dispatched to a backend. No-op for a name
// no longer in the pool.
func (p *Pool) Acquire(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b := p.lookup(name); b != nil {
		b.inflight++
	}
}

// Release records a request's completion: its latency feeds the decay
// reservoirs, a failure counts against the backend, and a probe's
// outcome decides whether a down backend returns to rotation. No-op for
// a name no longer in the pool (its entry left while the request was in
// flight).
func (p *Pool) Release(name string, latencySeconds float64, failed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.lookup(name)
	if b == nil {
		return
	}
	if b.inflight > 0 {
		b.inflight--
	}
	now := p.now()
	if failed {
		b.failed++
		b.fail.halfLife = p.opts.HalfLifeSeconds
		b.fail.add(now, 1)
		if b.probing {
			// Probe failed: stay down, rearm the probe timer.
			b.probing = false
			b.downSince = now
		}
		return
	}
	b.served++
	if latencySeconds >= 0 {
		b.lat.halfLife = p.opts.HalfLifeSeconds
		b.latN.halfLife = p.opts.HalfLifeSeconds
		b.lat.add(now, latencySeconds)
		b.latN.add(now, 1)
	}
	if b.down {
		// A success (probe or straggler) clears the suspicion locally;
		// SyncSuspicions may re-mark it on the next detector pass.
		b.down = false
		b.probing = false
	}
}

// MarkDown marks a backend suspected-down: the policy stops picking it
// (probes excepted) until MarkUp, a successful probe, or a cleared
// suspicion.
func (p *Pool) MarkDown(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b := p.lookup(name); b != nil && !b.down {
		b.down = true
		b.probing = false
		b.downSince = p.now()
	}
}

// MarkUp clears a backend's down mark.
func (p *Pool) MarkUp(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b := p.lookup(name); b != nil {
		b.down = false
		b.probing = false
	}
}

// SyncSuspicions reconciles every backend's down mark with the failure
// detector: suspected backends go down, cleared ones come back. The
// platform calls this on each sensor pass when a detector is armed.
func (p *Pool) SyncSuspicions(s Suspector) {
	if s == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	for _, b := range p.entries {
		suspected := s.Suspected(b.name)
		if suspected && !b.down {
			b.down = true
			b.probing = false
			b.downSince = now
		} else if !suspected && b.down {
			b.down = false
			b.probing = false
		}
	}
}

// Status is one backend's introspection snapshot.
type Status struct {
	Name     string
	Weight   int
	InFlight int
	Served   uint64
	Failed   uint64
	Down     bool
	Score    float64
	// Decayed reservoir views at the cached clock: the exponentially
	// decayed mean request latency in seconds (0 until a sample lands),
	// the decayed sample count behind it, and the decayed failure count.
	// These are what the alerting plane's pool-skew rules compare across
	// backends — a gray replica's reservoirs diverge long before the
	// failure detector sees anything.
	MeanLatency    float64
	LatencySamples float64
	DecayedFails   float64
}

// Snapshot returns a consistent view of every backend in registration
// order. Reading scores is pure and the clock is the cached one, so a
// concurrent scraper can never perturb a deterministic run (or race the
// engine's clock).
func (p *Pool) Snapshot() []Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.lastNow
	out := make([]Status, 0, len(p.entries))
	for _, b := range p.entries {
		st := Status{
			Name:     b.name,
			Weight:   b.weight,
			InFlight: b.inflight,
			Served:   b.served,
			Failed:   b.failed,
			Down:     b.down,
			Score:    b.Score(now, p.opts.FailureWeight, p.opts.LatencyWeight),
		}
		st.LatencySamples = b.latN.valueAt(now)
		if st.LatencySamples > 1e-9 {
			st.MeanLatency = b.lat.valueAt(now) / st.LatencySamples
		}
		st.DecayedFails = b.fail.valueAt(now)
		out = append(out, st)
	}
	return out
}
