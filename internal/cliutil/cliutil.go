// Package cliutil backs the command-line front ends: namespaced flags
// keep their old spellings alive as hidden deprecated aliases that
// forward to the canonical flag and warn once on first use.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"strings"
)

// deprecatedPrefix marks an alias flag's usage string; the canonical
// flag's name follows it (never rendered — aliases are hidden).
const deprecatedPrefix = "\x00alias:"

// Warnings receives the one-shot deprecation warnings (os.Stderr in the
// commands; swapped out in tests).
var Warnings io.Writer = io.Discard

// aliasValue proxies an old flag spelling onto the canonical flag's
// value, warning once on first use.
type aliasValue struct {
	target         flag.Value
	old, canonical string
	warned         *bool
}

func (a aliasValue) String() string {
	if a.target == nil {
		return ""
	}
	return a.target.String()
}

func (a aliasValue) Set(s string) error {
	if !*a.warned {
		fmt.Fprintf(Warnings, "warning: -%s is deprecated; use -%s\n", a.old, a.canonical)
		*a.warned = true
	}
	return a.target.Set(s)
}

// IsBoolFlag keeps `-alias` (no value) working for boolean canonicals.
func (a aliasValue) IsBoolFlag() bool {
	b, ok := a.target.(interface{ IsBoolFlag() bool })
	return ok && b.IsBoolFlag()
}

// Alias registers old as a hidden deprecated spelling of the already
// registered canonical flag. Parsing -old sets the canonical flag's
// value and prints a one-time deprecation warning to Warnings.
func Alias(fs *flag.FlagSet, canonical, old string) {
	f := fs.Lookup(canonical)
	if f == nil {
		panic("cliutil.Alias: unknown canonical flag -" + canonical)
	}
	fs.Var(aliasValue{target: f.Value, old: old, canonical: canonical, warned: new(bool)},
		old, deprecatedPrefix+canonical)
}

// CanonicalName resolves a flag name that may be a deprecated alias to
// its canonical name (names that aren't aliases pass through).
func CanonicalName(fs *flag.FlagSet, name string) string {
	f := fs.Lookup(name)
	if f != nil && strings.HasPrefix(f.Usage, deprecatedPrefix) {
		return strings.TrimPrefix(f.Usage, deprecatedPrefix)
	}
	return name
}

// SetVisited calls fn once per canonical flag that was set on the
// command line, resolving deprecated aliases to their canonical names
// (and deduplicating when both spellings appear).
func SetVisited(fs *flag.FlagSet, fn func(name string)) {
	seen := map[string]bool{}
	fs.Visit(func(f *flag.Flag) {
		name := CanonicalName(fs, f.Name)
		if !seen[name] {
			seen[name] = true
			fn(name)
		}
	})
}

// PrintDefaults writes fs's flag listing to w, hiding deprecated
// aliases (flag.FlagSet.PrintDefaults would render them).
func PrintDefaults(fs *flag.FlagSet, w io.Writer) {
	fs.VisitAll(func(f *flag.Flag) {
		if strings.HasPrefix(f.Usage, deprecatedPrefix) {
			return
		}
		name, usage := flag.UnquoteUsage(f)
		line := "  -" + f.Name
		if name != "" {
			line += " " + name
		}
		fmt.Fprintf(w, "%s\n    \t%s", line, usage)
		if f.DefValue != "" && f.DefValue != "false" && f.DefValue != "0" {
			fmt.Fprintf(w, " (default %v)", f.DefValue)
		}
		fmt.Fprintln(w)
	})
}
