package cliutil

import (
	"flag"
	"fmt"

	"jade"
)

// specEntry is one scenario-override flag: its canonical name, optional
// deprecated alias, the group of jade.ScenarioConfig fields it reaches
// after Flatten, and typed register/apply hooks.
type specEntry struct {
	name, alias, group string
	register           func(fs *flag.FlagSet) func(*jade.Spec)
}

func stringEntry(name, alias, group, def, usage string, set func(*jade.Spec, string)) specEntry {
	return specEntry{name: name, alias: alias, group: group,
		register: func(fs *flag.FlagSet) func(*jade.Spec) {
			v := fs.String(name, def, usage)
			return func(s *jade.Spec) { set(s, *v) }
		}}
}

func float64Entry(name, alias, group string, def float64, usage string, set func(*jade.Spec, float64)) specEntry {
	return specEntry{name: name, alias: alias, group: group,
		register: func(fs *flag.FlagSet) func(*jade.Spec) {
			v := fs.Float64(name, def, usage)
			return func(s *jade.Spec) { set(s, *v) }
		}}
}

func intEntry(name, alias, group string, def int, usage string, set func(*jade.Spec, int)) specEntry {
	return specEntry{name: name, alias: alias, group: group,
		register: func(fs *flag.FlagSet) func(*jade.Spec) {
			v := fs.Int(name, def, usage)
			return func(s *jade.Spec) { set(s, *v) }
		}}
}

func boolEntry(name, alias, group string, usage string, set func(*jade.Spec, bool)) specEntry {
	return specEntry{name: name, alias: alias, group: group,
		register: func(fs *flag.FlagSet) func(*jade.Spec) {
			v := fs.Bool(name, false, usage)
			return func(s *jade.Spec) { set(s, *v) }
		}}
}

// specTable is the single registry of every flag that overrides a
// jade.Spec field. jadectl and jadebench both register from here, so a
// new refreshable field needs exactly one entry to reach every CLI.
var specTable = []specEntry{
	boolEntry("sessions", "", "sessions", "use Markov sessions instead of i.i.d. interaction sampling",
		func(s *jade.Spec, v bool) { s.Workload.Sessions = v }),
	boolEntry("recovery", "", "recovery", "arm the self-recovery manager",
		func(s *jade.Spec, v bool) { s.Recovery = v }),
	stringEntry("workload.mode", "", "workload", "", "workload engine: discrete|fluid|auto (empty = discrete)",
		func(s *jade.Spec, v string) { s.Workload.Mode = v }),
	float64Entry("workload.tick", "", "workload", 0, "fluid model tick in simulated seconds (0 = default 1)",
		func(s *jade.Spec, v float64) { s.Workload.FluidTickSeconds = v }),
	float64Entry("workload.sample-rate", "", "workload", 0, "fraction of clients kept as real discrete chains in fluid mode (0 = default 0.02)",
		func(s *jade.Spec, v float64) { s.Workload.FluidSampleRate = v }),
	float64Entry("fault.mtbf", "mtbf", "fault", 0, "inject node crashes with this mean time between failures (seconds; 0 = none)",
		func(s *jade.Spec, v float64) { s.Faults.MTBFSeconds = v }),
	stringEntry("route.policy", "", "route", "", "routing policy for every tier: round-robin|weighted-round-robin|least-pending|balanced|rendezvous (empty = per-tier defaults)",
		func(s *jade.Spec, v string) { s.Routing.Policy = v }),
	stringEntry("route.l4", "", "route", "", "routing policy for the L4 switch (overrides -route.policy)",
		func(s *jade.Spec, v string) { s.Routing.L4 = v }),
	stringEntry("route.app", "", "route", "", "routing policy for the PLB application tier (overrides -route.policy)",
		func(s *jade.Spec, v string) { s.Routing.App = v }),
	stringEntry("route.db", "", "route", "", "read policy for the C-JDBC database tier (overrides -route.policy)",
		func(s *jade.Spec, v string) { s.Routing.DB = v }),
	float64Entry("route.probe-after", "", "route", 0, "seconds before a suspected-down backend is probed back in (0 = default)",
		func(s *jade.Spec, v float64) { s.Routing.ProbeAfterSeconds = v }),
	float64Entry("route.half-life", "", "route", 0, "half-life of the balanced policy's failure/latency reservoirs (seconds; 0 = default)",
		func(s *jade.Spec, v float64) { s.Routing.HalfLifeSeconds = v }),
	boolEntry("net.enable", "", "net", "route inter-tier calls and heartbeats over the simulated network",
		func(s *jade.Spec, v bool) { s.Faults.Network.Enabled = v }),
	float64Entry("net.latency", "", "net", 0.3, "default link latency (milliseconds)",
		func(s *jade.Spec, v float64) { s.Faults.Network.Default.LatencyMS = v }),
	float64Entry("net.jitter", "", "net", 0, "default link jitter (milliseconds)",
		func(s *jade.Spec, v float64) { s.Faults.Network.Default.JitterMS = v }),
	float64Entry("net.loss", "", "net", 0, "default link loss probability, in [0,1)",
		func(s *jade.Spec, v float64) { s.Faults.Network.Default.Loss = v }),
	intEntry("trace.requests", "trace-requests", "telemetry", 0, "open a causal span for every N-th client request (0 = default 25 when tracing)",
		func(s *jade.Spec, v int) { s.Telemetry.TraceRequests = v }),
	stringEntry("metrics.dir", "metrics-dir", "telemetry", "", "write periodic metrics snapshots (Prometheus text + JSON) into this directory",
		func(s *jade.Spec, v string) { s.Telemetry.MetricsDir = v }),
	float64Entry("metrics.interval", "metrics-interval", "telemetry", 60, "snapshot period in simulated seconds",
		func(s *jade.Spec, v float64) { s.Telemetry.MetricsIntervalSeconds = v }),
	stringEntry("metrics.http", "http", "telemetry", "", "serve the live admin endpoint on this address (e.g. :8080 or 127.0.0.1:0)",
		func(s *jade.Spec, v string) { s.Telemetry.HTTPAddr = v }),
	boolEntry("alert.off", "", "alert", "disable alerting-rule evaluation",
		func(s *jade.Spec, v bool) { s.Alerting.Off = v }),
	float64Entry("alert.interval", "", "alert", 0, "alert evaluation period in simulated seconds (0 = default 5)",
		func(s *jade.Spec, v float64) { s.Alerting.EvalIntervalSeconds = v }),
	float64Entry("alert.fast", "", "alert", 0, "fast burn-rate window in simulated seconds (0 = default 60)",
		func(s *jade.Spec, v float64) { s.Alerting.FastWindowSeconds = v }),
	float64Entry("alert.slow", "", "alert", 0, "slow burn-rate window in simulated seconds (0 = default 600)",
		func(s *jade.Spec, v float64) { s.Alerting.SlowWindowSeconds = v }),
	float64Entry("alert.page-burn", "", "alert", 0, "error-budget burn rate that pages (0 = default 14.4)",
		func(s *jade.Spec, v float64) { s.Alerting.PageBurn = v }),
	float64Entry("alert.warn-burn", "", "alert", 0, "error-budget burn rate that warns (0 = default 3)",
		func(s *jade.Spec, v float64) { s.Alerting.WarnBurn = v }),
	float64Entry("alert.z", "", "alert", 0, "anomaly z-score threshold (0 = default 4)",
		func(s *jade.Spec, v float64) { s.Alerting.ZThreshold = v }),
	float64Entry("alert.skew", "", "alert", 0, "pool-skew multiplier vs the pool median (0 = default 3)",
		func(s *jade.Spec, v float64) { s.Alerting.SkewFactor = v }),
	float64Entry("alert.hysteresis", "", "alert", 0, "seconds an alert's condition must stay clear before it resolves (0 = default 30)",
		func(s *jade.Spec, v float64) { s.Alerting.HysteresisSeconds = v }),
	boolEntry("alert.monitor", "", "alert", "arm the φ-accrual heartbeat detector as a signal source without recovery (requires -net.enable)",
		func(s *jade.Spec, v bool) { s.Alerting.MonitorReplicas = v }),
}

// scenarioGroups copies one flag group's flattened fields onto an
// already-built ScenarioConfig, for commands (jadebench) that construct
// run configs directly instead of flattening a Spec.
var scenarioGroups = map[string]func(dst *jade.ScenarioConfig, src jade.ScenarioConfig){
	"sessions": func(d *jade.ScenarioConfig, s jade.ScenarioConfig) { d.Sessions = s.Sessions },
	"recovery": func(d *jade.ScenarioConfig, s jade.ScenarioConfig) { d.Recovery = s.Recovery },
	"workload": func(d *jade.ScenarioConfig, s jade.ScenarioConfig) {
		d.WorkloadMode, d.FluidTick, d.FluidSampleRate = s.WorkloadMode, s.FluidTick, s.FluidSampleRate
	},
	"fault": func(d *jade.ScenarioConfig, s jade.ScenarioConfig) { d.MTBFSeconds = s.MTBFSeconds },
	"route": func(d *jade.ScenarioConfig, s jade.ScenarioConfig) { d.Routing = s.Routing },
	"net":   func(d *jade.ScenarioConfig, s jade.ScenarioConfig) { d.Net = s.Net },
	"alert": func(d *jade.ScenarioConfig, s jade.ScenarioConfig) { d.Alerting, d.Monitor = s.Alerting, s.Monitor },
	"telemetry": func(d *jade.ScenarioConfig, s jade.ScenarioConfig) {
		d.TraceRequests, d.MetricsDir, d.MetricsInterval, d.HTTPAddr =
			s.TraceRequests, s.MetricsDir, s.MetricsInterval, s.HTTPAddr
	},
}

// SpecFlags is a set of registered scenario-override flags bound to one
// FlagSet. Build with RegisterSpecFlags or RegisterSpecGroups.
type SpecFlags struct {
	fs      *flag.FlagSet
	apply   map[string]func(*jade.Spec)
	group   map[string]string
	ordered []string
}

// RegisterSpecFlags registers every spec-override flag (plus deprecated
// aliases) on fs.
func RegisterSpecFlags(fs *flag.FlagSet) *SpecFlags {
	return RegisterSpecGroups(fs)
}

// RegisterSpecGroups registers the spec-override flags belonging to the
// named groups (all groups when none are given). Groups: sessions,
// recovery, workload, fault, route, net, alert, telemetry.
func RegisterSpecGroups(fs *flag.FlagSet, groups ...string) *SpecFlags {
	want := map[string]bool{}
	for _, g := range groups {
		want[g] = true
	}
	sf := &SpecFlags{fs: fs, apply: map[string]func(*jade.Spec){}, group: map[string]string{}}
	for _, e := range specTable {
		if len(groups) > 0 && !want[e.group] {
			continue
		}
		sf.apply[e.name] = e.register(fs)
		sf.group[e.name] = e.group
		sf.ordered = append(sf.ordered, e.name)
		if e.alias != "" {
			Alias(fs, e.name, e.alias)
		}
	}
	return sf
}

// Apply applies one canonical flag's current value to spec, reporting
// whether the name is a registered spec flag.
func (sf *SpecFlags) Apply(spec *jade.Spec, name string) bool {
	fn, ok := sf.apply[name]
	if !ok {
		return false
	}
	fn(spec)
	return true
}

// ApplyAll applies every registered flag's current value (set or
// default) to spec, in table order.
func (sf *SpecFlags) ApplyAll(spec *jade.Spec) {
	for _, name := range sf.ordered {
		sf.apply[name](spec)
	}
}

// VisitedNames returns the canonical names of registered spec flags
// that were explicitly set on the command line.
func (sf *SpecFlags) VisitedNames() []string {
	var out []string
	SetVisited(sf.fs, func(name string) {
		if _, ok := sf.apply[name]; ok {
			out = append(out, name)
		}
	})
	return out
}

// ScenarioOverride builds a mutator that imposes the explicitly-set
// spec flags onto a ScenarioConfig another command assembled itself:
// the flags are applied to a default Spec, flattened, and the flattened
// field groups of the visited flags copied over. Returns nil when no
// spec flag was set.
func (sf *SpecFlags) ScenarioOverride() (func(*jade.ScenarioConfig), error) {
	visited := sf.VisitedNames()
	if len(visited) == 0 {
		return nil, nil
	}
	spec := jade.DefaultSpec(1, true)
	for _, name := range visited {
		sf.apply[name](&spec)
	}
	flat, err := spec.Flatten()
	if err != nil {
		return nil, fmt.Errorf("scenario overrides: %w", err)
	}
	groups := map[string]bool{}
	for _, name := range visited {
		groups[sf.group[name]] = true
	}
	return func(cfg *jade.ScenarioConfig) {
		for g := range groups {
			if copyGroup, ok := scenarioGroups[g]; ok {
				copyGroup(cfg, flat)
			}
		}
	}, nil
}
