package cliutil

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

func newSet() (*flag.FlagSet, *float64, *bool) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	mtbf := fs.Float64("fault.mtbf", 0, "mean time between failures")
	serve := fs.Bool("metrics.serve", false, "keep serving")
	Alias(fs, "fault.mtbf", "mtbf")
	Alias(fs, "metrics.serve", "serve")
	return fs, mtbf, serve
}

func TestAliasForwardsAndWarnsOnce(t *testing.T) {
	var warnings bytes.Buffer
	old := Warnings
	Warnings = &warnings
	defer func() { Warnings = old }()

	fs, mtbf, serve := newSet()
	if err := fs.Parse([]string{"-mtbf", "300", "-mtbf", "200", "-serve"}); err != nil {
		t.Fatal(err)
	}
	if *mtbf != 200 {
		t.Fatalf("alias did not forward: mtbf = %v", *mtbf)
	}
	if !*serve {
		t.Fatal("boolean alias without value did not forward")
	}
	if n := strings.Count(warnings.String(), "-mtbf is deprecated"); n != 1 {
		t.Fatalf("want exactly 1 warning for repeated -mtbf, got %d:\n%s", n, warnings.String())
	}
	if !strings.Contains(warnings.String(), "use -fault.mtbf") {
		t.Fatalf("warning does not name the canonical flag:\n%s", warnings.String())
	}
}

func TestCanonicalFlagDoesNotWarn(t *testing.T) {
	var warnings bytes.Buffer
	old := Warnings
	Warnings = &warnings
	defer func() { Warnings = old }()

	fs, mtbf, _ := newSet()
	if err := fs.Parse([]string{"-fault.mtbf", "60"}); err != nil {
		t.Fatal(err)
	}
	if *mtbf != 60 || warnings.Len() != 0 {
		t.Fatalf("mtbf=%v warnings=%q", *mtbf, warnings.String())
	}
}

func TestSetVisitedResolvesAliases(t *testing.T) {
	fs, _, _ := newSet()
	if err := fs.Parse([]string{"-mtbf", "300", "-metrics.serve"}); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	SetVisited(fs, func(name string) { got[name] = true })
	if !got["fault.mtbf"] || !got["metrics.serve"] || len(got) != 2 {
		t.Fatalf("visited = %v", got)
	}
}

func TestPrintDefaultsHidesAliases(t *testing.T) {
	fs, _, _ := newSet()
	var out bytes.Buffer
	PrintDefaults(fs, &out)
	s := out.String()
	if !strings.Contains(s, "-fault.mtbf") || !strings.Contains(s, "-metrics.serve") {
		t.Fatalf("canonical flags missing:\n%s", s)
	}
	if strings.Contains(s, "  -mtbf") || strings.Contains(s, "  -serve") {
		t.Fatalf("deprecated aliases leaked into usage:\n%s", s)
	}
}
