package cjdbc

import (
	"errors"
	"fmt"
	"sort"

	"jade/internal/cluster"
	"jade/internal/fluid"
	"jade/internal/legacy"
	"jade/internal/obs"
	"jade/internal/selector"
	"jade/internal/sim"
	"jade/internal/sqlengine"
	"jade/internal/trace"
)

// Errors returned by the controller.
var (
	ErrNoBackend      = errors.New("cjdbc: no active backend")
	ErrBackendExists  = errors.New("cjdbc: backend already registered")
	ErrUnknownBackend = errors.New("cjdbc: unknown backend")
	ErrNotActive      = errors.New("cjdbc: backend not active")
	ErrNotRunning     = errors.New("cjdbc: controller not running")
	ErrBackendDown    = errors.New("cjdbc: backend server not running")
)

// BackendState is a backend's role in the virtual database.
type BackendState int

// Backend states.
const (
	// Syncing: replaying the recovery log before activation.
	Syncing BackendState = iota
	// Active: serving reads and applying broadcast writes.
	Active
	// Disabled: cleanly removed; its checkpoint is in the recovery log.
	Disabled
	// Dead: dropped after an execution failure (e.g. node crash).
	Dead
)

func (s BackendState) String() string {
	switch s {
	case Syncing:
		return "SYNCING"
	case Active:
		return "ACTIVE"
	case Disabled:
		return "DISABLED"
	case Dead:
		return "DEAD"
	}
	return "?"
}

// backend tracks one MySQL replica inside the controller.
type backend struct {
	name  string
	srv   *legacy.MySQL
	state BackendState
	// applied is the next log index this backend needs: every record
	// with Index < applied has been executed on it.
	applied int64
	// stopAt bounds the pump for a backend leaving cleanly: it still
	// applies every record below stopAt (writes it owes acks for), then
	// checkpoints and disables.
	stopAt int64 // -1 when unbounded
	busy   bool
	// onSynced fires when a Syncing backend catches up.
	onSynced func(error)
	// onLeft fires when a Disabled-pending backend finishes draining.
	onLeft func(int64)
}

// writeWait tracks one broadcast write's outstanding acknowledgements.
type writeWait struct {
	waitingOn map[string]bool
	successes int
	done      func(error)
	firstErr  error
}

// Options tunes the controller.
type Options struct {
	// Port is the controller's listening port (C-JDBC's default 25322).
	Port int
	// ProxyCost is CPU-seconds on the controller node per request.
	ProxyCost float64
	// MemoryMB is the controller JVM footprint, held while running.
	MemoryMB float64
	// Routing configures the read-balancing policy and its backend pool
	// (selector least-pending by default, C-JDBC's historic behavior).
	// Only Active backends enter the pool; writes always broadcast.
	Routing selector.Options
}

// DefaultOptions mirrors C-JDBC 2.0.2 with RAIDb-1 (full mirroring).
func DefaultOptions() Options {
	return Options{Port: 25322, ProxyCost: 0.0005, Routing: selector.DefaultOptions(selector.LeastPending), MemoryMB: 150}
}

// Controller is the C-JDBC virtual database controller.
type Controller struct {
	eng     *sim.Engine
	net     *legacy.Network
	node    *cluster.Node
	name    string
	opts    Options
	addr    string
	running bool

	log      *RecoveryLog
	backends []*backend
	pool     *selector.Pool
	waiters  map[int64]*writeWait

	reads    uint64
	writes   uint64
	failures uint64

	// Trace, when set, records backend membership transitions and, for
	// queries carrying a TraceSpan, a "sql" child span with the chosen
	// backend. All Tracer methods are nil-receiver safe.
	Trace *trace.Tracer
	// Obs, when set, records per-query counters and latency for the
	// controller instance. Nil-safe like Trace.
	Obs *obs.TierMetrics
}

// New creates a stopped controller on node.
func New(eng *sim.Engine, net *legacy.Network, node *cluster.Node, name string, opts Options) *Controller {
	ropts := opts.Routing
	ropts.Now = eng.Now
	return &Controller{
		eng:     eng,
		net:     net,
		node:    node,
		name:    name,
		opts:    opts,
		log:     NewRecoveryLog(),
		pool:    selector.New(ropts),
		waiters: make(map[int64]*writeWait),
	}
}

// Name returns the controller's name.
func (c *Controller) Name() string { return c.name }

// Node returns the controller's node.
func (c *Controller) Node() *cluster.Node { return c.node }

// Addr returns the registered address while running.
func (c *Controller) Addr() string { return c.addr }

// Running reports whether the controller is serving.
func (c *Controller) Running() bool { return c.running }

// Log exposes the recovery log (read-mostly; the experiment harness and
// the ablation benches inspect it).
func (c *Controller) Log() *RecoveryLog { return c.log }

// FluidModel exposes the controller's service model to the fluid
// workload network: every proxied query costs ProxyCost CPU-seconds on
// the controller node (the demand unit is the query, not the request —
// multiply by the mix's mean queries per request). The backend tier it
// feeds splits reads across the active replicas and broadcasts writes to
// all of them, per RAIDb-1.
func (c *Controller) FluidModel() fluid.ServiceModel {
	return fluid.ServiceModel{
		Name:        c.name,
		Node:        c.node,
		CostPerUnit: c.opts.ProxyCost,
		Up:          func() bool { return c.running },
	}
}

// Reads returns the number of read requests served.
func (c *Controller) Reads() uint64 { return c.reads }

// Writes returns the number of write requests accepted.
func (c *Controller) Writes() uint64 { return c.writes }

// Failures returns the number of requests that ultimately failed.
func (c *Controller) Failures() uint64 { return c.failures }

// Pool exposes the read-balancing backend pool (suspicion feeding,
// introspection). It holds exactly the Active backends.
func (c *Controller) Pool() *selector.Pool { return c.pool }

// Start registers the controller's listener.
func (c *Controller) Start() error {
	if c.running {
		return fmt.Errorf("cjdbc %s: already running", c.name)
	}
	if err := c.node.AllocMemory(c.opts.MemoryMB); err != nil {
		return err
	}
	addr := fmt.Sprintf("%s:%d", c.node.Name(), c.opts.Port)
	if err := c.net.Register(addr, c); err != nil {
		c.node.FreeMemory(c.opts.MemoryMB)
		return err
	}
	c.addr = addr
	c.running = true
	return nil
}

// Stop unregisters the listener.
func (c *Controller) Stop() {
	if !c.running {
		return
	}
	c.net.Unregister(c.addr)
	c.addr = ""
	c.running = false
	c.node.FreeMemory(c.opts.MemoryMB)
}

func (c *Controller) lookup(name string) *backend {
	for _, b := range c.backends {
		if b.name == name {
			return b
		}
	}
	return nil
}

// Join registers a MySQL replica under name and synchronizes it. A
// backend with a recorded checkpoint resumes replay from it; a brand-new
// backend replays from index 0 and must have been loaded with the virtual
// database's initial snapshot beforehand (see SnapshotFrom / the Software
// Installation Service in the core package). done fires when the backend
// becomes Active.
func (c *Controller) Join(name string, srv *legacy.MySQL, done func(error)) error {
	start, ok := c.log.Checkpoint(name)
	if !ok {
		start = 0
	}
	return c.JoinAt(name, srv, start, done)
}

// JoinAt registers a replica whose state corresponds to the given recovery
// log index (it has executed every write below startIndex).
func (c *Controller) JoinAt(name string, srv *legacy.MySQL, startIndex int64, done func(error)) error {
	// A backend still registered is either serving (Active/Syncing) or
	// draining towards its checkpoint (Disabled but not yet dropped);
	// both refuse a concurrent rejoin — only a Dead entry is replaced.
	// A cleanly removed backend is no longer registered and rejoins via
	// its recovery-log checkpoint.
	if b := c.lookup(name); b != nil && b.state != Dead {
		return fmt.Errorf("%w: %s", ErrBackendExists, name)
	}
	if srv.State() != legacy.Running {
		return fmt.Errorf("%w: %s is %s", ErrBackendDown, name, srv.State())
	}
	if startIndex < 0 || startIndex > c.log.Len() {
		return fmt.Errorf("cjdbc: join index %d outside log [0,%d]", startIndex, c.log.Len())
	}
	// Re-registration replaces a Dead/Disabled entry.
	if old := c.lookup(name); old != nil {
		c.drop(old)
	}
	b := &backend{name: name, srv: srv, state: Syncing, applied: startIndex, stopAt: -1, onSynced: done}
	c.backends = append(c.backends, b)
	c.log.DropCheckpoint(name)
	c.Trace.Emit("membership.join", c.name,
		trace.F("backend", name), trace.Fi("log-index", int(startIndex)), trace.Fi("backends", len(c.backends)))
	c.pump(b)
	return nil
}

func (c *Controller) drop(b *backend) {
	for i, x := range c.backends {
		if x == b {
			c.backends = append(c.backends[:i], c.backends[i+1:]...)
			return
		}
	}
}

// Leave cleanly disables an Active backend. It finishes applying every
// write already logged, then records its checkpoint index in the recovery
// log and stops. done (optional) receives the checkpoint index.
func (c *Controller) Leave(name string, done func(checkpoint int64)) error {
	b := c.lookup(name)
	if b == nil {
		return fmt.Errorf("%w: %s", ErrUnknownBackend, name)
	}
	if b.state != Active {
		return fmt.Errorf("%w: %s is %s", ErrNotActive, name, b.state)
	}
	b.stopAt = c.log.Len()
	b.onLeft = done
	if b.applied >= b.stopAt && !b.busy {
		c.finishLeave(b)
		return nil
	}
	// Mark as draining: no longer eligible for reads, still acking writes.
	b.state = Disabled
	c.pool.Discard(b.name)
	return nil
}

func (c *Controller) finishLeave(b *backend) {
	b.state = Disabled
	c.pool.Discard(b.name)
	c.log.SetCheckpoint(b.name, b.applied)
	c.drop(b)
	c.Trace.Emit("membership.leave", c.name,
		trace.F("backend", b.name), trace.Fi("checkpoint", int(b.applied)), trace.Fi("backends", len(c.backends)))
	if b.onLeft != nil {
		b.onLeft(b.applied)
		b.onLeft = nil
	}
}

// MarkFailed drops a backend administratively (e.g. the self-recovery
// manager detected its node crashed before any query touched it). The
// backend's outstanding write acknowledgements fail over to the
// survivors.
func (c *Controller) MarkFailed(name string, cause error) error {
	b := c.lookup(name)
	if b == nil {
		return fmt.Errorf("%w: %s", ErrUnknownBackend, name)
	}
	if cause == nil {
		cause = ErrBackendDown
	}
	c.markDead(b, cause)
	return nil
}

// markDead drops a backend after an execution failure and fails its
// outstanding write acknowledgements.
func (c *Controller) markDead(b *backend, cause error) {
	if b.state == Dead {
		return
	}
	b.state = Dead
	// Evict from the read pool first so retries (and any sticky affinity
	// downstream) can never route back to the dead backend.
	c.pool.Discard(b.name)
	c.drop(b)
	c.Trace.Emit("membership.dead", c.name,
		trace.F("backend", b.name), trace.F("cause", cause.Error()), trace.Fi("backends", len(c.backends)))
	// Fail outstanding acknowledgements in log order: their completion
	// callbacks re-enter the simulation, so iteration order must be
	// deterministic.
	idxs := make([]int64, 0, len(c.waiters))
	for idx := range c.waiters {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		w := c.waiters[idx]
		if w.waitingOn[b.name] {
			delete(w.waitingOn, b.name)
			if w.firstErr == nil {
				w.firstErr = cause
			}
			c.maybeFinishWrite(idx, w)
		}
	}
	if b.onSynced != nil {
		b.onSynced(fmt.Errorf("cjdbc: backend %s died during sync: %w", b.name, cause))
		b.onSynced = nil
	}
	if b.onLeft != nil {
		// A draining backend that dies still yields its last index.
		c.log.SetCheckpoint(b.name, b.applied)
		b.onLeft(b.applied)
		b.onLeft = nil
	}
}

// pump drives a backend's apply loop: execute the next owed log record,
// then reconsider state transitions.
func (c *Controller) pump(b *backend) {
	if b.busy || b.state == Dead {
		return
	}
	limit := c.log.Len()
	if b.stopAt >= 0 && b.stopAt < limit {
		limit = b.stopAt
	}
	if b.applied >= limit {
		// Caught up.
		switch {
		case b.state == Syncing:
			b.state = Active
			if err := c.pool.Add(b.name, 1); err != nil {
				// Unreachable if state bookkeeping is right (the pool holds
				// exactly the Active backends), but never let it wedge a sync.
				c.pool.Discard(b.name)
				_ = c.pool.Add(b.name, 1)
			}
			c.Trace.Emit("membership.active", c.name,
				trace.F("backend", b.name), trace.Fi("applied", int(b.applied)))
			if b.onSynced != nil {
				fn := b.onSynced
				b.onSynced = nil
				fn(nil)
			}
		case b.stopAt >= 0 && b.applied >= b.stopAt:
			c.finishLeave(b)
		}
		return
	}
	rec, ok := c.log.At(b.applied)
	if !ok {
		return
	}
	b.busy = true
	// Only applies the client is still waiting on keep the query's trace
	// span: a syncing or draining backend replays the log after the write
	// already completed, and a child span closing after its parent would
	// break span-tree well-formedness (and misattribute latency).
	q := rec.Query
	if w, ok := c.waiters[rec.Index]; !ok || !w.waitingOn[b.name] {
		q.TraceSpan = 0
	}
	c.net.ForwardSQL(c.node.Name(), "sql", b.srv, q, func(err error) {
		b.busy = false
		if err != nil {
			c.markDead(b, err)
			return
		}
		b.applied = rec.Index + 1
		c.ack(rec.Index, b)
		c.pump(b)
	})
}

// ack records that a backend applied the write at idx.
func (c *Controller) ack(idx int64, b *backend) {
	w, ok := c.waiters[idx]
	if !ok || !w.waitingOn[b.name] {
		return
	}
	delete(w.waitingOn, b.name)
	w.successes++
	c.maybeFinishWrite(idx, w)
}

func (c *Controller) maybeFinishWrite(idx int64, w *writeWait) {
	if len(w.waitingOn) > 0 {
		return
	}
	delete(c.waiters, idx)
	if w.successes == 0 {
		c.failures++
		err := w.firstErr
		if err == nil {
			err = ErrNoBackend
		}
		w.done(fmt.Errorf("cjdbc %s: write lost on all backends: %w", c.name, err))
		return
	}
	w.done(nil)
}

// activeBackends returns backends eligible for reads.
func (c *Controller) activeBackends() []*backend {
	var out []*backend
	for _, b := range c.backends {
		if b.state == Active {
			out = append(out, b)
		}
	}
	return out
}

// pickReader selects an active backend through the pool (the query text
// is the affinity key, so the rendezvous policy gives query-to-replica
// cache affinity).
func (c *Controller) pickReader(q legacy.Query) *backend {
	name, ok := c.pool.Pick(q.SQL)
	if !ok {
		return nil
	}
	b := c.lookup(name)
	if b == nil || b.state != Active {
		return nil
	}
	return b
}

// ExecSQL implements the virtual database: writes are logged and
// broadcast to every backend currently applying the log; reads go to one
// active backend chosen by policy, with one retry on backend failure.
func (c *Controller) ExecSQL(q legacy.Query, done func(error)) {
	if !c.running {
		c.Obs.Drop()
		c.failures++
		done(fmt.Errorf("%w: %s", ErrNotRunning, c.name))
		return
	}
	if c.Obs != nil {
		start := c.Obs.Begin()
		orig := done
		done = func(err error) {
			c.Obs.End(start, err)
			orig(err)
		}
	}
	// "busy" records the local queue-wait + service interval on the
	// controller node and "svc" the ideal service time; the attribution
	// walker uses them to split the span's self-time into components.
	var busy float64
	submitted := c.eng.Now()
	if q.TraceSpan != 0 {
		var fields []trace.Field
		if sqlengine.IsWrite(q.SQL) {
			// A write's completion waits on the RAIDb-1 broadcast: time
			// not covered by this record's own applies is queueing for
			// db-tier capacity (earlier log records draining), which the
			// attribution walker charges to the db tier, not this one.
			fields = append(fields, trace.F("waits-on", "db"))
		}
		span := c.Trace.Begin(q.TraceSpan, "sql", c.name, fields...)
		q.TraceSpan = span
		orig := done
		done = func(err error) {
			c.Trace.End(span, trace.Ff("busy", busy),
				trace.Ff("svc", c.opts.ProxyCost/c.node.Config().CPUCapacity), trace.Outcome(err))
			orig(err)
		}
	}
	c.node.Submit(c.opts.ProxyCost, func() {
		busy = c.eng.Now() - submitted
		if sqlengine.IsWrite(q.SQL) {
			c.execWrite(q, done)
		} else {
			c.execRead(q, done, len(c.backends)+1)
		}
	}, func() {
		c.failures++
		done(fmt.Errorf("cjdbc %s: controller node failed", c.name))
	})
}

func (c *Controller) execWrite(q legacy.Query, done func(error)) {
	// The ack set is every backend that will apply this record: actives
	// (client completion waits on them) — syncing and draining backends
	// apply it through their own pumps without gating the client.
	actives := c.activeBackends()
	if len(actives) == 0 {
		c.failures++
		done(fmt.Errorf("%w: cannot write through %s", ErrNoBackend, c.name))
		return
	}
	idx := c.log.Append(q)
	c.writes++
	if q.TraceSpan != 0 {
		c.Trace.EmitIn(q.TraceSpan, "sql.write", c.name,
			trace.Fi("log-index", int(idx)), trace.Fi("acks", len(actives)))
	}
	w := &writeWait{waitingOn: make(map[string]bool, len(actives)), done: done}
	for _, b := range actives {
		w.waitingOn[b.name] = true
	}
	c.waiters[idx] = w
	// Wake every backend that may now have work (actives and syncers).
	for _, b := range c.backends {
		c.pump(b)
	}
}

func (c *Controller) execRead(q legacy.Query, done func(error), attempts int) {
	b := c.pickReader(q)
	if b == nil {
		c.failures++
		done(fmt.Errorf("%w: cannot read through %s", ErrNoBackend, c.name))
		return
	}
	c.pool.Acquire(b.name)
	start := c.eng.Now()
	if q.TraceSpan != 0 {
		c.Trace.EmitIn(q.TraceSpan, "sql.read", c.name, trace.F("backend", b.name))
	}
	c.net.ForwardSQL(c.node.Name(), "sql", b.srv, q, func(err error) {
		// Release feeds the latency/failure reservoirs before markDead
		// evicts the entry, so the failure is recorded against the backend.
		c.pool.Release(b.name, c.eng.Now()-start, err != nil)
		if err != nil {
			c.markDead(b, err)
			if attempts > 1 {
				c.execRead(q, done, attempts-1)
				return
			}
			c.failures++
			done(fmt.Errorf("cjdbc %s: read failed: %w", c.name, err))
			return
		}
		c.reads++
		done(nil)
	})
}

// BackendInfo is a snapshot of one backend's status.
type BackendInfo struct {
	Name    string
	State   BackendState
	Applied int64
	Node    string
}

// Backends returns status for all registered backends, sorted by name.
func (c *Controller) Backends() []BackendInfo {
	out := make([]BackendInfo, 0, len(c.backends))
	for _, b := range c.backends {
		out = append(out, BackendInfo{
			Name:    b.name,
			State:   b.state,
			Applied: b.applied,
			Node:    b.srv.Node().Name(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ActiveCount returns the number of Active backends.
func (c *Controller) ActiveCount() int { return len(c.activeBackends()) }

// SnapshotFrom copies the database state of an Active backend together
// with the recovery-log index it corresponds to. Installing this snapshot
// on a fresh replica and calling JoinAt with the returned index brings it
// into the cluster consistently.
func (c *Controller) SnapshotFrom(name string) (*sqlengine.Engine, int64, error) {
	b := c.lookup(name)
	if b == nil {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnknownBackend, name)
	}
	if b.state != Active {
		return nil, 0, fmt.Errorf("%w: %s is %s", ErrNotActive, name, b.state)
	}
	return b.srv.DB().Snapshot(), b.applied, nil
}

// AnyActiveSnapshot snapshots an arbitrary active backend (the lowest
// name, for determinism).
func (c *Controller) AnyActiveSnapshot() (*sqlengine.Engine, int64, error) {
	actives := c.activeBackends()
	if len(actives) == 0 {
		return nil, 0, ErrNoBackend
	}
	best := actives[0]
	for _, b := range actives[1:] {
		if b.name < best.name {
			best = b
		}
	}
	return c.SnapshotFrom(best.name)
}

// ConsistencyReport compares the fingerprints of all active backends.
// Backends at different applied indices are reported individually; the
// report is Consistent when every active backend at the max applied index
// has the same fingerprint.
type ConsistencyReport struct {
	Consistent   bool
	Fingerprints map[string]uint64
	Applied      map[string]int64
}

// CheckConsistency fingerprints every active backend. It is meaningful
// when the simulation is quiescent (no in-flight writes).
func (c *Controller) CheckConsistency() ConsistencyReport {
	rep := ConsistencyReport{
		Consistent:   true,
		Fingerprints: map[string]uint64{},
		Applied:      map[string]int64{},
	}
	var first uint64
	seen := false
	for _, b := range c.activeBackends() {
		fp := b.srv.DB().Fingerprint()
		rep.Fingerprints[b.name] = fp
		rep.Applied[b.name] = b.applied
		if !seen {
			first = fp
			seen = true
		} else if fp != first {
			rep.Consistent = false
		}
	}
	return rep
}
