// Package cjdbc simulates C-JDBC 2.0, the database clustering middleware
// of the paper's database tier: a controller exposing one virtual
// database over a set of fully mirrored MySQL backends. Reads are
// balanced across active backends; writes are broadcast to all of them in
// a single total order.
//
// Its distinguishing feature for this paper is the *recovery log* (§4.1):
// every write request is logged and indexed as a string, so that a newly
// allocated replica can be brought up to date by replaying exactly the
// writes it missed, and a removed replica is remembered by the index of
// the last write it executed before being disabled.
package cjdbc

import (
	"jade/internal/legacy"
)

// LogRecord is one indexed write request in the recovery log.
type LogRecord struct {
	// Index is the position of this write in the global write order;
	// the first write has index 0.
	Index int64
	// Query is the logged write request (SQL string + its CPU cost,
	// reused when the record is replayed on a stale replica).
	Query legacy.Query
}

// RecoveryLog is the append-only indexed store of write requests. The
// paper implements it as "a particular database whose purpose is to keep
// track of all the requests that affect the state of the database".
type RecoveryLog struct {
	records []LogRecord
	// checkpoints remembers, per disabled backend, the index *after* the
	// last write it executed — i.e. the position replay must resume from.
	checkpoints map[string]int64
}

// NewRecoveryLog returns an empty log.
func NewRecoveryLog() *RecoveryLog {
	return &RecoveryLog{checkpoints: make(map[string]int64)}
}

// Append logs a write request and returns its index.
func (l *RecoveryLog) Append(q legacy.Query) int64 {
	idx := int64(len(l.records))
	l.records = append(l.records, LogRecord{Index: idx, Query: q})
	return idx
}

// Len returns the number of logged writes (also the index the next write
// will get).
func (l *RecoveryLog) Len() int64 { return int64(len(l.records)) }

// From returns the records with Index >= from, in order.
func (l *RecoveryLog) From(from int64) []LogRecord {
	if from < 0 {
		from = 0
	}
	if from >= int64(len(l.records)) {
		return nil
	}
	return l.records[from:]
}

// At returns the record at index.
func (l *RecoveryLog) At(index int64) (LogRecord, bool) {
	if index < 0 || index >= int64(len(l.records)) {
		return LogRecord{}, false
	}
	return l.records[index], true
}

// SetCheckpoint records that a disabled backend has executed every write
// below index.
func (l *RecoveryLog) SetCheckpoint(backend string, index int64) {
	l.checkpoints[backend] = index
}

// Checkpoint returns the recorded resume index for a backend name; ok is
// false if the backend was never checkpointed (a brand-new replica).
func (l *RecoveryLog) Checkpoint(backend string) (int64, bool) {
	idx, ok := l.checkpoints[backend]
	return idx, ok
}

// Checkpoints returns a copy of every recorded checkpoint, keyed by
// backend name. Invariant checkers use it to verify that checkpoint
// indices only ever move forward.
func (l *RecoveryLog) Checkpoints() map[string]int64 {
	out := make(map[string]int64, len(l.checkpoints))
	for name, idx := range l.checkpoints {
		out[name] = idx
	}
	return out
}

// DropCheckpoint forgets a backend's checkpoint (after it rejoins).
func (l *RecoveryLog) DropCheckpoint(backend string) {
	delete(l.checkpoints, backend)
}
