package cjdbc

import (
	"errors"
	"fmt"
	"testing"

	"jade/internal/cluster"
	"jade/internal/config"
	"jade/internal/legacy"
	"jade/internal/selector"
	"jade/internal/sim"
)

// rig is a test cluster: a controller plus helpers to mint MySQL replicas.
type rig struct {
	t    *testing.T
	env  *legacy.Env
	pool *cluster.Pool
	ctl  *Controller
}

func newRig(t *testing.T, nodes int) *rig {
	t.Helper()
	eng := sim.NewEngine(7)
	env := &legacy.Env{Eng: eng, Net: legacy.NewNetwork(), FS: config.NewMemFS()}
	pool := cluster.NewPool(eng, "node", nodes, cluster.DefaultConfig())
	cn, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	ctl := New(eng, env.Net, cn, "cjdbc", DefaultOptions())
	if err := ctl.Start(); err != nil {
		t.Fatal(err)
	}
	return &rig{t: t, env: env, pool: pool, ctl: ctl}
}

// mysql creates and starts a MySQL replica on a fresh node.
func (r *rig) mysql(name string) *legacy.MySQL {
	r.t.Helper()
	n, err := r.pool.Allocate()
	if err != nil {
		r.t.Fatal(err)
	}
	m := legacy.NewMySQL(r.env, name, n, legacy.DefaultMySQLOptions())
	cnf := config.NewMyCnf()
	cnf.SetInt("mysqld", "port", 3306)
	if err := r.env.FS.WriteFile(m.ConfPath(), []byte(cnf.Render())); err != nil {
		r.t.Fatal(err)
	}
	var got error = errors.New("pending")
	m.Start(func(err error) { got = err })
	r.env.Eng.Run()
	if got != nil {
		r.t.Fatal(got)
	}
	return m
}

// join adds a replica and waits for activation.
func (r *rig) join(name string, m *legacy.MySQL) {
	r.t.Helper()
	var got error = errors.New("pending")
	if err := r.ctl.Join(name, m, func(err error) { got = err }); err != nil {
		r.t.Fatal(err)
	}
	r.env.Eng.Run()
	if got != nil {
		r.t.Fatal(got)
	}
}

// exec runs one statement through the controller and waits.
func (r *rig) exec(sql string) error {
	r.t.Helper()
	var got error = errors.New("pending")
	r.ctl.ExecSQL(legacy.Query{SQL: sql, Cost: 0.001}, func(err error) { got = err })
	r.env.Eng.Run()
	return got
}

func (r *rig) mustExec(sql string) {
	r.t.Helper()
	if err := r.exec(sql); err != nil {
		r.t.Fatalf("exec %q: %v", sql, err)
	}
}

func TestSingleBackendReadWrite(t *testing.T) {
	r := newRig(t, 3)
	m1 := r.mysql("mysql1")
	r.join("b1", m1)
	if r.ctl.ActiveCount() != 1 {
		t.Fatalf("ActiveCount = %d", r.ctl.ActiveCount())
	}
	r.mustExec("CREATE TABLE t (a INT)")
	r.mustExec("INSERT INTO t (a) VALUES (1)")
	r.mustExec("SELECT * FROM t")
	if m1.DB().RowCount("t") != 1 {
		t.Fatal("write did not reach backend")
	}
	if r.ctl.Log().Len() != 2 {
		t.Fatalf("recovery log holds %d records, want 2 writes", r.ctl.Log().Len())
	}
	if r.ctl.Reads() != 1 || r.ctl.Writes() != 2 {
		t.Fatalf("reads=%d writes=%d", r.ctl.Reads(), r.ctl.Writes())
	}
}

func TestWriteBroadcastFullMirroring(t *testing.T) {
	r := newRig(t, 4)
	m1, m2 := r.mysql("mysql1"), r.mysql("mysql2")
	r.join("b1", m1)
	r.join("b2", m2)
	r.mustExec("CREATE TABLE t (a INT)")
	for i := 0; i < 10; i++ {
		r.mustExec(fmt.Sprintf("INSERT INTO t (a) VALUES (%d)", i))
	}
	if m1.DB().RowCount("t") != 10 || m2.DB().RowCount("t") != 10 {
		t.Fatalf("rows: %d / %d, want full mirroring", m1.DB().RowCount("t"), m2.DB().RowCount("t"))
	}
	rep := r.ctl.CheckConsistency()
	if !rep.Consistent {
		t.Fatalf("replicas diverged: %+v", rep)
	}
}

func TestReadsBalancedAcrossBackends(t *testing.T) {
	r := newRig(t, 4)
	m1, m2 := r.mysql("mysql1"), r.mysql("mysql2")
	r.join("b1", m1)
	r.join("b2", m2)
	r.mustExec("CREATE TABLE t (a INT)")
	before1, before2 := m1.Served(), m2.Served()
	for i := 0; i < 20; i++ {
		r.ctl.ExecSQL(legacy.Query{SQL: "SELECT * FROM t", Cost: 0.002}, func(error) {})
	}
	r.env.Eng.Run()
	got1, got2 := m1.Served()-before1, m2.Served()-before2
	if got1+got2 != 20 {
		t.Fatalf("reads lost: %d + %d", got1, got2)
	}
	if got1 == 0 || got2 == 0 {
		t.Fatalf("reads not balanced: %d / %d", got1, got2)
	}
}

func TestRecoveryLogSyncFreshReplica(t *testing.T) {
	// The §4.1 protocol: snapshot an active backend, install on a fresh
	// replica, replay the delta, activate — then verify full consistency.
	r := newRig(t, 5)
	m1 := r.mysql("mysql1")
	r.join("b1", m1)
	r.mustExec("CREATE TABLE t (a INT)")
	for i := 0; i < 5; i++ {
		r.mustExec(fmt.Sprintf("INSERT INTO t (a) VALUES (%d)", i))
	}

	snap, idx, err := r.ctl.SnapshotFrom("b1")
	if err != nil {
		t.Fatal(err)
	}
	if idx != 6 {
		t.Fatalf("snapshot index = %d, want 6", idx)
	}

	// More writes land after the snapshot — the delta the log must replay.
	for i := 5; i < 12; i++ {
		r.mustExec(fmt.Sprintf("INSERT INTO t (a) VALUES (%d)", i))
	}

	m2 := r.mysql("mysql2")
	var stopErr error
	m2.Stop(func(err error) { stopErr = err })
	r.env.Eng.Run()
	if stopErr != nil {
		t.Fatal(stopErr)
	}
	if err := m2.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	var startErr error = errors.New("pending")
	m2.Start(func(err error) { startErr = err })
	r.env.Eng.Run()
	if startErr != nil {
		t.Fatal(startErr)
	}

	var syncErr error = errors.New("pending")
	if err := r.ctl.JoinAt("b2", m2, idx, func(err error) { syncErr = err }); err != nil {
		t.Fatal(err)
	}
	r.env.Eng.Run()
	if syncErr != nil {
		t.Fatal(syncErr)
	}
	if m2.DB().RowCount("t") != 12 {
		t.Fatalf("synced replica has %d rows, want 12", m2.DB().RowCount("t"))
	}
	rep := r.ctl.CheckConsistency()
	if !rep.Consistent || len(rep.Fingerprints) != 2 {
		t.Fatalf("post-sync consistency: %+v", rep)
	}
}

func TestWritesDuringSyncAreNotLost(t *testing.T) {
	r := newRig(t, 5)
	m1 := r.mysql("mysql1")
	r.join("b1", m1)
	r.mustExec("CREATE TABLE t (a INT)")
	// Build a long-ish log so the sync takes simulated time.
	for i := 0; i < 50; i++ {
		r.mustExec(fmt.Sprintf("INSERT INTO t (a) VALUES (%d)", i))
	}

	m2 := r.mysql("mysql2")
	synced := false
	if err := r.ctl.JoinAt("b2", m2, 0, func(err error) {
		if err != nil {
			t.Errorf("sync failed: %v", err)
		}
		synced = true
	}); err != nil {
		t.Fatal(err)
	}
	// Interleave new writes while b2 is replaying.
	for i := 50; i < 60; i++ {
		sql := fmt.Sprintf("INSERT INTO t (a) VALUES (%d)", i)
		r.ctl.ExecSQL(legacy.Query{SQL: sql, Cost: 0.001}, func(err error) {
			if err != nil {
				t.Errorf("write during sync: %v", err)
			}
		})
	}
	r.env.Eng.Run()
	if !synced {
		t.Fatal("backend never activated")
	}
	if m2.DB().RowCount("t") != 60 {
		t.Fatalf("synced replica has %d rows, want 60", m2.DB().RowCount("t"))
	}
	if !r.ctl.CheckConsistency().Consistent {
		t.Fatal("replicas diverged after sync with concurrent writes")
	}
}

func TestLeaveRecordsCheckpointAndRejoinReplaysDelta(t *testing.T) {
	r := newRig(t, 5)
	m1, m2 := r.mysql("mysql1"), r.mysql("mysql2")
	r.join("b1", m1)
	r.join("b2", m2)
	r.mustExec("CREATE TABLE t (a INT)")
	r.mustExec("INSERT INTO t (a) VALUES (1)")

	var checkpoint int64 = -1
	if err := r.ctl.Leave("b2", func(idx int64) { checkpoint = idx }); err != nil {
		t.Fatal(err)
	}
	r.env.Eng.Run()
	if checkpoint != 2 {
		t.Fatalf("checkpoint = %d, want 2", checkpoint)
	}
	if got, ok := r.ctl.Log().Checkpoint("b2"); !ok || got != 2 {
		t.Fatalf("log checkpoint = %d, %v", got, ok)
	}
	if r.ctl.ActiveCount() != 1 {
		t.Fatalf("ActiveCount = %d after leave", r.ctl.ActiveCount())
	}

	// Writes while b2 is out.
	for i := 2; i < 8; i++ {
		r.mustExec(fmt.Sprintf("INSERT INTO t (a) VALUES (%d)", i))
	}
	if m2.DB().RowCount("t") != 1 {
		t.Fatalf("disabled backend applied writes: %d rows", m2.DB().RowCount("t"))
	}

	// Rejoin by name: Join resumes from the recorded checkpoint.
	r.join("b2", m2)
	if m2.DB().RowCount("t") != 7 {
		t.Fatalf("rejoined replica has %d rows, want 7", m2.DB().RowCount("t"))
	}
	if !r.ctl.CheckConsistency().Consistent {
		t.Fatal("replicas diverged after rejoin")
	}
	if _, ok := r.ctl.Log().Checkpoint("b2"); ok {
		t.Fatal("checkpoint not dropped after rejoin")
	}
}

func TestLeaveWhileWriteInFlightStillAcks(t *testing.T) {
	r := newRig(t, 4)
	m1, m2 := r.mysql("mysql1"), r.mysql("mysql2")
	r.join("b1", m1)
	r.join("b2", m2)
	r.mustExec("CREATE TABLE t (a INT)")

	// Issue a slow write, let it get logged and start applying on both
	// backends, then disable b2 mid-apply; the write must still complete
	// and b2 must still apply it before checkpointing.
	var writeErr error = errors.New("pending")
	r.ctl.ExecSQL(legacy.Query{SQL: "INSERT INTO t (a) VALUES (1)", Cost: 0.5},
		func(err error) { writeErr = err })
	r.env.Eng.RunUntil(r.env.Eng.Now() + 0.01) // past the proxy hop, mid-apply
	var checkpoint int64 = -1
	if err := r.ctl.Leave("b2", func(idx int64) { checkpoint = idx }); err != nil {
		t.Fatal(err)
	}
	r.env.Eng.Run()
	if writeErr != nil {
		t.Fatal(writeErr)
	}
	if checkpoint != 2 {
		t.Fatalf("checkpoint = %d, want 2 (both writes applied)", checkpoint)
	}
	if m2.DB().RowCount("t") != 1 {
		t.Fatalf("draining backend missed the in-flight write: %d rows", m2.DB().RowCount("t"))
	}
}

func TestBackendNodeCrashDropsBackendButServiceContinues(t *testing.T) {
	r := newRig(t, 4)
	m1, m2 := r.mysql("mysql1"), r.mysql("mysql2")
	r.join("b1", m1)
	r.join("b2", m2)
	r.mustExec("CREATE TABLE t (a INT)")

	m2.Node().Fail()
	// Writes survive: b2 is marked dead on its first failed apply.
	if err := r.exec("INSERT INTO t (a) VALUES (1)"); err != nil {
		t.Fatalf("write after backend crash: %v", err)
	}
	if r.ctl.ActiveCount() != 1 {
		t.Fatalf("ActiveCount = %d, want 1 after crash", r.ctl.ActiveCount())
	}
	// Reads retry onto the survivor.
	if err := r.exec("SELECT * FROM t"); err != nil {
		t.Fatalf("read after backend crash: %v", err)
	}
	if m1.DB().RowCount("t") != 1 {
		t.Fatal("surviving backend missed the write")
	}
}

func TestAllBackendsGoneFailsRequests(t *testing.T) {
	r := newRig(t, 3)
	m1 := r.mysql("mysql1")
	r.join("b1", m1)
	r.mustExec("CREATE TABLE t (a INT)")
	m1.Node().Fail()
	if err := r.exec("SELECT * FROM t"); !errors.Is(err, ErrNoBackend) {
		// The read first tries b1, fails, marks it dead, retries, finds none.
		if err == nil {
			t.Fatal("read with no backends succeeded")
		}
	}
	if err := r.exec("INSERT INTO t (a) VALUES (1)"); !errors.Is(err, ErrNoBackend) {
		t.Fatalf("write with no backends: %v", err)
	}
	if r.ctl.Failures() == 0 {
		t.Fatal("failures counter not incremented")
	}
}

func TestJoinValidation(t *testing.T) {
	r := newRig(t, 4)
	m1 := r.mysql("mysql1")
	r.join("b1", m1)
	// Duplicate name.
	if err := r.ctl.Join("b1", m1, nil); !errors.Is(err, ErrBackendExists) {
		t.Fatalf("duplicate join: %v", err)
	}
	// Stopped server.
	m2 := r.mysql("mysql2")
	var stopErr error
	m2.Stop(func(err error) { stopErr = err })
	r.env.Eng.Run()
	if stopErr != nil {
		t.Fatal(stopErr)
	}
	if err := r.ctl.Join("b2", m2, nil); !errors.Is(err, ErrBackendDown) {
		t.Fatalf("join stopped server: %v", err)
	}
	// Bad index.
	var restart error = errors.New("pending")
	m2.Start(func(err error) { restart = err })
	r.env.Eng.Run()
	if restart != nil {
		t.Fatal(restart)
	}
	if err := r.ctl.JoinAt("b2", m2, 99, nil); err == nil {
		t.Fatal("join beyond log length accepted")
	}
	if err := r.ctl.JoinAt("b2", m2, -1, nil); err == nil {
		t.Fatal("negative join index accepted")
	}
}

func TestLeaveValidation(t *testing.T) {
	r := newRig(t, 3)
	m1 := r.mysql("mysql1")
	r.join("b1", m1)
	if err := r.ctl.Leave("ghost", nil); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("leave unknown: %v", err)
	}
	if err := r.ctl.Leave("b1", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.ctl.Leave("b1", nil); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("double leave: %v", err)
	}
}

func TestControllerLifecycle(t *testing.T) {
	r := newRig(t, 3)
	if err := r.ctl.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	r.ctl.Stop()
	if r.ctl.Running() {
		t.Fatal("still running after stop")
	}
	var got error
	r.ctl.ExecSQL(legacy.Query{SQL: "SELECT 1 FROM t"}, func(err error) { got = err })
	r.env.Eng.Run()
	if !errors.Is(got, ErrNotRunning) {
		t.Fatalf("request to stopped controller: %v", got)
	}
	r.ctl.Stop() // idempotent
	if err := r.ctl.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
}

func TestBackendsStatusReport(t *testing.T) {
	r := newRig(t, 4)
	m1, m2 := r.mysql("mysql1"), r.mysql("mysql2")
	r.join("b1", m1)
	r.join("b2", m2)
	infos := r.ctl.Backends()
	if len(infos) != 2 || infos[0].Name != "b1" || infos[1].Name != "b2" {
		t.Fatalf("Backends() = %+v", infos)
	}
	for _, bi := range infos {
		if bi.State != Active {
			t.Fatalf("backend %s state = %v", bi.Name, bi.State)
		}
	}
}

func TestSnapshotValidation(t *testing.T) {
	r := newRig(t, 3)
	if _, _, err := r.ctl.SnapshotFrom("ghost"); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("snapshot unknown: %v", err)
	}
	if _, _, err := r.ctl.AnyActiveSnapshot(); !errors.Is(err, ErrNoBackend) {
		t.Fatalf("snapshot with no backends: %v", err)
	}
	m1 := r.mysql("mysql1")
	r.join("b1", m1)
	if _, idx, err := r.ctl.AnyActiveSnapshot(); err != nil || idx != 0 {
		t.Fatalf("AnyActiveSnapshot = %d, %v", idx, err)
	}
}

func TestRoundRobinReadPolicy(t *testing.T) {
	eng := sim.NewEngine(9)
	env := &legacy.Env{Eng: eng, Net: legacy.NewNetwork(), FS: config.NewMemFS()}
	pool := cluster.NewPool(eng, "node", 4, cluster.DefaultConfig())
	cn, _ := pool.Allocate()
	opts := DefaultOptions()
	opts.Routing = selector.DefaultOptions(selector.RoundRobin)
	ctl := New(eng, env.Net, cn, "cjdbc", opts)
	if err := ctl.Start(); err != nil {
		t.Fatal(err)
	}
	r := &rig{t: t, env: env, pool: pool, ctl: ctl}
	m1, m2 := r.mysql("mysql1"), r.mysql("mysql2")
	r.join("b1", m1)
	r.join("b2", m2)
	r.mustExec("CREATE TABLE t (a INT)")
	b1, b2 := m1.Served(), m2.Served()
	for i := 0; i < 10; i++ {
		ctl.ExecSQL(legacy.Query{SQL: "SELECT * FROM t", Cost: 0.001}, func(error) {})
	}
	eng.Run()
	if m1.Served()-b1 != 5 || m2.Served()-b2 != 5 {
		t.Fatalf("round robin split = %d/%d", m1.Served()-b1, m2.Served()-b2)
	}
}

func TestRecoveryLogAccessors(t *testing.T) {
	l := NewRecoveryLog()
	if l.Len() != 0 || len(l.From(0)) != 0 {
		t.Fatal("fresh log not empty")
	}
	if _, ok := l.At(0); ok {
		t.Fatal("At(0) on empty log")
	}
	idx := l.Append(legacy.Query{SQL: "INSERT INTO t (a) VALUES (1)"})
	if idx != 0 || l.Len() != 1 {
		t.Fatalf("first append: idx=%d len=%d", idx, l.Len())
	}
	l.Append(legacy.Query{SQL: "INSERT INTO t (a) VALUES (2)"})
	if got := l.From(1); len(got) != 1 || got[0].Index != 1 {
		t.Fatalf("From(1) = %+v", got)
	}
	if got := l.From(-5); len(got) != 2 {
		t.Fatalf("From(-5) = %d records", len(got))
	}
	if got := l.From(99); got != nil {
		t.Fatalf("From(99) = %+v", got)
	}
	l.SetCheckpoint("b", 1)
	if idx, ok := l.Checkpoint("b"); !ok || idx != 1 {
		t.Fatalf("checkpoint = %d, %v", idx, ok)
	}
	l.DropCheckpoint("b")
	if _, ok := l.Checkpoint("b"); ok {
		t.Fatal("checkpoint survived drop")
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[BackendState]string{
		Syncing: "SYNCING", Active: "ACTIVE", Disabled: "DISABLED",
		Dead: "DEAD", BackendState(9): "?",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
