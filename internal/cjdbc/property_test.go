package cjdbc

import (
	"fmt"
	"testing"
	"testing/quick"

	"jade/internal/cluster"
	"jade/internal/config"
	"jade/internal/legacy"
	"jade/internal/sim"
	"jade/internal/sqlengine"
)

// TestPropertyConsistencyUnderChurn drives a random interleaving of
// writes, clean leaves and checkpoint-based rejoins against the
// controller and asserts the §4.1 invariant: once quiescent, every
// active backend holds the same database state, and its content equals a
// reference engine that executed the same writes sequentially.
func TestPropertyConsistencyUnderChurn(t *testing.T) {
	f := func(ops []uint8) bool {
		eng := sim.NewEngine(21)
		env := &legacy.Env{Eng: eng, Net: legacy.NewNetwork(), FS: config.NewMemFS()}
		pool := cluster.NewPool(eng, "node", 6, cluster.DefaultConfig())

		cn, err := pool.Allocate()
		if err != nil {
			return false
		}
		ctl := New(eng, env.Net, cn, "cjdbc", DefaultOptions())
		if err := ctl.Start(); err != nil {
			return false
		}

		// Three replicas, all starting from the same empty schema.
		mysqls := make([]*legacy.MySQL, 3)
		for i := range mysqls {
			node, err := pool.Allocate()
			if err != nil {
				return false
			}
			m := legacy.NewMySQL(env, fmt.Sprintf("mysql%d", i), node, legacy.DefaultMySQLOptions())
			cnf := config.NewMyCnf()
			cnf.SetInt("mysqld", "port", 3306)
			if err := env.FS.WriteFile(m.ConfPath(), []byte(cnf.Render())); err != nil {
				return false
			}
			ok := false
			m.Start(func(err error) { ok = err == nil })
			eng.Run()
			if !ok {
				return false
			}
			mysqls[i] = m
		}
		joined := make([]bool, 3)
		for i, m := range mysqls {
			if err := ctl.JoinAt(fmt.Sprintf("b%d", i), m, 0, nil); err != nil {
				return false
			}
			joined[i] = true
		}
		eng.Run()

		// Reference engine sees the same write sequence.
		ref := newRefEngine()
		writeErrs := 0
		writeN := 0

		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // write
				sql := fmt.Sprintf("INSERT INTO t (a) VALUES (%d)", writeN)
				if writeN == 0 {
					sql = "CREATE TABLE t (a INT)"
				}
				writeN++
				ref.exec(sql)
				ctl.ExecSQL(legacy.Query{SQL: sql, Cost: 0.001}, func(err error) {
					if err != nil {
						writeErrs++
					}
				})
			case 2: // leave a random joined backend (keep at least one)
				i := int(op/4) % 3
				if joined[i] && ctl.ActiveCount() > 1 {
					if err := ctl.Leave(fmt.Sprintf("b%d", i), nil); err == nil {
						joined[i] = false
					}
				}
			case 3: // rejoin a left backend from its checkpoint
				i := int(op/4) % 3
				if !joined[i] {
					if err := ctl.Join(fmt.Sprintf("b%d", i), mysqls[i], nil); err == nil {
						joined[i] = true
					}
				}
			}
			// Occasionally let the simulation drain mid-stream.
			if op%16 == 5 {
				eng.Run()
			}
		}
		eng.Run()
		if writeErrs != 0 {
			return false
		}
		// Quiescent: all active backends identical to each other...
		rep := ctl.CheckConsistency()
		if !rep.Consistent {
			return false
		}
		// ...and identical to the sequential reference.
		for i, m := range mysqls {
			if !joined[i] {
				continue
			}
			if m.DB().Fingerprint() != ref.fingerprint() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// refSQL records the sequential write trajectory and replays it on a
// fresh engine to fingerprint the expected state.
type refSQL struct {
	stmts []string
}

func newRefEngine() *refSQL { return &refSQL{} }

func (r *refSQL) exec(sql string) { r.stmts = append(r.stmts, sql) }

func (r *refSQL) fingerprint() uint64 {
	db := sqlengine.New()
	for _, s := range r.stmts {
		if _, err := db.Exec(s); err != nil {
			return 0
		}
	}
	return db.Fingerprint()
}
