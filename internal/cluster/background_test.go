package cluster

import (
	"testing"

	"jade/internal/sim"
)

func TestBackgroundLoadFeedsUtilizationMeter(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 1)
	r := NewUtilizationReader(n)
	n.SetBackgroundLoad(0.6)
	eng.RunUntil(10)
	if got := r.Read(); !almost(got, 0.6) {
		t.Fatalf("idle node with bg 0.6 read utilization %v, want 0.6", got)
	}
	n.SetBackgroundLoad(0)
	eng.RunUntil(20)
	if got := r.Read(); !almost(got, 0) {
		t.Fatalf("after clearing bg, utilization %v, want 0", got)
	}
}

func TestBackgroundLoadSlowsDiscreteJobs(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 1)
	n.SetBackgroundLoad(0.5)
	var doneAt float64 = -1
	// 1 CPU-s job on a half-loaded 1.0 node runs at rate 0.5 → 2 s.
	n.Submit(1.0, func() { doneAt = eng.Now() }, nil)
	eng.Run()
	if !almost(doneAt, 2.0) {
		t.Fatalf("job finished at %v, want 2 (mean-field PS slowdown)", doneAt)
	}
}

func TestBackgroundLoadChangeMidJob(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 1)
	var doneAt float64 = -1
	n.Submit(1.0, func() { doneAt = eng.Now() }, nil)
	// Half the work at full rate, then the remaining 0.5 CPU-s at rate 0.25.
	eng.After(0.5, "load", func() { n.SetBackgroundLoad(0.75) })
	eng.Run()
	if !almost(doneAt, 0.5+0.5/0.25) {
		t.Fatalf("job finished at %v, want 2.5", doneAt)
	}
}

func TestBackgroundLoadWorkConservingMeter(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 1)
	r := NewUtilizationReader(n)
	n.SetBackgroundLoad(0.5)
	// A discrete job makes the node fully busy while it runs (2 s of the
	// 10 s window), idling at the background level afterwards.
	n.Submit(1.0, nil, nil)
	eng.RunUntil(10)
	want := (2.0*1 + 8.0*0.5) / 10
	if got := r.Read(); !almost(got, want) {
		t.Fatalf("mixed utilization %v, want %v", got, want)
	}
}

func TestBackgroundLoadClampAndGrantedShares(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 2)
	n.SetBackgroundLoad(7) // clamped to maxBackgroundLoad
	if got := n.BackgroundLoad(); !almost(got, maxBackgroundLoad) {
		t.Fatalf("BackgroundLoad = %v, want clamp %v", got, maxBackgroundLoad)
	}
	if got := n.GrantedShares(); got > 2+1e-9 {
		t.Fatalf("GrantedShares %v exceeds capacity with bg only", got)
	}
	n.Submit(1.0, nil, nil)
	if got := n.GrantedShares(); got > 2+1e-9 {
		t.Fatalf("GrantedShares %v exceeds capacity with bg + job", got)
	}
	n.SetBackgroundLoad(-3)
	if got := n.BackgroundLoad(); got != 0 {
		t.Fatalf("negative load not clamped to 0: %v", got)
	}
}

func TestBackgroundLoadDroppedOnFailure(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 1)
	n.SetBackgroundLoad(0.8)
	n.Fail()
	if got := n.BackgroundLoad(); got != 0 {
		t.Fatalf("failed node keeps background load %v", got)
	}
	n.SetBackgroundLoad(0.5) // no-op while failed
	if got := n.BackgroundLoad(); got != 0 {
		t.Fatalf("failed node accepted background load %v", got)
	}
	if got := n.GrantedShares(); got != 0 {
		t.Fatalf("failed node grants %v", got)
	}
	n.Reboot()
	r := NewUtilizationReader(n)
	eng.RunUntil(5)
	if got := r.Read(); !almost(got, 0) {
		t.Fatalf("rebooted node utilization %v before fluid reloads, want 0", got)
	}
}
