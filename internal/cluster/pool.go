package cluster

import (
	"fmt"
	"sort"

	"jade/internal/obs"
	"jade/internal/sim"
)

// Pool is the cluster's free-node pool. The paper's Cluster Manager
// component allocates nodes from such a pool when a tier grows and returns
// them when it shrinks ("resources can be allocated only when required
// instead of pre-allocated").
type Pool struct {
	eng       *sim.Engine
	free      []*Node
	allocated map[string]*Node
	all       map[string]*Node

	// Metrics, when set, tracks allocations, releases, failed allocation
	// attempts and pool occupancy. Nil-safe; unit tests leave it unset.
	Metrics *obs.PoolMetrics
}

// observe refreshes the occupancy gauges after any pool mutation.
func (p *Pool) observe() {
	p.Metrics.SetSizes(p.FreeCount(), len(p.allocated))
}

// NewPool creates a pool of count identically configured nodes named
// prefix1..prefixN.
func NewPool(eng *sim.Engine, prefix string, count int, cfg Config) *Pool {
	p := &Pool{
		eng:       eng,
		allocated: make(map[string]*Node),
		all:       make(map[string]*Node),
	}
	for i := 1; i <= count; i++ {
		n := NewNode(eng, fmt.Sprintf("%s%d", prefix, i), cfg)
		p.free = append(p.free, n)
		p.all[n.Name()] = n
	}
	return p
}

// Add registers an externally created node as free in the pool.
func (p *Pool) Add(n *Node) {
	if _, dup := p.all[n.Name()]; dup {
		panic(fmt.Sprintf("cluster: duplicate node %q in pool", n.Name()))
	}
	p.all[n.Name()] = n
	p.free = append(p.free, n)
	p.observe()
}

// Allocate removes and returns a healthy free node, lowest name first (for
// determinism). It fails with ErrPoolExhausted when none is available.
func (p *Pool) Allocate() (*Node, error) {
	sort.Slice(p.free, func(i, j int) bool { return p.free[i].Name() < p.free[j].Name() })
	for i, n := range p.free {
		if n.Failed() {
			continue
		}
		p.free = append(p.free[:i], p.free[i+1:]...)
		p.allocated[n.Name()] = n
		if p.Metrics != nil {
			p.Metrics.Allocs.Inc()
			p.observe()
		}
		return n, nil
	}
	if p.Metrics != nil {
		p.Metrics.AllocFailed.Inc()
	}
	return nil, ErrPoolExhausted
}

// AllocateNamed removes and returns a specific free node by name (for
// ADL declarations that pin a component to a node).
func (p *Pool) AllocateNamed(name string) (*Node, error) {
	for i, n := range p.free {
		if n.Name() == name {
			if n.Failed() {
				if p.Metrics != nil {
					p.Metrics.AllocFailed.Inc()
				}
				return nil, fmt.Errorf("cluster: pinned node %s has failed", name)
			}
			p.free = append(p.free[:i], p.free[i+1:]...)
			p.allocated[n.Name()] = n
			if p.Metrics != nil {
				p.Metrics.Allocs.Inc()
				p.observe()
			}
			return n, nil
		}
	}
	if _, ok := p.allocated[name]; ok {
		return nil, fmt.Errorf("cluster: pinned node %s already allocated", name)
	}
	return nil, fmt.Errorf("cluster: pinned node %s not in pool", name)
}

// Release returns an allocated node to the free list.
func (p *Pool) Release(n *Node) error {
	if _, ok := p.allocated[n.Name()]; !ok {
		return ErrNotAllocated
	}
	delete(p.allocated, n.Name())
	p.free = append(p.free, n)
	if p.Metrics != nil {
		p.Metrics.Releases.Inc()
		p.observe()
	}
	return nil
}

// Discard permanently removes a failed node from the pool's accounting
// (e.g. hardware loss). Allocated or free nodes may both be discarded.
func (p *Pool) Discard(n *Node) {
	delete(p.allocated, n.Name())
	for i, f := range p.free {
		if f == n {
			p.free = append(p.free[:i], p.free[i+1:]...)
			break
		}
	}
	delete(p.all, n.Name())
	p.observe()
}

// FreeCount returns the number of free healthy nodes.
func (p *Pool) FreeCount() int {
	c := 0
	for _, n := range p.free {
		if !n.Failed() {
			c++
		}
	}
	return c
}

// AllocatedCount returns the number of allocated nodes.
func (p *Pool) AllocatedCount() int { return len(p.allocated) }

// Size returns the total number of nodes known to the pool.
func (p *Pool) Size() int { return len(p.all) }

// Lookup finds a node by name anywhere in the pool.
func (p *Pool) Lookup(name string) (*Node, bool) {
	n, ok := p.all[name]
	return n, ok
}

// Allocated returns the allocated nodes sorted by name.
func (p *Pool) Allocated() []*Node {
	out := make([]*Node, 0, len(p.allocated))
	for _, n := range p.allocated {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Nodes returns every node known to the pool sorted by name.
func (p *Pool) Nodes() []*Node {
	out := make([]*Node, 0, len(p.all))
	for _, n := range p.all {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
