// Package cluster simulates the hardware environment of the paper's
// evaluation: a pool of x86 nodes connected by a LAN. Each node has a CPU
// modeled as a processor-sharing server (all active jobs progress at
// capacity/n), a memory budget, an optional thrashing regime that degrades
// efficiency under extreme concurrency (reproducing the database
// "thrashing" the paper observes without Jade), and failure injection used
// by the self-recovery manager experiments.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"jade/internal/metrics"
	"jade/internal/sim"
)

// Errors returned by the package.
var (
	ErrNodeFailed    = errors.New("cluster: node has failed")
	ErrPoolExhausted = errors.New("cluster: no free node in the pool")
	ErrNotAllocated  = errors.New("cluster: node not allocated from this pool")
	ErrOutOfMemory   = errors.New("cluster: node out of memory")
)

// Job is a unit of CPU work executing on a node under processor sharing.
type Job struct {
	node      *Node
	seq       uint64  // submission order, for deterministic FIFO tie-breaks
	remaining float64 // CPU-seconds of service still owed
	done      func()
	failed    func()
	canceled  bool
}

// Config describes a node's resources.
type Config struct {
	// CPUCapacity is the node's processing rate in CPU-seconds per
	// second (1.0 = one core at reference speed).
	CPUCapacity float64
	// MemoryMB is the node's physical memory.
	MemoryMB float64
	// ThrashThreshold is the number of concurrent jobs beyond which the
	// node enters a thrashing regime. Zero disables thrashing.
	ThrashThreshold int
	// ThrashFactor controls how quickly efficiency degrades past the
	// threshold: effective capacity = CPUCapacity / (1 + f·(n-threshold)).
	ThrashFactor float64
}

// DefaultConfig matches the reference node used across experiments.
func DefaultConfig() Config {
	return Config{CPUCapacity: 1.0, MemoryMB: 1024}
}

// Node is one simulated cluster machine.
type Node struct {
	eng  *sim.Engine
	name string
	cfg  Config

	jobs       map[*Job]struct{}
	lastUpdate float64
	completion sim.Handle
	// completeLabel is the completion event label, precomputed so the
	// cancel-and-reschedule hot path does not concatenate strings.
	completeLabel string

	memUsed float64
	util    metrics.UtilizationMeter
	failed  bool

	// bgLoad is the fluid-workload background utilization in [0,
	// maxBackgroundLoad]: the fraction of the CPU consumed by the
	// aggregate (non-discrete) request flow. It feeds the utilization
	// meter — so CPU sensors see fluid load exactly as they see discrete
	// jobs — and shrinks the capacity available to discrete jobs, so
	// sampled requests experience the mean-field processor-sharing
	// contention of the flow they ride alongside.
	bgLoad float64

	// onFail callbacks fire once when the node fails (failure detectors
	// subscribe here).
	onFail []func(*Node)
	// onReboot callbacks fire when a failed node returns to service
	// (telemetry subscribes here).
	onReboot []func(*Node)

	// bookkeeping
	jobsStarted   uint64
	jobsCompleted uint64
	jobsAborted   uint64
}

// NewNode creates a node attached to the engine.
func NewNode(eng *sim.Engine, name string, cfg Config) *Node {
	if cfg.CPUCapacity <= 0 {
		panic(fmt.Sprintf("cluster: node %q with non-positive CPU capacity", name))
	}
	if cfg.MemoryMB <= 0 {
		panic(fmt.Sprintf("cluster: node %q with non-positive memory", name))
	}
	return &Node{
		eng:           eng,
		name:          name,
		cfg:           cfg,
		jobs:          make(map[*Job]struct{}),
		completeLabel: "node:" + name + ":complete",
	}
}

// Name returns the node's hostname.
func (n *Node) Name() string { return n.name }

// Config returns the node's resource configuration.
func (n *Node) Config() Config { return n.cfg }

// Failed reports whether the node has crashed.
func (n *Node) Failed() bool { return n.failed }

// ActiveJobs returns the number of jobs currently sharing the CPU.
func (n *Node) ActiveJobs() int { return len(n.jobs) }

// JobsCompleted returns the number of jobs that ran to completion.
func (n *Node) JobsCompleted() uint64 { return n.jobsCompleted }

// effectiveCapacity returns the current service rate available to
// discrete jobs, accounting for the thrashing regime and the fluid
// background load (which consumes its share of the CPU first).
func (n *Node) effectiveCapacity() float64 {
	c := n.cfg.CPUCapacity
	if n.cfg.ThrashThreshold > 0 && len(n.jobs) > n.cfg.ThrashThreshold {
		over := float64(len(n.jobs) - n.cfg.ThrashThreshold)
		c = c / (1 + n.cfg.ThrashFactor*over)
	}
	return c * (1 - n.bgLoad)
}

// advance applies elapsed processor-sharing progress to all active jobs.
func (n *Node) advance() {
	now := n.eng.Now()
	dt := now - n.lastUpdate
	if dt > 0 && len(n.jobs) > 0 {
		rate := n.effectiveCapacity() / float64(len(n.jobs))
		for j := range n.jobs {
			j.remaining -= dt * rate
		}
	}
	n.lastUpdate = now
}

// reschedule computes the next completion instant and (re)schedules it.
// Canceling a zero or already-fired handle is a no-op, so no guard is
// needed around the cancel.
func (n *Node) reschedule() {
	n.eng.Cancel(n.completion)
	n.completion = sim.Handle{}
	if n.failed {
		n.util.SetBusy(n.eng.Now(), 0)
		return
	}
	if len(n.jobs) == 0 {
		n.util.SetBusy(n.eng.Now(), n.bgLoad)
		return
	}
	// Work-conserving: discrete jobs soak up whatever the background
	// flow leaves, so the meter reads fully busy.
	n.util.SetBusy(n.eng.Now(), 1)
	minRem := math.Inf(1)
	for j := range n.jobs {
		if j.remaining < minRem {
			minRem = j.remaining
		}
	}
	if minRem < 0 {
		minRem = 0
	}
	dt := minRem * float64(len(n.jobs)) / n.effectiveCapacity()
	n.completion = n.eng.After(dt, n.completeLabel, n.onCompletion)
}

func (n *Node) onCompletion() {
	n.completion = sim.Handle{}
	n.advance()
	const eps = 1e-9
	var finished []*Job
	for j := range n.jobs {
		if j.remaining <= eps {
			finished = append(finished, j)
		}
	}
	// Deterministic completion order: jobs finishing in the same event
	// complete in submission (FIFO) order. Without the seq tie-break the
	// order of equal-remaining jobs would be map-iteration order —
	// non-deterministic, and able to reorder a request pipeline (e.g.
	// writes traversing a balancer's proxy node).
	sort.Slice(finished, func(i, k int) bool {
		if finished[i].remaining != finished[k].remaining {
			return finished[i].remaining < finished[k].remaining
		}
		return finished[i].seq < finished[k].seq
	})
	for _, j := range finished {
		delete(n.jobs, j)
	}
	n.reschedule()
	for _, j := range finished {
		n.jobsCompleted++
		if j.done != nil {
			j.done()
		}
	}
}

// Submit adds a CPU job of the given service demand (CPU-seconds). done
// runs when the job completes; failed (optional) runs if the node crashes
// or the job is canceled before completion. Submitting to a failed node
// invokes failed immediately and returns nil.
func (n *Node) Submit(service float64, done func(), failedFn func()) *Job {
	if service < 0 {
		panic(fmt.Sprintf("cluster: negative service demand %v on %s", service, n.name))
	}
	if n.failed {
		if failedFn != nil {
			failedFn()
		}
		return nil
	}
	n.advance()
	j := &Job{node: n, seq: n.jobsStarted, remaining: service, done: done, failed: failedFn}
	n.jobs[j] = struct{}{}
	n.jobsStarted++
	n.reschedule()
	return j
}

// Cancel aborts a job before completion; its failed callback runs. A nil
// or already finished job is a no-op.
func (n *Node) Cancel(j *Job) {
	if j == nil || j.canceled {
		return
	}
	if _, ok := n.jobs[j]; !ok {
		return
	}
	j.canceled = true
	n.advance()
	delete(n.jobs, j)
	n.jobsAborted++
	n.reschedule()
	if j.failed != nil {
		j.failed()
	}
}

// maxBackgroundLoad caps the fluid background utilization so discrete
// jobs always retain a sliver of capacity: a saturated fluid tier slows
// sampled requests to a crawl (mirroring a saturated processor-sharing
// server) instead of wedging them forever.
const maxBackgroundLoad = 0.995

// SetBackgroundLoad sets the fluid-workload background utilization, a
// fraction of CPUCapacity in [0, 0.995]. The fluid network calls this on
// every tick with each tier's queue-theoretic per-node utilization;
// values outside the range are clamped. Setting it on a failed node is a
// no-op (the load is dropped, as the flow reroutes around the failure).
func (n *Node) SetBackgroundLoad(frac float64) {
	if n.failed {
		return
	}
	if frac < 0 {
		frac = 0
	} else if frac > maxBackgroundLoad {
		frac = maxBackgroundLoad
	}
	if frac == n.bgLoad {
		return
	}
	n.advance() // settle discrete progress under the old capacity split
	n.bgLoad = frac
	n.reschedule()
}

// BackgroundLoad returns the current fluid background utilization.
func (n *Node) BackgroundLoad() float64 { return n.bgLoad }

// GrantedShares returns the total CPU service rate currently granted on
// the node, in CPU-seconds per second: the processor-sharing rate of the
// discrete jobs plus the fluid background flow's share. Under processor
// sharing every active job receives an equal share of the effective
// capacity, so the sum can never exceed the configured CPUCapacity — the
// conservation invariant the testing harness checks (the background
// share is c·bg and discrete jobs split at most c·(1-bg)).
func (n *Node) GrantedShares() float64 {
	if n.failed {
		return 0
	}
	g := n.bgLoad * n.cfg.CPUCapacity
	if len(n.jobs) > 0 {
		g += n.effectiveCapacity()
	}
	return g
}

// Utilization returns the mean CPU busy fraction since the previous call
// (the quantity the paper's probes sample every second).
//
// The meter has read-reset semantics, so a node must have a single
// Utilization caller; independent observers (multiple sensors, the
// experiment accounting) must each use their own UtilizationReader.
func (n *Node) Utilization() float64 {
	n.advance() // keep the meter aligned with job state
	return n.util.Read(n.eng.Now())
}

// UtilizationReader computes per-interval mean CPU usage for one observer
// without disturbing other observers of the same node.
type UtilizationReader struct {
	node      *Node
	lastT     float64
	lastTotal float64
}

// NewUtilizationReader starts an observer at the current instant.
func NewUtilizationReader(n *Node) *UtilizationReader {
	return &UtilizationReader{node: n, lastT: n.eng.Now(), lastTotal: n.BusyTotal()}
}

// Node returns the observed node.
func (r *UtilizationReader) Node() *Node { return r.node }

// Read returns the mean busy fraction since the previous Read (or since
// construction).
func (r *UtilizationReader) Read() float64 {
	now := r.node.eng.Now()
	total := r.node.BusyTotal()
	dt := now - r.lastT
	if dt <= 0 {
		return 0
	}
	v := (total - r.lastTotal) / dt
	r.lastT, r.lastTotal = now, total
	return v
}

// BusyTotal returns the integral of CPU busy time since boot.
func (n *Node) BusyTotal() float64 {
	n.advance()
	return n.util.Total(n.eng.Now())
}

// AllocMemory reserves mb of memory, failing if it would exceed capacity.
func (n *Node) AllocMemory(mb float64) error {
	if mb < 0 {
		panic("cluster: negative memory allocation")
	}
	if n.memUsed+mb > n.cfg.MemoryMB {
		return fmt.Errorf("%w: %s needs %.0f MB, %.0f free", ErrOutOfMemory,
			n.name, mb, n.cfg.MemoryMB-n.memUsed)
	}
	n.memUsed += mb
	return nil
}

// FreeMemory releases mb of memory.
func (n *Node) FreeMemory(mb float64) {
	n.memUsed -= mb
	if n.memUsed < 0 {
		n.memUsed = 0
	}
}

// MemoryUsed returns used memory in MB.
func (n *Node) MemoryUsed() float64 { return n.memUsed }

// MemoryFraction returns used memory as a fraction of capacity.
func (n *Node) MemoryFraction() float64 { return n.memUsed / n.cfg.MemoryMB }

// OnFail registers a callback invoked (once) when the node fails.
func (n *Node) OnFail(fn func(*Node)) { n.onFail = append(n.onFail, fn) }

// OnReboot registers a callback invoked when a failed node reboots.
func (n *Node) OnReboot(fn func(*Node)) { n.onReboot = append(n.onReboot, fn) }

// Fail crashes the node: all in-flight jobs abort (their failed callbacks
// run), memory is wiped, and failure subscribers are notified. Failing a
// failed node is a no-op.
func (n *Node) Fail() {
	if n.failed {
		return
	}
	n.advance()
	n.failed = true
	n.eng.Cancel(n.completion)
	n.completion = sim.Handle{}
	aborted := make([]*Job, 0, len(n.jobs))
	for j := range n.jobs {
		aborted = append(aborted, j)
	}
	sort.Slice(aborted, func(i, k int) bool {
		if aborted[i].remaining != aborted[k].remaining {
			return aborted[i].remaining < aborted[k].remaining
		}
		return aborted[i].seq < aborted[k].seq
	})
	n.jobs = make(map[*Job]struct{})
	n.jobsAborted += uint64(len(aborted))
	n.memUsed = 0
	n.bgLoad = 0 // the fluid flow reroutes; next tick reloads survivors
	n.util.SetBusy(n.eng.Now(), 0)
	for _, j := range aborted {
		if j.failed != nil {
			j.failed()
		}
	}
	for _, fn := range n.onFail {
		fn(n)
	}
}

// Reboot returns a failed node to service, empty of jobs and memory.
func (n *Node) Reboot() {
	if !n.failed {
		return
	}
	n.failed = false
	n.lastUpdate = n.eng.Now()
	for _, fn := range n.onReboot {
		fn(n)
	}
}
