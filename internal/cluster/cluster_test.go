package cluster

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"jade/internal/sim"
)

func newNode(eng *sim.Engine, cap float64) *Node {
	return NewNode(eng, "n", Config{CPUCapacity: cap, MemoryMB: 1024})
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSingleJobRunsAtFullCapacity(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 1)
	var doneAt float64 = -1
	n.Submit(2.0, func() { doneAt = eng.Now() }, nil)
	eng.Run()
	if !almost(doneAt, 2.0) {
		t.Fatalf("job of 2 CPU-s on 1.0 node finished at %v, want 2", doneAt)
	}
	if n.JobsCompleted() != 1 {
		t.Fatalf("JobsCompleted = %d", n.JobsCompleted())
	}
}

func TestProcessorSharingSlowsJobs(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 1)
	var aAt, bAt float64
	// Two equal jobs sharing one CPU finish together at 2× their service.
	n.Submit(1.0, func() { aAt = eng.Now() }, nil)
	n.Submit(1.0, func() { bAt = eng.Now() }, nil)
	eng.Run()
	if !almost(aAt, 2.0) || !almost(bAt, 2.0) {
		t.Fatalf("PS finish times = %v, %v; want 2, 2", aAt, bAt)
	}
}

func TestProcessorSharingStaggeredArrivals(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 1)
	var aAt, bAt float64
	n.Submit(1.0, func() { aAt = eng.Now() }, nil)
	eng.After(0.5, "arrive", func() {
		n.Submit(1.0, func() { bAt = eng.Now() }, nil)
	})
	eng.Run()
	// Job A: 0.5s alone (0.5 done), then shares: needs 0.5 more at rate
	// 0.5 → finishes at 1.5. Job B: at t=1.5 has done 0.5, then alone:
	// finishes at 2.0.
	if !almost(aAt, 1.5) {
		t.Fatalf("job A finished at %v, want 1.5", aAt)
	}
	if !almost(bAt, 2.0) {
		t.Fatalf("job B finished at %v, want 2.0", bAt)
	}
}

func TestCapacityScalesServiceRate(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 2) // 2 CPU-s per second
	var doneAt float64
	n.Submit(3.0, func() { doneAt = eng.Now() }, nil)
	eng.Run()
	if !almost(doneAt, 1.5) {
		t.Fatalf("finished at %v, want 1.5", doneAt)
	}
}

func TestZeroServiceJobCompletesImmediately(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 1)
	done := false
	n.Submit(0, func() { done = true }, nil)
	eng.Run()
	if !done {
		t.Fatal("zero-service job never completed")
	}
	if eng.Now() != 0 {
		t.Fatalf("clock advanced to %v for zero-service job", eng.Now())
	}
}

func TestNegativeServicePanics(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Submit(-1) did not panic")
		}
	}()
	n.Submit(-1, nil, nil)
}

func TestUtilizationBusyAndIdle(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 1)
	n.Submit(2.0, nil, nil)
	eng.RunUntil(4)
	// Busy [0,2], idle [2,4] → 50% over [0,4].
	if got := n.Utilization(); !almost(got, 0.5) {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
	eng.RunUntil(6)
	if got := n.Utilization(); !almost(got, 0) {
		t.Fatalf("idle-interval Utilization = %v, want 0", got)
	}
}

func TestThrashingDegradesThroughput(t *testing.T) {
	eng := sim.NewEngine(1)
	healthy := NewNode(eng, "h", Config{CPUCapacity: 1, MemoryMB: 1024})
	thrash := NewNode(eng, "t", Config{CPUCapacity: 1, MemoryMB: 1024,
		ThrashThreshold: 4, ThrashFactor: 0.5})
	const jobs = 20
	var healthyDone, thrashDone float64
	for i := 0; i < jobs; i++ {
		healthy.Submit(0.1, func() { healthyDone = eng.Now() }, nil)
		thrash.Submit(0.1, func() { thrashDone = eng.Now() }, nil)
	}
	eng.Run()
	if !almost(healthyDone, 2.0) {
		t.Fatalf("healthy node finished at %v, want 2.0", healthyDone)
	}
	if thrashDone <= healthyDone*1.5 {
		t.Fatalf("thrashing node finished at %v, not significantly slower than %v",
			thrashDone, healthyDone)
	}
}

func TestCancelAbortsJob(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 1)
	var done, failed bool
	j := n.Submit(10, func() { done = true }, func() { failed = true })
	eng.After(1, "cancel", func() { n.Cancel(j) })
	eng.Run()
	if done {
		t.Fatal("canceled job completed")
	}
	if !failed {
		t.Fatal("canceled job did not run failure callback")
	}
	// Double cancel is a no-op.
	n.Cancel(j)
	n.Cancel(nil)
}

func TestFailAbortsAllJobsAndNotifies(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 1)
	var failures int
	var notified bool
	n.OnFail(func(x *Node) {
		notified = true
		if x != n {
			t.Error("OnFail got wrong node")
		}
	})
	for i := 0; i < 3; i++ {
		n.Submit(10, func() { t.Error("job completed on failed node") },
			func() { failures++ })
	}
	eng.After(1, "crash", n.Fail)
	eng.Run()
	if failures != 3 {
		t.Fatalf("failure callbacks = %d, want 3", failures)
	}
	if !notified {
		t.Fatal("OnFail not invoked")
	}
	if !n.Failed() {
		t.Fatal("Failed() = false after Fail")
	}
	// Failing again is a no-op.
	n.Fail()
	// Submitting to a failed node fails immediately.
	immediate := false
	if j := n.Submit(1, nil, func() { immediate = true }); j != nil || !immediate {
		t.Fatal("Submit on failed node should fail immediately and return nil")
	}
}

func TestRebootRestoresService(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 1)
	n.Fail()
	n.Reboot()
	if n.Failed() {
		t.Fatal("node still failed after Reboot")
	}
	done := false
	n.Submit(1, func() { done = true }, nil)
	eng.Run()
	if !done {
		t.Fatal("job did not run after reboot")
	}
	// Rebooting a healthy node is a no-op.
	n.Reboot()
}

func TestMemoryAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	n := NewNode(eng, "m", Config{CPUCapacity: 1, MemoryMB: 100})
	if err := n.AllocMemory(60); err != nil {
		t.Fatal(err)
	}
	if err := n.AllocMemory(60); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-allocation error = %v, want ErrOutOfMemory", err)
	}
	if !almost(n.MemoryFraction(), 0.6) {
		t.Fatalf("MemoryFraction = %v", n.MemoryFraction())
	}
	n.FreeMemory(30)
	if !almost(n.MemoryUsed(), 30) {
		t.Fatalf("MemoryUsed = %v", n.MemoryUsed())
	}
	n.FreeMemory(1000) // over-free clamps to zero
	if n.MemoryUsed() != 0 {
		t.Fatalf("MemoryUsed after over-free = %v", n.MemoryUsed())
	}
}

func TestFailWipesMemory(t *testing.T) {
	eng := sim.NewEngine(1)
	n := newNode(eng, 1)
	if err := n.AllocMemory(100); err != nil {
		t.Fatal(err)
	}
	n.Fail()
	if n.MemoryUsed() != 0 {
		t.Fatalf("failed node retains %v MB", n.MemoryUsed())
	}
}

func TestPoolAllocateReleaseCycle(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPool(eng, "node", 3, DefaultConfig())
	if p.Size() != 3 || p.FreeCount() != 3 {
		t.Fatalf("fresh pool: size=%d free=%d", p.Size(), p.FreeCount())
	}
	a, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "node1" {
		t.Fatalf("first allocation = %q, want node1 (deterministic order)", a.Name())
	}
	b, _ := p.Allocate()
	c, _ := p.Allocate()
	if _, err := p.Allocate(); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("empty-pool error = %v", err)
	}
	if p.AllocatedCount() != 3 {
		t.Fatalf("AllocatedCount = %d", p.AllocatedCount())
	}
	if err := p.Release(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(b); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("double release error = %v", err)
	}
	d, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if d != b {
		t.Fatalf("reallocation returned %q, want released node %q", d.Name(), b.Name())
	}
	_ = a
	_ = c
}

func TestPoolSkipsFailedNodes(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPool(eng, "n", 2, DefaultConfig())
	n1, _ := p.Lookup("n1")
	n1.Fail()
	got, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "n2" {
		t.Fatalf("allocated %q, want healthy n2", got.Name())
	}
	if _, err := p.Allocate(); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("allocating with only failed nodes: %v", err)
	}
	if p.FreeCount() != 0 {
		t.Fatalf("FreeCount counts failed node: %d", p.FreeCount())
	}
}

func TestPoolDiscardAndAdd(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPool(eng, "n", 1, DefaultConfig())
	n1, _ := p.Lookup("n1")
	p.Discard(n1)
	if p.Size() != 0 {
		t.Fatalf("Size after discard = %d", p.Size())
	}
	fresh := NewNode(eng, "spare1", DefaultConfig())
	p.Add(fresh)
	if got, ok := p.Lookup("spare1"); !ok || got != fresh {
		t.Fatal("added node not found")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	p.Add(fresh)
}

func TestPoolNodesSorted(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPool(eng, "n", 3, DefaultConfig())
	ns := p.Nodes()
	if len(ns) != 3 || ns[0].Name() != "n1" || ns[2].Name() != "n3" {
		t.Fatalf("Nodes() order wrong: %v", names(ns))
	}
	a, _ := p.Allocate()
	al := p.Allocated()
	if len(al) != 1 || al[0] != a {
		t.Fatalf("Allocated() = %v", names(al))
	}
}

func names(ns []*Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Name()
	}
	return out
}

// Property: total CPU-seconds delivered never exceeds capacity × elapsed
// time, for arbitrary job arrival patterns.
func TestPropertyWorkConservation(t *testing.T) {
	f := func(raw []uint8) bool {
		eng := sim.NewEngine(11)
		n := NewNode(eng, "p", Config{CPUCapacity: 1, MemoryMB: 64})
		totalService := 0.0
		completedService := 0.0
		at := 0.0
		for _, r := range raw {
			at += float64(r%16) / 8
			svc := float64(r%32)/16 + 0.01
			totalService += svc
			eng.At(at, "submit", func() {
				n.Submit(svc, func() { completedService += svc }, nil)
			})
		}
		eng.Run()
		elapsed := eng.Now()
		busy := n.BusyTotal()
		// Work conservation: busy time == total completed service (cap 1.0)
		// and busy time <= elapsed.
		if busy > elapsed+1e-6 {
			return false
		}
		return math.Abs(busy-completedService) < 1e-4 || len(raw) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every submitted job either completes or fails exactly once,
// under random failure injection.
func TestPropertyJobAccounting(t *testing.T) {
	f := func(raw []uint8, failAt uint8) bool {
		eng := sim.NewEngine(13)
		n := NewNode(eng, "p", Config{CPUCapacity: 1, MemoryMB: 64})
		outcomes := 0
		at := 0.0
		for _, r := range raw {
			at += float64(r%8) / 4
			eng.At(at, "submit", func() {
				n.Submit(float64(r%16)/8, func() { outcomes++ }, func() { outcomes++ })
			})
		}
		eng.At(float64(failAt)/4, "crash", n.Fail)
		eng.Run()
		return outcomes == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBadNodeConfigPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	for _, cfg := range []Config{
		{CPUCapacity: 0, MemoryMB: 10},
		{CPUCapacity: 1, MemoryMB: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewNode(%+v) did not panic", cfg)
				}
			}()
			NewNode(eng, "bad", cfg)
		}()
	}
}

func BenchmarkProcessorSharing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(1)
		n := NewNode(eng, "b", DefaultConfig())
		for j := 0; j < 200; j++ {
			jitter := float64(j) * 0.01
			eng.At(jitter, "s", func() { n.Submit(0.05, nil, nil) })
		}
		eng.Run()
	}
}
