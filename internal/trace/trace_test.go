package trace

import (
	"bytes"
	"fmt"
	"testing"
)

func clock(t *float64) func() float64 { return func() float64 { return *t } }

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if id := tr.Emit("k", "n"); id != 0 {
		t.Fatalf("nil Emit returned %d", id)
	}
	if id := tr.Begin(0, "k", "n"); id != 0 {
		t.Fatalf("nil Begin returned %d", id)
	}
	tr.End(1)
	tr.Logf("hello %d", 1)
	ran := false
	tr.WithCause(7, func() { ran = true })
	if !ran {
		t.Fatal("nil WithCause did not run fn")
	}
	if tr.Cause() != 0 || tr.Events() != nil || tr.Spans() != nil {
		t.Fatal("nil queries not empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEventsSpansAndQueries(t *testing.T) {
	now := 1.0
	tr := New(clock(&now), 0, 0)
	root := tr.Begin(0, "request", "Home", F("interaction", "Home"))
	now = 2.0
	fwd := tr.Begin(root, "forward", "plb1", F("replica", "tomcat1"))
	tr.EmitIn(fwd, "hop", "queued")
	now = 3.0
	tr.End(fwd)
	now = 4.0
	tr.End(root, F("status", "ok"))
	tr.Emit("loop.sample", "app", Ff("value", 0.5))

	if got := len(tr.ByKind("loop.sample")); got != 1 {
		t.Fatalf("ByKind loop.sample = %d", got)
	}
	if got := len(tr.Since(2.5)); got != 1 {
		t.Fatalf("Since(2.5) = %d events", got)
	}
	roots := tr.SpanTree()
	if len(roots) != 1 || roots[0].Span.ID != root || len(roots[0].Children) != 1 {
		t.Fatalf("unexpected span tree: %+v", roots)
	}
	if err := tr.WellFormed(); err != nil {
		t.Fatal(err)
	}
	sp, ok := tr.SpanByID(root)
	if !ok || sp.Open || sp.End != 4.0 {
		t.Fatalf("root span wrong: %+v", sp)
	}
	if len(sp.Fields) != 2 {
		t.Fatalf("End did not append fields: %+v", sp.Fields)
	}
}

func TestWithCauseNesting(t *testing.T) {
	now := 0.0
	tr := New(clock(&now), 0, 0)
	decision := tr.Begin(0, "decision", "grow")
	var actuate ID
	tr.WithCause(decision, func() {
		actuate = tr.Begin(0, "actuate", "app:grow")
	})
	if tr.Cause() != 0 {
		t.Fatal("cause not restored")
	}
	sp, _ := tr.SpanByID(actuate)
	if sp.Parent != decision {
		t.Fatalf("actuate parent = %d, want %d", sp.Parent, decision)
	}
}

func TestRingEviction(t *testing.T) {
	now := 0.0
	tr := New(clock(&now), 4, 4)
	for i := 0; i < 10; i++ {
		now = float64(i)
		tr.Emit("k", "e")
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].T != 6 || evs[3].T != 9 {
		t.Fatalf("ring order wrong: first %g last %g", evs[0].T, evs[3].T)
	}
	st := tr.Stat()
	if st.EventsEvicted != 6 {
		t.Fatalf("evicted = %d, want 6", st.EventsEvicted)
	}
	// Span store refuses new spans when full; End of a refused span is a
	// no-op and children of refused spans become roots (parent 0).
	for i := 0; i < 6; i++ {
		id := tr.Begin(0, "s", "x")
		if i >= 4 && id != 0 {
			t.Fatalf("span %d accepted beyond capacity", i)
		}
		tr.End(id)
	}
	if tr.Stat().SpansDropped != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Stat().SpansDropped)
	}
	if err := tr.WellFormed(); err != nil {
		t.Fatal(err)
	}
}

func TestLogfRecordsAndForwards(t *testing.T) {
	now := 5.0
	tr := New(clock(&now), 0, 0)
	var lines []string
	tr.SetLogSink(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	tr.Logf("deploy: %s is up (%d components)", "rubis", 4)
	if len(lines) != 1 || lines[0] != "deploy: rubis is up (4 components)" {
		t.Fatalf("sink got %v", lines)
	}
	logs := tr.ByKind("log")
	if len(logs) != 1 || logs[0].Name != "deploy: rubis is up (4 components)" {
		t.Fatalf("bus got %+v", logs)
	}
}

func TestWellFormedCatchesViolations(t *testing.T) {
	bad := []Span{
		{ID: 1, Kind: "a", Start: 10, End: 20},
		{ID: 2, Parent: 1, Kind: "b", Start: 5, End: 6},
	}
	if err := CheckWellFormed(bad); err == nil {
		t.Fatal("child starting before parent not caught")
	}
	bad = []Span{
		{ID: 1, Kind: "a", Start: 10, End: 20},
		{ID: 2, Parent: 1, Kind: "b", Start: 12, End: 25},
	}
	if err := CheckWellFormed(bad); err == nil {
		t.Fatal("child ending after parent not caught")
	}
	bad = []Span{{ID: 2, Parent: 9, Kind: "b", Start: 0, End: 1}}
	if err := CheckWellFormed(bad); err == nil {
		t.Fatal("missing parent not caught")
	}
	ok := []Span{
		{ID: 1, Kind: "a", Start: 10, End: 20},
		{ID: 2, Parent: 1, Kind: "b", Start: 10, End: 20},
		{ID: 3, Parent: 1, Kind: "c", Start: 12, Open: true},
	}
	if err := CheckWellFormed(ok); err != nil {
		t.Fatal(err)
	}
}

func TestExportsAreDeterministicAndValid(t *testing.T) {
	build := func() *Tracer {
		now := 0.0
		tr := New(clock(&now), 0, 0)
		req := tr.Begin(0, "request", "Browse", F("interaction", "Browse"))
		now = 0.25
		tr.Emit("arbiter.verdict", "app-sizing", F("granted", "true"), Ff("at", now))
		fwd := tr.Begin(req, "forward", "plb1", F("replica", "tomcat2"))
		now = 0.5
		tr.End(fwd)
		tr.End(req)
		tr.Logf("selfsize: %s grew to %d replicas", "app", 2)
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("JSONL not byte-identical:\n%s\n---\n%s", a.String(), b.String())
	}
	if a.Len() == 0 {
		t.Fatal("empty JSONL export")
	}

	var c1, c2 bytes.Buffer
	if err := build().WriteChromeTrace(&c1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("Chrome trace not byte-identical")
	}
	n, err := ValidateChromeTrace(c1.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n < 5 {
		t.Fatalf("only %d trace events", n)
	}
}

func TestValidateChromeTraceRejectsGarbage(t *testing.T) {
	if _, err := ValidateChromeTrace([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ValidateChromeTrace([]byte(`{"foo":1}`)); err == nil {
		t.Fatal("missing traceEvents accepted")
	}
	if _, err := ValidateChromeTrace([]byte(`{"traceEvents":[{"name":"x","ph":"?","ts":1,"pid":1,"tid":1}]}`)); err == nil {
		t.Fatal("bad phase accepted")
	}
	if _, err := ValidateChromeTrace([]byte(`{"traceEvents":[{"name":"x","ph":"i","ts":-5,"pid":1,"tid":1}]}`)); err == nil {
		t.Fatal("negative ts accepted")
	}
}

func TestSetEnabledDropsRecords(t *testing.T) {
	now := 0.0
	tr := New(clock(&now), 0, 0)
	if !tr.Enabled() {
		t.Fatal("new tracer not enabled")
	}
	tr.SetEnabled(false)
	if tr.Enabled() {
		t.Fatal("Enabled after SetEnabled(false)")
	}
	if id := tr.Emit("k", "n"); id != 0 {
		t.Fatalf("disabled Emit returned %d", id)
	}
	if id := tr.Begin(0, "k", "n"); id != 0 {
		t.Fatalf("disabled Begin returned %d", id)
	}
	ran := false
	tr.WithCause(7, func() { ran = true })
	if !ran {
		t.Fatal("disabled WithCause skipped fn")
	}
	tr.Logf("dropped %d", 1)
	if st := tr.Stat(); st.Events != 0 || st.Spans != 0 {
		t.Fatalf("disabled tracer recorded: %+v", st)
	}

	// Re-enabling resumes recording.
	tr.SetEnabled(true)
	sp := tr.Begin(0, "k", "n")
	tr.Emit("k", "n")
	tr.End(sp)
	if st := tr.Stat(); st.Events != 1 || st.Spans != 1 {
		t.Fatalf("re-enabled tracer state: %+v", st)
	}
}

func TestDisabledLogfStillReachesSink(t *testing.T) {
	now := 0.0
	tr := New(clock(&now), 0, 0)
	var got []string
	tr.SetLogSink(func(f string, args ...any) { got = append(got, fmt.Sprintf(f, args...)) })
	tr.SetEnabled(false)
	tr.Logf("line %d", 42)
	if len(got) != 1 || got[0] != "line 42" {
		t.Fatalf("sink got %q", got)
	}
	if st := tr.Stat(); st.Events != 0 {
		t.Fatalf("disabled Logf recorded an event: %+v", st)
	}
}

// Locked-in allocation budgets: a switched-off tracer with no sink must
// cost nothing on the instrumentation paths.
func TestDisabledTracerAllocs(t *testing.T) {
	now := 0.0
	tr := New(clock(&now), 0, 0)
	tr.SetEnabled(false)
	if n := testing.AllocsPerRun(1000, func() { tr.Logf("probe line") }); n != 0 {
		t.Fatalf("disabled Logf: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { tr.Emit("kind", "name") }); n != 0 {
		t.Fatalf("disabled Emit: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		id := tr.Begin(0, "kind", "name")
		tr.End(id)
	}); n != 0 {
		t.Fatalf("disabled Begin/End: %v allocs/op, want 0", n)
	}
}

func BenchmarkDisabledLogf(b *testing.B) {
	now := 0.0
	tr := New(clock(&now), 0, 0)
	tr.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Logf("probe line")
	}
}
