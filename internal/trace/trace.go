// Package trace is a deterministic, zero-dependency telemetry bus for
// the simulated Jade platform. Every event and span is timestamped from
// the virtual clock, IDs are assigned in execution order, and no wall
// clock or map iteration leaks into the record — so two runs with the
// same seed produce byte-identical exports.
//
// The bus records two shapes:
//
//   - Events: instantaneous structured records with typed fields
//     (loop samples, arbiter verdicts, membership changes, log lines).
//     Events live in a bounded ring buffer; the oldest are evicted.
//   - Spans: intervals with a parent ID forming causal trees — one
//     emulated request L4 → PLB → Tomcat → C-JDBC → MySQL, or one
//     reconfiguration sensor-sample → decision → actuation-complete.
//     Spans are bounded by refusing new spans once full (management
//     spans are low-rate; request spans are sampled by the caller).
//
// All Tracer methods are safe on a nil receiver, so instrumented code
// never needs a guard.
package trace

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// ID identifies an event or span. The zero ID means "none"; IDs are
// unique across both shapes and strictly increase in execution order.
type ID uint64

// Field is one typed key/value attribute. Fields are an ordered slice
// (not a map) so emission order is deterministic.
type Field struct {
	Key   string
	Value string
	// num caches the numeric value for fields built with Ff so hot
	// analysis paths (latency attribution re-reads busy/svc on every
	// span) never re-parse the formatted string. Unexported: exports
	// only ever see Key/Value, and Float falls back to parsing for
	// fields built any other way (e.g. decoded from an artifact).
	num    float64
	hasNum bool
}

// Float returns the field's numeric value. Fields built with Ff answer
// from the cached float; anything else parses Value.
func (f *Field) Float() (float64, bool) {
	if f.hasNum {
		return f.num, true
	}
	v, err := strconv.ParseFloat(f.Value, 64)
	return v, err == nil
}

// F builds a string field.
func F(key, value string) Field { return Field{Key: key, Value: value} }

// Ff builds a float field, formatted with the shortest exact
// representation so exports are byte-stable.
func Ff(key string, v float64) Field {
	return Field{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64), num: v, hasNum: true}
}

// Fi builds an integer field.
func Fi(key string, v int) Field { return Field{Key: key, Value: strconv.Itoa(v)} }

// Fid builds a field referencing another event or span ID (a causal
// link that is not a parent relationship, e.g. the sensor sample a
// decision was based on).
func Fid(key string, id ID) Field {
	return Field{Key: key, Value: strconv.FormatUint(uint64(id), 10)}
}

// Outcome builds the conventional span-closing field: "ok" on success,
// the error text otherwise.
func Outcome(err error) Field {
	if err != nil {
		return Field{Key: "outcome", Value: err.Error()}
	}
	return Field{Key: "outcome", Value: "ok"}
}

// Event is one instantaneous record.
type Event struct {
	ID     ID
	Span   ID // enclosing span, or 0
	T      float64
	Kind   string
	Name   string
	Fields []Field
}

// Span is one interval in a causal tree.
type Span struct {
	ID     ID
	Parent ID // parent span, or 0 for a root
	Kind   string
	Name   string
	Start  float64
	End    float64
	Open   bool
	Fields []Field
}

// DefaultEventCapacity bounds the event ring buffer.
const DefaultEventCapacity = 65536

// DefaultSpanCapacity bounds the span store.
const DefaultSpanCapacity = 65536

// Tracer is the telemetry bus. Construct with New; methods are
// nil-receiver-safe.
type Tracer struct {
	mu      sync.Mutex
	now     func() float64
	nextID  uint64
	events  []Event // ring of capEvents entries once full
	head    int     // index of the oldest event when the ring is full
	capEv   int
	spans   []Span
	spanIdx map[ID]int
	capSp   int
	dropped uint64 // spans refused because the store was full
	evicted uint64 // events evicted from the ring
	cause   ID     // ambient causal parent, managed by WithCause
	sink    func(string, ...any)
	// disabled and hasSink are read lock-free on every instrumentation
	// call so a switched-off tracer costs two atomic loads and nothing
	// else — no lock, no formatting, no record.
	disabled atomic.Bool
	hasSink  atomic.Bool
}

// New builds a tracer on the given virtual clock. Non-positive
// capacities select the defaults.
func New(now func() float64, eventCap, spanCap int) *Tracer {
	if eventCap <= 0 {
		eventCap = DefaultEventCapacity
	}
	if spanCap <= 0 {
		spanCap = DefaultSpanCapacity
	}
	if now == nil {
		now = func() float64 { return 0 }
	}
	return &Tracer{now: now, capEv: eventCap, capSp: spanCap, spanIdx: make(map[ID]int)}
}

// SetLogSink routes Logf lines onward (typically the platform's -v
// printer) after they are recorded on the bus.
func (t *Tracer) SetLogSink(sink func(string, ...any)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = sink
	t.mu.Unlock()
	t.hasSink.Store(sink != nil)
}

// SetEnabled switches recording on or off. While disabled, Emit, Begin
// and friends return zero IDs without taking the lock or copying
// anything, and Logf skips formatting entirely unless a log sink still
// needs the line. Sweeps and benchmarks disable tracing to take the bus
// off the hot path; the default is enabled.
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	t.disabled.Store(!on)
}

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool { return t != nil && !t.disabled.Load() }

func (t *Tracer) id() ID {
	t.nextID++
	return ID(t.nextID)
}

func (t *Tracer) pushEvent(ev Event) {
	if len(t.events) < t.capEv {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.head] = ev
	t.head = (t.head + 1) % t.capEv
	t.evicted++
}

// Emit records an instantaneous event under the ambient cause (if any)
// and returns its ID.
func (t *Tracer) Emit(kind, name string, fields ...Field) ID {
	if t == nil || t.disabled.Load() {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitLocked(t.cause, kind, name, fields)
}

// EmitIn records an instantaneous event inside an explicit span.
func (t *Tracer) EmitIn(span ID, kind, name string, fields ...Field) ID {
	if t == nil || t.disabled.Load() {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitLocked(span, kind, name, fields)
}

func (t *Tracer) emitLocked(span ID, kind, name string, fields []Field) ID {
	id := t.id()
	t.pushEvent(Event{ID: id, Span: span, T: t.now(), Kind: kind, Name: name, Fields: fields})
	return id
}

// Begin opens a span. A zero parent uses the ambient cause (set by
// WithCause), so actuators opened from a reactor's decision nest under
// it without explicit plumbing.
func (t *Tracer) Begin(parent ID, kind, name string, fields ...Field) ID {
	if t == nil || t.disabled.Load() {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if parent == 0 {
		parent = t.cause
	}
	if len(t.spans) >= t.capSp {
		t.dropped++
		return 0
	}
	id := t.id()
	now := t.now()
	t.spanIdx[id] = len(t.spans)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Kind: kind, Name: name, Start: now, End: now, Open: true, Fields: fields})
	return id
}

// End closes a span, appending any final fields. Ending an unknown or
// already-closed span is a no-op.
func (t *Tracer) End(id ID, fields ...Field) {
	if t == nil || id == 0 || t.disabled.Load() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.spanIdx[id]
	if !ok || !t.spans[i].Open {
		return
	}
	t.spans[i].Open = false
	t.spans[i].End = t.now()
	t.spans[i].Fields = append(t.spans[i].Fields, fields...)
}

// WithCause runs fn with the ambient causal parent set to id, restoring
// the previous cause afterwards. It lets a decision span become the
// parent of whatever the actuator records during its synchronous entry,
// without changing actuator signatures.
func (t *Tracer) WithCause(id ID, fn func()) {
	if t == nil || t.disabled.Load() {
		fn()
		return
	}
	t.mu.Lock()
	prev := t.cause
	t.cause = id
	t.mu.Unlock()
	fn()
	t.mu.Lock()
	t.cause = prev
	t.mu.Unlock()
}

// Cause returns the ambient causal parent, for async continuations that
// need to re-establish it later via WithCause.
func (t *Tracer) Cause() ID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cause
}

// Logf records a formatted log line as a "log" event and forwards it to
// the sink, so verbose output and the trace can never disagree. When
// recording is disabled and no sink is attached, it returns before
// formatting — the call does no work at all.
func (t *Tracer) Logf(format string, args ...any) {
	if t == nil {
		return
	}
	off := t.disabled.Load()
	if off && !t.hasSink.Load() {
		return
	}
	msg := fmt.Sprintf(format, args...)
	t.mu.Lock()
	if !off {
		t.emitLocked(t.cause, "log", msg, nil)
	}
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink("%s", msg)
	}
}

// Events returns all retained events in time order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eventsLocked()
}

func (t *Tracer) eventsLocked() []Event {
	out := make([]Event, 0, len(t.events))
	if len(t.events) < t.capEv {
		return append(out, t.events...)
	}
	out = append(out, t.events[t.head:]...)
	return append(out, t.events[:t.head]...)
}

// Since returns retained events with T >= from.
func (t *Tracer) Since(from float64) []Event {
	evs := t.Events()
	i := sort.Search(len(evs), func(i int) bool { return evs[i].T >= from })
	return evs[i:]
}

// ByKind returns retained events of one kind, in time order.
func (t *Tracer) ByKind(kind string) []Event {
	var out []Event
	for _, ev := range t.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// Spans returns all retained spans in creation order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// SpanByID returns a retained span by ID.
func (t *Tracer) SpanByID(id ID) (Span, bool) {
	if t == nil {
		return Span{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.spanIdx[id]
	if !ok {
		return Span{}, false
	}
	return t.spans[i], true
}

// SpanNode is one node of the causal tree returned by SpanTree.
type SpanNode struct {
	Span     Span
	Children []*SpanNode
}

// SpanTree assembles the retained spans into causal trees, returning
// the roots in creation order. A span whose parent was not retained
// becomes a root.
func (t *Tracer) SpanTree() []*SpanNode {
	spans := t.Spans()
	nodes := make(map[ID]*SpanNode, len(spans))
	for _, s := range spans {
		nodes[s.ID] = &SpanNode{Span: s}
	}
	var roots []*SpanNode
	for _, s := range spans {
		n := nodes[s.ID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != s.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// Stats reports retention counters.
type Stats struct {
	Events        int
	Spans         int
	EventsEvicted uint64
	SpansDropped  uint64
}

// Stat returns retention counters.
func (t *Tracer) Stat() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{Events: len(t.events), Spans: len(t.spans), EventsEvicted: t.evicted, SpansDropped: t.dropped}
}

// Tail formats the last n events as human-readable lines, newest last —
// the invariant harness attaches this to every violation artifact.
func (t *Tracer) Tail(n int) []string {
	evs := t.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = FormatEvent(ev)
	}
	return out
}

// FormatEvent renders one event as a stable single-line string.
func FormatEvent(ev Event) string {
	s := fmt.Sprintf("[t=%8.1f] %s", ev.T, ev.Kind)
	if ev.Name != "" {
		s += " " + ev.Name
	}
	for _, f := range ev.Fields {
		s += fmt.Sprintf(" %s=%s", f.Key, f.Value)
	}
	return s
}

// WellFormed verifies the span store's causal integrity: every non-zero
// parent that is retained is a span (not self), children start no
// earlier than their parent, and closed children end no later than a
// closed parent. It returns the first problem found, or nil.
func (t *Tracer) WellFormed() error {
	return CheckWellFormed(t.Spans())
}

// CheckWellFormed implements WellFormed over an explicit span slice.
func CheckWellFormed(spans []Span) error {
	const eps = 1e-9
	byID := make(map[ID]Span, len(spans))
	for _, s := range spans {
		if s.ID == 0 {
			return fmt.Errorf("trace: span %q has zero ID", s.Name)
		}
		if _, dup := byID[s.ID]; dup {
			return fmt.Errorf("trace: duplicate span ID %d", s.ID)
		}
		byID[s.ID] = s
	}
	for _, s := range spans {
		if !s.Open && s.End+eps < s.Start {
			return fmt.Errorf("trace: span %d (%s) ends at %g before start %g", s.ID, s.Name, s.End, s.Start)
		}
		if s.Parent == 0 {
			continue
		}
		if s.Parent == s.ID {
			return fmt.Errorf("trace: span %d (%s) is its own parent", s.ID, s.Name)
		}
		p, ok := byID[s.Parent]
		if !ok {
			return fmt.Errorf("trace: span %d (%s) references missing parent %d", s.ID, s.Name, s.Parent)
		}
		if s.Parent >= s.ID {
			return fmt.Errorf("trace: span %d (%s) precedes its parent %d", s.ID, s.Name, s.Parent)
		}
		if s.Start+eps < p.Start {
			return fmt.Errorf("trace: span %d (%s) starts at %g before parent %d start %g", s.ID, s.Name, s.Start, p.ID, p.Start)
		}
		if !s.Open && !p.Open && s.End > p.End+eps {
			return fmt.Errorf("trace: span %d (%s) ends at %g after parent %d end %g", s.ID, s.Name, s.End, p.ID, p.End)
		}
	}
	return nil
}
