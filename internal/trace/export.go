package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonlRecord is the line shape of the JSONL export. Field order is
// fixed by the struct; the fields map is sorted by encoding/json — the
// whole line is byte-deterministic.
type jsonlRecord struct {
	Type   string            `json:"type"`
	ID     ID                `json:"id"`
	Parent ID                `json:"parent,omitempty"`
	Span   ID                `json:"span,omitempty"`
	T      float64           `json:"t"`
	End    float64           `json:"end,omitempty"`
	Open   bool              `json:"open,omitempty"`
	Kind   string            `json:"kind"`
	Name   string            `json:"name,omitempty"`
	Fields map[string]string `json:"fields,omitempty"`
}

func fieldMap(fields []Field) map[string]string {
	if len(fields) == 0 {
		return nil
	}
	m := make(map[string]string, len(fields))
	for _, f := range fields {
		m[f.Key] = f.Value
	}
	return m
}

// WriteJSONL writes every retained event (ring order, oldest first)
// followed by every retained span (creation order), one JSON object per
// line. Same seed, same config ⇒ byte-identical output.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		rec := jsonlRecord{Type: "event", ID: ev.ID, Span: ev.Span, T: ev.T, Kind: ev.Kind, Name: ev.Name, Fields: fieldMap(ev.Fields)}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, s := range t.Spans() {
		rec := jsonlRecord{Type: "span", ID: s.ID, Parent: s.Parent, T: s.Start, End: s.End, Open: s.Open, Kind: s.Kind, Name: s.Name, Fields: fieldMap(s.Fields)}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// laneOf groups kinds into Chrome trace "threads": the segment before
// the first dot ("membership.join" → "membership").
func laneOf(kind string) string {
	if i := strings.IndexByte(kind, '.'); i >= 0 {
		return kind[:i]
	}
	return kind
}

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// Perfetto and chrome://tracing load). Timestamps are virtual-time
// microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	ID   string            `json:"id,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

const virtualPID = 1

// WriteChromeTrace writes the retained record in Chrome trace-event
// format: spans as complete ("X") slices, events as instants ("i"),
// with one virtual thread per kind family and thread-name metadata.
// Times are virtual microseconds, so a 3000 s run renders as 3000 ms of
// wall-clock-free timeline.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	spans := t.Spans()

	// Assign lanes (tids) in first-appearance order so the layout is
	// deterministic per seed.
	tids := make(map[string]int)
	laneNames := []string{}
	tid := func(kind string) int {
		lane := laneOf(kind)
		if id, ok := tids[lane]; ok {
			return id
		}
		id := len(tids) + 1
		tids[lane] = id
		laneNames = append(laneNames, lane)
		return id
	}

	var out []chromeEvent
	for _, s := range spans {
		dur := (s.End - s.Start) * 1e6
		if dur < 0 {
			dur = 0
		}
		args := fieldMap(s.Fields)
		if s.Parent != 0 {
			if args == nil {
				args = make(map[string]string, 1)
			}
			args["parent"] = fmt.Sprintf("%d", s.Parent)
		}
		d := dur
		out = append(out, chromeEvent{
			Name: s.Kind + " " + s.Name, Cat: s.Kind, Ph: "X",
			TS: s.Start * 1e6, Dur: &d, PID: virtualPID, TID: tid(s.Kind),
			ID: fmt.Sprintf("%d", s.ID), Args: args,
		})
	}
	for _, ev := range events {
		name := ev.Kind
		if ev.Name != "" {
			name += " " + ev.Name
		}
		out = append(out, chromeEvent{
			Name: name, Cat: ev.Kind, Ph: "i",
			TS: ev.T * 1e6, PID: virtualPID, TID: tid(ev.Kind),
			S: "t", Args: fieldMap(ev.Fields),
		})
	}
	// Thread-name metadata so Perfetto labels the lanes.
	meta := make([]chromeEvent, 0, len(laneNames)+2)
	meta = append(meta, chromeEvent{
		Name: "process_name", Ph: "M", PID: virtualPID, TID: 0,
		Args: map[string]string{"name": "jade (virtual time)"},
	})
	// Retention counters, so a validator reading only the file can tell
	// whether the record is complete or the stores overflowed.
	st := t.Stat()
	meta = append(meta, chromeEvent{
		Name: "jade_trace_stats", Ph: "M", PID: virtualPID, TID: 0,
		Args: map[string]string{
			"events":         fmt.Sprintf("%d", st.Events),
			"spans":          fmt.Sprintf("%d", st.Spans),
			"evicted_events": fmt.Sprintf("%d", st.EventsEvicted),
			"dropped_spans":  fmt.Sprintf("%d", st.SpansDropped),
		},
	})
	for _, lane := range laneNames {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: virtualPID, TID: tids[lane],
			Args: map[string]string{"name": lane},
		})
	}
	out = append(meta, out...)

	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range out {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(out)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(b, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "],\"displayTimeUnit\":\"ms\"}\n")
	return err
}

// ValidateChromeTrace parses data as Chrome trace-event JSON and checks
// the fields Perfetto needs: a traceEvents array whose entries carry a
// name, a known phase, non-negative timestamps and durations, and
// pid/tid. It returns the number of trace events, or an error
// describing the first malformed entry.
func ValidateChromeTrace(data []byte) (int, error) {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("trace: missing traceEvents array")
	}
	validPh := map[string]bool{"X": true, "i": true, "I": true, "M": true, "B": true, "E": true, "C": true}
	for i, raw := range doc.TraceEvents {
		var ev struct {
			Name *string  `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			PID  *int     `json:"pid"`
			TID  *int     `json:"tid"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return 0, fmt.Errorf("trace: traceEvents[%d]: %w", i, err)
		}
		if ev.Name == nil || *ev.Name == "" {
			return 0, fmt.Errorf("trace: traceEvents[%d]: missing name", i)
		}
		if !validPh[ev.Ph] {
			return 0, fmt.Errorf("trace: traceEvents[%d]: unknown phase %q", i, ev.Ph)
		}
		if ev.Ph != "M" {
			if ev.TS == nil || *ev.TS < 0 {
				return 0, fmt.Errorf("trace: traceEvents[%d]: missing or negative ts", i)
			}
		}
		if ev.Dur != nil && *ev.Dur < 0 {
			return 0, fmt.Errorf("trace: traceEvents[%d]: negative dur", i)
		}
		if ev.PID == nil || ev.TID == nil {
			return 0, fmt.Errorf("trace: traceEvents[%d]: missing pid/tid", i)
		}
	}
	return len(doc.TraceEvents), nil
}

// ChromeTraceStats reads the "jade_trace_stats" metadata event
// WriteChromeTrace embeds. ok is false when the file carries no such
// record (an older export, or a foreign trace).
func ChromeTraceStats(data []byte) (droppedSpans, evictedEvents uint64, ok bool) {
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, 0, false
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" || ev.Name != "jade_trace_stats" {
			continue
		}
		fmt.Sscanf(ev.Args["dropped_spans"], "%d", &droppedSpans)
		fmt.Sscanf(ev.Args["evicted_events"], "%d", &evictedEvents)
		return droppedSpans, evictedEvents, true
	}
	return 0, 0, false
}
