package core

import (
	"testing"
)

func TestArbiterGrantsWhenIdle(t *testing.T) {
	a := NewArbiter(60)
	if !a.Request(0, "app", PriorityOptimization) {
		t.Fatal("idle arbiter denied")
	}
	if a.Granted() != 1 || a.Denied() != 0 {
		t.Fatalf("counters = %d/%d", a.Granted(), a.Denied())
	}
}

func TestArbiterQuietWindowDeniesEqualPriority(t *testing.T) {
	a := NewArbiter(60)
	if !a.Request(0, "app", PriorityOptimization) {
		t.Fatal("first request denied")
	}
	if a.Request(30, "db", PriorityOptimization) {
		t.Fatal("equal priority granted inside quiet window")
	}
	if !a.Request(61, "db", PriorityOptimization) {
		t.Fatal("request after window denied")
	}
	if a.Denied() != 1 {
		t.Fatalf("denied = %d", a.Denied())
	}
}

func TestArbiterRecoveryPreemptsOptimization(t *testing.T) {
	a := NewArbiter(60)
	if !a.Request(0, "app", PriorityOptimization) {
		t.Fatal("first request denied")
	}
	// Recovery arrives during optimization's quiet window: preempts.
	if !a.Request(10, "self-recovery", PriorityRecovery) {
		t.Fatal("recovery denied inside optimization window")
	}
	// Optimization cannot preempt recovery's window.
	if a.Request(20, "app", PriorityOptimization) {
		t.Fatal("optimization preempted recovery")
	}
	// Nor can another recovery (equal priority).
	if a.Request(20, "self-recovery-2", PriorityRecovery) {
		t.Fatal("equal-priority recovery preempted recovery")
	}
	// Decision log records everything.
	if got := len(a.Decisions()); got != 4 {
		t.Fatalf("decisions = %d", got)
	}
}

func TestArbiterRelease(t *testing.T) {
	a := NewArbiter(60)
	if !a.Request(0, "app", PriorityOptimization) {
		t.Fatal("request denied")
	}
	// A non-holder release is ignored.
	a.Release(1, "db")
	if a.Request(2, "db", PriorityOptimization) {
		t.Fatal("window dropped by non-holder release")
	}
	a.Release(3, "app")
	if !a.Request(4, "db", PriorityOptimization) {
		t.Fatal("request denied after holder release")
	}
}

func TestReactorWithArbiterSerializesTiers(t *testing.T) {
	p, dep := deployThreeTier(t)
	appTier, err := NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		t.Fatal(err)
	}
	dbTier, err := NewDBTier(p, dep, "cjdbc1", []string{"mysql1"})
	if err != nil {
		t.Fatal(err)
	}
	arb := NewArbiter(60)
	appR := NewThresholdReactor(p, appTier, 0.3, 0.8, nil)
	appR.Arbiter = arb
	dbR := NewThresholdReactor(p, dbTier, 0.3, 0.8, nil)
	dbR.Arbiter = arb
	appR.React(100, 0.95)
	dbR.React(100, 0.95)
	p.Eng.Run()
	if got := appR.Grows + dbR.Grows; got != 1 {
		t.Fatalf("reconfigurations = %d, want 1 (arbiter quiet window)", got)
	}
	if arb.Denied() != 1 {
		t.Fatalf("denied = %d", arb.Denied())
	}
}

func TestRecoveryPreemptsSizingThroughArbiter(t *testing.T) {
	p, dep := deployThreeTier(t)
	appTier, err := NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		t.Fatal(err)
	}
	arb := NewArbiter(120)
	sizing := NewThresholdReactor(p, appTier, 0.3, 0.8, nil)
	sizing.Arbiter = arb
	rec, err := NewRecoveryManager(p, "self-recovery", 1, appTier)
	if err != nil {
		t.Fatal(err)
	}
	rec.Arbiter = arb
	if err := rec.Loop.Start(); err != nil {
		t.Fatal(err)
	}
	// Sizing takes the window first...
	sizing.React(p.Eng.Now(), 0.95)
	// ...then the replica's node dies while that window is open.
	node, _ := dep.NodeOf("tomcat1")
	p.Eng.After(2, "crash", node.Fail)
	p.Eng.RunUntil(p.Eng.Now() + 90)
	if rec.Repairs != 1 {
		t.Fatalf("repairs = %d: recovery blocked by optimization's quiet window", rec.Repairs)
	}
	// After recovery's grant, sizing is locked out for the window.
	sizingGrowsBefore := sizing.Grows
	sizing.React(p.Eng.Now(), 0.95)
	p.Eng.RunUntil(p.Eng.Now() + 30)
	if sizing.Grows != sizingGrowsBefore {
		t.Fatal("sizing reconfigured inside recovery's quiet window")
	}
}

func TestAdaptiveTunerLowersThresholdOnSLOViolation(t *testing.T) {
	p, dep := deployThreeTier(t)
	tier, err := NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		t.Fatal(err)
	}
	reactor := NewThresholdReactor(p, tier, 0.35, 0.80, nil)
	latency := 5.0 // well above the SLO
	tuner := NewAdaptiveTuner(reactor, func(now float64) (float64, bool) {
		return latency, true
	}, 1.0)
	loop, err := NewControlLoop(p, "tuner", 10, tuner, tuner)
	if err != nil {
		t.Fatal(err)
	}
	if err := loop.Start(); err != nil {
		t.Fatal(err)
	}
	p.Eng.RunUntil(p.Eng.Now() + 200)
	if reactor.Max >= 0.80 {
		t.Fatalf("Max = %v, tuner did not lower it", reactor.Max)
	}
	if reactor.Max < tuner.FloorMax {
		t.Fatalf("Max = %v dropped below floor %v", reactor.Max, tuner.FloorMax)
	}
	_, lowers := tuner.Adjustments()
	if lowers == 0 {
		t.Fatal("no adjustments counted")
	}
	// Long violation converges exactly to the floor and stays there.
	p.Eng.RunUntil(p.Eng.Now() + 2000)
	if reactor.Max != tuner.FloorMax {
		t.Fatalf("Max = %v, want floor %v", reactor.Max, tuner.FloorMax)
	}

	// Comfortable latency raises it back, bounded by the ceiling.
	latency = 0.05
	p.Eng.RunUntil(p.Eng.Now() + 5000)
	if reactor.Max != tuner.CeilMax {
		t.Fatalf("Max = %v, want ceiling %v", reactor.Max, tuner.CeilMax)
	}
	raises, _ := tuner.Adjustments()
	if raises == 0 {
		t.Fatal("no raises counted")
	}
	if tuner.MaxSeries.Len() == 0 {
		t.Fatal("threshold series empty")
	}
	if err := loop.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveTunerHoldsInComfortBand(t *testing.T) {
	p, dep := deployThreeTier(t)
	tier, err := NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		t.Fatal(err)
	}
	reactor := NewThresholdReactor(p, tier, 0.35, 0.80, nil)
	// Latency between comfort*SLO and SLO: no adjustment either way.
	tuner := NewAdaptiveTuner(reactor, func(now float64) (float64, bool) {
		return 0.5, true
	}, 1.0)
	tuner.React(0, 0.5)
	tuner.React(10, 0.5)
	if reactor.Max != 0.80 {
		t.Fatalf("Max changed to %v inside the comfort band", reactor.Max)
	}
	raises, lowers := tuner.Adjustments()
	if raises+lowers != 0 {
		t.Fatalf("adjustments = %d/%d", raises, lowers)
	}
}

func TestLatencyDrivenSizing(t *testing.T) {
	// The paper (§4.2) notes a response-time sensor can replace the CPU
	// probe. The ThresholdReactor is unit-agnostic, so a latency-driven
	// manager is a ResponseTimeSensor + thresholds in seconds.
	p, dep := deployThreeTier(t)
	tier, err := NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		t.Fatal(err)
	}
	latency := 3.0
	sensor := NewResponseTimeSensor(func(now float64) (float64, bool) { return latency, true })
	reactor := NewThresholdReactor(p, tier, 0.1, 1.0, nil) // thresholds in seconds
	loop, err := NewControlLoop(p, "latency-sizer", 1, sensor, reactor)
	if err != nil {
		t.Fatal(err)
	}
	if err := loop.Start(); err != nil {
		t.Fatal(err)
	}
	p.Eng.RunUntil(p.Eng.Now() + 60)
	if tier.ReplicaCount() != 2 {
		t.Fatalf("replicas = %d, latency-driven grow did not fire", tier.ReplicaCount())
	}
	// Latency recovers far below min: shrink after the inhibition.
	latency = 0.05
	p.Eng.RunUntil(p.Eng.Now() + 120)
	if tier.ReplicaCount() != 1 {
		t.Fatalf("replicas = %d, latency-driven shrink did not fire", tier.ReplicaCount())
	}
	if err := loop.Stop(); err != nil {
		t.Fatal(err)
	}
	// Erroring reads are ignored.
	bad := NewResponseTimeSensor(func(now float64) (float64, bool) { return 0, false })
	if _, ok := bad.Sample(0); ok {
		t.Fatal("invalid read accepted")
	}
}
