package core

import (
	"fmt"

	"jade/internal/metrics"
	"jade/internal/trace"
)

// Arbiter implements the conflict-arbitration manager the paper lists as
// future work (§7): "Managers have their own goal and control loops and
// therefore require a way to arbitrate potential conflicts."
//
// Each autonomic manager requests permission before actuating, with a
// priority. The arbiter grants one reconfiguration at a time and holds a
// quiet window afterwards (generalizing the shared Inhibitor); a
// higher-priority manager (e.g. self-recovery) may preempt the window a
// lower-priority one (e.g. self-optimization) opened, but never the
// reverse. Every decision is recorded for introspection.
type Arbiter struct {
	// QuietSeconds is the post-grant window during which equal- or
	// lower-priority requests are denied (the paper's one minute).
	QuietSeconds float64
	// Trace, when set, records every decision as an "arbiter.verdict"
	// event on the telemetry bus.
	Trace *trace.Tracer

	holder   string
	priority int
	until    float64

	decisions []ArbiterDecision
	granted   uint64
	denied    uint64
}

// ArbiterDecision records one arbitration outcome.
type ArbiterDecision struct {
	T         float64
	Requester string
	Priority  int
	Granted   bool
	Reason    string
}

// Standard priorities: repair beats optimization.
const (
	PriorityOptimization = 1
	PriorityRecovery     = 10
)

// NewArbiter returns an arbiter with the given quiet window.
func NewArbiter(quietSeconds float64) *Arbiter {
	return &Arbiter{QuietSeconds: quietSeconds}
}

// Request asks permission to reconfigure now. It returns true when the
// requester may proceed; the quiet window is then re-armed on its
// behalf.
func (a *Arbiter) Request(now float64, requester string, priority int) bool {
	if now < a.until && priority <= a.priority {
		a.denied++
		a.record(now, requester, priority, false,
			fmt.Sprintf("quiet window held by %s (priority %d) until t=%.1f", a.holder, a.priority, a.until))
		return false
	}
	reason := "idle"
	if now < a.until {
		reason = fmt.Sprintf("preempted %s (priority %d < %d)", a.holder, a.priority, priority)
	}
	a.holder = requester
	a.priority = priority
	a.until = now + a.QuietSeconds
	a.granted++
	a.record(now, requester, priority, true, reason)
	return true
}

// Release ends the requester's quiet window early (e.g. a reconfiguration
// failed and consumed no resources). Only the current holder may release.
func (a *Arbiter) Release(now float64, requester string) {
	if a.holder == requester && now < a.until {
		a.until = now
		a.record(now, requester, a.priority, true, "released")
	}
}

// Granted and Denied return decision counters.
func (a *Arbiter) Granted() uint64 { return a.granted }

// Denied returns the number of refused requests.
func (a *Arbiter) Denied() uint64 { return a.denied }

// Decisions returns the recorded decision log.
func (a *Arbiter) Decisions() []ArbiterDecision {
	return append([]ArbiterDecision(nil), a.decisions...)
}

func (a *Arbiter) record(t float64, requester string, prio int, granted bool, reason string) {
	a.decisions = append(a.decisions, ArbiterDecision{
		T: t, Requester: requester, Priority: prio, Granted: granted, Reason: reason,
	})
	verdict := "denied"
	if granted {
		verdict = "granted"
	}
	a.Trace.Emit("arbiter.verdict", requester,
		trace.F("verdict", verdict), trace.Fi("priority", prio), trace.F("reason", reason))
}

// gate abstracts "may I reconfigure now?" so reactors work with either
// the paper's shared Inhibitor or the arbitration manager.
type gate interface {
	tryAcquire(now float64, requester string, priority int) bool
}

// inhibitorGate adapts Inhibitor (no priorities, first come first served).
type inhibitorGate struct {
	i       *Inhibitor
	seconds float64
}

func (g inhibitorGate) tryAcquire(now float64, _ string, _ int) bool {
	if g.i.Inhibited(now) {
		return false
	}
	g.i.Trigger(now, g.seconds)
	return true
}

// arbiterGate adapts Arbiter.
type arbiterGate struct{ a *Arbiter }

func (g arbiterGate) tryAcquire(now float64, requester string, priority int) bool {
	return g.a.Request(now, requester, priority)
}

// AdaptiveTuner implements the other piece of the paper's future work:
// "improving the self-optimizing algorithm by setting incrementally and
// dynamically its parameters." It is itself a control loop: it observes
// the client-perceived response time and nudges a threshold reactor's
// Max threshold — down when the latency objective is violated (react
// earlier to load) and up when latency is comfortably met (pack the
// nodes tighter), within bounds.
type AdaptiveTuner struct {
	reactor *ThresholdReactor
	// ReadLatency returns the current windowed mean latency in seconds
	// and whether the reading is valid.
	ReadLatency func(now float64) (float64, bool)

	// SLOSeconds is the latency objective.
	SLOSeconds float64
	// Comfort is the fraction of the SLO under which Max may rise.
	Comfort float64
	// Step is the per-adjustment threshold increment.
	Step float64
	// FloorMax and CeilMax bound the tuned threshold.
	FloorMax, CeilMax float64

	// MaxSeries traces the tuned threshold over time.
	MaxSeries *metrics.Series

	raises, lowers uint64
}

// NewAdaptiveTuner builds a tuner with sensible defaults (SLO 1 s,
// comfort 0.3, step 0.02, bounds [0.5, 0.9]).
func NewAdaptiveTuner(reactor *ThresholdReactor, readLatency func(now float64) (float64, bool), slo float64) *AdaptiveTuner {
	return &AdaptiveTuner{
		reactor:     reactor,
		ReadLatency: readLatency,
		SLOSeconds:  slo,
		Comfort:     0.3,
		Step:        0.02,
		FloorMax:    0.5,
		CeilMax:     0.9,
		MaxSeries:   metrics.NewSeries("tuned-max-threshold"),
	}
}

// Sample implements Sensor (the tuner is its own loop's sensor).
func (t *AdaptiveTuner) Sample(now float64) (float64, bool) {
	return t.ReadLatency(now)
}

// React implements Reactor: nudge the threshold.
func (t *AdaptiveTuner) React(now float64, latency float64) {
	switch {
	case latency > t.SLOSeconds && t.reactor.Max > t.FloorMax:
		t.reactor.Max -= t.Step
		if t.reactor.Max < t.FloorMax {
			t.reactor.Max = t.FloorMax
		}
		t.lowers++
		t.MaxSeries.Add(now, t.reactor.Max)
	case latency < t.SLOSeconds*t.Comfort && t.reactor.Max < t.CeilMax:
		t.reactor.Max += t.Step
		if t.reactor.Max > t.CeilMax {
			t.reactor.Max = t.CeilMax
		}
		t.raises++
		t.MaxSeries.Add(now, t.reactor.Max)
	}
}

// Adjustments returns (raises, lowers) counters.
func (t *AdaptiveTuner) Adjustments() (raises, lowers uint64) { return t.raises, t.lowers }
