package core

import (
	"fmt"

	"jade/internal/cluster"
	"jade/internal/fractal"
	"jade/internal/metrics"
	"jade/internal/obs"
	"jade/internal/sim"
	"jade/internal/trace"
)

// Sensor observes one aspect of the managed system. Sample returns the
// current observation and whether it is valid yet (moving averages need
// their window to fill before the reactor should trust them).
type Sensor interface {
	Sample(now float64) (value float64, ok bool)
}

// Reactor is the analysis/decision element of a control loop: it receives
// sensor notifications and drives actuators when reconfiguration is
// needed.
type Reactor interface {
	React(now float64, value float64)
}

// ControlLoop wires a sensor to a reactor at a fixed period. It is itself
// wrapped in a Fractal component, so autonomic managers are deployed and
// managed with the same framework they implement ("Jade administrates
// itself", §3.4).
type ControlLoop struct {
	p       *Platform
	name    string
	period  float64
	sensor  Sensor
	reactor Reactor
	ticker  *sim.Ticker
	comp    *fractal.Component

	samples uint64
	// LastValue is the most recent valid sensor reading.
	LastValue float64
	// lastSample is the bus event recording the most recent valid
	// sample; reactors link their decisions back to it.
	lastSample trace.ID

	// Introspection-plane instruments (nil-safe).
	samplesCtr *obs.Counter
	valueGauge *obs.Gauge
}

// NewControlLoop builds a loop (stopped). Period is in seconds; the paper
// executes its loops every second.
func NewControlLoop(p *Platform, name string, period float64, sensor Sensor, reactor Reactor) (*ControlLoop, error) {
	if period <= 0 {
		return nil, fmt.Errorf("jade: control loop %s with period %v", name, period)
	}
	l := &ControlLoop{p: p, name: name, period: period, sensor: sensor, reactor: reactor}
	l.samplesCtr = p.Metrics().Counter("jade_loop_samples_total",
		"Sensor samples taken per control loop.", obs.L("loop", name))
	l.valueGauge = p.Metrics().Gauge("jade_loop_value",
		"Most recent valid sensor reading per control loop.", obs.L("loop", name))
	comp, err := fractal.NewPrimitive(name, l)
	if err != nil {
		return nil, err
	}
	l.comp = comp
	p.RegisterLoop(l)
	return l, nil
}

// Name returns the loop name.
func (l *ControlLoop) Name() string { return l.name }

// Component returns the loop's management component.
func (l *ControlLoop) Component() *fractal.Component { return l.comp }

// Samples returns the number of sensor samples taken.
func (l *ControlLoop) Samples() uint64 { return l.samples }

// Period returns the loop's execution interval in seconds.
func (l *ControlLoop) Period() float64 { return l.period }

// Running reports whether the loop ticks.
func (l *ControlLoop) Running() bool { return l.ticker != nil }

// OnStart implements the component lifecycle: it arms the ticker.
func (l *ControlLoop) OnStart(*fractal.Component) error {
	if l.ticker != nil {
		return fmt.Errorf("jade: control loop %s already running", l.name)
	}
	l.ticker = l.p.Eng.Every(l.period, "loop:"+l.name, l.tick)
	return nil
}

// OnStop implements the component lifecycle: it stops the ticker.
func (l *ControlLoop) OnStop(*fractal.Component) error {
	if l.ticker != nil {
		l.ticker.Stop()
		l.ticker = nil
	}
	return nil
}

// Start arms the loop (through its component lifecycle).
func (l *ControlLoop) Start() error { return l.comp.Start() }

// Stop disarms the loop.
func (l *ControlLoop) Stop() error { return l.comp.Stop() }

// LastSampleEvent returns the bus event ID of the most recent valid
// sensor sample (0 before warmup).
func (l *ControlLoop) LastSampleEvent() trace.ID { return l.lastSample }

func (l *ControlLoop) tick(now float64) {
	l.samples++
	l.samplesCtr.Inc()
	v, ok := l.sensor.Sample(now)
	if !ok {
		return
	}
	l.LastValue = v
	l.valueGauge.Set(v)
	l.lastSample = l.p.tracer.Emit("loop.sample", l.name, trace.Ff("value", v))
	l.reactor.React(now, v)
}

// NodeSet provides the nodes a sensor monitors; tiers change size, so it
// is a function.
type NodeSet func() []*cluster.Node

// CPUSensor is the paper's self-optimization probe: every sample it reads
// each monitored node's CPU usage since the previous sample, averages
// spatially across the tier's nodes, and feeds a temporal moving average
// (60 s for the application tier, 90 s for the database tier). Sampling
// consumes a small amount of CPU on each monitored node — the intrusivity
// Table 1 measures.
type CPUSensor struct {
	nodes   NodeSet
	window  *metrics.MovingAverage
	probe   float64 // per-node CPU cost of one sample
	readers map[*cluster.Node]*cluster.UtilizationReader

	// Raw and Smoothed record the sensor's readings for the experiment
	// figures (instantaneous spatial average and moving average).
	Raw      *metrics.Series
	Smoothed *metrics.Series

	// WarmupSamples is the minimum number of samples before the sensor
	// reports valid data.
	WarmupSamples int
	count         int
}

// NewCPUSensor builds a CPU sensor over a node set with the given moving
// average window (seconds).
func NewCPUSensor(nodes NodeSet, window float64, probeCost float64) *CPUSensor {
	return &CPUSensor{
		nodes:         nodes,
		window:        metrics.NewMovingAverage(window),
		probe:         probeCost,
		readers:       make(map[*cluster.Node]*cluster.UtilizationReader),
		Raw:           metrics.NewSeries("cpu-raw"),
		Smoothed:      metrics.NewSeries("cpu-smoothed"),
		WarmupSamples: 5,
	}
}

// Sample implements Sensor.
func (s *CPUSensor) Sample(now float64) (float64, bool) {
	ns := s.nodes()
	if len(ns) == 0 {
		return 0, false
	}
	vals := make([]float64, 0, len(ns))
	for _, n := range ns {
		if n.Failed() {
			continue
		}
		r, ok := s.readers[n]
		if !ok {
			r = cluster.NewUtilizationReader(n)
			s.readers[n] = r
		}
		vals = append(vals, r.Read())
		if s.probe > 0 {
			n.Submit(s.probe, nil, nil)
		}
	}
	if len(vals) == 0 {
		return 0, false
	}
	raw := metrics.SpatialMean(vals)
	s.window.Push(now, raw)
	smoothed := s.window.Avg()
	s.Raw.Add(now, raw)
	s.Smoothed.Add(now, smoothed)
	s.count++
	return smoothed, s.count >= s.WarmupSamples
}

// WindowState exposes the moving-average window for introspection:
// its duration in seconds, the number of samples currently retained, and
// whether a full window's worth of history has accumulated.
func (s *CPUSensor) WindowState() (seconds float64, count int, full bool) {
	return s.window.Window, s.window.Count(), s.window.Full()
}

// ResponseTimeSensor observes client-perceived latency through a
// user-supplied reader (e.g. the RUBiS emulator's windowed mean). The
// paper notes such a sensor can replace the CPU probe when latency is the
// QoS criterion.
type ResponseTimeSensor struct {
	Read   func(now float64) (float64, bool)
	Series *metrics.Series
}

// NewResponseTimeSensor wraps a latency reader.
func NewResponseTimeSensor(read func(now float64) (float64, bool)) *ResponseTimeSensor {
	return &ResponseTimeSensor{Read: read, Series: metrics.NewSeries("response-time")}
}

// Sample implements Sensor.
func (s *ResponseTimeSensor) Sample(now float64) (float64, bool) {
	v, ok := s.Read(now)
	if ok {
		s.Series.Add(now, v)
	}
	return v, ok
}

// Inhibitor serializes reconfigurations across control loops: a
// reconfiguration started by one loop inhibits any new reconfiguration
// for a period (one minute in the paper), preventing oscillations.
type Inhibitor struct {
	until float64
}

// Inhibited reports whether reconfigurations are currently suppressed.
func (i *Inhibitor) Inhibited(now float64) bool { return now < i.until }

// Until returns the virtual time at which the current inhibition ends
// (0 before any trigger).
func (i *Inhibitor) Until() float64 { return i.until }

// Trigger suppresses reconfigurations for d seconds from now.
func (i *Inhibitor) Trigger(now, d float64) {
	if now+d > i.until {
		i.until = now + d
	}
}
