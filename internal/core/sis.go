package core

import (
	"errors"
	"fmt"
	"sort"

	"jade/internal/cluster"
	"jade/internal/sim"
)

// ErrUnknownPackage is returned for packages the SIS does not hold.
var ErrUnknownPackage = errors.New("jade: unknown software package")

// Package is one deployable software resource held by the Software
// Installation Service (§3.3): the service "allows retrieving the
// encapsulated software resources involved in the multi-tier application
// and installing them on nodes of the cluster".
type Package struct {
	Name string
	// InstallSeconds is the time to copy and unpack the package on a
	// node the first time; reinstalls on a node that already holds the
	// package are fast.
	InstallSeconds float64
	// MemoryMB is reserved on the node while the package is installed
	// (binaries, caches).
	MemoryMB float64
}

// InstallService is Jade's Software Installation Service component.
type InstallService struct {
	eng       *sim.Engine
	logf      func(string, ...any)
	packages  map[string]Package
	installed map[string]map[string]bool // node -> package set
	installs  uint64
}

// NewInstallService returns an empty service.
func NewInstallService(eng *sim.Engine, logf func(string, ...any)) *InstallService {
	return &InstallService{
		eng:       eng,
		logf:      logf,
		packages:  make(map[string]Package),
		installed: make(map[string]map[string]bool),
	}
}

// registerStandardPackages loads the software resources of the paper's
// J2EE environment.
func registerStandardPackages(s *InstallService) {
	for _, pkg := range []Package{
		{Name: "apache", InstallSeconds: 6, MemoryMB: 10},
		{Name: "tomcat", InstallSeconds: 10, MemoryMB: 30},
		{Name: "mysql", InstallSeconds: 8, MemoryMB: 20},
		{Name: "cjdbc", InstallSeconds: 6, MemoryMB: 15},
		{Name: "plb", InstallSeconds: 3, MemoryMB: 5},
		{Name: "l4", InstallSeconds: 1, MemoryMB: 2},
	} {
		s.Register(pkg)
	}
}

// Register adds or replaces a package.
func (s *InstallService) Register(pkg Package) { s.packages[pkg.Name] = pkg }

// Packages returns registered package names, sorted.
func (s *InstallService) Packages() []string {
	out := make([]string, 0, len(s.packages))
	for n := range s.packages {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsInstalled reports whether a node holds a package.
func (s *InstallService) IsInstalled(node *cluster.Node, pkg string) bool {
	return s.installed[node.Name()][pkg]
}

// Installs returns the number of completed installations.
func (s *InstallService) Installs() uint64 { return s.installs }

// Install deploys a package onto a node, asynchronously. Installing onto
// a node that already holds the package completes quickly (configuration
// refresh only).
func (s *InstallService) Install(pkgName string, node *cluster.Node, done func(error)) {
	finish := func(err error) {
		if done != nil {
			done(err)
		}
	}
	pkg, ok := s.packages[pkgName]
	if !ok {
		finish(fmt.Errorf("%w: %s", ErrUnknownPackage, pkgName))
		return
	}
	if node.Failed() {
		finish(fmt.Errorf("jade: installing %s on failed node %s", pkgName, node.Name()))
		return
	}
	delay := pkg.InstallSeconds
	already := s.IsInstalled(node, pkgName)
	if already {
		delay = 0.5
	}
	s.eng.After(delay, "sis:install:"+pkgName, func() {
		if node.Failed() {
			finish(fmt.Errorf("jade: node %s failed during installation of %s", node.Name(), pkgName))
			return
		}
		if !already {
			if err := node.AllocMemory(pkg.MemoryMB); err != nil {
				finish(err)
				return
			}
			if s.installed[node.Name()] == nil {
				s.installed[node.Name()] = make(map[string]bool)
			}
			s.installed[node.Name()][pkgName] = true
		}
		s.installs++
		s.logf("sis: installed %s on %s", pkgName, node.Name())
		finish(nil)
	})
}

// Uninstall removes a package from a node, freeing its memory.
func (s *InstallService) Uninstall(pkgName string, node *cluster.Node) {
	if !s.IsInstalled(node, pkgName) {
		return
	}
	delete(s.installed[node.Name()], pkgName)
	if pkg, ok := s.packages[pkgName]; ok {
		node.FreeMemory(pkg.MemoryMB)
	}
}
