package core

import (
	"errors"
	"strings"
	"testing"

	"jade/internal/adl"
)

func TestExportADLRoundTrip(t *testing.T) {
	p, dep := deployThreeTier(t)
	out := dep.ExportADL()
	if err := out.Validate(p.wrapperSet()); err != nil {
		t.Fatalf("exported ADL invalid: %v", err)
	}
	// Same components, same composite placement.
	want := map[string]string{
		"plb1": "", "tomcat1": "app-tier", "cjdbc1": "db-tier", "mysql1": "db-tier",
	}
	got := map[string]string{}
	for _, pc := range out.AllComponents() {
		got[pc.Name] = pc.CompositePath
		// Placements are pinned to the live nodes.
		if pc.Node == "" {
			t.Fatalf("exported %s without a node pin", pc.Name)
		}
	}
	for name, path := range want {
		if got[name] != path {
			t.Fatalf("component %s exported under %q, want %q", name, got[name], path)
		}
	}
	// Original bindings survive.
	if len(out.Bindings) != len(dep.Def.Bindings) {
		t.Fatalf("bindings = %d, want %d", len(out.Bindings), len(dep.Def.Bindings))
	}
	// The exported text parses back.
	text, err := out.Render()
	if err != nil {
		t.Fatal(err)
	}
	back, err := adl.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.AllComponents()) != 4 {
		t.Fatalf("re-parsed components = %d", len(back.AllComponents()))
	}
}

func TestExportADLCapturesAutonomicReconfiguration(t *testing.T) {
	// Grow the app tier, export, and check the new replica with its
	// bindings appears in the document — the self-sized state becomes a
	// redeployable baseline.
	p, dep := deployThreeTier(t)
	tier, err := NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		t.Fatal(err)
	}
	gerr := errors.New("pending")
	tier.Grow(func(err error) { gerr = err })
	p.Eng.Run()
	if gerr != nil {
		t.Fatal(gerr)
	}
	out := dep.ExportADL()
	text, err := out.Render()
	if err != nil {
		t.Fatal(err)
	}
	newName := tier.ReplicaNames()[1]
	if !strings.Contains(text, `name="`+newName+`"`) {
		t.Fatalf("exported ADL missing grown replica %s:\n%s", newName, text)
	}
	wantBindings := []string{
		"plb1.workers", newName + ".jdbc",
	}
	for _, w := range wantBindings {
		if !strings.Contains(text, w) {
			t.Fatalf("exported ADL missing binding %q:\n%s", w, text)
		}
	}
	// Exactly two plb worker bindings now.
	n := strings.Count(text, `client="plb1.workers"`)
	if n != 2 {
		t.Fatalf("plb1.workers bindings = %d, want 2", n)
	}
	if err := out.Validate(p.wrapperSet()); err != nil {
		t.Fatal(err)
	}
}
