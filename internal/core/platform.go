// Package core implements Jade, the paper's contribution: an environment
// for building autonomic management software over legacy systems.
//
// Jade's two pillars (§3):
//
//  1. A management layer built on the Fractal component model: every
//     legacy software piece (Apache, Tomcat, MySQL, the load balancers)
//     is wrapped in a component exposing the uniform attribute / binding /
//     lifecycle control interfaces; wrapper implementations translate
//     those operations into proprietary configuration-file edits and
//     start/stop scripts.
//  2. Autonomic managers built as control loops: sensors observe the
//     managed system, reactors decide, actuators reconfigure through the
//     uniform component interface. This package ships the paper's
//     self-optimization manager (threshold-driven tier resizing) and the
//     self-recovery manager (failure detection and repair).
package core

import (
	"fmt"
	"log"
	"sort"

	"jade/internal/cluster"
	"jade/internal/config"
	"jade/internal/fractal"
	"jade/internal/legacy"
	"jade/internal/obs"
	"jade/internal/sim"
	"jade/internal/sqlengine"
	"jade/internal/trace"
)

// Options configures a Jade platform.
type Options struct {
	// Seed drives all simulation randomness.
	Seed int64
	// Nodes is the cluster pool size.
	Nodes int
	// NodeConfig configures every pool node.
	NodeConfig cluster.Config
	// FS is the workspace holding legacy configuration files
	// (in-memory by default).
	FS config.FS
	// Logf receives management-layer log lines (default: discarded).
	Logf func(format string, args ...any)
	// ManagementMemoryMB is the footprint of the Jade management
	// components deployed on every managed node (the paper measures its
	// effect in Table 1). Applied per node while a node hosts a managed
	// component.
	ManagementMemoryMB float64
	// ProbeCPUCost is the CPU consumed on each monitored node per sensor
	// sample (Table 1's CPU intrusivity).
	ProbeCPUCost float64
	// Routing selects the per-tier backend-selection policies used by the
	// balancing wrappers (zero value keeps each tier's historic default).
	Routing RoutingConfig
	// TraceEventCapacity bounds the telemetry bus's event ring buffer
	// (default trace.DefaultEventCapacity).
	TraceEventCapacity int
	// TraceSpanCapacity bounds the telemetry bus's span store (default
	// trace.DefaultSpanCapacity).
	TraceSpanCapacity int
	// TraceSimEvents additionally records every dispatched scheduler
	// event on the bus (kind "sim.event"). High volume; off by default.
	TraceSimEvents bool
	// TraceDisabled switches the telemetry bus off: instrumentation
	// calls become two atomic loads and log lines skip formatting unless
	// Logf is set. Sweeps and benchmarks use it to take tracing off the
	// hot path; it does not affect the simulation schedule.
	TraceDisabled bool
}

// DefaultOptions mirrors the paper's testbed scale: a 9-node cluster of
// uniform x86 machines.
func DefaultOptions() Options {
	return Options{
		Seed:               1,
		Nodes:              9,
		NodeConfig:         cluster.DefaultConfig(),
		ManagementMemoryMB: 27,    // ~2.6% of 1 GB, Table 1's memory delta
		ProbeCPUCost:       0.003, // 0.3% of one CPU at 1 Hz sampling
	}
}

// Platform is a Jade instance managing one simulated cluster.
type Platform struct {
	Eng  *sim.Engine
	Net  *legacy.Network
	FS   config.FS
	Pool *cluster.Pool
	SIS  *InstallService

	opts      Options
	registry  map[string]WrapperFactory
	dumps     map[string]*sqlengine.Engine
	logf      func(format string, args ...any)
	loops     []*ControlLoop
	mgmtNodes map[string]bool // nodes carrying the management footprint

	// tracer is the structured telemetry bus. Always present; every
	// logf line and management decision is recorded on it, and the
	// original Options.Logf becomes its onward sink.
	tracer *trace.Tracer

	// metrics is the introspection-plane registry. Always present, clocked
	// on the engine's virtual time; every tier server, the cluster pool
	// and every control loop register their instruments in it.
	metrics *obs.Registry

	// mgmtRoot is the composite holding Jade's own management
	// components (the control loops): Jade administrates itself with
	// the same component model it manages applications with (§3.4).
	mgmtRoot *fractal.Component

	// reconfigHooks fire after every completed reconfiguration
	// (deployment, grow, shrink, repair discard). The invariant harness
	// subscribes here to check the architecture at every boundary.
	reconfigHooks []func(now float64, event string)

	// repairDiscardHooks fire when a repair discards a replica. alive
	// probes whether the discarded identity is still being served — the
	// DoubleRepair invariant records it to rule out split-brain after
	// false-positive repairs.
	repairDiscardHooks []func(now float64, tier, replica string, alive func() (bool, string))
}

// NewPlatform builds a platform with the standard wrapper registry.
func NewPlatform(opts Options) *Platform {
	if opts.Nodes <= 0 {
		opts.Nodes = DefaultOptions().Nodes
	}
	if opts.NodeConfig.CPUCapacity == 0 {
		opts.NodeConfig = cluster.DefaultConfig()
	}
	if opts.FS == nil {
		opts.FS = config.NewMemFS()
	}
	eng := sim.NewEngine(opts.Seed)
	tracer := trace.New(eng.Now, opts.TraceEventCapacity, opts.TraceSpanCapacity)
	tracer.SetLogSink(opts.Logf)
	if opts.TraceDisabled {
		tracer.SetEnabled(false)
	}
	metrics := obs.NewRegistry(eng.Now)
	p := &Platform{
		Eng:       eng,
		Net:       legacy.NewNetwork(),
		FS:        opts.FS,
		Pool:      cluster.NewPool(eng, "node", opts.Nodes, opts.NodeConfig),
		opts:      opts,
		registry:  make(map[string]WrapperFactory),
		dumps:     make(map[string]*sqlengine.Engine),
		logf:      tracer.Logf, // every log line is also a bus event
		mgmtNodes: make(map[string]bool),
		tracer:    tracer,
		metrics:   metrics,
	}
	p.Pool.Metrics = obs.NewPoolMetrics(metrics)
	p.Pool.Metrics.SetSizes(p.Pool.FreeCount(), p.Pool.AllocatedCount())
	if opts.TraceSimEvents {
		eng.SetEventHook(func(t float64, label string) {
			tracer.Emit("sim.event", label)
		})
	}
	nodeFails := metrics.Counter("jade_node_failures_total", "Node crashes observed by the platform.")
	nodeReboots := metrics.Counter("jade_node_reboots_total", "Node reboots observed by the platform.")
	for _, n := range p.Pool.Nodes() {
		n.OnFail(func(n *cluster.Node) {
			nodeFails.Inc()
			tracer.Emit("node.fail", n.Name())
		})
		n.OnReboot(func(n *cluster.Node) {
			nodeReboots.Inc()
			tracer.Emit("node.reboot", n.Name())
		})
	}
	p.SIS = NewInstallService(eng, p.logf)
	root, err := fractal.NewComposite("jade")
	if err != nil {
		panic(err) // static name; cannot fail
	}
	p.mgmtRoot = root
	registerStandardWrappers(p)
	registerStandardPackages(p.SIS)
	return p
}

// Env returns the legacy environment view of the platform.
func (p *Platform) Env() *legacy.Env {
	return &legacy.Env{Eng: p.Eng, Net: p.Net, FS: p.FS, Trace: p.tracer, Obs: p.metrics}
}

// Metrics returns the platform's introspection-plane registry.
func (p *Platform) Metrics() *obs.Registry { return p.metrics }

// Logf writes a management-layer log line. Lines are recorded on the
// telemetry bus (kind "log") and forwarded to Options.Logf, so verbose
// output and traces can never disagree.
func (p *Platform) Logf(format string, args ...any) { p.logf(format, args...) }

// Trace returns the platform's telemetry bus.
func (p *Platform) Trace() *trace.Tracer { return p.tracer }

// UpdateRouting replaces the platform's routing configuration, so
// wrappers started (or restarted, e.g. by the repair manager) after the
// call build their selector pools with the new policies. Pools already
// live are retuned in place by the scenario's routing subscription —
// together the two paths make a live routing retune stick across
// repairs. Simulation goroutine only.
func (p *Platform) UpdateRouting(rc RoutingConfig) { p.opts.Routing = rc }

// RegisterDump stores a named database dump the Software Installation
// Service can install on fresh MySQL replicas (the RUBiS dataset in the
// experiments).
func (p *Platform) RegisterDump(name string, db *sqlengine.Engine) {
	p.dumps[name] = db
}

// Dump returns a registered dump.
func (p *Platform) Dump(name string) (*sqlengine.Engine, bool) {
	db, ok := p.dumps[name]
	return db, ok
}

// RegisterWrapper adds a wrapper factory under a type name.
func (p *Platform) RegisterWrapper(kind string, f WrapperFactory) {
	p.registry[kind] = f
}

// WrapperKinds returns the registered wrapper type names, sorted.
func (p *Platform) WrapperKinds() []string {
	out := make([]string, 0, len(p.registry))
	for k := range p.registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// wrapperSet returns the registry as a validation set for ADL.
func (p *Platform) wrapperSet() map[string]bool {
	out := make(map[string]bool, len(p.registry))
	for k := range p.registry {
		out[k] = true
	}
	return out
}

// attachManagement charges the Jade management footprint to a node (the
// per-node management components of Table 1). Idempotent per node.
func (p *Platform) attachManagement(n *cluster.Node) {
	if p.opts.ManagementMemoryMB <= 0 || p.mgmtNodes[n.Name()] {
		return
	}
	if err := n.AllocMemory(p.opts.ManagementMemoryMB); err != nil {
		p.logf("jade: management footprint on %s: %v", n.Name(), err)
		return
	}
	p.mgmtNodes[n.Name()] = true
}

// detachManagement releases the footprint when a node leaves management.
func (p *Platform) detachManagement(n *cluster.Node) {
	if !p.mgmtNodes[n.Name()] {
		return
	}
	n.FreeMemory(p.opts.ManagementMemoryMB)
	delete(p.mgmtNodes, n.Name())
}

// OnReconfiguration registers a callback invoked after every completed
// reconfiguration of the managed architecture: initial deployment, tier
// grow/shrink, and the discard step of a repair. The event string names
// the boundary (e.g. "application-servers:grow").
func (p *Platform) OnReconfiguration(fn func(now float64, event string)) {
	p.reconfigHooks = append(p.reconfigHooks, fn)
}

// OnRepairDiscard subscribes to replica discards performed by repairs.
func (p *Platform) OnRepairDiscard(fn func(now float64, tier, replica string, alive func() (bool, string))) {
	p.repairDiscardHooks = append(p.repairDiscardHooks, fn)
}

// repairDiscarded notifies the repair-discard subscribers.
func (p *Platform) repairDiscarded(tier, replica string, alive func() (bool, string)) {
	for _, fn := range p.repairDiscardHooks {
		fn(p.Eng.Now(), tier, replica, alive)
	}
}

// reconfigured notifies the reconfiguration subscribers.
func (p *Platform) reconfigured(event string) {
	p.tracer.Emit("reconfig", event)
	for _, fn := range p.reconfigHooks {
		fn(p.Eng.Now(), event)
	}
}

// StartComponent performs the full managed start of a component: the
// Fractal lifecycle start (which validates bindings and lets wrapper
// hooks regenerate legacy configuration), then the wrapper's asynchronous
// legacy start (scripts, boot delays, listener registration). On legacy
// failure the component is stopped again.
func (p *Platform) StartComponent(c *fractal.Component, done func(error)) {
	finish := func(err error) {
		if done != nil {
			done(err)
		}
	}
	if err := c.Start(); err != nil {
		finish(err)
		return
	}
	p.tracer.Emit("lifecycle.start", c.Name())
	w, ok := c.Content().(Wrapper)
	if !ok {
		finish(nil)
		return
	}
	w.StartManaged(func(err error) {
		if err != nil {
			_ = c.Stop()
			p.tracer.Emit("lifecycle.start-failed", c.Name(), trace.F("error", err.Error()))
			finish(fmt.Errorf("jade: starting %s: %w", c.Name(), err))
			return
		}
		p.tracer.Emit("lifecycle.started", c.Name())
		finish(nil)
	})
}

// StopComponent stops the legacy software, then the component.
func (p *Platform) StopComponent(c *fractal.Component, done func(error)) {
	finish := func(err error) {
		if done != nil {
			done(err)
		}
	}
	p.tracer.Emit("lifecycle.stop", c.Name())
	w, ok := c.Content().(Wrapper)
	if !ok {
		finish(c.Stop())
		return
	}
	w.StopManaged(func(err error) {
		if err != nil {
			finish(fmt.Errorf("jade: stopping %s: %w", c.Name(), err))
			return
		}
		p.tracer.Emit("lifecycle.stopped", c.Name())
		finish(c.Stop())
	})
}

// RegisterLoop records a control loop with the platform (so "Jade
// administrates itself": loops appear in the management architecture).
func (p *Platform) RegisterLoop(l *ControlLoop) {
	p.loops = append(p.loops, l)
	if l.comp != nil && l.comp.Parent() == nil {
		_ = p.mgmtRoot.Add(l.comp)
	}
}

// Loops returns the registered control loops.
func (p *Platform) Loops() []*ControlLoop { return p.loops }

// ManagementRoot returns the composite holding Jade's own components.
func (p *Platform) ManagementRoot() *fractal.Component { return p.mgmtRoot }

// DescribeManagement renders Jade's own architecture — the deployed
// autonomic managers as components.
func (p *Platform) DescribeManagement() string { return p.mgmtRoot.Describe() }

// StdLogf is a convenience Logf that writes to the standard logger with
// virtual timestamps.
func StdLogf(eng *sim.Engine) func(string, ...any) {
	return func(format string, args ...any) {
		log.Printf("[t=%8.1f] %s", eng.Now(), fmt.Sprintf(format, args...))
	}
}
