package core

import (
	"errors"
	"fmt"
	"math"

	"jade/internal/cjdbc"
	"jade/internal/cluster"
	"jade/internal/fractal"
	"jade/internal/metrics"
	"jade/internal/obs"
	"jade/internal/refresh"
	"jade/internal/trace"
)

// Errors returned by the tier actuators.
var (
	ErrTierAtMin = errors.New("jade: tier already at its minimum size")
	ErrTierAtMax = errors.New("jade: tier already at its maximum size")
	ErrTierBusy  = errors.New("jade: tier reconfiguration in progress")
)

// TierActuator is the uniform actuation surface the self-optimization
// reactor drives: grow or shrink one replicated tier. Thanks to the
// uniform component interface the actuators are generic — "increasing or
// decreasing the number of replicas is implemented as adding or removing
// components in the application structure" (§4.1).
type TierActuator interface {
	TierName() string
	ReplicaCount() int
	ReplicaNames() []string
	Nodes() []*cluster.Node
	CanGrow() bool
	CanShrink() bool
	// Reconfiguring reports whether an actuation is currently in flight;
	// observers (e.g. invariant checkers) use it to distinguish transient
	// mid-reconfiguration states from steady-state violations.
	Reconfiguring() bool
	Grow(done func(error))
	Shrink(done func(error))
}

// tierBase holds bookkeeping common to both tiers.
type tierBase struct {
	p         *Platform
	d         *Deployment
	name      string
	composite *fractal.Component
	replicas  []string
	counter   int
	busy      bool

	// MinReplicas and MaxReplicas bound the tier size (MaxReplicas 0
	// means "whatever the node pool allows").
	MinReplicas int
	MaxReplicas int
}

func (t *tierBase) TierName() string { return t.name }

func (t *tierBase) ReplicaCount() int { return len(t.replicas) }

func (t *tierBase) ReplicaNames() []string { return append([]string(nil), t.replicas...) }

// Nodes returns the nodes currently hosting replicas.
func (t *tierBase) Nodes() []*cluster.Node {
	out := make([]*cluster.Node, 0, len(t.replicas))
	for _, name := range t.replicas {
		if n, err := t.d.NodeOf(name); err == nil {
			out = append(out, n)
		}
	}
	return out
}

func (t *tierBase) Reconfiguring() bool { return t.busy }

func (t *tierBase) CanGrow() bool {
	if t.busy {
		return false
	}
	if t.MaxReplicas > 0 && len(t.replicas) >= t.MaxReplicas {
		return false
	}
	return t.p.Pool.FreeCount() > 0
}

func (t *tierBase) CanShrink() bool {
	return !t.busy && len(t.replicas) > t.MinReplicas
}

func (t *tierBase) nextName(prefix string) string {
	for {
		t.counter++
		name := fmt.Sprintf("%s%d", prefix, t.counter)
		if _, err := t.d.Component(name); err != nil {
			return name
		}
	}
}

func (t *tierBase) dropReplica(name string) {
	for i, r := range t.replicas {
		if r == name {
			t.replicas = append(t.replicas[:i], t.replicas[i+1:]...)
			return
		}
	}
}

// AppTier is the application-server tier actuator: Tomcat replicas behind
// the PLB load balancer, all bound to the same database endpoint.
type AppTier struct {
	tierBase
	plbComp *fractal.Component
	dbComp  *fractal.Component // the component Tomcat's jdbc itf binds to
}

// NewAppTier builds the actuator for a deployment. plbName is the PLB
// component, dbName the component new Tomcats bind their JDBC interface
// to (C-JDBC in the paper), replicas the initial Tomcat component names.
func NewAppTier(p *Platform, d *Deployment, plbName, dbName string, replicas []string) (*AppTier, error) {
	plbComp, err := d.Component(plbName)
	if err != nil {
		return nil, err
	}
	dbComp, err := d.Component(dbName)
	if err != nil {
		return nil, err
	}
	var composite *fractal.Component = d.Root
	for _, r := range replicas {
		c, err := d.Component(r)
		if err != nil {
			return nil, err
		}
		if c.Parent() != nil {
			composite = c.Parent()
		}
	}
	return &AppTier{
		tierBase: tierBase{
			p: p, d: d, name: "application-servers",
			composite:   composite,
			replicas:    append([]string(nil), replicas...),
			counter:     len(replicas),
			MinReplicas: 1,
		},
		plbComp: plbComp,
		dbComp:  dbComp,
	}, nil
}

// Grow allocates a node, installs Tomcat, configures and starts a new
// replica and integrates it with the load balancer.
func (t *AppTier) Grow(done func(error)) {
	var span trace.ID
	finish := func(err error) {
		t.busy = false
		if err != nil {
			t.p.logf("selfsize: %s grow failed: %v", t.name, err)
		}
		t.p.tracer.End(span, outcomeField(err))
		if done != nil {
			done(err)
		}
	}
	if t.busy {
		done(ErrTierBusy)
		return
	}
	if t.MaxReplicas > 0 && len(t.replicas) >= t.MaxReplicas {
		done(ErrTierAtMax)
		return
	}
	span = t.p.tracer.Begin(0, "actuate", t.name+":grow", trace.Fi("replicas", len(t.replicas)))
	t.busy = true
	node, err := t.p.Pool.Allocate()
	if err != nil {
		finish(err)
		return
	}
	t.p.tracer.EmitIn(span, "actuate.step", "node-allocated", trace.F("node", node.Name()))
	t.p.SIS.Install("tomcat", node, func(ierr error) {
		if ierr != nil {
			_ = t.p.Pool.Release(node)
			finish(ierr)
			return
		}
		name := t.nextName("tomcat-r")
		t.p.tracer.EmitIn(span, "actuate.step", "installed",
			trace.F("package", "tomcat"), trace.F("replica", name))
		comp, cerr := NewTomcatComponent(t.p, name, node)
		if cerr != nil {
			_ = t.p.Pool.Release(node)
			finish(cerr)
			return
		}
		if err := comp.Bind("jdbc", t.dbComp.MustInterface("jdbc")); err != nil {
			_ = t.p.Pool.Release(node)
			finish(err)
			return
		}
		if err := t.composite.Add(comp); err != nil {
			_ = t.p.Pool.Release(node)
			finish(err)
			return
		}
		t.d.register(name, comp, node)
		t.p.StartComponent(comp, func(serr error) {
			if serr != nil {
				t.d.unregister(name)
				if _, rerr := t.composite.Remove(name); rerr != nil {
					t.p.logf("selfsize: cleanup of %s: %v", name, rerr)
				}
				_ = t.p.Pool.Release(node)
				finish(serr)
				return
			}
			t.p.tracer.EmitIn(span, "actuate.step", "started", trace.F("replica", name))
			if berr := t.plbComp.Bind("workers", comp.MustInterface("http")); berr != nil {
				finish(berr)
				return
			}
			t.p.tracer.EmitIn(span, "actuate.step", "joined-balancer", trace.F("replica", name))
			t.replicas = append(t.replicas, name)
			t.p.logf("selfsize: %s grew to %d replicas (+%s on %s)",
				t.name, len(t.replicas), name, node.Name())
			t.busy = false
			t.p.reconfigured(t.name + ":grow")
			finish(nil)
		})
	})
}

// Shrink unbinds the most recently added replica from the load balancer,
// stops it and releases its node.
func (t *AppTier) Shrink(done func(error)) {
	var span trace.ID
	finish := func(err error) {
		t.busy = false
		if err != nil {
			t.p.logf("selfsize: %s shrink failed: %v", t.name, err)
		}
		t.p.tracer.End(span, outcomeField(err))
		if done != nil {
			done(err)
		}
	}
	if t.busy {
		done(ErrTierBusy)
		return
	}
	if len(t.replicas) <= t.MinReplicas {
		done(ErrTierAtMin)
		return
	}
	span = t.p.tracer.Begin(0, "actuate", t.name+":shrink", trace.Fi("replicas", len(t.replicas)))
	t.busy = true
	name := t.replicas[len(t.replicas)-1]
	comp, err := t.d.Component(name)
	if err != nil {
		finish(err)
		return
	}
	if err := t.plbComp.Unbind("workers", comp.MustInterface("http")); err != nil {
		finish(err)
		return
	}
	t.p.tracer.EmitIn(span, "actuate.step", "left-balancer", trace.F("replica", name))
	t.p.StopComponent(comp, func(serr error) {
		if serr != nil {
			finish(serr)
			return
		}
		if err := comp.Unbind("jdbc", nil); err != nil {
			finish(err)
			return
		}
		if _, err := t.composite.Remove(name); err != nil {
			finish(err)
			return
		}
		node, _ := t.d.NodeOf(name)
		t.d.unregister(name)
		t.dropReplica(name)
		if node != nil {
			t.p.detachManagement(node)
			_ = t.p.Pool.Release(node)
			t.p.tracer.EmitIn(span, "actuate.step", "node-released",
				trace.F("node", node.Name()), trace.F("replica", name))
		}
		t.p.logf("selfsize: %s shrank to %d replicas (-%s)", t.name, len(t.replicas), name)
		t.busy = false
		t.p.reconfigured(t.name + ":shrink")
		finish(nil)
	})
}

// DBTier is the database tier actuator: MySQL replicas behind the C-JDBC
// controller, kept consistent through the recovery log.
type DBTier struct {
	tierBase
	cjdbcComp *fractal.Component

	// StateTransferSeconds models copying the database snapshot onto the
	// new replica's node before replaying the log delta.
	StateTransferSeconds float64

	// DumpName names the registered dump used when no active backend is
	// left to snapshot (e.g. repairing the last replica after a crash):
	// the new replica installs the initial dump and replays the whole
	// recovery log, exactly the §4.1 cold path. Default "rubis".
	DumpName string
}

// NewDBTier builds the actuator. cjdbcName is the controller component,
// replicas the initial MySQL component names.
func NewDBTier(p *Platform, d *Deployment, cjdbcName string, replicas []string) (*DBTier, error) {
	cjdbcComp, err := d.Component(cjdbcName)
	if err != nil {
		return nil, err
	}
	if _, ok := cjdbcComp.Content().(*CJDBCWrapper); !ok {
		return nil, fmt.Errorf("jade: %s is not a cjdbc component", cjdbcName)
	}
	var composite *fractal.Component = d.Root
	for _, r := range replicas {
		c, err := d.Component(r)
		if err != nil {
			return nil, err
		}
		if c.Parent() != nil {
			composite = c.Parent()
		}
	}
	return &DBTier{
		tierBase: tierBase{
			p: p, d: d, name: "database-backends",
			composite:   composite,
			replicas:    append([]string(nil), replicas...),
			counter:     len(replicas),
			MinReplicas: 1,
		},
		cjdbcComp:            cjdbcComp,
		StateTransferSeconds: 5,
		DumpName:             "rubis",
	}, nil
}

func (t *DBTier) wrapper() *CJDBCWrapper { return t.cjdbcComp.Content().(*CJDBCWrapper) }

// Grow implements the §4.1 protocol for adding a database replica:
// allocate a node, install MySQL, install a snapshot of an active
// backend, start the server, replay the recovery-log delta, activate, and
// record the binding in the management layer.
func (t *DBTier) Grow(done func(error)) {
	var span trace.ID
	finish := func(err error) {
		t.busy = false
		if err != nil {
			t.p.logf("selfsize: %s grow failed: %v", t.name, err)
		}
		t.p.tracer.End(span, outcomeField(err))
		if done != nil {
			done(err)
		}
	}
	if t.busy {
		done(ErrTierBusy)
		return
	}
	if t.MaxReplicas > 0 && len(t.replicas) >= t.MaxReplicas {
		done(ErrTierAtMax)
		return
	}
	cw := t.wrapper()
	if cw.Controller() == nil || !cw.Controller().Running() {
		done(fmt.Errorf("jade: cjdbc %s is not running", t.cjdbcComp.Name()))
		return
	}
	span = t.p.tracer.Begin(0, "actuate", t.name+":grow", trace.Fi("replicas", len(t.replicas)))
	t.busy = true
	node, err := t.p.Pool.Allocate()
	if err != nil {
		finish(err)
		return
	}
	t.p.tracer.EmitIn(span, "actuate.step", "node-allocated", trace.F("node", node.Name()))
	t.p.SIS.Install("mysql", node, func(ierr error) {
		if ierr != nil {
			_ = t.p.Pool.Release(node)
			finish(ierr)
			return
		}
		snap, idx, serr := cw.Controller().AnyActiveSnapshot()
		if errors.Is(serr, cjdbc.ErrNoBackend) && t.DumpName != "" {
			// No live replica to snapshot (repairing the last backend):
			// fall back to the initial dump at recovery-log index 0 and
			// replay the whole log.
			if dump, ok := t.p.Dump(t.DumpName); ok {
				snap, idx, serr = dump, 0, nil
				t.p.logf("selfsize: %s has no active backend; rebuilding from dump %q + full log replay",
					t.name, t.DumpName)
			}
		}
		if serr != nil {
			_ = t.p.Pool.Release(node)
			finish(serr)
			return
		}
		name := t.nextName("mysql-r")
		t.p.tracer.EmitIn(span, "actuate.step", "installed",
			trace.F("package", "mysql"), trace.F("replica", name))
		comp, cerr := NewMySQLComponent(t.p, name, node)
		if cerr != nil {
			_ = t.p.Pool.Release(node)
			finish(cerr)
			return
		}
		mw := comp.Content().(*MySQLWrapper)
		// State transfer: copy the snapshot onto the new node.
		t.p.Eng.After(t.StateTransferSeconds, "dbtier:state-transfer", func() {
			if err := mw.Server().LoadSnapshot(snap); err != nil {
				_ = t.p.Pool.Release(node)
				finish(err)
				return
			}
			t.p.tracer.EmitIn(span, "actuate.step", "state-transferred",
				trace.F("replica", name), trace.Fi("log-index", int(idx)))
			if err := t.composite.Add(comp); err != nil {
				_ = t.p.Pool.Release(node)
				finish(err)
				return
			}
			t.d.register(name, comp, node)
			t.p.StartComponent(comp, func(sterr error) {
				if sterr != nil {
					t.d.unregister(name)
					if _, rerr := t.composite.Remove(name); rerr != nil {
						t.p.logf("selfsize: cleanup of %s: %v", name, rerr)
					}
					_ = t.p.Pool.Release(node)
					finish(sterr)
					return
				}
				t.p.tracer.EmitIn(span, "actuate.step", "started", trace.F("replica", name))
				jerr := cw.JoinBackend(name, mw, idx, func(syncErr error) {
					if syncErr != nil {
						finish(syncErr)
						return
					}
					if berr := t.cjdbcComp.Bind("backends", comp.MustInterface("sql")); berr != nil {
						finish(berr)
						return
					}
					t.p.tracer.EmitIn(span, "actuate.step", "joined-backend", trace.F("replica", name))
					t.replicas = append(t.replicas, name)
					t.p.logf("selfsize: %s grew to %d replicas (+%s on %s, replayed from log index %d)",
						t.name, len(t.replicas), name, node.Name(), idx)
					t.busy = false
					t.p.reconfigured(t.name + ":grow")
					finish(nil)
				})
				if jerr != nil {
					finish(jerr)
				}
			})
		})
	})
}

// Shrink disables the most recently added replica (its checkpoint index
// is recorded in the recovery log), stops it and releases its node.
func (t *DBTier) Shrink(done func(error)) {
	var span trace.ID
	finish := func(err error) {
		t.busy = false
		if err != nil {
			t.p.logf("selfsize: %s shrink failed: %v", t.name, err)
		}
		t.p.tracer.End(span, outcomeField(err))
		if done != nil {
			done(err)
		}
	}
	if t.busy {
		done(ErrTierBusy)
		return
	}
	if len(t.replicas) <= t.MinReplicas {
		done(ErrTierAtMin)
		return
	}
	cw := t.wrapper()
	span = t.p.tracer.Begin(0, "actuate", t.name+":shrink", trace.Fi("replicas", len(t.replicas)))
	t.busy = true
	name := t.replicas[len(t.replicas)-1]
	comp, err := t.d.Component(name)
	if err != nil {
		finish(err)
		return
	}
	lerr := cw.LeaveBackend(name, func(checkpoint int64) {
		t.p.tracer.EmitIn(span, "actuate.step", "left-backend",
			trace.F("replica", name), trace.Fi("checkpoint", int(checkpoint)))
		if err := t.cjdbcComp.Unbind("backends", comp.MustInterface("sql")); err != nil {
			finish(err)
			return
		}
		t.p.StopComponent(comp, func(serr error) {
			if serr != nil {
				finish(serr)
				return
			}
			if _, err := t.composite.Remove(name); err != nil {
				finish(err)
				return
			}
			node, _ := t.d.NodeOf(name)
			t.d.unregister(name)
			t.dropReplica(name)
			if node != nil {
				t.p.detachManagement(node)
				_ = t.p.Pool.Release(node)
				t.p.tracer.EmitIn(span, "actuate.step", "node-released",
					trace.F("node", node.Name()), trace.F("replica", name))
			}
			t.p.logf("selfsize: %s shrank to %d replicas (-%s, checkpoint %d)",
				t.name, len(t.replicas), name, checkpoint)
			t.busy = false
			t.p.reconfigured(t.name + ":shrink")
			finish(nil)
		})
	})
	if lerr != nil {
		finish(lerr)
	}
}

// ThresholdReactor is the paper's decision logic: keep the tier's
// smoothed CPU usage between a minimum and a maximum threshold by
// resizing, with a shared post-reconfiguration inhibition window.
type ThresholdReactor struct {
	p    *Platform
	tier TierActuator

	// Min and Max are the CPU-usage thresholds.
	Min, Max float64
	// Inhibit is the (possibly shared) inhibition latch.
	Inhibit *Inhibitor
	// InhibitSeconds is the post-reconfiguration quiet period.
	InhibitSeconds float64
	// Arbiter, when set, replaces the Inhibitor: reconfigurations are
	// requested from the arbitration manager with Priority (see
	// Arbiter; this is the paper's future-work conflict arbitration).
	Arbiter  *Arbiter
	Priority int
	// OnResize (optional) observes replica-count changes.
	OnResize func(now float64, replicas int)
	// SampleEvent (optional) returns the bus event of the sensor sample
	// a decision was based on, linking decision spans back to the
	// sensor (set by NewSizingManager).
	SampleEvent func() trace.ID

	// Grows and Shrinks count completed reconfigurations.
	Grows, Shrinks uint64

	// Introspection-plane instruments (nil-safe), registered by
	// NewSizingManager: completed resize decisions, current replica
	// count, signed distance from the smoothed value to the nearest
	// threshold (negative outside the band), and hysteresis state.
	GrowsCtr       *obs.Counter
	ShrinksCtr     *obs.Counter
	ReplicasGauge  *obs.Gauge
	DistanceGauge  *obs.Gauge
	InhibitedGauge *obs.Gauge
}

// thresholdDistance is the signed distance from v to the nearest edge of
// the [min,max] band: positive inside, negative outside.
func thresholdDistance(v, min, max float64) float64 {
	return math.Min(max-v, v-min)
}

func (r *ThresholdReactor) gate() gate {
	if r.Arbiter != nil {
		return arbiterGate{r.Arbiter}
	}
	return inhibitorGate{i: r.Inhibit, seconds: r.InhibitSeconds}
}

// NewThresholdReactor builds the reactor with the paper's one-minute
// inhibition.
func NewThresholdReactor(p *Platform, tier TierActuator, min, max float64, shared *Inhibitor) *ThresholdReactor {
	if shared == nil {
		shared = &Inhibitor{}
	}
	return &ThresholdReactor{
		p:              p,
		tier:           tier,
		Min:            min,
		Max:            max,
		Inhibit:        shared,
		InhibitSeconds: 60,
		Priority:       PriorityOptimization,
	}
}

// decisionSpan opens the span recording one threshold crossing; the
// actuation it triggers nests under it via the ambient cause.
func (r *ThresholdReactor) decisionSpan(direction string, v, threshold float64) trace.ID {
	fields := []trace.Field{
		trace.F("tier", r.tier.TierName()),
		trace.F("direction", direction),
		trace.Ff("cpu", v),
		trace.Ff("threshold", threshold),
		trace.Fi("replicas", r.tier.ReplicaCount()),
	}
	if r.SampleEvent != nil {
		if id := r.SampleEvent(); id != 0 {
			fields = append(fields, trace.Fid("sample", id))
		}
	}
	return r.p.tracer.Begin(0, "decision", r.tier.TierName()+":"+direction, fields...)
}

// React implements Reactor.
func (r *ThresholdReactor) React(now float64, v float64) {
	r.DistanceGauge.Set(thresholdDistance(v, r.Min, r.Max))
	r.InhibitedGauge.SetBool(r.Inhibit != nil && r.Inhibit.Inhibited(now))
	r.ReplicasGauge.Set(float64(r.tier.ReplicaCount()))
	tr := r.p.tracer
	switch {
	case v > r.Max && r.tier.CanGrow():
		if !r.gate().tryAcquire(now, r.tier.TierName(), r.Priority) {
			return
		}
		dec := r.decisionSpan("grow", v, r.Max)
		r.p.logf("selfsize: %s cpu %.2f > %.2f, growing", r.tier.TierName(), v, r.Max)
		tr.WithCause(dec, func() {
			r.tier.Grow(func(err error) {
				if err == nil {
					r.Grows++
					r.GrowsCtr.Inc()
					r.notify()
				}
				tr.End(dec, outcomeField(err))
			})
		})
	case v < r.Min && r.tier.CanShrink():
		if !r.gate().tryAcquire(now, r.tier.TierName(), r.Priority) {
			return
		}
		dec := r.decisionSpan("shrink", v, r.Min)
		r.p.logf("selfsize: %s cpu %.2f < %.2f, shrinking", r.tier.TierName(), v, r.Min)
		tr.WithCause(dec, func() {
			r.tier.Shrink(func(err error) {
				if err == nil {
					r.Shrinks++
					r.ShrinksCtr.Inc()
					r.notify()
				}
				tr.End(dec, outcomeField(err))
			})
		})
	}
}

// outcomeField summarizes an actuation result for span closure.
func outcomeField(err error) trace.Field { return trace.Outcome(err) }

func (r *ThresholdReactor) notify() {
	if r.OnResize != nil {
		r.OnResize(r.p.Eng.Now(), r.tier.ReplicaCount())
	}
}

// SizingConfig parameterizes one self-optimization manager instance.
type SizingConfig struct {
	// Period is the control loop execution interval (1 s in the paper).
	Period float64 `json:"period,omitempty"`
	// Window is the CPU moving-average span (60 s app tier, 90 s db
	// tier in the paper).
	Window float64 `json:"window,omitempty"`
	// Min and Max are the CPU thresholds.
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
	// InhibitSeconds is the post-reconfiguration quiet period (60 s).
	InhibitSeconds float64 `json:"inhibit_seconds,omitempty"`
	// MaxReplicas caps the tier (0 = pool-bounded).
	MaxReplicas int `json:"max_replicas,omitempty"`
}

// AppSizingDefaults mirrors the paper's application-tier loop.
func AppSizingDefaults() SizingConfig {
	return SizingConfig{Period: 1, Window: 60, Min: 0.35, Max: 0.80, InhibitSeconds: 60}
}

// DBSizingDefaults mirrors the paper's database-tier loop.
func DBSizingDefaults() SizingConfig {
	return SizingConfig{Period: 1, Window: 90, Min: 0.40, Max: 0.80, InhibitSeconds: 60}
}

// SizingManager is one deployed self-optimization manager: a CPU sensor,
// a threshold reactor and the control loop binding them, plus the series
// the experiment figures read.
type SizingManager struct {
	Loop    *ControlLoop
	Sensor  *CPUSensor
	Reactor *ThresholdReactor
	Tier    TierActuator

	// Replicas traces the tier size over time (Fig. 5).
	Replicas *metrics.Series
}

// NewSizingManager assembles and registers (but does not start) a
// self-optimization manager for one tier.
func NewSizingManager(p *Platform, name string, tier TierActuator, cfg SizingConfig, shared *Inhibitor) (*SizingManager, error) {
	sensor := NewCPUSensor(tier.Nodes, cfg.Window, p.opts.ProbeCPUCost)
	reactor := NewThresholdReactor(p, tier, cfg.Min, cfg.Max, shared)
	reactor.InhibitSeconds = cfg.InhibitSeconds
	if tb, ok := tier.(interface{ setMax(int) }); ok && cfg.MaxReplicas > 0 {
		tb.setMax(cfg.MaxReplicas)
	}
	loop, err := NewControlLoop(p, name, cfg.Period, sensor, reactor)
	if err != nil {
		return nil, err
	}
	reactor.SampleEvent = loop.LastSampleEvent
	tl := obs.L("tier", tier.TierName())
	reactor.GrowsCtr = p.Metrics().Counter("jade_sizing_grows_total",
		"Completed tier-grow reconfigurations per sizing manager.", tl)
	reactor.ShrinksCtr = p.Metrics().Counter("jade_sizing_shrinks_total",
		"Completed tier-shrink reconfigurations per sizing manager.", tl)
	reactor.ReplicasGauge = p.Metrics().Gauge("jade_sizing_replicas",
		"Current replica count per managed tier.", tl)
	reactor.DistanceGauge = p.Metrics().Gauge("jade_sizing_threshold_distance",
		"Signed distance from the smoothed CPU value to the nearest threshold (negative outside the band).", tl)
	reactor.InhibitedGauge = p.Metrics().Gauge("jade_sizing_inhibited",
		"1 while the shared reconfiguration inhibitor suppresses this tier's resizes.", tl)
	reactor.ReplicasGauge.Set(float64(tier.ReplicaCount()))
	m := &SizingManager{
		Loop:     loop,
		Sensor:   sensor,
		Reactor:  reactor,
		Tier:     tier,
		Replicas: metrics.NewSeries(tier.TierName() + "-replicas"),
	}
	m.Replicas.Add(p.Eng.Now(), float64(tier.ReplicaCount()))
	reactor.OnResize = func(now float64, replicas int) {
		m.Replicas.Add(now, float64(replicas))
	}
	return m, nil
}

// Watch subscribes the manager to a refreshable sizing view: threshold
// and hysteresis changes land on the reactor at the view's Set tick (on
// the simulation goroutine), so the very next React tick judges the CPU
// band against the new values — a live retune, no restart.
func (m *SizingManager) Watch(v *refresh.View[SizingConfig]) {
	v.Subscribe(func(now float64, old, cur SizingConfig) {
		m.Reactor.Min, m.Reactor.Max = cur.Min, cur.Max
		m.Reactor.InhibitSeconds = cur.InhibitSeconds
	})
}

// Status captures the manager's live state for the admin endpoint's
// /loops page: loop identity and sampling progress, the sensor's
// moving-average window, the reactor's thresholds and hysteresis state,
// and the decision tally.
func (m *SizingManager) Status(now float64) obs.LoopStatus {
	ws, wc, wf := m.Sensor.WindowState()
	st := obs.LoopStatus{
		Name:              m.Loop.Name(),
		Tier:              m.Tier.TierName(),
		Running:           m.Loop.Running(),
		PeriodSeconds:     m.Loop.Period(),
		Samples:           int(m.Loop.Samples()),
		LastValue:         m.Loop.LastValue,
		WindowSeconds:     ws,
		WindowCount:       wc,
		WindowFull:        wf,
		MinThreshold:      m.Reactor.Min,
		MaxThreshold:      m.Reactor.Max,
		ThresholdDistance: thresholdDistance(m.Loop.LastValue, m.Reactor.Min, m.Reactor.Max),
		Grows:             int(m.Reactor.Grows),
		Shrinks:           int(m.Reactor.Shrinks),
		Replicas:          m.Tier.ReplicaCount(),
	}
	if m.Reactor.Inhibit != nil {
		st.Inhibited = m.Reactor.Inhibit.Inhibited(now)
		st.InhibitedUntil = m.Reactor.Inhibit.Until()
	}
	return st
}

// setMax lets SizingConfig.MaxReplicas reach the embedded tierBase.
func (t *tierBase) setMax(n int) { t.MaxReplicas = n }
