package core

import (
	"jade/internal/adl"
	"jade/internal/fractal"
)

// ExportADL reconstructs an architecture description from the *live*
// component tree: the composites, the wrapped components with their
// current attributes and node placements, and the current bindings.
//
// This closes the paper's introspection loop: an architecture deployed
// from an ADL document, then reconfigured autonomically (replicas added
// or removed, bindings changed), can be re-captured as a document that
// redeploys the current state — e.g. to checkpoint a self-sized
// configuration as the new baseline.
func (d *Deployment) ExportADL() *adl.Definition {
	def := &adl.Definition{Name: d.Def.Name}

	var exportInto func(dst *compositeTarget, c *fractal.Component)
	exportInto = func(dst *compositeTarget, c *fractal.Component) {
		for _, child := range c.Children() {
			if child.Composite() {
				nested := adl.CompositeDecl{Name: child.Name()}
				sub := &compositeTarget{decl: &nested}
				exportInto(sub, child)
				dst.addComposite(nested)
				continue
			}
			w, ok := child.Content().(Wrapper)
			if !ok {
				continue
			}
			decl := adl.ComponentDecl{
				Name:    child.Name(),
				Wrapper: w.Kind(),
				Node:    w.Node().Name(),
			}
			for _, a := range child.Attributes() {
				v, err := child.Attribute(a)
				if err != nil {
					continue
				}
				decl.Attributes = append(decl.Attributes, adl.AttrDecl{Name: a, Value: v})
			}
			dst.addComponent(decl)
		}
	}
	top := &compositeTarget{def: def}
	exportInto(top, d.Root)

	// Bindings, in a stable traversal order.
	d.Root.Visit(func(c *fractal.Component) {
		if c.Composite() {
			return
		}
		for _, itf := range c.Interfaces() {
			if itf.Role() != fractal.Client {
				continue
			}
			for _, b := range c.Bindings(itf.Name()) {
				def.Bindings = append(def.Bindings, adl.BindingDecl{
					Client: c.Name() + "." + itf.Name(),
					Server: b.ServerItf.Owner().Name() + "." + b.ServerItf.Name(),
				})
			}
		}
	})
	return def
}

// compositeTarget abstracts "append into the definition root or into a
// nested composite declaration".
type compositeTarget struct {
	def  *adl.Definition
	decl *adl.CompositeDecl
}

func (t *compositeTarget) addComponent(c adl.ComponentDecl) {
	if t.def != nil {
		t.def.Components = append(t.def.Components, c)
		return
	}
	t.decl.Components = append(t.decl.Components, c)
}

func (t *compositeTarget) addComposite(c adl.CompositeDecl) {
	if t.def != nil {
		t.def.Composites = append(t.def.Composites, c)
		return
	}
	t.decl.Composites = append(t.decl.Composites, c)
}
