package core

import (
	"fmt"

	"jade/internal/selector"
)

// RoutingConfig names the backend-selection policy of each balancing
// tier (see selector.PolicyNames for the accepted spellings). Empty
// strings keep each tier's historic default: weighted-round-robin for
// the L4 switch, round-robin for PLB, least-pending for C-JDBC reads.
type RoutingConfig struct {
	// L4, App and DB select the policy of the L4 switch, the PLB
	// application balancer and the C-JDBC read balancer respectively.
	L4  string
	App string
	DB  string
	// ProbeAfterSeconds overrides how long a suspected-down backend
	// stays unpicked before a probe request tests it (selector default
	// when zero).
	ProbeAfterSeconds float64
	// HalfLifeSeconds overrides the decay half-life of the balanced
	// scorer's failure/latency reservoirs (selector default when zero).
	HalfLifeSeconds float64
}

// Validate checks that every named policy parses.
func (r RoutingConfig) Validate() error {
	for _, tier := range []struct{ name, policy string }{
		{"l4", r.L4}, {"app", r.App}, {"db", r.DB},
	} {
		if tier.policy == "" {
			continue
		}
		if _, err := selector.ParsePolicy(tier.policy); err != nil {
			return fmt.Errorf("jade: routing %s: %w", tier.name, err)
		}
	}
	return nil
}

// tierOptions builds the selector options for one tier: the named policy
// (or the tier's default when empty) plus any pool-tuning overrides.
func (r RoutingConfig) tierOptions(policy string, def selector.Policy) (selector.Options, error) {
	p := def
	if policy != "" {
		var err error
		if p, err = selector.ParsePolicy(policy); err != nil {
			return selector.Options{}, fmt.Errorf("%w: routing policy %q", ErrBadAttribute, policy)
		}
	}
	o := selector.DefaultOptions(p)
	if r.ProbeAfterSeconds > 0 {
		o.ProbeAfterSeconds = r.ProbeAfterSeconds
	}
	if r.HalfLifeSeconds > 0 {
		o.HalfLifeSeconds = r.HalfLifeSeconds
	}
	return o, nil
}
