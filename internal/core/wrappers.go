package core

import (
	"errors"
	"fmt"
	"strconv"

	"jade/internal/cjdbc"
	"jade/internal/cluster"
	"jade/internal/config"
	"jade/internal/fractal"
	"jade/internal/l4"
	"jade/internal/legacy"
	"jade/internal/obs"
	"jade/internal/plb"
	"jade/internal/selector"
)

// Errors returned by wrappers.
var (
	ErrBadAttribute    = errors.New("jade: invalid attribute value")
	ErrAttributeFrozen = errors.New("jade: attribute cannot change while running")
	ErrNotSynced       = errors.New("jade: backend must be synchronized before binding (use the db tier actuator)")
)

// Interface signatures used across the management layer.
const (
	SigHTTP = "http"
	SigAJP  = "ajp13"
	SigJDBC = "jdbc"
)

// Wrapper is the content contract of every Jade-managed component: the
// synchronous Fractal hooks reflect attribute and binding changes into
// legacy configuration files; StartManaged/StopManaged run the legacy
// start/stop scripts, which take (simulated) time.
type Wrapper interface {
	Kind() string
	Node() *cluster.Node
	StartManaged(done func(error))
	StopManaged(done func(error))
}

// httpEndpoint is implemented by wrappers whose legacy software serves
// HTTP, so balancers can obtain the request target.
type httpEndpoint interface {
	HTTPEndpoint() legacy.HTTPHandler
}

// WrapperFactory builds a wrapped component on a node.
type WrapperFactory func(p *Platform, name string, node *cluster.Node) (*fractal.Component, error)

// startRank orders component startup so that servers register their
// listeners before their clients resolve them (db → db balancer → app →
// app balancer → web → web switch).
func startRank(kind string) int {
	switch kind {
	case "mysql":
		return 0
	case "cjdbc":
		return 1
	case "tomcat":
		return 2
	case "plb":
		return 3
	case "apache":
		return 4
	case "l4":
		return 5
	}
	return 9
}

func registerStandardWrappers(p *Platform) {
	p.RegisterWrapper("apache", NewApacheComponent)
	p.RegisterWrapper("tomcat", NewTomcatComponent)
	p.RegisterWrapper("mysql", NewMySQLComponent)
	p.RegisterWrapper("cjdbc", NewCJDBCComponent)
	p.RegisterWrapper("plb", NewPLBComponent)
	p.RegisterWrapper("l4", NewL4Component)
}

// targetWrapper resolves the wrapper behind a server interface.
func targetWrapper(server *fractal.Interface) (Wrapper, error) {
	w, ok := server.Owner().Content().(Wrapper)
	if !ok {
		return nil, fmt.Errorf("jade: %s is not a managed component", server.Owner().Name())
	}
	return w, nil
}

// --- Apache wrapper ---

// ApacheWrapper manages an Apache web server. Attribute "port" is
// reflected into httpd.conf's Listen directive; bindings of the "ajp"
// client interface are reflected into worker.properties (§3.2's example
// wrapper); the lifecycle controller runs the Apache start/stop scripts.
type ApacheWrapper struct {
	p    *Platform
	srv  *legacy.Apache
	comp *fractal.Component
}

// NewApacheComponent is the WrapperFactory for Apache.
func NewApacheComponent(p *Platform, name string, node *cluster.Node) (*fractal.Component, error) {
	w := &ApacheWrapper{p: p, srv: legacy.NewApache(p.Env(), name, node, legacy.DefaultApacheOptions())}
	comp, err := fractal.NewPrimitive(name, w,
		fractal.ItfSpec{Name: "http", Signature: SigHTTP, Role: fractal.Server},
		fractal.ItfSpec{Name: "ajp", Signature: SigAJP, Role: fractal.Client,
			Contingency: fractal.Optional, Collection: true},
	)
	if err != nil {
		return nil, err
	}
	w.comp = comp
	hc := config.NewHTTPDConf()
	hc.Set("ServerName", node.Name())
	hc.Set("Listen", "80")
	if err := p.FS.WriteFile(w.srv.ConfPath(), []byte(hc.Render())); err != nil {
		return nil, err
	}
	if err := p.FS.WriteFile(w.srv.WorkersPath(), []byte(config.NewWorkerProperties().Render())); err != nil {
		return nil, err
	}
	if err := comp.SetAttribute("port", "80"); err != nil {
		return nil, err
	}
	p.attachManagement(node)
	return comp, nil
}

// Kind implements Wrapper.
func (w *ApacheWrapper) Kind() string { return "apache" }

// Node implements Wrapper.
func (w *ApacheWrapper) Node() *cluster.Node { return w.srv.Node() }

// Server exposes the managed Apache instance.
func (w *ApacheWrapper) Server() *legacy.Apache { return w.srv }

// HTTPEndpoint implements httpEndpoint.
func (w *ApacheWrapper) HTTPEndpoint() legacy.HTTPHandler { return w.srv }

// OnSetAttribute reflects attributes into httpd.conf.
func (w *ApacheWrapper) OnSetAttribute(c *fractal.Component, name, value string) error {
	switch name {
	case "port":
		port, err := strconv.Atoi(value)
		if err != nil || port <= 0 {
			return fmt.Errorf("%w: apache port %q", ErrBadAttribute, value)
		}
		return w.editHTTPD(func(hc *config.HTTPDConf) { hc.Set("Listen", value) })
	default:
		return nil // free-form attributes are recorded only
	}
}

func (w *ApacheWrapper) editHTTPD(edit func(*config.HTTPDConf)) error {
	raw, err := w.p.FS.ReadFile(w.srv.ConfPath())
	if err != nil {
		return err
	}
	hc, err := legacy.ParseHTTPD(raw)
	if err != nil {
		return err
	}
	edit(hc)
	return w.p.FS.WriteFile(w.srv.ConfPath(), []byte(hc.Render()))
}

func (w *ApacheWrapper) editWorkers(edit func(*config.WorkerProperties)) error {
	raw, err := w.p.FS.ReadFile(w.srv.WorkersPath())
	if err != nil {
		return err
	}
	wp, err := legacy.ParseWorkers(raw)
	if err != nil {
		return err
	}
	edit(wp)
	return w.p.FS.WriteFile(w.srv.WorkersPath(), []byte(wp.Render()))
}

// OnBind reflects an AJP binding into worker.properties.
func (w *ApacheWrapper) OnBind(c *fractal.Component, itf string, server *fractal.Interface) error {
	tw, err := targetWrapper(server)
	if err != nil {
		return err
	}
	port, err := strconv.Atoi(server.Owner().AttributeOr("ajp-port", "8009"))
	if err != nil {
		return fmt.Errorf("%w: ajp-port on %s", ErrBadAttribute, server.Owner().Name())
	}
	return w.editWorkers(func(wp *config.WorkerProperties) {
		wp.SetWorker(config.Worker{
			Name:     server.Owner().Name(),
			Host:     tw.Node().Name(),
			Port:     port,
			Type:     "ajp13",
			LBFactor: 100,
		})
	})
}

// OnUnbind removes the worker from worker.properties.
func (w *ApacheWrapper) OnUnbind(c *fractal.Component, itf string, server *fractal.Interface) error {
	return w.editWorkers(func(wp *config.WorkerProperties) {
		wp.RemoveWorker(server.Owner().Name())
	})
}

// StartManaged runs the Apache start script.
func (w *ApacheWrapper) StartManaged(done func(error)) { w.srv.Start(done) }

// StopManaged runs the Apache stop script.
func (w *ApacheWrapper) StopManaged(done func(error)) { w.srv.Stop(done) }

// TerminateManaged hard-kills the Apache process (repair of a replica
// that may still be alive).
func (w *ApacheWrapper) TerminateManaged() { w.srv.Terminate() }

// --- Tomcat wrapper ---

// TomcatWrapper manages a Tomcat servlet server: attributes "ajp-port"
// and "http-port" edit server.xml connectors; the "jdbc" client binding
// writes the JDBC resource URL.
type TomcatWrapper struct {
	p    *Platform
	srv  *legacy.Tomcat
	comp *fractal.Component
}

// NewTomcatComponent is the WrapperFactory for Tomcat.
func NewTomcatComponent(p *Platform, name string, node *cluster.Node) (*fractal.Component, error) {
	w := &TomcatWrapper{p: p, srv: legacy.NewTomcat(p.Env(), name, node, legacy.DefaultTomcatOptions())}
	comp, err := fractal.NewPrimitive(name, w,
		fractal.ItfSpec{Name: "http", Signature: SigHTTP, Role: fractal.Server},
		fractal.ItfSpec{Name: "ajp", Signature: SigAJP, Role: fractal.Server},
		fractal.ItfSpec{Name: "jdbc", Signature: SigJDBC, Role: fractal.Client,
			Contingency: fractal.Optional},
	)
	if err != nil {
		return nil, err
	}
	w.comp = comp
	sx := config.NewServerXML(name)
	sx.SetConnector("ajp13", 8009, "")
	sx.SetConnector("http", 8080, "")
	sx.Contexts = append(sx.Contexts, config.WebContextXML{Path: "/rubis", DocBase: "rubis"})
	text, err := sx.Render()
	if err != nil {
		return nil, err
	}
	if err := p.FS.WriteFile(w.srv.ConfPath(), []byte(text)); err != nil {
		return nil, err
	}
	for attr, v := range map[string]string{"ajp-port": "8009", "http-port": "8080"} {
		if err := comp.SetAttribute(attr, v); err != nil {
			return nil, err
		}
	}
	p.attachManagement(node)
	return comp, nil
}

// Kind implements Wrapper.
func (w *TomcatWrapper) Kind() string { return "tomcat" }

// Node implements Wrapper.
func (w *TomcatWrapper) Node() *cluster.Node { return w.srv.Node() }

// Server exposes the managed Tomcat instance.
func (w *TomcatWrapper) Server() *legacy.Tomcat { return w.srv }

// HTTPEndpoint implements httpEndpoint.
func (w *TomcatWrapper) HTTPEndpoint() legacy.HTTPHandler { return w.srv }

func (w *TomcatWrapper) editServerXML(edit func(*config.ServerXML)) error {
	raw, err := w.p.FS.ReadFile(w.srv.ConfPath())
	if err != nil {
		return err
	}
	sx, err := legacy.ParseServerXML(raw)
	if err != nil {
		return err
	}
	edit(sx)
	text, err := sx.Render()
	if err != nil {
		return err
	}
	return w.p.FS.WriteFile(w.srv.ConfPath(), []byte(text))
}

// OnSetAttribute reflects connector ports into server.xml.
func (w *TomcatWrapper) OnSetAttribute(c *fractal.Component, name, value string) error {
	switch name {
	case "ajp-port", "http-port":
		port, err := strconv.Atoi(value)
		if err != nil || port <= 0 {
			return fmt.Errorf("%w: tomcat %s %q", ErrBadAttribute, name, value)
		}
		proto := "ajp13"
		if name == "http-port" {
			proto = "http"
		}
		return w.editServerXML(func(sx *config.ServerXML) { sx.SetConnector(proto, port, "") })
	default:
		return nil
	}
}

// OnBind writes the JDBC resource into server.xml.
func (w *TomcatWrapper) OnBind(c *fractal.Component, itf string, server *fractal.Interface) error {
	tw, err := targetWrapper(server)
	if err != nil {
		return err
	}
	port := server.Owner().AttributeOr("port", "3306")
	url := fmt.Sprintf("jdbc:mysql://%s:%s/rubis", tw.Node().Name(), port)
	return w.editServerXML(func(sx *config.ServerXML) {
		sx.SetJDBC("rubis", "com.mysql.jdbc.Driver", url)
	})
}

// OnUnbind removes the JDBC resource.
func (w *TomcatWrapper) OnUnbind(c *fractal.Component, itf string, server *fractal.Interface) error {
	return w.editServerXML(func(sx *config.ServerXML) { sx.RemoveJDBC("rubis") })
}

// StartManaged runs Tomcat's start script.
func (w *TomcatWrapper) StartManaged(done func(error)) { w.srv.Start(done) }

// StopManaged runs Tomcat's stop script.
func (w *TomcatWrapper) StopManaged(done func(error)) { w.srv.Stop(done) }

// TerminateManaged hard-kills the Tomcat process (repair of a replica
// that may still be alive).
func (w *TomcatWrapper) TerminateManaged() { w.srv.Terminate() }

// --- MySQL wrapper ---

// MySQLWrapper manages a MySQL server: attribute "port" edits my.cnf;
// attribute "dump" names a registered database dump installed on first
// start (the RUBiS dataset in the experiments).
type MySQLWrapper struct {
	p    *Platform
	srv  *legacy.MySQL
	comp *fractal.Component
}

// NewMySQLComponent is the WrapperFactory for MySQL.
func NewMySQLComponent(p *Platform, name string, node *cluster.Node) (*fractal.Component, error) {
	w := &MySQLWrapper{p: p, srv: legacy.NewMySQL(p.Env(), name, node, legacy.DefaultMySQLOptions())}
	comp, err := fractal.NewPrimitive(name, w,
		fractal.ItfSpec{Name: "sql", Signature: SigJDBC, Role: fractal.Server},
	)
	if err != nil {
		return nil, err
	}
	w.comp = comp
	cnf := config.NewMyCnf()
	cnf.SetInt("mysqld", "port", 3306)
	cnf.Set("mysqld", "datadir", "/var/lib/mysql")
	if err := p.FS.WriteFile(w.srv.ConfPath(), []byte(cnf.Render())); err != nil {
		return nil, err
	}
	if err := comp.SetAttribute("port", "3306"); err != nil {
		return nil, err
	}
	p.attachManagement(node)
	return comp, nil
}

// Kind implements Wrapper.
func (w *MySQLWrapper) Kind() string { return "mysql" }

// Node implements Wrapper.
func (w *MySQLWrapper) Node() *cluster.Node { return w.srv.Node() }

// Server exposes the managed MySQL instance.
func (w *MySQLWrapper) Server() *legacy.MySQL { return w.srv }

// OnSetAttribute reflects the port into my.cnf.
func (w *MySQLWrapper) OnSetAttribute(c *fractal.Component, name, value string) error {
	switch name {
	case "port":
		port, err := strconv.Atoi(value)
		if err != nil || port <= 0 {
			return fmt.Errorf("%w: mysql port %q", ErrBadAttribute, value)
		}
		raw, rerr := w.p.FS.ReadFile(w.srv.ConfPath())
		if rerr != nil {
			return rerr
		}
		cnf, perr := legacy.ParseMyCnf(raw)
		if perr != nil {
			return perr
		}
		cnf.SetInt("mysqld", "port", port)
		return w.p.FS.WriteFile(w.srv.ConfPath(), []byte(cnf.Render()))
	default:
		return nil
	}
}

// StartManaged installs the configured dump on an empty database, then
// runs the MySQL start script.
func (w *MySQLWrapper) StartManaged(done func(error)) {
	if dumpName := w.comp.AttributeOr("dump", ""); dumpName != "" && len(w.srv.DB().Tables()) == 0 {
		dump, ok := w.p.Dump(dumpName)
		if !ok {
			done(fmt.Errorf("jade: mysql %s: unknown dump %q", w.comp.Name(), dumpName))
			return
		}
		if err := w.srv.LoadSnapshot(dump); err != nil {
			done(err)
			return
		}
	}
	w.srv.Start(done)
}

// StopManaged runs the MySQL stop script.
func (w *MySQLWrapper) StopManaged(done func(error)) { w.srv.Stop(done) }

// TerminateManaged hard-kills the MySQL process (repair of a replica
// that may still be alive).
func (w *MySQLWrapper) TerminateManaged() { w.srv.Terminate() }

// --- C-JDBC wrapper ---

// CJDBCWrapper manages the C-JDBC database controller. Its "backends"
// client interface is a dynamic collection: initial deployment binds the
// starting replicas (joined at index 0 during StartManaged, since all are
// installed from the same dump before any write); at run time the db tier
// actuator synchronizes a replica through the recovery log and *then*
// binds it.
type CJDBCWrapper struct {
	p    *Platform
	node *cluster.Node
	comp *fractal.Component
	ctl  *cjdbc.Controller
}

// NewCJDBCComponent is the WrapperFactory for C-JDBC.
func NewCJDBCComponent(p *Platform, name string, node *cluster.Node) (*fractal.Component, error) {
	w := &CJDBCWrapper{p: p, node: node}
	comp, err := fractal.NewPrimitive(name, w,
		fractal.ItfSpec{Name: "jdbc", Signature: SigJDBC, Role: fractal.Server},
		fractal.ItfSpec{Name: "backends", Signature: SigJDBC, Role: fractal.Client,
			Contingency: fractal.Optional, Collection: true, Dynamic: true},
	)
	if err != nil {
		return nil, err
	}
	w.comp = comp
	if err := comp.SetAttribute("port", "25322"); err != nil {
		return nil, err
	}
	p.attachManagement(node)
	return comp, nil
}

// Kind implements Wrapper.
func (w *CJDBCWrapper) Kind() string { return "cjdbc" }

// Node implements Wrapper.
func (w *CJDBCWrapper) Node() *cluster.Node { return w.node }

// Controller exposes the managed C-JDBC controller (nil before start).
func (w *CJDBCWrapper) Controller() *cjdbc.Controller { return w.ctl }

// OnSetAttribute validates controller attributes (frozen while running).
func (w *CJDBCWrapper) OnSetAttribute(c *fractal.Component, name, value string) error {
	switch name {
	case "port":
		if w.ctl != nil && w.ctl.Running() {
			return fmt.Errorf("%w: cjdbc port", ErrAttributeFrozen)
		}
		if port, err := strconv.Atoi(value); err != nil || port <= 0 {
			return fmt.Errorf("%w: cjdbc port %q", ErrBadAttribute, value)
		}
	case "read-policy":
		if w.ctl != nil && w.ctl.Running() {
			return fmt.Errorf("%w: cjdbc read-policy", ErrAttributeFrozen)
		}
		if value != "" {
			if _, err := selector.ParsePolicy(value); err != nil {
				return fmt.Errorf("%w: cjdbc read-policy %q", ErrBadAttribute, value)
			}
		}
	}
	return nil
}

// OnBind validates a backend binding. A running controller only accepts
// bindings for backends it already knows (i.e. that the actuator joined
// after a recovery-log sync); deployment-time bindings are joined at
// StartManaged.
func (w *CJDBCWrapper) OnBind(c *fractal.Component, itf string, server *fractal.Interface) error {
	if _, err := w.mysqlOf(server); err != nil {
		return err
	}
	if w.ctl != nil && w.ctl.Running() {
		for _, b := range w.ctl.Backends() {
			if b.Name == server.Owner().Name() {
				return nil
			}
		}
		return fmt.Errorf("%w: %s", ErrNotSynced, server.Owner().Name())
	}
	return nil
}

// OnUnbind accepts removals; the controller-side Leave happens through
// the actuator before the architectural unbind.
func (w *CJDBCWrapper) OnUnbind(c *fractal.Component, itf string, server *fractal.Interface) error {
	return nil
}

func (w *CJDBCWrapper) mysqlOf(server *fractal.Interface) (*MySQLWrapper, error) {
	mw, ok := server.Owner().Content().(*MySQLWrapper)
	if !ok {
		return nil, fmt.Errorf("jade: cjdbc backend %s is not a mysql component", server.Owner().Name())
	}
	return mw, nil
}

// StartManaged starts the controller and joins every bound backend at
// recovery-log index 0 (all initial replicas hold the same dump).
func (w *CJDBCWrapper) StartManaged(done func(error)) {
	port, err := strconv.Atoi(w.comp.AttributeOr("port", "25322"))
	if err != nil {
		done(fmt.Errorf("%w: cjdbc port", ErrBadAttribute))
		return
	}
	opts := cjdbc.DefaultOptions()
	opts.Port = port
	// The component attribute overrides the platform-wide routing config.
	policy := w.comp.AttributeOr("read-policy", "")
	if policy == "" {
		policy = w.p.opts.Routing.DB
	}
	ropts, err := w.p.opts.Routing.tierOptions(policy, selector.LeastPending)
	if err != nil {
		done(err)
		return
	}
	opts.Routing = ropts
	w.ctl = cjdbc.New(w.p.Eng, w.p.Net, w.node, w.comp.Name(), opts)
	w.ctl.Trace = w.p.Trace()
	w.ctl.Obs = obs.NewTierMetrics(w.p.Metrics(), "cjdbc", w.comp.Name())
	if err := w.ctl.Start(); err != nil {
		done(err)
		return
	}
	bindings := w.comp.Bindings("backends")
	var joinNext func(i int)
	joinNext = func(i int) {
		if i >= len(bindings) {
			done(nil)
			return
		}
		server := bindings[i].ServerItf
		mw, err := w.mysqlOf(server)
		if err != nil {
			done(err)
			return
		}
		err = w.ctl.JoinAt(server.Owner().Name(), mw.Server(), 0, func(jerr error) {
			if jerr != nil {
				done(jerr)
				return
			}
			joinNext(i + 1)
		})
		if err != nil {
			done(err)
		}
	}
	joinNext(0)
}

// StopManaged disables all backends and stops the controller.
func (w *CJDBCWrapper) StopManaged(done func(error)) {
	if w.ctl == nil {
		done(nil)
		return
	}
	w.ctl.Stop()
	done(nil)
}

// JoinBackend synchronizes and activates a replica already installed and
// started on its node: the §4.1 recovery-log protocol.
func (w *CJDBCWrapper) JoinBackend(name string, mw *MySQLWrapper, atIndex int64, done func(error)) error {
	if w.ctl == nil || !w.ctl.Running() {
		return fmt.Errorf("jade: cjdbc %s is not running", w.comp.Name())
	}
	return w.ctl.JoinAt(name, mw.Server(), atIndex, done)
}

// LeaveBackend cleanly disables a replica, recording its checkpoint.
func (w *CJDBCWrapper) LeaveBackend(name string, done func(int64)) error {
	if w.ctl == nil || !w.ctl.Running() {
		return fmt.Errorf("jade: cjdbc %s is not running", w.comp.Name())
	}
	return w.ctl.Leave(name, done)
}

// --- PLB wrapper ---

// PLBWrapper manages the application-tier load balancer. Its "workers"
// client interface is a dynamic collection; binding and unbinding while
// running adds and removes workers live (the self-sizing actuator path).
type PLBWrapper struct {
	p    *Platform
	node *cluster.Node
	comp *fractal.Component
	b    *plb.Balancer
}

// NewPLBComponent is the WrapperFactory for PLB.
func NewPLBComponent(p *Platform, name string, node *cluster.Node) (*fractal.Component, error) {
	w := &PLBWrapper{p: p, node: node}
	comp, err := fractal.NewPrimitive(name, w,
		fractal.ItfSpec{Name: "http", Signature: SigHTTP, Role: fractal.Server},
		fractal.ItfSpec{Name: "workers", Signature: SigHTTP, Role: fractal.Client,
			Contingency: fractal.Optional, Collection: true, Dynamic: true},
	)
	if err != nil {
		return nil, err
	}
	w.comp = comp
	if err := comp.SetAttribute("port", "8080"); err != nil {
		return nil, err
	}
	p.attachManagement(node)
	return comp, nil
}

// Kind implements Wrapper.
func (w *PLBWrapper) Kind() string { return "plb" }

// Node implements Wrapper.
func (w *PLBWrapper) Node() *cluster.Node { return w.node }

// Balancer exposes the managed PLB instance (nil before start).
func (w *PLBWrapper) Balancer() *plb.Balancer { return w.b }

// HTTPEndpoint implements httpEndpoint (for the L4 switch or clients).
func (w *PLBWrapper) HTTPEndpoint() legacy.HTTPHandler { return w.b }

// OnSetAttribute validates balancer attributes (frozen while running).
func (w *PLBWrapper) OnSetAttribute(c *fractal.Component, name, value string) error {
	if name != "port" {
		return nil
	}
	if w.b != nil && w.b.Running() {
		return fmt.Errorf("%w: plb port", ErrAttributeFrozen)
	}
	if port, err := strconv.Atoi(value); err != nil || port <= 0 {
		return fmt.Errorf("%w: plb port %q", ErrBadAttribute, value)
	}
	return nil
}

// OnBind integrates a worker live when the balancer runs.
func (w *PLBWrapper) OnBind(c *fractal.Component, itf string, server *fractal.Interface) error {
	ep, ok := server.Owner().Content().(httpEndpoint)
	if !ok {
		return fmt.Errorf("jade: plb worker %s does not serve HTTP", server.Owner().Name())
	}
	if w.b != nil && w.b.Running() {
		return w.b.AddWorker(server.Owner().Name(), ep.HTTPEndpoint())
	}
	return nil
}

// OnUnbind removes a worker live when the balancer runs.
func (w *PLBWrapper) OnUnbind(c *fractal.Component, itf string, server *fractal.Interface) error {
	if w.b != nil && w.b.Running() {
		return w.b.RemoveWorker(server.Owner().Name())
	}
	return nil
}

// StartManaged starts the balancer and integrates bound workers.
func (w *PLBWrapper) StartManaged(done func(error)) {
	port, err := strconv.Atoi(w.comp.AttributeOr("port", "8080"))
	if err != nil {
		done(fmt.Errorf("%w: plb port", ErrBadAttribute))
		return
	}
	opts := plb.DefaultOptions()
	opts.Port = port
	ropts, err := w.p.opts.Routing.tierOptions(w.p.opts.Routing.App, selector.RoundRobin)
	if err != nil {
		done(err)
		return
	}
	opts.Routing = ropts
	w.b = plb.New(w.p.Eng, w.p.Net, w.node, w.comp.Name(), opts)
	w.b.Trace = w.p.Trace()
	w.b.Obs = obs.NewTierMetrics(w.p.Metrics(), "plb", w.comp.Name())
	if err := w.b.Start(); err != nil {
		done(err)
		return
	}
	for _, bd := range w.comp.Bindings("workers") {
		ep, ok := bd.ServerItf.Owner().Content().(httpEndpoint)
		if !ok {
			done(fmt.Errorf("jade: plb worker %s does not serve HTTP", bd.ServerItf.Owner().Name()))
			return
		}
		if err := w.b.AddWorker(bd.ServerItf.Owner().Name(), ep.HTTPEndpoint()); err != nil {
			done(err)
			return
		}
	}
	done(nil)
}

// StopManaged stops the balancer.
func (w *PLBWrapper) StopManaged(done func(error)) {
	if w.b != nil {
		w.b.Stop()
	}
	done(nil)
}

// --- L4 switch wrapper ---

// L4Wrapper manages the front-end L4 switch balancing the Apache tier.
type L4Wrapper struct {
	p    *Platform
	node *cluster.Node
	comp *fractal.Component
	sw   *l4.Switch
}

// NewL4Component is the WrapperFactory for the L4 switch.
func NewL4Component(p *Platform, name string, node *cluster.Node) (*fractal.Component, error) {
	w := &L4Wrapper{p: p, node: node}
	comp, err := fractal.NewPrimitive(name, w,
		fractal.ItfSpec{Name: "http", Signature: SigHTTP, Role: fractal.Server},
		fractal.ItfSpec{Name: "servers", Signature: SigHTTP, Role: fractal.Client,
			Contingency: fractal.Optional, Collection: true, Dynamic: true},
	)
	if err != nil {
		return nil, err
	}
	w.comp = comp
	if err := comp.SetAttribute("port", "80"); err != nil {
		return nil, err
	}
	p.attachManagement(node)
	return comp, nil
}

// Kind implements Wrapper.
func (w *L4Wrapper) Kind() string { return "l4" }

// Node implements Wrapper.
func (w *L4Wrapper) Node() *cluster.Node { return w.node }

// Switch exposes the managed switch (nil before start).
func (w *L4Wrapper) Switch() *l4.Switch { return w.sw }

// HTTPEndpoint implements httpEndpoint.
func (w *L4Wrapper) HTTPEndpoint() legacy.HTTPHandler { return w.sw }

// OnSetAttribute validates switch attributes (frozen while running).
func (w *L4Wrapper) OnSetAttribute(c *fractal.Component, name, value string) error {
	if name != "port" {
		return nil
	}
	if w.sw != nil && w.sw.Running() {
		return fmt.Errorf("%w: l4 port", ErrAttributeFrozen)
	}
	if port, err := strconv.Atoi(value); err != nil || port <= 0 {
		return fmt.Errorf("%w: l4 port %q", ErrBadAttribute, value)
	}
	return nil
}

// OnBind integrates a real server live when the switch runs.
func (w *L4Wrapper) OnBind(c *fractal.Component, itf string, server *fractal.Interface) error {
	ep, ok := server.Owner().Content().(httpEndpoint)
	if !ok {
		return fmt.Errorf("jade: l4 server %s does not serve HTTP", server.Owner().Name())
	}
	if w.sw != nil && w.sw.Running() {
		return w.sw.AddServer(server.Owner().Name(), ep.HTTPEndpoint(), 1)
	}
	return nil
}

// OnUnbind removes a real server live when the switch runs.
func (w *L4Wrapper) OnUnbind(c *fractal.Component, itf string, server *fractal.Interface) error {
	if w.sw != nil && w.sw.Running() {
		return w.sw.RemoveServer(server.Owner().Name())
	}
	return nil
}

// StartManaged starts the switch and integrates bound servers.
func (w *L4Wrapper) StartManaged(done func(error)) {
	port, err := strconv.Atoi(w.comp.AttributeOr("port", "80"))
	if err != nil {
		done(fmt.Errorf("%w: l4 port", ErrBadAttribute))
		return
	}
	opts := l4.DefaultOptions()
	opts.Port = port
	ropts, err := w.p.opts.Routing.tierOptions(w.p.opts.Routing.L4, selector.WeightedRoundRobin)
	if err != nil {
		done(err)
		return
	}
	opts.Routing = ropts
	w.sw = l4.New(w.p.Eng, w.p.Net, w.node, w.comp.Name(), opts)
	w.sw.Trace = w.p.Trace()
	w.sw.Obs = obs.NewTierMetrics(w.p.Metrics(), "l4", w.comp.Name())
	if err := w.sw.Start(); err != nil {
		done(err)
		return
	}
	for _, bd := range w.comp.Bindings("servers") {
		ep, ok := bd.ServerItf.Owner().Content().(httpEndpoint)
		if !ok {
			done(fmt.Errorf("jade: l4 server %s does not serve HTTP", bd.ServerItf.Owner().Name()))
			return
		}
		if err := w.sw.AddServer(bd.ServerItf.Owner().Name(), ep.HTTPEndpoint(), 1); err != nil {
			done(err)
			return
		}
	}
	done(nil)
}

// StopManaged stops the switch.
func (w *L4Wrapper) StopManaged(done func(error)) {
	if w.sw != nil {
		w.sw.Stop()
	}
	done(nil)
}
