package core

import (
	"fmt"
	"sort"

	"jade/internal/adl"
	"jade/internal/cluster"
	"jade/internal/fractal"
	"jade/internal/legacy"
	"jade/internal/trace"
)

// Deployment is a managed application deployed from an ADL description:
// a component architecture (one composite per ADL composite) plus the
// node assignments behind it.
type Deployment struct {
	p     *Platform
	Def   *adl.Definition
	Root  *fractal.Component
	comps map[string]*fractal.Component
	nodes map[string]*cluster.Node
}

// Component finds a deployed component by name.
func (d *Deployment) Component(name string) (*fractal.Component, error) {
	c, ok := d.comps[name]
	if !ok {
		return nil, fmt.Errorf("jade: no component %q in deployment %s", name, d.Def.Name)
	}
	return c, nil
}

// MustComponent is Component for statically known names.
func (d *Deployment) MustComponent(name string) *fractal.Component {
	c, err := d.Component(name)
	if err != nil {
		panic(err)
	}
	return c
}

// ComponentNames returns deployed component names, sorted.
func (d *Deployment) ComponentNames() []string {
	out := make([]string, 0, len(d.comps))
	for n := range d.comps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NodeOf returns the node hosting a component.
func (d *Deployment) NodeOf(name string) (*cluster.Node, error) {
	n, ok := d.nodes[name]
	if !ok {
		return nil, fmt.Errorf("jade: no node recorded for %q", name)
	}
	return n, nil
}

// Describe renders the management layer's view of the deployment.
func (d *Deployment) Describe() string { return d.Root.Describe() }

// FrontEnd returns the deployment's HTTP entry point: the L4 switch if
// one is deployed, else the PLB balancer, else the first Apache server
// (lowest name within each kind, for determinism).
func (d *Deployment) FrontEnd() (legacy.HTTPHandler, error) {
	for _, kind := range []string{"l4", "plb", "apache"} {
		for _, name := range d.ComponentNames() {
			w, ok := d.comps[name].Content().(Wrapper)
			if !ok || w.Kind() != kind {
				continue
			}
			if ep, ok := w.(httpEndpoint); ok {
				return ep.HTTPEndpoint(), nil
			}
		}
	}
	return nil, fmt.Errorf("jade: deployment %s has no HTTP front end", d.Def.Name)
}

// register adds a component created outside the initial ADL (by an
// actuator growing a tier).
func (d *Deployment) register(name string, c *fractal.Component, node *cluster.Node) {
	d.comps[name] = c
	d.nodes[name] = node
}

// unregister forgets a component removed by an actuator.
func (d *Deployment) unregister(name string) {
	delete(d.comps, name)
	delete(d.nodes, name)
}

// abortDeployment tears down a partially completed deployment: started
// components are stopped (front end first) and every allocated node is
// released, so a failed Deploy leaks nothing.
func (p *Platform) abortDeployment(d *Deployment, cause error, finish func(*Deployment, error)) {
	names := d.ComponentNames()
	sort.SliceStable(names, func(i, j int) bool {
		wi := d.comps[names[i]].Content().(Wrapper)
		wj := d.comps[names[j]].Content().(Wrapper)
		if startRank(wi.Kind()) != startRank(wj.Kind()) {
			return startRank(wi.Kind()) > startRank(wj.Kind())
		}
		return names[i] < names[j]
	})
	var stopNext func(i int)
	stopNext = func(i int) {
		if i >= len(names) {
			for _, name := range names {
				if node, ok := d.nodes[name]; ok {
					p.detachManagement(node)
					_ = p.Pool.Release(node)
				}
			}
			p.logf("deploy: %s aborted: %v", d.Def.Name, cause)
			finish(nil, cause)
			return
		}
		c := d.comps[names[i]]
		if c.State() != fractal.Started {
			stopNext(i + 1)
			return
		}
		p.StopComponent(c, func(error) { stopNext(i + 1) })
	}
	stopNext(0)
}

// Deploy interprets an ADL description (§3.3): it validates the
// architecture, allocates a node per component through the Cluster
// Manager, installs the software through the Software Installation
// Service, instantiates and configures the wrappers, applies the
// bindings, and starts everything in dependency order. The whole
// interpretation runs in simulated time; done fires when the application
// is up.
func (p *Platform) Deploy(def *adl.Definition, done func(*Deployment, error)) {
	span := p.tracer.Begin(0, "deploy", def.Name)
	finish := func(d *Deployment, err error) {
		p.tracer.End(span, outcomeField(err))
		if done != nil {
			done(d, err)
		}
	}
	if err := def.Validate(p.wrapperSet()); err != nil {
		finish(nil, err)
		return
	}
	root, err := fractal.NewComposite(def.Name)
	if err != nil {
		finish(nil, err)
		return
	}
	d := &Deployment{
		p:     p,
		Def:   def,
		Root:  root,
		comps: make(map[string]*fractal.Component),
		nodes: make(map[string]*cluster.Node),
	}
	// Pre-create the composite hierarchy.
	composites := map[string]*fractal.Component{"": root}
	for _, path := range def.CompositePaths() {
		parentPath, name := splitPath(path)
		comp, err := fractal.NewComposite(name)
		if err != nil {
			finish(nil, err)
			return
		}
		if err := composites[parentPath].Add(comp); err != nil {
			finish(nil, err)
			return
		}
		composites[path] = comp
	}

	placed := def.AllComponents()
	var deployNext func(i int)
	deployNext = func(i int) {
		if i >= len(placed) {
			p.applyBindingsAndStart(d, finish)
			return
		}
		pc := placed[i]
		var node *cluster.Node
		var err error
		if pc.Node != "" {
			node, err = p.Pool.AllocateNamed(pc.Node)
		} else {
			node, err = p.Pool.Allocate()
		}
		if err != nil {
			p.abortDeployment(d, fmt.Errorf("jade: allocating node for %s: %w", pc.Name, err), finish)
			return
		}
		p.SIS.Install(pc.Wrapper, node, func(ierr error) {
			if ierr != nil {
				_ = p.Pool.Release(node)
				p.abortDeployment(d, fmt.Errorf("jade: installing %s: %w", pc.Name, ierr), finish)
				return
			}
			factory := p.registry[pc.Wrapper]
			comp, cerr := factory(p, pc.Name, node)
			if cerr != nil {
				_ = p.Pool.Release(node)
				p.abortDeployment(d, fmt.Errorf("jade: creating %s: %w", pc.Name, cerr), finish)
				return
			}
			for _, a := range pc.Attributes {
				if aerr := comp.SetAttribute(a.Name, a.Value); aerr != nil {
					_ = p.Pool.Release(node)
					p.abortDeployment(d, fmt.Errorf("jade: configuring %s: %w", pc.Name, aerr), finish)
					return
				}
			}
			if aerr := composites[pc.CompositePath].Add(comp); aerr != nil {
				_ = p.Pool.Release(node)
				p.abortDeployment(d, aerr, finish)
				return
			}
			d.comps[pc.Name] = comp
			d.nodes[pc.Name] = node
			p.tracer.EmitIn(span, "deploy.place", pc.Name,
				trace.F("wrapper", pc.Wrapper), trace.F("node", node.Name()))
			p.logf("deploy: %s (%s) on %s", pc.Name, pc.Wrapper, node.Name())
			deployNext(i + 1)
		})
	}
	deployNext(0)
}

func splitPath(path string) (parent, name string) {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i], path[i+1:]
		}
	}
	return "", path
}

// applyBindingsAndStart wires the architecture and boots it bottom-up.
func (p *Platform) applyBindingsAndStart(d *Deployment, finish func(*Deployment, error)) {
	for _, b := range d.Def.Bindings {
		clientName, clientItf, err := adl.SplitRef(b.Client)
		if err != nil {
			p.abortDeployment(d, err, finish)
			return
		}
		serverName, serverItf, err := adl.SplitRef(b.Server)
		if err != nil {
			p.abortDeployment(d, err, finish)
			return
		}
		client, err := d.Component(clientName)
		if err != nil {
			p.abortDeployment(d, err, finish)
			return
		}
		server, err := d.Component(serverName)
		if err != nil {
			p.abortDeployment(d, err, finish)
			return
		}
		target, err := server.Interface(serverItf)
		if err != nil {
			p.abortDeployment(d, err, finish)
			return
		}
		if err := client.Bind(clientItf, target); err != nil {
			p.abortDeployment(d, fmt.Errorf("jade: binding %s to %s: %w", b.Client, b.Server, err), finish)
			return
		}
	}

	// Start order: db tier first, front end last.
	names := d.ComponentNames()
	sort.SliceStable(names, func(i, j int) bool {
		wi := d.comps[names[i]].Content().(Wrapper)
		wj := d.comps[names[j]].Content().(Wrapper)
		if startRank(wi.Kind()) != startRank(wj.Kind()) {
			return startRank(wi.Kind()) < startRank(wj.Kind())
		}
		return names[i] < names[j]
	})
	var startNext func(i int)
	startNext = func(i int) {
		if i >= len(names) {
			// Mark the composite hierarchy started (children already
			// running are left untouched).
			if err := d.Root.Start(); err != nil {
				finish(nil, err)
				return
			}
			p.logf("deploy: %s is up (%d components)", d.Def.Name, len(names))
			p.reconfigured("deploy:" + d.Def.Name)
			finish(d, nil)
			return
		}
		c := d.comps[names[i]]
		p.StartComponent(c, func(err error) {
			if err != nil {
				p.abortDeployment(d, err, finish)
				return
			}
			startNext(i + 1)
		})
	}
	startNext(0)
}

// Undeploy stops every component (front end first) and releases the
// nodes.
func (p *Platform) Undeploy(d *Deployment, done func(error)) {
	finish := func(err error) {
		if done != nil {
			done(err)
		}
	}
	names := d.ComponentNames()
	sort.SliceStable(names, func(i, j int) bool {
		wi := d.comps[names[i]].Content().(Wrapper)
		wj := d.comps[names[j]].Content().(Wrapper)
		if startRank(wi.Kind()) != startRank(wj.Kind()) {
			return startRank(wi.Kind()) > startRank(wj.Kind())
		}
		return names[i] < names[j]
	})
	var stopNext func(i int)
	stopNext = func(i int) {
		if i >= len(names) {
			if d.Root.State() == fractal.Started {
				if err := d.Root.Stop(); err != nil {
					finish(err)
					return
				}
			}
			for _, name := range names {
				if node, ok := d.nodes[name]; ok {
					p.detachManagement(node)
					_ = p.Pool.Release(node)
				}
			}
			finish(nil)
			return
		}
		c := d.comps[names[i]]
		if c.State() != fractal.Started {
			stopNext(i + 1)
			return
		}
		p.StopComponent(c, func(err error) {
			if err != nil {
				finish(err)
				return
			}
			stopNext(i + 1)
		})
	}
	stopNext(0)
}
