package core

import (
	"errors"
	"strings"
	"testing"

	"jade/internal/adl"
	"jade/internal/cluster"
	"jade/internal/fractal"
	"jade/internal/legacy"
	"jade/internal/rubis"
)

// threeTierADL is the paper's deployment: PLB in front of one Tomcat,
// C-JDBC in front of one MySQL.
const threeTierADL = `<?xml version="1.0"?>
<definition name="rubis-j2ee">
  <component name="plb1" wrapper="plb"/>
  <composite name="app-tier">
    <component name="tomcat1" wrapper="tomcat"/>
  </composite>
  <composite name="db-tier">
    <component name="cjdbc1" wrapper="cjdbc"/>
    <component name="mysql1" wrapper="mysql">
      <attribute name="dump" value="rubis"/>
    </component>
  </composite>
  <binding client="plb1.workers" server="tomcat1.http"/>
  <binding client="tomcat1.jdbc" server="cjdbc1.jdbc"/>
  <binding client="cjdbc1.backends" server="mysql1.sql"/>
</definition>
`

// smallDataset keeps population fast in unit tests.
func smallDataset() rubis.Dataset {
	return rubis.Dataset{Regions: 5, Categories: 5, Users: 30, Items: 40, BidsPerItem: 1, CommentsPerUser: 1}
}

// deployThreeTier spins up a platform and deploys the standard stack.
func deployThreeTier(t *testing.T) (*Platform, *Deployment) {
	t.Helper()
	p := NewPlatform(DefaultOptions())
	db, err := smallDataset().InitialDatabase(p.opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	p.RegisterDump("rubis", db)
	def, err := adl.Parse(threeTierADL)
	if err != nil {
		t.Fatal(err)
	}
	var dep *Deployment
	var derr error = errors.New("pending")
	p.Deploy(def, func(d *Deployment, err error) { dep, derr = d, err })
	p.Eng.Run()
	if derr != nil {
		t.Fatal(derr)
	}
	return p, dep
}

// run sends one request through the deployed front end and waits (with a
// bounded horizon, since armed control loops keep the event queue
// non-empty forever).
func run(t *testing.T, p *Platform, dep *Deployment, req *legacy.WebRequest) error {
	t.Helper()
	front := dep.MustComponent("plb1").Content().(*PLBWrapper).Balancer()
	var got error = errors.New("request never completed")
	doneAt := -1.0
	front.HandleHTTP(req, func(err error) { got, doneAt = err, p.Eng.Now() })
	p.Eng.RunUntil(p.Eng.Now() + 60)
	if doneAt < 0 {
		t.Fatal("request did not complete within 60 simulated seconds")
	}
	return got
}

func TestDeployThreeTierArchitecture(t *testing.T) {
	p, dep := deployThreeTier(t)
	for _, name := range []string{"plb1", "tomcat1", "cjdbc1", "mysql1"} {
		c, err := dep.Component(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.State() != fractal.Started {
			t.Fatalf("%s state = %v", name, c.State())
		}
	}
	// Architecture introspection (§3.2: "inspect the overall J2EE
	// infrastructure, considered as a single composite component").
	desc := dep.Describe()
	for _, want := range []string{"rubis-j2ee [composite", "app-tier", "db-tier",
		"tomcat1", "workers (client http) -> tomcat1.http",
		"jdbc (client jdbc) -> cjdbc1.jdbc", "backends (client jdbc) -> mysql1.sql"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("Describe missing %q:\n%s", want, desc)
		}
	}
	// Four components, four nodes allocated.
	if p.Pool.AllocatedCount() != 4 {
		t.Fatalf("allocated nodes = %d", p.Pool.AllocatedCount())
	}
	// The dump was installed on the initial replica.
	mw := dep.MustComponent("mysql1").Content().(*MySQLWrapper)
	if mw.Server().DB().RowCount("users") != smallDataset().Users {
		t.Fatal("dump not installed on initial replica")
	}
	// SIS recorded installs.
	if p.SIS.Installs() != 4 {
		t.Fatalf("SIS installs = %d", p.SIS.Installs())
	}
}

func TestEndToEndRequestThroughDeployedStack(t *testing.T) {
	p, dep := deployThreeTier(t)
	req := &legacy.WebRequest{
		Interaction: "ViewItem",
		WebCost:     0.001, AppCost: 0.01,
		Queries: []legacy.Query{
			{SQL: "SELECT * FROM items WHERE id = 1", Cost: 0.02},
			{SQL: "INSERT INTO buy_now (id, buyer_id, item_id, qty, date) VALUES (100, 1, 1, 1, 0)", Cost: 0.01},
		},
	}
	if err := run(t, p, dep, req); err != nil {
		t.Fatal(err)
	}
	mw := dep.MustComponent("mysql1").Content().(*MySQLWrapper)
	if mw.Server().DB().RowCount("buy_now") != 1 {
		t.Fatal("write did not reach the database tier")
	}
	cw := dep.MustComponent("cjdbc1").Content().(*CJDBCWrapper)
	if cw.Controller().Log().Len() != 1 {
		t.Fatalf("recovery log = %d records", cw.Controller().Log().Len())
	}
}

func TestDeployValidationFailures(t *testing.T) {
	p := NewPlatform(DefaultOptions())
	// Unknown wrapper.
	bad, err := adl.Parse(`<definition name="x"><component name="a" wrapper="oracle"/></definition>`)
	if err != nil {
		t.Fatal(err)
	}
	var derr error
	p.Deploy(bad, func(_ *Deployment, err error) { derr = err })
	p.Eng.Run()
	if !errors.Is(derr, adl.ErrUnknownWrapper) {
		t.Fatalf("unknown wrapper: %v", derr)
	}
	// Pool exhaustion: 9 nodes, 10 components.
	var b strings.Builder
	b.WriteString(`<definition name="big">`)
	for i := 0; i < 10; i++ {
		b.WriteString(`<component name="m` + string(rune('a'+i)) + `" wrapper="mysql"/>`)
	}
	b.WriteString(`</definition>`)
	big, err := adl.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	derr = nil
	p2 := NewPlatform(DefaultOptions())
	p2.Deploy(big, func(_ *Deployment, err error) { derr = err })
	p2.Eng.Run()
	if derr == nil {
		t.Fatal("deploying 10 components on 9 nodes succeeded")
	}
	// The aborted deployment released every node it had claimed.
	if p2.Pool.AllocatedCount() != 0 {
		t.Fatalf("failed deploy leaked %d nodes", p2.Pool.AllocatedCount())
	}
	if p2.Pool.FreeCount() != 9 {
		t.Fatalf("free = %d after aborted deploy", p2.Pool.FreeCount())
	}
}

func TestAbortedDeployStopsStartedComponents(t *testing.T) {
	// A dangling binding is discovered after components are created;
	// everything must be rolled back and no listener may survive.
	p := NewPlatform(DefaultOptions())
	db, _ := smallDataset().InitialDatabase(1)
	p.RegisterDump("rubis", db)
	def, err := adl.Parse(`<definition name="broken">
	  <component name="mysql1" wrapper="mysql"><attribute name="dump" value="rubis"/></component>
	  <component name="tomcat1" wrapper="tomcat"/>
	  <binding client="tomcat1.jdbc" server="mysql1.ghost"/>
	</definition>`)
	if err != nil {
		t.Fatal(err)
	}
	var derr error
	p.Deploy(def, func(_ *Deployment, err error) { derr = err })
	p.Eng.Run()
	if derr == nil {
		t.Fatal("deploy with dangling interface succeeded")
	}
	if p.Pool.AllocatedCount() != 0 {
		t.Fatalf("leaked %d nodes", p.Pool.AllocatedCount())
	}
	if got := len(p.Net.Addresses()); got != 0 {
		t.Fatalf("leaked %d listeners: %v", got, p.Net.Addresses())
	}
}

func TestDeployPinnedNode(t *testing.T) {
	p := NewPlatform(DefaultOptions())
	db, _ := smallDataset().InitialDatabase(1)
	p.RegisterDump("rubis", db)
	def, err := adl.Parse(`<definition name="pinned">
	  <component name="mysql1" wrapper="mysql" node="node7"/>
	</definition>`)
	if err != nil {
		t.Fatal(err)
	}
	var dep *Deployment
	var derr error = errors.New("pending")
	p.Deploy(def, func(d *Deployment, err error) { dep, derr = d, err })
	p.Eng.Run()
	if derr != nil {
		t.Fatal(derr)
	}
	n, err := dep.NodeOf("mysql1")
	if err != nil || n.Name() != "node7" {
		t.Fatalf("pinned node = %v, %v", n, err)
	}
}

func TestUndeployReleasesEverything(t *testing.T) {
	p, dep := deployThreeTier(t)
	var uerr error = errors.New("pending")
	p.Undeploy(dep, func(err error) { uerr = err })
	p.Eng.Run()
	if uerr != nil {
		t.Fatal(uerr)
	}
	if p.Pool.AllocatedCount() != 0 {
		t.Fatalf("allocated after undeploy = %d", p.Pool.AllocatedCount())
	}
	for _, name := range dep.ComponentNames() {
		if dep.MustComponent(name).State() != fractal.Stopped {
			t.Fatalf("%s still started after undeploy", name)
		}
	}
}

func TestFigure4ReconfigurationViaComponentOperations(t *testing.T) {
	// The paper's qualitative scenario, §5.1: with Jade the rebind is
	// exactly four operations on the management layer; the
	// worker.properties rewrite happens inside the wrapper.
	p := NewPlatform(DefaultOptions())
	db, _ := smallDataset().InitialDatabase(1)
	p.RegisterDump("rubis", db)
	def, err := adl.Parse(`<definition name="fig4">
	  <component name="apache1" wrapper="apache"/>
	  <component name="tomcat1" wrapper="tomcat"/>
	  <component name="tomcat2" wrapper="tomcat">
	    <attribute name="ajp-port" value="8098"/>
	  </component>
	  <component name="cjdbc1" wrapper="cjdbc"/>
	  <component name="mysql1" wrapper="mysql"><attribute name="dump" value="rubis"/></component>
	  <binding client="apache1.ajp" server="tomcat1.ajp"/>
	  <binding client="tomcat1.jdbc" server="cjdbc1.jdbc"/>
	  <binding client="tomcat2.jdbc" server="cjdbc1.jdbc"/>
	  <binding client="cjdbc1.backends" server="mysql1.sql"/>
	</definition>`)
	if err != nil {
		t.Fatal(err)
	}
	var dep *Deployment
	var derr error = errors.New("pending")
	p.Deploy(def, func(d *Deployment, err error) { dep, derr = d, err })
	p.Eng.Run()
	if derr != nil {
		t.Fatal(derr)
	}

	apache := dep.MustComponent("apache1")
	aw := apache.Content().(*ApacheWrapper)
	t1 := dep.MustComponent("tomcat1").Content().(*TomcatWrapper)
	t2 := dep.MustComponent("tomcat2").Content().(*TomcatWrapper)

	// Traffic flows to tomcat1 initially.
	var rerr error = errors.New("pending")
	aw.Server().HandleHTTP(&legacy.WebRequest{WebCost: 0.001, AppCost: 0.001},
		func(err error) { rerr = err })
	p.Eng.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if t1.Server().Served() != 1 {
		t.Fatal("initial binding did not route to tomcat1")
	}

	// The paper's four management operations:
	//   Apache1.stop(); Apache1.unbind("ajp-itf");
	//   Apache1.bind("ajp-itf", tomcat2-itf); Apache1.start()
	var serr error = errors.New("pending")
	p.StopComponent(apache, func(err error) { serr = err })
	p.Eng.Run()
	if serr != nil {
		t.Fatal(serr)
	}
	if err := apache.Unbind("ajp", dep.MustComponent("tomcat1").MustInterface("ajp")); err != nil {
		t.Fatal(err)
	}
	if err := apache.Bind("ajp", dep.MustComponent("tomcat2").MustInterface("ajp")); err != nil {
		t.Fatal(err)
	}
	serr = errors.New("pending")
	p.StartComponent(apache, func(err error) { serr = err })
	p.Eng.Run()
	if serr != nil {
		t.Fatal(serr)
	}

	// The wrapper reflected the rebind into worker.properties.
	raw, err := p.FS.ReadFile(aw.Server().WorkersPath())
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if strings.Contains(text, "tomcat1") {
		t.Fatalf("worker.properties still references tomcat1:\n%s", text)
	}
	if !strings.Contains(text, "worker.tomcat2.port=8098") {
		t.Fatalf("worker.properties missing tomcat2 entry:\n%s", text)
	}

	// Traffic now flows to tomcat2.
	rerr = errors.New("pending")
	aw.Server().HandleHTTP(&legacy.WebRequest{WebCost: 0.001, AppCost: 0.001},
		func(err error) { rerr = err })
	p.Eng.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if t2.Server().Served() != 1 || t1.Server().Served() != 1 {
		t.Fatalf("after rebind: tomcat1=%d tomcat2=%d", t1.Server().Served(), t2.Server().Served())
	}
}

func TestStaticRebindRequiresStop(t *testing.T) {
	p := NewPlatform(DefaultOptions())
	db, _ := smallDataset().InitialDatabase(1)
	p.RegisterDump("rubis", db)
	def, _ := adl.Parse(`<definition name="x">
	  <component name="apache1" wrapper="apache"/>
	  <component name="tomcat1" wrapper="tomcat"/>
	  <component name="cjdbc1" wrapper="cjdbc"/>
	  <component name="mysql1" wrapper="mysql"><attribute name="dump" value="rubis"/></component>
	  <binding client="apache1.ajp" server="tomcat1.ajp"/>
	  <binding client="tomcat1.jdbc" server="cjdbc1.jdbc"/>
	  <binding client="cjdbc1.backends" server="mysql1.sql"/>
	</definition>`)
	var dep *Deployment
	var derr error = errors.New("pending")
	p.Deploy(def, func(d *Deployment, err error) { dep, derr = d, err })
	p.Eng.Run()
	if derr != nil {
		t.Fatal(derr)
	}
	apache := dep.MustComponent("apache1")
	err := apache.Unbind("ajp", dep.MustComponent("tomcat1").MustInterface("ajp"))
	if !errors.Is(err, fractal.ErrNotStopped) {
		t.Fatalf("unbind while started: %v", err)
	}
}

func TestAppTierGrowAndShrink(t *testing.T) {
	p, dep := deployThreeTier(t)
	tier, err := NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		t.Fatal(err)
	}
	plbW := dep.MustComponent("plb1").Content().(*PLBWrapper)

	var gerr error = errors.New("pending")
	tier.Grow(func(err error) { gerr = err })
	p.Eng.Run()
	if gerr != nil {
		t.Fatal(gerr)
	}
	if tier.ReplicaCount() != 2 {
		t.Fatalf("replicas = %d", tier.ReplicaCount())
	}
	if plbW.Balancer().WorkerCount() != 2 {
		t.Fatalf("plb workers = %d", plbW.Balancer().WorkerCount())
	}
	// The new replica serves traffic.
	newName := tier.ReplicaNames()[1]
	newW := dep.MustComponent(newName).Content().(*TomcatWrapper)
	for i := 0; i < 4; i++ {
		if err := run(t, p, dep, &legacy.WebRequest{WebCost: 0.001, AppCost: 0.001}); err != nil {
			t.Fatal(err)
		}
	}
	if newW.Server().Served() != 2 {
		t.Fatalf("new replica served %d of 4 round-robin requests", newW.Server().Served())
	}

	var serr error = errors.New("pending")
	tier.Shrink(func(err error) { serr = err })
	p.Eng.Run()
	if serr != nil {
		t.Fatal(serr)
	}
	if tier.ReplicaCount() != 1 || plbW.Balancer().WorkerCount() != 1 {
		t.Fatalf("after shrink: replicas=%d workers=%d",
			tier.ReplicaCount(), plbW.Balancer().WorkerCount())
	}
	// The freed node returned to the pool.
	if p.Pool.AllocatedCount() != 4 {
		t.Fatalf("allocated = %d after shrink", p.Pool.AllocatedCount())
	}
	// Shrinking to zero is refused.
	serr = nil
	tier.Shrink(func(err error) { serr = err })
	p.Eng.Run()
	if !errors.Is(serr, ErrTierAtMin) {
		t.Fatalf("shrink below min: %v", serr)
	}
}

func TestDBTierGrowSyncsThroughRecoveryLog(t *testing.T) {
	p, dep := deployThreeTier(t)
	tier, err := NewDBTier(p, dep, "cjdbc1", []string{"mysql1"})
	if err != nil {
		t.Fatal(err)
	}
	cw := dep.MustComponent("cjdbc1").Content().(*CJDBCWrapper)

	// Write through the stack so the recovery log is non-trivial.
	for i := 0; i < 10; i++ {
		req := &legacy.WebRequest{
			WebCost: 0.001, AppCost: 0.002,
			Queries: []legacy.Query{{
				SQL:  "INSERT INTO buy_now (id, buyer_id, item_id, qty, date) VALUES (" + itoa(i) + ", 1, 1, 1, 0)",
				Cost: 0.002,
			}},
		}
		if err := run(t, p, dep, req); err != nil {
			t.Fatal(err)
		}
	}
	if cw.Controller().Log().Len() != 10 {
		t.Fatalf("log length = %d", cw.Controller().Log().Len())
	}

	var gerr error = errors.New("pending")
	tier.Grow(func(err error) { gerr = err })
	p.Eng.Run()
	if gerr != nil {
		t.Fatal(gerr)
	}
	if tier.ReplicaCount() != 2 || cw.Controller().ActiveCount() != 2 {
		t.Fatalf("replicas=%d actives=%d", tier.ReplicaCount(), cw.Controller().ActiveCount())
	}
	rep := cw.Controller().CheckConsistency()
	if !rep.Consistent {
		t.Fatalf("replicas inconsistent after sync: %+v", rep)
	}

	// Shrink records a checkpoint.
	name := tier.ReplicaNames()[1]
	var serr error = errors.New("pending")
	tier.Shrink(func(err error) { serr = err })
	p.Eng.Run()
	if serr != nil {
		t.Fatal(serr)
	}
	if _, ok := cw.Controller().Log().Checkpoint(name); !ok {
		t.Fatal("no checkpoint recorded for removed replica")
	}
	if cw.Controller().ActiveCount() != 1 {
		t.Fatalf("actives after shrink = %d", cw.Controller().ActiveCount())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestSelfSizingGrowsUnderLoad(t *testing.T) {
	p, dep := deployThreeTier(t)
	tier, err := NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := AppSizingDefaults()
	cfg.Window = 10 // shorter window for a fast test
	mgr, err := NewSizingManager(p, "app-sizer", tier, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Loop.Start(); err != nil {
		t.Fatal(err)
	}

	// Drive the single Tomcat to ~95% CPU: 95 requests/s of 0.01 app
	// cost each, no db work.
	front := dep.MustComponent("plb1").Content().(*PLBWrapper).Balancer()
	tk := p.Eng.Every(1.0/95, "load", func(now float64) {
		front.HandleHTTP(&legacy.WebRequest{WebCost: 0.0001, AppCost: 0.01}, func(error) {})
	})
	t0 := p.Eng.Now()
	p.Eng.RunUntil(t0 + 120)
	tk.Stop()
	if tier.ReplicaCount() < 2 {
		t.Fatalf("tier did not grow under load: %d replicas, sensor=%v",
			tier.ReplicaCount(), mgr.Loop.LastValue)
	}
	if mgr.Reactor.Grows == 0 {
		t.Fatal("reactor recorded no grows")
	}
	if mgr.Replicas.Last().V < 2 {
		t.Fatal("replica series not updated")
	}

	// Load stops; the tier shrinks back to one replica.
	p.Eng.RunUntil(t0 + 400)
	if tier.ReplicaCount() != 1 {
		t.Fatalf("tier did not shrink after load: %d replicas", tier.ReplicaCount())
	}
	if mgr.Reactor.Shrinks == 0 {
		t.Fatal("reactor recorded no shrinks")
	}
	if err := mgr.Loop.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestInhibitorPreventsBackToBackReconfigurations(t *testing.T) {
	var i Inhibitor
	if i.Inhibited(0) {
		t.Fatal("fresh inhibitor inhibits")
	}
	i.Trigger(10, 60)
	if !i.Inhibited(30) || !i.Inhibited(69.9) {
		t.Fatal("not inhibited inside window")
	}
	if i.Inhibited(70.1) {
		t.Fatal("inhibited after window")
	}
	// A shorter overlapping trigger does not shrink the window.
	i.Trigger(20, 10)
	if !i.Inhibited(50) {
		t.Fatal("window shrank")
	}
}

func TestSharedInhibitorSerializesLoops(t *testing.T) {
	p, dep := deployThreeTier(t)
	appTier, err := NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		t.Fatal(err)
	}
	dbTier, err := NewDBTier(p, dep, "cjdbc1", []string{"mysql1"})
	if err != nil {
		t.Fatal(err)
	}
	shared := &Inhibitor{}
	appR := NewThresholdReactor(p, appTier, 0.3, 0.8, shared)
	dbR := NewThresholdReactor(p, dbTier, 0.3, 0.8, shared)
	// Both see overload at the same instant; only the first reconfigures.
	appR.React(100, 0.95)
	dbR.React(100, 0.95)
	p.Eng.Run()
	total := int(appR.Grows + dbR.Grows)
	if total != 1 {
		t.Fatalf("reconfigurations = %d, want 1 (shared inhibition)", total)
	}
	// After the window, the other may proceed.
	dbR.React(161, 0.95)
	p.Eng.Run()
	if dbR.Grows+appR.Grows != 2 {
		t.Fatal("second reconfiguration blocked after inhibition window")
	}
}

func TestRecoveryManagerRepairsTomcatReplica(t *testing.T) {
	p, dep := deployThreeTier(t)
	tier, err := NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewRecoveryManager(p, "self-recovery", 1, tier)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Loop.Start(); err != nil {
		t.Fatal(err)
	}
	node, _ := dep.NodeOf("tomcat1")
	p.Eng.After(5, "crash", node.Fail)
	p.Eng.RunUntil(p.Eng.Now() + 90)
	if mgr.Repairs != 1 {
		t.Fatalf("repairs = %d", mgr.Repairs)
	}
	if tier.ReplicaCount() != 1 {
		t.Fatalf("replicas = %d after repair", tier.ReplicaCount())
	}
	// The replacement serves traffic.
	newName := tier.ReplicaNames()[0]
	if newName == "tomcat1" {
		t.Fatal("failed replica still in tier")
	}
	if err := run(t, p, dep, &legacy.WebRequest{WebCost: 0.001, AppCost: 0.001}); err != nil {
		t.Fatalf("request after repair: %v", err)
	}
}

func TestRecoveryManagerRepairsDBReplica(t *testing.T) {
	p, dep := deployThreeTier(t)
	dbTier, err := NewDBTier(p, dep, "cjdbc1", []string{"mysql1"})
	if err != nil {
		t.Fatal(err)
	}
	// Two backends so the virtual db survives one crash.
	var gerr error = errors.New("pending")
	dbTier.Grow(func(err error) { gerr = err })
	p.Eng.Run()
	if gerr != nil {
		t.Fatal(gerr)
	}
	mgr, err := NewRecoveryManager(p, "self-recovery", 1, dbTier)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Loop.Start(); err != nil {
		t.Fatal(err)
	}
	node, _ := dep.NodeOf("mysql1")
	p.Eng.After(5, "crash", node.Fail)
	p.Eng.RunUntil(p.Eng.Now() + 150)
	if mgr.Repairs != 1 {
		t.Fatalf("repairs = %d", mgr.Repairs)
	}
	cw := dep.MustComponent("cjdbc1").Content().(*CJDBCWrapper)
	if cw.Controller().ActiveCount() != 2 {
		t.Fatalf("actives after repair = %d", cw.Controller().ActiveCount())
	}
	if !cw.Controller().CheckConsistency().Consistent {
		t.Fatal("replicas inconsistent after repair")
	}
}

func TestSISInstallLifecycle(t *testing.T) {
	p := NewPlatform(DefaultOptions())
	node, err := p.Pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	var ierr error = errors.New("pending")
	t0 := p.Eng.Now()
	p.SIS.Install("tomcat", node, func(err error) { ierr = err })
	p.Eng.Run()
	if ierr != nil {
		t.Fatal(ierr)
	}
	first := p.Eng.Now() - t0
	if !p.SIS.IsInstalled(node, "tomcat") {
		t.Fatal("package not recorded")
	}
	// Reinstall is fast.
	t1 := p.Eng.Now()
	ierr = errors.New("pending")
	p.SIS.Install("tomcat", node, func(err error) { ierr = err })
	p.Eng.Run()
	if ierr != nil {
		t.Fatal(ierr)
	}
	if again := p.Eng.Now() - t1; again >= first {
		t.Fatalf("reinstall (%v) not faster than first install (%v)", again, first)
	}
	// Unknown package.
	ierr = nil
	p.SIS.Install("oracle", node, func(err error) { ierr = err })
	p.Eng.Run()
	if !errors.Is(ierr, ErrUnknownPackage) {
		t.Fatalf("unknown package: %v", ierr)
	}
	// Uninstall frees the memory.
	before := node.MemoryUsed()
	p.SIS.Uninstall("tomcat", node)
	if node.MemoryUsed() >= before {
		t.Fatal("uninstall did not free memory")
	}
	p.SIS.Uninstall("tomcat", node) // idempotent
	// Install on failed node fails.
	node.Fail()
	ierr = nil
	p.SIS.Install("mysql", node, func(err error) { ierr = err })
	p.Eng.Run()
	if ierr == nil {
		t.Fatal("install on failed node succeeded")
	}
}

func TestControlLoopLifecycleAndWarmup(t *testing.T) {
	p := NewPlatform(DefaultOptions())
	node, err := p.Pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	sensor := NewCPUSensor(func() []*cluster.Node { return []*cluster.Node{node} }, 10, 0)
	var reactions int
	reactor := reactorFunc(func(now, v float64) { reactions++ })
	loop, err := NewControlLoop(p, "test-loop", 1, sensor, reactor)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewControlLoop(p, "bad", 0, sensor, reactor); err == nil {
		t.Fatal("zero period accepted")
	}
	if loop.Running() {
		t.Fatal("running before start")
	}
	if err := loop.Start(); err != nil {
		t.Fatal(err)
	}
	// Warmup: the sensor withholds its first few samples.
	p.Eng.RunUntil(3)
	if reactions != 0 {
		t.Fatalf("reactor ran during warmup: %d", reactions)
	}
	p.Eng.RunUntil(20)
	if reactions == 0 {
		t.Fatal("reactor never ran")
	}
	if loop.Samples() < 15 {
		t.Fatalf("samples = %d", loop.Samples())
	}
	if err := loop.Stop(); err != nil {
		t.Fatal(err)
	}
	before := loop.Samples()
	p.Eng.RunUntil(40)
	if loop.Samples() != before {
		t.Fatal("loop sampled after stop")
	}
	// Loops are registered with the platform (Jade administrates
	// itself); the rejected zero-period loop is not.
	if len(p.Loops()) != 1 {
		t.Fatalf("registered loops = %d", len(p.Loops()))
	}
	if loop.Component().Name() != "test-loop" {
		t.Fatal("loop component missing")
	}
}

// reactorFunc adapts a function to the Reactor interface.
type reactorFunc func(now, v float64)

func (f reactorFunc) React(now, v float64) { f(now, v) }

func TestCPUSensorSpatialAndTemporalAveraging(t *testing.T) {
	p := NewPlatform(DefaultOptions())
	n1, _ := p.Pool.Allocate()
	n2, _ := p.Pool.Allocate()
	sensor := NewCPUSensor(func() []*cluster.Node { return []*cluster.Node{n1, n2} }, 30, 0)
	sensor.WarmupSamples = 1
	// n1 fully busy, n2 idle → spatial mean 0.5.
	n1.Submit(1000, nil, nil)
	tk := p.Eng.Every(1, "probe", func(now float64) { sensor.Sample(now) })
	p.Eng.RunUntil(20)
	tk.Stop()
	if v := sensor.Smoothed.Last().V; v < 0.45 || v > 0.55 {
		t.Fatalf("smoothed spatial mean = %v, want ≈0.5", v)
	}
	if sensor.Raw.Len() == 0 {
		t.Fatal("raw series empty")
	}
	// Failed nodes are excluded from the spatial average.
	n2.Fail()
	v, ok := sensor.Sample(21)
	if !ok {
		t.Fatal("sample invalid after one node failure")
	}
	if v < 0.45 {
		t.Fatalf("average after exclusion = %v", v)
	}
	// All nodes failed → invalid sample.
	n1.Fail()
	if _, ok := sensor.Sample(22); ok {
		t.Fatal("sample valid with all nodes failed")
	}
	// Empty node set → invalid sample.
	empty := NewCPUSensor(func() []*cluster.Node { return nil }, 30, 0)
	if _, ok := empty.Sample(0); ok {
		t.Fatal("sample valid with no nodes")
	}
}

func TestCPUSensorProbeCostIsIntrusivity(t *testing.T) {
	p := NewPlatform(DefaultOptions())
	node, _ := p.Pool.Allocate()
	sensor := NewCPUSensor(func() []*cluster.Node { return []*cluster.Node{node} }, 30, 0.003)
	tk := p.Eng.Every(1, "probe", func(now float64) { sensor.Sample(now) })
	p.Eng.RunUntil(100)
	tk.Stop()
	p.Eng.Run()
	// 100 probes × 0.003 CPU-seconds ≈ 0.3 CPU-seconds of busy time.
	busy := node.BusyTotal()
	if busy < 0.25 || busy > 0.35 {
		t.Fatalf("probe busy time = %v, want ≈0.3", busy)
	}
}

func TestResponseTimeSensor(t *testing.T) {
	calls := 0
	s := NewResponseTimeSensor(func(now float64) (float64, bool) {
		calls++
		if calls < 3 {
			return 0, false
		}
		return 0.59, true
	})
	if _, ok := s.Sample(1); ok {
		t.Fatal("invalid reading accepted")
	}
	if _, ok := s.Sample(2); ok {
		t.Fatal("invalid reading accepted")
	}
	v, ok := s.Sample(3)
	if !ok || v != 0.59 {
		t.Fatalf("Sample = %v, %v", v, ok)
	}
	if s.Series.Len() != 1 {
		t.Fatalf("series length = %d", s.Series.Len())
	}
}

func TestManagementFootprintAccounting(t *testing.T) {
	p, dep := deployThreeTier(t)
	node, _ := dep.NodeOf("tomcat1")
	// Node memory = tomcat package (30) + tomcat process (200) +
	// management footprint (27).
	if got := node.MemoryUsed(); got != 257 {
		t.Fatalf("tomcat node memory = %v, want 257", got)
	}
	_ = p
}

func TestCJDBCRunningBindRequiresSync(t *testing.T) {
	p, dep := deployThreeTier(t)
	cjdbcComp := dep.MustComponent("cjdbc1")
	// Create a fresh MySQL replica out-of-band and try to bind it
	// directly while the controller runs: refused, the actuator must
	// sync it first.
	node, err := p.Pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewMySQLComponent(p, "rogue", node)
	if err != nil {
		t.Fatal(err)
	}
	err = cjdbcComp.Bind("backends", comp.MustInterface("sql"))
	if !errors.Is(err, ErrNotSynced) {
		t.Fatalf("unsynced bind: %v", err)
	}
}

func TestWrapperAttributeValidation(t *testing.T) {
	p, dep := deployThreeTier(t)
	_ = p
	tomcat := dep.MustComponent("tomcat1")
	if err := tomcat.SetAttribute("ajp-port", "nope"); !errors.Is(err, ErrBadAttribute) {
		t.Fatalf("bad ajp-port: %v", err)
	}
	plbc := dep.MustComponent("plb1")
	if err := plbc.SetAttribute("port", "9090"); !errors.Is(err, ErrAttributeFrozen) {
		t.Fatalf("port change while running: %v", err)
	}
	mysql := dep.MustComponent("mysql1")
	if err := mysql.SetAttribute("port", "-1"); !errors.Is(err, ErrBadAttribute) {
		t.Fatalf("bad mysql port: %v", err)
	}
	// Free-form attributes are always accepted.
	if err := tomcat.SetAttribute("note", "hello"); err != nil {
		t.Fatal(err)
	}
}

func TestAttributeEditsReachConfigFiles(t *testing.T) {
	p, dep := deployThreeTier(t)
	mysqlW := dep.MustComponent("mysql1").Content().(*MySQLWrapper)
	// Stop the server, change the port attribute, verify my.cnf.
	var serr error = errors.New("pending")
	p.StopComponent(dep.MustComponent("mysql1"), func(err error) { serr = err })
	p.Eng.Run()
	if serr != nil {
		t.Fatal(serr)
	}
	if err := dep.MustComponent("mysql1").SetAttribute("port", "3399"); err != nil {
		t.Fatal(err)
	}
	raw, err := p.FS.ReadFile(mysqlW.Server().ConfPath())
	if err != nil {
		t.Fatal(err)
	}
	cnf, err := legacy.ParseMyCnf(raw)
	if err != nil {
		t.Fatal(err)
	}
	if port, err := cnf.GetInt("mysqld", "port"); err != nil || port != 3399 {
		t.Fatalf("my.cnf port = %d, %v", port, err)
	}
}
