package core

import (
	"errors"

	"jade/internal/cluster"
	"jade/internal/fractal"
	"jade/internal/legacy"
	"jade/internal/trace"
)

// RepairableTier is the actuation surface of the self-recovery manager
// (the paper's second autonomic manager, Fig. 3; detailed in ref [4]):
// replace a failed replica by a fresh one on a newly allocated node.
type RepairableTier interface {
	TierActuator
	// Repair replaces the named failed replica: detach it from the
	// balancer, discard its component, then grow the tier back.
	Repair(name string, done func(error))
}

// terminator is implemented by wrappers whose legacy process can be
// hard-killed without a graceful stop (STONITH).
type terminator interface {
	TerminateManaged()
}

// serving reports whether the component's legacy process is still alive
// and able to serve its identity (the double-repair invariant's probe).
func serving(comp *fractal.Component) (bool, string) {
	type stateful interface{ State() legacy.State }
	var st legacy.State
	switch w := comp.Content().(type) {
	case *TomcatWrapper:
		st = w.srv.State()
	case *MySQLWrapper:
		st = w.srv.State()
	case *ApacheWrapper:
		st = w.srv.State()
	default:
		if s, ok := comp.Content().(stateful); ok {
			st = s.State()
		} else {
			return false, ""
		}
	}
	if st == legacy.Running || st == legacy.Starting {
		return true, "legacy process " + st.String()
	}
	return false, ""
}

// discardFailedReplica removes a suspected-dead replica from the
// architecture and the bookkeeping. detach runs first to unhook balancer
// bindings. When the node is actually alive — a false-positive
// suspicion — the legacy process is terminated before the identity is
// handed back, so the repaired tier can never end up with two live
// replicas claiming one name (the split-brain the DoubleRepair invariant
// checks for).
func (t *tierBase) discardFailedReplica(name string, comp *fractal.Component, detach func() error) error {
	if err := detach(); err != nil {
		return err
	}
	node, _ := t.d.NodeOf(name)
	if node != nil && !node.Failed() {
		if tw, ok := comp.Content().(terminator); ok {
			tw.TerminateManaged()
		}
	}
	if comp.State() == fractal.Started {
		if err := comp.Stop(); err != nil {
			return err
		}
	}
	if _, err := t.composite.Remove(name); err != nil {
		return err
	}
	t.d.unregister(name)
	t.dropReplica(name)
	if node != nil {
		t.p.detachManagement(node)
		// The failed node returns to the pool; Allocate skips failed
		// nodes until an operator reboots them.
		_ = t.p.Pool.Release(node)
	}
	t.p.repairDiscarded(t.name, name, func() (bool, string) { return serving(comp) })
	t.p.reconfigured(t.name + ":discard")
	return nil
}

// growWithRetry drives grow, retrying while the tier is busy with a
// concurrent reconfiguration (e.g. the self-optimization manager's): a
// repair must not silently drop the lost replica just because another
// actuation was in flight.
func (t *tierBase) growWithRetry(grow func(func(error)), attempts int, done func(error)) {
	// The ambient cause is re-established around retries so the grow's
	// actuation span stays attached to the repair that triggered it even
	// after crossing a scheduler delay.
	cause := t.p.tracer.Cause()
	grow(func(err error) {
		if errors.Is(err, ErrTierBusy) && attempts > 1 {
			t.p.Eng.After(5, "selfrepair:retry", func() {
				t.p.tracer.WithCause(cause, func() {
					t.growWithRetry(grow, attempts-1, done)
				})
			})
			return
		}
		done(err)
	})
}

// Repair implements RepairableTier for the application tier.
func (t *AppTier) Repair(name string, done func(error)) {
	span := t.p.tracer.Begin(0, "actuate", t.name+":repair", trace.F("replica", name))
	finish := func(err error) {
		if err != nil {
			t.p.logf("selfrepair: %s repair of %s failed: %v", t.name, name, err)
		}
		t.p.tracer.End(span, outcomeField(err))
		if done != nil {
			done(err)
		}
	}
	comp, err := t.d.Component(name)
	if err != nil {
		finish(err)
		return
	}
	if err := t.discardFailedReplica(name, comp, func() error {
		return t.plbComp.Unbind("workers", comp.MustInterface("http"))
	}); err != nil {
		finish(err)
		return
	}
	t.p.tracer.EmitIn(span, "actuate.step", "discarded", trace.F("replica", name))
	t.p.logf("selfrepair: %s discarded failed replica %s, reallocating", t.name, name)
	t.p.tracer.WithCause(span, func() {
		t.growWithRetry(t.Grow, 12, finish)
	})
}

// Repair implements RepairableTier for the database tier. The C-JDBC
// controller drops the dead backend on its first failed operation; the
// replacement replica synchronizes through the recovery log as usual.
func (t *DBTier) Repair(name string, done func(error)) {
	span := t.p.tracer.Begin(0, "actuate", t.name+":repair", trace.F("replica", name))
	finish := func(err error) {
		if err != nil {
			t.p.logf("selfrepair: %s repair of %s failed: %v", t.name, name, err)
		}
		t.p.tracer.End(span, outcomeField(err))
		if done != nil {
			done(err)
		}
	}
	comp, err := t.d.Component(name)
	if err != nil {
		finish(err)
		return
	}
	if err := t.discardFailedReplica(name, comp, func() error {
		// Tell the controller the backend is gone (it may not have
		// noticed yet if no query touched the dead replica), then remove
		// the architectural binding if still present.
		cw := t.wrapper()
		if cw.Controller() != nil {
			_ = cw.Controller().MarkFailed(name, nil)
		}
		for _, b := range t.cjdbcComp.Bindings("backends") {
			if b.ServerItf.Owner() == comp {
				return t.cjdbcComp.Unbind("backends", b.ServerItf)
			}
		}
		return nil
	}); err != nil {
		finish(err)
		return
	}
	t.p.tracer.EmitIn(span, "actuate.step", "discarded", trace.F("replica", name))
	t.p.logf("selfrepair: %s discarded failed replica %s, reallocating", t.name, name)
	t.p.tracer.WithCause(span, func() {
		t.growWithRetry(t.Grow, 12, finish)
	})
}

// Suspector is a pluggable failure detector for the recovery manager
// (implemented by netsim.Detector). Monitor puts a replica under watch,
// Forget drops it, Suspected reports the current suspicion verdict.
// Unlike the default oracle, a Suspector may be late or wrong: the
// manager repairs whatever it suspects, and the DoubleRepair invariant
// checks that acting on a false positive stays legal.
type Suspector interface {
	Monitor(name string, node *cluster.Node)
	Forget(name string)
	Suspected(name string) bool
}

// RecoveryManager is the self-recovery autonomic manager: a heartbeat
// failure detector driving repair actuators, one replica at a time. It is
// both the loop's sensor (counting failed replica nodes) and its reactor.
type RecoveryManager struct {
	p     *Platform
	Loop  *ControlLoop
	tiers []RepairableTier
	busy  bool

	// Suspector, when set, replaces the perfect node-state oracle with a
	// heartbeat suspicion detector; membership is reconciled on every
	// sensor pass. When nil the manager reads node state directly (the
	// pre-netsim behavior).
	Suspector Suspector
	monitored map[string]bool

	// Arbiter, when set, gates repairs through the arbitration manager
	// with Priority (default PriorityRecovery: repairs preempt
	// optimization's quiet windows, never the reverse).
	Arbiter  *Arbiter
	Priority int

	// Repairs counts completed repairs.
	Repairs uint64
	// OnRepair (optional) observes completed repairs.
	OnRepair func(tier, replica string)
}

// NewRecoveryManager assembles (but does not start) the self-recovery
// manager over the given tiers.
func NewRecoveryManager(p *Platform, name string, period float64, tiers ...RepairableTier) (*RecoveryManager, error) {
	m := &RecoveryManager{p: p, tiers: tiers, Priority: PriorityRecovery}
	loop, err := NewControlLoop(p, name, period, m, m)
	if err != nil {
		return nil, err
	}
	m.Loop = loop
	return m, nil
}

// Sample implements Sensor: it counts failed replicas across tiers.
func (m *RecoveryManager) Sample(now float64) (float64, bool) {
	return float64(len(m.failedReplicas())), true
}

type failedReplica struct {
	tier RepairableTier
	name string
}

func (m *RecoveryManager) failedReplicas() []failedReplica {
	if m.Suspector != nil {
		return m.suspectedReplicas()
	}
	var out []failedReplica
	for _, t := range m.tiers {
		names := t.ReplicaNames()
		nodes := t.Nodes()
		for i, name := range names {
			if i < len(nodes) && nodes[i].Failed() {
				out = append(out, failedReplica{tier: t, name: name})
			}
		}
	}
	return out
}

// suspectedReplicas reconciles the detector's membership with the tiers'
// current replicas and returns those the detector suspects.
func (m *RecoveryManager) suspectedReplicas() []failedReplica {
	var out []failedReplica
	current := make(map[string]bool)
	for _, t := range m.tiers {
		names := t.ReplicaNames()
		nodes := t.Nodes()
		for i, name := range names {
			if i >= len(nodes) || nodes[i] == nil {
				continue
			}
			current[name] = true
			m.Suspector.Monitor(name, nodes[i])
			if m.Suspector.Suspected(name) {
				out = append(out, failedReplica{tier: t, name: name})
			}
		}
	}
	for name := range m.monitored {
		if !current[name] {
			m.Suspector.Forget(name)
		}
	}
	m.monitored = current
	return out
}

// React implements Reactor: repair the first failed replica, one repair
// in flight at a time.
func (m *RecoveryManager) React(now float64, v float64) {
	if m.busy || v == 0 {
		return
	}
	failed := m.failedReplicas()
	if len(failed) == 0 {
		return
	}
	f := failed[0]
	if m.Arbiter != nil && !m.Arbiter.Request(now, "self-recovery", m.Priority) {
		return // retried on the next loop period
	}
	tr := m.p.tracer
	fields := []trace.Field{
		trace.F("tier", f.tier.TierName()),
		trace.F("replica", f.name),
		trace.Fi("failed", len(failed)),
	}
	if m.Loop != nil {
		if id := m.Loop.LastSampleEvent(); id != 0 {
			fields = append(fields, trace.Fid("sample", id))
		}
	}
	dec := tr.Begin(0, "decision", f.tier.TierName()+":repair", fields...)
	m.busy = true
	m.p.logf("selfrepair: detected failure of %s (%s), repairing", f.name, f.tier.TierName())
	tr.WithCause(dec, func() {
		f.tier.Repair(f.name, func(err error) {
			m.busy = false
			if err == nil {
				m.Repairs++
				if m.OnRepair != nil {
					m.OnRepair(f.tier.TierName(), f.name)
				}
			} else {
				m.p.logf("selfrepair: repair of %s failed: %v", f.name, err)
			}
			tr.End(dec, outcomeField(err))
		})
	})
}
