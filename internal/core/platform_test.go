package core

import (
	"errors"
	"strings"
	"testing"

	"jade/internal/adl"
	"jade/internal/cluster"
)

func TestDescribeManagementListsLoops(t *testing.T) {
	p, dep := deployThreeTier(t)
	tier, err := NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSizingManager(p, "self-optimization-app", tier, AppSizingDefaults(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRecoveryManager(p, "self-recovery", 1, tier); err != nil {
		t.Fatal(err)
	}
	out := p.DescribeManagement()
	for _, want := range []string{"jade [composite", "self-optimization-app", "self-recovery"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DescribeManagement missing %q:\n%s", want, out)
		}
	}
	if p.ManagementRoot().Name() != "jade" {
		t.Fatal("management root misnamed")
	}
	if got := len(p.ManagementRoot().Children()); got != 2 {
		t.Fatalf("management children = %d", got)
	}
}

func TestFrontEndSelection(t *testing.T) {
	// PLB when no L4 is deployed.
	_, dep := deployThreeTier(t)
	if _, err := dep.FrontEnd(); err != nil {
		t.Fatal(err)
	}

	// Apache-only deployment falls back to Apache.
	p2 := NewPlatform(DefaultOptions())
	db, _ := smallDataset().InitialDatabase(1)
	p2.RegisterDump("rubis", db)
	def, err := adl.Parse(`<definition name="weblayer">
	  <component name="apache1" wrapper="apache"/>
	</definition>`)
	if err != nil {
		t.Fatal(err)
	}
	var dep2 *Deployment
	derr := errors.New("pending")
	p2.Deploy(def, func(d *Deployment, err error) { dep2, derr = d, err })
	p2.Eng.Run()
	if derr != nil {
		t.Fatal(derr)
	}
	front, err := dep2.FrontEnd()
	if err != nil || front == nil {
		t.Fatalf("FrontEnd = %v, %v", front, err)
	}

	// A database-only deployment has no front end.
	p3 := NewPlatform(DefaultOptions())
	p3.RegisterDump("rubis", db)
	def3, err := adl.Parse(`<definition name="dbonly">
	  <component name="mysql1" wrapper="mysql"><attribute name="dump" value="rubis"/></component>
	</definition>`)
	if err != nil {
		t.Fatal(err)
	}
	var dep3 *Deployment
	derr = errors.New("pending")
	p3.Deploy(def3, func(d *Deployment, err error) { dep3, derr = d, err })
	p3.Eng.Run()
	if derr != nil {
		t.Fatal(derr)
	}
	if _, err := dep3.FrontEnd(); err == nil {
		t.Fatal("db-only deployment reported a front end")
	}
}

func TestPlatformOptionDefaults(t *testing.T) {
	// Zero-valued options fall back to sane defaults.
	p := NewPlatform(Options{})
	if p.Pool.Size() != 9 {
		t.Fatalf("default pool = %d", p.Pool.Size())
	}
	n, err := p.Pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if n.Config().CPUCapacity != 1.0 {
		t.Fatalf("default cpu = %v", n.Config().CPUCapacity)
	}
	// Logf defaults to a no-op; logging must not panic.
	p.Logf("hello %d", 42)
}

func TestDumpRegistry(t *testing.T) {
	p := NewPlatform(DefaultOptions())
	if _, ok := p.Dump("ghost"); ok {
		t.Fatal("unknown dump found")
	}
	db, _ := smallDataset().InitialDatabase(1)
	p.RegisterDump("rubis", db)
	got, ok := p.Dump("rubis")
	if !ok || got != db {
		t.Fatal("dump registry broken")
	}
}

func TestTierNodesTracksMembership(t *testing.T) {
	p, dep := deployThreeTier(t)
	tier, err := NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tier.Nodes()); got != 1 {
		t.Fatalf("nodes = %d", got)
	}
	gerr := errors.New("pending")
	tier.Grow(func(err error) { gerr = err })
	p.Eng.Run()
	if gerr != nil {
		t.Fatal(gerr)
	}
	nodes := tier.Nodes()
	if len(nodes) != 2 {
		t.Fatalf("nodes after grow = %d", len(nodes))
	}
	seen := map[*cluster.Node]bool{}
	for _, n := range nodes {
		if seen[n] {
			t.Fatal("duplicate node in tier")
		}
		seen[n] = true
	}
}

func TestGrowRespectsMaxReplicas(t *testing.T) {
	p, dep := deployThreeTier(t)
	tier, err := NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		t.Fatal(err)
	}
	tier.MaxReplicas = 1
	if tier.CanGrow() {
		t.Fatal("CanGrow at max")
	}
	var gerr error
	tier.Grow(func(err error) { gerr = err })
	p.Eng.Run()
	if !errors.Is(gerr, ErrTierAtMax) {
		t.Fatalf("grow at max: %v", gerr)
	}
}

func TestGrowFailsGracefullyOnEmptyPool(t *testing.T) {
	p, dep := deployThreeTier(t)
	// Drain the pool.
	for {
		if _, err := p.Pool.Allocate(); err != nil {
			break
		}
	}
	tier, err := NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		t.Fatal(err)
	}
	if tier.CanGrow() {
		t.Fatal("CanGrow with empty pool")
	}
	var gerr error
	tier.Grow(func(err error) { gerr = err })
	p.Eng.Run()
	if !errors.Is(gerr, cluster.ErrPoolExhausted) {
		t.Fatalf("grow with empty pool: %v", gerr)
	}
	// The tier is intact and not stuck busy.
	if tier.ReplicaCount() != 1 {
		t.Fatalf("tier state corrupted: %d replicas", tier.ReplicaCount())
	}
	if tier.busy {
		t.Fatal("tier left busy after failed grow")
	}
	// A reactor facing the same situation simply does nothing.
	r := NewThresholdReactor(p, tier, 0.3, 0.8, nil)
	r.React(p.Eng.Now(), 0.99)
	p.Eng.Run()
	if r.Grows != 0 {
		t.Fatal("reactor grew with an empty pool")
	}
}
