package core

import (
	"errors"
	"strings"
	"testing"

	"jade/internal/adl"
	"jade/internal/legacy"
)

func TestApacheWrapperPortReflectedIntoHTTPDConf(t *testing.T) {
	p := NewPlatform(DefaultOptions())
	node, err := p.Pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewApacheComponent(p, "apache1", node)
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.SetAttribute("port", "8081"); err != nil {
		t.Fatal(err)
	}
	aw := comp.Content().(*ApacheWrapper)
	raw, err := p.FS.ReadFile(aw.Server().ConfPath())
	if err != nil {
		t.Fatal(err)
	}
	hc, err := legacy.ParseHTTPD(raw)
	if err != nil {
		t.Fatal(err)
	}
	if port, err := hc.GetInt("Listen"); err != nil || port != 8081 {
		t.Fatalf("Listen = %d, %v", port, err)
	}
	// Bad ports rejected before touching the file.
	for _, bad := range []string{"x", "-1", "0"} {
		if err := comp.SetAttribute("port", bad); !errors.Is(err, ErrBadAttribute) {
			t.Fatalf("port %q: %v", bad, err)
		}
	}
	// The legacy server actually listens on the configured port.
	var serr error = errors.New("pending")
	p.StartComponent(comp, func(err error) { serr = err })
	p.Eng.Run()
	if serr != nil {
		t.Fatal(serr)
	}
	if _, err := p.Net.LookupHTTP(node.Name() + ":8081"); err != nil {
		t.Fatalf("apache not listening on configured port: %v", err)
	}
}

func TestTomcatWrapperUnbindRemovesJDBCResource(t *testing.T) {
	_, dep := deployThreeTier(t)
	p := dep.MustComponent("tomcat1").Content().(*TomcatWrapper).p
	tomcat := dep.MustComponent("tomcat1")
	var serr error = errors.New("pending")
	p.StopComponent(tomcat, func(err error) { serr = err })
	p.Eng.Run()
	if serr != nil {
		t.Fatal(serr)
	}
	if err := tomcat.Unbind("jdbc", nil); err != nil {
		t.Fatal(err)
	}
	tw := tomcat.Content().(*TomcatWrapper)
	raw, err := p.FS.ReadFile(tw.Server().ConfPath())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "jdbc:mysql") {
		t.Fatalf("server.xml still holds a JDBC resource:\n%s", raw)
	}
	// Restarting without the resource works; query-free requests serve.
	serr = errors.New("pending")
	p.StartComponent(tomcat, func(err error) { serr = err })
	p.Eng.Run()
	if serr != nil {
		t.Fatal(serr)
	}
}

func TestCJDBCWrapperReadPolicyAttribute(t *testing.T) {
	p := NewPlatform(DefaultOptions())
	node, err := p.Pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewCJDBCComponent(p, "cjdbc1", node)
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.SetAttribute("read-policy", "round-robin"); err != nil {
		t.Fatal(err)
	}
	if err := comp.SetAttribute("read-policy", "banana"); !errors.Is(err, ErrBadAttribute) {
		t.Fatalf("bad policy: %v", err)
	}
	var serr error = errors.New("pending")
	p.StartComponent(comp, func(err error) { serr = err })
	p.Eng.Run()
	if serr != nil {
		t.Fatal(serr)
	}
	// Frozen while running.
	if err := comp.SetAttribute("read-policy", "least-pending"); !errors.Is(err, ErrAttributeFrozen) {
		t.Fatalf("policy change while running: %v", err)
	}
	if err := comp.SetAttribute("port", "9999"); !errors.Is(err, ErrAttributeFrozen) {
		t.Fatalf("port change while running: %v", err)
	}
}

func TestBalancerWrappersRejectNonHTTPTargets(t *testing.T) {
	p := NewPlatform(DefaultOptions())
	n1, _ := p.Pool.Allocate()
	n2, _ := p.Pool.Allocate()
	n3, _ := p.Pool.Allocate()
	plbComp, err := NewPLBComponent(p, "plb1", n1)
	if err != nil {
		t.Fatal(err)
	}
	l4Comp, err := NewL4Component(p, "l4", n2)
	if err != nil {
		t.Fatal(err)
	}
	// A MySQL "sql" interface has signature jdbc — the fractal layer
	// rejects it on signature grounds before the wrapper even runs.
	mysqlComp, err := NewMySQLComponent(p, "mysql1", n3)
	if err != nil {
		t.Fatal(err)
	}
	sqlItf := mysqlComp.MustInterface("sql")
	if err := plbComp.Bind("workers", sqlItf); err == nil {
		t.Fatal("plb bound a jdbc interface")
	}
	if err := l4Comp.Bind("servers", sqlItf); err == nil {
		t.Fatal("l4 bound a jdbc interface")
	}
}

func TestL4WrapperLiveServerManagement(t *testing.T) {
	// Deploy the web tier standalone: l4 over one apache, then bind a
	// second apache live (the l4 "servers" interface is dynamic).
	p := NewPlatform(DefaultOptions())
	db, _ := smallDataset().InitialDatabase(1)
	p.RegisterDump("rubis", db)
	def, err := adl.Parse(`<definition name="web">
	  <component name="l4" wrapper="l4"/>
	  <component name="apache1" wrapper="apache"/>
	  <component name="apache2" wrapper="apache"/>
	  <binding client="l4.servers" server="apache1.http"/>
	</definition>`)
	if err != nil {
		t.Fatal(err)
	}
	var dep *Deployment
	derr := errors.New("pending")
	p.Deploy(def, func(d *Deployment, err error) { dep, derr = d, err })
	p.Eng.Run()
	if derr != nil {
		t.Fatal(derr)
	}
	l4c := dep.MustComponent("l4")
	lw := l4c.Content().(*L4Wrapper)
	if got := lw.Switch().Servers(); len(got) != 1 {
		t.Fatalf("servers = %v", got)
	}
	// Live bind of apache2.
	if err := l4c.Bind("servers", dep.MustComponent("apache2").MustInterface("http")); err != nil {
		t.Fatal(err)
	}
	if got := lw.Switch().Servers(); len(got) != 2 {
		t.Fatalf("servers after live bind = %v", got)
	}
	// Static requests split across both.
	for i := 0; i < 8; i++ {
		lw.Switch().HandleHTTP(&legacy.WebRequest{Static: true, WebCost: 0.001}, func(err error) {
			if err != nil {
				t.Errorf("request: %v", err)
			}
		})
	}
	p.Eng.Run()
	a1 := dep.MustComponent("apache1").Content().(*ApacheWrapper).Server().Served()
	a2 := dep.MustComponent("apache2").Content().(*ApacheWrapper).Server().Served()
	if a1 != 4 || a2 != 4 {
		t.Fatalf("split = %d/%d", a1, a2)
	}
	// Live unbind.
	if err := l4c.Unbind("servers", dep.MustComponent("apache2").MustInterface("http")); err != nil {
		t.Fatal(err)
	}
	if got := lw.Switch().Servers(); len(got) != 1 {
		t.Fatalf("servers after live unbind = %v", got)
	}
}

func TestWrapperKindsAndNodes(t *testing.T) {
	_, dep := deployThreeTier(t)
	kinds := map[string]string{
		"plb1": "plb", "tomcat1": "tomcat", "cjdbc1": "cjdbc", "mysql1": "mysql",
	}
	for name, kind := range kinds {
		w := dep.MustComponent(name).Content().(Wrapper)
		if w.Kind() != kind {
			t.Fatalf("%s kind = %q", name, w.Kind())
		}
		node, err := dep.NodeOf(name)
		if err != nil || w.Node() != node {
			t.Fatalf("%s node mismatch", name)
		}
	}
}
