package core

import (
	"errors"
	"testing"

	"jade/internal/legacy"
)

// TestDBTierColdRepairFromDump exercises the §4.1 cold path directly:
// the only database backend dies, so the replacement replica cannot be
// synchronized from a live snapshot — it installs the registered dump at
// recovery-log index 0 and replays the entire log.
func TestDBTierColdRepairFromDump(t *testing.T) {
	p, dep := deployThreeTier(t)
	tier, err := NewDBTier(p, dep, "cjdbc1", []string{"mysql1"})
	if err != nil {
		t.Fatal(err)
	}
	cw := dep.MustComponent("cjdbc1").Content().(*CJDBCWrapper)

	// Build up recovery-log state through the running stack.
	for i := 0; i < 20; i++ {
		req := &legacy.WebRequest{
			WebCost: 0.001, AppCost: 0.001,
			Queries: []legacy.Query{{
				SQL:  "INSERT INTO buy_now (id, buyer_id, item_id, qty, date) VALUES (" + itoa(i) + ", 1, 1, 1, 0)",
				Cost: 0.001,
			}},
		}
		if err := run(t, p, dep, req); err != nil {
			t.Fatal(err)
		}
	}
	if cw.Controller().Log().Len() != 20 {
		t.Fatalf("log = %d", cw.Controller().Log().Len())
	}

	// Kill the only backend and repair.
	node, _ := dep.NodeOf("mysql1")
	node.Fail()
	var rerr error = errors.New("pending")
	tier.Repair("mysql1", func(err error) { rerr = err })
	p.Eng.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if cw.Controller().ActiveCount() != 1 {
		t.Fatalf("actives = %d after cold repair", cw.Controller().ActiveCount())
	}
	// The rebuilt replica holds the dump plus every logged write.
	name := tier.ReplicaNames()[0]
	mw := dep.MustComponent(name).Content().(*MySQLWrapper)
	if got := mw.Server().DB().RowCount("buy_now"); got != 20 {
		t.Fatalf("rebuilt replica has %d buy_now rows, want 20 (full log replay)", got)
	}
	if got := mw.Server().DB().RowCount("users"); got != smallDataset().Users {
		t.Fatalf("rebuilt replica missing the dump: %d users", got)
	}
	// Service works again end to end.
	if err := run(t, p, dep, &legacy.WebRequest{
		WebCost: 0.001, AppCost: 0.001,
		Queries: []legacy.Query{{SQL: "SELECT * FROM users WHERE id = 1", Cost: 0.001}},
	}); err != nil {
		t.Fatalf("request after cold repair: %v", err)
	}
}

// TestDBTierColdRepairWithoutDumpFails pins the failure mode when no dump
// is registered under the tier's DumpName: the repair surfaces the
// no-backend error instead of silently rebuilding an empty database.
func TestDBTierColdRepairWithoutDumpFails(t *testing.T) {
	p, dep := deployThreeTier(t)
	tier, err := NewDBTier(p, dep, "cjdbc1", []string{"mysql1"})
	if err != nil {
		t.Fatal(err)
	}
	tier.DumpName = "" // no fallback
	node, _ := dep.NodeOf("mysql1")
	node.Fail()
	var rerr error
	tier.Repair("mysql1", func(err error) { rerr = err })
	p.Eng.Run()
	if rerr == nil {
		t.Fatal("cold repair without a dump succeeded")
	}
}

// TestGrowWithRetryGivesUpAfterAttempts pins the bounded-retry contract.
func TestGrowWithRetryGivesUpAfterAttempts(t *testing.T) {
	p, dep := deployThreeTier(t)
	tier, err := NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	alwaysBusy := func(done func(error)) {
		calls++
		done(ErrTierBusy)
	}
	var final error
	tier.growWithRetry(alwaysBusy, 3, func(err error) { final = err })
	p.Eng.Run()
	if calls != 3 {
		t.Fatalf("attempts = %d, want 3", calls)
	}
	if !errors.Is(final, ErrTierBusy) {
		t.Fatalf("final error = %v", final)
	}
}
