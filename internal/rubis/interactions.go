package rubis

import (
	"fmt"
	"math/rand"

	"jade/internal/legacy"
)

// GenContext carries what an interaction needs to build its SQL: the
// dataset bounds, a deterministic random source, and the shared ID
// counters that keep INSERTed primary keys unique across all emulated
// clients (so broadcast/replayed writes are idempotent in effect).
type GenContext struct {
	DS       Dataset
	RNG      *rand.Rand
	Counters *Counters
}

// Counters allocates unique IDs for write interactions.
type Counters struct {
	nextUser, nextItem, nextBid, nextComment, nextBuyNow int
}

// NewCounters returns counters starting above the seeded dataset's IDs.
func NewCounters(d Dataset) *Counters {
	return &Counters{
		nextUser:    d.Users,
		nextItem:    d.Items,
		nextBid:     d.Items * d.BidsPerItem,
		nextComment: d.Users * d.CommentsPerUser,
		nextBuyNow:  0,
	}
}

// Interaction is one of the 26 RUBiS web interactions, with its CPU cost
// at each tier and its SQL generator.
type Interaction struct {
	// Name is the RUBiS servlet name.
	Name string
	// Weight is the interaction's stationary probability in the mix.
	// (RUBiS defines a transition matrix; we use its stationary
	// distribution, which preserves the per-interaction request rates
	// that drive resource consumption.)
	Weight float64
	// Write marks read-write interactions.
	Write bool
	// WebCost and AppCost are CPU-seconds at the web and application
	// tiers.
	WebCost, AppCost float64
	// Queries builds the interaction's SQL (empty for pure-HTML pages).
	Queries func(g *GenContext) []legacy.Query
}

// q is shorthand for a costed query.
func q(cost float64, format string, args ...any) legacy.Query {
	return legacy.Query{SQL: fmt.Sprintf(format, args...), Cost: cost}
}

func none(*GenContext) []legacy.Query { return nil }

// webCost is the flat web-tier CPU cost per interaction.
const webCost = 0.002

// Interactions returns the 26 interactions with the bidding-mix weights
// (~12.5% read-write interactions, matching RUBiS's default bidding mix).
func Interactions() []Interaction {
	return []Interaction{
		{Name: "Home", Weight: 0.08, WebCost: webCost, AppCost: 0.008, Queries: none},
		{Name: "Browse", Weight: 0.05, WebCost: webCost, AppCost: 0.006, Queries: none},
		{Name: "BrowseCategories", Weight: 0.075, WebCost: webCost, AppCost: 0.012,
			Queries: func(g *GenContext) []legacy.Query {
				return []legacy.Query{q(0.010, "SELECT id, name FROM categories")}
			}},
		{Name: "SearchItemsInCategory", Weight: 0.15, WebCost: webCost, AppCost: 0.016,
			Queries: func(g *GenContext) []legacy.Query {
				cat := g.RNG.Intn(max(1, g.DS.Categories))
				return []legacy.Query{
					q(0.056, "SELECT * FROM items WHERE category = %d ORDER BY end_date LIMIT 20", cat),
				}
			}},
		{Name: "BrowseRegions", Weight: 0.03, WebCost: webCost, AppCost: 0.012,
			Queries: func(g *GenContext) []legacy.Query {
				return []legacy.Query{q(0.010, "SELECT id, name FROM regions")}
			}},
		{Name: "BrowseCategoriesInRegion", Weight: 0.03, WebCost: webCost, AppCost: 0.012,
			Queries: func(g *GenContext) []legacy.Query {
				return []legacy.Query{q(0.015, "SELECT id, name FROM categories")}
			}},
		{Name: "SearchItemsInRegion", Weight: 0.06, WebCost: webCost, AppCost: 0.016,
			Queries: func(g *GenContext) []legacy.Query {
				region := g.RNG.Intn(max(1, g.DS.Regions))
				cat := g.RNG.Intn(max(1, g.DS.Categories))
				return []legacy.Query{
					q(0.020, "SELECT id FROM users WHERE region = %d", region),
					q(0.036, "SELECT * FROM items WHERE category = %d ORDER BY end_date LIMIT 20", cat),
				}
			}},
		{Name: "ViewItem", Weight: 0.15, WebCost: webCost, AppCost: 0.015,
			Queries: func(g *GenContext) []legacy.Query {
				item := g.RNG.Intn(max(1, g.DS.Items))
				return []legacy.Query{
					q(0.018, "SELECT * FROM items WHERE id = %d", item),
					q(0.026, "SELECT COUNT(*) FROM bids WHERE item_id = %d", item),
				}
			}},
		{Name: "ViewUserInfo", Weight: 0.04, WebCost: webCost, AppCost: 0.014,
			Queries: func(g *GenContext) []legacy.Query {
				user := g.RNG.Intn(max(1, g.DS.Users))
				return []legacy.Query{
					q(0.014, "SELECT * FROM users WHERE id = %d", user),
					q(0.0235, "SELECT * FROM comments WHERE to_user = %d LIMIT 10", user),
				}
			}},
		{Name: "ViewBidHistory", Weight: 0.04, WebCost: webCost, AppCost: 0.014,
			Queries: func(g *GenContext) []legacy.Query {
				item := g.RNG.Intn(max(1, g.DS.Items))
				return []legacy.Query{
					q(0.044, "SELECT * FROM bids WHERE item_id = %d ORDER BY date DESC LIMIT 20", item),
				}
			}},
		{Name: "BuyNowAuth", Weight: 0.015, WebCost: webCost, AppCost: 0.006, Queries: none},
		{Name: "BuyNow", Weight: 0.015, WebCost: webCost, AppCost: 0.014,
			Queries: func(g *GenContext) []legacy.Query {
				item := g.RNG.Intn(max(1, g.DS.Items))
				return []legacy.Query{q(0.025, "SELECT * FROM items WHERE id = %d", item)}
			}},
		{Name: "StoreBuyNow", Weight: 0.02, Write: true, WebCost: webCost, AppCost: 0.016,
			Queries: func(g *GenContext) []legacy.Query {
				item := g.RNG.Intn(max(1, g.DS.Items))
				buyer := g.RNG.Intn(max(1, g.DS.Users))
				id := g.Counters.nextBuyNow
				g.Counters.nextBuyNow++
				return []legacy.Query{
					q(0.015, "SELECT * FROM items WHERE id = %d", item),
					q(0.008, "INSERT INTO buy_now (id, buyer_id, item_id, qty, date) VALUES (%d, %d, %d, 1, %d)",
						id, buyer, item, id),
					q(0.006, "UPDATE items SET end_date = 0 WHERE id = %d", item),
				}
			}},
		{Name: "PutBidAuth", Weight: 0.025, WebCost: webCost, AppCost: 0.006, Queries: none},
		{Name: "PutBid", Weight: 0.025, WebCost: webCost, AppCost: 0.014,
			Queries: func(g *GenContext) []legacy.Query {
				item := g.RNG.Intn(max(1, g.DS.Items))
				return []legacy.Query{
					q(0.018, "SELECT * FROM items WHERE id = %d", item),
					q(0.0195, "SELECT * FROM bids WHERE item_id = %d ORDER BY bid DESC LIMIT 3", item),
				}
			}},
		{Name: "StoreBid", Weight: 0.055, Write: true, WebCost: webCost, AppCost: 0.016,
			Queries: func(g *GenContext) []legacy.Query {
				item := g.RNG.Intn(max(1, g.DS.Items))
				user := g.RNG.Intn(max(1, g.DS.Users))
				id := g.Counters.nextBid
				g.Counters.nextBid++
				amount := 1 + g.RNG.Float64()*200
				return []legacy.Query{
					q(0.025, "SELECT * FROM items WHERE id = %d", item),
					q(0.008, "INSERT INTO bids (id, user_id, item_id, bid, date) VALUES (%d, %d, %d, %.2f, %d)",
						id, user, item, amount, id),
					q(0.006, "UPDATE items SET max_bid = %.2f, nb_of_bids = %d WHERE id = %d",
						amount, id, item),
				}
			}},
		{Name: "PutCommentAuth", Weight: 0.01, WebCost: webCost, AppCost: 0.006, Queries: none},
		{Name: "PutComment", Weight: 0.01, WebCost: webCost, AppCost: 0.014,
			Queries: func(g *GenContext) []legacy.Query {
				user := g.RNG.Intn(max(1, g.DS.Users))
				return []legacy.Query{q(0.025, "SELECT * FROM users WHERE id = %d", user)}
			}},
		{Name: "StoreComment", Weight: 0.02, Write: true, WebCost: webCost, AppCost: 0.016,
			Queries: func(g *GenContext) []legacy.Query {
				from := g.RNG.Intn(max(1, g.DS.Users))
				to := g.RNG.Intn(max(1, g.DS.Users))
				item := g.RNG.Intn(max(1, g.DS.Items))
				id := g.Counters.nextComment
				g.Counters.nextComment++
				return []legacy.Query{
					q(0.008, "INSERT INTO comments (id, from_user, to_user, item_id, rating, comment) VALUES (%d, %d, %d, %d, %d, 'emulated comment')",
						id, from, to, item, g.RNG.Intn(5)),
					q(0.006, "UPDATE users SET rating = %d WHERE id = %d", g.RNG.Intn(10), to),
				}
			}},
		{Name: "Sell", Weight: 0.01, WebCost: webCost, AppCost: 0.006, Queries: none},
		{Name: "SelectCategoryToSellItem", Weight: 0.01, WebCost: webCost, AppCost: 0.012,
			Queries: func(g *GenContext) []legacy.Query {
				return []legacy.Query{q(0.019, "SELECT id, name FROM categories")}
			}},
		{Name: "SellItemForm", Weight: 0.01, WebCost: webCost, AppCost: 0.008, Queries: none},
		{Name: "RegisterItem", Weight: 0.02, Write: true, WebCost: webCost, AppCost: 0.016,
			Queries: func(g *GenContext) []legacy.Query {
				id := g.Counters.nextItem
				g.Counters.nextItem++
				seller := g.RNG.Intn(max(1, g.DS.Users))
				cat := g.RNG.Intn(max(1, g.DS.Categories))
				price := 1 + g.RNG.Float64()*100
				return []legacy.Query{
					q(0.010, "INSERT INTO items (id, name, seller, category, initial_price, max_bid, nb_of_bids, end_date, buy_now) VALUES (%d, 'new-item-%d', %d, %d, %.2f, %.2f, 0, 2000000, %.2f)",
						id, id, seller, cat, price, price, price*1.5),
				}
			}},
		{Name: "Register", Weight: 0.01, WebCost: webCost, AppCost: 0.006, Queries: none},
		{Name: "RegisterUser", Weight: 0.01, Write: true, WebCost: webCost, AppCost: 0.016,
			Queries: func(g *GenContext) []legacy.Query {
				id := g.Counters.nextUser
				g.Counters.nextUser++
				region := g.RNG.Intn(max(1, g.DS.Regions))
				return []legacy.Query{
					q(0.010, "INSERT INTO users (id, nickname, password, region, rating, balance) VALUES (%d, 'newuser%d', 'pw', %d, 0, 0.0)",
						id, id, region),
				}
			}},
		{Name: "AboutMe", Weight: 0.03, WebCost: webCost, AppCost: 0.020,
			Queries: func(g *GenContext) []legacy.Query {
				user := g.RNG.Intn(max(1, g.DS.Users))
				return []legacy.Query{
					q(0.014, "SELECT * FROM users WHERE id = %d", user),
					q(0.024, "SELECT * FROM bids WHERE user_id = %d ORDER BY date DESC LIMIT 10", user),
					q(0.0245, "SELECT * FROM items WHERE seller = %d LIMIT 10", user),
				}
			}},
	}
}

// Mix is a weighted interaction set with a name.
type Mix struct {
	Name         string
	Interactions []Interaction
	cumulative   []float64
	total        float64
	byName       map[string]*Interaction
}

// NewMix builds a mix from interactions, precomputing the sampling table.
func NewMix(name string, interactions []Interaction) *Mix {
	m := &Mix{Name: name, Interactions: interactions, byName: make(map[string]*Interaction)}
	sum := 0.0
	for i := range interactions {
		sum += interactions[i].Weight
		m.cumulative = append(m.cumulative, sum)
		m.byName[interactions[i].Name] = &m.Interactions[i]
	}
	m.total = sum
	return m
}

// ByName looks an interaction up by its servlet name.
func (m *Mix) ByName(name string) (*Interaction, bool) {
	it, ok := m.byName[name]
	return it, ok
}

// BiddingMix is RUBiS's default mix (~12.5% read-write interactions).
func BiddingMix() *Mix { return NewMix("bidding", Interactions()) }

// BrowsingMix is the read-only variant: write interactions get zero
// weight (the browsing mix exercises only read paths).
func BrowsingMix() *Mix {
	its := Interactions()
	out := make([]Interaction, 0, len(its))
	for _, it := range its {
		if it.Write {
			it.Weight = 0
		}
		out = append(out, it)
	}
	return NewMix("browsing", out)
}

// Pick samples an interaction according to the weights.
func (m *Mix) Pick(rng *rand.Rand) *Interaction {
	x := rng.Float64() * m.total
	for i, c := range m.cumulative {
		if x < c {
			return &m.Interactions[i]
		}
	}
	return &m.Interactions[len(m.Interactions)-1]
}

// WriteFraction returns the mix's total weight on write interactions.
func (m *Mix) WriteFraction() float64 {
	w := 0.0
	for _, it := range m.Interactions {
		if it.Write {
			w += it.Weight
		}
	}
	return w / m.total
}

// Request materializes an interaction into a WebRequest.
func (it *Interaction) Request(g *GenContext) *legacy.WebRequest {
	var queries []legacy.Query
	if it.Queries != nil {
		queries = it.Queries(g)
	}
	return &legacy.WebRequest{
		Interaction: it.Name,
		WebCost:     it.WebCost,
		AppCost:     it.AppCost,
		Queries:     queries,
	}
}

// ExpectedCosts returns the weighted mean per-request CPU demand of the
// mix at each tier: web, app, database reads, database writes. These are
// the calibration constants DESIGN.md derives the saturation points from.
func (m *Mix) ExpectedCosts(ds Dataset, seed int64, samples int) (web, app, dbRead, dbWrite float64) {
	rng := rand.New(rand.NewSource(seed))
	g := &GenContext{DS: ds, RNG: rng, Counters: NewCounters(ds)}
	for i := 0; i < samples; i++ {
		it := m.Pick(rng)
		req := it.Request(g)
		web += req.WebCost
		app += req.AppCost
		for _, query := range req.Queries {
			if isWriteSQL(query.SQL) {
				dbWrite += query.Cost
			} else {
				dbRead += query.Cost
			}
		}
	}
	n := float64(samples)
	return web / n, app / n, dbRead / n, dbWrite / n
}

func isWriteSQL(sql string) bool {
	switch {
	case len(sql) >= 6 && (sql[:6] == "INSERT" || sql[:6] == "UPDATE" || sql[:6] == "DELETE"):
		return true
	}
	return false
}
