package rubis

import (
	"math"
	"math/rand"
	"testing"

	"jade/internal/legacy"
	"jade/internal/sim"
)

func TestDefaultTransitionsValidate(t *testing.T) {
	c := DefaultTransitions()
	if err := c.Validate(Interactions()); err != nil {
		t.Fatal(err)
	}
	if c.Start() != "Home" {
		t.Fatalf("start = %q", c.Start())
	}
}

func TestChainValidationRejections(t *testing.T) {
	its := Interactions()
	// Unknown start.
	bad := NewChain("Ghost")
	if err := bad.Validate(its); err == nil {
		t.Fatal("unknown start accepted")
	}
	// Row not summing to one.
	c := DefaultTransitions()
	c.Set("Home", Transition{"Browse", 0.5})
	if err := c.Validate(its); err == nil {
		t.Fatal("under-weighted row accepted")
	}
	// Unknown target.
	c2 := DefaultTransitions()
	c2.Set("Home", Transition{"Ghost", 1.0})
	if err := c2.Validate(its); err == nil {
		t.Fatal("unknown target accepted")
	}
	// Unreachable interaction.
	c3 := DefaultTransitions()
	c3.Set("ViewItem", Transition{"Home", 1.0}) // cuts off bid flows
	if err := c3.Validate(its); err == nil {
		t.Fatal("unreachable interactions accepted")
	}
	// Non-positive probability.
	c4 := DefaultTransitions()
	c4.Set("Home", Transition{"Browse", 1.0}, Transition{"Sell", 0})
	if err := c4.Validate(its); err == nil {
		t.Fatal("zero probability accepted")
	}
}

func TestChainNextFallsBackToStart(t *testing.T) {
	c := NewChain("Home")
	rng := rand.New(rand.NewSource(1))
	if got := c.Next("nowhere", rng); got != "Home" {
		t.Fatalf("Next on stateless node = %q", got)
	}
}

func TestChainStationaryCoversAllInteractions(t *testing.T) {
	c := DefaultTransitions()
	dist := c.Stationary(1, 200000)
	if len(dist) != 26 {
		t.Fatalf("stationary support = %d interactions, want 26", len(dist))
	}
	sum := 0.0
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("stationary sums to %v", sum)
	}
}

// TestChainCalibrationRegime asserts the Markov sessions keep the tier
// demands in the same regime as the calibrated i.i.d. mix, so the
// saturation points of the figures hold for either workload model.
func TestChainCalibrationRegime(t *testing.T) {
	c := DefaultTransitions()
	m := BiddingMix()
	rng := rand.New(rand.NewSource(5))
	g := &GenContext{DS: DefaultDataset(), RNG: rng, Counters: NewCounters(DefaultDataset())}
	var web, app, dbRead, dbWrite float64
	writes := 0
	const n = 50000
	state := c.Start()
	for i := 0; i < n; i++ {
		state = c.Next(state, rng)
		it, ok := m.ByName(state)
		if !ok {
			t.Fatalf("chain state %q not in mix", state)
		}
		if it.Write {
			writes++
		}
		req := it.Request(g)
		web += req.WebCost
		app += req.AppCost
		for _, q := range req.Queries {
			if isWriteSQL(q.SQL) {
				dbWrite += q.Cost
			} else {
				dbRead += q.Cost
			}
		}
	}
	app /= n
	dbRead /= n
	wf := float64(writes) / n
	if wf < 0.05 || wf > 0.22 {
		t.Fatalf("session write fraction = %v, out of the bidding-mix regime", wf)
	}
	if dbRead < 0.018 || dbRead > 0.042 {
		t.Fatalf("session db read demand = %v, out of the calibrated regime [0.018, 0.042]", dbRead)
	}
	if app < 0.008 || app > 0.020 {
		t.Fatalf("session app demand = %v, out of the calibrated regime", app)
	}
	_ = web
	_ = dbWrite
}

func TestEmulatorChainModeRunsSessions(t *testing.T) {
	eng := sim.NewEngine(29)
	front := &instantFront{}
	em := NewEmulator(eng, front, BiddingMix(), ConstantProfile{Clients: 10, Length: 600}, DefaultDataset())
	em.ThinkTime = 2
	em.Chain = DefaultTransitions()
	if err := em.Start(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(600)
	em.Stop()
	eng.Run()
	st := em.Stats()
	if st.Completed < 1000 {
		t.Fatalf("completed = %d", st.Completed)
	}
	// Flow invariant: store pages are only reachable through their auth
	// pages, so each Store* count is bounded by its upstream page count.
	if sb, pb := st.Interaction("StoreBid").Count, st.Interaction("PutBid").Count; sb > pb {
		t.Fatalf("StoreBid (%d) exceeded PutBid (%d): session flow broken", sb, pb)
	}
	if pb, pa := st.Interaction("PutBid").Count, st.Interaction("PutBidAuth").Count; pb > pa {
		t.Fatalf("PutBid (%d) exceeded PutBidAuth (%d)", pb, pa)
	}
	if ri, sf := st.Interaction("RegisterItem").Count, st.Interaction("SellItemForm").Count; ri > sf {
		t.Fatalf("RegisterItem (%d) exceeded SellItemForm (%d)", ri, sf)
	}
	// Sessions wander: many distinct interactions observed.
	if got := len(st.InteractionNames()); got < 20 {
		t.Fatalf("only %d interactions observed in session mode", got)
	}
}

func TestMixByName(t *testing.T) {
	m := BiddingMix()
	it, ok := m.ByName("ViewItem")
	if !ok || it.Name != "ViewItem" {
		t.Fatalf("ByName = %v, %v", it, ok)
	}
	if _, ok := m.ByName("Ghost"); ok {
		t.Fatal("unknown name found")
	}
}

func TestEmulatorChainModeDeterminism(t *testing.T) {
	run := func() uint64 {
		eng := sim.NewEngine(31)
		front := &instantFront{}
		em := NewEmulator(eng, front, BiddingMix(), ConstantProfile{Clients: 5, Length: 200}, DefaultDataset())
		em.Chain = DefaultTransitions()
		if err := em.Start(); err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(200)
		em.Stop()
		eng.Run()
		return em.Stats().Completed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("chain mode not deterministic: %d vs %d", a, b)
	}
}

var _ legacy.HTTPHandler = (*instantFront)(nil)
