package rubis

import (
	"math"
	"math/rand"
)

// FluidDemand is a mix's mean per-request resource profile: the
// calibration constants the fluid workload model feeds its queue-theoretic
// tier stations. It extends ExpectedCosts with the query-count moments the
// C-JDBC proxy and write-broadcast equations need.
type FluidDemand struct {
	// Web, App, DBRead, DBWrite are mean CPU-seconds per request at each
	// tier (DB costs summed over the request's queries).
	Web, App, DBRead, DBWrite float64
	// QueriesPerRequest is the mean number of queries a request issues
	// (reads + writes) — the unit the C-JDBC proxy cost is charged in.
	QueriesPerRequest float64
	// WriteQueriesPerRequest is the mean number of write queries per
	// request; writes broadcast to every database replica under RAIDb-1.
	WriteQueriesPerRequest float64
}

// FluidDemand estimates the mix's mean per-request demand by Monte Carlo
// over the interaction weights, exactly as ExpectedCosts does (same
// deterministic seed discipline), additionally counting queries.
func (m *Mix) FluidDemand(ds Dataset, seed int64, samples int) FluidDemand {
	rng := rand.New(rand.NewSource(seed))
	g := &GenContext{DS: ds, RNG: rng, Counters: NewCounters(ds)}
	var d FluidDemand
	for i := 0; i < samples; i++ {
		it := m.Pick(rng)
		req := it.Request(g)
		d.Web += req.WebCost
		d.App += req.AppCost
		for _, query := range req.Queries {
			d.QueriesPerRequest++
			if isWriteSQL(query.SQL) {
				d.DBWrite += query.Cost
				d.WriteQueriesPerRequest++
			} else {
				d.DBRead += query.Cost
			}
		}
	}
	n := float64(samples)
	d.Web /= n
	d.App /= n
	d.DBRead /= n
	d.DBWrite /= n
	d.QueriesPerRequest /= n
	d.WriteQueriesPerRequest /= n
	return d
}

// ScaledProfile emulates a sampled fraction of another profile's
// population: in fluid workload mode only Rate of the clients run as real
// discrete request chains (keeping traces, exact percentiles, SLO
// evaluation and the alert plane alive), while the remainder is carried
// as an aggregate flow by the fluid network. Min guards the sample floor
// so small populations still produce a live stream.
type ScaledProfile struct {
	Inner Profile
	Rate  float64
	Min   int
}

// Active implements Profile: ceil(inner·Rate), at least Min (but never
// more than the inner population).
func (p ScaledProfile) Active(t float64) int {
	n := p.Inner.Active(t)
	if n <= 0 {
		return 0
	}
	s := int(math.Ceil(float64(n) * p.Rate))
	if s < p.Min {
		s = p.Min
	}
	if s > n {
		s = n
	}
	return s
}

// Duration implements Profile.
func (p ScaledProfile) Duration() float64 { return p.Inner.Duration() }

// Max implements Profile.
func (p ScaledProfile) Max() int {
	s := int(math.Ceil(float64(p.Inner.Max()) * p.Rate))
	if s < p.Min {
		s = p.Min
	}
	if s > p.Inner.Max() {
		s = p.Inner.Max()
	}
	return s
}
