// Package rubis reimplements the RUBiS 1.4.2 benchmark workload used in
// the paper's evaluation: an auction site modeled over eBay with 26 web
// interactions, a relational schema (users, items, categories, regions,
// bids, comments, buy-now purchases), and a client emulator that generates
// a tunable closed-loop workload and gathers latency/throughput
// statistics.
//
// The dataset is scaled down from RUBiS's defaults so experiments run in
// memory, but the schema and the interactions' SQL shapes are faithful;
// per-interaction CPU costs are calibrated so that the tier saturation
// points of the paper's scenario reproduce (see DESIGN.md).
package rubis

import (
	"fmt"
	"math/rand"

	"jade/internal/sqlengine"
)

// Dataset sizes the generated auction database.
type Dataset struct {
	Regions    int
	Categories int
	Users      int
	Items      int
	// BidsPerItem and CommentsPerUser seed initial activity.
	BidsPerItem     int
	CommentsPerUser int
}

// DefaultDataset is the scaled-down standard database.
func DefaultDataset() Dataset {
	return Dataset{
		Regions:         62, // RUBiS ships 62 US regions
		Categories:      20,
		Users:           300,
		Items:           450,
		BidsPerItem:     2,
		CommentsPerUser: 1,
	}
}

// schemaStatements returns the CREATE TABLE statements of the RUBiS
// schema subset the interactions touch.
func schemaStatements() []string {
	return []string{
		"CREATE TABLE regions (id INT, name TEXT)",
		"CREATE TABLE categories (id INT, name TEXT)",
		"CREATE TABLE users (id INT, nickname TEXT, password TEXT, region INT, rating INT, balance FLOAT)",
		"CREATE TABLE items (id INT, name TEXT, seller INT, category INT, initial_price FLOAT, max_bid FLOAT, nb_of_bids INT, end_date INT, buy_now FLOAT)",
		"CREATE TABLE bids (id INT, user_id INT, item_id INT, bid FLOAT, date INT)",
		"CREATE TABLE comments (id INT, from_user INT, to_user INT, item_id INT, rating INT, comment TEXT)",
		"CREATE TABLE buy_now (id INT, buyer_id INT, item_id INT, qty INT, date INT)",
	}
}

// Populate fills db with the dataset. The generated content is a pure
// function of the rng's state, so two replicas populated from equal seeds
// are identical.
func (d Dataset) Populate(db *sqlengine.Engine, rng *rand.Rand) error {
	for _, stmt := range schemaStatements() {
		if _, err := db.Exec(stmt); err != nil {
			return fmt.Errorf("rubis: schema: %w", err)
		}
	}
	exec := func(format string, args ...any) error {
		if _, err := db.Exec(fmt.Sprintf(format, args...)); err != nil {
			return fmt.Errorf("rubis: populate: %w", err)
		}
		return nil
	}
	for i := 0; i < d.Regions; i++ {
		if err := exec("INSERT INTO regions (id, name) VALUES (%d, 'region-%d')", i, i); err != nil {
			return err
		}
	}
	for i := 0; i < d.Categories; i++ {
		if err := exec("INSERT INTO categories (id, name) VALUES (%d, 'category-%d')", i, i); err != nil {
			return err
		}
	}
	for i := 0; i < d.Users; i++ {
		if err := exec(
			"INSERT INTO users (id, nickname, password, region, rating, balance) VALUES (%d, 'user%d', 'pw%d', %d, %d, %.2f)",
			i, i, i, rng.Intn(max(1, d.Regions)), rng.Intn(10), rng.Float64()*1000); err != nil {
			return err
		}
	}
	bidID, commentID := 0, 0
	for i := 0; i < d.Items; i++ {
		price := 1 + rng.Float64()*100
		if err := exec(
			"INSERT INTO items (id, name, seller, category, initial_price, max_bid, nb_of_bids, end_date, buy_now) VALUES (%d, 'item-%d', %d, %d, %.2f, %.2f, %d, %d, %.2f)",
			i, i, rng.Intn(max(1, d.Users)), rng.Intn(max(1, d.Categories)),
			price, price, 0, 1000000+rng.Intn(1000000), price*1.5); err != nil {
			return err
		}
		for b := 0; b < d.BidsPerItem; b++ {
			if err := exec(
				"INSERT INTO bids (id, user_id, item_id, bid, date) VALUES (%d, %d, %d, %.2f, %d)",
				bidID, rng.Intn(max(1, d.Users)), i, price+float64(b), b); err != nil {
				return err
			}
			bidID++
		}
	}
	for u := 0; u < d.Users; u++ {
		for c := 0; c < d.CommentsPerUser; c++ {
			if err := exec(
				"INSERT INTO comments (id, from_user, to_user, item_id, rating, comment) VALUES (%d, %d, %d, %d, %d, 'seed comment')",
				commentID, rng.Intn(max(1, d.Users)), u, rng.Intn(max(1, d.Items)), rng.Intn(5)); err != nil {
				return err
			}
			commentID++
		}
	}
	return nil
}

// InitialDatabase builds and populates a fresh database from a seed.
func (d Dataset) InitialDatabase(seed int64) (*sqlengine.Engine, error) {
	db := sqlengine.New()
	if err := d.Populate(db, rand.New(rand.NewSource(seed))); err != nil {
		return nil, err
	}
	return db, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
