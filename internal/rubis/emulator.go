package rubis

import (
	"fmt"
	"math/rand"
	"sort"

	"jade/internal/legacy"
	"jade/internal/metrics"
	"jade/internal/obs"
	"jade/internal/sim"
	"jade/internal/trace"
)

// Profile shapes the emulated client population over time.
type Profile interface {
	// Active returns the target number of concurrently emulated clients
	// at virtual time t.
	Active(t float64) int
	// Duration is the experiment length in seconds.
	Duration() float64
	// Max is the population high-water mark (for preallocation).
	Max() int
}

// RampProfile is the paper's evaluation workload: a base population, a
// linear increase of StepPerMinute clients per minute up to Peak, an
// optional hold, then a symmetric decrease back to the base.
type RampProfile struct {
	Base          int
	Peak          int
	StepPerMinute int
	HoldAtPeak    float64
}

// PaperRamp is the exact scenario of §5.2: 80 clients, +21 clients/minute
// up to 500, then symmetric decrease.
func PaperRamp() RampProfile {
	return RampProfile{Base: 80, Peak: 500, StepPerMinute: 21, HoldAtPeak: 120}
}

func (r RampProfile) rampSeconds() float64 {
	if r.StepPerMinute <= 0 {
		return 0
	}
	return float64(r.Peak-r.Base) / float64(r.StepPerMinute) * 60
}

// Active implements Profile.
func (r RampProfile) Active(t float64) int {
	up := r.rampSeconds()
	switch {
	case t < 0:
		return r.Base
	case t < up:
		return r.Base + int(t/60*float64(r.StepPerMinute))
	case t < up+r.HoldAtPeak:
		return r.Peak
	case t < 2*up+r.HoldAtPeak:
		down := t - up - r.HoldAtPeak
		n := r.Peak - int(down/60*float64(r.StepPerMinute))
		if n < r.Base {
			return r.Base
		}
		return n
	default:
		return r.Base
	}
}

// Duration implements Profile.
func (r RampProfile) Duration() float64 { return 2*r.rampSeconds() + r.HoldAtPeak }

// Max implements Profile.
func (r RampProfile) Max() int { return r.Peak }

// ConstantProfile holds a fixed population for a fixed length — the
// "medium workload" of the paper's intrusivity experiment (Table 1).
type ConstantProfile struct {
	Clients int
	Length  float64
}

// Active implements Profile.
func (c ConstantProfile) Active(float64) int { return c.Clients }

// Duration implements Profile.
func (c ConstantProfile) Duration() float64 { return c.Length }

// Max implements Profile.
func (c ConstantProfile) Max() int { return c.Clients }

// InteractionStats aggregates one interaction's outcomes.
type InteractionStats struct {
	Count        uint64
	Errors       uint64
	TotalLatency float64
}

// Stats gathers the emulator's measurements, mirroring the RUBiS
// benchmarking tool ("gathers statistics about the generated workload and
// the web application behavior").
type Stats struct {
	// Latency records one point per completed request: (t, seconds).
	Latency *metrics.Series
	// Workload records the active client population each second.
	Workload *metrics.Series
	// Throughput is a 30-second windowed completion rate.
	Throughput *metrics.Throughput

	Completed uint64
	Failed    uint64

	perInteraction map[string]*InteractionStats
	latencies      []float64
}

func newStats() *Stats {
	return &Stats{
		Latency:        metrics.NewSeries("latency"),
		Workload:       metrics.NewSeries("workload"),
		Throughput:     metrics.NewThroughput(30),
		perInteraction: make(map[string]*InteractionStats),
	}
}

// Interaction returns the aggregate for one interaction name.
func (s *Stats) Interaction(name string) InteractionStats {
	if st, ok := s.perInteraction[name]; ok {
		return *st
	}
	return InteractionStats{}
}

// InteractionNames returns the interaction names observed, sorted.
func (s *Stats) InteractionNames() []string {
	out := make([]string, 0, len(s.perInteraction))
	for n := range s.perInteraction {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LatencySummary summarizes completed-request latencies (seconds).
func (s *Stats) LatencySummary() metrics.Summary {
	return metrics.Summarize(s.latencies)
}

// MeanLatencyBetween returns the mean latency of completions in [t0, t1].
func (s *Stats) MeanLatencyBetween(t0, t1 float64) float64 {
	return s.Latency.MeanBetween(t0, t1)
}

func (s *Stats) record(name string, t, latency float64, err error) {
	st, ok := s.perInteraction[name]
	if !ok {
		st = &InteractionStats{}
		s.perInteraction[name] = st
	}
	if err != nil {
		s.Failed++
		st.Errors++
		return
	}
	s.Completed++
	st.Count++
	st.TotalLatency += latency
	s.Latency.Add(t, latency)
	s.latencies = append(s.latencies, latency)
	s.Throughput.Observe(t)
}

// Emulator drives a closed-loop population of clients against a front-end
// HTTP handler: each client thinks (exponential think time), issues one
// interaction, waits for the response, and repeats — so an overloaded
// system slows its own offered load, as real users do.
type Emulator struct {
	eng     *sim.Engine
	front   legacy.HTTPHandler
	mix     *Mix
	profile Profile

	// ThinkTime is the mean think time in seconds (RUBiS uses
	// exponentially distributed think times; 7 s mean, per TPC-W).
	ThinkTime float64

	// Chain, when set, switches the emulator from independent sampling
	// of the mix's stationary weights to Markov sessions: each client
	// walks the transition graph from its start state (and restarts the
	// session when reactivated).
	Chain *Chain

	// Trace, when set together with TraceEvery, opens a root "request"
	// span for every TraceEvery-th issued request; the request then
	// carries the span through the tiers, which attach their hop spans
	// under it. Sampling keeps the span store bounded on long runs.
	Trace      *trace.Tracer
	TraceEvery int

	// Obs, when set, records the client-perceived end-to-end request
	// latency and outcome counters (tier "client"). Nil-safe.
	Obs *obs.TierMetrics

	// ReportProfile, when set, is the population recorded in the
	// workload series instead of the driving profile's. Fluid mode sets
	// it to the full (unsampled) profile so workload artifacts keep
	// showing the true client population while the emulator itself only
	// drives the sampled stream.
	ReportProfile Profile

	issued   uint64
	ds       Dataset
	counters *Counters
	rng      *rand.Rand
	stats    *Stats
	clients  []*client
	ticker   *sim.Ticker
	running  bool
	deadline float64
}

type client struct {
	id     int
	em     *Emulator
	active bool
	parked bool
	state  string // current session state in Chain mode
}

// NewEmulator creates an emulator (not yet started).
func NewEmulator(eng *sim.Engine, front legacy.HTTPHandler, mix *Mix, profile Profile, ds Dataset) *Emulator {
	return &Emulator{
		eng:       eng,
		front:     front,
		mix:       mix,
		profile:   profile,
		ThinkTime: 7,
		ds:        ds,
		counters:  NewCounters(ds),
		rng:       rand.New(rand.NewSource(eng.Rand().Int63())),
		stats:     newStats(),
	}
}

// Stats returns the emulator's measurements.
func (e *Emulator) Stats() *Stats { return e.stats }

// ActiveClients returns the number of currently active clients.
func (e *Emulator) ActiveClients() int {
	n := 0
	for _, c := range e.clients {
		if c.active {
			n++
		}
	}
	return n
}

// Start launches the population and the per-second population regulator.
// The emulator deactivates everything at the profile's duration.
func (e *Emulator) Start() error {
	if e.running {
		return fmt.Errorf("rubis: emulator already running")
	}
	e.running = true
	e.deadline = e.eng.Now() + e.profile.Duration()
	e.clients = make([]*client, e.profile.Max())
	for i := range e.clients {
		e.clients[i] = &client{id: i, em: e, parked: true}
	}
	e.adjust(e.eng.Now())
	e.ticker = e.eng.Every(1, "rubis:population", func(now float64) {
		if now >= e.deadline {
			e.Stop()
			return
		}
		e.adjust(now)
	})
	return nil
}

// Stop deactivates all clients; in-flight requests complete but are still
// recorded.
func (e *Emulator) Stop() {
	if !e.running {
		return
	}
	e.running = false
	if e.ticker != nil {
		e.ticker.Stop()
		e.ticker = nil
	}
	for _, c := range e.clients {
		c.active = false
	}
}

// adjust reconciles the active population with the profile's target.
func (e *Emulator) adjust(now float64) {
	rel := now - (e.deadline - e.profile.Duration())
	target := e.profile.Active(rel)
	if target > len(e.clients) {
		target = len(e.clients)
	}
	if e.ReportProfile != nil {
		e.stats.Workload.Add(now, float64(e.ReportProfile.Active(rel)))
	} else {
		e.stats.Workload.Add(now, float64(target))
	}
	for i, c := range e.clients {
		want := i < target
		if want && !c.active {
			c.active = true
			if e.Chain != nil {
				c.state = e.Chain.Start() // fresh session
			}
			if c.parked {
				c.parked = false
				c.think()
			}
		} else if !want && c.active {
			c.active = false // parks at the end of its current cycle
		}
	}
}

// think schedules the client's next request after an exponential delay.
func (c *client) think() {
	if !c.active {
		c.parked = true
		return
	}
	delay := c.em.eng.Exponential(c.em.ThinkTime)
	c.em.eng.After(delay, "rubis:think", c.issue)
}

// issue sends one interaction and recurses into the next cycle when the
// response arrives.
func (c *client) issue() {
	if !c.active {
		c.parked = true
		return
	}
	em := c.em
	g := &GenContext{DS: em.ds, RNG: em.rng, Counters: em.counters}
	var it *Interaction
	if em.Chain != nil {
		c.state = em.Chain.Next(c.state, em.rng)
		next, ok := em.mix.ByName(c.state)
		if !ok { // chain names an interaction absent from the mix
			next = em.mix.Pick(em.rng)
			c.state = next.Name
		}
		it = next
	} else {
		it = em.mix.Pick(em.rng)
	}
	req := it.Request(g)
	req.SessionKey = fmt.Sprintf("c%d", c.id)
	t0 := em.eng.Now()
	em.issued++
	var span trace.ID
	if em.Trace != nil && em.TraceEvery > 0 && em.issued%uint64(em.TraceEvery) == 0 {
		span = em.Trace.Begin(0, "request", it.Name, trace.Fi("client", c.id))
		req.TraceSpan = span
	}
	em.front.HandleHTTP(req, func(err error) {
		now := em.eng.Now()
		if span != 0 {
			em.Trace.End(span, trace.Outcome(err))
		}
		em.Obs.End(t0, err)
		em.stats.record(it.Name, now, now-t0, err)
		c.think()
	})
}
