package rubis

import (
	"math"
	"math/rand"
	"testing"

	"jade/internal/legacy"
	"jade/internal/sim"
	"jade/internal/sqlengine"
)

func TestDatasetPopulateDeterministic(t *testing.T) {
	d := DefaultDataset()
	a, err := d.InitialDatabase(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.InitialDatabase(42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same seed produced different databases")
	}
	c, err := d.InitialDatabase(43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced identical databases")
	}
}

func TestDatasetRowCounts(t *testing.T) {
	d := DefaultDataset()
	db, err := d.InitialDatabase(1)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]int{
		"regions":    d.Regions,
		"categories": d.Categories,
		"users":      d.Users,
		"items":      d.Items,
		"bids":       d.Items * d.BidsPerItem,
		"comments":   d.Users * d.CommentsPerUser,
		"buy_now":    0,
	}
	for table, want := range checks {
		if got := db.RowCount(table); got != want {
			t.Errorf("%s rows = %d, want %d", table, got, want)
		}
	}
}

func TestExactly26Interactions(t *testing.T) {
	its := Interactions()
	if len(its) != 26 {
		t.Fatalf("interaction count = %d, want 26 (as in RUBiS)", len(its))
	}
	seen := map[string]bool{}
	for _, it := range its {
		if seen[it.Name] {
			t.Fatalf("duplicate interaction %q", it.Name)
		}
		seen[it.Name] = true
		if it.Weight < 0 {
			t.Fatalf("%s has negative weight", it.Name)
		}
		if it.WebCost <= 0 || it.AppCost <= 0 {
			t.Fatalf("%s has non-positive tier costs", it.Name)
		}
	}
}

func TestMixWeightsSumToOne(t *testing.T) {
	m := BiddingMix()
	sum := 0.0
	for _, it := range m.Interactions {
		sum += it.Weight
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Fatalf("bidding mix weights sum to %v", sum)
	}
}

func TestWriteFractions(t *testing.T) {
	if wf := BiddingMix().WriteFraction(); wf < 0.10 || wf > 0.20 {
		t.Fatalf("bidding mix write fraction = %v, want ~0.125", wf)
	}
	if wf := BrowsingMix().WriteFraction(); wf != 0 {
		t.Fatalf("browsing mix write fraction = %v, want 0", wf)
	}
}

// TestCalibration pins the per-tier expected costs that DESIGN.md derives
// the paper's saturation points from. If these drift, the replica-count
// trajectories of Figures 5-7 drift with them.
func TestCalibration(t *testing.T) {
	web, app, dbRead, dbWrite := BiddingMix().ExpectedCosts(DefaultDataset(), 123, 20000)
	checks := []struct {
		name, unit string
		got, want  float64
		tolerance  float64
	}{
		{"web", "s", web, 0.002, 0.15},
		{"app", "s", app, 0.013, 0.15},
		{"dbRead", "s", dbRead, 0.0285, 0.15},
		{"dbWrite", "s", dbWrite, 0.0015, 0.25},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want)/c.want > c.tolerance {
			t.Errorf("%s cost = %.5f, want %.5f ±%.0f%%", c.name, c.got, c.want, c.tolerance*100)
		}
	}
}

func TestAllQueriesParseAndExecute(t *testing.T) {
	d := DefaultDataset()
	db, err := d.InitialDatabase(7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	g := &GenContext{DS: d, RNG: rng, Counters: NewCounters(d)}
	for _, it := range Interactions() {
		// Exercise each interaction several times to cover random IDs.
		for trial := 0; trial < 5; trial++ {
			req := it.Request(g)
			if req.Interaction != it.Name {
				t.Fatalf("request name = %q", req.Interaction)
			}
			for _, q := range req.Queries {
				if q.Cost <= 0 {
					t.Fatalf("%s: query with non-positive cost: %s", it.Name, q.SQL)
				}
				if _, err := db.Exec(q.SQL); err != nil {
					t.Fatalf("%s: %q: %v", it.Name, q.SQL, err)
				}
				if sqlengine.IsWrite(q.SQL) != isWriteSQL(q.SQL) {
					t.Fatalf("%s: write classification mismatch for %q", it.Name, q.SQL)
				}
			}
		}
	}
}

func TestWriteInteractionsActuallyWrite(t *testing.T) {
	d := DefaultDataset()
	db, err := d.InitialDatabase(7)
	if err != nil {
		t.Fatal(err)
	}
	before := db.Writes()
	rng := rand.New(rand.NewSource(11))
	g := &GenContext{DS: d, RNG: rng, Counters: NewCounters(d)}
	for _, it := range Interactions() {
		if !it.Write {
			continue
		}
		wrote := false
		for _, q := range it.Queries(g) {
			if sqlengine.IsWrite(q.SQL) {
				wrote = true
			}
			if _, err := db.Exec(q.SQL); err != nil {
				t.Fatalf("%s: %v", it.Name, err)
			}
		}
		if !wrote {
			t.Errorf("%s is marked Write but issues no write statements", it.Name)
		}
	}
	if db.Writes() == before {
		t.Fatal("no writes executed")
	}
}

func TestUniqueInsertIDsAcrossInteractions(t *testing.T) {
	d := DefaultDataset()
	db, err := d.InitialDatabase(7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	g := &GenContext{DS: d, RNG: rng, Counters: NewCounters(d)}
	m := BiddingMix()
	for i := 0; i < 500; i++ {
		it := m.Pick(rng)
		for _, q := range it.Request(g).Queries {
			if _, err := db.Exec(q.SQL); err != nil {
				t.Fatalf("%s: %v", it.Name, err)
			}
		}
	}
	// Bid IDs must be unique: every id appears exactly once.
	res, err := db.Exec("SELECT COUNT(*) FROM bids")
	if err != nil {
		t.Fatal(err)
	}
	total := res.Rows[0][0].(int64)
	res2, err := db.Exec("SELECT id FROM bids ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, row := range res2.Rows {
		id := row[0].(int64)
		if seen[id] {
			t.Fatalf("duplicate bid id %d", id)
		}
		seen[id] = true
	}
	if int64(len(seen)) != total {
		t.Fatalf("bid id count mismatch: %d vs %d", len(seen), total)
	}
}

func TestMixPickDistribution(t *testing.T) {
	m := BiddingMix()
	rng := rand.New(rand.NewSource(5))
	counts := map[string]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[m.Pick(rng).Name]++
	}
	for _, it := range m.Interactions {
		got := float64(counts[it.Name]) / n
		if math.Abs(got-it.Weight) > 0.01+it.Weight*0.15 {
			t.Errorf("%s frequency = %.4f, want %.4f", it.Name, got, it.Weight)
		}
	}
}

func TestRampProfileShape(t *testing.T) {
	r := PaperRamp()
	up := r.Duration() / 2 // hold is small relative to ramps
	if r.Active(-5) != 80 {
		t.Fatalf("Active(-5) = %d", r.Active(-5))
	}
	if r.Active(0) != 80 {
		t.Fatalf("Active(0) = %d", r.Active(0))
	}
	if got := r.Active(60); got != 101 {
		t.Fatalf("Active(60) = %d, want 101 (80+21)", got)
	}
	rampSecs := (500.0 - 80.0) / 21.0 * 60.0
	if got := r.Active(rampSecs + 1); got != 500 {
		t.Fatalf("Active at peak = %d", got)
	}
	// Symmetric decrease.
	tDown := rampSecs + r.HoldAtPeak + 60
	if got := r.Active(tDown); got != 479 {
		t.Fatalf("Active one minute into decrease = %d, want 479", got)
	}
	if got := r.Active(r.Duration() + 100); got != 80 {
		t.Fatalf("Active after end = %d", got)
	}
	if r.Max() != 500 {
		t.Fatalf("Max = %d", r.Max())
	}
	_ = up
	// Degenerate ramp.
	flat := RampProfile{Base: 10, Peak: 10, StepPerMinute: 0, HoldAtPeak: 50}
	if flat.Duration() != 50 || flat.Active(25) != 10 {
		t.Fatal("degenerate ramp wrong")
	}
}

func TestConstantProfile(t *testing.T) {
	p := ConstantProfile{Clients: 80, Length: 300}
	if p.Active(0) != 80 || p.Active(299) != 80 || p.Duration() != 300 || p.Max() != 80 {
		t.Fatal("constant profile wrong")
	}
}

// instantFront answers every request immediately.
type instantFront struct{ served int }

func (f *instantFront) HandleHTTP(req *legacy.WebRequest, done func(error)) {
	f.served++
	done(nil)
}

func TestEmulatorClosedLoopAgainstInstantFront(t *testing.T) {
	eng := sim.NewEngine(17)
	front := &instantFront{}
	em := NewEmulator(eng, front, BiddingMix(), ConstantProfile{Clients: 10, Length: 300}, DefaultDataset())
	em.ThinkTime = 5
	if err := em.Start(); err != nil {
		t.Fatal(err)
	}
	if err := em.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	eng.RunUntil(300)
	em.Stop()
	eng.Run()
	st := em.Stats()
	// 10 clients, mean cycle = 5s think + ~0s service → ~2 req/s → ~600
	// completions over 300 s. Allow generous slack for the exponential.
	if st.Completed < 300 || st.Completed > 1000 {
		t.Fatalf("completed = %d, want ≈600", st.Completed)
	}
	if st.Failed != 0 {
		t.Fatalf("failed = %d", st.Failed)
	}
	if got := st.Workload.At(100); got != 10 {
		t.Fatalf("workload series at 100 = %v", got)
	}
	if len(st.InteractionNames()) < 10 {
		t.Fatalf("only %d interactions observed", len(st.InteractionNames()))
	}
	sum := st.LatencySummary()
	if sum.Count == 0 || sum.Mean < 0 {
		t.Fatalf("latency summary = %+v", sum)
	}
}

func TestEmulatorFollowsRamp(t *testing.T) {
	eng := sim.NewEngine(19)
	front := &instantFront{}
	ramp := RampProfile{Base: 5, Peak: 20, StepPerMinute: 30, HoldAtPeak: 30}
	em := NewEmulator(eng, front, BrowsingMix(), ramp, DefaultDataset())
	em.ThinkTime = 1
	if err := em.Start(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(0.5)
	if got := em.ActiveClients(); got != 5 {
		t.Fatalf("active at start = %d, want 5", got)
	}
	eng.RunUntil(31)
	// After 30 s at +30/min the target is 5 + 15 = 20 (peak).
	if got := em.ActiveClients(); got != 20 {
		t.Fatalf("active at peak = %d, want 20", got)
	}
	eng.RunUntil(ramp.Duration() + 10)
	eng.Run()
	if got := em.ActiveClients(); got != 0 {
		t.Fatalf("active after deadline = %d, want 0 (emulator stopped)", got)
	}
}

// errorFront fails every request.
type errorFront struct{}

func (errorFront) HandleHTTP(req *legacy.WebRequest, done func(error)) {
	done(legacy.ErrNotRunning)
}

func TestEmulatorRecordsFailures(t *testing.T) {
	eng := sim.NewEngine(23)
	em := NewEmulator(eng, errorFront{}, BiddingMix(), ConstantProfile{Clients: 3, Length: 60}, DefaultDataset())
	em.ThinkTime = 2
	if err := em.Start(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(60)
	em.Stop()
	eng.Run()
	st := em.Stats()
	if st.Failed == 0 {
		t.Fatal("no failures recorded")
	}
	if st.Completed != 0 {
		t.Fatalf("completed = %d on an erroring front end", st.Completed)
	}
	if st.Latency.Len() != 0 {
		t.Fatal("latency recorded for failed requests")
	}
}

func TestEmulatorDeterminism(t *testing.T) {
	run := func() uint64 {
		eng := sim.NewEngine(31)
		front := &instantFront{}
		em := NewEmulator(eng, front, BiddingMix(), ConstantProfile{Clients: 8, Length: 120}, DefaultDataset())
		if err := em.Start(); err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(120)
		em.Stop()
		eng.Run()
		return em.Stats().Completed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("emulator not deterministic: %d vs %d", a, b)
	}
}

func TestStatsInteractionAggregates(t *testing.T) {
	s := newStats()
	s.record("Home", 1, 0.1, nil)
	s.record("Home", 2, 0.3, nil)
	s.record("Home", 3, 0, legacy.ErrNotRunning)
	got := s.Interaction("Home")
	if got.Count != 2 || got.Errors != 1 || math.Abs(got.TotalLatency-0.4) > 1e-9 {
		t.Fatalf("aggregate = %+v", got)
	}
	if s.Interaction("Ghost").Count != 0 {
		t.Fatal("missing interaction non-zero")
	}
	if s.MeanLatencyBetween(0, 10) != 0.2 {
		t.Fatalf("MeanLatencyBetween = %v", s.MeanLatencyBetween(0, 10))
	}
}
