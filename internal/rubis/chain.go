package rubis

import (
	"fmt"
	"math/rand"
	"sort"
)

// Chain is a Markov session model over the 26 interactions: the original
// RUBiS drives each emulated client through a transition table rather
// than sampling interactions independently. The default emulator mode
// uses the calibrated stationary weights directly (which preserves the
// per-interaction request rates exactly); this chain mode adds session
// structure — authentication pages precede their store pages, browsing
// drills down before viewing items — for workloads where request
// *ordering* matters.
type Chain struct {
	transitions map[string][]Transition
	start       string
}

// Transition is one weighted edge of the session graph.
type Transition struct {
	To string
	P  float64
}

// NewChain builds a chain with the given start state.
func NewChain(start string) *Chain {
	return &Chain{transitions: make(map[string][]Transition), start: start}
}

// Start returns the session entry state.
func (c *Chain) Start() string { return c.start }

// Set defines the outgoing distribution of one state.
func (c *Chain) Set(from string, ts ...Transition) {
	c.transitions[from] = ts
}

// Next samples the successor of state from.
func (c *Chain) Next(from string, rng *rand.Rand) string {
	ts := c.transitions[from]
	if len(ts) == 0 {
		return c.start
	}
	x := rng.Float64()
	acc := 0.0
	for _, t := range ts {
		acc += t.P
		if x < acc {
			return t.To
		}
	}
	return ts[len(ts)-1].To
}

// States returns all states with outgoing transitions, sorted.
func (c *Chain) States() []string {
	out := make([]string, 0, len(c.transitions))
	for s := range c.transitions {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Validate checks the chain against an interaction set: every state and
// every target must be a known interaction, every row must sum to ~1,
// and every interaction must be reachable from the start state.
func (c *Chain) Validate(interactions []Interaction) error {
	known := map[string]bool{}
	for _, it := range interactions {
		known[it.Name] = true
	}
	if !known[c.start] {
		return fmt.Errorf("rubis: chain start %q is not an interaction", c.start)
	}
	for from, ts := range c.transitions {
		if !known[from] {
			return fmt.Errorf("rubis: chain state %q is not an interaction", from)
		}
		sum := 0.0
		for _, t := range ts {
			if !known[t.To] {
				return fmt.Errorf("rubis: transition %s -> %q targets an unknown interaction", from, t.To)
			}
			if t.P <= 0 {
				return fmt.Errorf("rubis: transition %s -> %s has non-positive probability", from, t.To)
			}
			sum += t.P
		}
		if sum < 0.999 || sum > 1.001 {
			return fmt.Errorf("rubis: transitions out of %s sum to %v", from, sum)
		}
	}
	// Reachability from the start state.
	reached := map[string]bool{c.start: true}
	frontier := []string{c.start}
	for len(frontier) > 0 {
		s := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, t := range c.transitions[s] {
			if !reached[t.To] {
				reached[t.To] = true
				frontier = append(frontier, t.To)
			}
		}
	}
	for name := range known {
		if !reached[name] {
			return fmt.Errorf("rubis: interaction %q unreachable from %s", name, c.start)
		}
	}
	// Every interaction needs an outgoing row (sessions never get stuck).
	for name := range known {
		if len(c.transitions[name]) == 0 {
			return fmt.Errorf("rubis: interaction %q has no outgoing transitions", name)
		}
	}
	return nil
}

// DefaultTransitions is a bidding-mix session graph: browsing drills down
// into item views; bids, buy-nows and comments flow through their
// authentication pages; selling flows through category selection and the
// item form. It is shaped to keep the empirical interaction frequencies
// in the same regime as the calibrated stationary weights (verified by
// the calibration tests).
func DefaultTransitions() *Chain {
	c := NewChain("Home")
	c.Set("Home",
		Transition{"Browse", 0.42},
		Transition{"SearchItemsInCategory", 0.22},
		Transition{"ViewItem", 0.20},
		Transition{"AboutMe", 0.06},
		Transition{"Sell", 0.04},
		Transition{"Register", 0.03},
		Transition{"BrowseRegions", 0.03})
	c.Set("Browse",
		Transition{"BrowseCategories", 0.60},
		Transition{"BrowseRegions", 0.20},
		Transition{"Home", 0.20})
	c.Set("BrowseCategories",
		Transition{"SearchItemsInCategory", 0.85},
		Transition{"Browse", 0.15})
	c.Set("SearchItemsInCategory",
		Transition{"ViewItem", 0.45},
		Transition{"SearchItemsInCategory", 0.30},
		Transition{"BrowseCategories", 0.10},
		Transition{"Home", 0.15})
	c.Set("BrowseRegions",
		Transition{"BrowseCategoriesInRegion", 0.85},
		Transition{"Home", 0.15})
	c.Set("BrowseCategoriesInRegion",
		Transition{"SearchItemsInRegion", 0.85},
		Transition{"Browse", 0.15})
	c.Set("SearchItemsInRegion",
		Transition{"ViewItem", 0.45},
		Transition{"SearchItemsInRegion", 0.30},
		Transition{"BrowseRegions", 0.10},
		Transition{"Home", 0.15})
	c.Set("ViewItem",
		Transition{"PutBidAuth", 0.22},
		Transition{"ViewBidHistory", 0.12},
		Transition{"ViewUserInfo", 0.10},
		Transition{"BuyNowAuth", 0.06},
		Transition{"SearchItemsInCategory", 0.30},
		Transition{"Home", 0.20})
	c.Set("ViewUserInfo",
		Transition{"PutCommentAuth", 0.30},
		Transition{"ViewItem", 0.35},
		Transition{"SearchItemsInCategory", 0.35})
	c.Set("ViewBidHistory",
		Transition{"PutBidAuth", 0.35},
		Transition{"ViewItem", 0.35},
		Transition{"SearchItemsInCategory", 0.30})
	c.Set("PutBidAuth", Transition{"PutBid", 1.0})
	c.Set("PutBid",
		Transition{"StoreBid", 0.85},
		Transition{"ViewItem", 0.15})
	c.Set("StoreBid",
		Transition{"SearchItemsInCategory", 0.45},
		Transition{"ViewItem", 0.25},
		Transition{"Home", 0.30})
	c.Set("BuyNowAuth", Transition{"BuyNow", 1.0})
	c.Set("BuyNow",
		Transition{"StoreBuyNow", 0.85},
		Transition{"Home", 0.15})
	c.Set("StoreBuyNow",
		Transition{"Home", 0.50},
		Transition{"SearchItemsInCategory", 0.50})
	c.Set("PutCommentAuth", Transition{"PutComment", 1.0})
	c.Set("PutComment",
		Transition{"StoreComment", 0.90},
		Transition{"Home", 0.10})
	c.Set("StoreComment",
		Transition{"Home", 0.50},
		Transition{"SearchItemsInCategory", 0.50})
	c.Set("Sell", Transition{"SelectCategoryToSellItem", 1.0})
	c.Set("SelectCategoryToSellItem", Transition{"SellItemForm", 1.0})
	c.Set("SellItemForm",
		Transition{"RegisterItem", 0.85},
		Transition{"Home", 0.15})
	c.Set("RegisterItem",
		Transition{"Home", 0.60},
		Transition{"Sell", 0.15},
		Transition{"SearchItemsInCategory", 0.25})
	c.Set("Register", Transition{"RegisterUser", 1.0})
	c.Set("RegisterUser",
		Transition{"Home", 0.55},
		Transition{"Browse", 0.45})
	c.Set("AboutMe",
		Transition{"Home", 0.45},
		Transition{"ViewItem", 0.30},
		Transition{"SearchItemsInCategory", 0.25})
	return c
}

// Stationary estimates the chain's stationary distribution empirically
// over n steps.
func (c *Chain) Stationary(seed int64, n int) map[string]float64 {
	rng := rand.New(rand.NewSource(seed))
	counts := map[string]int{}
	state := c.start
	for i := 0; i < n; i++ {
		state = c.Next(state, rng)
		counts[state]++
	}
	out := make(map[string]float64, len(counts))
	for s, k := range counts {
		out[s] = float64(k) / float64(n)
	}
	return out
}
