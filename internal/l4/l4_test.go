package l4

import (
	"errors"
	"testing"

	"jade/internal/cluster"
	"jade/internal/legacy"
	"jade/internal/sim"
)

type fakeServer struct {
	eng    *sim.Engine
	delay  float64
	err    error
	served int
}

func (f *fakeServer) HandleHTTP(req *legacy.WebRequest, done func(error)) {
	f.eng.After(f.delay, "fake", func() {
		f.served++
		done(f.err)
	})
}

func newSwitch(t *testing.T) (*sim.Engine, *Switch) {
	t.Helper()
	eng := sim.NewEngine(3)
	net := legacy.NewNetwork()
	node := cluster.NewNode(eng, "sw", cluster.DefaultConfig())
	s := New(eng, net, node, "l4", DefaultOptions())
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return eng, s
}

func TestEqualWeightsRoundRobin(t *testing.T) {
	eng, s := newSwitch(t)
	a := &fakeServer{eng: eng, delay: 0.001}
	b := &fakeServer{eng: eng, delay: 0.001}
	if err := s.AddServer("a", a, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddServer("b", b, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.HandleHTTP(&legacy.WebRequest{}, func(error) {})
	}
	eng.Run()
	if a.served != 5 || b.served != 5 {
		t.Fatalf("split = %d/%d", a.served, b.served)
	}
}

func TestWeightedDistribution(t *testing.T) {
	eng, s := newSwitch(t)
	heavy := &fakeServer{eng: eng, delay: 0.001}
	light := &fakeServer{eng: eng, delay: 0.001}
	if err := s.AddServer("heavy", heavy, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.AddServer("light", light, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		s.HandleHTTP(&legacy.WebRequest{}, func(error) {})
	}
	eng.Run()
	if heavy.served != 30 || light.served != 10 {
		t.Fatalf("weighted split = %d/%d, want 30/10", heavy.served, light.served)
	}
}

func TestServerManagement(t *testing.T) {
	_, s := newSwitch(t)
	a := &fakeServer{}
	if err := s.AddServer("a", a, 0); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("zero weight: %v", err)
	}
	if err := s.AddServer("a", a, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddServer("a", a, 1); !errors.Is(err, ErrServerExists) {
		t.Fatalf("duplicate: %v", err)
	}
	if got := s.Servers(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Servers = %v", got)
	}
	if err := s.RemoveServer("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveServer("a"); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestNoServersDrops(t *testing.T) {
	eng, s := newSwitch(t)
	var got error
	s.HandleHTTP(&legacy.WebRequest{}, func(err error) { got = err })
	eng.Run()
	if !errors.Is(got, ErrNoServer) {
		t.Fatalf("no-server request: %v", got)
	}
	if s.Dropped() != 1 {
		t.Fatalf("Dropped = %d", s.Dropped())
	}
}

func TestLifecycle(t *testing.T) {
	eng, s := newSwitch(t)
	if err := s.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	if s.Addr() != "sw:80" {
		t.Fatalf("Addr = %q", s.Addr())
	}
	s.Stop()
	if s.Running() {
		t.Fatal("running after stop")
	}
	var got error
	s.HandleHTTP(&legacy.WebRequest{}, func(err error) { got = err })
	eng.Run()
	if !errors.Is(got, ErrNotRunning) {
		t.Fatalf("stopped switch request: %v", got)
	}
	s.Stop()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if s.Forwarded() != 0 {
		t.Fatalf("Forwarded = %d", s.Forwarded())
	}
}

func TestErrorPropagation(t *testing.T) {
	eng, s := newSwitch(t)
	bad := &fakeServer{eng: eng, delay: 0.001, err: errors.New("down")}
	if err := s.AddServer("bad", bad, 1); err != nil {
		t.Fatal(err)
	}
	var got error
	s.HandleHTTP(&legacy.WebRequest{}, func(err error) { got = err })
	eng.Run()
	if got == nil || got.Error() != "down" {
		t.Fatalf("error not propagated: %v", got)
	}
}

func TestSwitchNodeFailure(t *testing.T) {
	eng, s := newSwitch(t)
	a := &fakeServer{eng: eng, delay: 0.001}
	if err := s.AddServer("a", a, 1); err != nil {
		t.Fatal(err)
	}
	var got error
	s.HandleHTTP(&legacy.WebRequest{}, func(err error) { got = err })
	s.Node().Fail()
	eng.Run()
	if got == nil {
		t.Fatal("request on failed switch node succeeded")
	}
}
