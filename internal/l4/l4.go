// Package l4 simulates the L4 switch the paper places in front of the
// replicated Apache web tier (Fig. 2): a connection-level balancer doing
// weighted round-robin across real servers, with no application
// awareness. Unlike PLB it supports per-server weights, matching link-level
// load-balancing hardware.
package l4

import (
	"errors"
	"fmt"
	"sort"

	"jade/internal/cluster"
	"jade/internal/legacy"
	"jade/internal/obs"
	"jade/internal/sim"
	"jade/internal/trace"
)

// Errors returned by the switch.
var (
	ErrNoServer      = errors.New("l4: no real server available")
	ErrServerExists  = errors.New("l4: server already registered")
	ErrUnknownServer = errors.New("l4: unknown server")
	ErrNotRunning    = errors.New("l4: switch not running")
	ErrBadWeight     = errors.New("l4: weight must be positive")
)

type realServer struct {
	name    string
	target  legacy.HTTPHandler
	weight  int
	credit  int // remaining slots in the current round
	pending int
	served  uint64
}

// Options tunes the switch.
type Options struct {
	// SwitchCost is the CPU-seconds per forwarded connection on the
	// switch node (hardware switches are effectively free; the small
	// non-zero default keeps the node's utilization meter honest).
	SwitchCost float64
	// Port is the virtual IP's listening port.
	Port int
	// MemoryMB is the switch's footprint on its node while running.
	MemoryMB float64
}

// DefaultOptions mirrors a hardware L4 switch front end.
func DefaultOptions() Options { return Options{SwitchCost: 0.00005, Port: 80, MemoryMB: 8} }

// Switch is the L4 balancer.
type Switch struct {
	eng     *sim.Engine
	net     *legacy.Network
	node    *cluster.Node
	name    string
	opts    Options
	addr    string
	running bool

	servers []*realServer

	forwarded uint64
	dropped   uint64

	// Trace, when set, records real-server membership changes and, for
	// requests carrying a TraceSpan, a "forward" child span naming the
	// chosen server. All Tracer methods are nil-receiver safe.
	Trace *trace.Tracer
	// Obs, when set, records per-request counters and forward latency for
	// the switch instance. Nil-safe like Trace.
	Obs *obs.TierMetrics
}

// New creates a stopped switch on node.
func New(eng *sim.Engine, net *legacy.Network, node *cluster.Node, name string, opts Options) *Switch {
	return &Switch{eng: eng, net: net, node: node, name: name, opts: opts}
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// Node returns the switch's node.
func (s *Switch) Node() *cluster.Node { return s.node }

// Addr returns the virtual address while running.
func (s *Switch) Addr() string { return s.addr }

// Running reports whether the switch is serving.
func (s *Switch) Running() bool { return s.running }

// Forwarded returns the number of connections dispatched.
func (s *Switch) Forwarded() uint64 { return s.forwarded }

// Dropped returns the number of connections rejected.
func (s *Switch) Dropped() uint64 { return s.dropped }

// Start registers the virtual address.
func (s *Switch) Start() error {
	if s.running {
		return fmt.Errorf("l4 %s: already running", s.name)
	}
	if err := s.node.AllocMemory(s.opts.MemoryMB); err != nil {
		return err
	}
	addr := fmt.Sprintf("%s:%d", s.node.Name(), s.opts.Port)
	if err := s.net.Register(addr, s); err != nil {
		s.node.FreeMemory(s.opts.MemoryMB)
		return err
	}
	s.addr = addr
	s.running = true
	return nil
}

// Stop unregisters the virtual address.
func (s *Switch) Stop() {
	if !s.running {
		return
	}
	s.net.Unregister(s.addr)
	s.addr = ""
	s.running = false
	s.node.FreeMemory(s.opts.MemoryMB)
}

// AddServer registers a real server with a positive weight.
func (s *Switch) AddServer(name string, target legacy.HTTPHandler, weight int) error {
	if weight <= 0 {
		return fmt.Errorf("%w: %d for %s", ErrBadWeight, weight, name)
	}
	for _, r := range s.servers {
		if r.name == name {
			return fmt.Errorf("%w: %s", ErrServerExists, name)
		}
	}
	s.servers = append(s.servers, &realServer{name: name, target: target, weight: weight, credit: weight})
	s.Trace.Emit("membership.join", s.name, trace.F("server", name), trace.Fi("weight", weight), trace.Fi("servers", len(s.servers)))
	return nil
}

// RemoveServer unbinds a real server.
func (s *Switch) RemoveServer(name string) error {
	for i, r := range s.servers {
		if r.name == name {
			s.servers = append(s.servers[:i], s.servers[i+1:]...)
			s.Trace.Emit("membership.leave", s.name, trace.F("server", name), trace.Fi("servers", len(s.servers)))
			return nil
		}
	}
	return fmt.Errorf("%w: %s", ErrUnknownServer, name)
}

// Servers returns real-server names sorted.
func (s *Switch) Servers() []string {
	out := make([]string, 0, len(s.servers))
	for _, r := range s.servers {
		out = append(out, r.name)
	}
	sort.Strings(out)
	return out
}

// Pendings returns the in-flight connection count of every real server,
// keyed by server name. Invariant checkers verify the counts never go
// negative.
func (s *Switch) Pendings() map[string]int {
	out := make(map[string]int, len(s.servers))
	for _, r := range s.servers {
		out[r.name] = r.pending
	}
	return out
}

// pick implements weighted round-robin with per-round credits.
func (s *Switch) pick() *realServer {
	if len(s.servers) == 0 {
		return nil
	}
	for pass := 0; pass < 2; pass++ {
		for _, r := range s.servers {
			if r.credit > 0 {
				r.credit--
				return r
			}
		}
		// Round exhausted: refill credits.
		for _, r := range s.servers {
			r.credit = r.weight
		}
	}
	return s.servers[0]
}

// HandleHTTP forwards a connection to a real server.
func (s *Switch) HandleHTTP(req *legacy.WebRequest, done func(error)) {
	if !s.running {
		s.Obs.Drop()
		s.dropped++
		done(fmt.Errorf("%w: %s", ErrNotRunning, s.name))
		return
	}
	if s.Obs != nil {
		start := s.Obs.Begin()
		orig := done
		done = func(err error) {
			s.Obs.End(start, err)
			orig(err)
		}
	}
	s.node.Submit(s.opts.SwitchCost, func() {
		r := s.pick()
		if r == nil {
			s.dropped++
			done(fmt.Errorf("%w (l4 %s)", ErrNoServer, s.name))
			return
		}
		r.pending++
		s.forwarded++
		var span trace.ID
		parent := req.TraceSpan
		if parent != 0 {
			span = s.Trace.Begin(parent, "forward", s.name, trace.F("server", r.name))
			req.TraceSpan = span
		}
		s.net.ForwardHTTP(s.node.Name(), "web", r.target, req, func(err error) {
			r.pending--
			if err == nil {
				r.served++
			}
			if span != 0 {
				req.TraceSpan = parent
				s.Trace.End(span, trace.Outcome(err))
			}
			done(err)
		})
	}, func() {
		s.dropped++
		done(fmt.Errorf("l4 %s: switch node failed", s.name))
	})
}
