// Package l4 simulates the L4 switch the paper places in front of the
// replicated Apache web tier (Fig. 2): a connection-level balancer with
// per-server weights and no application awareness, matching link-level
// load-balancing hardware. Server selection is delegated to the shared
// internal/selector framework (weighted round-robin by default, the
// switch's historic policy).
package l4

import (
	"errors"
	"fmt"

	"jade/internal/cluster"
	"jade/internal/fluid"
	"jade/internal/legacy"
	"jade/internal/obs"
	"jade/internal/selector"
	"jade/internal/sim"
	"jade/internal/trace"
)

// Errors returned by the switch.
var (
	ErrNoServer      = errors.New("l4: no real server available")
	ErrServerExists  = errors.New("l4: server already registered")
	ErrUnknownServer = errors.New("l4: unknown server")
	ErrNotRunning    = errors.New("l4: switch not running")
	ErrBadWeight     = errors.New("l4: weight must be positive")
)

// Options tunes the switch.
type Options struct {
	// Routing configures the server-selection policy and its pool
	// (selector weighted round-robin by default).
	Routing selector.Options
	// SwitchCost is the CPU-seconds per forwarded connection on the
	// switch node (hardware switches are effectively free; the small
	// non-zero default keeps the node's utilization meter honest).
	SwitchCost float64
	// Port is the virtual IP's listening port.
	Port int
	// MemoryMB is the switch's footprint on its node while running.
	MemoryMB float64
}

// DefaultOptions mirrors a hardware L4 switch front end.
func DefaultOptions() Options {
	return Options{
		Routing:    selector.DefaultOptions(selector.WeightedRoundRobin),
		SwitchCost: 0.00005,
		Port:       80,
		MemoryMB:   8,
	}
}

// Switch is the L4 balancer.
type Switch struct {
	eng     *sim.Engine
	net     *legacy.Network
	node    *cluster.Node
	name    string
	opts    Options
	addr    string
	running bool

	pool    *selector.Pool
	targets map[string]legacy.HTTPHandler

	forwarded uint64
	dropped   uint64

	// Trace, when set, records real-server membership changes and, for
	// requests carrying a TraceSpan, a "forward" child span naming the
	// chosen server. All Tracer methods are nil-receiver safe.
	Trace *trace.Tracer
	// Obs, when set, records per-request counters and forward latency for
	// the switch instance. Nil-safe like Trace.
	Obs *obs.TierMetrics
}

// New creates a stopped switch on node.
func New(eng *sim.Engine, net *legacy.Network, node *cluster.Node, name string, opts Options) *Switch {
	ropts := opts.Routing
	ropts.Now = eng.Now
	return &Switch{
		eng:     eng,
		net:     net,
		node:    node,
		name:    name,
		opts:    opts,
		pool:    selector.New(ropts),
		targets: make(map[string]legacy.HTTPHandler),
	}
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// Node returns the switch's node.
func (s *Switch) Node() *cluster.Node { return s.node }

// Addr returns the virtual address while running.
func (s *Switch) Addr() string { return s.addr }

// Running reports whether the switch is serving.
func (s *Switch) Running() bool { return s.running }

// Forwarded returns the number of connections dispatched.
func (s *Switch) Forwarded() uint64 { return s.forwarded }

// Dropped returns the number of connections rejected.
func (s *Switch) Dropped() uint64 { return s.dropped }

// Pool exposes the server pool (suspicion feeding, introspection).
func (s *Switch) Pool() *selector.Pool { return s.pool }

// FluidModel exposes the switch's service model to the fluid workload
// network: every forwarded connection costs SwitchCost CPU-seconds on
// the switch node, so as a fluid station the switch saturates at
// μ = C/SwitchCost connections per second.
func (s *Switch) FluidModel() fluid.ServiceModel {
	return fluid.ServiceModel{
		Name:        s.name,
		Node:        s.node,
		CostPerUnit: s.opts.SwitchCost,
		Up:          func() bool { return s.running },
	}
}

// Start registers the virtual address.
func (s *Switch) Start() error {
	if s.running {
		return fmt.Errorf("l4 %s: already running", s.name)
	}
	if err := s.node.AllocMemory(s.opts.MemoryMB); err != nil {
		return err
	}
	addr := fmt.Sprintf("%s:%d", s.node.Name(), s.opts.Port)
	if err := s.net.Register(addr, s); err != nil {
		s.node.FreeMemory(s.opts.MemoryMB)
		return err
	}
	s.addr = addr
	s.running = true
	return nil
}

// Stop unregisters the virtual address.
func (s *Switch) Stop() {
	if !s.running {
		return
	}
	s.net.Unregister(s.addr)
	s.addr = ""
	s.running = false
	s.node.FreeMemory(s.opts.MemoryMB)
}

// AddServer registers a real server with a positive weight.
func (s *Switch) AddServer(name string, target legacy.HTTPHandler, weight int) error {
	if weight <= 0 {
		return fmt.Errorf("%w: %d for %s", ErrBadWeight, weight, name)
	}
	if err := s.pool.Add(name, weight); err != nil {
		return fmt.Errorf("%w: %s", ErrServerExists, name)
	}
	s.targets[name] = target
	s.Trace.Emit("membership.join", s.name, trace.F("server", name), trace.Fi("weight", weight), trace.Fi("servers", s.pool.Len()))
	return nil
}

// RemoveServer unbinds a real server.
func (s *Switch) RemoveServer(name string) error {
	if err := s.pool.Remove(name); err != nil {
		return fmt.Errorf("%w: %s", ErrUnknownServer, name)
	}
	delete(s.targets, name)
	s.Trace.Emit("membership.leave", s.name, trace.F("server", name), trace.Fi("servers", s.pool.Len()))
	return nil
}

// Servers returns real-server names sorted.
func (s *Switch) Servers() []string { return s.pool.Names() }

// Pendings returns the in-flight connection count of every real server,
// keyed by server name. Invariant checkers verify the counts never go
// negative.
func (s *Switch) Pendings() map[string]int { return s.pool.Pendings() }

// HandleHTTP forwards a connection to a real server.
func (s *Switch) HandleHTTP(req *legacy.WebRequest, done func(error)) {
	if !s.running {
		s.Obs.Drop()
		s.dropped++
		done(fmt.Errorf("%w: %s", ErrNotRunning, s.name))
		return
	}
	if s.Obs != nil {
		start := s.Obs.Begin()
		orig := done
		done = func(err error) {
			s.Obs.End(start, err)
			orig(err)
		}
	}
	// The forward span opens before the switch node's run queue so it
	// covers local queue wait + service; "busy" records that local
	// interval and "svc" the ideal service time, letting the attribution
	// walker split the span's self-time into queue/service/network.
	var span trace.ID
	parent := req.TraceSpan
	submitted := s.eng.Now()
	if parent != 0 {
		span = s.Trace.Begin(parent, "forward", s.name)
		req.TraceSpan = span
	}
	endSpan := func(err error, busy float64, server string) {
		if span == 0 {
			return
		}
		req.TraceSpan = parent
		fields := []trace.Field{
			trace.Ff("busy", busy),
			trace.Ff("svc", s.opts.SwitchCost/s.node.Config().CPUCapacity),
			trace.Outcome(err),
		}
		if server != "" {
			fields = append(fields, trace.F("server", server))
		}
		s.Trace.End(span, fields...)
	}
	s.node.Submit(s.opts.SwitchCost, func() {
		busy := s.eng.Now() - submitted
		name, ok := s.pool.Pick(req.SessionKey)
		if !ok {
			s.dropped++
			err := fmt.Errorf("%w (l4 %s)", ErrNoServer, s.name)
			endSpan(err, busy, "")
			done(err)
			return
		}
		target := s.targets[name]
		s.pool.Acquire(name)
		s.forwarded++
		start := s.eng.Now()
		s.net.ForwardHTTP(s.node.Name(), "web", target, req, func(err error) {
			s.pool.Release(name, s.eng.Now()-start, err != nil)
			endSpan(err, busy, name)
			done(err)
		})
	}, func() {
		s.dropped++
		err := fmt.Errorf("l4 %s: switch node failed", s.name)
		endSpan(err, s.eng.Now()-submitted, "")
		done(err)
	})
}
