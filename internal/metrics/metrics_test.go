package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("cpu")
	if s.Len() != 0 || s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Fatal("empty series should report zeros")
	}
	s.Add(0, 1)
	s.Add(1, 3)
	s.Add(2, 2)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !almost(s.Mean(), 2) {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Max() != 3 || s.Min() != 1 {
		t.Fatalf("Max/Min = %v/%v", s.Max(), s.Min())
	}
	if got := s.Last(); got.T != 2 || got.V != 2 {
		t.Fatalf("Last = %+v", got)
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	s := NewSeries("x")
	s.Add(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	s.Add(4, 1)
}

func TestSeriesAtStepInterpolation(t *testing.T) {
	s := NewSeries("r")
	s.Add(10, 1)
	s.Add(20, 2)
	s.Add(30, 3)
	cases := []struct{ t, want float64 }{
		{5, 0}, {10, 1}, {15, 1}, {20, 2}, {29.9, 2}, {30, 3}, {100, 3},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestSeriesMeanBetween(t *testing.T) {
	s := NewSeries("m")
	for i := 0; i <= 10; i++ {
		s.Add(float64(i), float64(i))
	}
	if got := s.MeanBetween(3, 5); !almost(got, 4) {
		t.Fatalf("MeanBetween(3,5) = %v", got)
	}
	if got := s.MeanBetween(100, 200); got != 0 {
		t.Fatalf("MeanBetween on empty range = %v", got)
	}
}

func TestSeriesResample(t *testing.T) {
	s := NewSeries("r")
	s.Add(0, 1)
	s.Add(10, 5)
	pts := s.Resample(0, 20, 5)
	want := []float64{1, 1, 5, 5, 5}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for i, p := range pts {
		if p.V != want[i] {
			t.Fatalf("resample[%d] = %v, want %v", i, p.V, want[i])
		}
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("latency")
	s.Add(1, 2)
	csv := s.CSV()
	if !strings.HasPrefix(csv, "time,latency\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "1.000,2.000000") {
		t.Fatalf("csv body wrong: %q", csv)
	}
}

func TestMovingAverageWindow(t *testing.T) {
	m := NewMovingAverage(10)
	if m.Avg() != 0 || m.Count() != 0 || m.Full() {
		t.Fatal("empty moving average should be zero and not full")
	}
	for i := 0; i <= 20; i++ {
		m.Push(float64(i), float64(i))
	}
	// Window is [10, 20]: samples 10..20.
	if m.Count() != 11 {
		t.Fatalf("Count = %d, want 11", m.Count())
	}
	if !almost(m.Avg(), 15) {
		t.Fatalf("Avg = %v, want 15", m.Avg())
	}
	if !m.Full() {
		t.Fatal("window spanning its whole duration should be Full")
	}
}

func TestMovingAverageSmoothsSpike(t *testing.T) {
	m := NewMovingAverage(60)
	for i := 0; i < 60; i++ {
		m.Push(float64(i), 0.2)
	}
	m.Push(60, 1.0) // single spike
	if m.Avg() > 0.25 {
		t.Fatalf("one spike moved a 60s average to %v", m.Avg())
	}
}

func TestMovingAveragePanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMovingAverage(0) did not panic")
		}
	}()
	NewMovingAverage(0)
}

func TestUtilizationMeterIntegration(t *testing.T) {
	var u UtilizationMeter
	u.SetBusy(0, 1) // busy from t=0
	u.SetBusy(5, 0) // idle from t=5
	got := u.Read(10)
	if !almost(got, 0.5) {
		t.Fatalf("Read(10) = %v, want 0.5", got)
	}
	// Second interval [10, 20]: fully idle.
	if got := u.Read(20); !almost(got, 0) {
		t.Fatalf("second Read = %v, want 0", got)
	}
	u.SetBusy(20, 0.5)
	if got := u.Read(30); !almost(got, 0.5) {
		t.Fatalf("fractional busy Read = %v, want 0.5", got)
	}
	if !almost(u.Total(30), 10) {
		t.Fatalf("Total = %v, want 10", u.Total(30))
	}
}

func TestUtilizationMeterClampsFraction(t *testing.T) {
	var u UtilizationMeter
	u.SetBusy(0, 5)
	if got := u.Read(10); !almost(got, 1) {
		t.Fatalf("clamped Read = %v, want 1", got)
	}
	u.SetBusy(10, -3)
	if got := u.Read(20); !almost(got, 0) {
		t.Fatalf("negative clamped Read = %v, want 0", got)
	}
}

func TestUtilizationMeterZeroDt(t *testing.T) {
	var u UtilizationMeter
	u.SetBusy(5, 0.7)
	u.Read(5) // resets the read origin without time passing
	if got := u.Read(5); !almost(got, 0.7) {
		t.Fatalf("zero-dt Read = %v, want current busy 0.7", got)
	}
}

func TestThroughputWindowedRate(t *testing.T) {
	tp := NewThroughput(10)
	for i := 0; i < 20; i++ {
		tp.Observe(float64(i))
	}
	// Window [9.x, 19.x] at now=19.5 holds observations 10..19 → 10 events.
	if got := tp.Rate(19.5); !almost(got, 1.0) {
		t.Fatalf("Rate = %v, want 1.0", got)
	}
	if tp.Total() != 20 {
		t.Fatalf("Total = %d", tp.Total())
	}
}

func TestSpatialMean(t *testing.T) {
	if SpatialMean(nil) != 0 {
		t.Fatal("SpatialMean(nil) != 0")
	}
	if got := SpatialMean([]float64{0.2, 0.4, 0.6}); !almost(got, 0.4) {
		t.Fatalf("SpatialMean = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || !almost(s.Mean, 3) {
		t.Fatalf("Summary = %+v", s)
	}
	if !almost(s.P50, 3) {
		t.Fatalf("P50 = %v", s.P50)
	}
	if got := Summarize(nil); got.Count != 0 {
		t.Fatalf("Summarize(nil) = %+v", got)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
}

// Property: a moving average never exceeds the max nor goes below the min
// of its retained samples, for any monotone sample times.
func TestPropertyMovingAverageBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		m := NewMovingAverage(5)
		t0 := 0.0
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			t0 += float64(r%10) / 10
			v := float64(r) / 255
			m.Push(t0, v)
		}
		if len(raw) == 0 {
			return m.Avg() == 0
		}
		// Recompute bounds over the retained window only.
		for _, p := range m.buf {
			if p.V < lo {
				lo = p.V
			}
			if p.V > hi {
				hi = p.V
			}
		}
		a := m.Avg()
		return a >= lo-1e-12 && a <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize percentiles are ordered and within [Min, Max].
func TestPropertySummaryOrdering(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vs := make([]float64, len(raw))
		for i, r := range raw {
			vs[i] = float64(r)
		}
		s := Summarize(vs)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization read over any probe schedule is within [0,1] for
// busy fractions within [0,1].
func TestPropertyUtilizationBounded(t *testing.T) {
	f := func(raw []uint8) bool {
		var u UtilizationMeter
		now := 0.0
		for i, r := range raw {
			now += float64(r%7) / 3
			if i%2 == 0 {
				u.SetBusy(now, float64(r)/255)
			} else {
				v := u.Read(now)
				if v < -1e-12 || v > 1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Series.At equals the value of the latest sample not after t.
func TestPropertySeriesAt(t *testing.T) {
	f := func(raw []uint8, probe uint8) bool {
		s := NewSeries("p")
		now := 0.0
		var pts []Point
		for _, r := range raw {
			now += float64(r % 5)
			s.Add(now, float64(r))
			pts = append(pts, Point{now, float64(r)})
		}
		q := float64(probe)
		want := 0.0
		for _, p := range pts {
			if p.T <= q {
				want = p.V
			}
		}
		return s.At(q) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewThroughput(-1) did not panic")
		}
	}()
	NewThroughput(-1)
}

func TestResamplePanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Resample(step=0) did not panic")
		}
	}()
	NewSeries("x").Resample(0, 1, 0)
}

func TestPercentileSortedInput(t *testing.T) {
	// Document that Percentile requires sorted input; Summarize sorts.
	vs := []float64{5, 1, 9, 3}
	sort.Float64s(vs)
	if got := Percentile(vs, 0.5); !almost(got, 4) {
		t.Fatalf("median = %v, want 4", got)
	}
}

func TestResampleNoFloatDrift(t *testing.T) {
	// Regression: accumulating t += step drifts by one ulp per iteration,
	// so long resamples with a fractional step dropped the final sample
	// and reported off-grid timestamps. Index-based stepping is exact.
	s := NewSeries("d")
	s.Add(0, 1)
	pts := s.Resample(0, 50, 0.1)
	if want := 501; len(pts) != want {
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	for i, p := range pts {
		if want := float64(i) * 0.1; p.T != want {
			t.Fatalf("resample[%d].T = %.17g, want exactly %.17g", i, p.T, want)
		}
	}
	if last := pts[len(pts)-1].T; last != 50 {
		t.Fatalf("final sample at %.17g, want exactly 50", last)
	}
}

func TestThroughputRateBounds(t *testing.T) {
	tp := NewThroughput(10)
	for i := 0; i < 20; i++ {
		tp.Observe(float64(i))
	}
	// now beyond every observation: window [15, 25] holds 15..19.
	if got := tp.Rate(25); !almost(got, 0.5) {
		t.Fatalf("Rate(25) = %v, want 0.5", got)
	}
	// now before the retained observations: nothing in [-10, 0] after
	// Observe trimmed everything below 9.
	if got := tp.Rate(0); got != 0 {
		t.Fatalf("Rate(0) = %v, want 0", got)
	}
	if got := NewThroughput(10).Rate(5); got != 0 {
		t.Fatalf("empty Rate = %v, want 0", got)
	}
}

// Property: the binary-search Rate matches a brute-force linear count.
func TestPropertyThroughputRateMatchesLinear(t *testing.T) {
	f := func(raw []uint8, probe uint8) bool {
		tp := NewThroughput(5)
		now := 0.0
		var kept []float64
		for _, r := range raw {
			now += float64(r%7) / 3
			tp.Observe(now)
		}
		kept = append(kept, tp.times[tp.head:]...)
		q := float64(probe) / 4
		n := 0
		for _, tt := range kept {
			if tt >= q-tp.Window && tt <= q {
				n++
			}
		}
		return almost(tp.Rate(q), float64(n)/tp.Window)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkThroughputRate(b *testing.B) {
	tp := NewThroughput(10000)
	for i := 0; i < 100000; i++ {
		tp.Observe(float64(i) / 10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.Rate(10000)
	}
}

func BenchmarkMovingAveragePush(b *testing.B) {
	m := NewMovingAverage(60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Push(float64(i), 0.5)
	}
}
