// Package metrics provides the measurement primitives used by Jade's
// sensors and by the experiment harness: time series, temporal (moving)
// averages, spatial averages, utilization integrators, throughput windows
// and percentile summaries.
//
// All types operate on the simulation's virtual clock (float64 seconds)
// and are deliberately single-threaded: the discrete-event engine executes
// one event at a time, so no locking is needed.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Point is one (time, value) sample.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample. Samples must arrive in non-decreasing time order;
// out-of-order samples panic, since they indicate a simulation bug.
func (s *Series) Add(t, v float64) {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		panic(fmt.Sprintf("metrics: series %q sample at %.6f after %.6f", s.Name, t, s.Points[n-1].T))
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Last returns the most recent sample, or a zero Point if empty.
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// Mean returns the arithmetic mean of the values, or 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// MeanBetween returns the mean of samples with t0 <= T <= t1.
func (s *Series) MeanBetween(t0, t1 float64) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.T >= t0 && p.T <= t1 {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Max returns the maximum value, or 0 if empty.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Min returns the minimum value, or 0 if empty.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, p := range s.Points {
		if p.V < m {
			m = p.V
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// At returns the value in effect at time t: the last sample with T <= t.
// It returns 0 before the first sample.
func (s *Series) At(t float64) float64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.Points[i-1].V
}

// Resample returns the series values at a fixed step over [t0, t1], using
// step-function interpolation (the value in effect at each instant).
func (s *Series) Resample(t0, t1, step float64) []Point {
	if step <= 0 {
		panic("metrics: Resample with non-positive step")
	}
	// Index-based stepping: accumulating t += step drifts by one ulp per
	// iteration, which over long ramps drops or duplicates the final sample.
	var out []Point
	for i := 0; ; i++ {
		t := t0 + float64(i)*step
		if t > t1+1e-9 {
			break
		}
		out = append(out, Point{T: t, V: s.At(t)})
	}
	return out
}

// CSV renders the series as "t,v" lines with a header. Points are
// formatted with strconv.AppendFloat into one reused buffer rather than
// per-point fmt calls; the output is byte-identical to the old
// "%.3f,%.6f" formatting.
func (s *Series) CSV() string {
	buf := make([]byte, 0, 6+len(s.Name)+22*len(s.Points))
	buf = append(buf, "time,"...)
	buf = append(buf, s.Name...)
	buf = append(buf, '\n')
	for _, p := range s.Points {
		buf = strconv.AppendFloat(buf, p.T, 'f', 3, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, p.V, 'f', 6, 64)
		buf = append(buf, '\n')
	}
	return string(buf)
}

// MovingAverage computes a temporal moving average over a sliding window of
// the last Window seconds, as used by the paper's CPU sensors (60 s for the
// application tier, 90 s for the database tier).
type MovingAverage struct {
	Window float64
	buf    []Point // buf[head:] are the retained samples, oldest first
	head   int     // index of the oldest retained sample
}

// NewMovingAverage returns a moving average over the given window (seconds).
func NewMovingAverage(window float64) *MovingAverage {
	if window <= 0 {
		panic("metrics: moving average window must be positive")
	}
	return &MovingAverage{Window: window}
}

// Push records a sample at time t.
func (m *MovingAverage) Push(t, v float64) {
	m.buf = append(m.buf, Point{T: t, V: v})
	m.trim(t)
}

// trim expires samples older than the window by advancing the head index
// (no per-push copying); the buffer is compacted only once the dead
// prefix dominates, so each sample is moved at most once in its lifetime
// and trimming stays amortized O(1).
func (m *MovingAverage) trim(now float64) {
	h := m.head
	for h < len(m.buf) && m.buf[h].T < now-m.Window {
		h++
	}
	m.head = h
	if h > 64 && h*2 >= len(m.buf) {
		n := copy(m.buf, m.buf[h:])
		m.buf = m.buf[:n]
		m.head = 0
	}
}

// Avg returns the average of samples within the window ending at the most
// recent sample. It returns 0 when no samples are retained.
func (m *MovingAverage) Avg() float64 {
	live := m.buf[m.head:]
	if len(live) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range live {
		sum += p.V
	}
	return sum / float64(len(live))
}

// Count returns the number of samples currently inside the window.
func (m *MovingAverage) Count() int { return len(m.buf) - m.head }

// Full reports whether the window has been populated for at least its
// whole duration (i.e. the oldest retained sample is ~Window old).
func (m *MovingAverage) Full() bool {
	live := m.buf[m.head:]
	if len(live) < 2 {
		return false
	}
	return live[len(live)-1].T-live[0].T >= m.Window*0.9
}

// SpatialMean averages a snapshot across nodes (the paper's "spatial
// average" over all nodes hosting a replicated server). Empty input
// yields 0.
func SpatialMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// UtilizationMeter integrates a busy fraction over virtual time and
// reports the mean utilization between probe reads. Nodes use one to
// expose CPU usage to sensors.
type UtilizationMeter struct {
	lastT     float64
	busyAccum float64 // integral of busy fraction dt since construction
	busy      float64 // current busy fraction in [0,1]
	readT     float64
	readAccum float64
}

// SetBusy updates the current busy fraction at time now. The previous
// fraction is integrated over [lastT, now] first.
func (u *UtilizationMeter) SetBusy(now, fraction float64) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	u.advance(now)
	u.busy = fraction
}

func (u *UtilizationMeter) advance(now float64) {
	if now > u.lastT {
		u.busyAccum += (now - u.lastT) * u.busy
		u.lastT = now
	}
}

// Read returns the mean utilization since the previous Read (or since
// construction for the first call).
func (u *UtilizationMeter) Read(now float64) float64 {
	u.advance(now)
	dt := now - u.readT
	if dt <= 0 {
		return u.busy
	}
	v := (u.busyAccum - u.readAccum) / dt
	u.readT = now
	u.readAccum = u.busyAccum
	return v
}

// Total returns the integral of the busy fraction since construction.
func (u *UtilizationMeter) Total(now float64) float64 {
	u.advance(now)
	return u.busyAccum
}

// Throughput counts completions and reports a windowed rate.
type Throughput struct {
	Window float64
	times  []float64 // times[head:] retained, ascending
	head   int
	total  uint64
}

// NewThroughput returns a throughput meter with the given window (seconds).
func NewThroughput(window float64) *Throughput {
	if window <= 0 {
		panic("metrics: throughput window must be positive")
	}
	return &Throughput{Window: window}
}

// Observe records one completion at time t. Expiry advances a head index
// and compacts only when the dead prefix dominates, the same amortized
// O(1) scheme as MovingAverage.trim.
func (tp *Throughput) Observe(t float64) {
	tp.total++
	tp.times = append(tp.times, t)
	h := tp.head
	for h < len(tp.times) && tp.times[h] < t-tp.Window {
		h++
	}
	tp.head = h
	if h > 64 && h*2 >= len(tp.times) {
		n := copy(tp.times, tp.times[h:])
		tp.times = tp.times[:n]
		tp.head = 0
	}
}

// Rate returns completions per second over the window ending at now.
// Retained times are ascending (Observe appends monotonically), so both
// window bounds are binary searches.
func (tp *Throughput) Rate(now float64) float64 {
	live := tp.times[tp.head:]
	lo := sort.SearchFloat64s(live, now-tp.Window)
	hi := sort.Search(len(live), func(i int) bool { return live[i] > now })
	n := hi - lo
	if n < 0 {
		n = 0
	}
	return float64(n) / tp.Window
}

// Total returns the total number of completions observed.
func (tp *Throughput) Total() uint64 { return tp.total }

// Summary holds order statistics of a sample set.
type Summary struct {
	Count          int
	Mean, Min, Max float64
	P50, P90, P99  float64
}

// Summarize computes a Summary; it copies and sorts the input. Empty
// input yields the zero Summary (all fields 0).
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	c := append([]float64(nil), vs...)
	sort.Float64s(c)
	sum := 0.0
	for _, v := range c {
		sum += v
	}
	return Summary{
		Count: len(c),
		Mean:  sum / float64(len(c)),
		Min:   c[0],
		Max:   c[len(c)-1],
		P50:   Percentile(c, 0.50),
		P90:   Percentile(c, 0.90),
		P99:   Percentile(c, 0.99),
	}
}

// Percentile returns the p-quantile (0 <= p <= 1) of a sorted sample
// using linear interpolation between the two closest ranks (the same
// convention as numpy's default): the quantile position is
// p*(len-1), and a fractional position blends the two neighboring
// samples. p <= 0 yields the minimum, p >= 1 the maximum, and an empty
// slice yields 0.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
