package metrics

import (
	"math"
	"testing"
)

// TestMovingAverageEdges is the table of window edge cases: empty window,
// single sample, samples exactly spanning the window, samples falling off
// the window boundary, and zero-length input never yielding NaN.
func TestMovingAverageEdges(t *testing.T) {
	type sample struct{ t, v float64 }
	cases := []struct {
		name      string
		window    float64
		samples   []sample
		wantAvg   float64
		wantCount int
		wantFull  bool
	}{
		{
			name:      "empty window",
			window:    60,
			samples:   nil,
			wantAvg:   0,
			wantCount: 0,
			wantFull:  false,
		},
		{
			name:      "single sample",
			window:    60,
			samples:   []sample{{10, 42}},
			wantAvg:   42,
			wantCount: 1,
			wantFull:  false,
		},
		{
			name:      "two samples inside window",
			window:    60,
			samples:   []sample{{0, 10}, {30, 30}},
			wantAvg:   20,
			wantCount: 2,
			wantFull:  false,
		},
		{
			name:      "window equal to sample span",
			window:    60,
			samples:   []sample{{0, 10}, {30, 20}, {60, 30}},
			wantAvg:   20,
			wantCount: 3,
			wantFull:  true,
		},
		{
			name:      "oldest sample exactly at the cutoff stays",
			window:    60,
			samples:   []sample{{0, 100}, {60, 0}},
			wantAvg:   50,
			wantCount: 2,
			wantFull:  true,
		},
		{
			name:      "old samples fall off",
			window:    60,
			samples:   []sample{{0, 1000}, {1, 1000}, {100, 10}, {110, 20}},
			wantAvg:   15,
			wantCount: 2,
			wantFull:  false,
		},
		{
			name:      "constant input stays constant",
			window:    10,
			samples:   []sample{{0, 7}, {5, 7}, {10, 7}, {15, 7}, {20, 7}},
			wantAvg:   7,
			wantCount: 3,
			wantFull:  true,
		},
		{
			name:      "zero values average to zero, not NaN",
			window:    60,
			samples:   []sample{{0, 0}, {1, 0}},
			wantAvg:   0,
			wantCount: 2,
			wantFull:  false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMovingAverage(tc.window)
			for _, s := range tc.samples {
				m.Push(s.t, s.v)
			}
			if got := m.Avg(); math.IsNaN(got) {
				t.Fatalf("Avg() is NaN")
			} else if math.Abs(got-tc.wantAvg) > 1e-12 {
				t.Fatalf("Avg() = %v, want %v", got, tc.wantAvg)
			}
			if got := m.Count(); got != tc.wantCount {
				t.Fatalf("Count() = %d, want %d", got, tc.wantCount)
			}
			if got := m.Full(); got != tc.wantFull {
				t.Fatalf("Full() = %v, want %v", got, tc.wantFull)
			}
		})
	}
}

func TestMovingAverageRejectsBadWindow(t *testing.T) {
	for _, w := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("window %v: no panic", w)
				}
			}()
			NewMovingAverage(w)
		}()
	}
}

func TestSpatialMeanEmptyIsZero(t *testing.T) {
	if v := SpatialMean(nil); v != 0 || math.IsNaN(v) {
		t.Fatalf("SpatialMean(nil) = %v, want 0", v)
	}
	if v := SpatialMean([]float64{3, 5}); v != 4 {
		t.Fatalf("SpatialMean = %v, want 4", v)
	}
}

func TestSummarizeAndPercentileEdges(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || math.IsNaN(s.Mean) {
		t.Fatalf("Summarize(nil) = %+v, want zero value", s)
	}
	one := Summarize([]float64{5})
	if one.Count != 1 || one.Mean != 5 || one.Min != 5 || one.Max != 5 || one.P99 != 5 {
		t.Fatalf("Summarize([5]) = %+v", one)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("Percentile(nil) = %v, want 0", got)
	}
	sorted := []float64{1, 2, 3, 4}
	if got := Percentile(sorted, -0.1); got != 1 {
		t.Fatalf("Percentile(p<0) = %v, want first", got)
	}
	if got := Percentile(sorted, 1.5); got != 4 {
		t.Fatalf("Percentile(p>1) = %v, want last", got)
	}
	if got := Percentile(sorted, 0.5); got != 2.5 {
		t.Fatalf("Percentile(0.5) = %v, want 2.5", got)
	}
}

func TestPercentileSingleAndDuplicates(t *testing.T) {
	// A single sample is every quantile.
	one := []float64{7}
	for _, p := range []float64{0, 0.5, 1} {
		if got := Percentile(one, p); got != 7 {
			t.Fatalf("Percentile([7], %v) = %v, want 7", p, got)
		}
	}
	// Duplicates: the interpolated quantile stays on the plateau until
	// the position crosses into the outlier.
	dup := []float64{2, 2, 2, 2, 5}
	if got := Percentile(dup, 0); got != 2 {
		t.Fatalf("Percentile(dup, 0) = %v, want 2", got)
	}
	if got := Percentile(dup, 0.75); got != 2 { // position 3, on the plateau
		t.Fatalf("Percentile(dup, 0.75) = %v, want 2", got)
	}
	if got := Percentile(dup, 0.9); math.Abs(got-3.8) > 1e-12 { // position 3.6 blends 2 and 5
		t.Fatalf("Percentile(dup, 0.9) = %v, want 3.8", got)
	}
	if got := Percentile(dup, 1); got != 5 {
		t.Fatalf("Percentile(dup, 1) = %v, want 5", got)
	}
}

func TestThroughputWindowEdges(t *testing.T) {
	tp := NewThroughput(10)
	if r := tp.Rate(0); r != 0 || math.IsNaN(r) {
		t.Fatalf("empty Rate = %v, want 0", r)
	}
	tp.Observe(1)
	tp.Observe(2)
	tp.Observe(3)
	if r := tp.Rate(3); math.Abs(r-0.3) > 1e-12 {
		t.Fatalf("Rate(3) = %v, want 0.3", r)
	}
	// Far in the future, everything has left the window.
	if r := tp.Rate(1000); r != 0 {
		t.Fatalf("Rate(1000) = %v, want 0", r)
	}
	if tp.Total() != 3 {
		t.Fatalf("Total = %d, want 3", tp.Total())
	}
}
