package invariant

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"jade/internal/cjdbc"
	"jade/internal/cluster"
	"jade/internal/config"
	"jade/internal/fractal"
	"jade/internal/l4"
	"jade/internal/legacy"
	"jade/internal/sim"
)

// stubChecker violates after a configurable virtual time.
type stubChecker struct {
	name    string
	failAt  float64
	evalled int
}

func (s *stubChecker) Name() string { return s.name }
func (s *stubChecker) Check(now float64, boundary bool) error {
	s.evalled++
	if s.failAt > 0 && now >= s.failAt {
		return fmt.Errorf("stub violation at %.0f", now)
	}
	return nil
}

func TestHarnessTicksAndBoundaries(t *testing.T) {
	eng := sim.NewEngine(1)
	h := NewHarness(eng)
	c := &stubChecker{name: "stub"}
	h.Register(c)
	h.Start()
	h.CheckNow("deploy:test")
	eng.RunUntil(10)
	h.Stop()
	if h.Violation() != nil {
		t.Fatalf("unexpected violation: %v", h.Violation())
	}
	if h.Boundaries() != 1 {
		t.Fatalf("boundaries = %d, want 1", h.Boundaries())
	}
	// 1 boundary + ticks at 1..10.
	if c.evalled < 10 {
		t.Fatalf("checker evaluated %d times, want >= 10", c.evalled)
	}
	if h.Checks() != uint64(c.evalled) {
		t.Fatalf("Checks() = %d, checker saw %d", h.Checks(), c.evalled)
	}
}

func TestHarnessViolationFreezesEngine(t *testing.T) {
	eng := sim.NewEngine(1)
	h := NewHarness(eng)
	h.Register(&stubChecker{name: "stub", failAt: 3})
	h.Start()
	eng.RunUntil(100)
	v := h.Violation()
	if v == nil {
		t.Fatal("no violation recorded")
	}
	if v.Time != 3 {
		t.Fatalf("violation at t=%v, want 3", v.Time)
	}
	if eng.Now() != 3 {
		t.Fatalf("engine froze at t=%v, want 3 (violation instant)", eng.Now())
	}
	if eng.Err() == nil {
		t.Fatal("engine fault not set")
	}
	// A faulted engine refuses to resume.
	ran := false
	eng.After(1, "post", func() { ran = true })
	eng.RunUntil(200)
	if ran || eng.Now() != 3 {
		t.Fatalf("faulted engine resumed (now=%v ran=%v)", eng.Now(), ran)
	}
}

func TestHarnessContinueOnViolation(t *testing.T) {
	eng := sim.NewEngine(1)
	h := NewHarness(eng)
	h.ContinueOnViolation = true
	h.Register(&stubChecker{name: "stub", failAt: 3})
	h.Start()
	eng.RunUntil(10)
	if eng.Now() != 10 {
		t.Fatalf("engine stopped at %v despite ContinueOnViolation", eng.Now())
	}
	v := h.Violation()
	if v == nil || v.Time != 3 {
		t.Fatalf("first violation = %+v, want t=3", v)
	}
}

func TestNodeConservation(t *testing.T) {
	eng := sim.NewEngine(1)
	pool := cluster.NewPool(eng, "node", 2, cluster.DefaultConfig())
	c := NewNodeConservation(pool)
	if err := c.Check(0, false); err != nil {
		t.Fatalf("fresh pool: %v", err)
	}
	n, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	n.Submit(100, nil, nil)
	eng.RunUntil(1)
	if err := c.Check(1, false); err != nil {
		t.Fatalf("busy node: %v", err)
	}
	// Simulate a buggy actuator writing to a crashed node: memory held on
	// a failed node is a conservation violation.
	n.Fail()
	if err := n.AllocMemory(10); err != nil {
		t.Fatal(err)
	}
	err = c.Check(2, false)
	if err == nil || !strings.Contains(err.Error(), "still holds") {
		t.Fatalf("failed node with memory: err = %v, want 'still holds'", err)
	}
}

func TestLifecycleChecker(t *testing.T) {
	newComp := func(name string, specs ...fractal.ItfSpec) *fractal.Component {
		c, err := fractal.NewPrimitive(name, nil, specs...)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := newComp("a", fractal.ItfSpec{Name: "out", Signature: "svc", Role: fractal.Client})
	b := newComp("b", fractal.ItfSpec{Name: "in", Signature: "svc", Role: fractal.Server})
	if err := a.Bind("out", b.MustInterface("in")); err != nil {
		t.Fatal(err)
	}
	chk := NewLifecycle(a, b)
	// Both stopped: legal.
	if err := chk.Check(0, true); err != nil {
		t.Fatalf("both stopped: %v", err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := chk.Check(1, true); err != nil {
		t.Fatalf("both started: %v", err)
	}
	// Stop the server while the client stays started: illegal.
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	err := chk.Check(2, true)
	if err == nil || !strings.Contains(err.Error(), "STOPPED") {
		t.Fatalf("started->stopped binding: err = %v, want STOPPED violation", err)
	}
}

func TestArbiterLegality(t *testing.T) {
	var log []ArbiterDecisionView
	chk := NewArbiterLegality(120, func() []ArbiterDecisionView { return log })

	// Sizing granted, then recovery preempts inside the window: legal.
	log = append(log, ArbiterDecisionView{T: 10, Priority: 1, Granted: true})
	log = append(log, ArbiterDecisionView{T: 20, Priority: 10, Granted: true})
	if err := chk.Check(20, true); err != nil {
		t.Fatalf("recovery preempting sizing: %v", err)
	}
	// Sizing granted inside recovery's quiet window: illegal.
	log = append(log, ArbiterDecisionView{T: 30, Priority: 1, Granted: true})
	err := chk.Check(30, true)
	if err == nil || !strings.Contains(err.Error(), "quiet window") {
		t.Fatalf("sizing preempting recovery: err = %v, want quiet-window violation", err)
	}
}

func TestArbiterLegalityRespectsRelease(t *testing.T) {
	var log []ArbiterDecisionView
	chk := NewArbiterLegality(120, func() []ArbiterDecisionView { return log })
	log = append(log,
		ArbiterDecisionView{T: 10, Priority: 10, Granted: true},
		ArbiterDecisionView{T: 15, Priority: 10, Granted: true, Released: true},
		ArbiterDecisionView{T: 20, Priority: 1, Granted: true},
	)
	if err := chk.Check(20, true); err != nil {
		t.Fatalf("grant after early release: %v", err)
	}
}

type fakeTier struct {
	name     string
	replicas []string
	busy     bool
}

func (f *fakeTier) TierName() string       { return f.name }
func (f *fakeTier) ReplicaNames() []string { return f.replicas }
func (f *fakeTier) Reconfiguring() bool    { return f.busy }

func TestBalancerAgreement(t *testing.T) {
	tier := &fakeTier{name: "app", replicas: []string{"t1", "t2"}}
	members := []string{"t1", "t2"}
	chk := NewBalancerAgreement("plb/app", func() []string { return members }, tier)

	if err := chk.Check(0, true); err != nil {
		t.Fatalf("matching sets: %v", err)
	}
	// Member that is not a replica: illegal.
	members = []string{"t1", "ghost"}
	if err := chk.Check(1, true); err == nil || !strings.Contains(err.Error(), "not a replica") {
		t.Fatalf("ghost member: err = %v, want 'not a replica'", err)
	}
	// Missing member while quiescent: illegal.
	members = []string{"t1"}
	if err := chk.Check(2, true); err == nil || !strings.Contains(err.Error(), "missing from balancer") {
		t.Fatalf("missing member: err = %v, want 'missing from balancer'", err)
	}
	// Same gap mid-reconfiguration: legal.
	tier.busy = true
	if err := chk.Check(3, true); err != nil {
		t.Fatalf("missing member mid-reconfiguration: %v", err)
	}
	// Balancer down: skipped.
	members = nil
	tier.busy = false
	if err := chk.Check(4, true); err != nil {
		t.Fatalf("balancer down: %v", err)
	}
}

func TestBalancerAgreementNegativePending(t *testing.T) {
	tier := &fakeTier{name: "app", replicas: []string{"t1"}}
	chk := NewBalancerAgreement("plb/app", func() []string { return []string{"t1"} }, tier)
	chk.Pendings = func() map[string]int { return map[string]int{"t1": -1} }
	if err := chk.Check(0, true); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative pending: err = %v, want 'negative'", err)
	}
}

func TestBalancerAgreementFailedNodeGrace(t *testing.T) {
	eng := sim.NewEngine(1)
	pool := cluster.NewPool(eng, "node", 1, cluster.DefaultConfig())
	n, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	tier := &fakeTier{name: "app", replicas: []string{"t1"}}
	chk := NewBalancerAgreement("plb/app", func() []string { return []string{"t1"} }, tier)
	chk.NodeOf = func(string) (*cluster.Node, error) { return n, nil }
	chk.FailedGrace = 100
	n.Fail()
	if err := chk.Check(10, true); err != nil {
		t.Fatalf("within grace: %v", err)
	}
	if err := chk.Check(60, true); err != nil {
		t.Fatalf("still within grace: %v", err)
	}
	if err := chk.Check(111, true); err == nil || !strings.Contains(err.Error(), "failed node") {
		t.Fatalf("past grace: err = %v, want failed-node violation", err)
	}
	// Repair heals the node; the clock resets.
	n.Reboot()
	if err := chk.Check(112, true); err != nil {
		t.Fatalf("healed node: %v", err)
	}
}

// nopHandler is a no-op HTTP target for registering balancer members.
type nopHandler struct{}

func (nopHandler) HandleHTTP(req *legacy.WebRequest, done func(error)) { done(nil) }

// TestBalancerAgreementOverL4Switch drives the checker against a real L4
// switch: its member set must track the replica set exactly like the PLB.
func TestBalancerAgreementOverL4Switch(t *testing.T) {
	eng := sim.NewEngine(1)
	net := legacy.NewNetwork()
	pool := cluster.NewPool(eng, "node", 1, cluster.DefaultConfig())
	n, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	sw := l4.New(eng, net, n, "l4", l4.DefaultOptions())
	if err := sw.Start(); err != nil {
		t.Fatal(err)
	}
	tier := &fakeTier{name: "web", replicas: []string{"apache1", "apache2"}}
	chk := NewBalancerAgreement("l4/web", func() []string {
		if !sw.Running() {
			return nil
		}
		return sw.Servers()
	}, tier)
	chk.Pendings = sw.Pendings

	handler := nopHandler{}
	for _, name := range tier.replicas {
		if err := sw.AddServer(name, handler, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := chk.Check(0, true); err != nil {
		t.Fatalf("matching L4 members: %v", err)
	}
	// A member the actuator does not know about is a violation.
	if err := sw.AddServer("rogue", handler, 1); err != nil {
		t.Fatal(err)
	}
	if err := chk.Check(1, true); err == nil || !strings.Contains(err.Error(), "not a replica") {
		t.Fatalf("rogue L4 member: err = %v, want 'not a replica'", err)
	}
	if err := sw.RemoveServer("rogue"); err != nil {
		t.Fatal(err)
	}
	// A replica silently dropped from the switch is a violation too.
	if err := sw.RemoveServer("apache2"); err != nil {
		t.Fatal(err)
	}
	if err := chk.Check(2, true); err == nil || !strings.Contains(err.Error(), "missing from balancer") {
		t.Fatalf("dropped L4 member: err = %v, want 'missing from balancer'", err)
	}
	// A stopped switch is skipped entirely.
	sw.Stop()
	if err := chk.Check(3, true); err != nil {
		t.Fatalf("stopped switch: %v", err)
	}
}

// cjdbcRig builds a controller with two active MySQL backends.
type cjdbcRig struct {
	eng *sim.Engine
	env *legacy.Env
	ctl *cjdbc.Controller
	dbs map[string]*legacy.MySQL
}

func newCJDBCRig(t *testing.T) *cjdbcRig {
	t.Helper()
	eng := sim.NewEngine(11)
	env := &legacy.Env{Eng: eng, Net: legacy.NewNetwork(), FS: config.NewMemFS()}
	pool := cluster.NewPool(eng, "node", 4, cluster.DefaultConfig())
	cn, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	ctl := cjdbc.New(eng, env.Net, cn, "cjdbc", cjdbc.DefaultOptions())
	if err := ctl.Start(); err != nil {
		t.Fatal(err)
	}
	r := &cjdbcRig{eng: eng, env: env, ctl: ctl, dbs: map[string]*legacy.MySQL{}}
	for _, name := range []string{"mysql1", "mysql2"} {
		n, err := pool.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		m := legacy.NewMySQL(env, name, n, legacy.DefaultMySQLOptions())
		cnf := config.NewMyCnf()
		cnf.SetInt("mysqld", "port", 3306)
		if err := env.FS.WriteFile(m.ConfPath(), []byte(cnf.Render())); err != nil {
			t.Fatal(err)
		}
		started := errors.New("pending")
		m.Start(func(err error) { started = err })
		eng.Run()
		if started != nil {
			t.Fatal(started)
		}
		joined := errors.New("pending")
		if err := ctl.Join(name, m, func(err error) { joined = err }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if joined != nil {
			t.Fatal(joined)
		}
		r.dbs[name] = m
	}
	return r
}

func (r *cjdbcRig) exec(t *testing.T, sql string) {
	t.Helper()
	done := errors.New("pending")
	r.ctl.ExecSQL(legacy.Query{SQL: sql}, func(err error) { done = err })
	r.eng.Run()
	if done != nil {
		t.Fatalf("%s: %v", sql, done)
	}
}

func TestCJDBCConsistencyChecker(t *testing.T) {
	r := newCJDBCRig(t)
	chk := NewCJDBCConsistency("cjdbc", func() *cjdbc.Controller { return r.ctl })
	r.exec(t, "CREATE TABLE items (id INT, qty INT)")
	r.exec(t, "INSERT INTO items (id, qty) VALUES (1, 10)")
	if err := chk.Check(r.eng.Now(), true); err != nil {
		t.Fatalf("replicated writes: %v", err)
	}
	r.exec(t, "UPDATE items SET qty = 20 WHERE id = 1")
	if err := chk.Check(r.eng.Now(), true); err != nil {
		t.Fatalf("after update: %v", err)
	}
	// Corrupt one backend directly, bypassing the controller's write
	// broadcast: same applied index, different state.
	if _, err := r.dbs["mysql2"].DB().Exec("UPDATE items SET qty = 999 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	err := chk.Check(r.eng.Now()+1, true)
	if err == nil || !strings.Contains(err.Error(), "state divergence") {
		t.Fatalf("corrupted backend: err = %v, want state divergence", err)
	}
}

func TestCJDBCConsistencyThrottlesFingerprints(t *testing.T) {
	r := newCJDBCRig(t)
	chk := NewCJDBCConsistency("cjdbc", func() *cjdbc.Controller { return r.ctl })
	chk.FingerprintEvery = 100
	r.exec(t, "CREATE TABLE items (id INT)")
	if err := chk.Check(1, false); err != nil { // first tick fingerprints
		t.Fatal(err)
	}
	if _, err := r.dbs["mysql2"].DB().Exec("INSERT INTO items (id) VALUES (7)"); err != nil {
		t.Fatal(err)
	}
	// Within the throttle window, a tick check skips fingerprinting...
	if err := chk.Check(2, false); err != nil {
		t.Fatalf("throttled tick should not fingerprint: %v", err)
	}
	// ...but a boundary check always fingerprints.
	if err := chk.Check(3, true); err == nil {
		t.Fatal("boundary check did not fingerprint")
	}
}
