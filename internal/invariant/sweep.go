package invariant

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a chaos schedule event.
type Kind string

// Standard event kinds. Scenario runners may accept additional kinds
// (e.g. test-only sabotage events) through their own extension hooks.
const (
	// Crash fails the target's node at the scheduled time.
	Crash Kind = "crash"
	// Reboot returns the target's (previously crashed) node to service.
	Reboot Kind = "reboot"
	// Slow saturates the target's node with a CPU hog for Duration
	// seconds, degrading every job sharing the processor.
	Slow Kind = "slow"
	// Partition cuts the simulated network between the event's A and B
	// endpoint groups (B empty: A against everyone else) for Duration
	// seconds (default: until a matching Heal). Requires a scenario with
	// the network fabric enabled.
	Partition Kind = "partition"
	// Heal removes the partitions installed by earlier Partition events
	// (all of them; per-partition healing uses Duration on the Partition
	// event itself).
	Heal Kind = "heal"
	// Config applies the event's Patch as a live configuration change
	// through the scenario's refresh hub — the sweep hunts for
	// pathological mid-run retunes the same way it hunts for crash
	// timings, and the shrinker minimizes them like any other event.
	Config Kind = "config"
)

// Event is one declarative chaos action at a virtual time (relative to
// workload start).
type Event struct {
	// At is the virtual time of the event, in seconds after the workload
	// starts.
	At float64 `json:"at"`
	// Kind is the action.
	Kind Kind `json:"kind"`
	// Target is a component name (resolved to its node at fire time) or
	// a node name. Unused by Partition/Heal events.
	Target string `json:"target,omitempty"`
	// Duration parameterizes Slow events (seconds; default 60) and, when
	// positive, auto-heals a Partition after that many seconds.
	Duration float64 `json:"duration,omitempty"`
	// A and B are the two endpoint groups of a Partition event. Entries
	// are component names (resolved to nodes at fire time), node names,
	// or the pseudo-endpoints "client" and "jade". An empty B cuts A off
	// from everyone else.
	A []string `json:"a,omitempty"`
	B []string `json:"b,omitempty"`
	// Patch is a Config event's refreshable-configuration patch, in the
	// same JSON grammar the admin /config endpoint accepts.
	Patch json.RawMessage `json:"patch,omitempty"`
}

func (e Event) String() string {
	target := e.Target
	if e.Kind == Partition {
		target = fmt.Sprintf("%v|%v", e.A, e.B)
	}
	if e.Kind == Config {
		return fmt.Sprintf("config %s at t=%.0f", string(e.Patch), e.At)
	}
	if e.Duration > 0 {
		return fmt.Sprintf("%s %s at t=%.0f for %.0f s", e.Kind, target, e.At, e.Duration)
	}
	return fmt.Sprintf("%s %s at t=%.0f", e.Kind, target, e.At)
}

// Schedule is a declarative failure schedule, applied in At order.
type Schedule []Event

// Sorted returns a copy of the schedule ordered by At (stable for ties).
func (s Schedule) Sorted() Schedule {
	out := append(Schedule(nil), s...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

func (s Schedule) String() string {
	if len(s) == 0 {
		return "(empty schedule)"
	}
	out := ""
	for i, e := range s {
		if i > 0 {
			out += "; "
		}
		out += e.String()
	}
	return out
}

// Outcome is what one scenario run reports back to the sweep.
type Outcome struct {
	// Violation is the first invariant violation, or nil.
	Violation *Violation
	// Checks counts individual checker evaluations during the run.
	Checks uint64
}

// Runner executes one scenario run at the given seed under the given
// chaos schedule and reports the outcome. The package deliberately takes
// a function rather than a scenario config: the scenario harness lives in
// the root package, which imports this one.
type Runner func(seed int64, schedule Schedule) (*Outcome, error)

// Artifact is a replayable record of a failing run: feed it back through
// Replay (or `jadebench -replay`) to reproduce the violation exactly.
type Artifact struct {
	// Seed reproduces the run's randomness.
	Seed int64 `json:"seed"`
	// Schedule is the (shrunk) failure schedule.
	Schedule Schedule `json:"schedule"`
	// Violation is the invariant failure the run hit.
	Violation *Violation `json:"violation"`
	// ShrunkFrom is the event count of the original failing schedule.
	ShrunkFrom int `json:"shrunk_from"`
}

// Encode renders the artifact as indented JSON.
func (a *Artifact) Encode() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// ParseArtifact decodes an artifact produced by Encode.
func ParseArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("invariant: parsing artifact: %w", err)
	}
	return &a, nil
}

// SweepConfig parameterizes a chaos sweep.
type SweepConfig struct {
	// Run executes one scenario run.
	Run Runner
	// NoShrink skips schedule shrinking on failure.
	NoShrink bool
	// ShrinkBudget caps the number of extra runs the shrinker may spend
	// (default 64).
	ShrinkBudget int
	// Parallel is the number of worker goroutines fanning seeds out
	// (values below 2 run serially). The Runner must be safe for
	// concurrent use when Parallel > 1 — every run must build its own
	// engine and platform, which the scenario harness already does.
	// Aggregation is deterministic: the reported failure is always the
	// lowest failing seed regardless of goroutine completion order, and
	// Passed/Checks/Failure match a serial sweep exactly. Only Runs may
	// differ on a failing sweep, because in-flight later seeds finish
	// instead of never starting.
	Parallel int
	// Logf receives progress lines (optional).
	Logf func(format string, args ...any)
}

// SweepResult summarizes a sweep.
type SweepResult struct {
	// Seeds are the seeds swept, in order.
	Seeds []int64
	// Passed counts seeds that completed with no violation.
	Passed int
	// Failure is the replayable artifact of the first failing seed, or
	// nil when every seed passed.
	Failure *Artifact
	// Runs counts scenario executions, including shrink reruns. A
	// parallel sweep that hits a violation may count more runs than a
	// serial one: seeds already in flight when the failure surfaces run
	// to completion.
	Runs int
	// Checks totals checker evaluations across the sweep.
	Checks uint64
}

// Sweep runs the scenario across every seed under the schedule, stopping
// at the first seed that violates an invariant. The failing schedule is
// greedily shrunk — events are dropped while the same checker still
// fails — and returned as a replayable artifact. A scenario error (as
// opposed to an invariant violation) aborts the sweep.
//
// With cfg.Parallel > 1 the seeds fan out over a worker pool; the result
// is deterministic (see SweepConfig.Parallel) and shrinking replays stay
// single-threaded, so the artifact is byte-identical to a serial sweep's.
func Sweep(cfg SweepConfig, seeds []int64, schedule Schedule) (*SweepResult, error) {
	if cfg.Run == nil {
		return nil, fmt.Errorf("invariant: SweepConfig.Run is required")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	budget := cfg.ShrinkBudget
	if budget <= 0 {
		budget = 64
	}
	res := &SweepResult{Seeds: append([]int64(nil), seeds...)}
	sched := schedule.Sorted()
	if cfg.Parallel > 1 && len(seeds) > 1 {
		return sweepParallel(cfg, res, seeds, sched, logf, budget)
	}
	for _, seed := range seeds {
		out, err := cfg.Run(seed, sched)
		res.Runs++
		if err != nil {
			return res, fmt.Errorf("invariant: seed %d: %w", seed, err)
		}
		res.Checks += out.Checks
		if out.Violation == nil {
			res.Passed++
			logf("sweep: seed %d ok (%d checks)", seed, out.Checks)
			continue
		}
		return sweepFail(cfg, res, seed, sched, out.Violation, logf, budget)
	}
	return res, nil
}

// sweepFail builds the replayable artifact for a violating seed,
// shrinking the schedule unless disabled. Shrinking is always
// single-threaded so its run sequence — and therefore the artifact — is
// identical however the failing seed was found.
func sweepFail(cfg SweepConfig, res *SweepResult, seed int64, sched Schedule, v *Violation, logf func(string, ...any), budget int) (*SweepResult, error) {
	logf("sweep: seed %d FAILED: %v", seed, v)
	art := &Artifact{
		Seed:       seed,
		Schedule:   sched,
		Violation:  v,
		ShrunkFrom: len(sched),
	}
	if !cfg.NoShrink {
		shrunk, sv, runs := shrink(cfg.Run, seed, sched, v.Checker, budget)
		res.Runs += runs
		art.Schedule = shrunk
		if sv != nil {
			art.Violation = sv
		}
		logf("sweep: shrunk schedule from %d to %d events in %d runs", len(sched), len(shrunk), runs)
	}
	res.Failure = art
	return res, nil
}

// sweepParallel fans the seeds out over cfg.Parallel workers. Workers
// claim seed indexes in ascending order from a shared counter and stop
// claiming past the lowest index known to have failed, so a low failing
// seed cuts the sweep short just like the serial loop. Aggregation walks
// the per-index results in seed order, which makes the outcome — passed
// count, check totals, reported failure — independent of goroutine
// completion order.
func sweepParallel(cfg SweepConfig, res *SweepResult, seeds []int64, sched Schedule, logf func(string, ...any), budget int) (*SweepResult, error) {
	type slot struct {
		out *Outcome
		err error
	}
	results := make([]slot, len(seeds))
	workers := cfg.Parallel
	if workers > len(seeds) {
		workers = len(seeds)
	}
	var (
		next atomic.Int64 // next unclaimed seed index
		stop atomic.Int64 // lowest index that errored or violated
		runs atomic.Int64
		wg   sync.WaitGroup
	)
	stop.Store(int64(len(seeds)))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				// Indexes at or past the lowest known failure cannot
				// affect the result; don't start them. (Every index below
				// it was claimed earlier and will complete.)
				if i >= len(seeds) || int64(i) >= stop.Load() {
					return
				}
				out, err := cfg.Run(seeds[i], sched)
				runs.Add(1)
				results[i] = slot{out: out, err: err}
				if err != nil || out.Violation != nil {
					for {
						cur := stop.Load()
						if int64(i) >= cur || stop.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	res.Runs = int(runs.Load())
	first := int(stop.Load())
	// Every index below the first failure ran and passed; count them in
	// seed order so logs and totals match the serial sweep.
	for i := 0; i < first && i < len(seeds); i++ {
		res.Checks += results[i].out.Checks
		res.Passed++
		logf("sweep: seed %d ok (%d checks)", seeds[i], results[i].out.Checks)
	}
	if first >= len(seeds) {
		return res, nil
	}
	s := results[first]
	if s.err != nil {
		return res, fmt.Errorf("invariant: seed %d: %w", seeds[first], s.err)
	}
	res.Checks += s.out.Checks
	return sweepFail(cfg, res, seeds[first], sched, s.out.Violation, logf, budget)
}

// shrink greedily removes schedule events while a run at the same seed
// still violates the same checker, iterating to a fixpoint or until the
// run budget is exhausted. It returns the smallest failing schedule found
// and the violation it produces.
func shrink(run Runner, seed int64, sched Schedule, checker string, budget int) (Schedule, *Violation, int) {
	cur := append(Schedule(nil), sched...)
	var lastV *Violation
	runs := 0
	reproduces := func(s Schedule) *Violation {
		out, err := run(seed, s)
		if err != nil {
			return nil // treat errors as "does not reproduce"
		}
		if out.Violation != nil && out.Violation.Checker == checker {
			return out.Violation
		}
		return nil
	}
	for changed := true; changed && len(cur) > 0; {
		changed = false
		for i := 0; i < len(cur); i++ {
			if runs >= budget {
				return cur, lastV, runs
			}
			cand := append(append(Schedule(nil), cur[:i]...), cur[i+1:]...)
			runs++
			if v := reproduces(cand); v != nil {
				cur, lastV = cand, v
				changed = true
				i--
			}
		}
	}
	return cur, lastV, runs
}

// Replay re-runs an artifact's seed and schedule and reports the outcome.
// The replay reproduces the recorded violation when the outcome's
// violation matches the artifact's checker.
func Replay(run Runner, a *Artifact) (*Outcome, error) {
	return run(a.Seed, a.Schedule)
}
