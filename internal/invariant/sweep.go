package invariant

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Kind classifies a chaos schedule event.
type Kind string

// Standard event kinds. Scenario runners may accept additional kinds
// (e.g. test-only sabotage events) through their own extension hooks.
const (
	// Crash fails the target's node at the scheduled time.
	Crash Kind = "crash"
	// Reboot returns the target's (previously crashed) node to service.
	Reboot Kind = "reboot"
	// Slow saturates the target's node with a CPU hog for Duration
	// seconds, degrading every job sharing the processor.
	Slow Kind = "slow"
)

// Event is one declarative chaos action at a virtual time (relative to
// workload start).
type Event struct {
	// At is the virtual time of the event, in seconds after the workload
	// starts.
	At float64 `json:"at"`
	// Kind is the action.
	Kind Kind `json:"kind"`
	// Target is a component name (resolved to its node at fire time) or
	// a node name.
	Target string `json:"target"`
	// Duration parameterizes Slow events (seconds; default 60).
	Duration float64 `json:"duration,omitempty"`
}

func (e Event) String() string {
	if e.Duration > 0 {
		return fmt.Sprintf("%s %s at t=%.0f for %.0f s", e.Kind, e.Target, e.At, e.Duration)
	}
	return fmt.Sprintf("%s %s at t=%.0f", e.Kind, e.Target, e.At)
}

// Schedule is a declarative failure schedule, applied in At order.
type Schedule []Event

// Sorted returns a copy of the schedule ordered by At (stable for ties).
func (s Schedule) Sorted() Schedule {
	out := append(Schedule(nil), s...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

func (s Schedule) String() string {
	if len(s) == 0 {
		return "(empty schedule)"
	}
	out := ""
	for i, e := range s {
		if i > 0 {
			out += "; "
		}
		out += e.String()
	}
	return out
}

// Outcome is what one scenario run reports back to the sweep.
type Outcome struct {
	// Violation is the first invariant violation, or nil.
	Violation *Violation
	// Checks counts individual checker evaluations during the run.
	Checks uint64
}

// Runner executes one scenario run at the given seed under the given
// chaos schedule and reports the outcome. The package deliberately takes
// a function rather than a scenario config: the scenario harness lives in
// the root package, which imports this one.
type Runner func(seed int64, schedule Schedule) (*Outcome, error)

// Artifact is a replayable record of a failing run: feed it back through
// Replay (or `jadebench -replay`) to reproduce the violation exactly.
type Artifact struct {
	// Seed reproduces the run's randomness.
	Seed int64 `json:"seed"`
	// Schedule is the (shrunk) failure schedule.
	Schedule Schedule `json:"schedule"`
	// Violation is the invariant failure the run hit.
	Violation *Violation `json:"violation"`
	// ShrunkFrom is the event count of the original failing schedule.
	ShrunkFrom int `json:"shrunk_from"`
}

// Encode renders the artifact as indented JSON.
func (a *Artifact) Encode() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// ParseArtifact decodes an artifact produced by Encode.
func ParseArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("invariant: parsing artifact: %w", err)
	}
	return &a, nil
}

// SweepConfig parameterizes a chaos sweep.
type SweepConfig struct {
	// Run executes one scenario run.
	Run Runner
	// NoShrink skips schedule shrinking on failure.
	NoShrink bool
	// ShrinkBudget caps the number of extra runs the shrinker may spend
	// (default 64).
	ShrinkBudget int
	// Logf receives progress lines (optional).
	Logf func(format string, args ...any)
}

// SweepResult summarizes a sweep.
type SweepResult struct {
	// Seeds are the seeds swept, in order.
	Seeds []int64
	// Passed counts seeds that completed with no violation.
	Passed int
	// Failure is the replayable artifact of the first failing seed, or
	// nil when every seed passed.
	Failure *Artifact
	// Runs counts scenario executions, including shrink reruns.
	Runs int
	// Checks totals checker evaluations across the sweep.
	Checks uint64
}

// Sweep runs the scenario across every seed under the schedule, stopping
// at the first seed that violates an invariant. The failing schedule is
// greedily shrunk — events are dropped while the same checker still
// fails — and returned as a replayable artifact. A scenario error (as
// opposed to an invariant violation) aborts the sweep.
func Sweep(cfg SweepConfig, seeds []int64, schedule Schedule) (*SweepResult, error) {
	if cfg.Run == nil {
		return nil, fmt.Errorf("invariant: SweepConfig.Run is required")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	budget := cfg.ShrinkBudget
	if budget <= 0 {
		budget = 64
	}
	res := &SweepResult{Seeds: append([]int64(nil), seeds...)}
	sched := schedule.Sorted()
	for _, seed := range seeds {
		out, err := cfg.Run(seed, sched)
		res.Runs++
		if err != nil {
			return res, fmt.Errorf("invariant: seed %d: %w", seed, err)
		}
		res.Checks += out.Checks
		if out.Violation == nil {
			res.Passed++
			logf("sweep: seed %d ok (%d checks)", seed, out.Checks)
			continue
		}
		logf("sweep: seed %d FAILED: %v", seed, out.Violation)
		art := &Artifact{
			Seed:       seed,
			Schedule:   sched,
			Violation:  out.Violation,
			ShrunkFrom: len(sched),
		}
		if !cfg.NoShrink {
			shrunk, v, runs := shrink(cfg.Run, seed, sched, out.Violation.Checker, budget)
			res.Runs += runs
			art.Schedule = shrunk
			if v != nil {
				art.Violation = v
			}
			logf("sweep: shrunk schedule from %d to %d events in %d runs", len(sched), len(shrunk), runs)
		}
		res.Failure = art
		return res, nil
	}
	return res, nil
}

// shrink greedily removes schedule events while a run at the same seed
// still violates the same checker, iterating to a fixpoint or until the
// run budget is exhausted. It returns the smallest failing schedule found
// and the violation it produces.
func shrink(run Runner, seed int64, sched Schedule, checker string, budget int) (Schedule, *Violation, int) {
	cur := append(Schedule(nil), sched...)
	var lastV *Violation
	runs := 0
	reproduces := func(s Schedule) *Violation {
		out, err := run(seed, s)
		if err != nil {
			return nil // treat errors as "does not reproduce"
		}
		if out.Violation != nil && out.Violation.Checker == checker {
			return out.Violation
		}
		return nil
	}
	for changed := true; changed && len(cur) > 0; {
		changed = false
		for i := 0; i < len(cur); i++ {
			if runs >= budget {
				return cur, lastV, runs
			}
			cand := append(append(Schedule(nil), cur[:i]...), cur[i+1:]...)
			runs++
			if v := reproduces(cand); v != nil {
				cur, lastV = cand, v
				changed = true
				i--
			}
		}
	}
	return cur, lastV, runs
}

// Replay re-runs an artifact's seed and schedule and reports the outcome.
// The replay reproduces the recorded violation when the outcome's
// violation matches the artifact's checker.
func Replay(run Runner, a *Artifact) (*Outcome, error) {
	return run(a.Seed, a.Schedule)
}
