package invariant

import (
	"fmt"
	"testing"
)

// syntheticRunner violates checker "chk" iff the schedule contains both a
// crash of "a" and a crash of "b" (an interaction bug), for seeds >= minSeed.
func syntheticRunner(minSeed int64, runs *int) Runner {
	return func(seed int64, schedule Schedule) (*Outcome, error) {
		*runs++
		var hasA, hasB bool
		for _, ev := range schedule {
			if ev.Kind == Crash && ev.Target == "a" {
				hasA = true
			}
			if ev.Kind == Crash && ev.Target == "b" {
				hasB = true
			}
		}
		out := &Outcome{Checks: 100}
		if seed >= minSeed && hasA && hasB {
			out.Violation = &Violation{Time: 42, Checker: "chk", Event: "tick", Detail: "a and b both crashed"}
		}
		return out, nil
	}
}

func fullSchedule() Schedule {
	return Schedule{
		{At: 300, Kind: Slow, Target: "c", Duration: 30},
		{At: 100, Kind: Crash, Target: "a"},
		{At: 160, Kind: Reboot, Target: "a"},
		{At: 200, Kind: Crash, Target: "b"},
		{At: 260, Kind: Reboot, Target: "b"},
	}
}

func TestSweepAllPass(t *testing.T) {
	runs := 0
	res, err := Sweep(SweepConfig{Run: syntheticRunner(1000, &runs)}, []int64{1, 2, 3}, fullSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != nil || res.Passed != 3 || res.Runs != 3 {
		t.Fatalf("passed=%d runs=%d failure=%v, want 3/3 clean", res.Passed, res.Runs, res.Failure)
	}
	if res.Checks != 300 {
		t.Fatalf("checks = %d, want 300", res.Checks)
	}
}

func TestSweepFindsAndShrinks(t *testing.T) {
	runs := 0
	res, err := Sweep(SweepConfig{Run: syntheticRunner(2, &runs)}, []int64{1, 2, 3}, fullSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed != 1 {
		t.Fatalf("passed = %d, want 1 (seed 1)", res.Passed)
	}
	a := res.Failure
	if a == nil {
		t.Fatal("no failure artifact")
	}
	if a.Seed != 2 {
		t.Fatalf("failing seed = %d, want 2", a.Seed)
	}
	if a.ShrunkFrom != 5 {
		t.Fatalf("ShrunkFrom = %d, want 5", a.ShrunkFrom)
	}
	// The minimal failing schedule is exactly the two interacting crashes.
	if len(a.Schedule) != 2 {
		t.Fatalf("shrunk schedule has %d events, want 2: %v", len(a.Schedule), a.Schedule)
	}
	for _, ev := range a.Schedule {
		if ev.Kind != Crash || (ev.Target != "a" && ev.Target != "b") {
			t.Fatalf("unexpected event in shrunk schedule: %v", ev)
		}
	}
	if a.Violation == nil || a.Violation.Checker != "chk" {
		t.Fatalf("artifact violation = %+v", a.Violation)
	}
}

func TestSweepNoShrink(t *testing.T) {
	runs := 0
	res, err := Sweep(SweepConfig{Run: syntheticRunner(1, &runs), NoShrink: true}, []int64{1}, fullSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil || len(res.Failure.Schedule) != 5 || res.Runs != 1 {
		t.Fatalf("NoShrink altered the schedule: %+v (runs %d)", res.Failure, res.Runs)
	}
}

func TestSweepScenarioErrorAborts(t *testing.T) {
	bad := func(seed int64, schedule Schedule) (*Outcome, error) {
		return nil, fmt.Errorf("boom")
	}
	_, err := Sweep(SweepConfig{Run: bad}, []int64{1}, fullSchedule())
	if err == nil {
		t.Fatal("scenario error did not abort the sweep")
	}
}

func TestShrinkBudget(t *testing.T) {
	runs := 0
	res, err := Sweep(SweepConfig{Run: syntheticRunner(1, &runs), ShrinkBudget: 2}, []int64{1}, fullSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil {
		t.Fatal("no failure")
	}
	if res.Runs > 3 { // 1 initial + budget 2
		t.Fatalf("runs = %d, want <= 3 under budget 2", res.Runs)
	}
	if res.Failure.Violation == nil {
		t.Fatal("budget-limited shrink lost the violation")
	}
}

func TestArtifactRoundTripAndReplay(t *testing.T) {
	runs := 0
	run := syntheticRunner(1, &runs)
	res, err := Sweep(SweepConfig{Run: run}, []int64{7}, fullSchedule())
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.Failure.Encode()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Seed != res.Failure.Seed || len(parsed.Schedule) != len(res.Failure.Schedule) {
		t.Fatalf("round trip mismatch: %+v vs %+v", parsed, res.Failure)
	}
	out, err := Replay(run, parsed)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil || out.Violation.Checker != res.Failure.Violation.Checker {
		t.Fatalf("replay outcome %+v does not reproduce %+v", out.Violation, res.Failure.Violation)
	}
	if _, err := ParseArtifact([]byte("{")); err == nil {
		t.Fatal("ParseArtifact accepted malformed JSON")
	}
}

func TestScheduleSorted(t *testing.T) {
	s := fullSchedule().Sorted()
	for i := 1; i < len(s); i++ {
		if s[i].At < s[i-1].At {
			t.Fatalf("schedule not sorted at %d: %v", i, s)
		}
	}
	if fullSchedule().String() == "" || (Schedule{}).String() != "(empty schedule)" {
		t.Fatal("Schedule.String misbehaves")
	}
}
