package invariant

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// syntheticRunner violates checker "chk" iff the schedule contains both a
// crash of "a" and a crash of "b" (an interaction bug), for seeds >= minSeed.
func syntheticRunner(minSeed int64, runs *int) Runner {
	return func(seed int64, schedule Schedule) (*Outcome, error) {
		*runs++
		var hasA, hasB bool
		for _, ev := range schedule {
			if ev.Kind == Crash && ev.Target == "a" {
				hasA = true
			}
			if ev.Kind == Crash && ev.Target == "b" {
				hasB = true
			}
		}
		out := &Outcome{Checks: 100}
		if seed >= minSeed && hasA && hasB {
			out.Violation = &Violation{Time: 42, Checker: "chk", Event: "tick", Detail: "a and b both crashed"}
		}
		return out, nil
	}
}

func fullSchedule() Schedule {
	return Schedule{
		{At: 300, Kind: Slow, Target: "c", Duration: 30},
		{At: 100, Kind: Crash, Target: "a"},
		{At: 160, Kind: Reboot, Target: "a"},
		{At: 200, Kind: Crash, Target: "b"},
		{At: 260, Kind: Reboot, Target: "b"},
	}
}

func TestSweepAllPass(t *testing.T) {
	runs := 0
	res, err := Sweep(SweepConfig{Run: syntheticRunner(1000, &runs)}, []int64{1, 2, 3}, fullSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != nil || res.Passed != 3 || res.Runs != 3 {
		t.Fatalf("passed=%d runs=%d failure=%v, want 3/3 clean", res.Passed, res.Runs, res.Failure)
	}
	if res.Checks != 300 {
		t.Fatalf("checks = %d, want 300", res.Checks)
	}
}

func TestSweepFindsAndShrinks(t *testing.T) {
	runs := 0
	res, err := Sweep(SweepConfig{Run: syntheticRunner(2, &runs)}, []int64{1, 2, 3}, fullSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed != 1 {
		t.Fatalf("passed = %d, want 1 (seed 1)", res.Passed)
	}
	a := res.Failure
	if a == nil {
		t.Fatal("no failure artifact")
	}
	if a.Seed != 2 {
		t.Fatalf("failing seed = %d, want 2", a.Seed)
	}
	if a.ShrunkFrom != 5 {
		t.Fatalf("ShrunkFrom = %d, want 5", a.ShrunkFrom)
	}
	// The minimal failing schedule is exactly the two interacting crashes.
	if len(a.Schedule) != 2 {
		t.Fatalf("shrunk schedule has %d events, want 2: %v", len(a.Schedule), a.Schedule)
	}
	for _, ev := range a.Schedule {
		if ev.Kind != Crash || (ev.Target != "a" && ev.Target != "b") {
			t.Fatalf("unexpected event in shrunk schedule: %v", ev)
		}
	}
	if a.Violation == nil || a.Violation.Checker != "chk" {
		t.Fatalf("artifact violation = %+v", a.Violation)
	}
}

func TestSweepNoShrink(t *testing.T) {
	runs := 0
	res, err := Sweep(SweepConfig{Run: syntheticRunner(1, &runs), NoShrink: true}, []int64{1}, fullSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil || len(res.Failure.Schedule) != 5 || res.Runs != 1 {
		t.Fatalf("NoShrink altered the schedule: %+v (runs %d)", res.Failure, res.Runs)
	}
}

func TestSweepScenarioErrorAborts(t *testing.T) {
	bad := func(seed int64, schedule Schedule) (*Outcome, error) {
		return nil, fmt.Errorf("boom")
	}
	_, err := Sweep(SweepConfig{Run: bad}, []int64{1}, fullSchedule())
	if err == nil {
		t.Fatal("scenario error did not abort the sweep")
	}
}

func TestShrinkBudget(t *testing.T) {
	runs := 0
	res, err := Sweep(SweepConfig{Run: syntheticRunner(1, &runs), ShrinkBudget: 2}, []int64{1}, fullSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil {
		t.Fatal("no failure")
	}
	if res.Runs > 3 { // 1 initial + budget 2
		t.Fatalf("runs = %d, want <= 3 under budget 2", res.Runs)
	}
	if res.Failure.Violation == nil {
		t.Fatal("budget-limited shrink lost the violation")
	}
}

func TestArtifactRoundTripAndReplay(t *testing.T) {
	runs := 0
	run := syntheticRunner(1, &runs)
	res, err := Sweep(SweepConfig{Run: run}, []int64{7}, fullSchedule())
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.Failure.Encode()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Seed != res.Failure.Seed || len(parsed.Schedule) != len(res.Failure.Schedule) {
		t.Fatalf("round trip mismatch: %+v vs %+v", parsed, res.Failure)
	}
	out, err := Replay(run, parsed)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil || out.Violation.Checker != res.Failure.Violation.Checker {
		t.Fatalf("replay outcome %+v does not reproduce %+v", out.Violation, res.Failure.Violation)
	}
	if _, err := ParseArtifact([]byte("{")); err == nil {
		t.Fatal("ParseArtifact accepted malformed JSON")
	}
}

func TestScheduleSorted(t *testing.T) {
	s := fullSchedule().Sorted()
	for i := 1; i < len(s); i++ {
		if s[i].At < s[i-1].At {
			t.Fatalf("schedule not sorted at %d: %v", i, s)
		}
	}
	if fullSchedule().String() == "" || (Schedule{}).String() != "(empty schedule)" {
		t.Fatal("Schedule.String misbehaves")
	}
}

// raceRunner is a concurrency-safe Runner for the parallel-sweep tests:
// every seed >= minSeed violates (with a seed-specific violation, so a
// wrong aggregation picks a visibly different artifact), and low seeds
// run slower than high ones, so under parallel execution a high
// violating seed always completes before the lowest one.
func raceRunner(minSeed int64, runs *atomic.Int64) Runner {
	return func(seed int64, schedule Schedule) (*Outcome, error) {
		runs.Add(1)
		time.Sleep(time.Duration(16-seed) * time.Millisecond)
		var hasA, hasB bool
		for _, ev := range schedule {
			if ev.Kind == Crash && ev.Target == "a" {
				hasA = true
			}
			if ev.Kind == Crash && ev.Target == "b" {
				hasB = true
			}
		}
		out := &Outcome{Checks: 100}
		if seed >= minSeed && hasA && hasB {
			out.Violation = &Violation{
				Time:    float64(seed),
				Checker: "chk",
				Event:   "tick",
				Detail:  fmt.Sprintf("seed %d: a and b both crashed", seed),
			}
		}
		return out, nil
	}
}

// The parallel sweep must report the identical lowest failing seed — and
// a byte-identical shrunk artifact — as the serial sweep, even though
// higher violating seeds finish first. Run with -race this also
// exercises the worker pool for data races.
func TestParallelSweepMatchesSerial(t *testing.T) {
	seeds := make([]int64, 12)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	var serialRuns, parRuns atomic.Int64
	serial, err := Sweep(SweepConfig{Run: raceRunner(5, &serialRuns)}, seeds, fullSchedule())
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep(SweepConfig{Run: raceRunner(5, &parRuns), Parallel: 8}, seeds, fullSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if serial.Failure == nil || par.Failure == nil {
		t.Fatalf("missing failure: serial=%v parallel=%v", serial.Failure, par.Failure)
	}
	if par.Failure.Seed != 5 || serial.Failure.Seed != 5 {
		t.Fatalf("failing seeds: serial=%d parallel=%d, want 5", serial.Failure.Seed, par.Failure.Seed)
	}
	if par.Passed != serial.Passed {
		t.Fatalf("Passed: serial=%d parallel=%d", serial.Passed, par.Passed)
	}
	if par.Checks != serial.Checks {
		t.Fatalf("Checks: serial=%d parallel=%d", serial.Checks, par.Checks)
	}
	sb, err := serial.Failure.Encode()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := par.Failure.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb, pb) {
		t.Fatalf("artifacts differ:\nserial:\n%s\nparallel:\n%s", sb, pb)
	}
}

// A clean parallel sweep matches the serial one exactly, including Runs.
func TestParallelSweepAllPass(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	var runs atomic.Int64
	res, err := Sweep(SweepConfig{Run: raceRunner(1000, &runs), Parallel: 4}, seeds, fullSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != nil || res.Passed != 6 || res.Runs != 6 || res.Checks != 600 {
		t.Fatalf("passed=%d runs=%d checks=%d failure=%v, want 6/6/600 clean",
			res.Passed, res.Runs, res.Checks, res.Failure)
	}
}

// A scenario error aborts a parallel sweep naming the lowest erroring
// seed, as in the serial path.
func TestParallelSweepErrorIsLowestSeed(t *testing.T) {
	var runs atomic.Int64
	run := func(seed int64, schedule Schedule) (*Outcome, error) {
		runs.Add(1)
		time.Sleep(time.Duration(16-seed) * time.Millisecond)
		if seed >= 3 {
			return nil, fmt.Errorf("boom %d", seed)
		}
		return &Outcome{Checks: 1}, nil
	}
	res, err := Sweep(SweepConfig{Run: run, Parallel: 8}, []int64{1, 2, 3, 4, 5, 6, 7, 8}, nil)
	if err == nil || !strings.Contains(err.Error(), "seed 3") {
		t.Fatalf("err = %v, want seed 3", err)
	}
	if res.Passed != 2 || res.Checks != 2 {
		t.Fatalf("passed=%d checks=%d, want 2/2", res.Passed, res.Checks)
	}
}
