// Package invariant is the deterministic simulation-testing harness: a
// pluggable set of machine-checkable predicates over the live managed
// architecture, evaluated on a sim ticker and at every reconfiguration
// boundary, plus a seed-sweep chaos runner with failing-schedule replay
// (see sweep.go).
//
// The paper's claim — that autonomic control loops can safely reconfigure
// a live cluster — only holds if the system preserves its invariants under
// every interleaving of load, reconfiguration and failure. The checkers
// here encode those invariants:
//
//   - C-JDBC replica-state consistency: backends at the same recovery-log
//     index have identical database fingerprints; applied indices and
//     checkpoint indices only move forward; the log never shrinks.
//   - Node CPU-share conservation: the sum of granted CPU shares never
//     exceeds a node's capacity, memory stays within budget, and failed
//     nodes hold no jobs or memory.
//   - Balancer/actuator agreement: every balancer member is a live,
//     started replica of its tier; when the tier is idle the member set
//     exactly matches the replica set; no member stays bound to a failed
//     node beyond the repair grace period; pending counts never go
//     negative.
//   - Fractal lifecycle legality: no STARTED component is bound to a
//     server interface whose owner is STOPPED.
//   - Arbiter legality: a quiet window may only be preempted by a
//     strictly higher priority (recovery preempts sizing, never the
//     reverse).
package invariant

import (
	"fmt"
	"math"
	"sort"

	"jade/internal/cjdbc"
	"jade/internal/cluster"
	"jade/internal/fractal"
	"jade/internal/sim"
)

// Checker is one registered invariant. Check returns a non-nil error when
// the invariant is violated at time now. boundary is true when the check
// runs at a reconfiguration boundary (deploy, grow, shrink, repair) rather
// than on the periodic ticker; expensive checkers may throttle their
// ticker work but must always check fully at boundaries.
type Checker interface {
	Name() string
	Check(now float64, boundary bool) error
}

// Violation is the first invariant failure observed by a Harness.
type Violation struct {
	// Time is the virtual time of the violation.
	Time float64 `json:"time"`
	// Checker names the invariant that failed.
	Checker string `json:"checker"`
	// Event names the boundary that triggered the check ("tick" for
	// periodic checks).
	Event string `json:"event"`
	// Detail is the checker's error message.
	Detail string `json:"detail"`
	// Tail is the last few telemetry-bus events before the violation
	// (when the harness has a Tail source) — the flight recorder readout
	// attached to every replay artifact.
	Tail []string `json:"tail,omitempty"`
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("invariant %s violated at t=%.3f (%s): %s", v.Checker, v.Time, v.Event, v.Detail)
}

// Harness evaluates registered checkers on a periodic ticker and at every
// reconfiguration boundary (via CheckNow). The first violation is
// recorded and, by default, faults the engine so the simulation freezes
// at the violation instant.
type Harness struct {
	eng *sim.Engine
	// Period is the ticker interval in virtual seconds (default 1).
	Period float64
	// ContinueOnViolation keeps the simulation running after the first
	// violation instead of faulting the engine.
	ContinueOnViolation bool
	// Tail, when set, supplies the last n formatted telemetry events;
	// they are attached to every recorded violation (wire it to the
	// platform tracer's Tail method).
	Tail func(n int) []string
	// TailLines is how many events to attach (default 40).
	TailLines int

	checkers   []Checker
	ticker     *sim.Ticker
	first      *Violation
	checks     uint64
	boundaries uint64
}

// NewHarness builds a harness over the engine with a 1 s ticker period.
func NewHarness(eng *sim.Engine) *Harness {
	return &Harness{eng: eng, Period: 1}
}

// Register adds checkers to the harness.
func (h *Harness) Register(cs ...Checker) { h.checkers = append(h.checkers, cs...) }

// Checkers returns the registered checker names, in registration order.
func (h *Harness) Checkers() []string {
	out := make([]string, len(h.checkers))
	for i, c := range h.checkers {
		out[i] = c.Name()
	}
	return out
}

// Start begins periodic checking. It may be called once.
func (h *Harness) Start() {
	if h.ticker != nil {
		panic("invariant: harness started twice")
	}
	h.ticker = h.eng.Every(h.Period, "invariant:tick", func(now float64) {
		h.run(now, false, "tick")
	})
}

// Stop cancels the periodic ticker.
func (h *Harness) Stop() {
	if h.ticker != nil {
		h.ticker.Stop()
	}
}

// CheckNow evaluates every checker immediately as a boundary check; the
// platform's OnReconfiguration hook calls it at each reconfiguration.
func (h *Harness) CheckNow(event string) {
	h.boundaries++
	h.run(h.eng.Now(), true, event)
}

func (h *Harness) run(now float64, boundary bool, event string) {
	if h.first != nil && !h.ContinueOnViolation {
		return
	}
	for _, c := range h.checkers {
		h.checks++
		if err := c.Check(now, boundary); err != nil {
			v := &Violation{Time: now, Checker: c.Name(), Event: event, Detail: err.Error()}
			if h.Tail != nil {
				n := h.TailLines
				if n <= 0 {
					n = 40
				}
				v.Tail = h.Tail(n)
			}
			if h.first == nil {
				h.first = v
			}
			if !h.ContinueOnViolation {
				h.eng.Fail(v)
				return
			}
		}
	}
}

// Violation returns the first recorded violation, or nil.
func (h *Harness) Violation() *Violation { return h.first }

// Checks returns the number of individual checker evaluations performed.
func (h *Harness) Checks() uint64 { return h.checks }

// Boundaries returns the number of reconfiguration-boundary check rounds.
func (h *Harness) Boundaries() uint64 { return h.boundaries }

// ---------------------------------------------------------------------------
// C-JDBC replica-state consistency

// CJDBCConsistency checks the database tier's replication invariants: the
// recovery log never shrinks, per-backend applied indices and per-backend
// checkpoints only move forward, every index stays within the log bounds,
// and backends at the same applied index have identical state
// fingerprints. Fingerprinting walks the whole database, so it is
// throttled to FingerprintEvery seconds on ticker checks (boundaries
// always fingerprint).
type CJDBCConsistency struct {
	// Controller returns the live controller, or nil while it is down.
	Controller func() *cjdbc.Controller
	// FingerprintEvery throttles ticker-driven fingerprinting (seconds).
	FingerprintEvery float64

	label       string
	lastFP      float64
	fpDone      bool
	lastLen     int64
	lastApplied map[string]int64
	lastCkpt    map[string]int64
}

// NewCJDBCConsistency builds the checker for one controller accessor.
func NewCJDBCConsistency(label string, controller func() *cjdbc.Controller) *CJDBCConsistency {
	return &CJDBCConsistency{
		Controller:       controller,
		FingerprintEvery: 5,
		label:            label,
		lastApplied:      map[string]int64{},
		lastCkpt:         map[string]int64{},
	}
}

// Name implements Checker.
func (c *CJDBCConsistency) Name() string { return "cjdbc-consistency:" + c.label }

// Check implements Checker.
func (c *CJDBCConsistency) Check(now float64, boundary bool) error {
	ctl := c.Controller()
	if ctl == nil || !ctl.Running() {
		return nil
	}
	log := ctl.Log()
	n := log.Len()
	if n < c.lastLen {
		return fmt.Errorf("recovery log shrank from %d to %d records", c.lastLen, n)
	}
	c.lastLen = n

	// Checkpoints move only forward. A backend that rejoined has its
	// checkpoint dropped; names absent from the current map are forgotten
	// so a later re-checkpoint is compared against fresh history.
	ckpts := log.Checkpoints()
	for name := range c.lastCkpt {
		if _, ok := ckpts[name]; !ok {
			delete(c.lastCkpt, name)
		}
	}
	for name, idx := range ckpts {
		if idx < 0 || idx > n {
			return fmt.Errorf("checkpoint %d of %s outside log bounds [0,%d]", idx, name, n)
		}
		if prev, ok := c.lastCkpt[name]; ok && idx < prev {
			return fmt.Errorf("checkpoint of %s moved backwards: %d -> %d", name, prev, idx)
		}
		c.lastCkpt[name] = idx
	}

	// Applied indices move only forward while a backend stays registered.
	infos := ctl.Backends()
	present := make(map[string]bool, len(infos))
	for _, b := range infos {
		present[b.Name] = true
		if b.Applied < 0 || b.Applied > n {
			return fmt.Errorf("backend %s applied index %d outside log bounds [0,%d]", b.Name, b.Applied, n)
		}
		if prev, ok := c.lastApplied[b.Name]; ok && b.Applied < prev {
			return fmt.Errorf("backend %s applied index regressed: %d -> %d", b.Name, prev, b.Applied)
		}
		c.lastApplied[b.Name] = b.Applied
	}
	for name := range c.lastApplied {
		if !present[name] {
			delete(c.lastApplied, name)
		}
	}

	// State digests: every pair of active backends at the same applied
	// index must agree (state is a pure function of dump + log prefix).
	// Backends at different indices legitimately differ mid-broadcast.
	if boundary || !c.fpDone || now-c.lastFP >= c.FingerprintEvery {
		c.lastFP, c.fpDone = now, true
		rep := ctl.CheckConsistency()
		byIdx := map[int64]string{} // applied index -> first backend seen
		for _, name := range sortedKeys(rep.Fingerprints) {
			idx := rep.Applied[name]
			if firstName, ok := byIdx[idx]; ok {
				if rep.Fingerprints[firstName] != rep.Fingerprints[name] {
					return fmt.Errorf("state divergence at log index %d: %s fingerprint %016x != %s fingerprint %016x",
						idx, firstName, rep.Fingerprints[firstName], name, rep.Fingerprints[name])
				}
			} else {
				byIdx[idx] = name
			}
		}
	}
	return nil
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Node CPU-share conservation

// NodeConservation checks every node in the pool: granted CPU shares
// never exceed capacity, memory usage stays within [0, MemoryMB], and a
// failed node holds no jobs and no memory.
type NodeConservation struct {
	// Nodes returns the nodes to check.
	Nodes func() []*cluster.Node
}

// NewNodeConservation builds the checker over a node pool.
func NewNodeConservation(pool *cluster.Pool) *NodeConservation {
	return &NodeConservation{Nodes: pool.Nodes}
}

// Name implements Checker.
func (c *NodeConservation) Name() string { return "node-conservation" }

// Check implements Checker.
func (c *NodeConservation) Check(now float64, boundary bool) error {
	const eps = 1e-9
	for _, n := range c.Nodes() {
		cfg := n.Config()
		if g := n.GrantedShares(); g > cfg.CPUCapacity+eps {
			return fmt.Errorf("node %s grants %.9f CPU shares over capacity %.9f", n.Name(), g, cfg.CPUCapacity)
		}
		mem := n.MemoryUsed()
		if mem < -eps || mem > cfg.MemoryMB+eps || math.IsNaN(mem) {
			return fmt.Errorf("node %s memory %.3f MB outside [0,%.0f]", n.Name(), mem, cfg.MemoryMB)
		}
		if n.Failed() {
			if n.ActiveJobs() != 0 {
				return fmt.Errorf("failed node %s still runs %d jobs", n.Name(), n.ActiveJobs())
			}
			if mem > eps {
				return fmt.Errorf("failed node %s still holds %.3f MB", n.Name(), mem)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Balancer / actuator agreement

// TierView is the slice of the actuator surface the agreement checker
// needs (satisfied by core.TierActuator).
type TierView interface {
	TierName() string
	ReplicaNames() []string
	Reconfiguring() bool
}

// BalancerAgreement checks that one balancer's member set agrees with its
// tier actuator: every member is a registered replica backed by a started
// component; when the tier is idle the member set equals the set of
// started replicas on healthy nodes; no member stays bound to a failed
// node longer than FailedGrace (self-recovery needs time to repair); and
// per-member pending counts never go negative.
type BalancerAgreement struct {
	// Members returns the balancer's member names, or nil while it is
	// not serving.
	Members func() []string
	// Pendings returns per-member in-flight counts (optional).
	Pendings func() map[string]int
	// Tier is the actuator owning the replicas.
	Tier TierView
	// ComponentState returns the Fractal state of a replica component.
	ComponentState func(name string) (fractal.State, error)
	// NodeOf resolves a replica's node.
	NodeOf func(name string) (*cluster.Node, error)
	// FailedGrace is how long a member may point at a failed node before
	// it is a violation (default 240 s, covering detection + repair).
	FailedGrace float64

	label       string
	failedSince map[string]float64
}

// NewBalancerAgreement builds the agreement checker.
func NewBalancerAgreement(label string, members func() []string, tier TierView) *BalancerAgreement {
	return &BalancerAgreement{
		Members:     members,
		Tier:        tier,
		FailedGrace: 240,
		label:       label,
		failedSince: map[string]float64{},
	}
}

// Name implements Checker.
func (c *BalancerAgreement) Name() string { return "balancer-agreement:" + c.label }

// Check implements Checker.
func (c *BalancerAgreement) Check(now float64, boundary bool) error {
	members := c.Members()
	if members == nil {
		return nil // balancer not serving
	}
	replicas := map[string]bool{}
	for _, r := range c.Tier.ReplicaNames() {
		replicas[r] = true
	}
	memberSet := make(map[string]bool, len(members))
	for _, m := range members {
		memberSet[m] = true
		if !replicas[m] {
			return fmt.Errorf("balancer member %s is not a replica of tier %s", m, c.Tier.TierName())
		}
		if c.ComponentState != nil {
			st, err := c.ComponentState(m)
			if err != nil {
				return fmt.Errorf("balancer member %s has no component: %v", m, err)
			}
			if st != fractal.Started {
				return fmt.Errorf("balancer member %s component is %s, not STARTED", m, st)
			}
		}
		if c.NodeOf != nil {
			node, err := c.NodeOf(m)
			if err != nil {
				return fmt.Errorf("balancer member %s has no node: %v", m, err)
			}
			if node.Failed() {
				since, ok := c.failedSince[m]
				if !ok {
					c.failedSince[m] = now
				} else if now-since > c.FailedGrace {
					return fmt.Errorf("balancer member %s bound to failed node %s for %.0f s (> %.0f s grace)",
						m, node.Name(), now-since, c.FailedGrace)
				}
			} else {
				delete(c.failedSince, m)
			}
		}
	}
	for m := range c.failedSince {
		if !memberSet[m] {
			delete(c.failedSince, m)
		}
	}
	if c.Pendings != nil {
		for name, pending := range c.Pendings() {
			if pending < 0 {
				return fmt.Errorf("balancer member %s pending count is negative (%d)", name, pending)
			}
		}
	}
	// Exact set equality only when the tier is quiescent: mid-grow the
	// replica joins the balancer before the replica list, and mid-shrink
	// it leaves the balancer first.
	if !c.Tier.Reconfiguring() {
		for _, r := range c.Tier.ReplicaNames() {
			if memberSet[r] {
				continue
			}
			if c.NodeOf != nil {
				if node, err := c.NodeOf(r); err == nil && node.Failed() {
					continue // awaiting repair; covered by the grace rule
				}
			}
			if c.ComponentState != nil {
				if st, err := c.ComponentState(r); err != nil || st != fractal.Started {
					continue
				}
			}
			return fmt.Errorf("started replica %s of tier %s missing from balancer", r, c.Tier.TierName())
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Fractal lifecycle legality

// Lifecycle checks that no STARTED component holds a client binding to a
// server interface whose owner component is STOPPED: requests through
// such a binding would hit software that is architecturally down.
type Lifecycle struct {
	// Roots returns the component trees to walk.
	Roots func() []*fractal.Component
}

// NewLifecycle builds the checker over fixed component roots.
func NewLifecycle(roots ...*fractal.Component) *Lifecycle {
	return &Lifecycle{Roots: func() []*fractal.Component { return roots }}
}

// Name implements Checker.
func (c *Lifecycle) Name() string { return "fractal-lifecycle" }

// Check implements Checker.
func (c *Lifecycle) Check(now float64, boundary bool) error {
	var bad error
	for _, root := range c.Roots() {
		if root == nil {
			continue
		}
		root.Visit(func(comp *fractal.Component) {
			if bad != nil || comp.State() != fractal.Started {
				return
			}
			for _, itf := range comp.Interfaces() {
				if itf.Role() != fractal.Client {
					continue
				}
				for _, b := range comp.Bindings(itf.Name()) {
					owner := b.ServerItf.Owner()
					if owner.State() == fractal.Stopped {
						bad = fmt.Errorf("STARTED %s bound via %s to %s of STOPPED %s",
							comp.Name(), itf.Name(), b.ServerItf.Name(), owner.Name())
						return
					}
				}
			}
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Arbiter legality

// ArbiterDecisionView is the slice of core.ArbiterDecision the legality
// checker reads (duplicated here to keep the dependency direction:
// invariant must not import core).
type ArbiterDecisionView struct {
	T        float64
	Priority int
	Granted  bool
	Released bool
}

// ArbiterLegality re-verifies the arbiter's decision log independently of
// the arbiter's own bookkeeping: within a quiet window, a new grant is
// legal only at strictly higher priority. With the standard priorities
// this is exactly "recovery may preempt sizing, never the reverse".
type ArbiterLegality struct {
	// QuietSeconds is the arbiter's configured window.
	QuietSeconds float64
	// Decisions returns the decision log so far, oldest first.
	Decisions func() []ArbiterDecisionView

	processed int
	holder    int     // priority of the last grant
	until     float64 // end of its quiet window
	active    bool
}

// NewArbiterLegality builds the checker.
func NewArbiterLegality(quietSeconds float64, decisions func() []ArbiterDecisionView) *ArbiterLegality {
	return &ArbiterLegality{QuietSeconds: quietSeconds, Decisions: decisions}
}

// Name implements Checker.
func (c *ArbiterLegality) Name() string { return "arbiter-legality" }

// Check implements Checker.
func (c *ArbiterLegality) Check(now float64, boundary bool) error {
	ds := c.Decisions()
	for ; c.processed < len(ds); c.processed++ {
		d := ds[c.processed]
		if !d.Granted {
			continue
		}
		if d.Released {
			// The holder gave the window up early.
			c.until = d.T
			continue
		}
		if c.active && d.T < c.until && d.Priority <= c.holder {
			return fmt.Errorf("grant at t=%.3f (priority %d) inside quiet window of priority %d holder (until t=%.3f)",
				d.T, d.Priority, c.holder, c.until)
		}
		c.holder = d.Priority
		c.until = d.T + c.QuietSeconds
		c.active = true
	}
	return nil
}
