package invariant

import "fmt"

// discardRecord remembers one replica discarded by a repair, with a live
// probe into the architecture.
type discardRecord struct {
	t       float64
	tier    string
	replica string
	alive   func() (bool, string)
}

// DoubleRepair guards the split-brain hazard a fallible failure detector
// introduces: when the recovery manager repairs a replica on a
// false-positive suspicion, the "failed" instance is actually alive, and
// a buggy repair path would leave two live replicas claiming one
// identity (the old one still serving, the replacement started under the
// same tier). The checker records every repair discard together with a
// probe of the discarded identity and fails if any discarded replica is
// ever observed serving again — so a repair acting on a wrong suspicion
// passes exactly when the discard really terminated the survivor.
type DoubleRepair struct {
	records []discardRecord
	checked uint64
}

// NewDoubleRepair returns an empty checker; feed it via Record (the
// scenario wires it to Platform.OnRepairDiscard).
func NewDoubleRepair() *DoubleRepair { return &DoubleRepair{} }

// Record notes that a repair discarded the replica at time t. alive must
// probe, at call time, whether the discarded identity is still being
// served, returning a short explanation when it is.
func (d *DoubleRepair) Record(t float64, tier, replica string, alive func() (bool, string)) {
	d.records = append(d.records, discardRecord{t: t, tier: tier, replica: replica, alive: alive})
}

// Discards returns how many repair discards have been recorded.
func (d *DoubleRepair) Discards() int { return len(d.records) }

// Confirmed returns how many discard records have been verified dead at
// least once — the count of repairs the invariant confirmed legal.
func (d *DoubleRepair) Confirmed() uint64 { return d.checked }

// Name implements Checker.
func (d *DoubleRepair) Name() string { return "double-repair" }

// Check implements Checker: every replica a repair discarded must stay
// gone.
func (d *DoubleRepair) Check(now float64, boundary bool) error {
	for _, r := range d.records {
		stillAlive, why := r.alive()
		if stillAlive {
			return fmt.Errorf("replica %s (%s), discarded by repair at t=%.1f, is still serving (%s): split-brain",
				r.replica, r.tier, r.t, why)
		}
	}
	d.checked = uint64(len(d.records))
	return nil
}
