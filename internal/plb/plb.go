// Package plb simulates PLB 0.3, the application-server load balancer the
// paper places in front of the replicated Tomcat tier. It forwards HTTP
// requests to a dynamic set of workers; the self-sizing actuator's
// "integrate the new replica with the load balancer" step is AddWorker,
// and the shrink path's "unbind some replicas from the load balancer" is
// RemoveWorker.
package plb

import (
	"errors"
	"fmt"
	"sort"

	"jade/internal/cluster"
	"jade/internal/legacy"
	"jade/internal/obs"
	"jade/internal/sim"
	"jade/internal/trace"
)

// Errors returned by the balancer.
var (
	ErrNoWorker      = errors.New("plb: no worker available")
	ErrWorkerExists  = errors.New("plb: worker already registered")
	ErrUnknownWorker = errors.New("plb: unknown worker")
	ErrNotRunning    = errors.New("plb: balancer not running")
)

// Policy selects how requests are spread across workers.
type Policy int

// Balancing policies.
const (
	RoundRobin Policy = iota
	LeastConnections
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastConnections:
		return "least-connections"
	}
	return "?"
}

type worker struct {
	name    string
	target  legacy.HTTPHandler
	pending int
	served  uint64
	errors  uint64
}

// Options tunes a balancer instance.
type Options struct {
	// Policy is the distribution policy (default RoundRobin).
	Policy Policy
	// ProxyCost is the CPU-seconds consumed on the balancer node per
	// forwarded request (PLB is lightweight; the paper dedicates it one
	// node that never saturates).
	ProxyCost float64
	// Port is the listening port registered on the network.
	Port int
	// MemoryMB is the balancer process footprint, held while running.
	MemoryMB float64
}

// DefaultOptions mirrors the paper's deployment.
func DefaultOptions() Options {
	return Options{Policy: RoundRobin, ProxyCost: 0.0002, Port: 8080, MemoryMB: 32}
}

// Balancer is one PLB instance.
type Balancer struct {
	eng     *sim.Engine
	net     *legacy.Network
	node    *cluster.Node
	name    string
	opts    Options
	addr    string
	running bool

	workers []*worker
	rrNext  int

	forwarded uint64
	dropped   uint64

	// Trace, when set, records worker membership changes and, for
	// requests carrying a TraceSpan, a "forward" child span naming the
	// chosen worker. All Tracer methods are nil-receiver safe, so the
	// field may stay unset.
	Trace *trace.Tracer
	// Obs, when set, records per-request counters and forward latency for
	// the balancer instance. Nil-safe like Trace.
	Obs *obs.TierMetrics
}

// New creates a stopped balancer on node.
func New(eng *sim.Engine, net *legacy.Network, node *cluster.Node, name string, opts Options) *Balancer {
	return &Balancer{eng: eng, net: net, node: node, name: name, opts: opts}
}

// Name returns the balancer's name.
func (b *Balancer) Name() string { return b.name }

// Node returns the balancer's node.
func (b *Balancer) Node() *cluster.Node { return b.node }

// Addr returns the registered address while running.
func (b *Balancer) Addr() string { return b.addr }

// Running reports whether the balancer is serving.
func (b *Balancer) Running() bool { return b.running }

// Forwarded returns the number of requests successfully handed to workers.
func (b *Balancer) Forwarded() uint64 { return b.forwarded }

// Dropped returns the number of requests rejected for lack of workers.
func (b *Balancer) Dropped() uint64 { return b.dropped }

// Start registers the balancer's listener.
func (b *Balancer) Start() error {
	if b.running {
		return fmt.Errorf("plb %s: already running", b.name)
	}
	if err := b.node.AllocMemory(b.opts.MemoryMB); err != nil {
		return err
	}
	addr := fmt.Sprintf("%s:%d", b.node.Name(), b.opts.Port)
	if err := b.net.Register(addr, b); err != nil {
		b.node.FreeMemory(b.opts.MemoryMB)
		return err
	}
	b.addr = addr
	b.running = true
	return nil
}

// Stop unregisters the listener. Pending requests complete.
func (b *Balancer) Stop() {
	if !b.running {
		return
	}
	b.net.Unregister(b.addr)
	b.addr = ""
	b.running = false
	b.node.FreeMemory(b.opts.MemoryMB)
}

// AddWorker registers a worker target under a unique name.
func (b *Balancer) AddWorker(name string, target legacy.HTTPHandler) error {
	for _, w := range b.workers {
		if w.name == name {
			return fmt.Errorf("%w: %s", ErrWorkerExists, name)
		}
	}
	b.workers = append(b.workers, &worker{name: name, target: target})
	b.Trace.Emit("membership.join", b.name, trace.F("worker", name), trace.Fi("workers", len(b.workers)))
	return nil
}

// RemoveWorker unbinds a worker; in-flight requests on it complete.
func (b *Balancer) RemoveWorker(name string) error {
	for i, w := range b.workers {
		if w.name == name {
			b.workers = append(b.workers[:i], b.workers[i+1:]...)
			b.Trace.Emit("membership.leave", b.name, trace.F("worker", name), trace.Fi("workers", len(b.workers)))
			return nil
		}
	}
	return fmt.Errorf("%w: %s", ErrUnknownWorker, name)
}

// Workers returns worker names sorted.
func (b *Balancer) Workers() []string {
	out := make([]string, 0, len(b.workers))
	for _, w := range b.workers {
		out = append(out, w.name)
	}
	sort.Strings(out)
	return out
}

// WorkerCount returns the number of registered workers.
func (b *Balancer) WorkerCount() int { return len(b.workers) }

// Pending returns the in-flight request count for a worker.
func (b *Balancer) Pending(name string) (int, error) {
	for _, w := range b.workers {
		if w.name == name {
			return w.pending, nil
		}
	}
	return 0, fmt.Errorf("%w: %s", ErrUnknownWorker, name)
}

// Pendings returns the in-flight request count of every worker, keyed by
// worker name. Invariant checkers verify the counts never go negative
// (a negative count would mean a completion callback ran twice).
func (b *Balancer) Pendings() map[string]int {
	out := make(map[string]int, len(b.workers))
	for _, w := range b.workers {
		out[w.name] = w.pending
	}
	return out
}

func (b *Balancer) pick() *worker {
	if len(b.workers) == 0 {
		return nil
	}
	switch b.opts.Policy {
	case LeastConnections:
		best := b.workers[0]
		for _, w := range b.workers[1:] {
			if w.pending < best.pending {
				best = w
			}
		}
		return best
	default:
		w := b.workers[b.rrNext%len(b.workers)]
		b.rrNext++
		return w
	}
}

// HandleHTTP proxies the request to a worker chosen by policy, consuming
// the proxy cost on the balancer node first.
func (b *Balancer) HandleHTTP(req *legacy.WebRequest, done func(error)) {
	if !b.running {
		b.Obs.Drop()
		b.dropped++
		done(fmt.Errorf("%w: %s", ErrNotRunning, b.name))
		return
	}
	if b.Obs != nil {
		start := b.Obs.Begin()
		orig := done
		done = func(err error) {
			b.Obs.End(start, err)
			orig(err)
		}
	}
	b.node.Submit(b.opts.ProxyCost, func() {
		w := b.pick()
		if w == nil {
			b.dropped++
			done(fmt.Errorf("%w (plb %s)", ErrNoWorker, b.name))
			return
		}
		w.pending++
		b.forwarded++
		var span trace.ID
		parent := req.TraceSpan
		if parent != 0 {
			span = b.Trace.Begin(parent, "forward", b.name, trace.F("worker", w.name))
			req.TraceSpan = span
		}
		b.net.ForwardHTTP(b.node.Name(), "app", w.target, req, func(err error) {
			w.pending--
			if err != nil {
				w.errors++
			} else {
				w.served++
			}
			if span != 0 {
				req.TraceSpan = parent
				b.Trace.End(span, trace.Outcome(err))
			}
			done(err)
		})
	}, func() {
		b.dropped++
		done(fmt.Errorf("plb %s: balancer node failed", b.name))
	})
}
