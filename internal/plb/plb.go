// Package plb simulates PLB 0.3, the application-server load balancer the
// paper places in front of the replicated Tomcat tier. It forwards HTTP
// requests to a dynamic set of workers; the self-sizing actuator's
// "integrate the new replica with the load balancer" step is AddWorker,
// and the shrink path's "unbind some replicas from the load balancer" is
// RemoveWorker. Worker selection is delegated to the shared
// internal/selector framework: the pool tracks in-flight counts, decayed
// failure/latency history and suspected-down workers, and the configured
// policy (round-robin by default) picks among the eligible ones.
package plb

import (
	"errors"
	"fmt"

	"jade/internal/cluster"
	"jade/internal/fluid"
	"jade/internal/legacy"
	"jade/internal/obs"
	"jade/internal/selector"
	"jade/internal/sim"
	"jade/internal/trace"
)

// Errors returned by the balancer.
var (
	ErrNoWorker      = errors.New("plb: no worker available")
	ErrWorkerExists  = errors.New("plb: worker already registered")
	ErrUnknownWorker = errors.New("plb: unknown worker")
	ErrNotRunning    = errors.New("plb: balancer not running")
)

// Options tunes a balancer instance.
type Options struct {
	// Routing configures the worker-selection policy and its pool
	// (selector round-robin by default, PLB's historic behavior).
	Routing selector.Options
	// ProxyCost is the CPU-seconds consumed on the balancer node per
	// forwarded request (PLB is lightweight; the paper dedicates it one
	// node that never saturates).
	ProxyCost float64
	// Port is the listening port registered on the network.
	Port int
	// MemoryMB is the balancer process footprint, held while running.
	MemoryMB float64
}

// DefaultOptions mirrors the paper's deployment.
func DefaultOptions() Options {
	return Options{
		Routing:   selector.DefaultOptions(selector.RoundRobin),
		ProxyCost: 0.0002,
		Port:      8080,
		MemoryMB:  32,
	}
}

// Balancer is one PLB instance.
type Balancer struct {
	eng     *sim.Engine
	net     *legacy.Network
	node    *cluster.Node
	name    string
	opts    Options
	addr    string
	running bool

	pool    *selector.Pool
	targets map[string]legacy.HTTPHandler
	// sessions pins affinity keys to workers under the rendezvous
	// policy; entries are evicted when their worker leaves the pool
	// (clean shrink or fencing discard alike), so a sticky session can
	// never be routed to a departed worker.
	sessions map[string]string

	forwarded uint64
	dropped   uint64

	// Trace, when set, records worker membership changes and, for
	// requests carrying a TraceSpan, a "forward" child span naming the
	// chosen worker. All Tracer methods are nil-receiver safe, so the
	// field may stay unset.
	Trace *trace.Tracer
	// Obs, when set, records per-request counters and forward latency for
	// the balancer instance. Nil-safe like Trace.
	Obs *obs.TierMetrics
}

// New creates a stopped balancer on node.
func New(eng *sim.Engine, net *legacy.Network, node *cluster.Node, name string, opts Options) *Balancer {
	ropts := opts.Routing
	ropts.Now = eng.Now
	b := &Balancer{
		eng:      eng,
		net:      net,
		node:     node,
		name:     name,
		opts:     opts,
		pool:     selector.New(ropts),
		targets:  make(map[string]legacy.HTTPHandler),
		sessions: make(map[string]string),
	}
	b.pool.OnEvict(func(worker string) {
		for key, w := range b.sessions {
			if w == worker {
				delete(b.sessions, key)
			}
		}
	})
	return b
}

// Name returns the balancer's name.
func (b *Balancer) Name() string { return b.name }

// Node returns the balancer's node.
func (b *Balancer) Node() *cluster.Node { return b.node }

// Addr returns the registered address while running.
func (b *Balancer) Addr() string { return b.addr }

// Running reports whether the balancer is serving.
func (b *Balancer) Running() bool { return b.running }

// Forwarded returns the number of requests successfully handed to workers.
func (b *Balancer) Forwarded() uint64 { return b.forwarded }

// Dropped returns the number of requests rejected for lack of workers.
func (b *Balancer) Dropped() uint64 { return b.dropped }

// Pool exposes the worker pool (suspicion feeding, introspection).
func (b *Balancer) Pool() *selector.Pool { return b.pool }

// FluidModel exposes the balancer's service model to the fluid workload
// network: every proxied request costs ProxyCost CPU-seconds on the
// balancer node, so as a fluid station the PLB saturates at
// μ = C/ProxyCost requests per second.
func (b *Balancer) FluidModel() fluid.ServiceModel {
	return fluid.ServiceModel{
		Name:        b.name,
		Node:        b.node,
		CostPerUnit: b.opts.ProxyCost,
		Up:          func() bool { return b.running },
	}
}

// Start registers the balancer's listener.
func (b *Balancer) Start() error {
	if b.running {
		return fmt.Errorf("plb %s: already running", b.name)
	}
	if err := b.node.AllocMemory(b.opts.MemoryMB); err != nil {
		return err
	}
	addr := fmt.Sprintf("%s:%d", b.node.Name(), b.opts.Port)
	if err := b.net.Register(addr, b); err != nil {
		b.node.FreeMemory(b.opts.MemoryMB)
		return err
	}
	b.addr = addr
	b.running = true
	return nil
}

// Stop unregisters the listener. Pending requests complete.
func (b *Balancer) Stop() {
	if !b.running {
		return
	}
	b.net.Unregister(b.addr)
	b.addr = ""
	b.running = false
	b.node.FreeMemory(b.opts.MemoryMB)
}

// AddWorker registers a worker target under a unique name.
func (b *Balancer) AddWorker(name string, target legacy.HTTPHandler) error {
	if err := b.pool.Add(name, 1); err != nil {
		return fmt.Errorf("%w: %s", ErrWorkerExists, name)
	}
	b.targets[name] = target
	b.Trace.Emit("membership.join", b.name, trace.F("worker", name), trace.Fi("workers", b.pool.Len()))
	return nil
}

// RemoveWorker unbinds a worker; in-flight requests on it complete, and
// any sessions pinned to it are evicted.
func (b *Balancer) RemoveWorker(name string) error {
	if err := b.pool.Remove(name); err != nil {
		return fmt.Errorf("%w: %s", ErrUnknownWorker, name)
	}
	delete(b.targets, name)
	b.Trace.Emit("membership.leave", b.name, trace.F("worker", name), trace.Fi("workers", b.pool.Len()))
	return nil
}

// Workers returns worker names sorted.
func (b *Balancer) Workers() []string { return b.pool.Names() }

// WorkerCount returns the number of registered workers.
func (b *Balancer) WorkerCount() int { return b.pool.Len() }

// SessionCount returns the number of pinned session entries.
func (b *Balancer) SessionCount() int { return len(b.sessions) }

// StickyWorker returns the worker a session key is pinned to, if any.
func (b *Balancer) StickyWorker(key string) (string, bool) {
	w, ok := b.sessions[key]
	return w, ok
}

// Pending returns the in-flight request count for a worker.
func (b *Balancer) Pending(name string) (int, error) {
	if !b.pool.Has(name) {
		return 0, fmt.Errorf("%w: %s", ErrUnknownWorker, name)
	}
	return b.pool.Pendings()[name], nil
}

// Pendings returns the in-flight request count of every worker, keyed by
// worker name. Invariant checkers verify the counts never go negative
// (a negative count would mean a completion callback ran twice).
func (b *Balancer) Pendings() map[string]int { return b.pool.Pendings() }

// pickWorker selects a worker for the request's affinity key. Under the
// rendezvous policy a key sticks to its first worker until that worker
// leaves the pool or goes down; other policies ignore the table.
func (b *Balancer) pickWorker(key string) (string, bool) {
	sticky := b.pool.Policy() == selector.Rendezvous && key != ""
	if sticky {
		if w, ok := b.sessions[key]; ok && b.pool.Healthy(w) {
			return w, true
		}
	}
	name, ok := b.pool.Pick(key)
	if ok && sticky {
		b.sessions[key] = name
	}
	return name, ok
}

// HandleHTTP proxies the request to a worker chosen by policy, consuming
// the proxy cost on the balancer node first.
func (b *Balancer) HandleHTTP(req *legacy.WebRequest, done func(error)) {
	if !b.running {
		b.Obs.Drop()
		b.dropped++
		done(fmt.Errorf("%w: %s", ErrNotRunning, b.name))
		return
	}
	if b.Obs != nil {
		start := b.Obs.Begin()
		orig := done
		done = func(err error) {
			b.Obs.End(start, err)
			orig(err)
		}
	}
	// The forward span opens before the balancer node's run queue so it
	// covers local queue wait + service; "busy" records that local
	// interval and "svc" the ideal service time, letting the attribution
	// walker split the span's self-time into queue/service/network.
	var span trace.ID
	parent := req.TraceSpan
	submitted := b.eng.Now()
	if parent != 0 {
		span = b.Trace.Begin(parent, "forward", b.name)
		req.TraceSpan = span
	}
	endSpan := func(err error, busy float64, worker string) {
		if span == 0 {
			return
		}
		req.TraceSpan = parent
		fields := []trace.Field{
			trace.Ff("busy", busy),
			trace.Ff("svc", b.opts.ProxyCost/b.node.Config().CPUCapacity),
			trace.Outcome(err),
		}
		if worker != "" {
			fields = append(fields, trace.F("worker", worker))
		}
		b.Trace.End(span, fields...)
	}
	b.node.Submit(b.opts.ProxyCost, func() {
		busy := b.eng.Now() - submitted
		name, ok := b.pickWorker(req.SessionKey)
		if !ok {
			b.dropped++
			err := fmt.Errorf("%w (plb %s)", ErrNoWorker, b.name)
			endSpan(err, busy, "")
			done(err)
			return
		}
		target := b.targets[name]
		b.pool.Acquire(name)
		b.forwarded++
		start := b.eng.Now()
		b.net.ForwardHTTP(b.node.Name(), "app", target, req, func(err error) {
			b.pool.Release(name, b.eng.Now()-start, err != nil)
			endSpan(err, busy, name)
			done(err)
		})
	}, func() {
		b.dropped++
		err := fmt.Errorf("plb %s: balancer node failed", b.name)
		endSpan(err, b.eng.Now()-submitted, "")
		done(err)
	})
}
