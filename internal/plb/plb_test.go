package plb

import (
	"errors"
	"testing"

	"jade/internal/cluster"
	"jade/internal/legacy"
	"jade/internal/selector"
	"jade/internal/sim"
)

// fakeWorker is a scriptable HTTP backend.
type fakeWorker struct {
	eng      *sim.Engine
	delay    float64
	err      error
	served   int
	inFly    int
	maxInFly int
}

func (f *fakeWorker) HandleHTTP(req *legacy.WebRequest, done func(error)) {
	f.inFly++
	if f.inFly > f.maxInFly {
		f.maxInFly = f.inFly
	}
	f.eng.After(f.delay, "fake", func() {
		f.inFly--
		f.served++
		done(f.err)
	})
}

func newBalancer(t *testing.T, policy selector.Policy) (*sim.Engine, *Balancer) {
	t.Helper()
	eng := sim.NewEngine(5)
	net := legacy.NewNetwork()
	node := cluster.NewNode(eng, "lbnode", cluster.DefaultConfig())
	opts := DefaultOptions()
	opts.Routing = selector.DefaultOptions(policy)
	b := New(eng, net, node, "plb", opts)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	return eng, b
}

func TestRoundRobinDistribution(t *testing.T) {
	eng, b := newBalancer(t, selector.RoundRobin)
	w1 := &fakeWorker{eng: eng, delay: 0.01}
	w2 := &fakeWorker{eng: eng, delay: 0.01}
	if err := b.AddWorker("t1", w1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddWorker("t2", w2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b.HandleHTTP(&legacy.WebRequest{}, func(error) {})
	}
	eng.Run()
	if w1.served != 5 || w2.served != 5 {
		t.Fatalf("split = %d/%d, want 5/5", w1.served, w2.served)
	}
	if b.Forwarded() != 10 {
		t.Fatalf("Forwarded = %d", b.Forwarded())
	}
}

func TestLeastConnectionsPrefersIdleWorker(t *testing.T) {
	eng, b := newBalancer(t, selector.LeastPending)
	slow := &fakeWorker{eng: eng, delay: 10}
	fast := &fakeWorker{eng: eng, delay: 0.001}
	if err := b.AddWorker("slow", slow); err != nil {
		t.Fatal(err)
	}
	if err := b.AddWorker("fast", fast); err != nil {
		t.Fatal(err)
	}
	// First two requests land one on each; afterwards the slow worker is
	// still busy so everything goes to the fast one.
	for i := 0; i < 10; i++ {
		at := float64(i) * 0.1
		eng.At(at, "req", func() {
			b.HandleHTTP(&legacy.WebRequest{}, func(error) {})
		})
	}
	eng.Run()
	if slow.served != 1 {
		t.Fatalf("slow worker served %d, want 1", slow.served)
	}
	if fast.served != 9 {
		t.Fatalf("fast worker served %d, want 9", fast.served)
	}
}

func TestAddRemoveWorkerDynamics(t *testing.T) {
	eng, b := newBalancer(t, selector.RoundRobin)
	w1 := &fakeWorker{eng: eng, delay: 0.001}
	if err := b.AddWorker("t1", w1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddWorker("t1", w1); !errors.Is(err, ErrWorkerExists) {
		t.Fatalf("duplicate add: %v", err)
	}
	if got := b.Workers(); len(got) != 1 || got[0] != "t1" {
		t.Fatalf("Workers = %v", got)
	}
	if b.WorkerCount() != 1 {
		t.Fatalf("WorkerCount = %d", b.WorkerCount())
	}
	if err := b.RemoveWorker("t1"); err != nil {
		t.Fatal(err)
	}
	if err := b.RemoveWorker("t1"); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("double remove: %v", err)
	}
	var got error
	b.HandleHTTP(&legacy.WebRequest{}, func(err error) { got = err })
	eng.Run()
	if !errors.Is(got, ErrNoWorker) {
		t.Fatalf("request with no workers: %v", got)
	}
	if b.Dropped() != 1 {
		t.Fatalf("Dropped = %d", b.Dropped())
	}
}

func TestRemoveWorkerLetsInFlightComplete(t *testing.T) {
	eng, b := newBalancer(t, selector.RoundRobin)
	w := &fakeWorker{eng: eng, delay: 5}
	if err := b.AddWorker("t1", w); err != nil {
		t.Fatal(err)
	}
	completed := false
	b.HandleHTTP(&legacy.WebRequest{}, func(err error) {
		if err != nil {
			t.Errorf("in-flight request failed: %v", err)
		}
		completed = true
	})
	eng.RunUntil(0.1)
	if err := b.RemoveWorker("t1"); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !completed {
		t.Fatal("in-flight request lost on RemoveWorker")
	}
}

func TestPendingAccounting(t *testing.T) {
	eng, b := newBalancer(t, selector.RoundRobin)
	w := &fakeWorker{eng: eng, delay: 1}
	if err := b.AddWorker("t1", w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b.HandleHTTP(&legacy.WebRequest{}, func(error) {})
	}
	eng.RunUntil(0.5)
	if p, err := b.Pending("t1"); err != nil || p != 3 {
		t.Fatalf("Pending = %d, %v", p, err)
	}
	eng.Run()
	if p, _ := b.Pending("t1"); p != 0 {
		t.Fatalf("Pending after drain = %d", p)
	}
	if _, err := b.Pending("ghost"); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("Pending(ghost): %v", err)
	}
}

func TestWorkerErrorsCountedAndPropagated(t *testing.T) {
	eng, b := newBalancer(t, selector.RoundRobin)
	w := &fakeWorker{eng: eng, delay: 0.001, err: errors.New("boom")}
	if err := b.AddWorker("t1", w); err != nil {
		t.Fatal(err)
	}
	var got error
	b.HandleHTTP(&legacy.WebRequest{}, func(err error) { got = err })
	eng.Run()
	if got == nil || got.Error() != "boom" {
		t.Fatalf("worker error not propagated: %v", got)
	}
}

func TestLifecycle(t *testing.T) {
	eng, b := newBalancer(t, selector.RoundRobin)
	if err := b.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	if b.Addr() != "lbnode:8080" {
		t.Fatalf("Addr = %q", b.Addr())
	}
	b.Stop()
	if b.Running() {
		t.Fatal("running after stop")
	}
	var got error
	b.HandleHTTP(&legacy.WebRequest{}, func(err error) { got = err })
	eng.Run()
	if !errors.Is(got, ErrNotRunning) {
		t.Fatalf("request to stopped balancer: %v", got)
	}
	b.Stop() // idempotent
	if err := b.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
}

func TestBalancerNodeFailure(t *testing.T) {
	eng, b := newBalancer(t, selector.RoundRobin)
	w := &fakeWorker{eng: eng, delay: 0.001}
	if err := b.AddWorker("t1", w); err != nil {
		t.Fatal(err)
	}
	var got error
	b.HandleHTTP(&legacy.WebRequest{}, func(err error) { got = err })
	b.Node().Fail()
	eng.Run()
	if got == nil {
		t.Fatal("request on failed balancer node succeeded")
	}
}

func TestSessionAffinityStickyAndEvicted(t *testing.T) {
	eng, b := newBalancer(t, selector.Rendezvous)
	workers := map[string]*fakeWorker{}
	for _, n := range []string{"t1", "t2", "t3"} {
		w := &fakeWorker{eng: eng, delay: 0.001}
		workers[n] = w
		if err := b.AddWorker(n, w); err != nil {
			t.Fatal(err)
		}
	}
	// Each session key sticks to one worker across repeated requests.
	for i := 0; i < 5; i++ {
		for _, key := range []string{"s1", "s2", "s3", "s4"} {
			b.HandleHTTP(&legacy.WebRequest{SessionKey: key}, func(error) {})
		}
		eng.Run()
	}
	if b.SessionCount() != 4 {
		t.Fatalf("SessionCount = %d, want 4", b.SessionCount())
	}
	pinned, ok := b.StickyWorker("s1")
	if !ok {
		t.Fatal("s1 has no sticky worker")
	}
	total := 0
	for _, w := range workers {
		total += w.served
	}
	if total != 20 {
		t.Fatalf("served total = %d, want 20", total)
	}
	// Removing the pinned worker evicts its sessions; the key re-pins to
	// a survivor and requests keep flowing.
	if err := b.RemoveWorker(pinned); err != nil {
		t.Fatal(err)
	}
	if w, ok := b.StickyWorker("s1"); ok {
		t.Fatalf("session s1 still pinned to departed worker %s", w)
	}
	var got error
	b.HandleHTTP(&legacy.WebRequest{SessionKey: "s1"}, func(err error) { got = err })
	eng.Run()
	if got != nil {
		t.Fatalf("re-pinned request failed: %v", got)
	}
	if w, ok := b.StickyWorker("s1"); !ok || w == pinned {
		t.Fatalf("s1 re-pinned to %q (ok=%v), departed worker was %q", w, ok, pinned)
	}
}
