// Package report renders experiment results: multi-series ASCII charts
// (the textual equivalent of the paper's gnuplot figures), aligned tables
// (Table 1), and CSV emitters for external plotting.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"jade/internal/metrics"
)

// Chart renders one or more time series as an ASCII plot.
type Chart struct {
	Title  string
	YLabel string
	// Width and Height are the plot area size in characters.
	Width, Height int
	// YMax overrides the y-axis maximum (0 = auto).
	YMax float64
	// YMin is the y-axis minimum (default 0).
	YMin float64
	// Series are drawn in order; later series overdraw earlier ones.
	Series []ChartSeries
	// HLines draws horizontal reference lines (e.g. thresholds).
	HLines []HLine
}

// ChartSeries is one plotted series.
type ChartSeries struct {
	Name   string
	Glyph  byte
	Points []metrics.Point
}

// HLine is a horizontal reference line.
type HLine struct {
	Name  string
	Value float64
	Glyph byte
}

// FromSeries converts a metrics series to a chart series.
func FromSeries(s *metrics.Series, glyph byte) ChartSeries {
	return ChartSeries{Name: s.Name, Glyph: glyph, Points: s.Points}
}

// Render draws the chart.
func (c *Chart) Render() string {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}
	tMin, tMax := math.Inf(1), math.Inf(-1)
	yMax := c.YMax
	for _, s := range c.Series {
		for _, p := range finitePoints(s.Points) {
			tMin = math.Min(tMin, p.T)
			tMax = math.Max(tMax, p.T)
			if c.YMax == 0 && p.V > yMax {
				yMax = p.V
			}
		}
	}
	if c.YMax == 0 {
		for _, h := range c.HLines {
			if isFinite(h.Value) && h.Value > yMax {
				yMax = h.Value
			}
		}
	}
	if math.IsInf(tMin, 1) {
		tMin, tMax = 0, 1
	}
	if tMax <= tMin {
		tMax = tMin + 1
	}
	if yMax <= c.YMin {
		yMax = c.YMin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	row := func(v float64) int {
		frac := (v - c.YMin) / (yMax - c.YMin)
		r := height - 1 - int(math.Round(frac*float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for _, h := range c.HLines {
		if !isFinite(h.Value) {
			continue
		}
		r := row(h.Value)
		g := h.Glyph
		if g == 0 {
			g = '-'
		}
		for x := 0; x < width; x++ {
			grid[r][x] = g
		}
	}
	for _, s := range c.Series {
		pts := finitePoints(s.Points)
		if len(pts) == 0 {
			continue
		}
		g := s.Glyph
		if g == 0 {
			g = '*'
		}
		// Step-interpolated sampling at each column.
		idx := 0
		last := pts[0].V
		for x := 0; x < width; x++ {
			t := tMin + (tMax-tMin)*float64(x)/float64(width-1)
			for idx < len(pts) && pts[idx].T <= t {
				last = pts[idx].V
				idx++
			}
			if pts[0].T > t {
				continue
			}
			grid[row(last)][x] = g
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	label := c.YLabel
	for i, line := range grid {
		yVal := yMax - (yMax-c.YMin)*float64(i)/float64(height-1)
		prefix := fmt.Sprintf("%9.3g |", yVal)
		if i == 0 && label != "" {
			prefix = fmt.Sprintf("%9.9s |", label)
			prefix = fmt.Sprintf("%9.3g |", yVal)
		}
		b.WriteString(prefix)
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "%10s %-12.4g%s%12.4g\n", "", tMin,
		strings.Repeat(" ", maxInt(1, width-24)), tMax)
	var legend []string
	for _, s := range c.Series {
		if len(finitePoints(s.Points)) == 0 {
			legend = append(legend, fmt.Sprintf("! %s (no data)", s.Name))
			continue
		}
		g := s.Glyph
		if g == 0 {
			g = '*'
		}
		legend = append(legend, fmt.Sprintf("%c %s", g, s.Name))
	}
	for _, h := range c.HLines {
		g := h.Glyph
		if g == 0 {
			g = '-'
		}
		legend = append(legend, fmt.Sprintf("%c %s", g, h.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "  legend: %s\n", strings.Join(legend, " | "))
	}
	return b.String()
}

// finitePoints drops NaN/Inf samples; a series with no finite point at
// all is left off the plot and flagged with '!' in the legend.
func finitePoints(pts []metrics.Point) []metrics.Point {
	clean := true
	for _, p := range pts {
		if !isFinite(p.T) || !isFinite(p.V) {
			clean = false
			break
		}
	}
	if clean {
		return pts
	}
	f := make([]metrics.Point, 0, len(pts))
	for _, p := range pts {
		if isFinite(p.T) && isFinite(p.V) {
			f = append(f, p)
		}
	}
	return f
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table renders an aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render draws the table.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", maxInt(1, total-2)) + "\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders multiple series resampled onto a common time grid.
func CSV(step float64, series ...*metrics.Series) string {
	if len(series) == 0 {
		return ""
	}
	tMin, tMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if s.Len() == 0 {
			continue
		}
		tMin = math.Min(tMin, s.Points[0].T)
		tMax = math.Max(tMax, s.Points[s.Len()-1].T)
	}
	if math.IsInf(tMin, 1) {
		return ""
	}
	var b strings.Builder
	b.WriteString("time")
	for _, s := range series {
		b.WriteString("," + s.Name)
	}
	b.WriteByte('\n')
	for t := tMin; t <= tMax+1e-9; t += step {
		fmt.Fprintf(&b, "%.3f", t)
		for _, s := range series {
			fmt.Fprintf(&b, ",%.6g", s.At(t))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// KV renders a sorted key/value block (experiment metadata).
func KV(pairs map[string]string) string {
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := 0
	for _, k := range keys {
		if len(k) > w {
			w = len(k)
		}
	}
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-*s : %s\n", w, k, pairs[k])
	}
	return b.String()
}
