package report

import (
	"math"
	"strings"
	"testing"

	"jade/internal/metrics"
)

func ramp(name string, n int) *metrics.Series {
	s := metrics.NewSeries(name)
	for i := 0; i < n; i++ {
		s.Add(float64(i), float64(i%10))
	}
	return s
}

func TestChartRendersSeriesAndLegend(t *testing.T) {
	s := ramp("cpu", 100)
	c := &Chart{
		Title:  "Figure X",
		Series: []ChartSeries{FromSeries(s, '*')},
		HLines: []HLine{{Name: "max", Value: 8, Glyph: '='}},
	}
	out := c.Render()
	if !strings.Contains(out, "Figure X") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("series glyph missing")
	}
	if !strings.Contains(out, "=") {
		t.Fatal("hline glyph missing")
	}
	if !strings.Contains(out, "legend: * cpu | = max") {
		t.Fatalf("legend missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + 16 rows + axis + labels + legend.
	if len(lines) != 1+16+1+1+1 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestChartEmptySeries(t *testing.T) {
	c := &Chart{Series: []ChartSeries{{Name: "empty", Glyph: 'x'}}}
	out := c.Render()
	if strings.Contains(out, "x ") && strings.Contains(out, "| x") {
		t.Fatal("glyphs drawn for empty series")
	}
	// No panic is the main contract; axis should still render.
	if !strings.Contains(out, "+") {
		t.Fatal("axis missing")
	}
}

func TestChartGuardsNaNAndEmptySeries(t *testing.T) {
	good := metrics.NewSeries("good")
	good.Add(0, 1)
	good.Add(10, 3)
	poisoned := metrics.NewSeries("poisoned")
	poisoned.Add(0, math.NaN())
	poisoned.Add(5, math.Inf(1))
	c := &Chart{
		Series: []ChartSeries{
			FromSeries(good, '*'),
			FromSeries(poisoned, 'p'),
			{Name: "empty", Glyph: 'e'},
		},
		HLines: []HLine{{Name: "bad-line", Value: math.NaN(), Glyph: '='}},
	}
	out := c.Render()
	if strings.Contains(out, "NaN") {
		t.Fatalf("NaN leaked into the chart:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("finite series not drawn:\n%s", out)
	}
	for _, g := range []string{"p", "="} {
		if strings.Contains(strings.SplitN(out, "legend:", 2)[0], g) {
			t.Fatalf("glyph %q drawn for non-finite data:\n%s", g, out)
		}
	}
	if !strings.Contains(out, "! poisoned (no data)") || !strings.Contains(out, "! empty (no data)") {
		t.Fatalf("legend should flag data-less series:\n%s", out)
	}
	// A NaN sample inside an otherwise healthy series is just skipped.
	mixed := metrics.NewSeries("mixed")
	mixed.Add(0, 1)
	mixed.Add(1, math.NaN())
	mixed.Add(2, 2)
	out = (&Chart{Series: []ChartSeries{FromSeries(mixed, 'm')}}).Render()
	if !strings.Contains(out, "m") || strings.Contains(out, "(no data)") {
		t.Fatalf("mixed series should plot its finite points:\n%s", out)
	}
}

func TestChartRespectsYMax(t *testing.T) {
	s := metrics.NewSeries("v")
	s.Add(0, 5)
	s.Add(10, 100)
	c := &Chart{YMax: 10, Height: 10, Width: 20, Series: []ChartSeries{FromSeries(s, '*')}}
	out := c.Render()
	// The top label must reflect YMax, not the series max.
	if !strings.Contains(out, "10 |") {
		t.Fatalf("y axis not clamped:\n%s", out)
	}
}

func TestChartMultiSeriesOverdraw(t *testing.T) {
	a := metrics.NewSeries("a")
	b := metrics.NewSeries("b")
	for i := 0; i < 50; i++ {
		a.Add(float64(i), 2)
		b.Add(float64(i), 8)
	}
	c := &Chart{Series: []ChartSeries{FromSeries(a, 'a'), FromSeries(b, 'b')}}
	out := c.Render()
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("both series should render at distinct heights")
	}
}

func TestTableAlignment(t *testing.T) {
	tb := &Table{
		Title:   "Table 1. Performance overhead",
		Headers: []string{"", "with Jade", "without Jade"},
	}
	tb.AddRow("Throughput (req./s)", "12", "12")
	tb.AddRow("Resp.time (ms)", "89", "87")
	out := tb.Render()
	if !strings.Contains(out, "Table 1") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// All data lines equal length (alignment).
	if len(lines[1]) != len(lines[3]) || len(lines[3]) != len(lines[4]) {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

func TestCSVResamplesOntoCommonGrid(t *testing.T) {
	a := metrics.NewSeries("a")
	a.Add(0, 1)
	a.Add(10, 2)
	b := metrics.NewSeries("b")
	b.Add(5, 7)
	out := CSV(5, a, b)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "time,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 { // t = 0, 5, 10
		t.Fatalf("rows = %d:\n%s", len(lines), out)
	}
	if lines[1] != "0.000,1,0" {
		t.Fatalf("row 0 = %q", lines[1])
	}
	if lines[3] != "10.000,2,7" {
		t.Fatalf("row 2 = %q", lines[3])
	}
	if CSV(1) != "" {
		t.Fatal("CSV() with no series should be empty")
	}
	empty := metrics.NewSeries("e")
	if CSV(1, empty) != "" {
		t.Fatal("CSV of empty series should be empty")
	}
}

func TestKVSorted(t *testing.T) {
	out := KV(map[string]string{"zz": "1", "aa": "2"})
	if !strings.HasPrefix(out, "aa : 2\nzz : 1\n") {
		t.Fatalf("KV output = %q", out)
	}
}
