package attrib

import (
	"encoding/json"
	"fmt"
	"sort"

	"jade/internal/metrics"
)

// BudgetSchema versions the latency-budget artifact.
const BudgetSchema = "jade-latbudget/v1"

// ComponentStat is one (tier, component) row of a budget profile, with
// exact percentiles over the per-request component values.
type ComponentStat struct {
	Tier      string  `json:"tier"`
	Component string  `json:"component"`
	MeanSec   float64 `json:"mean_sec"`
	P50Sec    float64 `json:"p50_sec"`
	P95Sec    float64 `json:"p95_sec"`
	P99Sec    float64 `json:"p99_sec"`
	Share     float64 `json:"share"` // fraction of the class's summed mean latency
}

// Profile is the latency budget of one interaction class.
type Profile struct {
	Interaction string          `json:"interaction"`
	Requests    int             `json:"requests"`
	TotalP50Sec float64         `json:"total_p50_sec"`
	TotalP95Sec float64         `json:"total_p95_sec"`
	TotalP99Sec float64         `json:"total_p99_sec"`
	Components  []ComponentStat `json:"components"`
}

// BandBlame names the dominant (tier, component) for one percentile
// band of the end-to-end latency distribution.
type BandBlame struct {
	Band      string  `json:"band"` // "p50" (fast half), "p50-p95", "p95-p99", "p99"
	Requests  int     `json:"requests"`
	MeanSec   float64 `json:"mean_sec"` // mean end-to-end latency in the band
	Tier      string  `json:"tier"`
	Component string  `json:"component"`
	Share     float64 `json:"share"` // dominant component's share of the band mean
}

// FluidTier is one fluid station's wait estimate rendered in budget
// form, so million-client runs report the same shape as discrete ones.
type FluidTier struct {
	Station    string  `json:"station"`
	Rho        float64 `json:"rho"`       // final utilization
	PeakRho    float64 `json:"peak_rho"`  // peak utilization
	QueueSec   float64 `json:"queue_sec"` // wait minus ideal service
	ServiceSec float64 `json:"service_sec"`
	PeakSec    float64 `json:"peak_sec"` // peak total wait
}

// Report is the serialized latency-budget artifact.
type Report struct {
	Schema             string      `json:"schema"`
	Requests           int         `json:"requests"`
	Errors             int         `json:"errors"`
	Skipped            int         `json:"skipped"`
	MaxConservationErr float64     `json:"max_conservation_err"`
	Profiles           []Profile   `json:"profiles"`
	CriticalPath       []BandBlame `json:"critical_path"`
	Fluid              []FluidTier `json:"fluid,omitempty"`
}

// quantBands partition the end-to-end distribution for blame analysis.
var quantBands = []struct {
	name     string
	loQ, hiQ float64 // quantile range (loQ, hiQ]
}{
	{name: "p50", loQ: 0, hiQ: 0.50},
	{name: "p50-p95", loQ: 0.50, hiQ: 0.95},
	{name: "p95-p99", loQ: 0.95, hiQ: 0.99},
	{name: "p99", loQ: 0.99, hiQ: 1},
}

// quantile matches obs.Histogram.Quantile: sort once, then the
// metrics.Percentile linear-interpolation convention — so the artifact
// values are identical to the registry-histogram implementation this
// replaced.
func quantile(sorted []float64, p float64) float64 {
	return metrics.Percentile(sorted, p)
}

// compInfo is one (tier, component) bucket of a class during report
// building. Kept in a small reused linear slice — a class touches at
// most a dozen or so pairs — so aggregation does no map work.
type compInfo struct {
	tier, component string
	count, cur      int
	sum             float64
}

// BuildReport aggregates an analysis into the budget artifact. The
// per-component percentiles are exact (sorted raw samples per class);
// every slice is sorted so same-seed reports are byte-identical.
//
// The aggregation is allocation-light by design: class names are
// gathered with a linear scan (interaction names are interned strings,
// so the per-class filter passes compare pointers), and each class's
// component samples are bucketed into one reused flat buffer (count,
// then fill), so only plain float64 slices are ever sorted — the
// budget is rebuilt per analysis window and its cost is tracked in
// BENCH_core.json against a 2%-of-engine budget.
func BuildReport(a *Analysis, fluid []FluidTier) *Report {
	r := &Report{
		Schema:   BudgetSchema,
		Requests: len(a.Breakdowns),
		Errors:   a.Errors,
		Skipped:  a.Skipped,
		Fluid:    fluid,
	}
	var names []string
	for i := range a.Breakdowns {
		b := &a.Breakdowns[i]
		if e := b.ConservationErr(); e > r.MaxConservationErr {
			r.MaxConservationErr = e
		}
		seen := false
		for _, n := range names {
			if n == b.Interaction {
				seen = true
				break
			}
		}
		if !seen {
			names = append(names, b.Interaction)
		}
	}
	sort.Strings(names)
	var totals, vals []float64
	var comps []compInfo
	for _, name := range names {
		p := Profile{Interaction: name}
		totals = totals[:0]
		comps = comps[:0]
		for bi := range a.Breakdowns {
			b := &a.Breakdowns[bi]
			if b.Interaction != name {
				continue
			}
			p.Requests++
			totals = append(totals, b.Total)
			for _, part := range b.Parts {
				j := -1
				for i := range comps {
					if comps[i].tier == part.Tier && comps[i].component == part.Component {
						j = i
						break
					}
				}
				if j < 0 {
					j = len(comps)
					comps = append(comps, compInfo{tier: part.Tier, component: part.Component})
				}
				comps[j].count++
				comps[j].sum += part.Seconds
			}
		}
		sort.Float64s(totals)
		p.TotalP50Sec = quantile(totals, 0.50)
		p.TotalP95Sec = quantile(totals, 0.95)
		p.TotalP99Sec = quantile(totals, 0.99)
		for i := 1; i < len(comps); i++ {
			for j := i; j > 0 && (comps[j].tier < comps[j-1].tier ||
				(comps[j].tier == comps[j-1].tier && comps[j].component < comps[j-1].component)); j-- {
				comps[j], comps[j-1] = comps[j-1], comps[j]
			}
		}
		// Second pass: place every sample into its bucket's slot in one
		// shared buffer, then sort each bucket independently.
		total := 0
		for i := range comps {
			comps[i].cur = total
			total += comps[i].count
		}
		if cap(vals) < total {
			vals = make([]float64, total)
		} else {
			vals = vals[:total]
		}
		for bi := range a.Breakdowns {
			b := &a.Breakdowns[bi]
			if b.Interaction != name {
				continue
			}
			for _, part := range b.Parts {
				for i := range comps {
					if comps[i].tier == part.Tier && comps[i].component == part.Component {
						vals[comps[i].cur] = part.Seconds
						comps[i].cur++
						break
					}
				}
			}
		}
		n := float64(p.Requests)
		var meanSum float64
		off := 0
		p.Components = make([]ComponentStat, 0, len(comps))
		for i := range comps {
			c := &comps[i]
			bucket := vals[off : off+c.count]
			off += c.count
			sort.Float64s(bucket)
			mean := c.sum / n
			meanSum += mean
			p.Components = append(p.Components, ComponentStat{
				Tier:      c.tier,
				Component: c.component,
				MeanSec:   mean,
				P50Sec:    quantile(bucket, 0.50),
				P95Sec:    quantile(bucket, 0.95),
				P99Sec:    quantile(bucket, 0.99),
			})
		}
		if meanSum > 0 {
			for i := range p.Components {
				p.Components[i].Share = p.Components[i].MeanSec / meanSum
			}
		}
		r.Profiles = append(r.Profiles, p)
	}
	r.CriticalPath = criticalPath(a.Breakdowns)
	return r
}

// criticalPath names the dominant (tier, component) per percentile
// band of the end-to-end distribution, across all interaction classes.
func criticalPath(bds []Breakdown) []BandBlame {
	if len(bds) == 0 {
		return nil
	}
	totals := make([]float64, len(bds))
	for i, b := range bds {
		totals[i] = b.Total
	}
	sort.Float64s(totals)
	cut := func(q float64) float64 {
		if q <= 0 {
			return totals[0] - 1
		}
		idx := int(q*float64(len(totals))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(totals) {
			idx = len(totals) - 1
		}
		return totals[idx]
	}
	// The band ranges (loQ, hiQ] chain, so their cut values partition
	// the distribution — one pass assigns every breakdown to exactly
	// the band the old per-band range checks matched.
	var cuts [5]float64
	cuts[0] = cut(quantBands[0].loQ)
	for i, band := range quantBands {
		cuts[i+1] = cut(band.hiQ)
	}
	var sums [4]accum
	var counts [4]int
	var bandSums [4]float64
	for bi := range bds {
		b := &bds[bi]
		for k := range quantBands {
			if b.Total <= cuts[k] || b.Total > cuts[k+1] {
				continue
			}
			counts[k]++
			bandSums[k] += b.Total
			for _, part := range b.Parts {
				sums[k].add(part.Tier, part.Component, part.Seconds)
			}
			break
		}
	}
	var out []BandBlame
	for k, band := range quantBands {
		sums, n, bandSum := sums[k], counts[k], bandSums[k]
		if n == 0 {
			continue
		}
		// Deterministic argmax: sort by (tier, component) first so equal
		// sums resolve the same way every run.
		for i := 1; i < len(sums); i++ {
			for j := i; j > 0 && (sums[j].Tier < sums[j-1].Tier ||
				(sums[j].Tier == sums[j-1].Tier && sums[j].Component < sums[j-1].Component)); j-- {
				sums[j], sums[j-1] = sums[j-1], sums[j]
			}
		}
		best := Part{Seconds: -1}
		for _, p := range sums {
			if p.Seconds > best.Seconds {
				best = p
			}
		}
		blame := BandBlame{
			Band:     band.name,
			Requests: n,
			MeanSec:  bandSum / float64(n),
			Tier:     best.Tier, Component: best.Component,
		}
		if bandSum > 0 {
			blame.Share = best.Seconds / bandSum
		}
		out = append(out, blame)
	}
	return out
}

// Marshal renders the report as the stable JSON artifact.
func (r *Report) Marshal() []byte {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // static struct, cannot fail
	}
	return append(raw, '\n')
}

// ParseReport parses and validates a latency-budget artifact.
func ParseReport(raw []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("attrib: parsing budget report: %w", err)
	}
	if r.Schema != BudgetSchema {
		return nil, fmt.Errorf("attrib: budget schema %q, want %q", r.Schema, BudgetSchema)
	}
	for _, p := range r.Profiles {
		if p.Interaction == "" {
			return nil, fmt.Errorf("attrib: budget profile with empty interaction")
		}
		for _, c := range p.Components {
			if c.Tier == "" || c.Component == "" {
				return nil, fmt.Errorf("attrib: profile %s has a component without tier/component", p.Interaction)
			}
		}
	}
	return &r, nil
}

// Dominant returns the critical-path blame for a band, if present.
func (r *Report) Dominant(band string) (BandBlame, bool) {
	for _, b := range r.CriticalPath {
		if b.Band == band {
			return b, true
		}
	}
	return BandBlame{}, false
}
