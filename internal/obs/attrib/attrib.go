// Package attrib decomposes traced request latency into per-tier
// components. It walks each completed request's causal span tree
// (client → L4/PLB → Apache → Tomcat → C-JDBC → MySQL) and splits the
// end-to-end latency into queue-wait, service, network and retry time
// per tier, using the "busy"/"svc" fields every tier's instrumentation
// attaches to its span: a span's self-time (its interval minus its
// children's) is busy + network, busy splits into ideal service plus
// queue-wait, and a failed child subtree is charged whole to the
// parent tier's retry component.
//
// Concurrent children (a C-JDBC write broadcast to several replicas)
// are scaled so their attributed time equals the wall-clock union of
// their intervals; children are clamped to the parent window (a netsim
// timeout can close a parent before a server-side child finishes).
// Both together make the components sum to the root span exactly, up
// to float rounding — the conservation check every report carries.
//
// All inputs come off the deterministic trace bus and every output
// slice is sorted, so same-seed runs produce byte-identical budget
// artifacts.
package attrib

import (
	"math"
	"strings"

	"jade/internal/trace"
)

// Components of a request's latency budget.
const (
	Queue   = "queue"   // waiting in a node's run queue (incl. overload degradation)
	Service = "service" // ideal CPU service time at full capacity
	Network = "network" // netsim link latency (span self-time not spent on-node)
	Retry   = "retry"   // failed child attempts charged to the retrying tier
)

// Components lists the component names in canonical order.
var Components = []string{Queue, Service, Network, Retry}

// TierOf maps a span to the tier it accounts for. The span kinds are
// fixed by each tier's instrumentation; "forward" is used by both
// balancers, split by instance name.
func TierOf(kind, name string) string {
	switch kind {
	case "request":
		return "client"
	case "forward":
		if strings.HasPrefix(name, "l4") {
			return "l4"
		}
		return "plb"
	case "web":
		return "web"
	case "app":
		return "app"
	case "sql":
		return "cjdbc"
	case "db":
		return "db"
	}
	return kind
}

// Part is one (tier, component) share of a request's latency.
type Part struct {
	Tier      string
	Component string
	Seconds   float64
}

// Breakdown is one attributed request.
type Breakdown struct {
	Interaction string  // root span name (the workload class)
	Start       float64 // root span start, virtual seconds
	Total       float64 // root span end-to-end latency
	Parts       []Part  // sorted by tier then component
}

// ConservationErr returns the relative error between the summed
// components and the root span's end-to-end latency.
func (b *Breakdown) ConservationErr() float64 {
	var sum float64
	for _, p := range b.Parts {
		sum += p.Seconds
	}
	if b.Total <= 0 {
		return math.Abs(sum)
	}
	return math.Abs(sum-b.Total) / b.Total
}

// Analysis is the result of walking a span forest.
type Analysis struct {
	Breakdowns []Breakdown
	Errors     int // failed-outcome roots, excluded from the budget
	Skipped    int // roots with open (still-running) spans underneath
}

// Window returns the subset of the analysis whose roots started in
// [from, to) — the experiment's pre-/post-resize comparison.
func (a *Analysis) Window(from, to float64) *Analysis {
	out := &Analysis{}
	for _, b := range a.Breakdowns {
		if b.Start >= from && b.Start < to {
			out.Breakdowns = append(out.Breakdowns, b)
		}
	}
	return out
}

// Analyze walks every closed "request" root in the forest and
// decomposes it. Roots (or subtrees) still open are skipped; roots
// that failed are counted but not attributed.
func Analyze(roots []*trace.SpanNode) *Analysis {
	a := &Analysis{Breakdowns: make([]Breakdown, 0, len(roots))}
	for _, r := range roots {
		if r.Span.Kind != "request" {
			continue
		}
		if hasOpen(r) {
			a.Skipped++
			continue
		}
		if outcome(&r.Span) != "ok" {
			a.Errors++
			continue
		}
		b := decompose(r)
		a.Breakdowns = append(a.Breakdowns, b)
	}
	return a
}

// FromTracer analyzes the tracer's current span forest.
func FromTracer(tr *trace.Tracer) *Analysis {
	return Analyze(tr.SpanTree())
}

func hasOpen(n *trace.SpanNode) bool {
	if n.Span.Open {
		return true
	}
	for _, c := range n.Children {
		if hasOpen(c) {
			return true
		}
	}
	return false
}

func outcome(s *trace.Span) string {
	for i := len(s.Fields) - 1; i >= 0; i-- {
		if s.Fields[i].Key == "outcome" {
			return s.Fields[i].Value
		}
	}
	return ""
}

// accum collects (tier, component) → seconds during one walk. It is a
// small linear slice — a request touches at most a dozen or so
// tier/component pairs — so attribution's hot loop does no map work.
type accum []Part

func (ac *accum) add(tier, component string, sec float64) {
	if sec <= 0 {
		return
	}
	s := *ac
	for i := range s {
		if s[i].Tier == tier && s[i].Component == component {
			s[i].Seconds += sec
			return
		}
	}
	*ac = append(s, Part{Tier: tier, Component: component, Seconds: sec})
}

func decompose(root *trace.SpanNode) Breakdown {
	ac := make(accum, 0, 16)
	walk(root, root.Span.Start, root.Span.End, 1, &ac)
	b := Breakdown{
		Interaction: root.Span.Name,
		Start:       root.Span.Start,
		Total:       root.Span.End - root.Span.Start,
		Parts:       ac,
	}
	// Few parts, nearly sorted already: a closure-free insertion sort
	// avoids sort.Slice's func-value indirection in this hot path.
	ps := b.Parts
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && (ps[j].Tier < ps[j-1].Tier ||
			(ps[j].Tier == ps[j-1].Tier && ps[j].Component < ps[j-1].Component)); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	return b
}

// clampedLen returns a span's length clamped to a window.
func clampedLen(s *trace.Span, winStart, winEnd float64) float64 {
	start := math.Max(s.Start, winStart)
	end := math.Min(s.End, winEnd)
	if end < start {
		return 0
	}
	return end - start
}

// walk attributes node n's interval, clamped to [winStart, winEnd] and
// scaled by k (concurrent siblings share their wall-clock union).
func walk(n *trace.SpanNode, winStart, winEnd, k float64, ac *accum) {
	start := math.Max(n.Span.Start, winStart)
	end := math.Min(n.Span.End, winEnd)
	if end < start {
		return
	}
	total := end - start
	tier := TierOf(n.Span.Kind, n.Span.Name)

	// Children: failed subtrees are charged whole to this tier's retry
	// component; the rest recurse. Overlapping children (write
	// broadcast) are scaled so their attributed sum equals the
	// wall-clock union of their intervals. Spans begin in time order so
	// the intervals are nearly sorted — insertion sort on a stack
	// buffer beats sort.Slice (whose closure forces a heap escape) in
	// this per-request hot path.
	var childSum, unionLen float64
	type iv struct{ s, e float64 }
	var ivBuf [8]iv
	var clBuf [8]float64
	ivs := ivBuf[:0]
	cls := clBuf[:0]
	for _, c := range n.Children {
		cl := clampedLen(&c.Span, start, end)
		cls = append(cls, cl)
		if cl <= 0 {
			continue
		}
		childSum += cl
		ivs = append(ivs, iv{math.Max(c.Span.Start, start), math.Min(c.Span.End, end)})
	}
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && (ivs[j].s < ivs[j-1].s ||
			(ivs[j].s == ivs[j-1].s && ivs[j].e < ivs[j-1].e)); j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	cursor := math.Inf(-1)
	for _, v := range ivs {
		if v.s > cursor {
			unionLen += v.e - v.s
			cursor = v.e
		} else if v.e > cursor {
			unionLen += v.e - cursor
			cursor = v.e
		}
	}
	scale := 1.0
	if childSum > 0 {
		scale = unionLen / childSum
	}
	for i, c := range n.Children {
		cl := cls[i]
		if cl <= 0 {
			continue
		}
		if outcome(&c.Span) != "ok" && c.Span.Kind != "request" {
			ac.add(tier, Retry, k*scale*cl)
			continue
		}
		walk(c, start, end, k*scale, ac)
	}

	// Self time: this span's interval minus its children's union.
	self := total - unionLen
	if self < 0 {
		self = 0
	}
	busy, svc, downstream, hasBusy := accountingFields(&n.Span)
	if !hasBusy {
		// No on-node accounting (the client root): all self-time is
		// network/think overhead outside any node.
		ac.add(tier, Network, k*self)
		return
	}
	if busy > self {
		busy = self
	}
	if svc > busy {
		svc = busy
	}
	ac.add(tier, Service, k*svc)
	ac.add(tier, Queue, k*(busy-svc))
	// Off-node self-time is network by default; a span marked
	// "waits-on" (the C-JDBC write broadcast) charges it as queueing
	// for the named downstream tier instead.
	if downstream != "" {
		ac.add(downstream, Queue, k*(self-busy))
	} else {
		ac.add(tier, Network, k*(self-busy))
	}
}

// accountingFields extracts busy/svc/waits-on in one pass over the
// span's fields (last occurrence wins) — the walk is cost-budgeted
// and separate scans per key showed up in its profile.
func accountingFields(s *trace.Span) (busy, svc float64, downstream string, hasBusy bool) {
	var hasSvc, hasWaits bool
	for i := len(s.Fields) - 1; i >= 0; i-- {
		switch s.Fields[i].Key {
		case "busy":
			if !hasBusy {
				if v, ok := s.Fields[i].Float(); ok {
					busy, hasBusy = v, true
				}
			}
		case "svc":
			if !hasSvc {
				if v, ok := s.Fields[i].Float(); ok {
					svc, hasSvc = v, true
				}
			}
		case "waits-on":
			if !hasWaits {
				downstream, hasWaits = s.Fields[i].Value, true
			}
		}
	}
	return busy, svc, downstream, hasBusy
}

