package alert

import (
	"fmt"

	"jade/internal/trace"
)

// TimelineEntry is one causal step in an incident: an alert transition,
// a φ-accrual suspicion change, a control-loop decision, or a routing
// eviction, in virtual-time order.
type TimelineEntry struct {
	T         float64  `json:"t"`
	Kind      string   `json:"kind"`   // alert.fire, detector.suspect, loop.reconfig, route.evict, ...
	Source    string   `json:"source"` // alert-plane, detector, control-loop, router
	Component string   `json:"component,omitempty"`
	Detail    string   `json:"detail,omitempty"`
	TraceID   trace.ID `json:"trace_id,omitempty"`
}

// Incident folds overlapping alerts into one causal object. It opens
// with its first alert, absorbs every alert that fires while it is
// open (plus CorrelationGapSeconds after the last one resolves), and
// carries a timeline that splices the alert stream together with the
// context events fed via Engine.Observe. Each incident is also a trace
// span, so request/decision spans and incidents share one causal bus.
type Incident struct {
	ID          int
	StartedAt   float64
	ResolvedAt  float64 // -1 while open
	Severity    Severity
	Suspect     string // component the evidence blames (replica-level alerts preferred)
	SuspectTier string
	Alerts      []*Alert
	Timeline    []TimelineEntry
	SpanID      trace.ID

	activeAlerts int
	lastActivity float64
}

// Open reports whether the incident is still open.
func (inc *Incident) Open() bool { return inc.ResolvedAt < 0 }

func (inc *Incident) attach(a *Alert, now float64) {
	inc.Alerts = append(inc.Alerts, a)
	inc.activeAlerts++
	inc.lastActivity = now
	inc.noteSeverity(a.Severity)
}

func (inc *Incident) noteSeverity(s Severity) {
	if sevRank(s) > sevRank(inc.Severity) {
		inc.Severity = s
	}
}

// computeSuspect picks the component the incident blames: among its
// alerts, replica-level findings (a specific backend named by a skew or
// per-replica anomaly rule) outrank service-level symptoms (a burning
// tier SLO); within a class, higher severity wins, then earlier fire
// time, then lexicographic component order for determinism.
func (inc *Incident) computeSuspect() {
	best := -1
	better := func(a, b *Alert) bool { // a strictly better suspect than b
		if a.ServiceLevel != b.ServiceLevel {
			return !a.ServiceLevel
		}
		if sevRank(a.Severity) != sevRank(b.Severity) {
			return sevRank(a.Severity) > sevRank(b.Severity)
		}
		if a.FiredAt != b.FiredAt {
			return a.FiredAt < b.FiredAt
		}
		return a.Component < b.Component
	}
	for i, a := range inc.Alerts {
		if a.Component == "" {
			continue
		}
		if best < 0 || better(a, inc.Alerts[best]) {
			best = i
		}
	}
	if best >= 0 {
		inc.Suspect = inc.Alerts[best].Component
		inc.SuspectTier = inc.Alerts[best].Tier
	}
}

// ensureIncident returns the open incident, creating one (seeded with
// LookbackSeconds of context) if none is open.
func (e *Engine) ensureIncident(now float64, f Finding) *Incident {
	if e.open != nil {
		e.open.lastActivity = now
		return e.open
	}
	inc := &Incident{
		ID:           len(e.incidents) + 1,
		StartedAt:    now,
		ResolvedAt:   -1,
		lastActivity: now,
	}
	if e.tr != nil {
		inc.SpanID = e.tr.Begin(0, "incident", fmt.Sprintf("incident-%d", inc.ID),
			trace.F("first_component", f.Component), trace.F("first_severity", string(f.Severity)))
	}
	cut := now - e.cfg.LookbackSeconds
	for _, entry := range e.context {
		if entry.T >= cut {
			inc.Timeline = append(inc.Timeline, entry)
		}
	}
	e.incidents = append(e.incidents, inc)
	e.open = inc
	if e.incidentsC != nil {
		e.incidentsC.Inc()
	}
	return inc
}

func (e *Engine) closeIncident(now float64) {
	inc := e.open
	inc.ResolvedAt = inc.lastActivity
	inc.computeSuspect()
	inc.Timeline = append(inc.Timeline, TimelineEntry{
		T: now, Kind: "incident.close", Source: "alert-plane",
		Component: inc.Suspect,
		Detail:    fmt.Sprintf("incident-%d closed; suspect=%s", inc.ID, orDash(inc.Suspect)),
	})
	if e.tr != nil {
		e.tr.End(inc.SpanID, trace.F("suspect", inc.Suspect), trace.Fi("alerts", len(inc.Alerts)))
	}
	e.open = nil
}

func (e *Engine) incidentByID(id int) *Incident {
	if id <= 0 || id > len(e.incidents) {
		return nil
	}
	return e.incidents[id-1]
}

// Incidents returns every incident in open order. Suspects of still-open
// incidents are recomputed from the evidence so far.
func (e *Engine) Incidents() []*Incident {
	if e == nil {
		return nil
	}
	for _, inc := range e.incidents {
		if inc.Open() {
			inc.computeSuspect()
		}
	}
	return e.incidents
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
