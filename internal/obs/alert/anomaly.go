package alert

import (
	"fmt"
	"math"
	"sort"
)

// Probe samples one measurement at virtual time now. ok=false means "no
// signal this tick" (e.g. no requests completed in the window) and the
// rule passes without judging or learning.
type Probe func(now float64) (value float64, ok bool)

// anomalyMode selects which condition an anomaly rule checks.
type anomalyMode int

const (
	modeZScore anomalyMode = iota // EWMA mean/variance z-score
	modeRate                      // rate-of-change vs EWMA baseline
)

// AnomalyRule is a streaming detector over a probe: it keeps an
// exponentially-weighted mean and variance of the series and flags
// samples that sit ZThreshold standard deviations above the baseline
// (z-score mode) or SpikeFactor times above it (rate-of-change mode).
// While a sample is anomalous the baseline is frozen, so a sustained
// degradation cannot absorb itself into normality; two consecutive
// anomalous ticks are required before a finding is emitted.
type AnomalyRule struct {
	name         string
	component    string
	tier         string
	serviceLevel bool
	probe        Probe
	cfg          Config
	mode         anomalyMode
	floor        float64 // minimum absolute deviation worth flagging

	mean     float64
	variance float64
	n        int
	consec   int
}

// NewZScoreRule builds an EWMA z-score detector over probe. floor is the
// minimum absolute deviation from the baseline that can fire (guards
// against microscopic variance making tiny wobbles look extreme).
func NewZScoreRule(cfg Config, name, component, tier string, serviceLevel bool, floor float64, probe Probe) *AnomalyRule {
	return &AnomalyRule{name: name, component: component, tier: tier,
		serviceLevel: serviceLevel, probe: probe, cfg: cfg.withDefaults(),
		mode: modeZScore, floor: floor}
}

// NewRateRule builds a rate-of-change detector over probe: it fires when
// the sample exceeds SpikeFactor times the EWMA baseline (and the floor).
func NewRateRule(cfg Config, name, component, tier string, serviceLevel bool, floor float64, probe Probe) *AnomalyRule {
	return &AnomalyRule{name: name, component: component, tier: tier,
		serviceLevel: serviceLevel, probe: probe, cfg: cfg.withDefaults(),
		mode: modeRate, floor: floor}
}

// Name implements Rule.
func (r *AnomalyRule) Name() string { return r.name }

// Retune implements Retunable: the EWMA baseline survives, only the
// trip thresholds change. The ticker-derived decay alpha keeps the
// construction-time EvalIntervalSeconds (the ticker itself is fixed).
func (r *AnomalyRule) Retune(cfg Config) { r.cfg = cfg.withDefaults() }

// Evaluate implements Rule.
func (r *AnomalyRule) Evaluate(now float64) []Finding {
	x, ok := r.probe(now)
	if !ok {
		return nil
	}
	anomalous := false
	var z, ratio float64
	if r.n >= r.cfg.ZWarmup {
		dev := x - r.mean
		sd := math.Sqrt(r.variance)
		z = dev / math.Max(sd, 1e-9)
		ratio = x / math.Max(r.mean, math.Max(r.floor, 1e-9))
		switch r.mode {
		case modeZScore:
			anomalous = dev > r.floor && z >= r.cfg.ZThreshold
		case modeRate:
			anomalous = dev > r.floor && ratio >= r.cfg.SpikeFactor
		}
	}
	if !anomalous {
		r.consec = 0
		r.update(x)
		return nil
	}
	r.consec++
	if r.consec < 2 {
		return nil
	}
	sev := SevWarn
	var threshold float64
	var detail string
	switch r.mode {
	case modeZScore:
		threshold = r.cfg.ZThreshold
		if z >= 2*r.cfg.ZThreshold {
			sev = SevPage
		}
		detail = fmt.Sprintf("z=%.1f vs baseline %.4g (value %.4g)", z, r.mean, x)
	case modeRate:
		threshold = r.cfg.SpikeFactor
		if ratio >= 2*r.cfg.SpikeFactor {
			sev = SevPage
		}
		detail = fmt.Sprintf("%.1fx baseline %.4g (value %.4g)", ratio, r.mean, x)
	}
	return []Finding{{
		Component:    r.component,
		Tier:         r.tier,
		Severity:     sev,
		Value:        x,
		Threshold:    threshold,
		Detail:       detail,
		ServiceLevel: r.serviceLevel,
	}}
}

// update folds a non-anomalous sample into the EWMA baseline.
func (r *AnomalyRule) update(x float64) {
	alpha := 1 - math.Exp2(-r.cfg.EvalIntervalSeconds/r.cfg.EWMAHalfLifeSeconds)
	if r.n == 0 {
		r.mean = x
	} else {
		d := x - r.mean
		r.mean += alpha * d
		r.variance = (1 - alpha) * (r.variance + alpha*d*d)
	}
	r.n++
}

// BackendStat is one pool backend's decayed reservoir state, exported by
// internal/selector (Pool.Snapshot → Status reservoir fields).
type BackendStat struct {
	Name           string
	MeanLatency    float64 // decayed mean latency, seconds
	LatencySamples float64 // decayed sample count behind MeanLatency
	Failures       float64 // decayed failure count
	InFlight       int
}

// SkewRule compares every pool backend against the median of its peers:
// a backend whose decayed mean latency sits SkewFactor times above that
// median (and above an absolute floor), whose in-flight depth piles up
// the same way, or whose decayed failure reservoir runs hot is named
// directly — this is what catches the φ-invisible gray replica, because
// heartbeats still flow while the reservoirs diverge. The baseline
// excludes the backend under judgment so a single outlier cannot drag
// its own comparison point along (decisive in two-backend pools, where
// a self-inclusive median would average the outlier in). Findings are
// replica-level (they name the backend), so they win incident-suspect
// attribution over service-level burn symptoms.
type SkewRule struct {
	name   string
	tier   string
	cfg    Config
	stats  func() []BackendStat
	floor  float64 // minimum latency gap (seconds) worth flagging
	consec map[string]int
}

// NewSkewRule builds a pool-skew rule; stats must return the pool's
// backends in deterministic (registration) order.
func NewSkewRule(cfg Config, name, tier string, floor float64, stats func() []BackendStat) *SkewRule {
	return &SkewRule{name: name, tier: tier, cfg: cfg.withDefaults(),
		stats: stats, floor: floor, consec: make(map[string]int)}
}

// Name implements Rule.
func (r *SkewRule) Name() string { return r.name }

// Retune implements Retunable: persistence counters survive, only the
// skew thresholds change.
func (r *SkewRule) Retune(cfg Config) { r.cfg = cfg.withDefaults() }

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Evaluate implements Rule.
func (r *SkewRule) Evaluate(now float64) []Finding {
	stats := r.stats()
	if len(stats) < 2 {
		return nil
	}
	warm := 0
	for _, s := range stats {
		if s.LatencySamples >= 0.5 {
			warm++
		}
	}
	if warm < 2 {
		return nil
	}
	var findings []Finding
	hot := make(map[string]bool, len(stats))
	for i, s := range stats {
		var lats, fails, flights []float64
		for j, o := range stats {
			if j == i {
				continue
			}
			lats = append(lats, o.MeanLatency)
			fails = append(fails, o.Failures)
			flights = append(flights, float64(o.InFlight))
		}
		medLat, medFail, medFlight := median(lats), median(fails), median(flights)
		var reasons []string
		var ratio float64
		if s.LatencySamples >= 0.5 && s.MeanLatency >= r.cfg.SkewFactor*medLat && s.MeanLatency-medLat >= r.floor {
			ratio = s.MeanLatency / math.Max(medLat, 1e-9)
			reasons = append(reasons, fmt.Sprintf("latency %.0f ms vs pool median %.0f ms", s.MeanLatency*1e3, medLat*1e3))
		}
		if float64(s.InFlight) >= r.cfg.SkewFactor*medFlight && float64(s.InFlight)-medFlight >= 8 {
			fr := float64(s.InFlight) / math.Max(medFlight, 1)
			if fr > ratio {
				ratio = fr
			}
			reasons = append(reasons, fmt.Sprintf("%d in flight vs pool median %.0f", s.InFlight, medFlight))
		}
		if s.Failures >= 3+r.cfg.SkewFactor*medFail {
			fr := s.Failures / math.Max(medFail, 1)
			if fr > ratio {
				ratio = fr
			}
			reasons = append(reasons, fmt.Sprintf("%.1f decayed failures vs pool median %.1f", s.Failures, medFail))
		}
		if len(reasons) == 0 {
			continue
		}
		hot[s.Name] = true
		r.consec[s.Name]++
		if r.consec[s.Name] < 2 {
			continue
		}
		sev := SevWarn
		// Page on an extreme instantaneous skew, or on a moderate one that
		// has held for PagePersistSeconds of consecutive ticks — the gray
		// replica that is "only" a few times slower but stays that way.
		held := float64(r.consec[s.Name]-1) * r.cfg.EvalIntervalSeconds
		if ratio >= 2*r.cfg.SkewFactor || held >= r.cfg.PagePersistSeconds {
			sev = SevPage
		}
		detail := reasons[0]
		for _, extra := range reasons[1:] {
			detail += "; " + extra
		}
		findings = append(findings, Finding{
			Component: s.Name,
			Tier:      r.tier,
			Severity:  sev,
			Value:     ratio,
			Threshold: r.cfg.SkewFactor,
			Detail:    detail,
		})
	}
	for name := range r.consec {
		if !hot[name] {
			delete(r.consec, name)
		}
	}
	return findings
}
