package alert

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Schemas stamped into the exported documents.
const (
	AlertsPageSchema = "jade-alerts/v1"
	IncidentsSchema  = "jade-incidents/v1"
)

// alertWire is the JSON shape of one alert on the /alerts page.
type alertWire struct {
	ID         int      `json:"id"`
	Rule       string   `json:"rule"`
	Component  string   `json:"component,omitempty"`
	Tier       string   `json:"tier,omitempty"`
	Severity   Severity `json:"severity"`
	Value      float64  `json:"value"`
	Threshold  float64  `json:"threshold"`
	Detail     string   `json:"detail,omitempty"`
	FiredAt    float64  `json:"fired_at"`
	ResolvedAt *float64 `json:"resolved_at,omitempty"`
	IncidentID int      `json:"incident_id"`
	TraceID    uint64   `json:"trace_id,omitempty"`
}

func toWire(a *Alert) alertWire {
	w := alertWire{
		ID: a.ID, Rule: a.Rule, Component: a.Component, Tier: a.Tier,
		Severity: a.Severity, Value: a.Value, Threshold: a.Threshold,
		Detail: a.Detail, FiredAt: a.FiredAt, IncidentID: a.IncidentID,
		TraceID: uint64(a.TraceID),
	}
	if !a.Firing() {
		t := a.ResolvedAt
		w.ResolvedAt = &t
	}
	return w
}

// alertsPage is the document served at /alerts.
type alertsPage struct {
	Schema      string      `json:"schema"`
	Time        float64     `json:"time"`
	Active      []alertWire `json:"active"`
	Resolved    []alertWire `json:"resolved"`
	FiredTotal  int         `json:"fired_total"`
	FirstPageAt *float64    `json:"first_page_at,omitempty"`
}

// incidentWire is the JSON shape of one incident.
type incidentWire struct {
	ID          int             `json:"id"`
	Open        bool            `json:"open"`
	StartedAt   float64         `json:"started_at"`
	ResolvedAt  *float64        `json:"resolved_at,omitempty"`
	Severity    Severity        `json:"severity"`
	Suspect     string          `json:"suspect,omitempty"`
	SuspectTier string          `json:"suspect_tier,omitempty"`
	AlertIDs    []int           `json:"alert_ids"`
	SpanID      uint64          `json:"span_id,omitempty"`
	Timeline    []TimelineEntry `json:"timeline"`
}

// incidentsDoc is the document served at /incidents and written to
// incidents.json.
type incidentsDoc struct {
	Schema    string         `json:"schema"`
	Time      float64        `json:"time"`
	Incidents []incidentWire `json:"incidents"`
}

// AlertsJSONL renders the full alert transition stream, one JSON object
// per line, deterministically (same seed ⇒ same bytes).
func (e *Engine) AlertsJSONL() []byte {
	var buf bytes.Buffer
	for _, tr := range e.Transitions() {
		b, err := json.Marshal(tr)
		if err != nil {
			continue
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// AlertsPage renders the /alerts document as of now.
func (e *Engine) AlertsPage(now float64) []byte {
	page := alertsPage{Schema: AlertsPageSchema, Time: now, Active: []alertWire{}, Resolved: []alertWire{}}
	if e != nil {
		for _, a := range e.alerts {
			if a.Firing() {
				page.Active = append(page.Active, toWire(a))
			} else {
				page.Resolved = append(page.Resolved, toWire(a))
			}
		}
		page.FiredTotal = len(e.alerts)
		if e.firstPage >= 0 {
			t := e.firstPage
			page.FirstPageAt = &t
		}
	}
	b, _ := json.MarshalIndent(page, "", "  ")
	return append(b, '\n')
}

// IncidentsJSON renders the /incidents document (also written to
// incidents.json) as of now.
func (e *Engine) IncidentsJSON(now float64) []byte {
	doc := incidentsDoc{Schema: IncidentsSchema, Time: now, Incidents: []incidentWire{}}
	for _, inc := range e.Incidents() {
		w := incidentWire{
			ID: inc.ID, Open: inc.Open(), StartedAt: inc.StartedAt,
			Severity: inc.Severity, Suspect: inc.Suspect, SuspectTier: inc.SuspectTier,
			SpanID: uint64(inc.SpanID), AlertIDs: []int{}, Timeline: inc.Timeline,
		}
		if w.Timeline == nil {
			w.Timeline = []TimelineEntry{}
		}
		if !inc.Open() {
			t := inc.ResolvedAt
			w.ResolvedAt = &t
		}
		for _, a := range inc.Alerts {
			w.AlertIDs = append(w.AlertIDs, a.ID)
		}
		doc.Incidents = append(doc.Incidents, w)
	}
	b, _ := json.MarshalIndent(doc, "", "  ")
	return append(b, '\n')
}

// RenderText renders a human-readable alert + incident report for
// `jadectl scenario -alerts`.
func (e *Engine) RenderText() string {
	if e == nil || e.cfg.Disabled {
		return "  alerting disabled\n"
	}
	var b strings.Builder
	if len(e.alerts) == 0 {
		b.WriteString("  no alerts fired\n")
	}
	for _, a := range e.alerts {
		state := "firing"
		if !a.Firing() {
			state = fmt.Sprintf("resolved %8.1fs", a.ResolvedAt)
		}
		fmt.Fprintf(&b, "  #%-3d %-5s %-28s %-10s fired %8.1fs  %-16s %s\n",
			a.ID, a.Severity, a.Rule, orDash(a.Component), a.FiredAt, state, a.Detail)
	}
	for _, inc := range e.Incidents() {
		state := "open"
		if !inc.Open() {
			state = fmt.Sprintf("resolved %.1fs", inc.ResolvedAt)
		}
		fmt.Fprintf(&b, "\n  incident-%d [%s] started %.1fs (%s) suspect=%s alerts=%d\n",
			inc.ID, inc.Severity, inc.StartedAt, state, orDash(inc.Suspect), len(inc.Alerts))
		for _, entry := range inc.Timeline {
			fmt.Fprintf(&b, "    %8.1fs  %-16s %-14s %-10s %s\n",
				entry.T, entry.Kind, entry.Source, orDash(entry.Component), entry.Detail)
		}
	}
	return b.String()
}

// ValidateAlertsJSONL checks an alerts.jsonl stream: every line parses,
// times are monotonically non-decreasing, events are known, and IDs are
// positive. Returns the number of transitions.
func ValidateAlertsJSONL(data []byte) (int, error) {
	n := 0
	last := -1.0
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var tr Transition
		if err := json.Unmarshal(line, &tr); err != nil {
			return n, fmt.Errorf("alerts.jsonl line %d: %w", n+1, err)
		}
		switch tr.Event {
		case "fire", "escalate", "resolve":
		default:
			return n, fmt.Errorf("alerts.jsonl line %d: unknown event %q", n+1, tr.Event)
		}
		if tr.AlertID <= 0 || tr.IncidentID <= 0 {
			return n, fmt.Errorf("alerts.jsonl line %d: non-positive id", n+1)
		}
		if tr.T < last {
			return n, fmt.Errorf("alerts.jsonl line %d: time went backwards (%.3f < %.3f)", n+1, tr.T, last)
		}
		last = tr.T
		n++
	}
	return n, nil
}

// ValidateAlertsPage checks a /alerts document.
func ValidateAlertsPage(data []byte) error {
	var page alertsPage
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&page); err != nil {
		return fmt.Errorf("alerts page: %w", err)
	}
	if page.Schema != AlertsPageSchema {
		return fmt.Errorf("alerts page: schema %q, want %q", page.Schema, AlertsPageSchema)
	}
	if got := len(page.Active) + len(page.Resolved); got != page.FiredTotal {
		return fmt.Errorf("alerts page: active+resolved = %d, fired_total = %d", got, page.FiredTotal)
	}
	for _, a := range page.Active {
		if a.ResolvedAt != nil {
			return fmt.Errorf("alerts page: active alert %d has resolved_at", a.ID)
		}
	}
	return nil
}

// ValidateIncidentsJSON checks a /incidents (incidents.json) document.
func ValidateIncidentsJSON(data []byte) error {
	var doc incidentsDoc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("incidents: %w", err)
	}
	if doc.Schema != IncidentsSchema {
		return fmt.Errorf("incidents: schema %q, want %q", doc.Schema, IncidentsSchema)
	}
	for _, inc := range doc.Incidents {
		if inc.Open == (inc.ResolvedAt != nil) {
			return fmt.Errorf("incident %d: open/resolved_at mismatch", inc.ID)
		}
		if len(inc.AlertIDs) == 0 {
			return fmt.Errorf("incident %d: no alerts", inc.ID)
		}
		last := -1.0
		for i, entry := range inc.Timeline {
			if entry.T < last {
				return fmt.Errorf("incident %d: timeline entry %d out of order", inc.ID, i)
			}
			last = entry.T
		}
	}
	return nil
}
