// Package alert is the deterministic alerting plane of the
// observability stack: SLO error-budget burn-rate alerts, streaming
// anomaly detectors over any measurement series, and an incident
// correlation engine that folds overlapping alerts — together with
// φ-accrual suspicion history, control-loop decisions and routing
// evictions — into causal incident timelines.
//
// Everything is clocked on sim virtual time and evaluated on the
// simulation goroutine only: rules run in registration order on a
// fixed-interval ticker, alert and incident IDs are assigned in fire
// order, and the exporters are pure functions of the engine state, so
// equal seeds produce byte-identical alerts.jsonl and incidents.json.
// HTTP readers only ever see immutable pages published at snapshot
// ticks (the same non-perturbation guarantee as the metrics plane).
package alert

import (
	"fmt"

	"jade/internal/obs"
	"jade/internal/trace"
)

// Severity grades an alert.
type Severity string

// Severities, ordered warn < page.
const (
	SevWarn Severity = "warn"
	SevPage Severity = "page"
)

func sevRank(s Severity) int {
	if s == SevPage {
		return 2
	}
	return 1
}

// Config tunes the alerting plane. The zero value means "enabled with
// defaults"; set Disabled to turn evaluation off (the ticker still runs
// so the event schedule never depends on the alerting switch).
type Config struct {
	// Disabled turns rule evaluation off.
	Disabled bool
	// EvalIntervalSeconds is the rule evaluation period (5 by default).
	EvalIntervalSeconds float64
	// FastWindowSeconds / SlowWindowSeconds are the burn-rate windows
	// (60 and 600 virtual seconds by default): a page needs the error
	// budget burning in both, so a single flapping window cannot strobe
	// the pager.
	FastWindowSeconds float64
	SlowWindowSeconds float64
	// BudgetFraction is the error budget as a fraction of evaluation
	// windows allowed to miss their objective (0.01 by default: 99%
	// compliance target).
	BudgetFraction float64
	// PageBurn / WarnBurn are the burn-rate thresholds (14.4 and 3 by
	// default, the classic multi-window multi-burn-rate pairing).
	PageBurn float64
	WarnBurn float64
	// ZThreshold is the EWMA z-score at which an anomaly rule trips
	// (4 by default); ZWarmup is how many samples the baseline needs
	// before z-scores are trusted (12 by default).
	ZThreshold float64
	ZWarmup    int
	// EWMAHalfLifeSeconds is the anomaly baselines' decay half-life
	// (60 by default).
	EWMAHalfLifeSeconds float64
	// SpikeFactor is the rate-of-change multiplier: a sample at
	// SpikeFactor times the EWMA baseline is anomalous regardless of
	// variance (4 by default).
	SpikeFactor float64
	// SkewFactor is the pool-skew multiplier: a backend whose decayed
	// mean latency (or in-flight depth, or failure reservoir) sits at
	// SkewFactor times the pool median is flagged (3 by default).
	SkewFactor float64
	// PagePersistSeconds is how long a skew finding must hold
	// continuously before it escalates from warn to page even when the
	// instantaneous ratio stays below 2x SkewFactor (20 by default). A
	// gray replica that is merely a few times slower than its pool — but
	// stays that way — still pages.
	PagePersistSeconds float64
	// HysteresisSeconds is how long a firing alert's condition must stay
	// clear before the alert resolves (30 by default).
	HysteresisSeconds float64
	// CorrelationGapSeconds is how long after its last alert resolves an
	// incident stays open to fold late-arriving alerts (120 by default).
	CorrelationGapSeconds float64
	// LookbackSeconds is how much pre-incident context (suspicions,
	// decisions, evictions) is copied into a new incident's timeline
	// (60 by default).
	LookbackSeconds float64
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.EvalIntervalSeconds <= 0 {
		c.EvalIntervalSeconds = 5
	}
	if c.FastWindowSeconds <= 0 {
		c.FastWindowSeconds = 60
	}
	if c.SlowWindowSeconds <= 0 {
		c.SlowWindowSeconds = 600
	}
	if c.BudgetFraction <= 0 {
		c.BudgetFraction = 0.01
	}
	if c.PageBurn <= 0 {
		c.PageBurn = 14.4
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = 3
	}
	if c.ZThreshold <= 0 {
		c.ZThreshold = 4
	}
	if c.ZWarmup <= 0 {
		c.ZWarmup = 12
	}
	if c.EWMAHalfLifeSeconds <= 0 {
		c.EWMAHalfLifeSeconds = 60
	}
	if c.SpikeFactor <= 0 {
		c.SpikeFactor = 4
	}
	if c.SkewFactor <= 0 {
		c.SkewFactor = 3
	}
	if c.PagePersistSeconds <= 0 {
		c.PagePersistSeconds = 20
	}
	if c.HysteresisSeconds <= 0 {
		c.HysteresisSeconds = 30
	}
	if c.CorrelationGapSeconds <= 0 {
		c.CorrelationGapSeconds = 120
	}
	if c.LookbackSeconds <= 0 {
		c.LookbackSeconds = 60
	}
	return c
}

// Finding is one rule's verdict at one evaluation tick: the component it
// blames, how badly, and whether the finding is a service-level symptom
// (a burning SLO) or names a specific replica (a probable cause — the
// incident suspect computation prefers these).
type Finding struct {
	Component    string
	Tier         string
	Severity     Severity
	Value        float64
	Threshold    float64
	Detail       string
	ServiceLevel bool
}

// Rule is one alerting rule, evaluated every tick on the simulation
// goroutine. Implementations must be deterministic functions of their
// observed streams and now; a nil/empty return means "nothing to say".
type Rule interface {
	Name() string
	Evaluate(now float64) []Finding
}

// Alert is one firing (or resolved) alert instance.
type Alert struct {
	ID           int
	Rule         string
	Component    string
	Tier         string
	Severity     Severity
	Detail       string
	Value        float64 // worst value observed while firing
	Threshold    float64
	FiredAt      float64
	ResolvedAt   float64 // -1 while firing
	IncidentID   int
	TraceID      trace.ID
	ServiceLevel bool

	key      string
	lastSeen float64
}

// Firing reports whether the alert is still active.
func (a *Alert) Firing() bool { return a.ResolvedAt < 0 }

// Transition is one line of the alerts.jsonl stream: an alert firing,
// escalating from warn to page, or resolving.
type Transition struct {
	T          float64  `json:"t"`
	Event      string   `json:"event"` // fire | escalate | resolve
	AlertID    int      `json:"alert_id"`
	Rule       string   `json:"rule"`
	Component  string   `json:"component,omitempty"`
	Tier       string   `json:"tier,omitempty"`
	Severity   Severity `json:"severity"`
	Value      float64  `json:"value"`
	Threshold  float64  `json:"threshold"`
	Detail     string   `json:"detail,omitempty"`
	IncidentID int      `json:"incident_id"`
	TraceID    uint64   `json:"trace_id,omitempty"`
}

// maxContext bounds the pre-incident context ring.
const maxContext = 512

// Engine drives the rules, reconciles findings into alerts with
// hysteresis, and folds overlapping alerts into incidents. The
// simulation goroutine is the only caller of every method; concurrent
// readers see only pages previously rendered and published.
type Engine struct {
	cfg Config
	tr  *trace.Tracer

	rules       []Rule
	activeByKey map[string]*Alert
	active      []*Alert
	alerts      []*Alert
	incidents   []*Incident
	open        *Incident
	context     []TimelineEntry
	transitions []Transition

	firstPage      float64
	firstPageAlert *Alert

	activePagesG *obs.Gauge
	activeWarnsG *obs.Gauge
	alertsC      *obs.Counter
	incidentsC   *obs.Counter
	openIncG     *obs.Gauge
}

// NewEngine builds an alerting engine. tr may be nil (no trace links).
func NewEngine(cfg Config, tr *trace.Tracer) *Engine {
	return &Engine{
		cfg:         cfg.withDefaults(),
		tr:          tr,
		activeByKey: make(map[string]*Alert),
		firstPage:   -1,
	}
}

// Config returns the effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Retunable is implemented by rules that can adopt a new configuration
// mid-run (the live-refresh plane retunes burn windows, z-thresholds and
// skew factors without rebuilding rule state).
type Retunable interface {
	Retune(cfg Config)
}

// Retune adopts cfg (defaulted) for the engine's own hysteresis and
// correlation windows and forwards it to every retunable rule.
// Simulation goroutine only. The evaluation ticker period is fixed at
// construction, so EvalIntervalSeconds changes are ignored by design.
func (e *Engine) Retune(cfg Config) {
	if e == nil {
		return
	}
	cfg.EvalIntervalSeconds = e.cfg.EvalIntervalSeconds
	cfg.Disabled = e.cfg.Disabled
	e.cfg = cfg.withDefaults()
	for _, r := range e.rules {
		if rt, ok := r.(Retunable); ok {
			rt.Retune(e.cfg)
		}
	}
}

// Enabled reports whether rule evaluation is on.
func (e *Engine) Enabled() bool { return e != nil && !e.cfg.Disabled }

// Instrument registers the plane's own metrics on reg (optional).
func (e *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	e.activePagesG = reg.Gauge("jade_alerts_active", "Currently firing alerts by severity.", obs.L("severity", string(SevPage)))
	e.activeWarnsG = reg.Gauge("jade_alerts_active", "Currently firing alerts by severity.", obs.L("severity", string(SevWarn)))
	e.alertsC = reg.Counter("jade_alerts_fired_total", "Alerts fired since the run started.")
	e.incidentsC = reg.Counter("jade_incidents_total", "Incidents opened since the run started.")
	e.openIncG = reg.Gauge("jade_incidents_open", "1 while an incident is open.")
}

// AddRule registers a rule; evaluation order is registration order.
func (e *Engine) AddRule(r Rule) {
	e.rules = append(e.rules, r)
}

// Tick evaluates every rule and reconciles the findings against the
// active alert set. Call it from a fixed-interval sim ticker.
func (e *Engine) Tick(now float64) {
	if e == nil || e.cfg.Disabled {
		return
	}
	seen := make(map[string]Finding)
	var order []string
	for _, r := range e.rules {
		for _, f := range r.Evaluate(now) {
			k := r.Name() + "|" + f.Component
			if old, ok := seen[k]; ok {
				if sevRank(f.Severity) > sevRank(old.Severity) {
					seen[k] = f
				}
				continue
			}
			seen[k] = f
			order = append(order, k)
		}
	}
	for _, k := range order {
		f := seen[k]
		a := e.activeByKey[k]
		if a == nil {
			e.fire(now, k, f)
			continue
		}
		a.lastSeen = now
		a.Detail = f.Detail
		if worse(f, a) {
			a.Value, a.Threshold = f.Value, f.Threshold
		}
		if sevRank(f.Severity) > sevRank(a.Severity) {
			e.escalate(now, a, f)
		}
	}
	remaining := e.active[:0]
	for _, a := range e.active {
		if a.lastSeen < now && now-a.lastSeen >= e.cfg.HysteresisSeconds {
			e.resolve(now, a)
			continue
		}
		remaining = append(remaining, a)
	}
	e.active = remaining
	if e.open != nil && e.open.activeAlerts == 0 && now-e.open.lastActivity >= e.cfg.CorrelationGapSeconds {
		e.closeIncident(now)
	}
	e.setGauges()
}

// worse reports whether the finding is a worse observation than the
// alert's recorded worst (higher value relative to threshold).
func worse(f Finding, a *Alert) bool {
	return f.Value > a.Value
}

func (e *Engine) fire(now float64, key string, f Finding) {
	inc := e.ensureIncident(now, f)
	rule := key
	if i := len(rule) - len(f.Component) - 1; f.Component != "" && i >= 0 {
		rule = key[:i]
	}
	a := &Alert{
		ID:           len(e.alerts) + 1,
		Rule:         rule,
		Component:    f.Component,
		Tier:         f.Tier,
		Severity:     f.Severity,
		Detail:       f.Detail,
		Value:        f.Value,
		Threshold:    f.Threshold,
		FiredAt:      now,
		ResolvedAt:   -1,
		IncidentID:   inc.ID,
		ServiceLevel: f.ServiceLevel,
		key:          key,
		lastSeen:     now,
	}
	if e.tr != nil {
		a.TraceID = e.tr.EmitIn(inc.SpanID, "alert", "alert.fire",
			trace.F("rule", a.Rule), trace.F("component", a.Component),
			trace.F("severity", string(a.Severity)), trace.Ff("value", a.Value),
			trace.Fi("incident", inc.ID))
	}
	e.alerts = append(e.alerts, a)
	e.active = append(e.active, a)
	e.activeByKey[key] = a
	inc.attach(a, now)
	e.record(now, "fire", a)
	inc.Timeline = append(inc.Timeline, TimelineEntry{
		T: now, Kind: "alert.fire", Source: "alert-plane",
		Component: a.Component, Detail: fmt.Sprintf("[%s] %s: %s", a.Severity, a.Rule, a.Detail),
		TraceID: a.TraceID,
	})
	if e.alertsC != nil {
		e.alertsC.Inc()
	}
	if f.Severity == SevPage && e.firstPage < 0 {
		e.firstPage = now
		e.firstPageAlert = a
	}
}

func (e *Engine) escalate(now float64, a *Alert, f Finding) {
	a.Severity = f.Severity
	a.Value, a.Threshold = f.Value, f.Threshold
	inc := e.incidentByID(a.IncidentID)
	if e.tr != nil {
		var span trace.ID
		if inc != nil {
			span = inc.SpanID
		}
		e.tr.EmitIn(span, "alert", "alert.escalate",
			trace.F("rule", a.Rule), trace.F("component", a.Component),
			trace.F("severity", string(a.Severity)), trace.Ff("value", a.Value))
	}
	e.record(now, "escalate", a)
	if inc != nil {
		inc.noteSeverity(a.Severity)
		inc.Timeline = append(inc.Timeline, TimelineEntry{
			T: now, Kind: "alert.escalate", Source: "alert-plane",
			Component: a.Component, Detail: fmt.Sprintf("[%s] %s: %s", a.Severity, a.Rule, a.Detail),
		})
	}
	if f.Severity == SevPage && e.firstPage < 0 {
		e.firstPage = now
		e.firstPageAlert = a
	}
}

func (e *Engine) resolve(now float64, a *Alert) {
	a.ResolvedAt = now
	delete(e.activeByKey, a.key)
	inc := e.incidentByID(a.IncidentID)
	if e.tr != nil {
		var span trace.ID
		if inc != nil {
			span = inc.SpanID
		}
		e.tr.EmitIn(span, "alert", "alert.resolve",
			trace.F("rule", a.Rule), trace.F("component", a.Component))
	}
	e.record(now, "resolve", a)
	if inc != nil {
		inc.activeAlerts--
		inc.lastActivity = now
		inc.Timeline = append(inc.Timeline, TimelineEntry{
			T: now, Kind: "alert.resolve", Source: "alert-plane",
			Component: a.Component, Detail: fmt.Sprintf("%s resolved after %.0f s", a.Rule, now-a.FiredAt),
		})
	}
}

func (e *Engine) record(now float64, event string, a *Alert) {
	e.transitions = append(e.transitions, Transition{
		T: now, Event: event, AlertID: a.ID, Rule: a.Rule,
		Component: a.Component, Tier: a.Tier, Severity: a.Severity,
		Value: a.Value, Threshold: a.Threshold, Detail: a.Detail,
		IncidentID: a.IncidentID, TraceID: uint64(a.TraceID),
	})
}

func (e *Engine) setGauges() {
	if e.activePagesG == nil {
		return
	}
	pages, warns := 0, 0
	for _, a := range e.active {
		if a.Severity == SevPage {
			pages++
		} else {
			warns++
		}
	}
	e.activePagesG.Set(float64(pages))
	e.activeWarnsG.Set(float64(warns))
	e.openIncG.SetBool(e.open != nil)
}

// Observe feeds one context event (a φ-accrual suspicion transition, a
// control-loop decision, a routing eviction) into the correlation plane:
// it lands in the open incident's timeline, and in the lookback ring so
// a future incident can reconstruct what preceded it.
func (e *Engine) Observe(now float64, kind, source, component, detail string, id trace.ID) {
	if e == nil || e.cfg.Disabled {
		return
	}
	entry := TimelineEntry{T: now, Kind: kind, Source: source, Component: component, Detail: detail, TraceID: id}
	e.context = append(e.context, entry)
	if len(e.context) > maxContext {
		e.context = append(e.context[:0], e.context[len(e.context)-maxContext/2:]...)
	}
	if e.open != nil {
		e.open.Timeline = append(e.open.Timeline, entry)
	}
}

// Alerts returns every alert in fire order (live slice; do not mutate).
func (e *Engine) Alerts() []*Alert {
	if e == nil {
		return nil
	}
	return e.alerts
}

// ActiveCount returns the number of currently firing alerts.
func (e *Engine) ActiveCount() int {
	if e == nil {
		return 0
	}
	return len(e.active)
}

// Transitions returns the alert transition stream in emission order.
func (e *Engine) Transitions() []Transition {
	if e == nil {
		return nil
	}
	return e.transitions
}

// FirstPageTime returns the virtual time of the first page-severity
// alert, or -1 when none fired.
func (e *Engine) FirstPageTime() float64 {
	if e == nil {
		return -1
	}
	return e.firstPage
}

// FirstPage returns the first page-severity alert, or nil.
func (e *Engine) FirstPage() *Alert {
	if e == nil {
		return nil
	}
	return e.firstPageAlert
}

// FirstContextTime returns the time of the earliest context entry of the
// given kind fed via Observe (e.g. "detector.suspect"), or -1.
func (e *Engine) FirstContextTime(kind string) float64 {
	if e == nil {
		return -1
	}
	for _, entry := range e.context {
		if entry.Kind == kind {
			return entry.T
		}
	}
	return -1
}
