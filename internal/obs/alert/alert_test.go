package alert

import (
	"bytes"
	"testing"
)

// tickTo advances the engine through fixed 5 s ticks up to end.
func tickTo(e *Engine, from, end float64) float64 {
	for t := from; t <= end; t += 5 {
		e.Tick(t)
	}
	return end
}

// scriptedRule replays a fixed findings schedule keyed by tick time.
type scriptedRule struct {
	name   string
	script map[float64][]Finding
}

func (r *scriptedRule) Name() string                   { return r.name }
func (r *scriptedRule) Evaluate(now float64) []Finding { return r.script[now] }

func TestBurnRulePagesOnBothWindows(t *testing.T) {
	cfg := Config{FastWindowSeconds: 60, SlowWindowSeconds: 600, BudgetFraction: 0.01}
	r := NewBurnRule(cfg, "client-latency-p95", "client")
	// Healthy history fills the slow window.
	for ts := 10.0; ts <= 600; ts += 10 {
		r.Observe(ts, 0.5, true)
	}
	if fs := r.Evaluate(600); fs != nil {
		t.Fatalf("healthy stream produced findings: %+v", fs)
	}
	// Every interval bad from 610 on: the fast window saturates quickly
	// (burn 100x), the slow window climbs past PageBurn once ~15% of its
	// samples are bad.
	var got []Finding
	var at float64
	for ts := 610.0; ts <= 800; ts += 10 {
		r.Observe(ts, 3.5, false)
		if fs := r.Evaluate(ts); len(fs) > 0 && fs[0].Severity == SevPage && got == nil {
			got, at = fs, ts
		}
	}
	if got == nil {
		t.Fatal("burn rule never paged on a fully burning stream")
	}
	if !got[0].ServiceLevel || got[0].Component != "client" {
		t.Fatalf("finding = %+v, want service-level client", got[0])
	}
	if at > 720 {
		t.Fatalf("page at t=%.0f, want within ~2 minutes of the outage", at)
	}
}

func TestBurnRuleSingleBadIntervalDoesNotPage(t *testing.T) {
	cfg := Config{FastWindowSeconds: 60, SlowWindowSeconds: 600, BudgetFraction: 0.01}
	r := NewBurnRule(cfg, "client-abandon-rate", "client")
	for ts := 10.0; ts <= 600; ts += 10 {
		r.Observe(ts, 0, true)
	}
	r.Observe(610, 0.5, false)
	if fs := r.Evaluate(610); len(fs) > 0 && fs[0].Severity == SevPage {
		// fast burn is ~16x but slow burn is ~1.6x: min() must gate it.
		t.Fatalf("single bad interval paged: %+v", fs[0])
	}
}

func TestEngineHysteresisAndResolve(t *testing.T) {
	cfg := Config{EvalIntervalSeconds: 5, HysteresisSeconds: 30, CorrelationGapSeconds: 40}
	f := Finding{Component: "tomcat2", Tier: "app", Severity: SevWarn, Value: 3, Threshold: 2, Detail: "slow"}
	script := map[float64][]Finding{}
	for ts := 10.0; ts <= 40; ts += 5 {
		script[ts] = []Finding{f}
	}
	e := NewEngine(cfg, nil)
	e.AddRule(&scriptedRule{name: "skew:test", script: script})
	tickTo(e, 5, 40)
	if e.ActiveCount() != 1 {
		t.Fatalf("active = %d, want 1", e.ActiveCount())
	}
	// Condition clear from 45 on; the alert must survive until 30 s of
	// silence have passed (last seen at 40, so resolution lands at 70).
	tickTo(e, 45, 65)
	if e.ActiveCount() != 1 {
		t.Fatalf("alert resolved before hysteresis elapsed (active=%d)", e.ActiveCount())
	}
	tickTo(e, 70, 80)
	if e.ActiveCount() != 0 {
		t.Fatalf("alert still active after hysteresis (active=%d)", e.ActiveCount())
	}
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].Firing() {
		t.Fatalf("alerts = %+v", alerts)
	}
	// 40 s after the resolve, the incident closes and blames the replica.
	tickTo(e, 85, 120)
	incs := e.Incidents()
	if len(incs) != 1 || incs[0].Open() || incs[0].Suspect != "tomcat2" {
		t.Fatalf("incidents = %+v", incs)
	}
}

func TestZScoreRuleFiresAndFreezesBaseline(t *testing.T) {
	cfg := Config{EvalIntervalSeconds: 5, ZWarmup: 4, ZThreshold: 4, EWMAHalfLifeSeconds: 60}
	series := map[float64]float64{}
	for ts := 5.0; ts <= 40; ts += 5 { // 8 warmup samples around 1.0
		series[ts] = 1.0 + 0.01*float64(int(ts)%3)
	}
	for ts := 45.0; ts <= 100; ts += 5 { // sustained step to 5.0
		series[ts] = 5.0
	}
	r := NewZScoreRule(cfg, "anomaly:test", "client", "client", true, 0.1,
		func(now float64) (float64, bool) { v, ok := series[now]; return v, ok })
	var first float64 = -1
	for ts := 5.0; ts <= 100; ts += 5 {
		if fs := r.Evaluate(ts); len(fs) > 0 && first < 0 {
			first = ts
		}
	}
	if first < 0 {
		t.Fatal("z-score rule never fired on a 5x step")
	}
	if first != 50 { // anomalous at 45, 2nd consecutive at 50
		t.Fatalf("first finding at t=%.0f, want 50 (two consecutive anomalous ticks)", first)
	}
	// The frozen baseline must still be near 1.0 — the sustained
	// degradation may not absorb itself into normality.
	if r.mean > 1.5 {
		t.Fatalf("baseline absorbed the anomaly: mean=%.2f", r.mean)
	}
}

func TestSkewRuleNamesSlowBackendAndEscalates(t *testing.T) {
	cfg := Config{EvalIntervalSeconds: 5, SkewFactor: 3, PagePersistSeconds: 20}
	stats := []BackendStat{
		{Name: "tomcat1", MeanLatency: 0.06, LatencySamples: 10},
		{Name: "tomcat2", MeanLatency: 0.20, LatencySamples: 10}, // ~3.3x median
		{Name: "tomcat3", MeanLatency: 0.06, LatencySamples: 10},
	}
	r := NewSkewRule(cfg, "skew:app-pool", "app", 0.05, func() []BackendStat { return stats })
	e := NewEngine(cfg, nil)
	e.AddRule(r)
	e.Tick(5)
	if e.ActiveCount() != 0 {
		t.Fatal("skew fired on the first hot tick (needs two)")
	}
	e.Tick(10)
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].Component != "tomcat2" || alerts[0].Severity != SevWarn {
		t.Fatalf("alerts after 2 ticks = %+v", alerts)
	}
	// Moderate (<2x SkewFactor) but persistent: escalates to page once
	// the skew has held PagePersistSeconds.
	tickTo(e, 15, 30)
	if alerts[0].Severity != SevPage {
		t.Fatalf("persistent skew never paged: %+v", alerts[0])
	}
	if e.FirstPage() == nil || e.FirstPage().Component != "tomcat2" {
		t.Fatalf("first page = %+v", e.FirstPage())
	}
}

func TestSkewRuleExtremeRatioPagesImmediately(t *testing.T) {
	cfg := Config{EvalIntervalSeconds: 5, SkewFactor: 3}
	stats := []BackendStat{
		{Name: "mysql1", MeanLatency: 0.05, LatencySamples: 10},
		{Name: "mysql2", MeanLatency: 0.80, LatencySamples: 10}, // 16x median
	}
	r := NewSkewRule(cfg, "skew:db-pool", "db", 0.05, func() []BackendStat { return stats })
	fs := r.Evaluate(5)
	if len(fs) != 0 {
		t.Fatal("fired on first tick")
	}
	fs = r.Evaluate(10)
	if len(fs) != 1 || fs[0].Severity != SevPage || fs[0].Component != "mysql2" {
		t.Fatalf("findings = %+v, want immediate page on 16x skew", fs)
	}
}

func TestSkewRuleFailureReservoir(t *testing.T) {
	cfg := Config{EvalIntervalSeconds: 5, SkewFactor: 3}
	stats := []BackendStat{
		{Name: "tomcat1", MeanLatency: 0.06, LatencySamples: 10, Failures: 0},
		{Name: "tomcat2", MeanLatency: 0.06, LatencySamples: 10, Failures: 12},
		{Name: "tomcat3", MeanLatency: 0.06, LatencySamples: 10, Failures: 0},
	}
	r := NewSkewRule(cfg, "skew:app-pool", "app", 0.05, func() []BackendStat { return stats })
	r.Evaluate(5)
	fs := r.Evaluate(10)
	if len(fs) != 1 || fs[0].Component != "tomcat2" || fs[0].Severity != SevPage {
		t.Fatalf("findings = %+v, want page naming tomcat2 on hot failure reservoir", fs)
	}
}

func TestIncidentFoldsOverlappingAlertsAndPrefersReplicaSuspect(t *testing.T) {
	cfg := Config{EvalIntervalSeconds: 5, HysteresisSeconds: 10, CorrelationGapSeconds: 30}
	burnF := Finding{Component: "client", Tier: "client", Severity: SevPage, Value: 20, Threshold: 14.4, ServiceLevel: true}
	skewF := Finding{Component: "tomcat2", Tier: "app", Severity: SevWarn, Value: 3.4, Threshold: 3}
	burnScript, skewScript := map[float64][]Finding{}, map[float64][]Finding{}
	for ts := 10.0; ts <= 30; ts += 5 {
		burnScript[ts] = []Finding{burnF}
	}
	for ts := 20.0; ts <= 40; ts += 5 { // overlaps the burn alert
		skewScript[ts] = []Finding{skewF}
	}
	e := NewEngine(cfg, nil)
	e.AddRule(&scriptedRule{name: "burn:client-latency-p95", script: burnScript})
	e.AddRule(&scriptedRule{name: "skew:app-pool", script: skewScript})
	e.Observe(5, "detector.suspect", "detector", "tomcat9", "phi crossed", 0)
	tickTo(e, 5, 120)
	incs := e.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want the overlapping alerts folded into 1", len(incs))
	}
	inc := incs[0]
	if inc.Open() {
		t.Fatal("incident never closed after the gap")
	}
	if len(inc.Alerts) != 2 {
		t.Fatalf("incident alerts = %d, want 2", len(inc.Alerts))
	}
	// The replica-level warn must outrank the service-level page.
	if inc.Suspect != "tomcat2" || inc.SuspectTier != "app" {
		t.Fatalf("suspect = %q/%q, want tomcat2/app", inc.Suspect, inc.SuspectTier)
	}
	if inc.Severity != SevPage {
		t.Fatalf("incident severity = %q, want page", inc.Severity)
	}
	// Pre-incident context within LookbackSeconds is spliced in.
	foundContext := false
	for _, entry := range inc.Timeline {
		if entry.Kind == "detector.suspect" && entry.Component == "tomcat9" {
			foundContext = true
		}
	}
	if !foundContext {
		t.Fatalf("lookback context missing from timeline: %+v", inc.Timeline)
	}
}

func TestSeparatedAlertsOpenSeparateIncidents(t *testing.T) {
	cfg := Config{EvalIntervalSeconds: 5, HysteresisSeconds: 10, CorrelationGapSeconds: 30}
	f := Finding{Component: "tomcat2", Tier: "app", Severity: SevWarn, Value: 4, Threshold: 3}
	script := map[float64][]Finding{10: {f}, 15: {f}, 200: {f}, 205: {f}}
	e := NewEngine(cfg, nil)
	e.AddRule(&scriptedRule{name: "skew:app-pool", script: script})
	tickTo(e, 5, 300)
	if n := len(e.Incidents()); n != 2 {
		t.Fatalf("incidents = %d, want 2 (episodes separated beyond the correlation gap)", n)
	}
}

func TestExportsValidateAndAreDeterministic(t *testing.T) {
	build := func() *Engine {
		cfg := Config{EvalIntervalSeconds: 5, HysteresisSeconds: 10, CorrelationGapSeconds: 30}
		pageF := Finding{Component: "client", Tier: "client", Severity: SevPage, Value: 20, Threshold: 14.4, ServiceLevel: true}
		warnF := Finding{Component: "tomcat2", Tier: "app", Severity: SevWarn, Value: 3.4, Threshold: 3}
		burnScript, skewScript := map[float64][]Finding{}, map[float64][]Finding{}
		for ts := 10.0; ts <= 30; ts += 5 {
			burnScript[ts] = []Finding{pageF}
			skewScript[ts+10] = []Finding{warnF}
		}
		e := NewEngine(cfg, nil)
		e.AddRule(&scriptedRule{name: "burn:client-latency-p95", script: burnScript})
		e.AddRule(&scriptedRule{name: "skew:app-pool", script: skewScript})
		e.Observe(2, "loop.reconfig", "control-loop", "", "db grow", 0)
		tickTo(e, 5, 150)
		return e
	}
	a, b := build(), build()

	jsonl := a.AlertsJSONL()
	if n, err := ValidateAlertsJSONL(jsonl); err != nil || n == 0 {
		t.Fatalf("AlertsJSONL invalid (n=%d): %v\n%s", n, err, jsonl)
	}
	if !bytes.Equal(jsonl, b.AlertsJSONL()) {
		t.Fatal("AlertsJSONL not deterministic")
	}
	page := a.AlertsPage(150)
	if err := ValidateAlertsPage(page); err != nil {
		t.Fatalf("AlertsPage invalid: %v\n%s", err, page)
	}
	if !bytes.Equal(page, b.AlertsPage(150)) {
		t.Fatal("AlertsPage not deterministic")
	}
	incs := a.IncidentsJSON(150)
	if err := ValidateIncidentsJSON(incs); err != nil {
		t.Fatalf("IncidentsJSON invalid: %v\n%s", err, incs)
	}
	if !bytes.Equal(incs, b.IncidentsJSON(150)) {
		t.Fatal("IncidentsJSON not deterministic")
	}
	if txt := a.RenderText(); txt == "" || txt != b.RenderText() {
		t.Fatal("RenderText empty or not deterministic")
	}
}

func TestDisabledEngineIsInert(t *testing.T) {
	e := NewEngine(Config{Disabled: true}, nil)
	e.AddRule(&scriptedRule{name: "skew:x", script: map[float64][]Finding{
		5: {{Component: "c", Severity: SevPage, Value: 1}},
	}})
	e.Tick(5)
	if e.ActiveCount() != 0 || len(e.Alerts()) != 0 {
		t.Fatal("disabled engine evaluated rules")
	}
	if err := ValidateAlertsPage(e.AlertsPage(5)); err != nil {
		t.Fatalf("disabled AlertsPage invalid: %v", err)
	}
	if err := ValidateIncidentsJSON(e.IncidentsJSON(5)); err != nil {
		t.Fatalf("disabled IncidentsJSON invalid: %v", err)
	}
	if e.RenderText() != "  alerting disabled\n" {
		t.Fatalf("RenderText = %q", e.RenderText())
	}
}
