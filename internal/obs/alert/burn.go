package alert

import "fmt"

// burnSample is one SLO evaluation outcome fed by the SLO engine.
type burnSample struct {
	t   float64
	met bool
}

// BurnRule converts one SLO objective's evaluation stream into
// multi-window error-budget burn-rate alerts. Each SLOEngine evaluation
// interval that misses its bound spends budget; the burn rate is the
// bad-interval fraction divided by the budget fraction, measured over a
// fast and a slow window. Paging requires both windows over PageBurn —
// the fast window gives low detection latency, the slow window stops a
// single bad interval from strobing the pager.
type BurnRule struct {
	cfg       Config
	objective string
	tier      string
	samples   []burnSample
	lastValue float64
	hasValue  bool
}

// NewBurnRule builds a burn-rate rule for one objective. Feed it from
// SLOEngine.Observer via Observe.
func NewBurnRule(cfg Config, objective, tier string) *BurnRule {
	return &BurnRule{cfg: cfg.withDefaults(), objective: objective, tier: tier}
}

// Name implements Rule.
func (r *BurnRule) Name() string { return "burn:" + r.objective }

// Retune implements Retunable: future windows use the new burn
// thresholds; retained samples are re-windowed on the next Evaluate.
func (r *BurnRule) Retune(cfg Config) { r.cfg = cfg.withDefaults() }

// Observe records one objective evaluation outcome (sim goroutine only).
func (r *BurnRule) Observe(now float64, value float64, met bool) {
	r.lastValue, r.hasValue = value, true
	r.samples = append(r.samples, burnSample{t: now, met: met})
	cut := now - r.cfg.SlowWindowSeconds
	i := 0
	for i < len(r.samples) && r.samples[i].t < cut {
		i++
	}
	if i > 0 {
		r.samples = append(r.samples[:0], r.samples[i:]...)
	}
}

// window returns the bad fraction and sample count at or after t0.
func (r *BurnRule) window(t0 float64) (badFrac float64, n int) {
	bad := 0
	for _, s := range r.samples {
		if s.t < t0 {
			continue
		}
		n++
		if !s.met {
			bad++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(bad) / float64(n), n
}

// Evaluate implements Rule.
func (r *BurnRule) Evaluate(now float64) []Finding {
	fastBad, fastN := r.window(now - r.cfg.FastWindowSeconds)
	slowBad, slowN := r.window(now - r.cfg.SlowWindowSeconds)
	if fastN == 0 || slowN == 0 {
		return nil
	}
	fastBurn := fastBad / r.cfg.BudgetFraction
	slowBurn := slowBad / r.cfg.BudgetFraction
	burn := fastBurn
	if slowBurn < burn {
		burn = slowBurn
	}
	var sev Severity
	var threshold float64
	switch {
	case burn >= r.cfg.PageBurn:
		sev, threshold = SevPage, r.cfg.PageBurn
	case burn >= r.cfg.WarnBurn:
		sev, threshold = SevWarn, r.cfg.WarnBurn
	default:
		return nil
	}
	detail := fmt.Sprintf("error budget burning at %.1fx fast / %.1fx slow", fastBurn, slowBurn)
	if r.hasValue {
		detail += fmt.Sprintf(" (last %s=%.4g)", r.objective, r.lastValue)
	}
	return []Finding{{
		Component:    r.tier,
		Tier:         r.tier,
		Severity:     sev,
		Value:        burn,
		Threshold:    threshold,
		Detail:       detail,
		ServiceLevel: true,
	}}
}
