package obs

import (
	"bytes"
	"fmt"
	"math"
)

// ObjectiveKind names the three objective families the paper's management
// policies are judged against.
type ObjectiveKind string

// Objective kinds.
const (
	LatencyPercentile ObjectiveKind = "latency-percentile"
	AbandonRate       ObjectiveKind = "abandon-rate"
	CPUBand           ObjectiveKind = "cpu-band"
)

// Objective is one service-level objective, evaluated over consecutive
// virtual-time windows. Probe returns the observed value over [t0,t1)
// and whether the window held any signal at all (empty windows — e.g. no
// completed requests yet — are skipped, not failed).
type Objective struct {
	Name       string
	Tier       string
	Kind       ObjectiveKind
	Percentile float64 // for LatencyPercentile, e.g. 0.95
	Max        float64 // upper bound (NaN = unbounded)
	Min        float64 // lower bound (NaN = unbounded)
	Probe      func(t0, t1 float64) (float64, bool)
}

// met reports whether v satisfies the objective's band.
func (o *Objective) met(v float64) bool {
	if !math.IsNaN(o.Max) && v > o.Max {
		return false
	}
	if !math.IsNaN(o.Min) && v < o.Min {
		return false
	}
	return true
}

// objectiveState accumulates one objective's evaluation history.
type objectiveState struct {
	obj       Objective
	intervals int
	metCount  int
	last      float64
	worst     float64
	hasWorst  bool
	lastMet   bool
	hasLast   bool
	valueG    *Gauge
	metG      *Gauge
}

// worseThan reports whether v is a worse observation than the current
// worst, given which bound the objective cares about.
func (s *objectiveState) worseThan(v float64) bool {
	if !s.hasWorst {
		return true
	}
	if !math.IsNaN(s.obj.Max) {
		return v > s.worst
	}
	return v < s.worst
}

// SLOEngine evaluates a set of objectives at a fixed virtual-time
// interval. Evaluate is driven by the scenario's sim ticker, so the
// evaluation schedule is part of the deterministic trajectory.
type SLOEngine struct {
	Interval float64
	// Observer, when set, receives every objective evaluation outcome
	// (called from Evaluate on the sim goroutine). The alerting plane's
	// burn-rate rules hang off this hook so they see exactly the
	// evaluated windows — probes are stateful and must not be re-run.
	Observer func(now float64, name, tier string, value float64, met bool)
	states   []*objectiveState
	lastEval float64
	started  bool
}

// NewSLOEngine builds an engine over objs, registering a value and a
// compliance gauge per objective when reg is non-nil.
func NewSLOEngine(reg *Registry, interval float64, objs []Objective) *SLOEngine {
	e := &SLOEngine{Interval: interval}
	for _, o := range objs {
		st := &objectiveState{obj: o}
		if reg != nil {
			ls := []Label{L("objective", o.Name), L("tier", o.Tier)}
			st.valueG = reg.Gauge("jade_slo_value", "Latest observed value per SLO objective.", ls...)
			st.metG = reg.Gauge("jade_slo_met", "1 when the objective held over the last window, else 0.", ls...)
		}
		e.states = append(e.states, st)
	}
	return e
}

// Evaluate probes every objective over the window ending at now. The
// first call only anchors the window start.
func (e *SLOEngine) Evaluate(now float64) {
	if e == nil {
		return
	}
	if !e.started {
		e.started = true
		e.lastEval = now
		return
	}
	t0, t1 := e.lastEval, now
	e.lastEval = now
	for _, st := range e.states {
		v, ok := st.obj.Probe(t0, t1)
		if !ok {
			continue
		}
		st.intervals++
		st.last = v
		met := st.obj.met(v)
		st.lastMet, st.hasLast = met, true
		if met {
			st.metCount++
		}
		if st.worseThan(v) {
			st.worst = v
			st.hasWorst = true
		}
		st.valueG.Set(v)
		st.metG.SetBool(met)
		if e.Observer != nil {
			e.Observer(now, st.obj.Name, st.obj.Tier, v, met)
		}
	}
}

// Retarget replaces the named objective's finite bound with target: the
// upper bound when the objective is bounded above, otherwise the lower
// bound. It returns whether the objective exists. Simulation goroutine
// only — the new target governs every window evaluated after the call.
func (e *SLOEngine) Retarget(name string, target float64) bool {
	if e == nil {
		return false
	}
	for _, st := range e.states {
		if st.obj.Name != name {
			continue
		}
		if !math.IsNaN(st.obj.Max) {
			st.obj.Max = target
		} else {
			st.obj.Min = target
		}
		return true
	}
	return false
}

// Targets reports each objective's finite bound (the one Retarget
// would replace), keyed by objective name, in a fresh map.
func (e *SLOEngine) Targets() map[string]float64 {
	out := map[string]float64{}
	if e == nil {
		return out
	}
	for _, st := range e.states {
		if !math.IsNaN(st.obj.Max) {
			out[st.obj.Name] = st.obj.Max
		} else if !math.IsNaN(st.obj.Min) {
			out[st.obj.Name] = st.obj.Min
		}
	}
	return out
}

// Burning returns the names of objectives whose most recently evaluated
// window missed its bound, in registration order. The /healthz page uses
// this to report "degraded" while the service is out of compliance.
func (e *SLOEngine) Burning() []string {
	if e == nil {
		return nil
	}
	var out []string
	for _, st := range e.states {
		if st.hasLast && !st.lastMet {
			out = append(out, st.obj.Name)
		}
	}
	return out
}

// ObjectiveReport is one objective's post-run summary.
type ObjectiveReport struct {
	Name       string        `json:"name"`
	Tier       string        `json:"tier"`
	Kind       ObjectiveKind `json:"kind"`
	Bound      string        `json:"bound"`
	Intervals  int           `json:"intervals"`
	MetCount   int           `json:"met"`
	Compliance float64       `json:"compliance"` // metCount/intervals, 1 when no intervals
	Last       float64       `json:"last"`
	Worst      float64       `json:"worst"`
}

// SLOReport is the engine's post-run compliance summary.
type SLOReport struct {
	Schema     string            `json:"schema"`
	Objectives []ObjectiveReport `json:"objectives"`
}

// SLOReportSchema identifies the SLO report document.
const SLOReportSchema = "jade-slo-report/v1"

// Report summarizes the run so far.
func (e *SLOEngine) Report() *SLOReport {
	rep := &SLOReport{Schema: SLOReportSchema}
	if e == nil {
		return rep
	}
	for _, st := range e.states {
		or := ObjectiveReport{
			Name:      st.obj.Name,
			Tier:      st.obj.Tier,
			Kind:      st.obj.Kind,
			Bound:     boundString(st.obj),
			Intervals: st.intervals,
			MetCount:  st.metCount,
			Last:      st.last,
			Worst:     st.worst,
		}
		if st.intervals > 0 {
			or.Compliance = float64(st.metCount) / float64(st.intervals)
		} else {
			or.Compliance = 1
		}
		rep.Objectives = append(rep.Objectives, or)
	}
	return rep
}

func boundString(o Objective) string {
	switch {
	case !math.IsNaN(o.Max) && !math.IsNaN(o.Min):
		return fmt.Sprintf("[%g, %g]", o.Min, o.Max)
	case !math.IsNaN(o.Max):
		return fmt.Sprintf("<= %g", o.Max)
	case !math.IsNaN(o.Min):
		return fmt.Sprintf(">= %g", o.Min)
	}
	return "unbounded"
}

// Compliant reports whether every objective met its bound in every
// evaluated window.
func (r *SLOReport) Compliant() bool {
	for _, o := range r.Objectives {
		if o.MetCount < o.Intervals {
			return false
		}
	}
	return true
}

// Render draws the report as an aligned text table.
func (r *SLOReport) Render() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%-24s %-8s %-20s %-12s %10s %10s %10s\n",
		"OBJECTIVE", "TIER", "KIND", "BOUND", "COMPLIANCE", "WORST", "LAST")
	for _, o := range r.Objectives {
		comp := fmt.Sprintf("%d/%d", o.MetCount, o.Intervals)
		if o.Intervals == 0 {
			comp = "n/a"
		}
		fmt.Fprintf(&b, "%-24s %-8s %-20s %-12s %10s %10.4g %10.4g\n",
			o.Name, o.Tier, o.Kind, o.Bound, comp, o.Worst, o.Last)
	}
	return b.String()
}

// Unbounded is the NaN sentinel for an Objective bound that doesn't apply.
func Unbounded() float64 { return math.NaN() }
