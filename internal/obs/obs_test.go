package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %g", g.Value())
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should no-op")
	}
	var tm *TierMetrics
	tm.End(tm.Begin(), nil)
	tm.Drop()
	var pm *PoolMetrics
	pm.SetSizes(1, 2)
	var r *Registry
	if r.Counter("x", "h") != nil {
		t.Fatal("nil registry should hand out nil instruments")
	}
	r.Snapshot()
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry(nil)
	a := r.Counter("jade_x_total", "x", L("tier", "app"))
	b := r.Counter("jade_x_total", "x", L("tier", "app"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("jade_x_total", "x", L("tier", "db"))
	if a == c {
		t.Fatal("different labels must return a distinct counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type conflict must panic")
		}
	}()
	r.Gauge("jade_x_total", "x")
}

func TestHistogramQuantilesExact(t *testing.T) {
	h := NewHistogram(nil)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 1000) // 1ms..100ms
	}
	if got := h.Quantile(0.50); math.Abs(got-0.0505) > 1e-9 {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Quantile(1); got != 0.1 {
		t.Fatalf("p100 = %v", got)
	}
	if got := h.Quantile(0); got != 0.001 {
		t.Fatalf("p0 = %v", got)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(nil), NewHistogram(nil)
	a.Observe(0.010)
	a.Observe(0.020)
	b.Observe(0.500)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	s := a.snapshot()
	if s.Cumulative[len(s.Cumulative)-1] != 3 {
		t.Fatalf("merged +Inf cumulative = %d", s.Cumulative[len(s.Cumulative)-1])
	}
	if s.Min != 0.010 || s.Max != 0.500 {
		t.Fatalf("merged min/max = %v/%v", s.Min, s.Max)
	}
}

func buildTestRegistry() *Registry {
	now := 0.0
	r := NewRegistry(func() float64 { return now })
	r.Counter("jade_req_total", "Requests.", L("tier", "web"), L("instance", "apache1")).Add(10)
	r.Counter("jade_req_total", "Requests.", L("tier", "app"), L("instance", "tomcat1")).Add(7)
	r.Gauge("jade_pool_free_nodes", "Free nodes.").Set(3)
	h := r.Histogram("jade_latency_seconds", "Latency.", L("tier", "client"))
	h.Observe(0.004)
	h.Observe(0.120)
	h.Observe(2.5)
	return r
}

func TestPrometheusTextRoundTrip(t *testing.T) {
	r := buildTestRegistry()
	page := PrometheusText(r.Snapshot())
	n, err := ValidatePrometheusText(page)
	if err != nil {
		t.Fatalf("validate: %v\npage:\n%s", err, page)
	}
	if n == 0 {
		t.Fatal("no samples")
	}
	text := string(page)
	for _, want := range []string{
		"# TYPE jade_req_total counter",
		"# TYPE jade_latency_seconds histogram",
		`jade_req_total{instance="apache1",tier="web"} 10`,
		`jade_latency_seconds_bucket{tier="client",le="+Inf"} 3`,
		"jade_latency_seconds_count{tier=\"client\"} 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("page missing %q:\n%s", want, text)
		}
	}
	// Exposition is deterministic.
	if !bytes.Equal(page, PrometheusText(r.Snapshot())) {
		t.Fatal("two snapshots of an unchanged registry rendered differently")
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	r := buildTestRegistry()
	doc := MetricsJSON(r.Snapshot())
	fams, err := ValidateMetricsJSON(doc)
	if err != nil {
		t.Fatalf("validate: %v\ndoc:\n%s", err, doc)
	}
	if fams != 3 {
		t.Fatalf("families = %d, want 3", fams)
	}
	if !bytes.Equal(doc, MetricsJSON(r.Snapshot())) {
		t.Fatal("json snapshot not deterministic")
	}
}

func TestValidatePrometheusTextRejects(t *testing.T) {
	bad := []string{
		"",                                   // no samples
		"jade_orphan 1\n",                    // sample without TYPE
		"# HELP x h\n# TYPE x counter\nx\n",  // no value
		"# TYPE x counter\nx 1\n",            // TYPE before HELP
		"# HELP x h\n# TYPE x wibble\nx 1\n", // unknown type
	}
	for _, page := range bad {
		if _, err := ValidatePrometheusText([]byte(page)); err == nil {
			t.Fatalf("page %q should fail validation", page)
		}
	}
}

func TestSLOEngine(t *testing.T) {
	reg := NewRegistry(nil)
	lat := 0.5
	objs := []Objective{
		{
			Name: "client-latency-p95", Tier: "client", Kind: LatencyPercentile,
			Percentile: 0.95, Max: 2.0, Min: Unbounded(),
			Probe: func(t0, t1 float64) (float64, bool) { return lat, true },
		},
		{
			Name: "app-cpu-band", Tier: "app", Kind: CPUBand,
			Max: 0.9, Min: Unbounded(),
			Probe: func(t0, t1 float64) (float64, bool) { return 0, false }, // never fires
		},
	}
	e := NewSLOEngine(reg, 10, objs)
	e.Evaluate(0) // anchor
	e.Evaluate(10)
	lat = 3.0 // violate
	e.Evaluate(20)
	lat = 1.0
	e.Evaluate(30)
	rep := e.Report()
	if len(rep.Objectives) != 2 {
		t.Fatalf("objectives = %d", len(rep.Objectives))
	}
	o := rep.Objectives[0]
	if o.Intervals != 3 || o.MetCount != 2 {
		t.Fatalf("latency objective: %d/%d", o.MetCount, o.Intervals)
	}
	if o.Worst != 3.0 || o.Last != 1.0 {
		t.Fatalf("worst/last = %v/%v", o.Worst, o.Last)
	}
	if rep.Compliant() {
		t.Fatal("report should be non-compliant")
	}
	idle := rep.Objectives[1]
	if idle.Intervals != 0 || idle.Compliance != 1 {
		t.Fatalf("idle objective: %+v", idle)
	}
	out := rep.Render()
	if !strings.Contains(out, "client-latency-p95") || !strings.Contains(out, "2/3") {
		t.Fatalf("render missing fields:\n%s", out)
	}
}

func TestAdminServerServesPublishedPages(t *testing.T) {
	pub := NewPublisher()
	srv, err := StartAdmin("127.0.0.1:0", pub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	url := fmt.Sprintf("http://%s/metrics", srv.Addr())
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-publish status = %d", resp.StatusCode)
	}

	r := buildTestRegistry()
	pub.Set("/metrics", PrometheusText(r.Snapshot()))
	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	if _, err := ValidatePrometheusText(body); err != nil {
		t.Fatalf("served page invalid: %v", err)
	}
}
