package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// Publisher is the bridge between the simulation goroutine and HTTP
// readers: the sim thread renders immutable byte pages at snapshot ticks
// and Sets them; handlers only Get. Readers therefore never touch live
// sim structures and cannot perturb the trajectory. The one write path
// — POST /config — goes through an explicit handler that only enqueues
// a validated submission for the sim goroutine to drain at a tick
// boundary, preserving the same non-perturbation guarantee.
type Publisher struct {
	mu    sync.RWMutex
	pages map[string][]byte
	posts map[string]PostHandler
}

// PostHandler handles one POST body and returns the HTTP status code
// and response body. It must not touch live simulation state — the
// config handler validates and enqueues only.
type PostHandler func(body []byte) (status int, response []byte)

// NewPublisher returns an empty publisher.
func NewPublisher() *Publisher {
	return &Publisher{pages: make(map[string][]byte), posts: make(map[string]PostHandler)}
}

// SetPostHandler installs the POST handler for path. Pages registered in
// pageContentTypes still serve GETs on the same path.
func (p *Publisher) SetPostHandler(path string, fn PostHandler) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.posts[path] = fn
	p.mu.Unlock()
}

// postHandler returns the POST handler for path.
func (p *Publisher) postHandler(path string) (PostHandler, bool) {
	if p == nil {
		return nil, false
	}
	p.mu.RLock()
	fn, ok := p.posts[path]
	p.mu.RUnlock()
	return fn, ok && fn != nil
}

// Set stores the current page for path. The caller must not mutate page
// afterwards.
func (p *Publisher) Set(path string, page []byte) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.pages[path] = page
	p.mu.Unlock()
}

// Get returns the current page for path.
func (p *Publisher) Get(path string) ([]byte, bool) {
	if p == nil {
		return nil, false
	}
	p.mu.RLock()
	page, ok := p.pages[path]
	p.mu.RUnlock()
	return page, ok
}

// AdminServer serves the published introspection pages over HTTP:
//
//	/metrics       Prometheus text exposition (0.0.4)
//	/metrics.json  the same snapshot as JSON
//	/healthz       liveness + SLO compliance ("ok" | "degraded" | "invariant-violation")
//	/components    Fractal component tree with lifecycle/binding state
//	/loops         control-loop internals (sensor, thresholds, hysteresis)
//	/alerts        active + resolved alerts (jade-alerts/v1)
//	/incidents     correlated incident timelines (jade-incidents/v1)
//	/fluid         fluid workload-engine station internals (jade-fluid/v1)
//	/config        refreshable configuration (GET: jade-config/v1 snapshot;
//	               POST: enqueue a validated patch for the next drain tick)
type AdminServer struct {
	pub  *Publisher
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

var pageContentTypes = map[string]string{
	"/metrics":      "text/plain; version=0.0.4; charset=utf-8",
	"/metrics.json": "application/json",
	"/healthz":      "application/json",
	"/components":   "application/json",
	"/loops":        "application/json",
	"/alerts":       "application/json",
	"/incidents":    "application/json",
	"/fluid":        "application/json",
	"/config":       "application/json",
}

// maxPostBody bounds POST request bodies (config patches are small).
const maxPostBody = 1 << 20

// StartAdmin listens on addr (e.g. ":8080" or "127.0.0.1:0" for an
// ephemeral port) and serves pub's pages. It returns once the listener
// is bound, so Addr() is immediately valid.
func StartAdmin(addr string, pub *Publisher) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	a := &AdminServer{pub: pub, ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	for path, ctype := range pageContentTypes {
		path, ctype := path, ctype
		mux.HandleFunc(path, func(w http.ResponseWriter, req *http.Request) {
			if req.Method == http.MethodPost {
				fn, ok := a.pub.postHandler(path)
				if !ok {
					http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
					return
				}
				body, err := io.ReadAll(io.LimitReader(req.Body, maxPostBody))
				if err != nil {
					http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
					return
				}
				status, resp := fn(body)
				w.Header().Set("Content-Type", ctype)
				w.WriteHeader(status)
				w.Write(resp)
				return
			}
			page, ok := a.pub.Get(path)
			if !ok {
				http.Error(w, "snapshot not yet published", http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", ctype)
			w.Write(page)
		})
	}
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		a.srv.Serve(ln)
		close(a.done)
	}()
	return a, nil
}

// Addr returns the bound listen address (host:port).
func (a *AdminServer) Addr() string {
	if a == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// Close stops the listener and waits for the serve loop to exit.
func (a *AdminServer) Close() error {
	if a == nil {
		return nil
	}
	err := a.srv.Close()
	<-a.done
	return err
}

// Health is the /healthz wire shape. Status is "invariant-violation"
// when a checker tripped, "degraded" while any SLO objective's most
// recent window missed its bound (the burning objectives are listed),
// and "ok" otherwise.
type Health struct {
	Status       string   `json:"status"`
	Time         float64  `json:"time"`
	Events       uint64   `json:"events_processed"`
	Components   int      `json:"components"`
	Burning      []string `json:"burning_objectives,omitempty"`
	ActiveAlerts int      `json:"active_alerts"`
}

// RenderHealth renders the /healthz document. burning comes from
// SLOEngine.Burning; violation from the invariant harness.
func RenderHealth(now float64, events uint64, components int, violation bool, burning []string, activeAlerts int) []byte {
	status := "ok"
	switch {
	case violation:
		status = "invariant-violation"
	case len(burning) > 0:
		status = "degraded"
	}
	doc := Health{Status: status, Time: now, Events: events, Components: components,
		Burning: burning, ActiveAlerts: activeAlerts}
	b, _ := json.MarshalIndent(doc, "", "  ")
	return append(b, '\n')
}

// LoopStatus is the /loops wire shape for one control loop: identity,
// sensor state, thresholds and hysteresis, and the decision tally.
type LoopStatus struct {
	Name          string  `json:"name"`
	Tier          string  `json:"tier"`
	Running       bool    `json:"running"`
	PeriodSeconds float64 `json:"period_seconds"`
	Samples       int     `json:"samples"`
	LastValue     float64 `json:"last_value"`
	WindowSeconds float64 `json:"window_seconds"`
	WindowCount   int     `json:"window_count"`
	WindowFull    bool    `json:"window_full"`
	MinThreshold  float64 `json:"min_threshold"`
	MaxThreshold  float64 `json:"max_threshold"`
	// Distance from the smoothed value to the nearest threshold;
	// negative when outside the band.
	ThresholdDistance float64 `json:"threshold_distance"`
	Inhibited         bool    `json:"inhibited"`
	InhibitedUntil    float64 `json:"inhibited_until"`
	Grows             int     `json:"grows"`
	Shrinks           int     `json:"shrinks"`
	Replicas          int     `json:"replicas"`
}
