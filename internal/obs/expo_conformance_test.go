package obs

import (
	"strconv"
	"strings"
	"testing"
)

// conformancePage renders a registry with every metric type, including a
// family whose help text needs escaping, and returns the text page.
func conformancePage(t *testing.T) []byte {
	t.Helper()
	r := NewRegistry(nil)
	r.Counter("jade_requests_total", "Requests handled.", L("tier", "app")).Add(7)
	r.Gauge("jade_replicas", "Current replica count.").Set(3)
	r.Gauge("jade_help_escape", "Line one\nline two with back\\slash.").Set(1)
	h := r.Histogram("jade_latency_seconds", "Request latency.", L("tier", "app"))
	for _, v := range []float64{0.01, 0.05, 0.2, 1.5, 9} {
		h.Observe(v)
	}
	h2 := r.Histogram("jade_latency_seconds", "Request latency.", L("tier", "db"))
	h2.Observe(0.003)
	return PrometheusText(r.Snapshot())
}

// TestPrometheusConformance walks the rendered page against the text
// exposition format 0.0.4 requirements the repo relies on: one HELP and
// one TYPE line per family (HELP first), HELP docstrings with backslash
// and newline escaped, and per histogram series cumulative le-buckets
// ending in +Inf plus _sum and _count samples.
func TestPrometheusConformance(t *testing.T) {
	page := conformancePage(t)
	if _, err := ValidatePrometheusText(page); err != nil {
		t.Fatalf("page does not validate: %v\n%s", err, page)
	}
	lines := strings.Split(string(page), "\n")

	helps := map[string]int{}
	types := map[string]int{}
	seenSamples := map[string]bool{}
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name, _, _ := strings.Cut(strings.TrimPrefix(line, "# HELP "), " ")
			helps[name]++
			if types[name] > 0 {
				t.Errorf("TYPE for %s precedes HELP", name)
			}
			if seenSamples[name] {
				t.Errorf("samples for %s precede HELP", name)
			}
		case strings.HasPrefix(line, "# TYPE "):
			name, _, _ := strings.Cut(strings.TrimPrefix(line, "# TYPE "), " ")
			types[name]++
		case line != "":
			name := line
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				name = strings.TrimSuffix(name, suf)
			}
			seenSamples[name] = true
		}
	}
	for _, fam := range []string{"jade_requests_total", "jade_replicas", "jade_help_escape", "jade_latency_seconds"} {
		if helps[fam] != 1 || types[fam] != 1 {
			t.Errorf("family %s: %d HELP, %d TYPE lines, want exactly 1 each", fam, helps[fam], types[fam])
		}
		if !seenSamples[fam] {
			t.Errorf("family %s has no samples", fam)
		}
	}

	// HELP escaping: raw newline must not split the page; the docstring
	// carries literal \n and \\ sequences instead.
	for _, line := range lines {
		if strings.HasPrefix(line, "# HELP jade_help_escape ") {
			doc := strings.TrimPrefix(line, "# HELP jade_help_escape ")
			if doc != `Line one\nline two with back\\slash.` {
				t.Errorf("HELP escaping wrong: %q", doc)
			}
		}
		if line == "line two with back\\slash." {
			t.Error("raw newline leaked into the page")
		}
	}

	// Histogram shape per series: cumulative buckets, +Inf last, then
	// _sum and _count.
	for _, sig := range []string{`tier="app"`, `tier="db"`} {
		var bucketVals []float64
		hasInf, hasSum, hasCount := false, false, false
		for _, line := range lines {
			switch {
			case strings.HasPrefix(line, "jade_latency_seconds_bucket{") && strings.Contains(line, sig):
				if strings.Contains(line, `le="+Inf"`) {
					hasInf = true
				}
				var v float64
				if _, err := fmtSscan(line, &v); err != nil {
					t.Fatalf("unparseable bucket line %q: %v", line, err)
				}
				bucketVals = append(bucketVals, v)
			case strings.HasPrefix(line, "jade_latency_seconds_sum{") && strings.Contains(line, sig):
				hasSum = true
			case strings.HasPrefix(line, "jade_latency_seconds_count{") && strings.Contains(line, sig):
				hasCount = true
			}
		}
		if len(bucketVals) == 0 || !hasInf || !hasSum || !hasCount {
			t.Fatalf("series {%s}: buckets=%d inf=%v sum=%v count=%v", sig, len(bucketVals), hasInf, hasSum, hasCount)
		}
		for i := 1; i < len(bucketVals); i++ {
			if bucketVals[i] < bucketVals[i-1] {
				t.Fatalf("series {%s}: non-cumulative buckets %v", sig, bucketVals)
			}
		}
	}
}

// fmtSscan parses the float value off the end of a sample line.
func fmtSscan(line string, v *float64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*v, err = strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		return 0, err
	}
	return 1, nil
}

// TestValidatePrometheusTextRejectsGaps: the validator must reject pages
// missing the pieces the conformance contract requires.
func TestValidatePrometheusTextRejectsGaps(t *testing.T) {
	base := "# HELP jade_lat x\n# TYPE jade_lat histogram\n"
	cases := map[string]string{
		"missing +Inf bucket": base +
			"jade_lat_bucket{le=\"1\"} 2\njade_lat_sum 1\njade_lat_count 2\n",
		"missing _sum": base +
			"jade_lat_bucket{le=\"1\"} 2\njade_lat_bucket{le=\"+Inf\"} 2\njade_lat_count 2\n",
		"missing _count": base +
			"jade_lat_bucket{le=\"1\"} 2\njade_lat_bucket{le=\"+Inf\"} 2\njade_lat_sum 1\n",
		"+Inf disagrees with count": base +
			"jade_lat_bucket{le=\"+Inf\"} 2\njade_lat_sum 1\njade_lat_count 3\n",
		"non-cumulative buckets": base +
			"jade_lat_bucket{le=\"1\"} 3\njade_lat_bucket{le=\"2\"} 2\njade_lat_bucket{le=\"+Inf\"} 3\njade_lat_sum 1\njade_lat_count 3\n",
		"TYPE before HELP": "# TYPE jade_x gauge\n# HELP jade_x x\njade_x 1\n",
		"untyped sample":   "jade_y 1\n",
	}
	for name, page := range cases {
		if _, err := ValidatePrometheusText([]byte(page)); err == nil {
			t.Errorf("%s: page accepted:\n%s", name, page)
		}
	}
}
