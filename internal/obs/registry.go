// Package obs is Jade's live introspection plane: a deterministic metrics
// registry (counters, gauges, log-bucketed latency histograms) clocked on
// the simulation's virtual time, dual Prometheus-text/JSON exposition, an
// SLO engine evaluating per-tier objectives continuously, and an admin
// HTTP endpoint serving published snapshots.
//
// Determinism contract: all metric *writes* happen on the simulation
// goroutine; counters and gauges are atomics and histograms take a
// per-histogram mutex, so a concurrent HTTP reader observes a consistent
// snapshot without ever perturbing the simulation schedule. Snapshot
// rendering orders families by name and series by label signature, so the
// same trajectory always produces byte-identical exposition.
//
// All instrument methods are nil-receiver safe (like the trace.Tracer
// pattern): un-instrumented unit tests pass nil and every call no-ops.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"jade/internal/metrics"
)

// Label is one metric dimension. Labels are ordered by key in exposition.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// MetricType discriminates exposition families.
type MetricType string

// Metric types.
const (
	CounterType   MetricType = "counter"
	GaugeType     MetricType = "gauge"
	HistogramType MetricType = "histogram"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetBool stores 1 or 0.
func (g *Gauge) SetBool(b bool) {
	if b {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultBuckets are log-spaced latency bounds in seconds: 1 ms doubling
// up to ~65 s. Log spacing keeps relative error constant and makes
// buckets from different instances mergeable bound-for-bound.
func DefaultBuckets() []float64 {
	out := make([]float64, 17)
	b := 0.001
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

// Histogram observes a distribution: log-spaced cumulative-exposable
// buckets (mergeable across instances) plus the raw samples, so quantiles
// are exact rather than bucket-interpolated. Runs are bounded in virtual
// time, so retaining samples is cheap (the workload harness already does).
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds; +Inf implicit
	counts  []uint64  // per-bucket (non-cumulative), len(bounds)+1
	samples []float64
	sorted  bool
	sum     float64
	min     float64
	max     float64
}

// NewHistogram builds a histogram over the given ascending bucket bounds
// (DefaultBuckets when nil). Prefer Registry.Histogram for registered use.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultBuckets()
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of samples (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return uint64(len(h.samples))
}

// Sum returns the sum of samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the exact p-quantile (0 <= p <= 1) over the raw
// samples, using the same linear-interpolation convention as
// metrics.Percentile. Empty histograms yield 0.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	return metrics.Percentile(h.samples, p)
}

// Merge folds other's buckets and samples into h. Bucket bounds must be
// identical (they are when both came from the same constructor), which is
// what makes log-spaced buckets mergeable across tier instances.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	other.mu.Lock()
	counts := append([]uint64(nil), other.counts...)
	samples := append([]float64(nil), other.samples...)
	sum, mn, mx := other.sum, other.min, other.max
	other.mu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(counts) != len(h.counts) {
		panic("obs: merging histograms with different bucket layouts")
	}
	for i, c := range counts {
		h.counts[i] += c
	}
	h.samples = append(h.samples, samples...)
	h.sorted = false
	h.sum += sum
	if mn < h.min {
		h.min = mn
	}
	if mx > h.max {
		h.max = mx
	}
}

// HistogramSnapshot is an immutable view used by exposition.
type HistogramSnapshot struct {
	Bounds        []float64 // upper bounds; +Inf implicit as last bucket
	Cumulative    []uint64  // cumulative counts per bound, then +Inf
	Count         uint64
	Sum           float64
	Min, Max      float64
	P50, P95, P99 float64
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	mn, mx := h.min, h.max
	if len(h.samples) == 0 {
		mn, mx = 0, 0
	}
	return HistogramSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: cum,
		Count:      uint64(len(h.samples)),
		Sum:        h.sum,
		Min:        mn,
		Max:        mx,
		P50:        metrics.Percentile(h.samples, 0.50),
		P95:        metrics.Percentile(h.samples, 0.95),
		P99:        metrics.Percentile(h.samples, 0.99),
	}
}

// metric is one registered series: a family name, a label set and exactly
// one instrument.
type metric struct {
	name   string
	labels []Label // sorted by key
	sig    string  // rendered label signature for ordering
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family groups same-named metrics for HELP/TYPE exposition.
type family struct {
	name    string
	help    string
	typ     MetricType
	metrics []*metric
}

// Registry holds the platform's metrics. Registration is get-or-create:
// asking twice for the same name+labels returns the same instrument, so
// restartable wrappers can re-attach without duplication.
type Registry struct {
	now func() float64

	mu       sync.Mutex
	families map[string]*family
	byKey    map[string]*metric
	order    []string // family registration order (exposition sorts anyway)
}

// NewRegistry builds a registry clocked by now (the sim engine's virtual
// clock). A nil now defaults to a constant zero clock.
func NewRegistry(now func() float64) *Registry {
	if now == nil {
		now = func() float64 { return 0 }
	}
	return &Registry{
		now:      now,
		families: make(map[string]*family),
		byKey:    make(map[string]*metric),
	}
}

// Now returns the registry's virtual time (0 on nil).
func (r *Registry) Now() float64 {
	if r == nil {
		return 0
	}
	return r.now()
}

func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	out := make([]byte, 0, 32)
	for i, l := range labels {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, l.Key...)
		out = append(out, '=', '"')
		out = append(out, escapeLabel(l.Value)...)
		out = append(out, '"')
	}
	return string(out)
}

func escapeLabel(v string) string {
	// Prometheus label escaping: backslash, double-quote, newline.
	needs := false
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' || v[i] == '"' || v[i] == '\n' {
			needs = true
			break
		}
	}
	if !needs {
		return v
	}
	out := make([]byte, 0, len(v)+4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// get returns the metric for name+labels, creating it with build when new.
// It panics when the same family name is reused with a different type —
// always a programming error.
func (r *Registry) get(name, help string, typ MetricType, labels []Label, build func() *metric) *metric {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	sig := labelSig(ls)
	key := name + "{" + sig + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		return m
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic("obs: metric family " + name + " registered as " + string(f.typ) + " and " + string(typ))
	}
	m := build()
	m.name, m.labels, m.sig = name, ls, sig
	f.metrics = append(f.metrics, m)
	r.byKey[key] = m
	return m
}

// Counter returns (registering on first use) a counter. Nil registries
// return nil, which is safe to use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, help, CounterType, labels, func() *metric { return &metric{ctr: &Counter{}} }).ctr
}

// Gauge returns (registering on first use) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, help, GaugeType, labels, func() *metric { return &metric{gauge: &Gauge{}} }).gauge
}

// Histogram returns (registering on first use) a histogram with
// DefaultBuckets.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, help, HistogramType, labels, func() *metric { return &metric{hist: NewHistogram(nil)} }).hist
}

// SeriesSnapshot is one series in a Snapshot.
type SeriesSnapshot struct {
	Labels    []Label
	Sig       string
	Value     float64 // counters (as float) and gauges
	Histogram *HistogramSnapshot
}

// FamilySnapshot is one family in a Snapshot.
type FamilySnapshot struct {
	Name   string
	Help   string
	Type   MetricType
	Series []SeriesSnapshot
}

// Snapshot is an immutable, deterministically ordered view of the
// registry: families by name, series by label signature.
type Snapshot struct {
	Time     float64
	Families []FamilySnapshot
}

// Snapshot captures the registry. Safe to call from any goroutine; the
// result shares nothing with live instruments.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	// Copy the per-family metric slices under the lock; instrument reads
	// happen outside it (they synchronize on their own atomics/mutexes).
	type famView struct {
		f  *family
		ms []*metric
	}
	views := make([]famView, len(fams))
	for i, f := range fams {
		views[i] = famView{f: f, ms: append([]*metric(nil), f.metrics...)}
	}
	now := r.now()
	r.mu.Unlock()

	snap := &Snapshot{Time: now}
	for _, v := range views {
		fs := FamilySnapshot{Name: v.f.name, Help: v.f.help, Type: v.f.typ}
		ms := append([]*metric(nil), v.ms...)
		sort.Slice(ms, func(i, j int) bool { return ms[i].sig < ms[j].sig })
		for _, m := range ms {
			ss := SeriesSnapshot{Labels: m.labels, Sig: m.sig}
			switch {
			case m.ctr != nil:
				ss.Value = float64(m.ctr.Value())
			case m.gauge != nil:
				ss.Value = m.gauge.Value()
			case m.hist != nil:
				hs := m.hist.snapshot()
				ss.Histogram = &hs
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// TierMetrics bundles the per-instance request instruments every tier
// server carries: requests/errors/drops plus a latency histogram. All
// methods are nil-safe, so un-instrumented servers cost two nil checks.
type TierMetrics struct {
	now      func() float64
	Requests *Counter
	Errors   *Counter
	Dropped  *Counter
	Latency  *Histogram
}

// NewTierMetrics registers the standard tier instruments labeled
// tier/instance. A nil registry yields nil (safe no-op instruments).
func NewTierMetrics(r *Registry, tier, instance string) *TierMetrics {
	if r == nil {
		return nil
	}
	ls := []Label{L("tier", tier), L("instance", instance)}
	return &TierMetrics{
		now:      r.now,
		Requests: r.Counter("jade_tier_requests_total", "Requests handled per tier instance.", ls...),
		Errors:   r.Counter("jade_tier_errors_total", "Requests failed per tier instance.", ls...),
		Dropped:  r.Counter("jade_tier_dropped_total", "Requests rejected before service per tier instance.", ls...),
		Latency:  r.Histogram("jade_tier_latency_seconds", "Per-request service latency per tier instance.", ls...),
	}
}

// Begin returns the virtual start time of a request (0 on nil).
func (m *TierMetrics) Begin() float64 {
	if m == nil {
		return 0
	}
	return m.now()
}

// End records a completed request that started at start.
func (m *TierMetrics) End(start float64, err error) {
	if m == nil {
		return
	}
	m.Requests.Inc()
	if err != nil {
		m.Errors.Inc()
	}
	m.Latency.Observe(m.now() - start)
}

// Drop records a request rejected before entering service.
func (m *TierMetrics) Drop() {
	if m == nil {
		return
	}
	m.Dropped.Inc()
}

// PoolMetrics instruments the cluster allocator.
type PoolMetrics struct {
	Allocs      *Counter
	Releases    *Counter
	AllocFailed *Counter
	Free        *Gauge
	Allocated   *Gauge
}

// NewPoolMetrics registers the allocator instruments. Nil registry yields
// nil (safe no-op).
func NewPoolMetrics(r *Registry) *PoolMetrics {
	if r == nil {
		return nil
	}
	return &PoolMetrics{
		Allocs:      r.Counter("jade_pool_allocations_total", "Nodes handed out by the cluster pool."),
		Releases:    r.Counter("jade_pool_releases_total", "Nodes returned to the cluster pool."),
		AllocFailed: r.Counter("jade_pool_allocation_failures_total", "Allocation requests that found no healthy free node."),
		Free:        r.Gauge("jade_pool_free_nodes", "Healthy free nodes in the pool."),
		Allocated:   r.Gauge("jade_pool_allocated_nodes", "Nodes currently allocated from the pool."),
	}
}

// SetSizes updates the pool occupancy gauges.
func (m *PoolMetrics) SetSizes(free, allocated int) {
	if m == nil {
		return
	}
	m.Free.Set(float64(free))
	m.Allocated.Set(float64(allocated))
}
