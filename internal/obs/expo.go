package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// MetricsJSONSchema identifies the JSON metrics snapshot document.
const MetricsJSONSchema = "jade-metrics/v1"

// ComponentsJSONSchema identifies the /components document.
const ComponentsJSONSchema = "jade-components/v1"

// LoopsJSONSchema identifies the /loops document.
const LoopsJSONSchema = "jade-loops/v1"

func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PrometheusText renders a snapshot in Prometheus text exposition format
// 0.0.4: HELP/TYPE headers, families sorted by name, series sorted by
// label signature, histograms as cumulative _bucket{le=...}/_sum/_count.
// Output is a pure function of the snapshot, so same-trajectory runs
// produce byte-identical pages.
func PrometheusText(s *Snapshot) []byte {
	var b bytes.Buffer
	for _, f := range s.Families {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, m := range f.Series {
			switch f.Type {
			case HistogramType:
				h := m.Histogram
				for i, bound := range h.Bounds {
					writeSample(&b, f.Name+"_bucket", m.Sig, "le", fmtFloat(bound), float64(h.Cumulative[i]))
				}
				writeSample(&b, f.Name+"_bucket", m.Sig, "le", "+Inf", float64(h.Count))
				writeSample(&b, f.Name+"_sum", m.Sig, "", "", h.Sum)
				writeSample(&b, f.Name+"_count", m.Sig, "", "", float64(h.Count))
			default:
				writeSample(&b, f.Name, m.Sig, "", "", m.Value)
			}
		}
	}
	return b.Bytes()
}

// escapeHelp escapes a HELP docstring per text exposition format 0.0.4:
// backslash and newline are the only escaped characters.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// writeSample emits one sample line, splicing an extra label (le) after
// the series' own labels when given.
func writeSample(b *bytes.Buffer, name, sig, extraKey, extraVal string, v float64) {
	b.WriteString(name)
	if sig != "" || extraKey != "" {
		b.WriteByte('{')
		b.WriteString(sig)
		if extraKey != "" {
			if sig != "" {
				b.WriteByte(',')
			}
			b.WriteString(extraKey)
			b.WriteString(`="`)
			b.WriteString(extraVal)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(fmtFloat(v))
	b.WriteByte('\n')
}

// jsonSeries mirrors SeriesSnapshot with wire-stable JSON tags.
type jsonSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Hist   *jsonHistogram    `json:"histogram,omitempty"`
}

type jsonHistogram struct {
	Bounds     []float64 `json:"bounds"`
	Cumulative []uint64  `json:"cumulative"`
	Count      uint64    `json:"count"`
	Sum        float64   `json:"sum"`
	Min        float64   `json:"min"`
	Max        float64   `json:"max"`
	P50        float64   `json:"p50"`
	P95        float64   `json:"p95"`
	P99        float64   `json:"p99"`
}

type jsonFamily struct {
	Name   string       `json:"name"`
	Help   string       `json:"help"`
	Type   MetricType   `json:"type"`
	Series []jsonSeries `json:"series"`
}

type jsonSnapshot struct {
	Schema   string       `json:"schema"`
	Time     float64      `json:"time"`
	Families []jsonFamily `json:"families"`
}

// MetricsJSON renders a snapshot as an indented JSON document with schema
// MetricsJSONSchema. encoding/json sorts map keys, and families/series
// are pre-sorted by Snapshot, so the document is deterministic.
func MetricsJSON(s *Snapshot) []byte {
	doc := jsonSnapshot{Schema: MetricsJSONSchema, Time: s.Time}
	for _, f := range s.Families {
		jf := jsonFamily{Name: f.Name, Help: f.Help, Type: f.Type, Series: []jsonSeries{}}
		for _, m := range f.Series {
			js := jsonSeries{}
			if len(m.Labels) > 0 {
				js.Labels = make(map[string]string, len(m.Labels))
				for _, l := range m.Labels {
					js.Labels[l.Key] = l.Value
				}
			}
			if m.Histogram != nil {
				js.Hist = &jsonHistogram{
					Bounds:     m.Histogram.Bounds,
					Cumulative: m.Histogram.Cumulative,
					Count:      m.Histogram.Count,
					Sum:        m.Histogram.Sum,
					Min:        m.Histogram.Min,
					Max:        m.Histogram.Max,
					P50:        m.Histogram.P50,
					P95:        m.Histogram.P95,
					P99:        m.Histogram.P99,
				}
			} else {
				v := m.Value
				js.Value = &v
			}
			jf.Series = append(jf.Series, js)
		}
		doc.Families = append(doc.Families, jf)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil { // all value types are marshalable; unreachable
		panic(err)
	}
	return append(out, '\n')
}

// ValidatePrometheusText checks a page against the text exposition format
// 0.0.4: every family needs HELP then TYPE before its samples, sample
// lines must parse, and every histogram series must carry cumulative
// le-buckets, a +Inf bucket, and _sum/_count samples with +Inf agreeing
// with _count. It returns the number of sample lines.
func ValidatePrometheusText(page []byte) (int, error) {
	lines := strings.Split(string(page), "\n")
	samples := 0
	typed := map[string]string{}
	helped := map[string]bool{}
	// histogram bookkeeping, keyed by series signature (labels minus le)
	histSeries := map[string]bool{}
	lastBucket := map[string]float64{}
	counts := map[string]float64{}
	sums := map[string]bool{}
	infs := map[string]float64{}
	for ln, line := range lines {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return 0, fmt.Errorf("line %d: malformed HELP", ln+1)
			}
			helped[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return 0, fmt.Errorf("line %d: malformed TYPE", ln+1)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return 0, fmt.Errorf("line %d: unknown type %q", ln+1, typ)
			}
			if !helped[name] {
				return 0, fmt.Errorf("line %d: TYPE %s before HELP", ln+1, name)
			}
			typed[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample line: name[{labels}] value
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			return 0, fmt.Errorf("line %d: no value separator", ln+1)
		}
		nameAndLabels, valStr := line[:idx], line[idx+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return 0, fmt.Errorf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := nameAndLabels
		labels := ""
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			if !strings.HasSuffix(nameAndLabels, "}") {
				return 0, fmt.Errorf("line %d: unterminated label set", ln+1)
			}
			name = nameAndLabels[:i]
			labels = nameAndLabels[i+1 : len(nameAndLabels)-1]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) {
				trimmed := strings.TrimSuffix(name, suf)
				if typed[trimmed] == "histogram" || typed[trimmed] == "summary" {
					base = trimmed
				}
				break
			}
		}
		if typed[base] == "" {
			return 0, fmt.Errorf("line %d: sample for untyped family %q", ln+1, base)
		}
		if typed[base] == "histogram" {
			sig := stripLabel(labels, "le")
			key := base + "{" + sig + "}"
			histSeries[key] = true
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if val+1e-9 < lastBucket[key] {
					return 0, fmt.Errorf("line %d: non-cumulative histogram bucket for %s", ln+1, key)
				}
				lastBucket[key] = val
				if strings.Contains(labels, `le="+Inf"`) {
					infs[key] = val
				}
			case strings.HasSuffix(name, "_count"):
				counts[key] = val
			case strings.HasSuffix(name, "_sum"):
				sums[key] = true
			}
		}
		samples++
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples in page")
	}
	for key := range histSeries {
		inf, ok := infs[key]
		if !ok {
			return 0, fmt.Errorf("histogram %s has no +Inf bucket", key)
		}
		c, ok := counts[key]
		if !ok {
			return 0, fmt.Errorf("histogram %s has no _count sample", key)
		}
		if !sums[key] {
			return 0, fmt.Errorf("histogram %s has no _sum sample", key)
		}
		if inf != c {
			return 0, fmt.Errorf("histogram %s: +Inf bucket %v != count %v", key, inf, c)
		}
	}
	return samples, nil
}

// stripLabel removes one key="..." pair from a comma-joined label string.
func stripLabel(labels, key string) string {
	if labels == "" {
		return ""
	}
	parts := strings.Split(labels, ",")
	out := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, key+"=") {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

// ValidateMetricsJSON checks schema and basic shape of a JSON metrics
// snapshot, returning the family count.
func ValidateMetricsJSON(doc []byte) (int, error) {
	var snap jsonSnapshot
	if err := json.Unmarshal(doc, &snap); err != nil {
		return 0, fmt.Errorf("metrics json: %v", err)
	}
	if snap.Schema != MetricsJSONSchema {
		return 0, fmt.Errorf("metrics json: schema %q, want %q", snap.Schema, MetricsJSONSchema)
	}
	if len(snap.Families) == 0 {
		return 0, fmt.Errorf("metrics json: no families")
	}
	for _, f := range snap.Families {
		if f.Name == "" {
			return 0, fmt.Errorf("metrics json: family with empty name")
		}
		for _, s := range f.Series {
			if s.Value == nil && s.Hist == nil {
				return 0, fmt.Errorf("metrics json: family %s has series with neither value nor histogram", f.Name)
			}
			if s.Hist != nil && len(s.Hist.Cumulative) != len(s.Hist.Bounds)+1 {
				return 0, fmt.Errorf("metrics json: family %s histogram bucket/bound mismatch", f.Name)
			}
		}
	}
	return len(snap.Families), nil
}

// componentsDoc is the /components wire shape (fractal.View roots).
type componentsDoc struct {
	Schema string            `json:"schema"`
	Time   float64           `json:"time"`
	Roots  []json.RawMessage `json:"roots"`
}

// ValidateComponentsJSON checks the /components document: schema string,
// at least one root, every component object carrying name and state.
// It returns the number of component nodes seen.
func ValidateComponentsJSON(doc []byte) (int, error) {
	var d componentsDoc
	if err := json.Unmarshal(doc, &d); err != nil {
		return 0, fmt.Errorf("components json: %v", err)
	}
	if d.Schema != ComponentsJSONSchema {
		return 0, fmt.Errorf("components json: schema %q, want %q", d.Schema, ComponentsJSONSchema)
	}
	if len(d.Roots) == 0 {
		return 0, fmt.Errorf("components json: no roots")
	}
	total := 0
	var walk func(raw json.RawMessage) error
	walk = func(raw json.RawMessage) error {
		var node struct {
			Name     string            `json:"name"`
			State    string            `json:"state"`
			Children []json.RawMessage `json:"children"`
		}
		if err := json.Unmarshal(raw, &node); err != nil {
			return fmt.Errorf("components json: bad node: %v", err)
		}
		if node.Name == "" {
			return fmt.Errorf("components json: node with empty name")
		}
		if node.State == "" {
			return fmt.Errorf("components json: node %q with empty state", node.Name)
		}
		total++
		for _, c := range node.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range d.Roots {
		if err := walk(r); err != nil {
			return 0, err
		}
	}
	return total, nil
}
