package fluid

import (
	"math"
	"testing"

	"jade/internal/cluster"
	"jade/internal/sim"
)

func nodes(eng *sim.Engine, n int, capacity float64) []*cluster.Node {
	out := make([]*cluster.Node, n)
	for i := range out {
		out[i] = cluster.NewNode(eng, "n", cluster.Config{CPUCapacity: capacity, MemoryMB: 1024})
	}
	return out
}

// station builds a simple load-balanced station: per-request demand d
// split across k members, full d in the latency path.
func station(name string, d float64, members []*cluster.Node) *Station {
	return &Station{
		Name:    name,
		Demand:  func(k int) float64 { return d / float64(k) },
		Service: func(k int) float64 { return d },
		Members: func() []*cluster.Node { return members },
	}
}

func run(eng *sim.Engine, net *Network, seconds float64) {
	b := sim.NewTickBarrier(eng, 1.0, "fluid")
	b.Register("net", net.Tick)
	b.Start()
	eng.RunUntil(eng.Now() + seconds)
}

func TestSteadyStateUtilization(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := nodes(eng, 2, 1.0)
	st := station("app", 0.01, ns)
	// 1000 clients, think 7 s, demand 0.01 split over 2 nodes:
	// λ ≈ 1000/7 ≈ 142.9 req/s, ρ = λ·0.005/1.0 ≈ 0.714.
	net := NewNetwork(Config{
		ThinkTime:  7,
		Population: func(float64) float64 { return 1000 },
	}, st)
	run(eng, net, 60)
	wantRho := (1000.0 / (7 + st.Wait())) * 0.005
	if math.Abs(st.Rho()-wantRho) > 0.01 {
		t.Fatalf("rho = %v, want ≈ %v", st.Rho(), wantRho)
	}
	if st.Backlog() != 0 {
		t.Fatalf("backlog %v in underload", st.Backlog())
	}
	// Background load reaches the member nodes.
	for _, n := range ns {
		if math.Abs(n.BackgroundLoad()-st.Rho()) > 1e-9 {
			t.Fatalf("node bg %v, want station rho %v", n.BackgroundLoad(), st.Rho())
		}
	}
	// Latency is the PS-inflated service demand.
	wantWait := 0.01 / (1 - st.Rho())
	if math.Abs(st.Wait()-wantWait) > 1e-6 {
		t.Fatalf("wait = %v, want %v", st.Wait(), wantWait)
	}
}

func TestOverloadBuildsBacklogAndSelfLimits(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := nodes(eng, 1, 1.0)
	st := station("app", 0.05, ns)
	// 1000 clients at think 7 can offer ~143 req/s; capacity is 20/s.
	net := NewNetwork(Config{
		ThinkTime:  7,
		Population: func(float64) float64 { return 1000 },
	}, st)
	run(eng, net, 120)
	if st.Rho() < 0.99 {
		t.Fatalf("overloaded station rho %v, want ~1", st.Rho())
	}
	if st.Backlog() <= 0 {
		t.Fatalf("no backlog under overload")
	}
	// The closed loop throttles the offered rate toward μ = 20/s as the
	// response estimate grows.
	if net.Rate() > 25 {
		t.Fatalf("offered rate %v did not self-limit toward 20/s", net.Rate())
	}
	if net.Response() < 1 {
		t.Fatalf("response %v under deep overload, want seconds", net.Response())
	}
}

func TestBacklogDrainsAfterLoadDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := nodes(eng, 1, 1.0)
	st := station("app", 0.05, ns)
	pop := 1000.0
	net := NewNetwork(Config{
		ThinkTime:  7,
		Population: func(float64) float64 { return pop },
	}, st)
	run(eng, net, 60)
	if st.Backlog() <= 0 {
		t.Fatalf("no backlog built")
	}
	pop = 0
	run(eng, net, 120)
	if st.Backlog() != 0 {
		t.Fatalf("backlog %v did not drain after load dropped", st.Backlog())
	}
	if got := ns[0].BackgroundLoad(); got != 0 {
		t.Fatalf("idle node keeps bg load %v", got)
	}
}

func TestBroadcastWritesLimitScaleOut(t *testing.T) {
	eng := sim.NewEngine(1)
	read, write := 0.03, 0.01
	demand := func(k int) float64 { return read/float64(k) + write }
	for _, k := range []int{1, 2, 4} {
		eng2 := sim.NewEngine(1)
		ns := nodes(eng2, k, 1.0)
		st := &Station{
			Name:    "db",
			Demand:  demand,
			Service: func(int) float64 { return read + write },
			Members: func() []*cluster.Node { return ns },
		}
		net := NewNetwork(Config{
			ThinkTime:  7,
			Population: func(float64) float64 { return 10000 },
		}, st)
		const horizon = 600
		run(eng2, net, horizon)
		// Saturated tier: throughput approaches μ(k) = 1/(read/k + write),
		// which is capped at 1/write no matter how many replicas join.
		mu := 1 / demand(k)
		got := net.Completed() / horizon
		if math.Abs(got-mu)/mu > 0.1 {
			t.Fatalf("k=%d: throughput %v, want near μ=%v", k, got, mu)
		}
		if got > 1/write {
			t.Fatalf("k=%d: throughput %v exceeds broadcast ceiling %v", k, got, 1/write)
		}
	}
	_ = eng
}

func TestFailedMemberSheddsToSurvivors(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := nodes(eng, 2, 1.0)
	st := station("app", 0.01, ns)
	net := NewNetwork(Config{
		ThinkTime:  7,
		Population: func(float64) float64 { return 500 },
	}, st)
	run(eng, net, 30)
	rhoBoth := st.Rho()
	ns[1].Fail()
	run(eng, net, 30)
	if st.Rho() < 1.8*rhoBoth {
		t.Fatalf("rho after failure %v, want ~2x %v", st.Rho(), rhoBoth)
	}
	if got := ns[1].BackgroundLoad(); got != 0 {
		t.Fatalf("failed node carries bg %v", got)
	}
}

func TestNoMembersStallsFlow(t *testing.T) {
	eng := sim.NewEngine(1)
	st := &Station{
		Name:    "app",
		Demand:  func(int) float64 { return 0.01 },
		Service: func(int) float64 { return 0.01 },
		Members: func() []*cluster.Node { return nil },
	}
	net := NewNetwork(Config{
		ThinkTime:  7,
		Population: func(float64) float64 { return 100 },
	}, st)
	run(eng, net, 10)
	if net.Completed() != 0 {
		t.Fatalf("completed %v with no servers", net.Completed())
	}
	if st.Backlog() <= 0 {
		t.Fatalf("no backlog with no servers")
	}
}

func TestChainedStationsAndCompletion(t *testing.T) {
	eng := sim.NewEngine(1)
	front := station("front", 0.0002, nodes(eng, 1, 1.0))
	app := station("app", 0.01, nodes(eng, 2, 1.0))
	db := station("db", 0.02, nodes(eng, 2, 1.0))
	net := NewNetwork(Config{
		ThinkTime:  7,
		Population: func(float64) float64 { return 500 },
	}, front, app, db)
	run(eng, net, 100)
	// Underloaded chain: completions track λ·t with R ≈ Σ waits.
	wantRate := 500 / (7 + net.Response())
	if math.Abs(net.Rate()-wantRate) > 0.5 {
		t.Fatalf("rate %v, want %v", net.Rate(), wantRate)
	}
	if net.Completed() < 0.9*wantRate*100 || net.Completed() > 1.1*wantRate*100 {
		t.Fatalf("completed %v over 100 s at %v/s", net.Completed(), wantRate)
	}
	rep := net.Report()
	if len(rep.Stations) != 3 || rep.Ticks != 100 {
		t.Fatalf("report %+v", rep)
	}
}

func TestDeterministicReplay(t *testing.T) {
	runOnce := func() Report {
		eng := sim.NewEngine(7)
		app := station("app", 0.013, nodes(eng, 2, 1.0))
		db := station("db", 0.03, nodes(eng, 2, 1.0))
		net := NewNetwork(Config{
			ThinkTime: 7,
			Population: func(now float64) float64 {
				return 100 + 10*now // ramp
			},
			RecordSeries: true,
		}, app, db)
		run(eng, net, 200)
		return net.Report()
	}
	a, b := runOnce(), runOnce()
	if len(a.Stations) != len(b.Stations) {
		t.Fatalf("station count mismatch")
	}
	if a.Completed != b.Completed || a.PeakRate != b.PeakRate || a.PeakResponseSec != b.PeakResponseSec {
		t.Fatalf("replay mismatch: %+v vs %+v", a, b)
	}
	for i := range a.Stations {
		if a.Stations[i] != b.Stations[i] {
			t.Fatalf("station %d mismatch: %+v vs %+v", i, a.Stations[i], b.Stations[i])
		}
	}
}
