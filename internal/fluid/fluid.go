// Package fluid implements the hybrid fluid-flow workload model: instead
// of simulating every request as a discrete event chain, tiers exchange
// request *rates* and queue-theoretic latency/CPU estimates on a coarse
// virtual-time tick (sim.TickBarrier), while discrete events are reserved
// for management actions, faults, network messages and a sampled request
// stream.
//
// The model is a closed queueing network solved by fixed-point iteration
// across ticks, in the style of dcsim's rate-exchange tiers:
//
//   - The client population N thinks for Z seconds between requests, so
//     the offered rate is λ = N / (Z + R) with R the network's current
//     end-to-end response estimate — an overloaded system throttles its
//     own offered load exactly like the closed-loop discrete emulator.
//   - Each tier is a Station: k live member nodes served by processor
//     sharing. A request puts Demand(k) CPU-seconds on each member on
//     average (load-balanced work contributes D/k, RAIDb-1 broadcast
//     writes contribute D to every member), so member utilization is
//     ρ = λ·Demand(k)/C and the tier saturates at μ = C/Demand(k).
//   - Excess arrivals accumulate in a tier backlog drained at capacity;
//     the per-request latency estimate is the M/M/1-PS mean response
//     S/(1-ρ) plus the backlog drain time.
//   - Each tick every member node receives the tier's ρ as background
//     CPU load (cluster.Node.SetBackgroundLoad), which feeds the same
//     utilization meters the paper's CPU sensors read — the sizing
//     control loops observe fluid load exactly as they observe discrete
//     load, and sampled discrete requests are slowed by the mean-field
//     contention of the flow they ride alongside.
//
// Everything is pure float arithmetic driven by barrier ticks in
// deterministic order, so fluid runs replay byte-identically per seed.
package fluid

import (
	"math"

	"jade/internal/cluster"
	"jade/internal/metrics"
)

// rhoSafe caps the utilization used in the 1/(1-ρ) processor-sharing
// latency term; at and beyond saturation the backlog term takes over.
const rhoSafe = 0.98

// ServiceModel is one tier component's contribution to the fluid
// network: the parameters a component exposes (see the FluidModel
// methods on the L4 switch, Apache, PLB, Tomcat, C-JDBC and MySQL
// models) so scenario wiring can assemble Stations without reaching into
// component internals.
type ServiceModel struct {
	// Name identifies the component (diagnostics only).
	Name string
	// Node is the machine the component runs on.
	Node *cluster.Node
	// CostPerUnit is the component's own CPU demand per unit of work —
	// per forwarded request for the L4 switch and PLB, per proxied query
	// for C-JDBC. Zero for components whose demand is carried by the
	// request itself (Apache, Tomcat, MySQL): those costs are
	// mix-calibrated via rubis.FluidDemand.
	CostPerUnit float64
	// Up reports whether the component is serving.
	Up func() bool
}

// Station is one tier of the fluid network.
type Station struct {
	// Name identifies the tier in reports ("plb", "app", ...).
	Name string
	// Demand returns the mean CPU-seconds one request puts on EACH of k
	// live members: load-balanced work contributes D/k, broadcast work
	// contributes D per member.
	Demand func(k int) float64
	// Service returns the sequential service demand one request
	// experiences on its path through the tier (latency numerator): the
	// full per-request cost, independent of k for balanced work.
	Service func(k int) float64
	// Members returns the live member nodes in deterministic order.
	Members func() []*cluster.Node

	// ThrashThreshold / ThrashFactor mirror the member nodes' thrashing
	// regime (cluster.Config) at tier level: when the per-member backlog
	// exceeds the threshold, the tier's service rate degrades by
	// 1/(1+factor·excess), reproducing the throughput collapse the
	// discrete engine shows when node job queues grow past the knee.
	// Zero threshold disables thrash modeling.
	ThrashThreshold int
	ThrashFactor    float64

	backlog float64 // requests queued beyond capacity
	rho     float64 // member utilization last tick
	wait    float64 // per-request latency estimate last tick (s)
	svc     float64 // sequential (uninflated) service estimate last tick (s)

	peakRho     float64
	peakBacklog float64
	peakWait    float64

	// RhoSeries, WaitSeries and BacklogSeries, when enabled by the
	// network, record one (t, value) point per tick.
	RhoSeries     *metrics.Series
	WaitSeries    *metrics.Series
	BacklogSeries *metrics.Series
}

// Rho returns the station's member utilization from the last tick.
func (s *Station) Rho() float64 { return s.rho }

// Backlog returns the queued requests beyond capacity.
func (s *Station) Backlog() float64 { return s.backlog }

// Wait returns the last per-request latency estimate in seconds.
func (s *Station) Wait() float64 { return s.wait }

// Svc returns the last sequential service-demand estimate in seconds —
// the ideal (uninflated) part of Wait; the rest is queueing.
func (s *Station) Svc() float64 { return s.svc }

// PeakRho returns the highest member utilization seen so far.
func (s *Station) PeakRho() float64 { return s.peakRho }

// PeakBacklog returns the largest backlog seen so far.
func (s *Station) PeakBacklog() float64 { return s.peakBacklog }

// PeakWait returns the worst per-request latency estimate seen so far.
func (s *Station) PeakWait() float64 { return s.peakWait }

// Config parameterizes a Network.
type Config struct {
	// ThinkTime is the mean client think time Z in seconds.
	ThinkTime float64
	// Population returns the fluid client count at virtual time now
	// (total population minus the sampled discrete clients).
	Population func(now float64) float64
	// RecordSeries, when true, keeps per-tick ρ series on every station
	// (used by artifacts and the determinism sweep).
	RecordSeries bool
}

// Network is the closed fluid queueing network over an ordered chain of
// stations. Register its Tick on a sim.TickBarrier.
type Network struct {
	cfg      Config
	stations []*Station

	resp      float64 // end-to-end response estimate R (s)
	rate      float64 // offered rate λ last tick (req/s)
	completed float64 // integral of the final station's departure rate

	peakRate       float64
	peakPopulation float64
	peakResp       float64
	ticks          uint64

	// background bookkeeping: nodes loaded on the previous tick, in
	// deterministic order, so members leaving a tier get their
	// background load cleared.
	prevNodes []*cluster.Node
}

// NewNetwork creates a fluid network over the given station chain
// (request flow order). ThinkTime must be positive.
func NewNetwork(cfg Config, stations ...*Station) *Network {
	if cfg.ThinkTime <= 0 {
		panic("fluid: non-positive think time")
	}
	if cfg.Population == nil {
		panic("fluid: nil population function")
	}
	n := &Network{cfg: cfg, stations: stations}
	if cfg.RecordSeries {
		for _, s := range stations {
			s.RhoSeries = metrics.NewSeries("fluid:rho:" + s.Name)
			s.WaitSeries = metrics.NewSeries("fluid:wait:" + s.Name)
			s.BacklogSeries = metrics.NewSeries("fluid:backlog:" + s.Name)
		}
	}
	return n
}

// Stations returns the station chain.
func (n *Network) Stations() []*Station { return n.stations }

// Rate returns the offered request rate λ from the last tick.
func (n *Network) Rate() float64 { return n.rate }

// Response returns the end-to-end response time estimate in seconds.
func (n *Network) Response() float64 { return n.resp }

// Completed returns the cumulative completed fluid requests.
func (n *Network) Completed() float64 { return n.completed }

// Tick advances the fluid model by dt seconds. Register on a
// sim.TickBarrier; now is the barrier's virtual time.
func (n *Network) Tick(now, dt float64) {
	if dt <= 0 {
		return
	}
	pop := n.cfg.Population(now)
	if pop < 0 {
		pop = 0
	}
	if pop > n.peakPopulation {
		n.peakPopulation = pop
	}
	// Closed-loop offered rate from the previous response estimate.
	lambda := pop / (n.cfg.ThinkTime + n.resp)
	n.rate = lambda
	if lambda > n.peakRate {
		n.peakRate = lambda
	}

	var resp float64
	var nodes []*cluster.Node
	loads := make(map[*cluster.Node]float64, len(n.prevNodes))
	flow := lambda
	for _, s := range n.stations {
		flow = s.step(now, dt, flow, &nodes, loads)
		resp += s.wait
	}
	n.completed += flow * dt
	n.resp = resp
	if resp > n.peakResp {
		n.peakResp = resp
	}
	n.ticks++

	// Apply background loads in deterministic (station, member) order;
	// clear nodes that dropped out since the previous tick.
	for _, node := range n.prevNodes {
		if _, ok := loads[node]; !ok {
			node.SetBackgroundLoad(0)
		}
	}
	for _, node := range nodes {
		node.SetBackgroundLoad(loads[node])
	}
	n.prevNodes = nodes
}

// step advances one station: it serves what capacity allows out of the
// incoming flow plus the backlog, updates ρ/latency/backlog, accumulates
// the members' background load, and returns the departure rate.
func (s *Station) step(now, dt, in float64, nodes *[]*cluster.Node, loads map[*cluster.Node]float64) float64 {
	members := s.Members()
	live := members[:0:0]
	var capSum float64
	for _, m := range members {
		if m.Failed() {
			continue
		}
		live = append(live, m)
		capSum += m.Config().CPUCapacity
	}
	k := len(live)
	if k == 0 {
		// Nothing serving: the flow stalls into the backlog.
		s.backlog += in * dt
		s.rho = 0
		s.svc = 0
		s.wait = s.backlog // pessimistic: no drain rate to divide by
		if s.backlog > s.peakBacklog {
			s.peakBacklog = s.backlog
		}
		if s.wait > s.peakWait {
			s.peakWait = s.wait
		}
		s.record(now)
		return 0
	}
	demand := s.Demand(k)
	meanCap := capSum / float64(k)
	// Tier service rate: member utilization hits 1 when λ·Demand = C.
	mu := math.Inf(1)
	if demand > 0 {
		mu = meanCap / demand
		if s.ThrashThreshold > 0 {
			if over := s.backlog/float64(k) - float64(s.ThrashThreshold); over > 0 {
				mu /= 1 + s.ThrashFactor*over
			}
		}
	}
	offered := in + s.backlog/dt
	served := offered
	if served > mu {
		served = mu
	}
	s.backlog += (in - served) * dt
	if s.backlog < 1e-9 {
		s.backlog = 0
	}
	rho := 0.0
	if mu > 0 && !math.IsInf(mu, 1) {
		rho = served / mu
	}
	s.rho = rho
	if rho > s.peakRho {
		s.peakRho = rho
	}
	if s.backlog > s.peakBacklog {
		s.peakBacklog = s.backlog
	}
	// Per-request latency: PS inflation of the sequential service demand
	// plus time to drain ahead-of-us backlog.
	svc := s.Service(k)
	wait := svc / (1 - math.Min(rho, rhoSafe))
	if s.backlog > 0 && mu > 0 && !math.IsInf(mu, 1) {
		wait += s.backlog / mu
	}
	s.svc = svc
	s.wait = wait
	if wait > s.peakWait {
		s.peakWait = wait
	}
	s.record(now)
	// Background CPU load on each member. Accumulate: distinct stations
	// may share a node (e.g. a co-located proxy).
	for _, m := range live {
		if _, ok := loads[m]; !ok {
			*nodes = append(*nodes, m)
		}
		loads[m] += rho
	}
	return served
}

// record appends the per-tick series points when recording is enabled.
func (s *Station) record(now float64) {
	if s.RhoSeries != nil {
		s.RhoSeries.Add(now, s.rho)
	}
	if s.WaitSeries != nil {
		s.WaitSeries.Add(now, s.wait)
	}
	if s.BacklogSeries != nil {
		s.BacklogSeries.Add(now, s.backlog)
	}
}

// StationReport is one tier's aggregate outcome for artifacts.
type StationReport struct {
	Name         string  `json:"name"`
	PeakRho      float64 `json:"peak_rho"`
	PeakBacklog  float64 `json:"peak_backlog"`
	FinalBacklog float64 `json:"final_backlog"`
	FinalRho     float64 `json:"final_rho"`
	FinalWaitSec float64 `json:"final_wait_sec"`
	FinalSvcSec  float64 `json:"final_svc_sec"`
	PeakWaitSec  float64 `json:"peak_wait_sec"`
}

// Report is the fluid network's run summary, rendered into experiment
// artifacts (deterministic: same seed, same bytes).
type Report struct {
	Ticks           uint64          `json:"ticks"`
	Completed       float64         `json:"completed"`
	PeakPopulation  float64         `json:"peak_population"`
	PeakRate        float64         `json:"peak_rate_per_sec"`
	PeakResponseSec float64         `json:"peak_response_sec"`
	Stations        []StationReport `json:"stations"`
}

// Report summarizes the run so far.
func (n *Network) Report() Report {
	r := Report{
		Ticks:           n.ticks,
		Completed:       n.completed,
		PeakPopulation:  n.peakPopulation,
		PeakRate:        n.peakRate,
		PeakResponseSec: n.peakResp,
	}
	for _, s := range n.stations {
		r.Stations = append(r.Stations, StationReport{
			Name:         s.Name,
			PeakRho:      s.peakRho,
			PeakBacklog:  s.peakBacklog,
			FinalBacklog: s.backlog,
			FinalRho:     s.rho,
			FinalWaitSec: s.wait,
			FinalSvcSec:  s.svc,
			PeakWaitSec:  s.peakWait,
		})
	}
	return r
}
