package netsim

import (
	"math"
	"sort"

	"jade/internal/cluster"
	"jade/internal/obs"
	"jade/internal/sim"
	"jade/internal/trace"
)

// HeartbeatConfig tunes the suspicion detector. Zero fields take the
// documented defaults, so the zero value is a usable detector.
type HeartbeatConfig struct {
	// PeriodSeconds between heartbeats from each monitored replica
	// (default 1 s, the self-recovery loop period).
	PeriodSeconds float64 `json:"period_seconds,omitempty"`
	// Window is how many of the most recent heartbeat interarrivals feed
	// the mean the suspicion score is normalized by (default 8).
	Window int `json:"window,omitempty"`
	// PhiThreshold is the suspicion level at which a replica is declared
	// suspect (default 3: roughly threshold*mean*ln10 ≈ 6.9 s of silence
	// at a 1 s period).
	PhiThreshold float64 `json:"phi_threshold,omitempty"`
}

func (c HeartbeatConfig) withDefaults() HeartbeatConfig {
	if c.PeriodSeconds <= 0 {
		c.PeriodSeconds = 1
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.PhiThreshold <= 0 {
		c.PhiThreshold = 3
	}
	return c
}

// DetectorStats summarizes the detector's behavior over a run, including
// its mistakes — the quantity the netsim experiments compare.
type DetectorStats struct {
	// Suspicions counts suspect transitions (true and false).
	Suspicions uint64 `json:"suspicions"`
	// TruePositives are suspicions of replicas whose node had really
	// failed; FalsePositives are suspicions of live replicas (heartbeats
	// lost or partitioned away).
	TruePositives  uint64 `json:"true_positives"`
	FalsePositives uint64 `json:"false_positives"`
	// Heals counts suspicions that decayed (heartbeats resumed before any
	// repair acted on the suspicion).
	Heals uint64 `json:"heals"`
	// DetectionLatencySum accumulates, over true positives, the delay
	// between the node failure and the suspect transition.
	DetectionLatencySum float64 `json:"detection_latency_sum"`
}

// MeanDetectionLatency is DetectionLatencySum averaged over true
// positives (0 when there were none).
func (s DetectorStats) MeanDetectionLatency() float64 {
	if s.TruePositives == 0 {
		return 0
	}
	return s.DetectionLatencySum / float64(s.TruePositives)
}

// monitored is one replica under watch.
type monitored struct {
	node      *cluster.Node
	hb        *sim.Ticker
	last      float64   // arrival time of the newest heartbeat
	inter     []float64 // ring of recent interarrivals
	interN    int
	suspected bool
	failedAt  float64 // first time the node was observed failed (-1: alive)
	phiGauge  *obs.Gauge
	susGauge  *obs.Gauge
}

// Detector is a φ-accrual-style heartbeat failure detector: each
// monitored replica's node emits periodic heartbeats over the fabric to
// the management endpoint; the suspicion level φ grows with the silence
// since the last arrival, normalized by the observed interarrival mean,
// and the replica is suspect while φ ≥ the threshold. Unlike the oracle
// it replaces, it can be late (detection latency) and wrong (false
// positives under loss or partition) — and both are measured.
type Detector struct {
	eng     *sim.Engine
	fab     *Fabric
	cfg     HeartbeatConfig
	mon     map[string]*monitored
	stats   DetectorStats
	tr      *trace.Tracer
	reg     *obs.Registry
	eval    *sim.Ticker
	history []SuspicionEvent
	onTrans []func(now float64, target string, suspected, falsePositive bool)
}

// SuspicionEvent is one suspect/clear transition, kept in emission order
// so the alerting plane can splice suspicion history into incidents.
type SuspicionEvent struct {
	T             float64 `json:"t"`
	Target        string  `json:"target"`
	Suspected     bool    `json:"suspected"`
	FalsePositive bool    `json:"false_positive,omitempty"`
}

// OnTransition registers a hook fired on every suspect/clear transition,
// on the simulation goroutine, after the detector's own bookkeeping.
func (d *Detector) OnTransition(fn func(now float64, target string, suspected, falsePositive bool)) {
	d.onTrans = append(d.onTrans, fn)
}

// History returns every suspicion transition so far (live slice; do not
// mutate).
func (d *Detector) History() []SuspicionEvent { return d.history }

// NewDetector builds a detector fed by heartbeats over fab.
func NewDetector(eng *sim.Engine, fab *Fabric, cfg HeartbeatConfig) *Detector {
	return &Detector{eng: eng, fab: fab, cfg: cfg.withDefaults(), mon: make(map[string]*monitored)}
}

// Instrument attaches the tracer and metrics registry (both optional).
func (d *Detector) Instrument(tr *trace.Tracer, reg *obs.Registry) {
	d.tr = tr
	d.reg = reg
}

// Stats returns a copy of the cumulative detector counters.
func (d *Detector) Stats() DetectorStats { return d.stats }

// Config returns the effective (defaulted) configuration.
func (d *Detector) Config() HeartbeatConfig { return d.cfg }

// Monitor puts the named replica under watch: its node starts emitting
// heartbeats every period, and Suspected becomes meaningful for it.
// Calling Monitor again for a name already watched is a no-op, so the
// recovery manager may call it on every sensor pass.
func (d *Detector) Monitor(name string, node *cluster.Node) {
	if node == nil {
		return
	}
	if _, ok := d.mon[name]; ok {
		return
	}
	m := &monitored{node: node, last: d.eng.Now(), failedAt: -1}
	if d.reg != nil {
		m.phiGauge = d.reg.Gauge("jade_detector_phi", "Suspicion level of a monitored replica.", obs.L("target", name))
		m.susGauge = d.reg.Gauge("jade_detector_suspected", "1 while the replica is suspect.", obs.L("target", name))
	}
	d.mon[name] = m
	// The heartbeat daemon runs on the replica's node: a failed node goes
	// silent, a partitioned one keeps sending into the void.
	m.hb = d.eng.Every(d.cfg.PeriodSeconds, name+":heartbeat", func(float64) {
		if m.node.Failed() {
			return
		}
		d.fab.Send(m.node.Name(), ManagementEndpoint, "heartbeat", func() {
			d.observe(name, m)
		})
	})
	if d.eval == nil {
		d.eval = d.eng.Every(d.cfg.PeriodSeconds, "detector:eval", func(float64) {
			d.evaluateAll()
		})
	}
}

// Forget stops watching the named replica (after its repair completed or
// it was deliberately removed).
func (d *Detector) Forget(name string) {
	m, ok := d.mon[name]
	if !ok {
		return
	}
	m.hb.Stop()
	m.phiGauge.Set(0)
	m.susGauge.Set(0)
	delete(d.mon, name)
	if len(d.mon) == 0 && d.eval != nil {
		d.eval.Stop()
		d.eval = nil
	}
}

// observe records a heartbeat arrival.
func (d *Detector) observe(name string, m *monitored) {
	if d.mon[name] != m {
		return // forgotten while the heartbeat was in flight
	}
	now := d.eng.Now()
	if inter := now - m.last; inter > 0 {
		if len(m.inter) < d.cfg.Window {
			m.inter = append(m.inter, inter)
		} else {
			m.inter[m.interN%d.cfg.Window] = inter
		}
		m.interN++
	}
	m.last = now
}

// mean is the windowed interarrival mean, floored at the configured
// period so a burst of quick arrivals cannot make the detector trigger
// on sub-period silences.
func (m *monitored) mean(period float64) float64 {
	if len(m.inter) == 0 {
		return period
	}
	sum := 0.0
	for _, v := range m.inter {
		sum += v
	}
	mean := sum / float64(len(m.inter))
	if mean < period {
		mean = period
	}
	return mean
}

// Phi returns the current suspicion level of the named replica (0 when
// not monitored). Under the exponential interarrival assumption,
// φ(t) = -log10 P(heartbeat still to come) = silence / (mean·ln 10).
func (d *Detector) Phi(name string) float64 {
	m, ok := d.mon[name]
	if !ok {
		return 0
	}
	silence := d.eng.Now() - m.last
	if silence <= 0 {
		return 0
	}
	return silence / (m.mean(d.cfg.PeriodSeconds) * math.Ln10)
}

// Suspected reports whether the named replica is currently suspect. The
// transition bookkeeping (mistake accounting, trace events, gauges) runs
// here and on the detector's own evaluation ticker, so reading the state
// is always fresh.
func (d *Detector) Suspected(name string) bool {
	m, ok := d.mon[name]
	if !ok {
		return false
	}
	d.evaluate(name, m)
	return m.suspected
}

func (d *Detector) evaluateAll() {
	// Map iteration order is nondeterministic, but evaluate's effects per
	// replica are order-independent: transitions touch only that
	// replica's state and monotonic counters, and trace events would leak
	// ordering — so evaluate in sorted name order.
	names := make([]string, 0, len(d.mon))
	for name := range d.mon {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d.evaluate(name, d.mon[name])
	}
}

func (d *Detector) evaluate(name string, m *monitored) {
	now := d.eng.Now()
	if m.node.Failed() {
		if m.failedAt < 0 {
			m.failedAt = now
		}
	} else {
		m.failedAt = -1
	}
	phi := d.Phi(name)
	m.phiGauge.Set(phi)
	sus := phi >= d.cfg.PhiThreshold
	if sus == m.suspected {
		return
	}
	m.suspected = sus
	m.susGauge.SetBool(sus)
	if sus {
		d.stats.Suspicions++
		falsePositive := m.failedAt < 0
		if falsePositive {
			d.stats.FalsePositives++
		} else {
			d.stats.TruePositives++
			d.stats.DetectionLatencySum += now - m.failedAt
		}
		d.tr.Emit("detector", "detector.suspect",
			trace.F("target", name), trace.Ff("phi", phi),
			trace.F("false_positive", boolStr(falsePositive)))
		d.transition(now, name, true, falsePositive)
		return
	}
	if !m.node.Failed() {
		d.stats.Heals++
	}
	d.tr.Emit("detector", "detector.clear", trace.F("target", name), trace.Ff("phi", phi))
	d.transition(now, name, false, false)
}

func (d *Detector) transition(now float64, name string, suspected, falsePositive bool) {
	d.history = append(d.history, SuspicionEvent{T: now, Target: name, Suspected: suspected, FalsePositive: falsePositive})
	for _, fn := range d.onTrans {
		fn(now, name, suspected, falsePositive)
	}
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
