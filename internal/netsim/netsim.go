// Package netsim is a deterministic simulated network layered on the
// virtual clock of internal/sim. The paper's testbed runs every
// inter-tier call and heartbeat over a real 100 Mbps LAN; netsim gives
// the reproduction the same property in simulation: messages take time,
// jitter, get lost, and can be cut off by injectable partitions, so the
// autonomic managers above are exercised against suspicion and timeout
// dynamics instead of a perfect oracle.
//
// The Fabric carries two kinds of traffic:
//
//   - Send: one-way datagrams (heartbeats). Lost or partitioned
//     messages silently disappear.
//   - Call: tier RPCs with a per-tier budget of timeout, retries and
//     backoff. The request and the response each traverse the network;
//     when every attempt times out the call is abandoned with
//     ErrRPCTimeout instead of hanging forever.
//
// Endpoints are plain node names ("node3"); the pseudo-endpoints
// "client" and "jade" stand for the load injectors and the management
// node. All randomness comes from the Fabric's own seeded source, so a
// run is byte-identical given the same seed even with loss enabled.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"jade/internal/obs"
	"jade/internal/sim"
	"jade/internal/trace"
)

// ErrRPCTimeout is the final outcome of a Call whose every attempt timed
// out; callers account it as an error instead of hanging.
var ErrRPCTimeout = errors.New("netsim: rpc timed out")

// Well-known pseudo-endpoints.
const (
	// ClientEndpoint is the network name of the load injectors.
	ClientEndpoint = "client"
	// ManagementEndpoint is the network name of the management node that
	// hosts the failure detector (heartbeat sink).
	ManagementEndpoint = "jade"
)

// Link is the quality of one directed link (or of the whole fabric when
// used as the default): zero values fall back to a LAN-like default when
// the fabric is enabled.
type Link struct {
	// LatencyMS is the one-way delivery latency in milliseconds.
	LatencyMS float64 `json:"latency_ms,omitempty"`
	// JitterMS adds a uniform [0, JitterMS) milliseconds to each message.
	JitterMS float64 `json:"jitter_ms,omitempty"`
	// Loss is the probability in [0,1) that a message disappears.
	Loss float64 `json:"loss,omitempty"`
}

// RPCBudget bounds one tier's RPC attempts.
type RPCBudget struct {
	// TimeoutSeconds is the per-attempt patience (default 30 s).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Attempts is the total number of tries (default 3).
	Attempts int `json:"attempts,omitempty"`
	// BackoffSeconds is the pause before the first retry, doubling each
	// further retry (default 2 s).
	BackoffSeconds float64 `json:"backoff_seconds,omitempty"`
}

// Config configures the simulated network. The zero value is a disabled
// fabric (calls stay direct and instantaneous, the pre-netsim behavior).
type Config struct {
	// Enabled turns the fabric on.
	Enabled bool `json:"enabled,omitempty"`
	// Default is the link quality used when no per-link rule matches.
	Default Link `json:"default,omitempty"`
	// Links overrides link quality per directed pair, keyed "from->to".
	Links map[string]Link `json:"links,omitempty"`
	// RPC holds per-tier budgets keyed by tier class ("front", "web",
	// "app", "sql"); missing tiers use the budget defaults.
	RPC map[string]RPCBudget `json:"rpc,omitempty"`
	// Heartbeat configures the suspicion detector fed by this fabric.
	Heartbeat HeartbeatConfig `json:"heartbeat,omitempty"`
	// Seed offsets the fabric's private random source so network noise
	// can be varied independently of the workload (default 0: derived
	// from the scenario seed alone).
	Seed int64 `json:"seed,omitempty"`
}

// Stats are the fabric's cumulative message counters.
type Stats struct {
	Messages         uint64 `json:"messages"`
	Delivered        uint64 `json:"delivered"`
	DroppedLoss      uint64 `json:"dropped_loss"`
	DroppedPartition uint64 `json:"dropped_partition"`
	Retransmits      uint64 `json:"retransmits"`
	RPCs             uint64 `json:"rpcs"`
	Abandoned        uint64 `json:"abandoned"`
	Partitions       uint64 `json:"partitions"`
}

// partition is one active two-sided cut: messages between a member of a
// and a member of b are dropped. An empty b means "everyone else".
type partition struct {
	id   int
	a, b map[string]bool
}

func (p *partition) blocks(from, to string) bool {
	if len(p.b) == 0 {
		return p.a[from] != p.a[to]
	}
	return (p.a[from] && p.b[to]) || (p.a[to] && p.b[from])
}

// Fabric is the simulated network. A nil *Fabric is valid and inert:
// Send delivers immediately and Call runs the attempt directly, so call
// sites need no guards.
type Fabric struct {
	eng   *sim.Engine
	cfg   Config
	rng   *rand.Rand
	stats Stats

	parts  []*partition
	nextID int

	tr *trace.Tracer

	mMessages    *obs.Counter
	mDelivered   *obs.Counter
	mDropLoss    *obs.Counter
	mDropPart    *obs.Counter
	mRetransmits *obs.Counter
	mAbandoned   *obs.Counter
	gPartitions  *obs.Gauge
}

// New builds a fabric over the engine. seed is mixed with cfg.Seed so the
// fabric draws from its own stream, decoupled from workload randomness.
func New(eng *sim.Engine, cfg Config, seed int64) *Fabric {
	return &Fabric{
		eng: eng,
		cfg: cfg,
		rng: rand.New(rand.NewSource(seed ^ cfg.Seed ^ 0x6e657473696d)), // "netsim"
	}
}

// Instrument attaches the tracer and registers the fabric's metrics. Both
// arguments may be nil.
func (f *Fabric) Instrument(tr *trace.Tracer, reg *obs.Registry) {
	if f == nil {
		return
	}
	f.tr = tr
	if reg == nil {
		return
	}
	f.mMessages = reg.Counter("jade_net_messages_total", "Messages offered to the simulated network.")
	f.mDelivered = reg.Counter("jade_net_delivered_total", "Messages delivered by the simulated network.")
	f.mDropLoss = reg.Counter("jade_net_dropped_total", "Messages dropped by the simulated network.", obs.L("reason", "loss"))
	f.mDropPart = reg.Counter("jade_net_dropped_total", "Messages dropped by the simulated network.", obs.L("reason", "partition"))
	f.mRetransmits = reg.Counter("jade_net_retransmits_total", "RPC attempts retried after a timeout.")
	f.mAbandoned = reg.Counter("jade_net_rpc_abandoned_total", "RPCs abandoned after exhausting their retry budget.")
	f.gPartitions = reg.Gauge("jade_net_partitions_active", "Network partitions currently in force.")
}

// Enabled reports whether the fabric intercepts traffic (false for nil).
func (f *Fabric) Enabled() bool { return f != nil && f.cfg.Enabled }

// SetRPCBudgets replaces the per-tier RPC budgets live; RPCs issued
// after the call resolve their timeout/retry/backoff from the new map
// (missing tiers keep the budget defaults, as at construction).
// Simulation goroutine only — the runtime-configuration plane's RPC
// view drives it at an exact virtual tick.
func (f *Fabric) SetRPCBudgets(rpc map[string]RPCBudget) {
	if f == nil {
		return
	}
	f.cfg.RPC = rpc
}

// RPCBudgets returns the per-tier budget overrides currently in force
// (nil when every tier uses the defaults).
func (f *Fabric) RPCBudgets() map[string]RPCBudget {
	if f == nil {
		return nil
	}
	return f.cfg.RPC
}

// Stats returns a copy of the cumulative counters (zero for nil).
func (f *Fabric) Stats() Stats {
	if f == nil {
		return Stats{}
	}
	return f.stats
}

// link resolves the quality of the from->to link.
func (f *Fabric) link(from, to string) Link {
	if f.cfg.Links != nil {
		if l, ok := f.cfg.Links[from+"->"+to]; ok {
			return l
		}
	}
	l := f.cfg.Default
	if l.LatencyMS == 0 {
		l.LatencyMS = 0.3 // switched 100 Mbps LAN one-way latency
	}
	return l
}

// budget resolves the RPC budget of a tier class.
func (f *Fabric) budget(tier string) RPCBudget {
	var b RPCBudget
	if f.cfg.RPC != nil {
		b = f.cfg.RPC[tier]
	}
	if b.TimeoutSeconds <= 0 {
		b.TimeoutSeconds = 30
	}
	if b.Attempts <= 0 {
		b.Attempts = 3
	}
	if b.BackoffSeconds <= 0 {
		b.BackoffSeconds = 2
	}
	return b
}

// Partitioned reports whether an active partition separates from and to.
func (f *Fabric) Partitioned(from, to string) bool {
	if f == nil {
		return false
	}
	for _, p := range f.parts {
		if p.blocks(from, to) {
			return true
		}
	}
	return false
}

func toSet(names []string) map[string]bool {
	s := make(map[string]bool, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

// Partition installs a two-sided cut between the a-side and the b-side
// endpoints (b empty: a is cut off from everyone else) and returns an id
// for Heal. The cut is symmetric and takes effect immediately.
func (f *Fabric) Partition(a, b []string) int {
	f.nextID++
	p := &partition{id: f.nextID, a: toSet(a), b: toSet(b)}
	f.parts = append(f.parts, p)
	f.stats.Partitions++
	f.gPartitions.Set(float64(len(f.parts)))
	f.tr.Emit("net", "net.partition",
		trace.F("a", joinNames(a)), trace.F("b", joinNames(b)), trace.Fi("id", p.id))
	return p.id
}

// Heal removes the identified partition (no-op when already healed).
func (f *Fabric) Heal(id int) {
	for i, p := range f.parts {
		if p.id == id {
			f.parts = append(f.parts[:i], f.parts[i+1:]...)
			f.gPartitions.Set(float64(len(f.parts)))
			f.tr.Emit("net", "net.heal", trace.Fi("id", id))
			return
		}
	}
}

// HealAll removes every active partition.
func (f *Fabric) HealAll() {
	for len(f.parts) > 0 {
		f.Heal(f.parts[0].id)
	}
}

func joinNames(names []string) string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	out := ""
	for i, n := range sorted {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

// Send offers a one-way message and schedules deliver at arrival time.
// It reports whether the message survived (for tests; senders of
// datagrams cannot observe the loss). A disabled fabric delivers
// immediately.
func (f *Fabric) Send(from, to, kind string, deliver func()) bool {
	if !f.Enabled() {
		deliver()
		return true
	}
	f.stats.Messages++
	f.mMessages.Inc()
	if f.Partitioned(from, to) {
		f.stats.DroppedPartition++
		f.mDropPart.Inc()
		return false
	}
	l := f.link(from, to)
	// The loss draw happens for every non-partitioned message so the
	// random stream advances identically whether or not this message is
	// lost.
	if lost := f.rng.Float64() < l.Loss; lost {
		f.stats.DroppedLoss++
		f.mDropLoss.Inc()
		f.tr.Emit("net", "net.drop",
			trace.F("from", from), trace.F("to", to), trace.F("msg", kind))
		return false
	}
	delay := l.LatencyMS / 1000
	if l.JitterMS > 0 {
		delay += f.rng.Float64() * l.JitterMS / 1000
	}
	f.stats.Delivered++
	f.mDelivered.Inc()
	f.eng.After(delay, "net:"+kind, deliver)
	return true
}

// Call performs one tier RPC from->to. attempt runs on the callee side
// each time a request message arrives (so a retried call may execute
// more than once — at-least-once semantics, like a real stateless HTTP
// retry); reply carries the result back across the network. done fires
// exactly once: with the first response to arrive, or with ErrRPCTimeout
// once the budget for tier is exhausted. A disabled fabric runs attempt
// directly with done as its reply.
func (f *Fabric) Call(from, to, tier string, attempt func(reply func(error)), done func(error)) {
	if !f.Enabled() {
		attempt(done)
		return
	}
	b := f.budget(tier)
	f.stats.RPCs++
	settled := false
	var try func(n int)
	try = func(n int) {
		if settled {
			return
		}
		if n > 0 {
			f.stats.Retransmits++
			f.mRetransmits.Inc()
			f.tr.Emit("net", "net.retransmit",
				trace.F("from", from), trace.F("to", to), trace.F("tier", tier), trace.Fi("attempt", n))
		}
		var timeout sim.Handle
		reply := func(err error) {
			// The response crosses the network too; late responses from
			// superseded attempts lose the race and are discarded.
			f.Send(to, from, tier+".reply", func() {
				if settled {
					return
				}
				settled = true
				f.eng.Cancel(timeout)
				done(err)
			})
		}
		timeout = f.eng.After(b.TimeoutSeconds, "net:rpc-timeout", func() {
			if settled {
				return
			}
			if n+1 < b.Attempts {
				backoff := b.BackoffSeconds * float64(int(1)<<n)
				f.eng.After(backoff, "net:rpc-backoff", func() { try(n + 1) })
				return
			}
			settled = true
			f.stats.Abandoned++
			f.mAbandoned.Inc()
			f.tr.Emit("net", "net.abandon",
				trace.F("from", from), trace.F("to", to), trace.F("tier", tier), trace.Fi("attempts", n+1))
			done(fmt.Errorf("%w: %s %s->%s after %d attempts", ErrRPCTimeout, tier, from, to, n+1))
		})
		f.Send(from, to, tier, func() { attempt(reply) })
	}
	try(0)
}
