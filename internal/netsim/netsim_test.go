package netsim

import (
	"errors"
	"math"
	"testing"

	"jade/internal/cluster"
	"jade/internal/sim"
)

func enabledConfig() Config {
	return Config{Enabled: true, Default: Link{LatencyMS: 1}}
}

func TestDisabledFabricIsDirect(t *testing.T) {
	eng := sim.NewEngine(1)
	f := New(eng, Config{}, 1)
	delivered := false
	f.Send("a", "b", "x", func() { delivered = true })
	if !delivered {
		t.Fatal("disabled fabric must deliver synchronously")
	}
	var got error
	f.Call("a", "b", "app", func(reply func(error)) { reply(nil) }, func(err error) { got = err })
	if got != nil {
		t.Fatalf("direct call failed: %v", got)
	}
	if f.Stats().Messages != 0 {
		t.Fatal("disabled fabric must not count messages")
	}
	// A nil fabric behaves the same (call sites carry no guards).
	var nilFab *Fabric
	if nilFab.Enabled() {
		t.Fatal("nil fabric reports enabled")
	}
	nilFab.Send("a", "b", "x", func() {})
	nilFab.Call("a", "b", "app", func(reply func(error)) { reply(nil) }, func(error) {})
}

func TestSendTakesLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	f := New(eng, Config{Enabled: true, Default: Link{LatencyMS: 2}}, 1)
	var at float64 = -1
	f.Send("a", "b", "x", func() { at = eng.Now() })
	if at != -1 {
		t.Fatal("delivery must not be synchronous")
	}
	eng.Run()
	if math.Abs(at-0.002) > 1e-9 {
		t.Fatalf("latency: delivered at %g, want 0.002", at)
	}
}

func TestSendJitterDeterministic(t *testing.T) {
	run := func() []float64 {
		eng := sim.NewEngine(7)
		f := New(eng, Config{Enabled: true, Default: Link{LatencyMS: 1, JitterMS: 5}}, 7)
		var times []float64
		for i := 0; i < 10; i++ {
			f.Send("a", "b", "x", func() { times = append(times, eng.Now()) })
		}
		eng.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != 10 {
		t.Fatalf("got %d deliveries", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %g vs %g", i, a[i], b[i])
		}
		if a[i] < 0.001 || a[i] >= 0.006 {
			t.Fatalf("delivery %d at %g outside latency+jitter bounds", i, a[i])
		}
	}
}

func TestLossDropsSomeMessages(t *testing.T) {
	eng := sim.NewEngine(3)
	f := New(eng, Config{Enabled: true, Default: Link{LatencyMS: 1, Loss: 0.3}}, 3)
	delivered := 0
	const n = 1000
	for i := 0; i < n; i++ {
		f.Send("a", "b", "x", func() { delivered++ })
	}
	eng.Run()
	st := f.Stats()
	if st.Messages != n || st.Delivered != uint64(delivered) {
		t.Fatalf("stats mismatch: %+v vs delivered=%d", st, delivered)
	}
	if st.DroppedLoss == 0 || st.DroppedLoss == n {
		t.Fatalf("loss 0.3 dropped %d of %d", st.DroppedLoss, n)
	}
	if frac := float64(st.DroppedLoss) / n; frac < 0.2 || frac > 0.4 {
		t.Fatalf("loss fraction %g far from 0.3", frac)
	}
}

func TestPartitionBlocksBothWaysAndHeals(t *testing.T) {
	eng := sim.NewEngine(1)
	f := New(eng, enabledConfig(), 1)
	id := f.Partition([]string{"a"}, []string{"b"})
	if !f.Partitioned("a", "b") || !f.Partitioned("b", "a") {
		t.Fatal("partition must be symmetric")
	}
	if f.Partitioned("a", "c") || f.Partitioned("c", "b") {
		t.Fatal("partition must only cut the named groups")
	}
	got := 0
	f.Send("a", "b", "x", func() { got++ })
	f.Send("b", "a", "x", func() { got++ })
	f.Send("a", "c", "x", func() { got++ })
	eng.Run()
	if got != 1 {
		t.Fatalf("delivered %d, want only a->c", got)
	}
	if f.Stats().DroppedPartition != 2 {
		t.Fatalf("dropped %d by partition, want 2", f.Stats().DroppedPartition)
	}
	f.Heal(id)
	if f.Partitioned("a", "b") {
		t.Fatal("heal did not remove the partition")
	}
}

func TestPartitionOneSidedCutsOffRest(t *testing.T) {
	eng := sim.NewEngine(1)
	f := New(eng, enabledConfig(), 1)
	f.Partition([]string{"a", "b"}, nil)
	if f.Partitioned("a", "b") {
		t.Fatal("same-side endpoints must stay connected")
	}
	if !f.Partitioned("a", "x") || !f.Partitioned("x", "b") {
		t.Fatal("one-sided cut must isolate the group from everyone else")
	}
	f.HealAll()
	if f.Partitioned("a", "x") {
		t.Fatal("HealAll left a partition")
	}
}

func TestCallRetriesThenSucceeds(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := enabledConfig()
	cfg.RPC = map[string]RPCBudget{"app": {TimeoutSeconds: 1, Attempts: 3, BackoffSeconds: 0.5}}
	f := New(eng, cfg, 1)
	attempts := 0
	var result error
	fired := 0
	f.Call("a", "b", "app", func(reply func(error)) {
		attempts++
		if attempts < 3 {
			return // swallow the request: the attempt times out
		}
		reply(nil)
	}, func(err error) { result = err; fired++ })
	eng.Run()
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if result != nil || fired != 1 {
		t.Fatalf("call failed (%v) or done fired %d times", result, fired)
	}
	if f.Stats().Retransmits != 2 {
		t.Fatalf("retransmits = %d, want 2", f.Stats().Retransmits)
	}
}

func TestCallAbandonsAfterBudget(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := enabledConfig()
	cfg.RPC = map[string]RPCBudget{"app": {TimeoutSeconds: 1, Attempts: 2, BackoffSeconds: 0.5}}
	f := New(eng, cfg, 1)
	f.Partition([]string{"a"}, []string{"b"})
	var result error
	fired := 0
	start := eng.Now()
	f.Call("a", "b", "app", func(reply func(error)) {
		t.Fatal("attempt must never run across a partition")
	}, func(err error) { result = err; fired++ })
	eng.Run()
	if fired != 1 || !errors.Is(result, ErrRPCTimeout) {
		t.Fatalf("done fired %d with %v, want one ErrRPCTimeout", fired, result)
	}
	// Two 1 s attempts and one 0.5 s backoff: abandoned at t=2.5.
	if el := eng.Now() - start; math.Abs(el-2.5) > 1e-9 {
		t.Fatalf("abandoned after %g s, want 2.5", el)
	}
	if f.Stats().Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1", f.Stats().Abandoned)
	}
}

func TestCallLateReplyDiscarded(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := enabledConfig()
	cfg.RPC = map[string]RPCBudget{"app": {TimeoutSeconds: 1, Attempts: 2, BackoffSeconds: 0.5}}
	f := New(eng, cfg, 1)
	var replies []func(error)
	fired := 0
	f.Call("a", "b", "app", func(reply func(error)) {
		replies = append(replies, reply)
		if len(replies) == 2 {
			// Second attempt answers; then the first, stale attempt does.
			replies[1](nil)
			replies[0](errors.New("stale"))
		}
	}, func(err error) {
		fired++
		if err != nil {
			t.Fatalf("first response should win: %v", err)
		}
	})
	eng.Run()
	if fired != 1 {
		t.Fatalf("done fired %d times, want exactly 1", fired)
	}
}

// --- Detector ---

func detectorRig(t *testing.T, seed int64, cfg Config) (*sim.Engine, *Fabric, *Detector, *cluster.Node) {
	t.Helper()
	eng := sim.NewEngine(seed)
	f := New(eng, cfg, seed)
	d := NewDetector(eng, f, cfg.Heartbeat)
	node := cluster.NewNode(eng, "node1", cluster.DefaultConfig())
	return eng, f, d, node
}

func TestDetectorDetectionLatencyTable(t *testing.T) {
	// Detection latency after a crash is governed by threshold*mean*ln10
	// (mean settles at the heartbeat period under regular arrivals).
	cases := []struct {
		name      string
		period    float64
		threshold float64
	}{
		{"fast", 0.5, 2},
		{"default", 1, 3},
		{"patient", 2, 3},
		{"paranoid", 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := enabledConfig()
			cfg.Heartbeat = HeartbeatConfig{PeriodSeconds: tc.period, PhiThreshold: tc.threshold}
			eng, _, d, node := detectorRig(t, 42, cfg)
			d.Monitor("tomcat1", node)
			warmup := 30 * tc.period
			failAt := warmup
			eng.At(failAt, "fail", node.Fail)
			var detectedAt float64 = -1
			eng.Every(tc.period/4, "poll", func(now float64) {
				if detectedAt < 0 && d.Suspected("tomcat1") {
					detectedAt = now
				}
			})
			eng.RunUntil(warmup + 100*tc.period)
			if detectedAt < 0 {
				t.Fatal("crash never detected")
			}
			latency := detectedAt - failAt
			expect := tc.threshold * tc.period * math.Ln10
			// The last heartbeat precedes the crash by up to one period and
			// polling quantizes by a quarter period.
			if latency < expect-tc.period || latency > expect+tc.period {
				t.Fatalf("detection latency %g, want about %g (±%g)", latency, expect, tc.period)
			}
			st := d.Stats()
			if st.TruePositives != 1 || st.FalsePositives != 0 {
				t.Fatalf("stats %+v, want exactly one true positive", st)
			}
			if st.MeanDetectionLatency() <= 0 {
				t.Fatal("mean detection latency not recorded")
			}
		})
	}
}

func TestDetectorFalsePositiveUnderPartitionThenHeal(t *testing.T) {
	cfg := enabledConfig()
	cfg.Heartbeat = HeartbeatConfig{PeriodSeconds: 1, PhiThreshold: 3}
	eng, f, d, node := detectorRig(t, 42, cfg)
	d.Monitor("tomcat1", node)
	// Cut the replica off from the management endpoint only: the node
	// stays up but its heartbeats vanish.
	var id int
	eng.At(30, "cut", func() { id = f.Partition([]string{"node1"}, []string{ManagementEndpoint}) })
	eng.At(60, "heal", func() { f.Heal(id) })
	eng.RunUntil(90)
	st := d.Stats()
	if st.FalsePositives != 1 {
		t.Fatalf("false positives = %d, want 1 (stats %+v)", st.FalsePositives, st)
	}
	if st.TruePositives != 0 {
		t.Fatalf("true positives = %d for a node that never failed", st.TruePositives)
	}
	if st.Heals != 1 {
		t.Fatalf("heals = %d, want the suspicion to decay after the partition heals", st.Heals)
	}
	if d.Suspected("tomcat1") {
		t.Fatal("replica still suspect after heartbeats resumed")
	}
	if phi := d.Phi("tomcat1"); phi >= cfg.Heartbeat.PhiThreshold {
		t.Fatalf("phi %g still above threshold", phi)
	}
}

func TestDetectorForgetStopsHeartbeats(t *testing.T) {
	cfg := enabledConfig()
	eng, f, d, node := detectorRig(t, 1, cfg)
	d.Monitor("tomcat1", node)
	eng.RunUntil(10)
	before := f.Stats().Messages
	if before == 0 {
		t.Fatal("no heartbeats sent while monitored")
	}
	d.Forget("tomcat1")
	eng.RunUntil(30)
	// One in-flight tick may still fire; afterwards the emitter is gone.
	if after := f.Stats().Messages; after > before+1 {
		t.Fatalf("heartbeats kept flowing after Forget: %d -> %d", before, after)
	}
	if d.Suspected("tomcat1") {
		t.Fatal("forgotten replica reported suspect")
	}
}
