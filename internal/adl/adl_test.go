package adl

import (
	"errors"
	"strings"
	"testing"
)

const sampleADL = `<?xml version="1.0"?>
<definition name="rubis-j2ee">
  <component name="plb1" wrapper="plb">
    <attribute name="port" value="8080"/>
  </component>
  <composite name="app-tier">
    <component name="tomcat1" wrapper="tomcat">
      <attribute name="ajp-port" value="8009"/>
    </component>
  </composite>
  <composite name="db-tier">
    <component name="cjdbc1" wrapper="cjdbc"/>
    <composite name="backends">
      <component name="mysql1" wrapper="mysql" node="node5">
        <attribute name="port" value="3306"/>
      </component>
    </composite>
  </composite>
  <binding client="plb1.workers" server="tomcat1.ajp"/>
  <binding client="tomcat1.jdbc" server="cjdbc1.jdbc"/>
  <binding client="cjdbc1.backends" server="mysql1.sql"/>
</definition>
`

var wrappers = map[string]bool{
	"apache": true, "tomcat": true, "mysql": true,
	"cjdbc": true, "plb": true, "l4": true,
}

func TestParseAndStructure(t *testing.T) {
	d, err := Parse(sampleADL)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "rubis-j2ee" {
		t.Fatalf("name = %q", d.Name)
	}
	all := d.AllComponents()
	if len(all) != 4 {
		t.Fatalf("AllComponents = %d", len(all))
	}
	// Document order, with composite paths.
	wantOrder := []struct{ name, path string }{
		{"plb1", ""},
		{"tomcat1", "app-tier"},
		{"cjdbc1", "db-tier"},
		{"mysql1", "db-tier/backends"},
	}
	for i, w := range wantOrder {
		if all[i].Name != w.name || all[i].CompositePath != w.path {
			t.Fatalf("component %d = %s@%q, want %s@%q",
				i, all[i].Name, all[i].CompositePath, w.name, w.path)
		}
	}
	if all[3].Node != "node5" {
		t.Fatalf("pinned node = %q", all[3].Node)
	}
	if len(all[0].Attributes) != 1 || all[0].Attributes[0].Value != "8080" {
		t.Fatalf("attributes = %+v", all[0].Attributes)
	}
	paths := d.CompositePaths()
	wantPaths := []string{"app-tier", "db-tier", "db-tier/backends"}
	if strings.Join(paths, ",") != strings.Join(wantPaths, ",") {
		t.Fatalf("paths = %v", paths)
	}
	if len(d.Bindings) != 3 {
		t.Fatalf("bindings = %d", len(d.Bindings))
	}
}

func TestValidateAccepts(t *testing.T) {
	d, err := Parse(sampleADL)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(wrappers); err != nil {
		t.Fatal(err)
	}
	// nil wrapper set skips wrapper validation.
	if err := d.Validate(nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		xml  string
		want error
	}{
		{
			"duplicate component",
			`<definition name="x">
			   <component name="a" wrapper="mysql"/>
			   <composite name="t"><component name="a" wrapper="mysql"/></composite>
			 </definition>`,
			ErrDuplicateName,
		},
		{
			"unknown wrapper",
			`<definition name="x"><component name="a" wrapper="oracle"/></definition>`,
			ErrUnknownWrapper,
		},
		{
			"empty component name",
			`<definition name="x"><component name="" wrapper="mysql"/></definition>`,
			ErrEmptyName,
		},
		{
			"bad binding ref",
			`<definition name="x">
			   <component name="a" wrapper="mysql"/>
			   <binding client="a" server="a.itf"/>
			 </definition>`,
			ErrBadBinding,
		},
		{
			"dangling binding",
			`<definition name="x">
			   <component name="a" wrapper="mysql"/>
			   <binding client="a.itf" server="ghost.itf"/>
			 </definition>`,
			ErrDanglingRef,
		},
		{
			"duplicate composite",
			`<definition name="x">
			   <composite name="t"><component name="a" wrapper="mysql"/></composite>
			   <composite name="t"><component name="b" wrapper="mysql"/></composite>
			 </definition>`,
			ErrDuplicateName,
		},
	}
	for _, c := range cases {
		d, err := Parse(c.xml)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		if err := d.Validate(wrappers); !errors.Is(err, c.want) {
			t.Errorf("%s: Validate = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestValidateEmptyAttributeName(t *testing.T) {
	d, err := Parse(`<definition name="x">
	  <component name="a" wrapper="mysql"><attribute name="" value="1"/></component>
	</definition>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(wrappers); err == nil {
		t.Fatal("empty attribute name accepted")
	}
}

func TestParseRejectsMalformedXML(t *testing.T) {
	if _, err := Parse("<definition><unclosed></definition>"); err == nil {
		t.Fatal("malformed XML accepted")
	}
}

func TestSplitRef(t *testing.T) {
	cases := []struct {
		ref       string
		comp, itf string
		ok        bool
	}{
		{"tomcat1.ajp", "tomcat1", "ajp", true},
		{"a.b.c", "a.b", "c", true}, // last dot wins
		{"noitf.", "", "", false},
		{".itf", "", "", false},
		{"nodot", "", "", false},
	}
	for _, c := range cases {
		comp, itf, err := SplitRef(c.ref)
		if c.ok && (err != nil || comp != c.comp || itf != c.itf) {
			t.Errorf("SplitRef(%q) = %q, %q, %v", c.ref, comp, itf, err)
		}
		if !c.ok && err == nil {
			t.Errorf("SplitRef(%q) accepted", c.ref)
		}
	}
}

func TestRenderRoundTrip(t *testing.T) {
	d, err := Parse(sampleADL)
	if err != nil {
		t.Fatal(err)
	}
	text, err := d.Render()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.AllComponents()) != len(d.AllComponents()) {
		t.Fatal("round trip lost components")
	}
	if len(d2.Bindings) != len(d.Bindings) {
		t.Fatal("round trip lost bindings")
	}
	if err := d2.Validate(wrappers); err != nil {
		t.Fatal(err)
	}
}
