// Package adl implements Jade's Architecture Description Language (§3.3):
// an XML document describing the architecture to deploy on the cluster —
// which software resources compose the multi-tier application, how many
// replicas each tier starts with, which node hosts each component, how
// the tiers are bound together — plus validation against the set of
// wrapper types the deployer knows.
package adl

import (
	"encoding/xml"
	"errors"
	"fmt"
	"strings"
)

// Errors returned by validation.
var (
	ErrDuplicateName  = errors.New("adl: duplicate component name")
	ErrUnknownWrapper = errors.New("adl: unknown wrapper type")
	ErrBadBinding     = errors.New("adl: malformed binding reference")
	ErrDanglingRef    = errors.New("adl: binding references unknown component")
	ErrEmptyName      = errors.New("adl: component with empty name")
)

// Definition is the root of an ADL document.
type Definition struct {
	XMLName    xml.Name        `xml:"definition"`
	Name       string          `xml:"name,attr"`
	Components []ComponentDecl `xml:"component"`
	Composites []CompositeDecl `xml:"composite"`
	Bindings   []BindingDecl   `xml:"binding"`
}

// ComponentDecl declares one primitive component to deploy.
type ComponentDecl struct {
	// Name is the component's unique name in the architecture.
	Name string `xml:"name,attr"`
	// Wrapper selects the wrapper type (apache, tomcat, mysql, cjdbc,
	// plb, l4, ...) the deployer instantiates.
	Wrapper string `xml:"wrapper,attr"`
	// Node pins the component to a named node; empty means "allocate a
	// node from the cluster pool".
	Node string `xml:"node,attr,omitempty"`
	// Attributes are applied through the attribute controller after
	// creation (and reflected into the legacy configuration files).
	Attributes []AttrDecl `xml:"attribute"`
}

// AttrDecl is one attribute assignment.
type AttrDecl struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

// CompositeDecl groups components under a named composite (e.g. one per
// tier), recursively.
type CompositeDecl struct {
	Name       string          `xml:"name,attr"`
	Components []ComponentDecl `xml:"component"`
	Composites []CompositeDecl `xml:"composite"`
}

// BindingDecl connects a client interface to a server interface, both
// written "component.interface".
type BindingDecl struct {
	Client string `xml:"client,attr"`
	Server string `xml:"server,attr"`
}

// Parse parses an ADL document.
func Parse(text string) (*Definition, error) {
	var d Definition
	if err := xml.Unmarshal([]byte(text), &d); err != nil {
		return nil, fmt.Errorf("adl: %w", err)
	}
	return &d, nil
}

// Render returns the XML text of the definition.
func (d *Definition) Render() (string, error) {
	out, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", fmt.Errorf("adl: %w", err)
	}
	return xml.Header + string(out) + "\n", nil
}

// PlacedComponent is a component declaration with the composite path it
// appears under ("" at top level, "db-tier" or "a/b" when nested).
type PlacedComponent struct {
	ComponentDecl
	CompositePath string
}

// AllComponents flattens the declaration tree in document order.
func (d *Definition) AllComponents() []PlacedComponent {
	var out []PlacedComponent
	for _, c := range d.Components {
		out = append(out, PlacedComponent{ComponentDecl: c})
	}
	var walk func(prefix string, comps []CompositeDecl)
	walk = func(prefix string, comps []CompositeDecl) {
		for _, comp := range comps {
			path := comp.Name
			if prefix != "" {
				path = prefix + "/" + comp.Name
			}
			for _, c := range comp.Components {
				out = append(out, PlacedComponent{ComponentDecl: c, CompositePath: path})
			}
			walk(path, comp.Composites)
		}
	}
	walk("", d.Composites)
	return out
}

// CompositePaths returns every composite path in document order.
func (d *Definition) CompositePaths() []string {
	var out []string
	var walk func(prefix string, comps []CompositeDecl)
	walk = func(prefix string, comps []CompositeDecl) {
		for _, comp := range comps {
			path := comp.Name
			if prefix != "" {
				path = prefix + "/" + comp.Name
			}
			out = append(out, path)
			walk(path, comp.Composites)
		}
	}
	walk("", d.Composites)
	return out
}

// SplitRef splits a "component.interface" reference.
func SplitRef(ref string) (component, itf string, err error) {
	dot := strings.LastIndexByte(ref, '.')
	if dot <= 0 || dot == len(ref)-1 {
		return "", "", fmt.Errorf("%w: %q (want component.interface)", ErrBadBinding, ref)
	}
	return ref[:dot], ref[dot+1:], nil
}

// Validate checks structural invariants: non-empty unique component
// names, known wrapper types (when wrappers is non-nil), unique composite
// names per level, and resolvable binding references.
func (d *Definition) Validate(wrappers map[string]bool) error {
	seen := map[string]bool{}
	for _, pc := range d.AllComponents() {
		if pc.Name == "" {
			return ErrEmptyName
		}
		if seen[pc.Name] {
			return fmt.Errorf("%w: %s", ErrDuplicateName, pc.Name)
		}
		seen[pc.Name] = true
		if wrappers != nil && !wrappers[pc.Wrapper] {
			return fmt.Errorf("%w: %q (component %s)", ErrUnknownWrapper, pc.Wrapper, pc.Name)
		}
		for _, a := range pc.Attributes {
			if a.Name == "" {
				return fmt.Errorf("adl: component %s has an attribute with empty name", pc.Name)
			}
		}
	}
	paths := map[string]bool{}
	for _, p := range d.CompositePaths() {
		if strings.HasSuffix(p, "/") || strings.Contains(p, "//") {
			return fmt.Errorf("adl: composite with empty name under %q", p)
		}
		if paths[p] {
			return fmt.Errorf("%w: composite %s", ErrDuplicateName, p)
		}
		paths[p] = true
	}
	for _, b := range d.Bindings {
		for _, ref := range []string{b.Client, b.Server} {
			comp, _, err := SplitRef(ref)
			if err != nil {
				return err
			}
			if !seen[comp] {
				return fmt.Errorf("%w: %s", ErrDanglingRef, ref)
			}
		}
	}
	return nil
}
