package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.After(d, "ev", func() { order = append(order, d) })
	}
	e.Run()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %v after run, want 5", e.Now())
	}
}

func TestTiesBreakInSchedulingOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, "tie", func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v, want ascending scheduling order", order)
		}
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(1, "never", func() { fired = true })
	if !ev.Pending() {
		t.Fatal("Pending() = false for a freshly scheduled event")
	}
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	if ev.Pending() {
		t.Fatal("Pending() = true after Cancel")
	}
	// Double cancel and zero-handle cancel must be safe.
	e.Cancel(ev)
	e.Cancel(Handle{})
}

func TestCancelFromWithinEarlierEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(2, "victim", func() { fired = true })
	e.After(1, "canceler", func() { e.Cancel(ev) })
	e.Run()
	if fired {
		t.Fatal("event canceled at t=1 still fired at t=2")
	}
}

func TestSchedulingInsidePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(5, "x", func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(1, "past", func() {})
}

func TestNonFiniteTimePanics(t *testing.T) {
	e := NewEngine(1)
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%v) did not panic", bad)
				}
			}()
			e.At(bad, "bad", func() {})
		}()
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("Now() = %v, want 42", e.Now())
	}
}

func TestRunUntilExecutesBoundaryEvent(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(10, "a", func() { fired++ })
	e.At(10.0000001, "b", func() { fired++ })
	e.RunUntil(10)
	if fired != 1 {
		t.Fatalf("fired = %d, want exactly the boundary event", fired)
	}
	e.RunUntil(11)
	if fired != 2 {
		t.Fatalf("fired = %d after extending run, want 2", fired)
	}
}

func TestRunUntilBackwardsPanics(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(10)
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil in the past did not panic")
		}
	}()
	e.RunUntil(5)
}

func TestStopInterruptsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.After(float64(i), "n", func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("executed %d events before Stop took effect, want 3", count)
	}
	// A subsequent Run resumes with remaining events.
	e.Run()
	if count != 10 {
		t.Fatalf("executed %d events total, want 10", count)
	}
}

func TestEventsScheduledDuringRunExecute(t *testing.T) {
	e := NewEngine(1)
	var seq []string
	e.After(1, "outer", func() {
		seq = append(seq, "outer")
		e.After(1, "inner", func() { seq = append(seq, "inner") })
	})
	e.Run()
	if len(seq) != 2 || seq[0] != "outer" || seq[1] != "inner" {
		t.Fatalf("seq = %v", seq)
	}
	if e.Now() != 2 {
		t.Fatalf("Now() = %v, want 2", e.Now())
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := NewEngine(1)
	var times []float64
	tk := e.Every(2, "tick", func(now float64) {
		times = append(times, now)
	})
	e.RunUntil(9)
	tk.Stop()
	want := []float64{2, 4, 6, 8}
	if len(times) != len(want) {
		t.Fatalf("ticks at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks at %v, want %v", times, want)
		}
	}
	e.RunUntil(100)
	if len(times) != len(want) {
		t.Fatal("ticker fired after Stop")
	}
}

func TestTickerStopFromWithinCallback(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = e.Every(1, "tick", func(now float64) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(50)
	if n != 3 {
		t.Fatalf("ticker fired %d times, want 3", n)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func() []float64 {
		e := NewEngine(99)
		var out []float64
		var spawn func()
		spawn = func() {
			if e.Now() > 50 {
				return
			}
			out = append(out, e.Now())
			e.After(e.Exponential(3), "spawn", spawn)
			e.After(e.Uniform(0.5, 2), "leaf", func() { out = append(out, -e.Now()) })
		}
		e.After(0, "seed", spawn)
		e.Run()
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestExponentialAndUniformEdgeCases(t *testing.T) {
	e := NewEngine(1)
	if v := e.Exponential(0); v != 0 {
		t.Fatalf("Exponential(0) = %v, want 0", v)
	}
	if v := e.Exponential(-1); v != 0 {
		t.Fatalf("Exponential(-1) = %v, want 0", v)
	}
	if v := e.Uniform(5, 5); v != 5 {
		t.Fatalf("Uniform(5,5) = %v, want 5", v)
	}
	if v := e.Uniform(5, 3); v != 5 {
		t.Fatalf("Uniform(5,3) = %v, want lo", v)
	}
}

func TestZeroPeriodTickerPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	e.Every(0, "bad", func(float64) {})
}

// Property: for any set of non-negative delays, events fire in sorted
// order and the final clock equals the max delay.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine(7)
		var fired []float64
		maxT := 0.0
		for _, r := range raw {
			d := float64(r) / 100
			if d > maxT {
				maxT = d
			}
			e.After(d, "p", func() { fired = append(fired, d) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		return e.Now() == maxT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling an arbitrary subset of events fires exactly the
// complement.
func TestPropertyCancellation(t *testing.T) {
	f := func(raw []uint16, mask []bool) bool {
		e := NewEngine(7)
		fired := map[int]bool{}
		evs := make([]Handle, len(raw))
		for i, r := range raw {
			i := i
			evs[i] = e.After(float64(r)/50, "p", func() { fired[i] = true })
		}
		want := len(raw)
		for i := range raw {
			if i < len(mask) && mask[i] {
				e.Cancel(evs[i])
				want--
			}
		}
		e.Run()
		if len(fired) != want {
			return false
		}
		for i := range raw {
			canceled := i < len(mask) && mask[i]
			if fired[i] == canceled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPendingCountsLiveEvents: Pending excludes canceled events parked in
// the queue; PendingRaw exposes the raw queue length.
func TestPendingCountsLiveEvents(t *testing.T) {
	e := NewEngine(1)
	var hs []Handle
	for i := 0; i < 10; i++ {
		hs = append(hs, e.After(float64(i+1), "p", func() {}))
	}
	if e.Pending() != 10 || e.PendingRaw() != 10 {
		t.Fatalf("Pending/PendingRaw = %d/%d, want 10/10", e.Pending(), e.PendingRaw())
	}
	for _, h := range hs[:4] {
		e.Cancel(h)
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending = %d after 4 cancels, want 6", e.Pending())
	}
	if e.PendingRaw() != 10 {
		t.Fatalf("PendingRaw = %d after lazy cancels, want 10", e.PendingRaw())
	}
	e.Run()
	if e.Pending() != 0 || e.PendingRaw() != 0 {
		t.Fatalf("Pending/PendingRaw = %d/%d after drain, want 0/0", e.Pending(), e.PendingRaw())
	}
}

// TestStaleHandleIsInert: a handle kept after its event fired (and the
// struct was recycled for a new schedule) must not cancel the new event.
func TestStaleHandleIsInert(t *testing.T) {
	e := NewEngine(1)
	stale := e.After(1, "old", func() {})
	e.Run()
	if stale.Pending() || stale.Canceled() {
		t.Fatal("fired event still reports pending/canceled")
	}
	// The freelist hands the same struct back to the next schedule.
	fired := false
	fresh := e.After(1, "new", func() { fired = true })
	e.Cancel(stale) // must be a no-op even though the struct was reused
	e.Run()
	if !fired {
		t.Fatal("canceling a stale handle killed an unrelated event")
	}
	if fresh.Canceled() {
		t.Fatal("fresh event reports canceled")
	}
}

// TestLazyCancelDoesNotLeak: a cancel-heavy workload (every scheduled
// event is canceled and replaced, the node-reschedule pattern) must not
// accumulate canceled events in the queue.
func TestLazyCancelDoesNotLeak(t *testing.T) {
	e := NewEngine(1)
	// Keep a standing population of live events while churning cancels.
	var live []Handle
	for i := 0; i < 100; i++ {
		live = append(live, e.At(1e6+float64(i), "live", func() {}))
	}
	for i := 0; i < 100000; i++ {
		h := e.After(1000, "churn", func() {})
		e.Cancel(h)
	}
	if got := e.Pending(); got != 100 {
		t.Fatalf("Pending = %d, want the 100 live events", got)
	}
	// The raw queue must stay within the compaction bound, not grow with
	// the number of cancels.
	if raw := e.PendingRaw(); raw > 300 {
		t.Fatalf("PendingRaw = %d after 100k cancels; lazy cancel leaks", raw)
	}
	for _, h := range live {
		e.Cancel(h)
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", e.Pending())
	}
}

// nop is a package-level callback so the alloc tests measure the engine,
// not closure capture at the call site.
func nop() {}

// TestScheduleFireAllocs locks in the freelist: once warm, a
// schedule+fire cycle performs zero heap allocations.
func TestScheduleFireAllocs(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 4096; i++ {
		e.After(1, "warm", nop)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		e.After(1, "x", nop)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("schedule+fire allocates %.2f objects/op, want 0", avg)
	}
}

// TestScheduleCancelAllocs locks in lazy cancel: a warm schedule+cancel
// cycle (including the amortized compaction) allocates nothing.
func TestScheduleCancelAllocs(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 4096; i++ {
		e.After(1, "warm", nop)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		h := e.After(1, "x", nop)
		e.Cancel(h)
	})
	if avg != 0 {
		t.Fatalf("schedule+cancel allocates %.2f objects/op, want 0", avg)
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		for j := 0; j < 1000; j++ {
			e.After(e.Uniform(0, 100), "b", nop)
		}
		e.Run()
	}
}

// BenchmarkEngineCancelHeavy exercises the reschedule pattern the cluster
// nodes use: every completion event is canceled and replaced.
func BenchmarkEngineCancelHeavy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		var h Handle
		for j := 0; j < 1000; j++ {
			e.Cancel(h)
			h = e.After(e.Uniform(1, 2), "b", nop)
		}
		e.Run()
	}
}
