// Package sim provides a deterministic discrete-event simulation engine.
//
// Every experiment in this repository replays the paper's 3000-second
// cluster scenarios on a virtual clock: events are executed in
// non-decreasing time order, ties are broken by scheduling order, and all
// randomness flows through a single seeded source. Two runs with the same
// seed produce identical traces, which makes the control-loop behaviour of
// the Jade managers testable.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it before it fires.
type Event struct {
	time     float64
	seq      uint64
	index    int // position in the heap, -1 once removed
	canceled bool
	fn       func()
	label    string
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Label returns the diagnostic label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event executor with a virtual clock
// measured in seconds. The zero value is not usable; construct one with
// NewEngine.
type Engine struct {
	now     float64
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	stopped bool
	fault   error
	// processed counts events executed since construction; useful in
	// tests and as a progress indicator.
	processed uint64
	// hook, when set, observes every dispatched event just before its
	// callback runs. Observation only: the telemetry bus uses it to
	// record scheduler activity without perturbing the schedule.
	hook func(t float64, label string)
}

// NewEngine returns an engine whose clock starts at 0 and whose random
// source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Rand returns the engine's deterministic random source. All simulation
// code must draw randomness from here, never from the global source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the queue (including
// canceled ones not yet discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) panics: it would silently reorder causality.
func (e *Engine) At(t float64, label string, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %.9f, before now %.9f", label, t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling %q at non-finite time %v", label, t))
	}
	ev := &Event{time: t, seq: e.seq, fn: fn, label: label}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run delay seconds from now. Negative delays panic.
func (e *Engine) After(delay float64, label string, fn func()) *Event {
	return e.At(e.now+delay, label, fn)
}

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired or been canceled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
		ev.index = -1
	}
}

// SetEventHook installs an observer called for every dispatched event
// (after the clock advances, before the callback runs) with the event's
// time and label. The hook must not schedule or cancel events; it
// exists so tracers can watch the scheduler. Pass nil to remove.
func (e *Engine) SetEventHook(hook func(t float64, label string)) { e.hook = hook }

// Step executes the next pending event, advancing the clock. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.time
		e.processed++
		if e.hook != nil {
			e.hook(ev.time, ev.label)
		}
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = e.fault != nil
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time <= t and then sets the clock to t.
// Events scheduled exactly at t do run.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%.9f) before now %.9f", t, e.now))
	}
	e.stopped = e.fault != nil
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		next := e.peek()
		if next == nil {
			break
		}
		if next.time > t {
			break
		}
		e.Step()
	}
	// A faulted engine keeps its clock at the violation instant instead of
	// jumping to the horizon.
	if e.fault == nil && e.now < t {
		e.now = t
	}
}

func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		if e.queue[0].canceled {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0]
	}
	return nil
}

// Stop makes the innermost Run or RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Fail records a fault (the first one wins) and stops the engine. Invariant
// checkers use it to freeze the simulation at the instant a violation is
// detected, so the clock and queue state remain inspectable. A faulted
// engine refuses to resume: Run and RunUntil return immediately.
func (e *Engine) Fail(err error) {
	if err == nil {
		return
	}
	if e.fault == nil {
		e.fault = err
	}
	e.stopped = true
}

// Err returns the fault recorded by Fail, or nil.
func (e *Engine) Err() error { return e.fault }

// Ticker fires a callback at a fixed period until stopped.
type Ticker struct {
	eng    *Engine
	period float64
	fn     func(now float64)
	ev     *Event
	label  string
	done   bool
}

// Every schedules fn to run every period seconds, first at now+period.
// The returned Ticker can be stopped. A non-positive period panics.
func (e *Engine) Every(period float64, label string, fn func(now float64)) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker %q with period %v", label, period))
	}
	t := &Ticker{eng: e, period: period, fn: fn, label: label}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.eng.After(t.period, t.label, func() {
		if t.done {
			return
		}
		t.fn(t.eng.Now())
		if !t.done {
			t.schedule()
		}
	})
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.done {
		return
	}
	t.done = true
	t.eng.Cancel(t.ev)
}

// Exponential draws from an exponential distribution with the given mean,
// using the engine's random source.
func (e *Engine) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return e.rng.ExpFloat64() * mean
}

// Uniform draws uniformly from [lo, hi).
func (e *Engine) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + e.rng.Float64()*(hi-lo)
}
