// Package sim provides a deterministic discrete-event simulation engine.
//
// Every experiment in this repository replays the paper's 3000-second
// cluster scenarios on a virtual clock: events are executed in
// non-decreasing time order, ties are broken by scheduling order, and all
// randomness flows through a single seeded source. Two runs with the same
// seed produce identical traces, which makes the control-loop behaviour of
// the Jade managers testable.
//
// The event loop is the hot path of every sweep and figure run, so it is
// written for throughput: the priority queue is a specialized binary heap
// over event pointers (no container/heap interface boxing), event structs
// are batch-allocated and recycled through a freelist, and Cancel is a
// lazy mark — canceled events are discarded when they surface at the top
// of the heap (with a compaction pass when they pile up) instead of an
// O(log n) removal per cancel.
package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// event is a scheduled callback. Events are engine-owned and recycled
// after they fire or are discarded; callers refer to them through the
// generation-checked Handle returned by the scheduling methods.
type event struct {
	time     float64
	seq      uint64
	fn       func()
	label    string
	canceled bool
	queued   bool
	next     *event // freelist link
}

// Handle refers to a scheduled event. It is a value (pointer plus the
// event's scheduling generation), so a handle kept after its event fired
// — or after the engine recycled the event struct for a new schedule —
// is simply stale: Cancel on it is a no-op and Pending reports false.
// The zero Handle is valid and refers to nothing.
type Handle struct {
	ev  *event
	seq uint64
}

// live reports whether the handle still names the event it was minted
// for (the struct has not been recycled for a newer schedule).
func (h Handle) live() bool { return h.ev != nil && h.ev.seq == h.seq }

// Time returns the virtual time at which the event fires (or fired). It
// returns 0 for a zero or recycled handle.
func (h Handle) Time() float64 {
	if !h.live() {
		return 0
	}
	return h.ev.time
}

// Label returns the diagnostic label given at scheduling time, or "" for
// a zero or recycled handle.
func (h Handle) Label() string {
	if !h.live() {
		return ""
	}
	return h.ev.label
}

// Pending reports whether the event is still queued to fire.
func (h Handle) Pending() bool { return h.live() && h.ev.queued && !h.ev.canceled }

// Canceled reports whether Cancel was called on the event before it
// fired.
func (h Handle) Canceled() bool { return h.live() && h.ev.canceled }

// DefaultCompactMinCancels is the default lower bound on parked canceled
// events before a compaction pass is considered (see SetCompactMinCancels).
const DefaultCompactMinCancels = 64

// Engine is a single-threaded discrete-event executor with a virtual clock
// measured in seconds. The zero value is not usable; construct one with
// NewEngine.
type Engine struct {
	now     float64
	seq     uint64
	queue   []*event // binary min-heap on (time, seq)
	nCancel int      // canceled events still sitting in the queue
	free    *event   // freelist of recycled event structs
	rng     *rand.Rand
	stopped bool
	fault   error
	// compactMinCancels tunes the lazy-cancel compaction trigger: a
	// compaction pass runs only once more than this many canceled events
	// are parked in the queue AND they outnumber the live events
	// (nCancel*2 > len(queue)). The floor keeps tiny queues from
	// compacting on every cancel; the majority rule bounds the queue at
	// roughly 2x the live events, so cancel-heavy workloads (the
	// cluster-node reschedule pattern measured as cancel_ns_per_event in
	// BENCH_core.json) stay amortized O(1) per cancel instead of drifting
	// with queue growth.
	compactMinCancels int
	// processed counts events executed since construction; useful in
	// tests and as a progress indicator.
	processed uint64
	// hook, when set, observes every dispatched event just before its
	// callback runs. Observation only: the telemetry bus uses it to
	// record scheduler activity without perturbing the schedule.
	hook func(t float64, label string)
}

// NewEngine returns an engine whose clock starts at 0 and whose random
// source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:               rand.New(rand.NewSource(seed)),
		compactMinCancels: DefaultCompactMinCancels,
	}
}

// SetCompactMinCancels tunes the lazy-cancel compaction floor: compaction
// is considered only once more than n canceled events are parked in the
// queue. Lower values compact (and re-heapify) more eagerly, trading
// cancel throughput for a tighter queue; higher values defer compaction
// to larger batches. Non-positive n restores the default. The majority
// rule (canceled events must outnumber live ones) always applies, so any
// setting keeps the raw queue bounded near 2x the live event count.
func (e *Engine) SetCompactMinCancels(n int) {
	if n <= 0 {
		n = DefaultCompactMinCancels
	}
	e.compactMinCancels = n
}

// CompactMinCancels returns the current compaction floor.
func (e *Engine) CompactMinCancels() int { return e.compactMinCancels }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Rand returns the engine's deterministic random source. All simulation
// code must draw randomness from here, never from the global source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of live events waiting to fire. Canceled
// events still parked in the queue are not counted.
func (e *Engine) Pending() int { return len(e.queue) - e.nCancel }

// PendingRaw returns the raw queue length, including canceled events not
// yet discarded by the lazy-cancel machinery. Tests use it to bound the
// queue's bookkeeping overhead.
func (e *Engine) PendingRaw() int { return len(e.queue) }

// eventBatch is how many event structs one freelist refill allocates;
// amortizes allocation to ~1/eventBatch per scheduled event.
const eventBatch = 128

func (e *Engine) alloc() *event {
	if e.free == nil {
		batch := make([]event, eventBatch)
		for i := range batch[:eventBatch-1] {
			batch[i].next = &batch[i+1]
		}
		e.free = &batch[0]
	}
	ev := e.free
	e.free = ev.next
	ev.next = nil
	return ev
}

// release returns a fired or discarded event to the freelist. The seq is
// left in place so stale handles keep failing their generation check
// only once the struct is reused; fn is dropped so the closure can be
// collected.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.label = ""
	ev.queued = false
	ev.next = e.free
	e.free = ev
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) panics: it would silently reorder causality.
func (e *Engine) At(t float64, label string, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %.9f, before now %.9f", label, t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling %q at non-finite time %v", label, t))
	}
	ev := e.alloc()
	e.seq++
	ev.time, ev.seq, ev.fn, ev.label = t, e.seq, fn, label
	ev.canceled, ev.queued = false, true
	e.push(ev)
	return Handle{ev: ev, seq: ev.seq}
}

// After schedules fn to run delay seconds from now. Negative delays panic.
func (e *Engine) After(delay float64, label string, fn func()) Handle {
	return e.At(e.now+delay, label, fn)
}

// Cancel prevents a pending event from firing. Canceling a zero handle,
// an event that has already fired or been canceled, or a stale handle
// whose event struct was recycled, is a no-op. The event is only marked:
// it is discarded when it reaches the top of the heap, or by a
// compaction pass once canceled events dominate the queue.
func (e *Engine) Cancel(h Handle) {
	ev := h.ev
	if ev == nil || ev.seq != h.seq || !ev.queued || ev.canceled {
		return
	}
	ev.canceled = true
	e.nCancel++
	if e.nCancel > e.compactMinCancels && e.nCancel*2 > len(e.queue) {
		e.compact()
	}
}

// compact removes every canceled event from the queue in one pass and
// restores the heap property, bounding queue growth under cancel-heavy
// workloads (each canceled event is touched at most once here, so the
// cost stays amortized O(1) per cancel).
func (e *Engine) compact() {
	q := e.queue[:0]
	for _, ev := range e.queue {
		if ev.canceled {
			e.release(ev)
		} else {
			q = append(q, ev)
		}
	}
	for i := len(q); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = q
	e.nCancel = 0
	for i := len(q)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

func less(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *event) {
	q := append(e.queue, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !less(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	e.queue = q
}

func (e *Engine) pop() *event {
	q := e.queue
	ev := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	e.queue = q[:n]
	if n > 1 {
		e.siftDown(0)
	}
	ev.queued = false
	return ev
}

func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && less(q[r], q[l]) {
			m = r
		}
		if !less(q[m], q[i]) {
			return
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
}

// SetEventHook installs an observer called for every dispatched event
// (after the clock advances, before the callback runs) with the event's
// time and label. The hook must not schedule or cancel events; it
// exists so tracers can watch the scheduler. Pass nil to remove.
func (e *Engine) SetEventHook(hook func(t float64, label string)) { e.hook = hook }

// Step executes the next pending event, advancing the clock. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.pop()
		if ev.canceled {
			e.nCancel--
			e.release(ev)
			continue
		}
		e.now = ev.time
		e.processed++
		fn := ev.fn
		if e.hook != nil {
			e.hook(ev.time, ev.label)
		}
		fn()
		// Recycle only after fn returns: handles to the firing event stay
		// generation-valid during the callback (a ticker canceling itself
		// from inside its own tick must remain a no-op, not hit a reused
		// struct).
		e.release(ev)
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = e.fault != nil
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time <= t and then sets the clock to t.
// Events scheduled exactly at t do run.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%.9f) before now %.9f", t, e.now))
	}
	e.stopped = e.fault != nil
	for !e.stopped {
		next := e.peek()
		if next == nil || next.time > t {
			break
		}
		e.Step()
	}
	// A faulted engine keeps its clock at the violation instant instead of
	// jumping to the horizon.
	if e.fault == nil && e.now < t {
		e.now = t
	}
}

func (e *Engine) peek() *event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.canceled {
			return ev
		}
		e.pop()
		e.nCancel--
		e.release(ev)
	}
	return nil
}

// Stop makes the innermost Run or RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Fail records a fault (the first one wins) and stops the engine. Invariant
// checkers use it to freeze the simulation at the instant a violation is
// detected, so the clock and queue state remain inspectable. A faulted
// engine refuses to resume: Run and RunUntil return immediately.
func (e *Engine) Fail(err error) {
	if err == nil {
		return
	}
	if e.fault == nil {
		e.fault = err
	}
	e.stopped = true
}

// Err returns the fault recorded by Fail, or nil.
func (e *Engine) Err() error { return e.fault }

// Ticker fires a callback at a fixed period until stopped.
type Ticker struct {
	eng    *Engine
	period float64
	fn     func(now float64)
	ev     Handle
	label  string
	done   bool
}

// Every schedules fn to run every period seconds, first at now+period.
// The returned Ticker can be stopped. A non-positive period panics.
func (e *Engine) Every(period float64, label string, fn func(now float64)) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker %q with period %v", label, period))
	}
	t := &Ticker{eng: e, period: period, fn: fn, label: label}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.eng.After(t.period, t.label, func() {
		if t.done {
			return
		}
		t.fn(t.eng.Now())
		if !t.done {
			t.schedule()
		}
	})
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.done {
		return
	}
	t.done = true
	t.eng.Cancel(t.ev)
}

// Exponential draws from an exponential distribution with the given mean,
// using the engine's random source.
func (e *Engine) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return e.rng.ExpFloat64() * mean
}

// Uniform draws uniformly from [lo, hi).
func (e *Engine) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + e.rng.Float64()*(hi-lo)
}
