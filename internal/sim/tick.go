package sim

import "fmt"

// TickBarrier is the coarse-grained companion of the event heap: a fixed
// virtual-time tick on which registered model functions run back to back
// in registration order. Fluid-flow workload models use it to exchange
// request rates and queue-theoretic estimates between tiers — however
// many components participate, the barrier costs the heap exactly one
// event per tick, keeping the hot loop independent of the fluid model's
// size.
//
// Determinism: functions run in registration order at identical virtual
// times, and every tick sees the same (now, dt) sequence for a given
// period, so a fluid model driven only by barrier ticks replays
// byte-identically across runs with the same seed.
type TickBarrier struct {
	eng    *Engine
	period float64
	label  string
	fns    []barrierFn
	ticker *Ticker
	last   float64
	ticks  uint64
}

type barrierFn struct {
	name string
	fn   func(now, dt float64)
}

// NewTickBarrier creates a stopped barrier with the given period in
// virtual seconds. A non-positive period panics.
func NewTickBarrier(eng *Engine, period float64, label string) *TickBarrier {
	if period <= 0 {
		panic(fmt.Sprintf("sim: tick barrier %q with period %v", label, period))
	}
	return &TickBarrier{eng: eng, period: period, label: label}
}

// Register adds fn to the barrier; at every tick it receives the current
// virtual time and the elapsed time since the previous tick. Functions
// run in registration order. Registering after Start is allowed: the new
// function joins at the next tick.
func (b *TickBarrier) Register(name string, fn func(now, dt float64)) {
	b.fns = append(b.fns, barrierFn{name: name, fn: fn})
}

// Start begins ticking; the first tick fires one period from now.
// Starting a started barrier is a no-op.
func (b *TickBarrier) Start() {
	if b.ticker != nil {
		return
	}
	b.last = b.eng.Now()
	b.ticker = b.eng.Every(b.period, b.label, b.tick)
}

func (b *TickBarrier) tick(now float64) {
	dt := now - b.last
	b.last = now
	b.ticks++
	for _, f := range b.fns {
		f.fn(now, dt)
	}
}

// Stop cancels future ticks. Safe to call multiple times.
func (b *TickBarrier) Stop() {
	if b.ticker == nil {
		return
	}
	b.ticker.Stop()
	b.ticker = nil
}

// Period returns the tick period in virtual seconds.
func (b *TickBarrier) Period() float64 { return b.period }

// Ticks returns the number of ticks executed so far.
func (b *TickBarrier) Ticks() uint64 { return b.ticks }
