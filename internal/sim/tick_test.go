package sim

import "testing"

func TestTickBarrierRunsInRegistrationOrder(t *testing.T) {
	e := NewEngine(1)
	b := NewTickBarrier(e, 2.0, "tick")
	var order []string
	var dts []float64
	b.Register("a", func(now, dt float64) { order = append(order, "a") })
	b.Register("b", func(now, dt float64) {
		order = append(order, "b")
		dts = append(dts, dt)
	})
	b.Start()
	e.RunUntil(7)
	if got, want := len(order), 6; got != want { // 3 ticks x 2 fns
		t.Fatalf("got %d calls (%v), want %d", got, order, want)
	}
	for i := 0; i < len(order); i += 2 {
		if order[i] != "a" || order[i+1] != "b" {
			t.Fatalf("registration order violated: %v", order)
		}
	}
	for _, dt := range dts {
		if dt != 2.0 {
			t.Fatalf("dt = %v, want 2.0 (dts %v)", dt, dts)
		}
	}
	if b.Ticks() != 3 {
		t.Fatalf("Ticks() = %d, want 3", b.Ticks())
	}
}

func TestTickBarrierOneHeapEventPerTick(t *testing.T) {
	e := NewEngine(1)
	b := NewTickBarrier(e, 1.0, "tick")
	for i := 0; i < 50; i++ { // many registrants, still one event per tick
		b.Register("f", func(now, dt float64) {})
	}
	b.Start()
	e.RunUntil(10)
	if got := e.Processed(); got != 10 {
		t.Fatalf("processed %d events for 10 ticks of 50 registrants, want 10", got)
	}
}

func TestTickBarrierStopAndRestart(t *testing.T) {
	e := NewEngine(1)
	b := NewTickBarrier(e, 1.0, "tick")
	n := 0
	b.Register("n", func(now, dt float64) { n++ })
	b.Start()
	b.Start() // no-op: must not double-tick
	e.RunUntil(3)
	b.Stop()
	b.Stop()
	e.RunUntil(6)
	if n != 3 {
		t.Fatalf("ticks after stop: n = %d, want 3", n)
	}
	b.Start()
	e.RunUntil(8)
	if n != 5 {
		t.Fatalf("ticks after restart: n = %d, want 5", n)
	}
	// dt after a restart spans only the period, not the stopped gap.
	var lastDt float64
	b.Register("dt", func(now, dt float64) { lastDt = dt })
	e.RunUntil(9)
	if lastDt != 1.0 {
		t.Fatalf("dt after restart = %v, want 1.0", lastDt)
	}
}

func TestTickBarrierZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTickBarrier with period 0 did not panic")
		}
	}()
	NewTickBarrier(NewEngine(1), 0, "bad")
}

// TestCompactionBoundsQueueUnderCancelHeavyLoad is the regression test
// for the lazy-cancel compaction tunable: under a sustained
// cancel-and-reschedule workload with a large population of far-future
// events, the raw queue (live + parked canceled) must stay bounded by
// the majority rule rather than growing with the number of cancels.
func TestCompactionBoundsQueueUnderCancelHeavyLoad(t *testing.T) {
	for _, floor := range []int{0, 8, DefaultCompactMinCancels, 1024} {
		e := NewEngine(42)
		e.SetCompactMinCancels(floor)
		want := floor
		if floor <= 0 {
			want = DefaultCompactMinCancels
		}
		if got := e.CompactMinCancels(); got != want {
			t.Fatalf("CompactMinCancels() = %d after Set(%d), want %d", got, floor, want)
		}
		// Live population: 1000 far-future events that never fire.
		for i := 0; i < 1000; i++ {
			e.At(1e6+float64(i), "far", func() {})
		}
		// Cancel-heavy churn: 50k reschedules of a near-future event.
		var h Handle
		for i := 0; i < 50000; i++ {
			e.Cancel(h)
			h = e.At(float64(i)+1, "resched", func() {})
			// The queue may exceed the bound only until the *next* cancel
			// trips the majority rule, so allow one pending cancel of slack.
			limit := 2*(1000+1) + want + 1
			if raw := e.PendingRaw(); raw > limit {
				t.Fatalf("floor %d: PendingRaw %d exceeds bound %d after %d cancels",
					floor, raw, limit, i+1)
			}
		}
		if live := e.Pending(); live != 1000+1 {
			t.Fatalf("floor %d: Pending %d, want 1001", floor, live)
		}
	}
}
