package refresh

import (
	"errors"
	"fmt"
	"testing"

	"jade/internal/trace"
)

func TestViewGetSetSubscribeOrder(t *testing.T) {
	v := NewView("sizing", 1)
	if got := v.Get(); got != 1 {
		t.Fatalf("initial Get = %d, want 1", got)
	}
	if v.Generation() != 0 {
		t.Fatalf("fresh view generation %d, want 0", v.Generation())
	}
	var order []string
	v.Subscribe(func(now float64, old, cur int) {
		order = append(order, fmt.Sprintf("a:%g:%d->%d", now, old, cur))
	})
	v.Subscribe(func(now float64, old, cur int) {
		order = append(order, fmt.Sprintf("b:%g:%d->%d", now, old, cur))
	})
	v.Set(10, 2)
	if got := v.Get(); got != 2 {
		t.Fatalf("Get after Set = %d, want 2", got)
	}
	if v.Generation() != 1 {
		t.Fatalf("generation %d, want 1", v.Generation())
	}
	want := []string{"a:10:1->2", "b:10:1->2"}
	if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("subscriber order %v, want %v", order, want)
	}
}

func TestHubApplyAndDrainOrder(t *testing.T) {
	tr := trace.New(func() float64 { return 42 }, 0, 0)
	h := NewHub(tr)
	var applied []string
	h.Bind(
		func(source string, patch []byte) error { return nil },
		func(now float64, source string, patch []byte) error {
			applied = append(applied, source+":"+string(patch))
			return nil
		},
	)
	if err := h.Enqueue(SourceAdmin, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := h.Enqueue(SourceAdmin, []byte(`{"x":2}`)); err != nil {
		t.Fatal(err)
	}
	if n := h.Drain(5); n != 2 {
		t.Fatalf("drained %d, want 2", n)
	}
	if err := h.Apply(6, SourceOperator, []byte(`{"y":3}`)); err != nil {
		t.Fatal(err)
	}
	want := []string{`admin:{"x":1}`, `admin:{"x":2}`, `operator:{"y":3}`}
	for i, w := range want {
		if applied[i] != w {
			t.Fatalf("applied[%d] = %q, want %q", i, applied[i], w)
		}
	}
	a, r, p := h.Stats()
	if a != 3 || r != 0 || p != 0 {
		t.Fatalf("stats = (%d, %d, %d), want (3, 0, 0)", a, r, p)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d config spans, want 3", len(spans))
	}
	for _, s := range spans {
		if s.Kind != "config" || s.Open {
			t.Fatalf("span %+v: want closed config span", s)
		}
	}
}

func TestHubRejectsAndCounts(t *testing.T) {
	bad := errors.New("sizing.app.max: must be > sizing.app.min")
	h := NewHub(nil)
	h.Bind(
		func(source string, patch []byte) error {
			if string(patch) == "bad" {
				return bad
			}
			return nil
		},
		func(now float64, source string, patch []byte) error {
			if string(patch) == "bad-at-apply" {
				return bad
			}
			return nil
		},
	)
	if err := h.Enqueue(SourceAdmin, []byte("bad")); !errors.Is(err, bad) {
		t.Fatalf("Enqueue(bad) = %v, want the check error", err)
	}
	if err := h.Apply(1, SourceChaos, []byte("bad-at-apply")); !errors.Is(err, bad) {
		t.Fatalf("Apply = %v, want the apply error", err)
	}
	a, r, _ := h.Stats()
	if a != 0 || r != 1 {
		t.Fatalf("stats = (%d applied, %d rejected), want (0, 1)", a, r)
	}
}

func TestHubCloseFreezes(t *testing.T) {
	h := NewHub(nil)
	h.Bind(nil, func(float64, string, []byte) error { return nil })
	if err := h.Enqueue(SourceAdmin, []byte("{}")); err != nil {
		t.Fatal(err)
	}
	h.Close()
	if err := h.Enqueue(SourceAdmin, []byte("{}")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Enqueue after Close = %v, want ErrClosed", err)
	}
	if n := h.Drain(1); n != 0 {
		t.Fatalf("Drain after Close applied %d queued submissions, want 0", n)
	}
}
