// Package refresh is the deterministic refreshable-configuration
// substrate: typed, subscribable views over live sub-configurations,
// plus a hub that funnels every configuration change — scripted
// operator schedules, chaos events, live admin POSTs — through one
// validated, traced application point on the simulation goroutine.
//
// The determinism contract mirrors the rest of the platform:
//
//   - Views are mutated only from the simulation goroutine, at an exact
//     virtual tick, and subscribers fire synchronously in registration
//     order — so a configuration change is an event in the trajectory,
//     not a data race against it.
//   - Scripted changes (operator schedules, chaos "config" events) are
//     scheduled as engine events at fixed virtual times; equal seeds
//     with equal schedules replay byte-identically.
//   - Live HTTP submissions land in a pending queue and are drained at
//     the next drain tick. They are inherently wall-clock-timed, so
//     only serve-mode runs use them; headless replays script the same
//     changes through an operator schedule instead.
//
// Every application emits a "config" trace span carrying the source,
// the patch and the outcome, so retunes are first-class causal events
// in the telemetry record.
package refresh

import (
	"errors"
	"sync"
	"sync/atomic"

	"jade/internal/trace"
)

// View is a subscribable handle on one live sub-configuration. Managers
// hold a *View[T] instead of a copied struct: Get returns the current
// value, Subscribe registers a callback fired synchronously (in
// registration order, on the simulation goroutine) whenever the value
// is replaced.
//
// The value+generation pair is published behind one atomic pointer so
// the read path — the only part managers touch on their loop ticks — is
// a single load and a struct copy, lock-free. BENCH_core.json's
// refresh_read_ns_per_event gate holds this under 1% of the engine's
// per-event cost; a mutex here blows that budget by ~7x.
type View[T any] struct {
	name string
	cur  atomic.Pointer[viewState[T]]
	mu   sync.Mutex // serializes Set and guards subs
	subs []func(now float64, old, cur T)
}

// viewState is one immutable published snapshot of a view.
type viewState[T any] struct {
	val T
	gen uint64
}

// NewView builds a view seeded with the initial value.
func NewView[T any](name string, initial T) *View[T] {
	v := &View[T]{name: name}
	v.cur.Store(&viewState[T]{val: initial})
	return v
}

// Name identifies the view (the sub-configuration path it covers).
func (v *View[T]) Name() string { return v.name }

// Get returns the current value. Safe from any goroutine; the common
// caller is a manager reading its sub-config on a loop tick.
func (v *View[T]) Get() T { return v.cur.Load().val }

// Generation counts how many times Set replaced the value (0 initially).
func (v *View[T]) Generation() uint64 { return v.cur.Load().gen }

// Subscribe registers fn to run on every Set, synchronously and in
// registration order. Subscribers run on the goroutine calling Set (the
// simulation goroutine), so they may mutate managed state directly.
func (v *View[T]) Subscribe(fn func(now float64, old, cur T)) {
	v.mu.Lock()
	v.subs = append(v.subs, fn)
	v.mu.Unlock()
}

// Set replaces the value at virtual time now and fires the subscribers.
// Simulation goroutine only.
func (v *View[T]) Set(now float64, val T) {
	v.mu.Lock()
	old := v.cur.Load()
	v.cur.Store(&viewState[T]{val: val, gen: old.gen + 1})
	subs := v.subs
	v.mu.Unlock()
	for _, fn := range subs {
		fn(now, old.val, val)
	}
}

// Configuration-change sources, recorded on the trace span and the
// applied-changes log.
const (
	SourceOperator = "operator" // scripted Spec.Operator schedule
	SourceAdmin    = "admin"    // live POST /config
	SourceChaos    = "chaos"    // chaos schedule "config" event
)

// ErrClosed is returned by Enqueue once the run has completed and the
// configuration is frozen.
var ErrClosed = errors.New("refresh: run complete; configuration frozen")

// Submission is one queued live configuration change.
type Submission struct {
	Source string
	Patch  []byte
}

// Hub funnels every configuration change through one application point.
// Bind installs the owner's check (any goroutine, read-only) and apply
// (simulation goroutine, authoritative) callbacks; Enqueue accepts live
// submissions from HTTP handlers; Drain and Apply run on the simulation
// goroutine.
type Hub struct {
	tr *trace.Tracer

	mu       sync.Mutex
	check    func(source string, patch []byte) error
	apply    func(now float64, source string, patch []byte) error
	pending  []Submission
	applied  int
	rejected int
	closed   bool
}

// NewHub builds a hub emitting "config" spans on tr (which may be nil).
func NewHub(tr *trace.Tracer) *Hub { return &Hub{tr: tr} }

// Bind installs the callbacks. check validates a patch against the last
// published state and must be safe from any goroutine; apply validates
// authoritatively and commits, simulation goroutine only.
func (h *Hub) Bind(check func(source string, patch []byte) error, apply func(now float64, source string, patch []byte) error) {
	h.mu.Lock()
	h.check, h.apply = check, apply
	h.mu.Unlock()
}

// Enqueue validates a live submission and queues it for the next drain
// tick. Safe from any goroutine. The validation here is advisory (it
// reads the last published state); the authoritative check re-runs at
// application time on the simulation goroutine.
func (h *Hub) Enqueue(source string, patch []byte) error {
	h.mu.Lock()
	closed, check := h.closed, h.check
	h.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if check != nil {
		if err := check(source, patch); err != nil {
			return err
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrClosed
	}
	h.pending = append(h.pending, Submission{Source: source, Patch: append([]byte(nil), patch...)})
	return nil
}

// Drain applies every pending live submission in arrival order.
// Simulation goroutine only. Returns how many submissions it applied
// (successfully or not).
func (h *Hub) Drain(now float64) int {
	h.mu.Lock()
	pending := h.pending
	h.pending = nil
	h.mu.Unlock()
	for _, s := range pending {
		h.Apply(now, s.Source, s.Patch) //nolint:errcheck // outcome recorded on the span and counters
	}
	return len(pending)
}

// Apply runs one configuration change through the bound applier,
// wrapped in a "config" trace span carrying source, patch and outcome.
// Simulation goroutine only.
func (h *Hub) Apply(now float64, source string, patch []byte) error {
	h.mu.Lock()
	apply := h.apply
	h.mu.Unlock()
	span := h.tr.Begin(0, "config", source, trace.F("patch", string(patch)))
	var err error
	if apply == nil {
		err = errors.New("refresh: no applier bound")
	} else {
		err = apply(now, source, patch)
	}
	h.tr.End(span, trace.Outcome(err))
	h.mu.Lock()
	if err != nil {
		h.rejected++
	} else {
		h.applied++
	}
	h.mu.Unlock()
	return err
}

// Close freezes the configuration: further Enqueue calls fail with
// ErrClosed. Queued-but-undrained submissions are dropped.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	h.pending = nil
	h.mu.Unlock()
}

// Stats reports the applied/rejected/pending counts.
func (h *Hub) Stats() (applied, rejected, pending int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.applied, h.rejected, len(h.pending)
}
