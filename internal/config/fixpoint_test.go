package config

import (
	"fmt"
	"math/rand"
	"testing"
)

// The parse -> render -> parse property: rendering a parsed document and
// parsing it again must reach a fixpoint (render(parse(render(x))) ==
// render(x)) for every document the builders can produce. Inputs are
// generated from seeded rand — deterministic, no testing/quick.

const fixpointSeeds = 50

func word(r *rand.Rand, prefix string) string {
	return fmt.Sprintf("%s%d", prefix, r.Intn(1000))
}

func TestHTTPDConfFixpoint(t *testing.T) {
	for seed := int64(0); seed < fixpointSeeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		c := NewHTTPDConf()
		for i := 0; i < r.Intn(8); i++ {
			switch r.Intn(3) {
			case 0:
				c.Set(word(r, "Listen"), fmt.Sprint(1024+r.Intn(60000)))
			case 1:
				c.Set(word(r, "LoadModule"), word(r, "mod_"), word(r, "modules/"))
			default:
				c.Set(word(r, "ServerName"), word(r, "host"))
			}
		}
		once := c.Render()
		p1, err := ParseHTTPDConf(once)
		if err != nil {
			t.Fatalf("seed %d: parse 1: %v", seed, err)
		}
		twice := p1.Render()
		if once != twice {
			t.Fatalf("seed %d: httpd.conf not a fixpoint:\n--- render 1:\n%s\n--- render 2:\n%s", seed, once, twice)
		}
		p2, err := ParseHTTPDConf(twice)
		if err != nil {
			t.Fatalf("seed %d: parse 2: %v", seed, err)
		}
		if got, want := p2.Render(), twice; got != want {
			t.Fatalf("seed %d: third render diverged", seed)
		}
	}
}

func TestWorkerPropertiesFixpoint(t *testing.T) {
	for seed := int64(0); seed < fixpointSeeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		w := NewWorkerProperties()
		var members []string
		for i := 0; i < r.Intn(5); i++ {
			name := fmt.Sprintf("tomcat%d", i+1)
			w.SetWorker(Worker{
				Name:     name,
				Host:     word(r, "node"),
				Port:     8009 + r.Intn(100),
				Type:     "ajp13",
				LBFactor: 1 + r.Intn(3),
			})
			members = append(members, name)
		}
		if len(members) > 0 && r.Intn(2) == 0 {
			w.SetWorker(Worker{Name: "lb", Type: "lb", Balanced: members})
		}
		once := w.Render()
		p1, err := ParseWorkerProperties(once)
		if err != nil {
			t.Fatalf("seed %d: parse 1: %v", seed, err)
		}
		twice := p1.Render()
		if once != twice {
			t.Fatalf("seed %d: worker.properties not a fixpoint:\n--- render 1:\n%s\n--- render 2:\n%s", seed, once, twice)
		}
	}
}

func TestServerXMLFixpoint(t *testing.T) {
	for seed := int64(0); seed < fixpointSeeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := NewServerXML(word(r, "tomcat"))
		if r.Intn(2) == 0 {
			s.SetConnector("http", 8080+r.Intn(100), word(r, "addr"))
		}
		if r.Intn(2) == 0 {
			s.SetConnector("ajp13", 8009+r.Intn(100), "")
		}
		for i := 0; i < r.Intn(3); i++ {
			s.SetJDBC(word(r, "jdbc/"), "com.mysql.Driver",
				fmt.Sprintf("jdbc:mysql://%s:3306/rubis", word(r, "node")))
		}
		once, err := s.Render()
		if err != nil {
			t.Fatalf("seed %d: render 1: %v", seed, err)
		}
		p1, err := ParseServerXML(once)
		if err != nil {
			t.Fatalf("seed %d: parse 1: %v", seed, err)
		}
		twice, err := p1.Render()
		if err != nil {
			t.Fatalf("seed %d: render 2: %v", seed, err)
		}
		if once != twice {
			t.Fatalf("seed %d: server.xml not a fixpoint:\n--- render 1:\n%s\n--- render 2:\n%s", seed, once, twice)
		}
	}
}

func TestMyCnfFixpoint(t *testing.T) {
	for seed := int64(0); seed < fixpointSeeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		c := NewMyCnf()
		for i := 0; i < 1+r.Intn(3); i++ {
			section := []string{"mysqld", "client", "mysqldump"}[r.Intn(3)]
			switch r.Intn(3) {
			case 0:
				c.SetInt(section, word(r, "port"), 3306+r.Intn(100))
			case 1:
				c.Set(section, word(r, "datadir"), word(r, "/var/lib/"))
			default:
				c.SetFlag(section, word(r, "skip-"))
			}
		}
		once := c.Render()
		p1, err := ParseMyCnf(once)
		if err != nil {
			t.Fatalf("seed %d: parse 1: %v", seed, err)
		}
		twice := p1.Render()
		if once != twice {
			t.Fatalf("seed %d: my.cnf not a fixpoint:\n--- render 1:\n%s\n--- render 2:\n%s", seed, once, twice)
		}
		p2, err := ParseMyCnf(twice)
		if err != nil {
			t.Fatalf("seed %d: parse 2: %v", seed, err)
		}
		if p2.Render() != twice {
			t.Fatalf("seed %d: third render diverged", seed)
		}
	}
}
