package config

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Properties is an ordered Java-properties document (key=value lines,
// '#' or '!' comments), the format of mod_jk's worker.properties file the
// paper edits in its qualitative scenario (Fig. 4).
type Properties struct {
	order []string
	vals  map[string]string
}

// NewProperties returns an empty properties document.
func NewProperties() *Properties {
	return &Properties{vals: make(map[string]string)}
}

// ParseProperties parses a Java-properties document.
func ParseProperties(text string) (*Properties, error) {
	p := NewProperties()
	for i, ln := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(ln)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") || strings.HasPrefix(trimmed, "!") {
			continue
		}
		eq := strings.IndexByte(trimmed, '=')
		if eq < 0 {
			return nil, fmt.Errorf("properties line %d: no '=' in %q", i+1, trimmed)
		}
		key := strings.TrimSpace(trimmed[:eq])
		val := strings.TrimSpace(trimmed[eq+1:])
		if key == "" {
			return nil, fmt.Errorf("properties line %d: empty key", i+1)
		}
		p.Set(key, val)
	}
	return p, nil
}

// Get returns the value and whether the key exists.
func (p *Properties) Get(key string) (string, bool) {
	v, ok := p.vals[key]
	return v, ok
}

// Set inserts or replaces a key, preserving first-insertion order.
func (p *Properties) Set(key, value string) {
	if _, ok := p.vals[key]; !ok {
		p.order = append(p.order, key)
	}
	p.vals[key] = value
}

// Unset removes a key.
func (p *Properties) Unset(key string) {
	if _, ok := p.vals[key]; !ok {
		return
	}
	delete(p.vals, key)
	for i, k := range p.order {
		if k == key {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
}

// Keys returns keys in insertion order.
func (p *Properties) Keys() []string { return append([]string(nil), p.order...) }

// Render returns "key=value" lines in insertion order.
func (p *Properties) Render() string {
	var b strings.Builder
	for _, k := range p.order {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(p.vals[k])
		b.WriteByte('\n')
	}
	return b.String()
}

// Worker is one mod_jk worker entry (an AJP route from Apache to one
// Tomcat instance).
type Worker struct {
	Name     string
	Host     string
	Port     int
	Type     string // "ajp13" for plain workers, "lb" for balancers
	LBFactor int
	// Balanced lists member worker names when Type == "lb".
	Balanced []string
}

// WorkerProperties is the typed view over a worker.properties document
// that the Apache wrapper manipulates when its AJP client interface is
// bound or unbound.
type WorkerProperties struct {
	props *Properties
}

// NewWorkerProperties returns an empty worker.properties model.
func NewWorkerProperties() *WorkerProperties {
	return &WorkerProperties{props: NewProperties()}
}

// ParseWorkerProperties parses worker.properties text.
func ParseWorkerProperties(text string) (*WorkerProperties, error) {
	p, err := ParseProperties(text)
	if err != nil {
		return nil, err
	}
	return &WorkerProperties{props: p}, nil
}

// SetWorker declares or updates an AJP worker and adds it to worker.list.
func (w *WorkerProperties) SetWorker(wk Worker) {
	if wk.Name == "" {
		panic("worker.properties: worker with empty name")
	}
	prefix := "worker." + wk.Name + "."
	if wk.Type == "" {
		wk.Type = "ajp13"
	}
	w.props.Set(prefix+"type", wk.Type)
	if wk.Type == "lb" {
		w.props.Set(prefix+"balanced_workers", strings.Join(wk.Balanced, ","))
		w.props.Unset(prefix + "host")
		w.props.Unset(prefix + "port")
		w.props.Unset(prefix + "lbfactor")
	} else {
		w.props.Set(prefix+"host", wk.Host)
		w.props.Set(prefix+"port", strconv.Itoa(wk.Port))
		if wk.LBFactor > 0 {
			w.props.Set(prefix+"lbfactor", strconv.Itoa(wk.LBFactor))
		}
	}
	w.addToList(wk.Name)
}

// RemoveWorker deletes a worker and its worker.list entry, and drops it
// from any balancer's balanced_workers.
func (w *WorkerProperties) RemoveWorker(name string) {
	prefix := "worker." + name + "."
	for _, suffix := range []string{"type", "host", "port", "lbfactor", "balanced_workers"} {
		w.props.Unset(prefix + suffix)
	}
	w.removeFromList(name)
	for _, other := range w.WorkerNames() {
		key := "worker." + other + ".balanced_workers"
		if v, ok := w.props.Get(key); ok {
			members := splitList(v)
			members = removeString(members, name)
			w.props.Set(key, strings.Join(members, ","))
		}
	}
}

// Workers returns every declared worker, sorted by name.
func (w *WorkerProperties) Workers() []Worker {
	var out []Worker
	for _, name := range w.WorkerNames() {
		wk, _ := w.Worker(name)
		out = append(out, wk)
	}
	return out
}

// Worker returns the named worker.
func (w *WorkerProperties) Worker(name string) (Worker, bool) {
	prefix := "worker." + name + "."
	typ, ok := w.props.Get(prefix + "type")
	if !ok {
		return Worker{}, false
	}
	wk := Worker{Name: name, Type: typ}
	if host, ok := w.props.Get(prefix + "host"); ok {
		wk.Host = host
	}
	if port, ok := w.props.Get(prefix + "port"); ok {
		wk.Port, _ = strconv.Atoi(port)
	}
	if lb, ok := w.props.Get(prefix + "lbfactor"); ok {
		wk.LBFactor, _ = strconv.Atoi(lb)
	}
	if bal, ok := w.props.Get(prefix + "balanced_workers"); ok {
		wk.Balanced = splitList(bal)
	}
	return wk, true
}

// WorkerNames returns declared worker names sorted.
func (w *WorkerProperties) WorkerNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, k := range w.props.Keys() {
		if !strings.HasPrefix(k, "worker.") || k == "worker.list" {
			continue
		}
		rest := strings.TrimPrefix(k, "worker.")
		dot := strings.IndexByte(rest, '.')
		if dot <= 0 {
			continue
		}
		name := rest[:dot]
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// List returns the worker.list entries.
func (w *WorkerProperties) List() []string {
	v, _ := w.props.Get("worker.list")
	return splitList(v)
}

func (w *WorkerProperties) addToList(name string) {
	list := w.List()
	for _, n := range list {
		if n == name {
			return
		}
	}
	list = append(list, name)
	w.props.Set("worker.list", strings.Join(list, ","))
}

func (w *WorkerProperties) removeFromList(name string) {
	list := removeString(w.List(), name)
	if len(list) == 0 {
		w.props.Unset("worker.list")
		return
	}
	w.props.Set("worker.list", strings.Join(list, ","))
}

// Render returns the worker.properties text.
func (w *WorkerProperties) Render() string { return w.props.Render() }

func splitList(v string) []string {
	if strings.TrimSpace(v) == "" {
		return nil
	}
	parts := strings.Split(v, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if s := strings.TrimSpace(p); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func removeString(list []string, s string) []string {
	out := list[:0]
	for _, v := range list {
		if v != s {
			out = append(out, v)
		}
	}
	return out
}
