package config

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// MyCnf models MySQL's my.cnf INI format: [section] headers followed by
// key=value or bare-flag lines, with '#' and ';' comments.
type MyCnf struct {
	sections []string
	values   map[string]map[string]string // section -> key -> value
	flags    map[string]map[string]bool   // section -> bare flags
}

// NewMyCnf returns an empty document.
func NewMyCnf() *MyCnf {
	return &MyCnf{
		values: make(map[string]map[string]string),
		flags:  make(map[string]map[string]bool),
	}
}

// ParseMyCnf parses my.cnf text.
func ParseMyCnf(text string) (*MyCnf, error) {
	c := NewMyCnf()
	section := ""
	for i, ln := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(ln)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") || strings.HasPrefix(trimmed, ";") {
			continue
		}
		if strings.HasPrefix(trimmed, "[") {
			if !strings.HasSuffix(trimmed, "]") {
				return nil, fmt.Errorf("my.cnf line %d: malformed section %q", i+1, trimmed)
			}
			section = strings.TrimSpace(trimmed[1 : len(trimmed)-1])
			if section == "" {
				return nil, fmt.Errorf("my.cnf line %d: empty section name", i+1)
			}
			c.ensureSection(section)
			continue
		}
		if section == "" {
			return nil, fmt.Errorf("my.cnf line %d: entry %q before any section", i+1, trimmed)
		}
		if eq := strings.IndexByte(trimmed, '='); eq >= 0 {
			key := strings.TrimSpace(trimmed[:eq])
			val := strings.TrimSpace(trimmed[eq+1:])
			if key == "" {
				return nil, fmt.Errorf("my.cnf line %d: empty key", i+1)
			}
			c.Set(section, key, val)
		} else {
			c.SetFlag(section, trimmed)
		}
	}
	return c, nil
}

func (c *MyCnf) ensureSection(section string) {
	if _, ok := c.values[section]; ok {
		return
	}
	c.values[section] = make(map[string]string)
	c.flags[section] = make(map[string]bool)
	c.sections = append(c.sections, section)
}

// Set assigns key=value in a section, creating the section if needed.
func (c *MyCnf) Set(section, key, value string) {
	c.ensureSection(section)
	c.values[section][key] = value
}

// SetInt assigns an integer value.
func (c *MyCnf) SetInt(section, key string, value int) {
	c.Set(section, key, strconv.Itoa(value))
}

// SetFlag sets a bare flag (e.g. "skip-networking") in a section.
func (c *MyCnf) SetFlag(section, flag string) {
	c.ensureSection(section)
	c.flags[section][flag] = true
}

// Get returns the value for section/key.
func (c *MyCnf) Get(section, key string) (string, bool) {
	vals, ok := c.values[section]
	if !ok {
		return "", false
	}
	v, ok := vals[key]
	return v, ok
}

// GetInt returns an integer value for section/key.
func (c *MyCnf) GetInt(section, key string) (int, error) {
	v, ok := c.Get(section, key)
	if !ok {
		return 0, fmt.Errorf("my.cnf: [%s] %s not found", section, key)
	}
	return strconv.Atoi(v)
}

// HasFlag reports whether a bare flag is set.
func (c *MyCnf) HasFlag(section, flag string) bool {
	return c.flags[section] != nil && c.flags[section][flag]
}

// Unset removes a key from a section.
func (c *MyCnf) Unset(section, key string) {
	if vals, ok := c.values[section]; ok {
		delete(vals, key)
	}
}

// Sections returns section names in first-appearance order.
func (c *MyCnf) Sections() []string { return append([]string(nil), c.sections...) }

// Render returns the my.cnf text with deterministic key ordering.
func (c *MyCnf) Render() string {
	var b strings.Builder
	for i, s := range c.sections {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "[%s]\n", s)
		keys := make([]string, 0, len(c.values[s]))
		for k := range c.values[s] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%s\n", k, c.values[s][k])
		}
		fl := make([]string, 0, len(c.flags[s]))
		for f := range c.flags[s] {
			fl = append(fl, f)
		}
		sort.Strings(fl)
		for _, f := range fl {
			fmt.Fprintf(&b, "%s\n", f)
		}
	}
	return b.String()
}
