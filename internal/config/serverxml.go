package config

import (
	"encoding/xml"
	"fmt"
)

// ServerXML models the subset of Tomcat 3.3's server.xml that Jade's
// Tomcat wrapper manipulates: the server's HTTP and AJP connectors and the
// JDBC resource pointing at the database (or database load balancer).
type ServerXML struct {
	XMLName    xml.Name        `xml:"Server"`
	Name       string          `xml:"name,attr"`
	Connectors []ConnectorXML  `xml:"Connector"`
	Resources  []JDBCResource  `xml:"Resource"`
	Contexts   []WebContextXML `xml:"Context"`
}

// ConnectorXML is one protocol endpoint.
type ConnectorXML struct {
	Protocol string `xml:"protocol,attr"` // "http" or "ajp13"
	Port     int    `xml:"port,attr"`
	Address  string `xml:"address,attr,omitempty"`
}

// JDBCResource is a named database connection target.
type JDBCResource struct {
	Name   string `xml:"name,attr"`
	Driver string `xml:"driver,attr"`
	URL    string `xml:"url,attr"` // e.g. "jdbc:mysql://node5:3306/rubis"
}

// WebContextXML is a deployed web application.
type WebContextXML struct {
	Path    string `xml:"path,attr"`
	DocBase string `xml:"docBase,attr"`
}

// NewServerXML returns a server.xml skeleton for the named instance.
func NewServerXML(name string) *ServerXML { return &ServerXML{Name: name} }

// ParseServerXML parses server.xml text.
func ParseServerXML(text string) (*ServerXML, error) {
	var s ServerXML
	if err := xml.Unmarshal([]byte(text), &s); err != nil {
		return nil, fmt.Errorf("server.xml: %w", err)
	}
	return &s, nil
}

// Render returns indented XML text.
func (s *ServerXML) Render() (string, error) {
	out, err := xml.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", fmt.Errorf("server.xml: %w", err)
	}
	return xml.Header + string(out) + "\n", nil
}

// SetConnector adds or replaces the connector for a protocol.
func (s *ServerXML) SetConnector(protocol string, port int, address string) {
	for i := range s.Connectors {
		if s.Connectors[i].Protocol == protocol {
			s.Connectors[i].Port = port
			s.Connectors[i].Address = address
			return
		}
	}
	s.Connectors = append(s.Connectors, ConnectorXML{Protocol: protocol, Port: port, Address: address})
}

// Connector returns the connector for a protocol.
func (s *ServerXML) Connector(protocol string) (ConnectorXML, bool) {
	for _, c := range s.Connectors {
		if c.Protocol == protocol {
			return c, true
		}
	}
	return ConnectorXML{}, false
}

// SetJDBC adds or replaces the named JDBC resource.
func (s *ServerXML) SetJDBC(name, driver, url string) {
	for i := range s.Resources {
		if s.Resources[i].Name == name {
			s.Resources[i].Driver = driver
			s.Resources[i].URL = url
			return
		}
	}
	s.Resources = append(s.Resources, JDBCResource{Name: name, Driver: driver, URL: url})
}

// JDBC returns the named JDBC resource.
func (s *ServerXML) JDBC(name string) (JDBCResource, bool) {
	for _, r := range s.Resources {
		if r.Name == name {
			return r, true
		}
	}
	return JDBCResource{}, false
}

// RemoveJDBC deletes the named JDBC resource.
func (s *ServerXML) RemoveJDBC(name string) {
	for i, r := range s.Resources {
		if r.Name == name {
			s.Resources = append(s.Resources[:i], s.Resources[i+1:]...)
			return
		}
	}
}
