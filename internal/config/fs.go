// Package config implements the proprietary configuration-file formats of
// the legacy software Jade manages: Apache's httpd.conf directive format,
// mod_jk's worker.properties Java-properties format, a Tomcat server.xml
// subset, and MySQL's my.cnf INI format.
//
// The point of the paper is that Jade's wrappers hide these heterogeneous
// formats behind a uniform component interface: a SetAttribute("port")
// call on the Apache component is *reflected into httpd.conf*. This
// package is what the wrappers write through, and what the simulated
// legacy servers parse at startup — keeping the legacy boundary honest.
package config

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FS is the minimal file-system surface the legacy layer needs. MemFS is
// used in simulations and tests; DirFS writes through to a real directory
// so the examples can show actual generated config files.
type FS interface {
	ReadFile(path string) ([]byte, error)
	WriteFile(path string, data []byte) error
	Remove(path string) error
	List() []string
}

// MemFS is an in-memory FS.
type MemFS struct {
	files map[string][]byte
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string][]byte)} }

// ReadFile returns the file's contents.
func (m *MemFS) ReadFile(path string) ([]byte, error) {
	b, ok := m.files[path]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: path, Err: os.ErrNotExist}
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// WriteFile creates or replaces the file.
func (m *MemFS) WriteFile(path string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.files[path] = cp
	return nil
}

// Remove deletes the file.
func (m *MemFS) Remove(path string) error {
	if _, ok := m.files[path]; !ok {
		return &os.PathError{Op: "remove", Path: path, Err: os.ErrNotExist}
	}
	delete(m.files, path)
	return nil
}

// List returns all paths sorted.
func (m *MemFS) List() []string {
	out := make([]string, 0, len(m.files))
	for p := range m.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// DirFS stores files under a root directory on the real file system.
type DirFS struct {
	Root string
}

// NewDirFS returns a DirFS rooted at root, creating it if needed.
func NewDirFS(root string) (*DirFS, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("config: creating workspace: %w", err)
	}
	return &DirFS{Root: root}, nil
}

func (d *DirFS) resolve(path string) (string, error) {
	clean := filepath.Clean("/" + path)
	full := filepath.Join(d.Root, clean)
	if !strings.HasPrefix(full, filepath.Clean(d.Root)+string(os.PathSeparator)) {
		return "", fmt.Errorf("config: path %q escapes workspace", path)
	}
	return full, nil
}

// ReadFile reads a workspace-relative path.
func (d *DirFS) ReadFile(path string) ([]byte, error) {
	full, err := d.resolve(path)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(full)
}

// WriteFile writes a workspace-relative path, creating parent directories.
func (d *DirFS) WriteFile(path string, data []byte) error {
	full, err := d.resolve(path)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return err
	}
	return os.WriteFile(full, data, 0o644)
}

// Remove deletes a workspace-relative path.
func (d *DirFS) Remove(path string) error {
	full, err := d.resolve(path)
	if err != nil {
		return err
	}
	return os.Remove(full)
}

// List walks the workspace and returns relative paths sorted.
func (d *DirFS) List() []string {
	var out []string
	_ = filepath.Walk(d.Root, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		rel, rerr := filepath.Rel(d.Root, p)
		if rerr == nil {
			out = append(out, rel)
		}
		return nil
	})
	sort.Strings(out)
	return out
}
