package config

import (
	"fmt"
	"strconv"
	"strings"
)

// HTTPDConf models Apache's httpd.conf: an ordered list of
// "Directive value..." lines with '#' comments. Directive names are
// case-insensitive (as in Apache); the original spelling and ordering are
// preserved on render so a wrapper edit produces a minimal diff.
type HTTPDConf struct {
	lines []httpdLine
}

type httpdLine struct {
	raw       string // verbatim line for comments/blank lines
	directive string // empty for raw lines
	args      []string
}

// ParseHTTPDConf parses httpd.conf text. A final newline is treated as a
// line terminator, not as an extra blank line, so parse and Render are
// mutually inverse.
func ParseHTTPDConf(text string) (*HTTPDConf, error) {
	c := &HTTPDConf{}
	text = strings.TrimSuffix(text, "\n")
	if text == "" {
		return c, nil
	}
	for i, ln := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(ln)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			c.lines = append(c.lines, httpdLine{raw: ln})
			continue
		}
		fields := strings.Fields(trimmed)
		if len(fields) < 2 {
			return nil, fmt.Errorf("httpd.conf line %d: directive %q has no value", i+1, trimmed)
		}
		c.lines = append(c.lines, httpdLine{directive: fields[0], args: fields[1:]})
	}
	return c, nil
}

// NewHTTPDConf returns an empty configuration.
func NewHTTPDConf() *HTTPDConf { return &HTTPDConf{} }

// Get returns the arguments of the first occurrence of the directive
// (case-insensitive) and whether it exists.
func (c *HTTPDConf) Get(directive string) ([]string, bool) {
	for _, l := range c.lines {
		if strings.EqualFold(l.directive, directive) {
			return append([]string(nil), l.args...), true
		}
	}
	return nil, false
}

// GetString returns the single string value of a directive or "".
func (c *HTTPDConf) GetString(directive string) string {
	if args, ok := c.Get(directive); ok && len(args) > 0 {
		return args[0]
	}
	return ""
}

// GetInt returns the integer value of a directive.
func (c *HTTPDConf) GetInt(directive string) (int, error) {
	s := c.GetString(directive)
	if s == "" {
		return 0, fmt.Errorf("httpd.conf: directive %q not found", directive)
	}
	return strconv.Atoi(s)
}

// Set replaces the first occurrence of the directive or appends it.
func (c *HTTPDConf) Set(directive string, args ...string) {
	if len(args) == 0 {
		panic("httpd.conf: Set with no value")
	}
	for i, l := range c.lines {
		if strings.EqualFold(l.directive, directive) {
			c.lines[i].args = append([]string(nil), args...)
			return
		}
	}
	c.lines = append(c.lines, httpdLine{directive: directive, args: append([]string(nil), args...)})
}

// Unset removes every occurrence of the directive.
func (c *HTTPDConf) Unset(directive string) {
	out := c.lines[:0]
	for _, l := range c.lines {
		if !strings.EqualFold(l.directive, directive) {
			out = append(out, l)
		}
	}
	c.lines = out
}

// Render returns the file text.
func (c *HTTPDConf) Render() string {
	var b strings.Builder
	for _, l := range c.lines {
		if l.directive == "" {
			b.WriteString(l.raw)
		} else {
			b.WriteString(l.directive)
			for _, a := range l.args {
				b.WriteByte(' ')
				b.WriteString(a)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Directives returns the directive names in file order (first occurrence).
func (c *HTTPDConf) Directives() []string {
	seen := map[string]bool{}
	var out []string
	for _, l := range c.lines {
		if l.directive == "" {
			continue
		}
		k := strings.ToLower(l.directive)
		if !seen[k] {
			seen[k] = true
			out = append(out, l.directive)
		}
	}
	return out
}
