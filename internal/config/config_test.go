package config

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

// --- FS ---

func TestMemFSRoundTrip(t *testing.T) {
	fs := NewMemFS()
	if _, err := fs.ReadFile("missing"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("read missing: %v", err)
	}
	if err := fs.WriteFile("a/b.conf", []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("a/b.conf")
	if err != nil || string(got) != "x" {
		t.Fatalf("read = %q, %v", got, err)
	}
	// Mutating the returned slice must not affect the stored copy.
	got[0] = 'y'
	again, _ := fs.ReadFile("a/b.conf")
	if string(again) != "x" {
		t.Fatal("MemFS returned aliased buffer")
	}
	if list := fs.List(); len(list) != 1 || list[0] != "a/b.conf" {
		t.Fatalf("List = %v", list)
	}
	if err := fs.Remove("a/b.conf"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("a/b.conf"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestDirFSRoundTripAndEscape(t *testing.T) {
	root := t.TempDir()
	fs, err := NewDirFS(filepath.Join(root, "ws"))
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("node1/httpd.conf", []byte("Listen 80\n")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("node1/httpd.conf")
	if err != nil || string(got) != "Listen 80\n" {
		t.Fatalf("read = %q, %v", got, err)
	}
	list := fs.List()
	if len(list) != 1 || filepath.ToSlash(list[0]) != "node1/httpd.conf" {
		t.Fatalf("List = %v", list)
	}
	// Path traversal is confined to the workspace: the leading ../ is
	// cleaned away rather than escaping.
	if err := fs.WriteFile("../escape.txt", []byte("no")); err != nil {
		t.Fatalf("cleaned write failed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "escape.txt")); err == nil {
		t.Fatal("file written outside workspace root")
	}
	if err := fs.Remove("node1/httpd.conf"); err != nil {
		t.Fatal(err)
	}
}

// --- httpd.conf ---

const sampleHTTPD = `# Apache configuration
Listen 80
ServerName node1
DocumentRoot /var/www

# modules
LoadModule jk_module modules/mod_jk.so
JkWorkersFile conf/worker.properties
`

func TestHTTPDParseGetSet(t *testing.T) {
	c, err := ParseHTTPDConf(sampleHTTPD)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.GetString("Listen"); got != "80" {
		t.Fatalf("Listen = %q", got)
	}
	if n, err := c.GetInt("listen"); err != nil || n != 80 {
		t.Fatalf("case-insensitive GetInt = %d, %v", n, err)
	}
	if _, err := c.GetInt("DocumentRoot"); err == nil {
		t.Fatal("GetInt on non-numeric value should fail")
	}
	if _, err := c.GetInt("NoSuch"); err == nil {
		t.Fatal("GetInt on missing directive should fail")
	}
	c.Set("Listen", "8080")
	if got := c.GetString("Listen"); got != "8080" {
		t.Fatalf("after Set, Listen = %q", got)
	}
	// Render preserves comments and ordering.
	out := c.Render()
	if !strings.HasPrefix(out, "# Apache configuration\nListen 8080\n") {
		t.Fatalf("render lost structure:\n%s", out)
	}
	// New directive appends.
	c.Set("KeepAlive", "On")
	if !strings.Contains(c.Render(), "KeepAlive On\n") {
		t.Fatal("appended directive missing")
	}
	c.Unset("LoadModule")
	if _, ok := c.Get("LoadModule"); ok {
		t.Fatal("Unset left directive behind")
	}
}

func TestHTTPDParseRejectsBareDirective(t *testing.T) {
	if _, err := ParseHTTPDConf("Listen\n"); err == nil {
		t.Fatal("bare directive accepted")
	}
}

func TestHTTPDRoundTripIdentity(t *testing.T) {
	c, err := ParseHTTPDConf(sampleHTTPD)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParseHTTPDConf(c.Render())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Directives(), c2.Directives()) {
		t.Fatalf("directives changed: %v vs %v", c.Directives(), c2.Directives())
	}
}

func TestHTTPDSetNoValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set with no args did not panic")
		}
	}()
	NewHTTPDConf().Set("Listen")
}

// --- worker.properties ---

func TestWorkerPropertiesPaperExample(t *testing.T) {
	// The exact file from the paper's Fig. 4 manual-reconfiguration text.
	text := `worker.worker.port=8098
worker.worker.host=node3
worker.worker.type=ajp13
worker.worker.lbfactor=100
worker.list=worker, loadbalancer
worker.loadbalancer.type=lb
worker.loadbalancer.balanced_workers=worker
`
	w, err := ParseWorkerProperties(text)
	if err != nil {
		t.Fatal(err)
	}
	wk, ok := w.Worker("worker")
	if !ok {
		t.Fatal("worker not found")
	}
	if wk.Host != "node3" || wk.Port != 8098 || wk.Type != "ajp13" || wk.LBFactor != 100 {
		t.Fatalf("worker = %+v", wk)
	}
	lb, ok := w.Worker("loadbalancer")
	if !ok || lb.Type != "lb" {
		t.Fatalf("loadbalancer = %+v, ok=%v", lb, ok)
	}
	if !reflect.DeepEqual(lb.Balanced, []string{"worker"}) {
		t.Fatalf("balanced = %v", lb.Balanced)
	}
	if !reflect.DeepEqual(w.List(), []string{"worker", "loadbalancer"}) {
		t.Fatalf("list = %v", w.List())
	}
}

func TestWorkerPropertiesRebind(t *testing.T) {
	// The Fig. 4 scenario: rebinding Apache from tomcat1 to tomcat2 is a
	// worker rewrite.
	w := NewWorkerProperties()
	w.SetWorker(Worker{Name: "tomcat1", Host: "node2", Port: 66})
	if got := w.WorkerNames(); !reflect.DeepEqual(got, []string{"tomcat1"}) {
		t.Fatalf("names = %v", got)
	}
	w.RemoveWorker("tomcat1")
	w.SetWorker(Worker{Name: "tomcat2", Host: "node3", Port: 8098, LBFactor: 100})
	wk, ok := w.Worker("tomcat2")
	if !ok || wk.Host != "node3" || wk.Port != 8098 {
		t.Fatalf("tomcat2 = %+v ok=%v", wk, ok)
	}
	if _, ok := w.Worker("tomcat1"); ok {
		t.Fatal("tomcat1 still present after rebind")
	}
	if !reflect.DeepEqual(w.List(), []string{"tomcat2"}) {
		t.Fatalf("list = %v", w.List())
	}
	out := w.Render()
	if !strings.Contains(out, "worker.tomcat2.host=node3") ||
		strings.Contains(out, "tomcat1") {
		t.Fatalf("rendered file wrong:\n%s", out)
	}
}

func TestWorkerPropertiesBalancerMembership(t *testing.T) {
	w := NewWorkerProperties()
	w.SetWorker(Worker{Name: "w1", Host: "a", Port: 1})
	w.SetWorker(Worker{Name: "w2", Host: "b", Port: 2})
	w.SetWorker(Worker{Name: "lb", Type: "lb", Balanced: []string{"w1", "w2"}})
	w.RemoveWorker("w1")
	lb, _ := w.Worker("lb")
	if !reflect.DeepEqual(lb.Balanced, []string{"w2"}) {
		t.Fatalf("balanced after removal = %v", lb.Balanced)
	}
	// Removing the last plain worker leaves only the balancer listed.
	w.RemoveWorker("w2")
	if !reflect.DeepEqual(w.List(), []string{"lb"}) {
		t.Fatalf("list = %v", w.List())
	}
}

func TestWorkerPropertiesRoundTrip(t *testing.T) {
	w := NewWorkerProperties()
	w.SetWorker(Worker{Name: "t1", Host: "node2", Port: 8009, LBFactor: 50})
	w.SetWorker(Worker{Name: "lb", Type: "lb", Balanced: []string{"t1"}})
	w2, err := ParseWorkerProperties(w.Render())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.Workers(), w2.Workers()) {
		t.Fatalf("round trip changed workers:\n%v\n%v", w.Workers(), w2.Workers())
	}
}

func TestWorkerPropertiesEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty worker name did not panic")
		}
	}()
	NewWorkerProperties().SetWorker(Worker{})
}

func TestPropertiesParsingErrors(t *testing.T) {
	if _, err := ParseProperties("novalue\n"); err == nil {
		t.Fatal("line without '=' accepted")
	}
	if _, err := ParseProperties("=value\n"); err == nil {
		t.Fatal("empty key accepted")
	}
	p, err := ParseProperties("# comment\n! also comment\n\nk = v\n")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Get("k"); v != "v" {
		t.Fatalf("k = %q", v)
	}
	p.Unset("nonexistent") // no-op
	p.Unset("k")
	if _, ok := p.Get("k"); ok {
		t.Fatal("Unset failed")
	}
}

// Property: Properties render/parse round trips preserve all key/values.
func TestPropertyPropertiesRoundTrip(t *testing.T) {
	f := func(keys []string, vals []string) bool {
		p := NewProperties()
		want := map[string]string{}
		for i, k := range keys {
			// The parser TrimSpaces keys, so any Unicode whitespace (not
			// just ASCII space) must be neutralized for the round trip.
			k = strings.Map(func(r rune) rune {
				if r == '=' || r == '#' || r == '!' || unicode.IsSpace(r) {
					return 'x'
				}
				return r
			}, k)
			if k == "" {
				continue
			}
			v := "v"
			if i < len(vals) {
				v = strings.Map(func(r rune) rune {
					if r == '\n' {
						return 'x'
					}
					return r
				}, vals[i])
				v = strings.TrimSpace(v)
			}
			p.Set(k, v)
			want[k] = v
		}
		p2, err := ParseProperties(p.Render())
		if err != nil {
			return false
		}
		for k, v := range want {
			got, ok := p2.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return len(p2.Keys()) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- my.cnf ---

const sampleMyCnf = `# MySQL configuration
[mysqld]
port=3306
datadir=/var/lib/mysql
skip-networking

[client]
port=3306
`

func TestMyCnfParseAndQuery(t *testing.T) {
	c, err := ParseMyCnf(sampleMyCnf)
	if err != nil {
		t.Fatal(err)
	}
	if p, err := c.GetInt("mysqld", "port"); err != nil || p != 3306 {
		t.Fatalf("port = %d, %v", p, err)
	}
	if !c.HasFlag("mysqld", "skip-networking") {
		t.Fatal("flag not parsed")
	}
	if c.HasFlag("client", "skip-networking") {
		t.Fatal("flag leaked across sections")
	}
	if _, ok := c.Get("nosection", "port"); ok {
		t.Fatal("missing section returned value")
	}
	if _, err := c.GetInt("mysqld", "datadir"); err == nil {
		t.Fatal("GetInt on path accepted")
	}
	if got := c.Sections(); !reflect.DeepEqual(got, []string{"mysqld", "client"}) {
		t.Fatalf("sections = %v", got)
	}
}

func TestMyCnfMutation(t *testing.T) {
	c := NewMyCnf()
	c.SetInt("mysqld", "port", 3307)
	c.Set("mysqld", "bind-address", "node5")
	c.SetFlag("mysqld", "log-bin")
	out := c.Render()
	for _, want := range []string{"[mysqld]", "port=3307", "bind-address=node5", "log-bin"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	c.Unset("mysqld", "port")
	if _, ok := c.Get("mysqld", "port"); ok {
		t.Fatal("Unset failed")
	}
	c.Unset("ghost", "port") // no-op on missing section
}

func TestMyCnfRoundTrip(t *testing.T) {
	c, err := ParseMyCnf(sampleMyCnf)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParseMyCnf(c.Render())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := c2.Get("mysqld", "datadir"); v != "/var/lib/mysql" {
		t.Fatalf("datadir lost: %q", v)
	}
	if !c2.HasFlag("mysqld", "skip-networking") {
		t.Fatal("flag lost in round trip")
	}
}

func TestMyCnfParseErrors(t *testing.T) {
	cases := []string{
		"[unclosed\nport=1\n",
		"[]\n",
		"port=3306\n", // entry before any section
	}
	for _, text := range cases {
		if _, err := ParseMyCnf(text); err == nil {
			t.Errorf("ParseMyCnf(%q) accepted invalid input", text)
		}
	}
}

// --- server.xml ---

func TestServerXMLRoundTrip(t *testing.T) {
	s := NewServerXML("tomcat1")
	s.SetConnector("http", 8080, "")
	s.SetConnector("ajp13", 8009, "node2")
	s.SetJDBC("rubis", "com.mysql.jdbc.Driver", "jdbc:mysql://node5:3306/rubis")
	s.Contexts = append(s.Contexts, WebContextXML{Path: "/rubis", DocBase: "rubis"})
	text, err := s.Render()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseServerXML(text)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Name != "tomcat1" {
		t.Fatalf("name = %q", s2.Name)
	}
	c, ok := s2.Connector("ajp13")
	if !ok || c.Port != 8009 || c.Address != "node2" {
		t.Fatalf("ajp13 connector = %+v ok=%v", c, ok)
	}
	r, ok := s2.JDBC("rubis")
	if !ok || r.URL != "jdbc:mysql://node5:3306/rubis" {
		t.Fatalf("jdbc = %+v ok=%v", r, ok)
	}
	if len(s2.Contexts) != 1 || s2.Contexts[0].Path != "/rubis" {
		t.Fatalf("contexts = %+v", s2.Contexts)
	}
}

func TestServerXMLReplaceSemantics(t *testing.T) {
	s := NewServerXML("t")
	s.SetConnector("http", 8080, "")
	s.SetConnector("http", 9090, "")
	if len(s.Connectors) != 1 || s.Connectors[0].Port != 9090 {
		t.Fatalf("SetConnector did not replace: %+v", s.Connectors)
	}
	s.SetJDBC("db", "d", "url1")
	s.SetJDBC("db", "d", "url2")
	if len(s.Resources) != 1 || s.Resources[0].URL != "url2" {
		t.Fatalf("SetJDBC did not replace: %+v", s.Resources)
	}
	s.RemoveJDBC("db")
	if len(s.Resources) != 0 {
		t.Fatal("RemoveJDBC failed")
	}
	s.RemoveJDBC("ghost") // no-op
	if _, ok := s.Connector("ajp13"); ok {
		t.Fatal("missing connector reported present")
	}
}

func TestServerXMLParseError(t *testing.T) {
	if _, err := ParseServerXML("<Server><unclosed></Server>"); err == nil {
		t.Fatal("malformed XML accepted")
	}
}
