package legacy

import (
	"fmt"

	"jade/internal/cluster"
	"jade/internal/fluid"
	"jade/internal/obs"
	"jade/internal/sqlengine"
	"jade/internal/trace"
)

// MySQL simulates a MySQL 4.0 server: a process holding one sqlengine
// database instance. At startup it parses my.cnf for its port and
// registers that listener. Query execution consumes database-tier CPU on
// the node and then actually executes the statement, so replica
// consistency is a real, checkable property.
type MySQL struct {
	process
	confPath string
	db       *sqlengine.Engine
}

// MySQLOptions tunes a MySQL instance.
type MySQLOptions struct {
	MemoryMB   float64
	StartDelay float64
	StopDelay  float64
}

// DefaultMySQLOptions mirrors a modest MySQL 4.0 footprint.
func DefaultMySQLOptions() MySQLOptions {
	return MySQLOptions{MemoryMB: 256, StartDelay: 5, StopDelay: 2}
}

// NewMySQL creates a MySQL process on node with an empty database; its
// my.cnf lives at <node>/<name>/my.cnf in the environment's FS.
func NewMySQL(env *Env, name string, node *cluster.Node, opts MySQLOptions) *MySQL {
	m := &MySQL{
		process: process{
			env:        env,
			name:       name,
			node:       node,
			memMB:      opts.MemoryMB,
			startDelay: opts.StartDelay,
			stopDelay:  opts.StopDelay,
		},
		confPath: node.Name() + "/" + name + "/my.cnf",
		db:       sqlengine.New(),
	}
	m.obs = obs.NewTierMetrics(env.Obs, "db", name)
	m.watchNode()
	return m
}

// ConfPath returns the my.cnf path in the workspace FS.
func (m *MySQL) ConfPath() string { return m.confPath }

// FluidModel exposes the server's service model to the fluid workload
// network. Query CPU demand travels with each query, so CostPerUnit is
// zero and the fluid station's demand is calibrated from the mix: a tier
// of k replicas behind C-JDBC puts DBRead/k + DBWrite on each node per
// request (reads load-balanced, writes broadcast under RAIDb-1).
func (m *MySQL) FluidModel() fluid.ServiceModel {
	return fluid.ServiceModel{
		Name: m.name,
		Node: m.node,
		Up:   func() bool { return m.state == Running },
	}
}

// DB exposes the underlying database engine. The C-JDBC controller uses
// it to install snapshots on fresh replicas and to compare fingerprints;
// it is the moral equivalent of direct datadir access.
func (m *MySQL) DB() *sqlengine.Engine { return m.db }

// LoadSnapshot replaces the database state (installing a dump on a fresh
// replica). Only legal while the server is stopped, as with a real datadir
// copy.
func (m *MySQL) LoadSnapshot(snap *sqlengine.Engine) error {
	if m.state == Running || m.state == Starting {
		return fmt.Errorf("%w: cannot load snapshot into running mysql %s", ErrAlreadyRunning, m.name)
	}
	m.db = snap.Snapshot()
	return nil
}

// Start boots the server: parse my.cnf and listen on the configured port.
func (m *MySQL) Start(done func(error)) {
	m.begin(func() error {
		raw, err := m.env.FS.ReadFile(m.confPath)
		if err != nil {
			return fmt.Errorf("mysql %s: reading my.cnf: %w", m.name, err)
		}
		cnf, err := ParseMyCnf(raw)
		if err != nil {
			return fmt.Errorf("mysql %s: %w", m.name, err)
		}
		port, err := cnf.GetInt("mysqld", "port")
		if err != nil {
			return fmt.Errorf("mysql %s: my.cnf: %w", m.name, err)
		}
		return m.listen(fmt.Sprintf("%s:%d", m.node.Name(), port), m)
	}, done)
}

// Stop shuts the server down. Its database state persists across
// stop/start, as a real datadir would.
func (m *MySQL) Stop(done func(error)) { m.end(done) }

// ExecSQL consumes CPU for the query, then executes the statement against
// the database.
func (m *MySQL) ExecSQL(q Query, done func(error)) {
	if m.state != Running {
		m.obs.Drop()
		m.failed++
		done(fmt.Errorf("%w: mysql %s is %s", ErrNotRunning, m.name, m.state))
		return
	}
	if m.obs != nil {
		start := m.obs.Begin()
		orig := done
		done = func(err error) {
			m.obs.End(start, err)
			orig(err)
		}
	}
	// The "db" span brackets local queue wait + execution; "busy" records
	// that interval and "svc" the ideal service time so the attribution
	// walker can split the leaf tier into queue/service components.
	var span trace.ID
	var busy float64
	submitted := m.env.Eng.Now()
	if q.TraceSpan != 0 {
		span = m.env.Trace.Begin(q.TraceSpan, "db", m.name)
		orig := done
		done = func(err error) {
			m.env.Trace.End(span, trace.Ff("busy", busy),
				trace.Ff("svc", q.Cost/m.node.Config().CPUCapacity), trace.Outcome(err))
			orig(err)
		}
	}
	m.node.Submit(q.Cost, func() {
		busy = m.env.Eng.Now() - submitted
		if _, err := m.db.Exec(q.SQL); err != nil {
			m.failed++
			done(fmt.Errorf("mysql %s: %w", m.name, err))
			return
		}
		m.served++
		done(nil)
	}, func() {
		m.failed++
		done(fmt.Errorf("%w: mysql %s", ErrServerFailed, m.name))
	})
}
