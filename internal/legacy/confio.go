package legacy

import "jade/internal/config"

// Thin adapters between the FS byte API and the config parsers, shared by
// the server startup paths and by tests.

// ParseHTTPD parses httpd.conf bytes.
func ParseHTTPD(raw []byte) (*config.HTTPDConf, error) {
	return config.ParseHTTPDConf(string(raw))
}

// ParseWorkers parses worker.properties bytes.
func ParseWorkers(raw []byte) (*config.WorkerProperties, error) {
	return config.ParseWorkerProperties(string(raw))
}

// ParseServerXML parses server.xml bytes.
func ParseServerXML(raw []byte) (*config.ServerXML, error) {
	return config.ParseServerXML(string(raw))
}

// ParseMyCnf parses my.cnf bytes.
func ParseMyCnf(raw []byte) (*config.MyCnf, error) {
	return config.ParseMyCnf(string(raw))
}
