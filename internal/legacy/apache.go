package legacy

import (
	"fmt"

	"jade/internal/cluster"
	"jade/internal/fluid"
	"jade/internal/obs"
	"jade/internal/trace"
)

// Apache simulates an Apache 1.3/mod_jk web server. At startup it parses
// its httpd.conf for the Listen port and its worker.properties for the AJP
// routes to Tomcat instances; it can only forward dynamic requests to
// workers that appear in that file, which is how the paper's qualitative
// scenario (Fig. 4) rebinds Apache1 from Tomcat1 to Tomcat2 by rewriting
// worker.properties between a stop and a start.
type Apache struct {
	process
	confPath    string
	workersPath string

	// Resolved at startup from worker.properties.
	routes []route
	rrNext int
}

type route struct {
	name   string
	addr   string
	target HTTPHandler
}

// ApacheOptions tunes an Apache instance.
type ApacheOptions struct {
	MemoryMB   float64
	StartDelay float64
	StopDelay  float64
}

// DefaultApacheOptions mirrors a lightweight Apache footprint.
func DefaultApacheOptions() ApacheOptions {
	return ApacheOptions{MemoryMB: 64, StartDelay: 2, StopDelay: 1}
}

// NewApache creates an Apache process on node. Its configuration lives at
// <node>/<name>/httpd.conf and <node>/<name>/worker.properties in the
// environment's FS.
func NewApache(env *Env, name string, node *cluster.Node, opts ApacheOptions) *Apache {
	a := &Apache{
		process: process{
			env:        env,
			name:       name,
			node:       node,
			memMB:      opts.MemoryMB,
			startDelay: opts.StartDelay,
			stopDelay:  opts.StopDelay,
		},
		confPath:    node.Name() + "/" + name + "/httpd.conf",
		workersPath: node.Name() + "/" + name + "/worker.properties",
	}
	a.obs = obs.NewTierMetrics(env.Obs, "web", name)
	a.watchNode()
	return a
}

// ConfPath returns the httpd.conf path in the workspace FS.
func (a *Apache) ConfPath() string { return a.confPath }

// WorkersPath returns the worker.properties path in the workspace FS.
func (a *Apache) WorkersPath() string { return a.workersPath }

// Start boots the server: it parses httpd.conf and worker.properties,
// resolves every declared AJP worker on the network and begins listening.
func (a *Apache) Start(done func(error)) {
	a.begin(func() error {
		raw, err := a.env.FS.ReadFile(a.confPath)
		if err != nil {
			return fmt.Errorf("apache %s: reading httpd.conf: %w", a.name, err)
		}
		conf, err := ParseHTTPD(raw)
		if err != nil {
			return fmt.Errorf("apache %s: %w", a.name, err)
		}
		port, err := conf.GetInt("Listen")
		if err != nil {
			return fmt.Errorf("apache %s: httpd.conf: %w", a.name, err)
		}
		a.routes = nil
		a.rrNext = 0
		if wraw, err := a.env.FS.ReadFile(a.workersPath); err == nil {
			workers, err := ParseWorkers(wraw)
			if err != nil {
				return fmt.Errorf("apache %s: %w", a.name, err)
			}
			for _, w := range workers.Workers() {
				if w.Type == "lb" {
					continue // balancer entries reference plain workers
				}
				addr := fmt.Sprintf("%s:%d", w.Host, w.Port)
				target, err := a.env.Net.LookupHTTP(addr)
				if err != nil {
					return fmt.Errorf("apache %s: worker %s: %w", a.name, w.Name, err)
				}
				a.routes = append(a.routes, route{name: w.Name, addr: addr, target: target})
			}
		}
		return a.listen(fmt.Sprintf("%s:%d", a.node.Name(), port), a)
	}, done)
}

// Stop shuts the server down (the paper's "apachectl stop").
func (a *Apache) Stop(done func(error)) { a.end(done) }

// Routes returns the worker names resolved at the last start.
func (a *Apache) Routes() []string {
	out := make([]string, len(a.routes))
	for i, r := range a.routes {
		out[i] = r.name
	}
	return out
}

// FluidModel exposes the server's service model to the fluid workload
// network. The web-tier CPU demand travels with each request (WebCost),
// not with the server, so CostPerUnit is zero and the fluid station's
// demand is calibrated from the mix (rubis.FluidDemand.Web).
func (a *Apache) FluidModel() fluid.ServiceModel {
	return fluid.ServiceModel{
		Name: a.name,
		Node: a.node,
		Up:   func() bool { return a.state == Running },
	}
}

// HandleHTTP serves a request: static documents cost web-tier CPU only;
// dynamic documents additionally forward to an AJP worker (round-robin
// across resolved workers, as mod_jk's lb worker does).
func (a *Apache) HandleHTTP(req *WebRequest, done func(error)) {
	if a.state != Running {
		a.obs.Drop()
		a.failed++
		done(fmt.Errorf("%w: apache %s is %s", ErrNotRunning, a.name, a.state))
		return
	}
	if a.obs != nil {
		start := a.obs.Begin()
		orig := done
		done = func(err error) {
			a.obs.End(start, err)
			orig(err)
		}
	}
	// The "web" span brackets local queue wait + service plus the AJP
	// forward; "busy" records the local interval and "svc" the ideal
	// service time for the attribution walker's component split.
	var span trace.ID
	var busy float64
	parent := req.TraceSpan
	submitted := a.env.Eng.Now()
	if parent != 0 {
		span = a.env.Trace.Begin(parent, "web", a.name)
		req.TraceSpan = span
		orig := done
		done = func(err error) {
			req.TraceSpan = parent
			a.env.Trace.End(span, trace.Ff("busy", busy),
				trace.Ff("svc", req.WebCost/a.node.Config().CPUCapacity), trace.Outcome(err))
			orig(err)
		}
	}
	a.node.Submit(req.WebCost, func() {
		busy = a.env.Eng.Now() - submitted
		if req.Static {
			a.served++
			done(nil)
			return
		}
		if len(a.routes) == 0 {
			a.failed++
			done(fmt.Errorf("%w: apache %s has no AJP worker", ErrNoBackend, a.name))
			return
		}
		r := a.routes[a.rrNext%len(a.routes)]
		a.rrNext++
		a.env.Net.ForwardHTTP(a.node.Name(), "app", r.target, req, func(err error) {
			if err != nil {
				a.failed++
			} else {
				a.served++
			}
			done(err)
		})
	}, func() {
		a.failed++
		done(fmt.Errorf("%w: apache %s", ErrServerFailed, a.name))
	})
}
