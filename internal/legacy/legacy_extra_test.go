package legacy

import (
	"errors"
	"fmt"
	"testing"

	"jade/internal/config"
)

func TestPortConflictOnSameNode(t *testing.T) {
	// Two MySQL instances on the same node with the same my.cnf port:
	// the second start must fail with an address conflict, as a real
	// bind(2) would.
	env, pool := testEnv(t, 1)
	node := allocNode(t, pool)
	m1 := NewMySQL(env, "mysqlA", node, DefaultMySQLOptions())
	m2 := NewMySQL(env, "mysqlB", node, DefaultMySQLOptions())
	writeMySQLConf(t, env, m1, 3306)
	writeMySQLConf(t, env, m2, 3306)
	startOK(t, env.Eng, m1.Start)
	var got error
	m2.Start(func(err error) { got = err })
	env.Eng.Run()
	if !errors.Is(got, ErrAddressInUse) {
		t.Fatalf("conflicting port start: %v", got)
	}
	if m2.State() != Stopped {
		t.Fatalf("state after conflict = %v", m2.State())
	}
	// Distinct ports coexist.
	writeMySQLConf(t, env, m2, 3307)
	startOK(t, env.Eng, m2.Start)
}

func TestMemoryReleasedOnStop(t *testing.T) {
	env, pool := testEnv(t, 1)
	node := allocNode(t, pool)
	m := NewMySQL(env, "mysql1", node, DefaultMySQLOptions())
	writeMySQLConf(t, env, m, 3306)
	base := node.MemoryUsed()
	startOK(t, env.Eng, m.Start)
	running := node.MemoryUsed()
	if running <= base {
		t.Fatalf("start did not allocate memory: %v -> %v", base, running)
	}
	var serr error = errors.New("pending")
	m.Stop(func(err error) { serr = err })
	env.Eng.Run()
	if serr != nil {
		t.Fatal(serr)
	}
	if node.MemoryUsed() != base {
		t.Fatalf("stop leaked memory: %v, want %v", node.MemoryUsed(), base)
	}
}

func TestStartOnFailedNodeFailsFast(t *testing.T) {
	env, pool := testEnv(t, 1)
	node := allocNode(t, pool)
	m := NewMySQL(env, "mysql1", node, DefaultMySQLOptions())
	writeMySQLConf(t, env, m, 3306)
	node.Fail()
	var got error
	m.Start(func(err error) { got = err })
	env.Eng.Run()
	if !errors.Is(got, ErrServerFailed) {
		t.Fatalf("start on failed node: %v", got)
	}
}

func TestNodeFailsDuringStartup(t *testing.T) {
	env, pool := testEnv(t, 1)
	node := allocNode(t, pool)
	m := NewMySQL(env, "mysql1", node, DefaultMySQLOptions())
	writeMySQLConf(t, env, m, 3306)
	var got error
	m.Start(func(err error) { got = err })
	// MySQL's start delay is 5 s; crash the node mid-boot.
	env.Eng.After(1, "crash", node.Fail)
	env.Eng.Run()
	if !errors.Is(got, ErrServerFailed) {
		t.Fatalf("start on crashing node: %v", got)
	}
	if m.State() != Failed {
		t.Fatalf("state = %v, want FAILED", m.State())
	}
}

func TestApacheMixedStaticDynamicWorkload(t *testing.T) {
	env, a, tc, _ := buildStack(t)
	done := 0
	for i := 0; i < 10; i++ {
		static := i%2 == 0
		a.HandleHTTP(&WebRequest{Static: static, WebCost: 0.001, AppCost: 0.001},
			func(err error) {
				if err != nil {
					t.Errorf("request failed: %v", err)
				}
				done++
			})
	}
	env.Eng.Run()
	if done != 10 {
		t.Fatalf("completed = %d", done)
	}
	if a.Served() != 10 {
		t.Fatalf("apache served = %d", a.Served())
	}
	if tc.Served() != 5 {
		t.Fatalf("tomcat served = %d, want only the dynamic half", tc.Served())
	}
}

func TestConcurrentRequestsShareTierCPU(t *testing.T) {
	// Two simultaneous dynamic requests with 0.1 s app cost each on one
	// Tomcat: processor sharing makes both finish at ~0.2 s + overheads,
	// not 0.1 s.
	env, a, _, _ := buildStack(t)
	var finish []float64
	t0 := env.Eng.Now()
	for i := 0; i < 2; i++ {
		a.HandleHTTP(&WebRequest{WebCost: 0, AppCost: 0.1}, func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			finish = append(finish, env.Eng.Now()-t0)
		})
	}
	env.Eng.Run()
	if len(finish) != 2 {
		t.Fatalf("completions = %d", len(finish))
	}
	for _, f := range finish {
		if f < 0.199 {
			t.Fatalf("finish at %v: requests did not share the CPU", f)
		}
	}
}

func TestTomcatResolvesCJDBCStyleAddress(t *testing.T) {
	// The JDBC URL may point at any SQL executor on the network; a
	// second MySQL stands in for the C-JDBC controller here.
	env, pool := testEnv(t, 2)
	m := NewMySQL(env, "virtualdb", allocNode(t, pool), DefaultMySQLOptions())
	cnf := config.NewMyCnf()
	cnf.SetInt("mysqld", "port", 25322)
	if err := env.FS.WriteFile(m.ConfPath(), []byte(cnf.Render())); err != nil {
		t.Fatal(err)
	}
	startOK(t, env.Eng, m.Start)
	tc := NewTomcat(env, "tomcat1", allocNode(t, pool), DefaultTomcatOptions())
	writeTomcatConf(t, env, tc, 8009, fmt.Sprintf("jdbc:mysql://%s:25322/rubis", m.Node().Name()))
	startOK(t, env.Eng, tc.Start)
	if tc.JDBCAddr() != m.Node().Name()+":25322" {
		t.Fatalf("jdbc addr = %q", tc.JDBCAddr())
	}
}

func TestListenerFreedAfterStopAllowsRestartElsewhere(t *testing.T) {
	// Stop a server, start another one on the same address: the network
	// slot must have been released.
	env, pool := testEnv(t, 1)
	node := allocNode(t, pool)
	m1 := NewMySQL(env, "mysqlA", node, DefaultMySQLOptions())
	writeMySQLConf(t, env, m1, 3306)
	startOK(t, env.Eng, m1.Start)
	var serr error = errors.New("pending")
	m1.Stop(func(err error) { serr = err })
	env.Eng.Run()
	if serr != nil {
		t.Fatal(serr)
	}
	m2 := NewMySQL(env, "mysqlB", node, DefaultMySQLOptions())
	writeMySQLConf(t, env, m2, 3306)
	startOK(t, env.Eng, m2.Start)
}
