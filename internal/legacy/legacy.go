// Package legacy simulates the legacy software tier of the paper's
// testbed: Apache web servers, Tomcat servlet servers and MySQL database
// servers. Each is a process bound to a cluster node, started and stopped
// through script-like operations, and configured exclusively through its
// proprietary configuration file (httpd.conf, server.xml, my.cnf) which it
// parses at startup — exactly the boundary Jade's wrappers manage.
//
// Processes register network listeners in a Network registry keyed by
// "host:port" strings, so a server can only reach a peer whose address
// appears in its own configuration file. A Jade binding operation
// therefore has to be *reflected into the legacy configuration* to have
// any effect, as in the paper.
package legacy

import (
	"errors"
	"fmt"
	"sort"

	"jade/internal/cluster"
	"jade/internal/config"
	"jade/internal/obs"
	"jade/internal/sim"
	"jade/internal/trace"
)

// Errors returned by the legacy layer.
var (
	ErrNotRunning     = errors.New("legacy: server not running")
	ErrAlreadyRunning = errors.New("legacy: server already running")
	ErrAddressInUse   = errors.New("legacy: address already in use")
	ErrNoRoute        = errors.New("legacy: no listener at address")
	ErrServerFailed   = errors.New("legacy: server failed")
	ErrNoBackend      = errors.New("legacy: no backend configured")
)

// State is a server process state.
type State int

// Process lifecycle states.
const (
	Stopped State = iota
	Starting
	Running
	Failed
)

func (s State) String() string {
	switch s {
	case Stopped:
		return "STOPPED"
	case Starting:
		return "STARTING"
	case Running:
		return "RUNNING"
	case Failed:
		return "FAILED"
	}
	return "?"
}

// Query is one SQL request flowing from the application tier to the
// database tier, with its CPU service demand on a database node.
type Query struct {
	SQL  string
	Cost float64 // CPU-seconds on a database node
	// TraceSpan, when non-zero, is the telemetry span this query belongs
	// to; servers along the path attach their own child spans under it.
	TraceSpan trace.ID
}

// WebRequest is one HTTP request flowing through the tiers.
type WebRequest struct {
	Interaction string
	Static      bool    // served by the web tier without forwarding
	WebCost     float64 // CPU-seconds on the web tier
	AppCost     float64 // CPU-seconds on the application tier
	Queries     []Query // database work issued by the servlet
	// SessionKey identifies the client session the request belongs to.
	// Affinity-aware balancer policies (rendezvous) use it to keep a
	// session pinned to one worker; other policies ignore it.
	SessionKey string
	// TraceSpan, when non-zero, is the telemetry span covering this
	// request; each hop (balancer, servlet server, database proxy) opens
	// its child span under the one it received and rewrites the field for
	// the next hop, yielding a causal L4/PLB -> Tomcat -> C-JDBC -> MySQL
	// tree.
	TraceSpan trace.ID
}

// HTTPHandler is anything that can serve a WebRequest: a Tomcat instance,
// a PLB or L4 balancer, or an Apache server.
type HTTPHandler interface {
	HandleHTTP(req *WebRequest, done func(err error))
}

// SQLExecutor is anything that can execute a Query: a MySQL instance or
// the C-JDBC controller.
type SQLExecutor interface {
	ExecSQL(q Query, done func(err error))
}

// Transport, when installed on a Network, carries inter-tier calls as
// simulated messages with latency, loss, retries and partitions instead
// of direct function calls (implemented by netsim.Fabric). Endpoints are
// node names; pseudo-endpoints like "client" name off-cluster parties.
type Transport interface {
	// Call performs one RPC from endpoint from to endpoint to for tier
	// class tier: attempt runs on the callee side each time a request
	// message arrives (possibly more than once under retries) and must
	// route its result through reply; done fires exactly once with the
	// final outcome, which may be a timeout error.
	Call(from, to, tier string, attempt func(reply func(error)), done func(error))
}

// Network is the simulated LAN: a registry of listeners by "host:port".
// Without a Transport installed, calls between listeners are direct and
// instantaneous; with one, every forward traverses the simulated fabric.
type Network struct {
	listeners map[string]any
	transport Transport
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{listeners: make(map[string]any)} }

// SetTransport installs (or, with nil, removes) the message transport.
func (n *Network) SetTransport(t Transport) { n.transport = t }

// Transport returns the installed transport (nil when calls are direct).
func (n *Network) Transport() Transport { return n.transport }

// endpointName extracts the network endpoint of a handler: the name of
// the node it runs on, or "" for handlers not tied to a node (an empty
// endpoint is still subject to default latency and loss, but cannot be
// partitioned).
func endpointName(target any) string {
	if nn, ok := target.(interface{ Node() *cluster.Node }); ok {
		if node := nn.Node(); node != nil {
			return node.Name()
		}
	}
	return ""
}

// ForwardHTTP delivers req to target on behalf of the endpoint from,
// over the transport when one is installed and directly otherwise. tier
// names the RPC budget class ("front", "web", "app").
func (n *Network) ForwardHTTP(from, tier string, target HTTPHandler, req *WebRequest, done func(error)) {
	if n.transport == nil {
		target.HandleHTTP(req, done)
		return
	}
	n.transport.Call(from, endpointName(target), tier, func(reply func(error)) {
		target.HandleHTTP(req, reply)
	}, done)
}

// ForwardSQL delivers q to target on behalf of the endpoint from, over
// the transport when one is installed and directly otherwise.
func (n *Network) ForwardSQL(from, tier string, target SQLExecutor, q Query, done func(error)) {
	if n.transport == nil {
		target.ExecSQL(q, done)
		return
	}
	n.transport.Call(from, endpointName(target), tier, func(reply func(error)) {
		target.ExecSQL(q, reply)
	}, done)
}

// remoteHTTP adapts ForwardHTTP to the HTTPHandler interface.
type remoteHTTP struct {
	n          *Network
	from, tier string
	target     HTTPHandler
}

func (r remoteHTTP) HandleHTTP(req *WebRequest, done func(error)) {
	r.n.ForwardHTTP(r.from, r.tier, r.target, req, done)
}

// RemoteHTTP wraps target so every request traverses the network from
// the named endpoint (used to put the client emulator behind the fabric).
// Without a transport it returns target unchanged.
func (n *Network) RemoteHTTP(from, tier string, target HTTPHandler) HTTPHandler {
	if n.transport == nil {
		return target
	}
	return remoteHTTP{n: n, from: from, tier: tier, target: target}
}

// Register binds a listener object to an address.
func (n *Network) Register(addr string, srv any) error {
	if _, ok := n.listeners[addr]; ok {
		return fmt.Errorf("%w: %s", ErrAddressInUse, addr)
	}
	n.listeners[addr] = srv
	return nil
}

// Unregister removes the listener at addr (no-op when absent).
func (n *Network) Unregister(addr string) { delete(n.listeners, addr) }

// LookupHTTP resolves an address to an HTTP handler.
func (n *Network) LookupHTTP(addr string) (HTTPHandler, error) {
	srv, ok := n.listeners[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, addr)
	}
	h, ok := srv.(HTTPHandler)
	if !ok {
		return nil, fmt.Errorf("legacy: listener at %s is not an HTTP handler", addr)
	}
	return h, nil
}

// LookupSQL resolves an address to a SQL executor.
func (n *Network) LookupSQL(addr string) (SQLExecutor, error) {
	srv, ok := n.listeners[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, addr)
	}
	h, ok := srv.(SQLExecutor)
	if !ok {
		return nil, fmt.Errorf("legacy: listener at %s is not a SQL executor", addr)
	}
	return h, nil
}

// Addresses returns registered addresses, sorted.
func (n *Network) Addresses() []string {
	out := make([]string, 0, len(n.listeners))
	for a := range n.listeners {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Env bundles the shared substrate a legacy process runs in.
type Env struct {
	Eng *sim.Engine
	Net *Network
	FS  config.FS
	// Trace, when set, lets servers attach child spans to requests that
	// carry a TraceSpan. All Tracer methods are nil-receiver safe, so the
	// field may stay unset (the standalone unit tests do).
	Trace *trace.Tracer
	// Obs, when set, is the metrics registry servers register their
	// per-instance request instruments in. Like Trace, it may stay unset:
	// a nil registry hands out nil instruments whose methods no-op.
	Obs *obs.Registry
}

// process holds state common to the three server kinds.
type process struct {
	env        *Env
	name       string
	node       *cluster.Node
	state      State
	memMB      float64
	startDelay float64
	stopDelay  float64
	listenAddr string
	obs        *obs.TierMetrics

	served uint64
	failed uint64
}

func (p *process) Name() string        { return p.name }
func (p *process) Node() *cluster.Node { return p.node }
func (p *process) State() State        { return p.state }
func (p *process) Served() uint64      { return p.served }
func (p *process) Errors() uint64      { return p.failed }

// watchNode fails the process when its node crashes.
func (p *process) watchNode() {
	p.node.OnFail(func(*cluster.Node) {
		if p.state == Running || p.state == Starting {
			p.state = Failed
			if p.listenAddr != "" {
				p.env.Net.Unregister(p.listenAddr)
				p.listenAddr = ""
			}
		}
	})
}

// begin transitions to Starting and schedules readiness after the start
// delay, mimicking the latency of an init script. ready runs with the
// process still in Starting; it must set Running or report an error.
func (p *process) begin(ready func() error, done func(error)) {
	finish := func(err error) {
		if done != nil {
			done(err)
		}
	}
	if p.state == Running || p.state == Starting {
		finish(fmt.Errorf("%w: %s", ErrAlreadyRunning, p.name))
		return
	}
	if p.node.Failed() {
		finish(fmt.Errorf("%w: node %s is down", ErrServerFailed, p.node.Name()))
		return
	}
	if err := p.node.AllocMemory(p.memMB); err != nil {
		finish(err)
		return
	}
	p.state = Starting
	p.env.Eng.After(p.startDelay, p.name+":start", func() {
		if p.state != Starting { // node failed meanwhile
			finish(fmt.Errorf("%w: %s", ErrServerFailed, p.name))
			return
		}
		if err := ready(); err != nil {
			p.state = Stopped
			p.node.FreeMemory(p.memMB)
			finish(err)
			return
		}
		p.state = Running
		finish(nil)
	})
}

// end transitions to Stopped after the stop delay.
func (p *process) end(done func(error)) {
	finish := func(err error) {
		if done != nil {
			done(err)
		}
	}
	if p.state != Running {
		finish(fmt.Errorf("%w: %s is %s", ErrNotRunning, p.name, p.state))
		return
	}
	if p.listenAddr != "" {
		p.env.Net.Unregister(p.listenAddr)
		p.listenAddr = ""
	}
	p.env.Eng.After(p.stopDelay, p.name+":stop", func() {
		p.state = Stopped
		p.node.FreeMemory(p.memMB)
		finish(nil)
	})
}

// Terminate hard-kills the process — the management plane's STONITH for
// a replica it no longer trusts (e.g. a live server being discarded
// after a false-positive failure suspicion). The listener disappears and
// memory is reclaimed immediately, with no graceful stop delay; jobs
// already submitted to the node's CPU run to completion.
func (p *process) Terminate() {
	if p.listenAddr != "" {
		p.env.Net.Unregister(p.listenAddr)
		p.listenAddr = ""
	}
	if p.state == Running || p.state == Starting {
		p.node.FreeMemory(p.memMB)
	}
	p.state = Stopped
}

func (p *process) listen(addr string, self any) error {
	if err := p.env.Net.Register(addr, self); err != nil {
		return err
	}
	p.listenAddr = addr
	return nil
}
