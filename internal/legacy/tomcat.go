package legacy

import (
	"fmt"
	"strconv"
	"strings"

	"jade/internal/cluster"
	"jade/internal/fluid"
	"jade/internal/obs"
	"jade/internal/trace"
)

// Tomcat simulates a Tomcat 3.3 servlet server. At startup it parses its
// server.xml for the AJP/HTTP connector ports and for the JDBC resource
// URL naming the database endpoint (a MySQL instance or the C-JDBC
// controller). A servlet request consumes application-tier CPU, then
// issues its SQL statements sequentially over the resolved JDBC
// connection, as the RUBiS servlets do through Connector/J.
type Tomcat struct {
	process
	confPath string
	jdbc     SQLExecutor
	jdbcAddr string
}

// TomcatOptions tunes a Tomcat instance.
type TomcatOptions struct {
	MemoryMB   float64
	StartDelay float64
	StopDelay  float64
}

// DefaultTomcatOptions mirrors a JVM-hosting footprint.
func DefaultTomcatOptions() TomcatOptions {
	return TomcatOptions{MemoryMB: 200, StartDelay: 8, StopDelay: 2}
}

// NewTomcat creates a Tomcat process on node; its server.xml lives at
// <node>/<name>/server.xml in the environment's FS.
func NewTomcat(env *Env, name string, node *cluster.Node, opts TomcatOptions) *Tomcat {
	t := &Tomcat{
		process: process{
			env:        env,
			name:       name,
			node:       node,
			memMB:      opts.MemoryMB,
			startDelay: opts.StartDelay,
			stopDelay:  opts.StopDelay,
		},
		confPath: node.Name() + "/" + name + "/server.xml",
	}
	t.obs = obs.NewTierMetrics(env.Obs, "app", name)
	t.watchNode()
	return t
}

// ConfPath returns the server.xml path in the workspace FS.
func (t *Tomcat) ConfPath() string { return t.confPath }

// FluidModel exposes the server's service model to the fluid workload
// network. The application-tier CPU demand travels with each request
// (AppCost), so CostPerUnit is zero and the fluid station's demand is
// calibrated from the mix (rubis.FluidDemand.App); a tier of k Tomcats
// load-balances that demand, putting App/k on each node per request.
func (t *Tomcat) FluidModel() fluid.ServiceModel {
	return fluid.ServiceModel{
		Name: t.name,
		Node: t.node,
		Up:   func() bool { return t.state == Running },
	}
}

// JDBCAddr returns the database address resolved at the last start.
func (t *Tomcat) JDBCAddr() string { return t.jdbcAddr }

// ParseJDBCURL extracts "host:port" from a jdbc:mysql://host:port/db URL.
func ParseJDBCURL(url string) (string, error) {
	const prefix = "jdbc:mysql://"
	if !strings.HasPrefix(url, prefix) {
		return "", fmt.Errorf("legacy: unsupported JDBC URL %q", url)
	}
	rest := strings.TrimPrefix(url, prefix)
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return "", fmt.Errorf("legacy: JDBC URL %q has no database path", url)
	}
	hostport := rest[:slash]
	host, port, ok := strings.Cut(hostport, ":")
	if !ok || host == "" {
		return "", fmt.Errorf("legacy: JDBC URL %q has no host:port", url)
	}
	if _, err := strconv.Atoi(port); err != nil {
		return "", fmt.Errorf("legacy: JDBC URL %q has bad port: %w", url, err)
	}
	return hostport, nil
}

// Start boots the server: parse server.xml, resolve the JDBC resource (if
// declared), register the AJP connector on the network.
func (t *Tomcat) Start(done func(error)) {
	t.begin(func() error {
		raw, err := t.env.FS.ReadFile(t.confPath)
		if err != nil {
			return fmt.Errorf("tomcat %s: reading server.xml: %w", t.name, err)
		}
		sx, err := ParseServerXML(raw)
		if err != nil {
			return fmt.Errorf("tomcat %s: %w", t.name, err)
		}
		conn, ok := sx.Connector("ajp13")
		if !ok {
			return fmt.Errorf("tomcat %s: server.xml has no ajp13 connector", t.name)
		}
		t.jdbc = nil
		t.jdbcAddr = ""
		if res, ok := sx.JDBC("rubis"); ok {
			addr, err := ParseJDBCURL(res.URL)
			if err != nil {
				return fmt.Errorf("tomcat %s: %w", t.name, err)
			}
			exec, err := t.env.Net.LookupSQL(addr)
			if err != nil {
				return fmt.Errorf("tomcat %s: jdbc: %w", t.name, err)
			}
			t.jdbc = exec
			t.jdbcAddr = addr
		}
		return t.listen(fmt.Sprintf("%s:%d", t.node.Name(), conn.Port), t)
	}, done)
}

// Stop shuts the server down.
func (t *Tomcat) Stop(done func(error)) { t.end(done) }

// HandleHTTP runs the servlet: application-tier CPU, then the request's
// SQL statements sequentially through the JDBC connection.
func (t *Tomcat) HandleHTTP(req *WebRequest, done func(error)) {
	if t.state != Running {
		t.obs.Drop()
		t.failed++
		done(fmt.Errorf("%w: tomcat %s is %s", ErrNotRunning, t.name, t.state))
		return
	}
	if t.obs != nil {
		start := t.obs.Begin()
		orig := done
		done = func(err error) {
			t.obs.End(start, err)
			orig(err)
		}
	}
	// "busy" records the local queue-wait + service interval on the app
	// node and "svc" the ideal service time; the attribution walker uses
	// them to split the span's self-time into queue/service/network.
	var span trace.ID
	var busy float64
	submitted := t.env.Eng.Now()
	if req.TraceSpan != 0 {
		span = t.env.Trace.Begin(req.TraceSpan, "app", t.name, trace.Fi("queries", len(req.Queries)))
		orig := done
		done = func(err error) {
			t.env.Trace.End(span, trace.Ff("busy", busy),
				trace.Ff("svc", req.AppCost/t.node.Config().CPUCapacity), trace.Outcome(err))
			orig(err)
		}
	}
	t.node.Submit(req.AppCost, func() {
		busy = t.env.Eng.Now() - submitted
		t.runQueries(req, span, 0, done)
	}, func() {
		t.failed++
		done(fmt.Errorf("%w: tomcat %s", ErrServerFailed, t.name))
	})
}

func (t *Tomcat) runQueries(req *WebRequest, span trace.ID, i int, done func(error)) {
	if i >= len(req.Queries) {
		t.served++
		done(nil)
		return
	}
	if t.jdbc == nil {
		t.failed++
		done(fmt.Errorf("%w: tomcat %s has no JDBC resource", ErrNoBackend, t.name))
		return
	}
	q := req.Queries[i]
	q.TraceSpan = span
	t.env.Net.ForwardSQL(t.node.Name(), "sql", t.jdbc, q, func(err error) {
		if err != nil {
			t.failed++
			done(fmt.Errorf("tomcat %s: query %d: %w", t.name, i, err))
			return
		}
		t.runQueries(req, span, i+1, done)
	})
}
