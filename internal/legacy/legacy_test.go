package legacy

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"jade/internal/cluster"
	"jade/internal/config"
	"jade/internal/sim"
)

// testEnv builds a simulation environment with a pool of nodes.
func testEnv(t *testing.T, nodes int) (*Env, *cluster.Pool) {
	t.Helper()
	eng := sim.NewEngine(42)
	pool := cluster.NewPool(eng, "node", nodes, cluster.DefaultConfig())
	return &Env{Eng: eng, Net: NewNetwork(), FS: config.NewMemFS()}, pool
}

func allocNode(t *testing.T, p *cluster.Pool) *cluster.Node {
	t.Helper()
	n, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// writeMySQLConf writes a minimal my.cnf for m.
func writeMySQLConf(t *testing.T, env *Env, m *MySQL, port int) {
	t.Helper()
	cnf := config.NewMyCnf()
	cnf.SetInt("mysqld", "port", port)
	if err := env.FS.WriteFile(m.ConfPath(), []byte(cnf.Render())); err != nil {
		t.Fatal(err)
	}
}

// writeTomcatConf writes a minimal server.xml for tc.
func writeTomcatConf(t *testing.T, env *Env, tc *Tomcat, ajpPort int, jdbcURL string) {
	t.Helper()
	sx := config.NewServerXML(tc.Name())
	sx.SetConnector("ajp13", ajpPort, "")
	if jdbcURL != "" {
		sx.SetJDBC("rubis", "com.mysql.jdbc.Driver", jdbcURL)
	}
	text, err := sx.Render()
	if err != nil {
		t.Fatal(err)
	}
	if err := env.FS.WriteFile(tc.ConfPath(), []byte(text)); err != nil {
		t.Fatal(err)
	}
}

// writeApacheConf writes httpd.conf and worker.properties for a.
func writeApacheConf(t *testing.T, env *Env, a *Apache, port int, workers []config.Worker) {
	t.Helper()
	hc := config.NewHTTPDConf()
	hc.Set("Listen", fmt.Sprintf("%d", port))
	hc.Set("ServerName", a.Node().Name())
	if err := env.FS.WriteFile(a.ConfPath(), []byte(hc.Render())); err != nil {
		t.Fatal(err)
	}
	wp := config.NewWorkerProperties()
	for _, w := range workers {
		wp.SetWorker(w)
	}
	if err := env.FS.WriteFile(a.WorkersPath(), []byte(wp.Render())); err != nil {
		t.Fatal(err)
	}
}

// startOK starts a server and fails the test on error.
func startOK(t *testing.T, eng *sim.Engine, start func(func(error))) {
	t.Helper()
	var got error = errors.New("start callback never ran")
	start(func(err error) { got = err })
	eng.Run()
	if got != nil {
		t.Fatal(got)
	}
}

// buildStack deploys mysql -> tomcat -> apache on three nodes and starts
// them in dependency order.
func buildStack(t *testing.T) (*Env, *Apache, *Tomcat, *MySQL) {
	t.Helper()
	env, pool := testEnv(t, 3)
	m := NewMySQL(env, "mysql1", allocNode(t, pool), DefaultMySQLOptions())
	writeMySQLConf(t, env, m, 3306)
	tc := NewTomcat(env, "tomcat1", allocNode(t, pool), DefaultTomcatOptions())
	writeTomcatConf(t, env, tc, 8009, "jdbc:mysql://"+m.Node().Name()+":3306/rubis")
	a := NewApache(env, "apache1", allocNode(t, pool), DefaultApacheOptions())
	writeApacheConf(t, env, a, 80, []config.Worker{
		{Name: "tomcat1", Host: tc.Node().Name(), Port: 8009},
	})
	startOK(t, env.Eng, m.Start)
	startOK(t, env.Eng, tc.Start)
	startOK(t, env.Eng, a.Start)
	return env, a, tc, m
}

func TestStackStartupAndStates(t *testing.T) {
	env, a, tc, m := buildStack(t)
	for _, s := range []interface{ State() State }{a, tc, m} {
		if s.State() != Running {
			t.Fatalf("server state = %v, want RUNNING", s.State())
		}
	}
	addrs := env.Net.Addresses()
	if len(addrs) != 3 {
		t.Fatalf("network addresses = %v", addrs)
	}
	if got := a.Routes(); len(got) != 1 || got[0] != "tomcat1" {
		t.Fatalf("apache routes = %v", got)
	}
	if tc.JDBCAddr() != m.Node().Name()+":3306" {
		t.Fatalf("tomcat jdbc addr = %q", tc.JDBCAddr())
	}
}

func TestEndToEndDynamicRequest(t *testing.T) {
	env, a, tc, m := buildStack(t)
	// Seed schema through the running stack.
	var setupErr error
	m.ExecSQL(Query{SQL: "CREATE TABLE items (id INT, name TEXT)", Cost: 0.01},
		func(err error) { setupErr = err })
	env.Eng.Run()
	if setupErr != nil {
		t.Fatal(setupErr)
	}

	req := &WebRequest{
		Interaction: "ViewItem",
		WebCost:     0.002,
		AppCost:     0.010,
		Queries: []Query{
			{SQL: "INSERT INTO items (id, name) VALUES (1, 'book')", Cost: 0.005},
			{SQL: "SELECT * FROM items WHERE id = 1", Cost: 0.005},
		},
	}
	var reqErr error = errors.New("never completed")
	t0 := env.Eng.Now()
	a.HandleHTTP(req, func(err error) { reqErr = err })
	env.Eng.Run()
	if reqErr != nil {
		t.Fatal(reqErr)
	}
	latency := env.Eng.Now() - t0
	want := req.WebCost + req.AppCost + req.Queries[0].Cost + req.Queries[1].Cost
	if latency < want-1e-9 || latency > want+1e-6 {
		t.Fatalf("unloaded latency = %v, want ≈ %v", latency, want)
	}
	if m.DB().RowCount("items") != 1 {
		t.Fatal("write did not reach the database")
	}
	if a.Served() != 1 || tc.Served() != 1 {
		t.Fatalf("served counters: apache=%d tomcat=%d", a.Served(), tc.Served())
	}
}

func TestStaticRequestServedByWebTierOnly(t *testing.T) {
	env, a, tc, _ := buildStack(t)
	req := &WebRequest{Interaction: "logo.png", Static: true, WebCost: 0.001, AppCost: 99}
	var err error = errors.New("pending")
	a.HandleHTTP(req, func(e error) { err = e })
	env.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tc.Served() != 0 {
		t.Fatal("static request reached the application tier")
	}
}

func TestApacheRoundRobinAcrossWorkers(t *testing.T) {
	env, pool := testEnv(t, 4)
	m := NewMySQL(env, "mysql1", allocNode(t, pool), DefaultMySQLOptions())
	writeMySQLConf(t, env, m, 3306)
	tc1 := NewTomcat(env, "tomcat1", allocNode(t, pool), DefaultTomcatOptions())
	writeTomcatConf(t, env, tc1, 8009, "jdbc:mysql://"+m.Node().Name()+":3306/rubis")
	tc2 := NewTomcat(env, "tomcat2", allocNode(t, pool), DefaultTomcatOptions())
	writeTomcatConf(t, env, tc2, 8009, "jdbc:mysql://"+m.Node().Name()+":3306/rubis")
	a := NewApache(env, "apache1", allocNode(t, pool), DefaultApacheOptions())
	writeApacheConf(t, env, a, 80, []config.Worker{
		{Name: "tomcat1", Host: tc1.Node().Name(), Port: 8009},
		{Name: "tomcat2", Host: tc2.Node().Name(), Port: 8009},
		{Name: "loadbalancer", Type: "lb", Balanced: []string{"tomcat1", "tomcat2"}},
	})
	startOK(t, env.Eng, m.Start)
	startOK(t, env.Eng, tc1.Start)
	startOK(t, env.Eng, tc2.Start)
	startOK(t, env.Eng, a.Start)

	for i := 0; i < 10; i++ {
		a.HandleHTTP(&WebRequest{WebCost: 0.001, AppCost: 0.001}, func(error) {})
	}
	env.Eng.Run()
	if tc1.Served() != 5 || tc2.Served() != 5 {
		t.Fatalf("round robin split = %d/%d, want 5/5", tc1.Served(), tc2.Served())
	}
}

func TestFigure4RebindScenario(t *testing.T) {
	// The paper's qualitative scenario: Apache1 bound to Tomcat1 is
	// stopped, worker.properties is rewritten to point at Tomcat2 on
	// node3, and Apache1 is restarted.
	env, pool := testEnv(t, 4)
	m := NewMySQL(env, "mysql1", allocNode(t, pool), DefaultMySQLOptions())
	writeMySQLConf(t, env, m, 3306)
	tc1 := NewTomcat(env, "tomcat1", allocNode(t, pool), DefaultTomcatOptions())
	writeTomcatConf(t, env, tc1, 66, "jdbc:mysql://"+m.Node().Name()+":3306/rubis")
	tc2 := NewTomcat(env, "tomcat2", allocNode(t, pool), DefaultTomcatOptions())
	writeTomcatConf(t, env, tc2, 8098, "jdbc:mysql://"+m.Node().Name()+":3306/rubis")
	a := NewApache(env, "apache1", allocNode(t, pool), DefaultApacheOptions())
	writeApacheConf(t, env, a, 80, []config.Worker{
		{Name: "tomcat1", Host: tc1.Node().Name(), Port: 66},
	})
	startOK(t, env.Eng, m.Start)
	startOK(t, env.Eng, tc1.Start)
	startOK(t, env.Eng, tc2.Start)
	startOK(t, env.Eng, a.Start)

	a.HandleHTTP(&WebRequest{WebCost: 0.001, AppCost: 0.001}, func(error) {})
	env.Eng.Run()
	if tc1.Served() != 1 {
		t.Fatal("initial binding did not route to tomcat1")
	}

	// Manual reconfiguration, legacy style.
	var stopErr error = errors.New("pending")
	a.Stop(func(err error) { stopErr = err })
	env.Eng.Run()
	if stopErr != nil {
		t.Fatal(stopErr)
	}
	raw, err := env.FS.ReadFile(a.WorkersPath())
	if err != nil {
		t.Fatal(err)
	}
	wp, err := ParseWorkers(raw)
	if err != nil {
		t.Fatal(err)
	}
	wp.RemoveWorker("tomcat1")
	wp.SetWorker(config.Worker{Name: "tomcat2", Host: tc2.Node().Name(), Port: 8098, LBFactor: 100})
	if err := env.FS.WriteFile(a.WorkersPath(), []byte(wp.Render())); err != nil {
		t.Fatal(err)
	}
	startOK(t, env.Eng, a.Start)

	a.HandleHTTP(&WebRequest{WebCost: 0.001, AppCost: 0.001}, func(error) {})
	env.Eng.Run()
	if tc2.Served() != 1 {
		t.Fatal("rebinding did not route to tomcat2")
	}
	if tc1.Served() != 1 {
		t.Fatal("tomcat1 received traffic after unbind")
	}
}

func TestStartFailsWithoutConfig(t *testing.T) {
	env, pool := testEnv(t, 1)
	m := NewMySQL(env, "mysql1", allocNode(t, pool), DefaultMySQLOptions())
	var got error
	m.Start(func(err error) { got = err })
	env.Eng.Run()
	if got == nil {
		t.Fatal("start without my.cnf succeeded")
	}
	if m.State() != Stopped {
		t.Fatalf("state after failed start = %v", m.State())
	}
	// Memory must have been released by the failed start.
	if m.Node().MemoryUsed() != 0 {
		t.Fatalf("failed start leaked %v MB", m.Node().MemoryUsed())
	}
}

func TestApacheStartFailsOnUnresolvableWorker(t *testing.T) {
	env, pool := testEnv(t, 1)
	a := NewApache(env, "apache1", allocNode(t, pool), DefaultApacheOptions())
	writeApacheConf(t, env, a, 80, []config.Worker{
		{Name: "ghost", Host: "node99", Port: 8009},
	})
	var got error
	a.Start(func(err error) { got = err })
	env.Eng.Run()
	if !errors.Is(got, ErrNoRoute) {
		t.Fatalf("start with dangling worker: %v", got)
	}
}

func TestDoubleStartRejected(t *testing.T) {
	env, pool := testEnv(t, 1)
	m := NewMySQL(env, "mysql1", allocNode(t, pool), DefaultMySQLOptions())
	writeMySQLConf(t, env, m, 3306)
	startOK(t, env.Eng, m.Start)
	var got error
	m.Start(func(err error) { got = err })
	env.Eng.Run()
	if !errors.Is(got, ErrAlreadyRunning) {
		t.Fatalf("double start: %v", got)
	}
}

func TestStopRejectedWhenNotRunning(t *testing.T) {
	env, pool := testEnv(t, 1)
	m := NewMySQL(env, "mysql1", allocNode(t, pool), DefaultMySQLOptions())
	var got error
	m.Stop(func(err error) { got = err })
	env.Eng.Run()
	if !errors.Is(got, ErrNotRunning) {
		t.Fatalf("stop while stopped: %v", got)
	}
}

func TestRequestsFailWhenServerStopped(t *testing.T) {
	env, a, _, m := buildStack(t)
	var stopErr error
	a.Stop(func(err error) { stopErr = err })
	env.Eng.Run()
	if stopErr != nil {
		t.Fatal(stopErr)
	}
	var got error
	a.HandleHTTP(&WebRequest{}, func(err error) { got = err })
	env.Eng.Run()
	if !errors.Is(got, ErrNotRunning) {
		t.Fatalf("request to stopped apache: %v", got)
	}
	var sqlErr error
	var mStopErr error
	m.Stop(func(err error) { mStopErr = err })
	env.Eng.Run()
	if mStopErr != nil {
		t.Fatal(mStopErr)
	}
	m.ExecSQL(Query{SQL: "SELECT 1 FROM x"}, func(err error) { sqlErr = err })
	env.Eng.Run()
	if !errors.Is(sqlErr, ErrNotRunning) {
		t.Fatalf("query to stopped mysql: %v", sqlErr)
	}
}

func TestNodeFailureAbortsInFlightRequests(t *testing.T) {
	env, a, tc, _ := buildStack(t)
	var got error
	a.HandleHTTP(&WebRequest{WebCost: 0.001, AppCost: 10}, func(err error) { got = err })
	// Crash the tomcat node while the request is in the app tier.
	env.Eng.After(0.5, "crash", func() { tc.Node().Fail() })
	env.Eng.Run()
	if !errors.Is(got, ErrServerFailed) {
		t.Fatalf("in-flight request on crashed node: %v", got)
	}
	if tc.State() != Failed {
		t.Fatalf("tomcat state = %v, want FAILED", tc.State())
	}
	// The failed server's listener is gone.
	if _, err := env.Net.LookupHTTP(tc.Node().Name() + ":8009"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("failed server still listening: %v", err)
	}
}

func TestMySQLStatePersistsAcrossRestart(t *testing.T) {
	env, pool := testEnv(t, 1)
	m := NewMySQL(env, "mysql1", allocNode(t, pool), DefaultMySQLOptions())
	writeMySQLConf(t, env, m, 3306)
	startOK(t, env.Eng, m.Start)
	var err1 error
	m.ExecSQL(Query{SQL: "CREATE TABLE t (a INT)", Cost: 0.001}, func(e error) { err1 = e })
	env.Eng.Run()
	if err1 != nil {
		t.Fatal(err1)
	}
	var stopErr error
	m.Stop(func(e error) { stopErr = e })
	env.Eng.Run()
	if stopErr != nil {
		t.Fatal(stopErr)
	}
	startOK(t, env.Eng, m.Start)
	if m.DB().RowCount("t") != 0 || len(m.DB().Tables()) != 1 {
		t.Fatal("database state lost across restart")
	}
}

func TestLoadSnapshotRequiresStoppedServer(t *testing.T) {
	env, pool := testEnv(t, 1)
	m := NewMySQL(env, "mysql1", allocNode(t, pool), DefaultMySQLOptions())
	writeMySQLConf(t, env, m, 3306)
	startOK(t, env.Eng, m.Start)
	if err := m.LoadSnapshot(m.DB()); !errors.Is(err, ErrAlreadyRunning) {
		t.Fatalf("LoadSnapshot on running server: %v", err)
	}
}

func TestParseJDBCURL(t *testing.T) {
	cases := []struct {
		url  string
		want string
		ok   bool
	}{
		{"jdbc:mysql://node5:3306/rubis", "node5:3306", true},
		{"jdbc:mysql://node5:3306/", "node5:3306", true},
		{"jdbc:postgres://x:1/db", "", false},
		{"jdbc:mysql://node5/rubis", "", false},
		{"jdbc:mysql://node5:port/rubis", "", false},
		{"jdbc:mysql://:3306/rubis", "", false},
		{"jdbc:mysql://node5:3306", "", false},
	}
	for _, c := range cases {
		got, err := ParseJDBCURL(c.url)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseJDBCURL(%q) = %q, %v", c.url, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseJDBCURL(%q) accepted invalid URL", c.url)
		}
	}
}

func TestNetworkAddressConflict(t *testing.T) {
	n := NewNetwork()
	if err := n.Register("node1:80", "x"); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("node1:80", "y"); !errors.Is(err, ErrAddressInUse) {
		t.Fatalf("duplicate register: %v", err)
	}
	n.Unregister("node1:80")
	if err := n.Register("node1:80", "z"); err != nil {
		t.Fatalf("register after unregister: %v", err)
	}
	// Wrong-protocol lookups fail cleanly.
	if _, err := n.LookupHTTP("node1:80"); err == nil ||
		strings.Contains(err.Error(), "no listener") {
		t.Fatalf("LookupHTTP on non-handler: %v", err)
	}
	if _, err := n.LookupSQL("node1:80"); err == nil {
		t.Fatal("LookupSQL on non-executor succeeded")
	}
}

func TestTomcatWithoutJDBCFailsOnQueries(t *testing.T) {
	env, pool := testEnv(t, 1)
	tc := NewTomcat(env, "tomcat1", allocNode(t, pool), DefaultTomcatOptions())
	writeTomcatConf(t, env, tc, 8009, "") // no JDBC resource
	startOK(t, env.Eng, tc.Start)
	var got error
	tc.HandleHTTP(&WebRequest{AppCost: 0.001, Queries: []Query{{SQL: "SELECT 1 FROM t"}}},
		func(err error) { got = err })
	env.Eng.Run()
	if !errors.Is(got, ErrNoBackend) {
		t.Fatalf("query without JDBC: %v", got)
	}
	// A query-free request still works.
	var ok error = errors.New("pending")
	tc.HandleHTTP(&WebRequest{AppCost: 0.001}, func(err error) { ok = err })
	env.Eng.Run()
	if ok != nil {
		t.Fatal(ok)
	}
}

func TestSQLErrorPropagatesThroughTiers(t *testing.T) {
	env, a, _, _ := buildStack(t)
	var got error
	a.HandleHTTP(&WebRequest{
		WebCost: 0.001, AppCost: 0.001,
		Queries: []Query{{SQL: "SELECT * FROM missing", Cost: 0.001}},
	}, func(err error) { got = err })
	env.Eng.Run()
	if got == nil || !strings.Contains(got.Error(), "no such table") {
		t.Fatalf("SQL error did not propagate: %v", got)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Stopped: "STOPPED", Starting: "STARTING", Running: "RUNNING",
		Failed: "FAILED", State(99): "?",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q", s, s.String())
		}
	}
}
