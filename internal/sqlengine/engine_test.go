package sqlengine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func mustExec(t *testing.T, e *Engine, sql string) Result {
	t.Helper()
	r, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return r
}

func newUsers(t *testing.T) *Engine {
	t.Helper()
	e := New()
	mustExec(t, e, "CREATE TABLE users (id INT, nickname TEXT, rating FLOAT)")
	mustExec(t, e, "INSERT INTO users (id, nickname, rating) VALUES (1, 'alice', 4.5)")
	mustExec(t, e, "INSERT INTO users (id, nickname, rating) VALUES (2, 'bob', 3.0)")
	mustExec(t, e, "INSERT INTO users (id, nickname, rating) VALUES (3, 'carol', 5.0)")
	return e
}

func TestCreateInsertSelect(t *testing.T) {
	e := newUsers(t)
	r := mustExec(t, e, "SELECT * FROM users WHERE id = 2")
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][1] != "bob" {
		t.Fatalf("nickname = %v", r.Rows[0][1])
	}
	if len(r.Columns) != 3 || r.Columns[0] != "id" {
		t.Fatalf("columns = %v", r.Columns)
	}
}

func TestSelectProjection(t *testing.T) {
	e := newUsers(t)
	r := mustExec(t, e, "SELECT nickname, id FROM users WHERE rating >= 4.0 ORDER BY id DESC")
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0] != "carol" || r.Rows[0][1] != int64(3) {
		t.Fatalf("first row = %v", r.Rows[0])
	}
	if r.Columns[0] != "nickname" {
		t.Fatalf("columns = %v", r.Columns)
	}
}

func TestSelectCountAndLimit(t *testing.T) {
	e := newUsers(t)
	r := mustExec(t, e, "SELECT COUNT(*) FROM users")
	if r.Rows[0][0] != int64(3) {
		t.Fatalf("count = %v", r.Rows[0][0])
	}
	r = mustExec(t, e, "SELECT * FROM users ORDER BY rating DESC LIMIT 1")
	if len(r.Rows) != 1 || r.Rows[0][1] != "carol" {
		t.Fatalf("top-rated = %v", r.Rows)
	}
	r = mustExec(t, e, "SELECT * FROM users LIMIT 0")
	if len(r.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned rows: %v", r.Rows)
	}
}

func TestWhereOperatorsAndAnd(t *testing.T) {
	e := newUsers(t)
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT * FROM users WHERE id != 2", 2},
		{"SELECT * FROM users WHERE id <> 2", 2},
		{"SELECT * FROM users WHERE id < 3 AND rating > 3.5", 1},
		{"SELECT * FROM users WHERE nickname = 'alice'", 1},
		{"SELECT * FROM users WHERE nickname >= 'bob'", 2},
		{"SELECT * FROM users WHERE rating <= 3.0", 1},
		{"SELECT * FROM users WHERE id >= 1 AND id <= 3 AND nickname != 'bob'", 2},
	}
	for _, c := range cases {
		r := mustExec(t, e, c.sql)
		if len(r.Rows) != c.want {
			t.Errorf("%s → %d rows, want %d", c.sql, len(r.Rows), c.want)
		}
	}
}

func TestUpdate(t *testing.T) {
	e := newUsers(t)
	r := mustExec(t, e, "UPDATE users SET rating = 1.0, nickname = 'bobby' WHERE id = 2")
	if r.Affected != 1 {
		t.Fatalf("affected = %d", r.Affected)
	}
	got := mustExec(t, e, "SELECT nickname, rating FROM users WHERE id = 2")
	if got.Rows[0][0] != "bobby" || got.Rows[0][1] != 1.0 {
		t.Fatalf("row after update = %v", got.Rows[0])
	}
	// Update with no match affects zero rows.
	r = mustExec(t, e, "UPDATE users SET rating = 0.0 WHERE id = 99")
	if r.Affected != 0 {
		t.Fatalf("phantom update affected %d", r.Affected)
	}
}

func TestDelete(t *testing.T) {
	e := newUsers(t)
	r := mustExec(t, e, "DELETE FROM users WHERE rating < 4.0")
	if r.Affected != 1 {
		t.Fatalf("affected = %d", r.Affected)
	}
	if e.RowCount("users") != 2 {
		t.Fatalf("rows left = %d", e.RowCount("users"))
	}
	// Unconditional delete clears the table.
	mustExec(t, e, "DELETE FROM users")
	if e.RowCount("users") != 0 {
		t.Fatal("unconditional delete left rows")
	}
}

func TestDropTable(t *testing.T) {
	e := newUsers(t)
	mustExec(t, e, "DROP TABLE users")
	if _, err := e.Exec("SELECT * FROM users"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("select after drop: %v", err)
	}
	if _, err := e.Exec("DROP TABLE users"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("double drop: %v", err)
	}
}

func TestErrors(t *testing.T) {
	e := newUsers(t)
	cases := []struct {
		sql  string
		want error
	}{
		{"SELECT * FROM ghosts", ErrNoSuchTable},
		{"SELECT ghost FROM users", ErrNoSuchColumn},
		{"INSERT INTO users (ghost) VALUES (1)", ErrNoSuchColumn},
		{"INSERT INTO users (id) VALUES ('str')", ErrTypeMismatch},
		{"CREATE TABLE users (id INT)", ErrTableExists},
		{"UPDATE users SET ghost = 1", ErrNoSuchColumn},
		{"SELECT * FROM users WHERE id = 'x'", ErrTypeMismatch},
	}
	for _, c := range cases {
		if _, err := e.Exec(c.sql); !errors.Is(err, c.want) {
			t.Errorf("%s → %v, want %v", c.sql, err, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROB users",
		"SELECT FROM users",
		"SELECT * users",
		"INSERT INTO users (id) VALUES (1, 2)",
		"SELECT * FROM users WHERE id LIKE 3",
		"SELECT * FROM users LIMIT -1",
		"SELECT * FROM users WHERE id = 'unterminated",
		"SELECT * FROM users trailing garbage ~",
		"CREATE TABLE t (id BLOB)",
		"SELECT * FROM users; SELECT 1 FROM users",
	}
	e := newUsers(t)
	for _, sql := range bad {
		if _, err := e.Exec(sql); err == nil {
			t.Errorf("Exec(%q) accepted invalid SQL", sql)
		}
	}
}

func TestStringEscaping(t *testing.T) {
	e := New()
	mustExec(t, e, "CREATE TABLE c (msg TEXT)")
	quoted := QuoteString("it's a 'test'")
	mustExec(t, e, fmt.Sprintf("INSERT INTO c (msg) VALUES (%s)", quoted))
	r := mustExec(t, e, "SELECT * FROM c")
	if r.Rows[0][0] != "it's a 'test'" {
		t.Fatalf("round-tripped string = %q", r.Rows[0][0])
	}
}

func TestNullSemantics(t *testing.T) {
	e := New()
	mustExec(t, e, "CREATE TABLE t (id INT, v TEXT)")
	mustExec(t, e, "INSERT INTO t (id, v) VALUES (1, NULL)")
	mustExec(t, e, "INSERT INTO t (id) VALUES (2)") // unassigned → NULL
	r := mustExec(t, e, "SELECT * FROM t WHERE v = NULL")
	if len(r.Rows) != 2 {
		t.Fatalf("NULL = NULL matched %d rows", len(r.Rows))
	}
	r = mustExec(t, e, "SELECT * FROM t WHERE v != NULL")
	if len(r.Rows) != 0 {
		t.Fatalf("v != NULL matched %d rows", len(r.Rows))
	}
	r = mustExec(t, e, "SELECT * FROM t WHERE v < 'z'")
	if len(r.Rows) != 0 {
		t.Fatalf("ordered NULL comparison matched %d rows", len(r.Rows))
	}
	// NULLs sort first.
	mustExec(t, e, "UPDATE t SET v = 'a' WHERE id = 1")
	r = mustExec(t, e, "SELECT id FROM t ORDER BY v")
	if r.Rows[0][0] != int64(2) {
		t.Fatalf("NULL did not sort first: %v", r.Rows)
	}
}

func TestIntFloatCoercion(t *testing.T) {
	e := New()
	mustExec(t, e, "CREATE TABLE t (f FLOAT)")
	mustExec(t, e, "INSERT INTO t (f) VALUES (3)") // int literal into float col
	r := mustExec(t, e, "SELECT * FROM t WHERE f = 3")
	if len(r.Rows) != 1 || r.Rows[0][0] != 3.0 {
		t.Fatalf("coerced value = %v", r.Rows)
	}
	// Mixed comparison: int column vs float literal.
	mustExec(t, e, "CREATE TABLE u (i INT)")
	mustExec(t, e, "INSERT INTO u (i) VALUES (2)")
	r = mustExec(t, e, "SELECT * FROM u WHERE i < 2.5")
	if len(r.Rows) != 1 {
		t.Fatalf("int vs float comparison rows = %d", len(r.Rows))
	}
}

func TestVarcharSizeSuffix(t *testing.T) {
	e := New()
	mustExec(t, e, "CREATE TABLE t (name VARCHAR(255), n INT)")
	mustExec(t, e, "INSERT INTO t (name, n) VALUES ('x', 1)")
	if e.RowCount("t") != 1 {
		t.Fatal("insert failed")
	}
}

func TestIsWrite(t *testing.T) {
	cases := []struct {
		sql  string
		want bool
	}{
		{"SELECT * FROM t", false},
		{"select * from t", false},
		{"INSERT INTO t (a) VALUES (1)", true},
		{"update t set a = 1", true},
		{"DELETE FROM t", true},
		{"CREATE TABLE t (a INT)", true},
		{"DROP TABLE t", true},
		{"", false},
	}
	for _, c := range cases {
		if got := IsWrite(c.sql); got != c.want {
			t.Errorf("IsWrite(%q) = %v", c.sql, got)
		}
	}
}

func TestWritesCounterOnlyCountsSuccesses(t *testing.T) {
	e := New()
	mustExec(t, e, "CREATE TABLE t (a INT)")
	before := e.Writes()
	if _, err := e.Exec("INSERT INTO ghost (a) VALUES (1)"); err == nil {
		t.Fatal("insert into missing table accepted")
	}
	if e.Writes() != before {
		t.Fatal("failed write incremented counter")
	}
	mustExec(t, e, "INSERT INTO t (a) VALUES (1)")
	if e.Writes() != before+1 {
		t.Fatalf("Writes = %d, want %d", e.Writes(), before+1)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	e := newUsers(t)
	snap := e.Snapshot()
	mustExec(t, e, "INSERT INTO users (id, nickname, rating) VALUES (4, 'dave', 2.0)")
	mustExec(t, e, "UPDATE users SET nickname = 'ALICE' WHERE id = 1")
	if snap.RowCount("users") != 3 {
		t.Fatalf("snapshot saw later insert: %d rows", snap.RowCount("users"))
	}
	r, _ := snap.Exec("SELECT nickname FROM users WHERE id = 1")
	if r.Rows[0][0] != "alice" {
		t.Fatalf("snapshot saw later update: %v", r.Rows[0][0])
	}
}

func TestFingerprintDetectsDivergence(t *testing.T) {
	a := newUsers(t)
	b := a.Snapshot()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical databases have different fingerprints")
	}
	mustExec(t, b, "UPDATE users SET rating = 0.1 WHERE id = 1")
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("diverged databases share a fingerprint")
	}
}

func TestFingerprintEmptyEngines(t *testing.T) {
	if New().Fingerprint() != New().Fingerprint() {
		t.Fatal("two empty engines differ")
	}
}

// Property: replaying the same write sequence on two fresh engines yields
// identical fingerprints — the invariant C-JDBC's recovery log rests on.
func TestPropertyReplayDeterminism(t *testing.T) {
	f := func(ops []uint8) bool {
		build := func() *Engine {
			e := New()
			if _, err := e.Exec("CREATE TABLE t (id INT, v INT)"); err != nil {
				return nil
			}
			for i, op := range ops {
				var sql string
				switch op % 3 {
				case 0:
					sql = fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, op)
				case 1:
					sql = fmt.Sprintf("UPDATE t SET v = %d WHERE id < %d", op, op%10)
				case 2:
					sql = fmt.Sprintf("DELETE FROM t WHERE v = %d", op%5)
				}
				if _, err := e.Exec(sql); err != nil {
					return nil
				}
			}
			return e
		}
		a, b := build(), build()
		if a == nil || b == nil {
			return false
		}
		return a.Fingerprint() == b.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: INSERT then COUNT round trip — count always equals inserts
// minus matching deletes.
func TestPropertyInsertCount(t *testing.T) {
	f := func(vals []int16) bool {
		e := New()
		if _, err := e.Exec("CREATE TABLE t (v INT)"); err != nil {
			return false
		}
		for _, v := range vals {
			if _, err := e.Exec(fmt.Sprintf("INSERT INTO t (v) VALUES (%d)", v)); err != nil {
				return false
			}
		}
		r, err := e.Exec("SELECT COUNT(*) FROM t")
		if err != nil {
			return false
		}
		return r.Rows[0][0] == int64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: strings with arbitrary content survive quoting and a SELECT
// round trip.
func TestPropertyStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "\x00") {
			return true // NUL not representable in our literal grammar
		}
		e := New()
		if _, err := e.Exec("CREATE TABLE t (v TEXT)"); err != nil {
			return false
		}
		if _, err := e.Exec("INSERT INTO t (v) VALUES (" + QuoteString(s) + ")"); err != nil {
			return false
		}
		r, err := e.Exec("SELECT v FROM t")
		if err != nil || len(r.Rows) != 1 {
			return false
		}
		return r.Rows[0][0] == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderByStable(t *testing.T) {
	e := New()
	mustExec(t, e, "CREATE TABLE t (k INT, seq INT)")
	for i := 0; i < 5; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t (k, seq) VALUES (1, %d)", i))
	}
	r := mustExec(t, e, "SELECT seq FROM t ORDER BY k")
	for i, row := range r.Rows {
		if row[0] != int64(i) {
			t.Fatalf("sort not stable: %v", r.Rows)
		}
	}
}

func TestTablesListing(t *testing.T) {
	e := New()
	mustExec(t, e, "CREATE TABLE zebra (a INT)")
	mustExec(t, e, "CREATE TABLE apple (a INT)")
	got := e.Tables()
	if len(got) != 2 || got[0] != "apple" || got[1] != "zebra" {
		t.Fatalf("Tables = %v", got)
	}
	if _, ok := e.Table("apple"); !ok {
		t.Fatal("Table lookup failed")
	}
}

func BenchmarkExecSelectWhere(b *testing.B) {
	e := New()
	if _, err := e.Exec("CREATE TABLE t (id INT, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := e.Exec(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'row')", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec("SELECT * FROM t WHERE id = 500"); err != nil {
			b.Fatal(err)
		}
	}
}
