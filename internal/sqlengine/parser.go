package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
)

// ColType is a column's data type.
type ColType int

// Supported column types.
const (
	TInt ColType = iota
	TFloat
	TText
)

func (t ColType) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TText:
		return "TEXT"
	}
	return "?"
}

// Column is one table column.
type Column struct {
	Name string
	Type ColType
}

// Statement is a parsed SQL statement.
type Statement interface{ isStmt() }

// CreateStmt is CREATE TABLE.
type CreateStmt struct {
	Table   string
	Columns []Column
}

// DropStmt is DROP TABLE.
type DropStmt struct{ Table string }

// InsertStmt is INSERT INTO t (cols) VALUES (vals).
type InsertStmt struct {
	Table   string
	Columns []string
	Values  []Value
}

// SelectStmt is SELECT cols FROM t [WHERE] [ORDER BY] [LIMIT].
type SelectStmt struct {
	Table   string
	Columns []string // nil means *
	Count   bool     // SELECT COUNT(*)
	Where   []Cond
	OrderBy string
	Desc    bool
	Limit   int // -1 means no limit
}

// UpdateStmt is UPDATE t SET c=v,... [WHERE].
type UpdateStmt struct {
	Table string
	Set   map[string]Value
	Where []Cond
}

// DeleteStmt is DELETE FROM t [WHERE].
type DeleteStmt struct {
	Table string
	Where []Cond
}

func (CreateStmt) isStmt() {}
func (DropStmt) isStmt()   {}
func (InsertStmt) isStmt() {}
func (SelectStmt) isStmt() {}
func (UpdateStmt) isStmt() {}
func (DeleteStmt) isStmt() {}

// Cond is one "column op literal" predicate; conditions combine with AND.
type Cond struct {
	Column string
	Op     string // = != < > <= >=
	Val    Value
}

// Value is a SQL literal: int64, float64 or string.
type Value any

type parser struct {
	toks []token
	i    int
}

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, fmt.Errorf("sql: %w (in %q)", err, truncate(src))
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: trailing input after statement (in %q)", truncate(src))
	}
	return stmt, nil
}

func truncate(s string) string {
	if len(s) > 80 {
		return s[:77] + "..."
	}
	return s
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// keyword consumes an identifier equal (case-insensitively) to kw.
func (p *parser) keyword(kw string) error {
	t := p.cur()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("expected %s, got %q", kw, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) symbol(sym string) error {
	t := p.cur()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("expected %q, got %q", sym, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("expected identifier, got %q", t.text)
	}
	p.advance()
	return strings.ToLower(t.text), nil
}

func (p *parser) literal() (Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			return f, err
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		return n, err
	case tokString:
		p.advance()
		return t.text, nil
	case tokIdent:
		if strings.EqualFold(t.text, "NULL") {
			p.advance()
			return nil, nil
		}
	}
	return nil, fmt.Errorf("expected literal, got %q", t.text)
}

func (p *parser) statement() (Statement, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("expected statement keyword, got %q", t.text)
	}
	switch strings.ToUpper(t.text) {
	case "CREATE":
		return p.createStmt()
	case "DROP":
		return p.dropStmt()
	case "INSERT":
		return p.insertStmt()
	case "SELECT":
		return p.selectStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	}
	return nil, fmt.Errorf("unsupported statement %q", t.text)
}

func (p *parser) createStmt() (Statement, error) {
	p.advance() // CREATE
	if err := p.keyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.symbol("("); err != nil {
		return nil, err
	}
	var cols []Column
	for {
		cn, err := p.ident()
		if err != nil {
			return nil, err
		}
		tn, err := p.ident()
		if err != nil {
			return nil, err
		}
		var ct ColType
		switch strings.ToUpper(tn) {
		case "INT", "INTEGER", "BIGINT":
			ct = TInt
		case "FLOAT", "DOUBLE", "REAL":
			ct = TFloat
		case "TEXT", "VARCHAR", "CHAR":
			ct = TText
		default:
			return nil, fmt.Errorf("unsupported column type %q", tn)
		}
		// Tolerate a size suffix like VARCHAR(255).
		if p.cur().kind == tokSymbol && p.cur().text == "(" {
			p.advance()
			if _, err := p.literal(); err != nil {
				return nil, err
			}
			if err := p.symbol(")"); err != nil {
				return nil, err
			}
		}
		cols = append(cols, Column{Name: cn, Type: ct})
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.symbol(")"); err != nil {
		return nil, err
	}
	return CreateStmt{Table: name, Columns: cols}, nil
}

func (p *parser) dropStmt() (Statement, error) {
	p.advance() // DROP
	if err := p.keyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return DropStmt{Table: name}, nil
}

func (p *parser) insertStmt() (Statement, error) {
	p.advance() // INSERT
	if err := p.keyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.symbol("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.symbol(")"); err != nil {
		return nil, err
	}
	if err := p.keyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.symbol("("); err != nil {
		return nil, err
	}
	var vals []Value
	for {
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.symbol(")"); err != nil {
		return nil, err
	}
	if len(cols) != len(vals) {
		return nil, fmt.Errorf("INSERT has %d columns but %d values", len(cols), len(vals))
	}
	return InsertStmt{Table: name, Columns: cols, Values: vals}, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.advance() // SELECT
	s := SelectStmt{Limit: -1}
	if p.cur().kind == tokSymbol && p.cur().text == "*" {
		p.advance()
	} else if p.peekKeyword("COUNT") {
		p.advance()
		if err := p.symbol("("); err != nil {
			return nil, err
		}
		if err := p.symbol("*"); err != nil {
			return nil, err
		}
		if err := p.symbol(")"); err != nil {
			return nil, err
		}
		s.Count = true
	} else {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.Columns = append(s.Columns, c)
			if p.cur().text == "," {
				p.advance()
				continue
			}
			break
		}
	}
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.Table = name
	if s.Where, err = p.optionalWhere(); err != nil {
		return nil, err
	}
	if p.peekKeyword("ORDER") {
		p.advance()
		if err := p.keyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.OrderBy = col
		if p.peekKeyword("DESC") {
			p.advance()
			s.Desc = true
		} else if p.peekKeyword("ASC") {
			p.advance()
		}
	}
	if p.peekKeyword("LIMIT") {
		p.advance()
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		n, ok := v.(int64)
		if !ok || n < 0 {
			return nil, fmt.Errorf("LIMIT must be a non-negative integer")
		}
		s.Limit = int(n)
	}
	return s, nil
}

func (p *parser) updateStmt() (Statement, error) {
	p.advance() // UPDATE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("SET"); err != nil {
		return nil, err
	}
	set := map[string]Value{}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.symbol("="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		set[c] = v
		if p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	where, err := p.optionalWhere()
	if err != nil {
		return nil, err
	}
	return UpdateStmt{Table: name, Set: set, Where: where}, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.advance() // DELETE
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	where, err := p.optionalWhere()
	if err != nil {
		return nil, err
	}
	return DeleteStmt{Table: name, Where: where}, nil
}

func (p *parser) optionalWhere() ([]Cond, error) {
	if !p.peekKeyword("WHERE") {
		return nil, nil
	}
	p.advance()
	var conds []Cond
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		t := p.cur()
		if t.kind != tokSymbol {
			return nil, fmt.Errorf("expected comparison operator, got %q", t.text)
		}
		op := t.text
		switch op {
		case "=", "<", ">", "<=", ">=", "!=":
		case "<>":
			op = "!="
		default:
			return nil, fmt.Errorf("unsupported operator %q", op)
		}
		p.advance()
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		conds = append(conds, Cond{Column: col, Op: op, Val: v})
		if p.peekKeyword("AND") {
			p.advance()
			continue
		}
		break
	}
	return conds, nil
}

// IsWrite reports whether a statement mutates database state. It is the
// classification C-JDBC's recovery log applies to decide what to record.
func IsWrite(sql string) bool {
	fields := strings.Fields(sql)
	if len(fields) == 0 {
		return false
	}
	switch strings.ToUpper(fields[0]) {
	case "INSERT", "UPDATE", "DELETE", "CREATE", "DROP":
		return true
	}
	return false
}
