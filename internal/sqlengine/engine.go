package sqlengine

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Errors returned by the engine.
var (
	ErrNoSuchTable  = errors.New("sql: no such table")
	ErrNoSuchColumn = errors.New("sql: no such column")
	ErrTableExists  = errors.New("sql: table already exists")
	ErrTypeMismatch = errors.New("sql: type mismatch")
)

// Row is one table row; indices align with the table's columns.
type Row []Value

// Table is one in-memory table.
type Table struct {
	Name    string
	Columns []Column
	Rows    []Row
}

func (t *Table) colIndex(name string) (int, error) {
	for i, c := range t.Columns {
		if c.Name == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, t.Name, name)
}

// Engine is one database instance (one MySQL replica's state).
type Engine struct {
	tables map[string]*Table
	writes uint64 // count of successfully executed write statements
}

// New returns an empty database.
func New() *Engine { return &Engine{tables: make(map[string]*Table)} }

// Result is the outcome of executing a statement.
type Result struct {
	Columns  []string
	Rows     []Row
	Affected int
}

// Writes returns the number of write statements executed successfully.
func (e *Engine) Writes() uint64 { return e.writes }

// Tables returns table names sorted.
func (e *Engine) Tables() []string {
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table returns the named table.
func (e *Engine) Table(name string) (*Table, bool) {
	t, ok := e.tables[name]
	return t, ok
}

// Exec parses and executes one SQL statement.
func (e *Engine) Exec(sql string) (Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return Result{}, err
	}
	return e.ExecStmt(stmt)
}

// ExecStmt executes a parsed statement.
func (e *Engine) ExecStmt(stmt Statement) (Result, error) {
	switch s := stmt.(type) {
	case CreateStmt:
		return e.execCreate(s)
	case DropStmt:
		return e.execDrop(s)
	case InsertStmt:
		return e.execInsert(s)
	case SelectStmt:
		return e.execSelect(s)
	case UpdateStmt:
		return e.execUpdate(s)
	case DeleteStmt:
		return e.execDelete(s)
	}
	return Result{}, fmt.Errorf("sql: unknown statement type %T", stmt)
}

func (e *Engine) execCreate(s CreateStmt) (Result, error) {
	if _, ok := e.tables[s.Table]; ok {
		return Result{}, fmt.Errorf("%w: %s", ErrTableExists, s.Table)
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if seen[c.Name] {
			return Result{}, fmt.Errorf("sql: duplicate column %q in CREATE TABLE %s", c.Name, s.Table)
		}
		seen[c.Name] = true
	}
	e.tables[s.Table] = &Table{Name: s.Table, Columns: append([]Column(nil), s.Columns...)}
	e.writes++
	return Result{}, nil
}

func (e *Engine) execDrop(s DropStmt) (Result, error) {
	if _, ok := e.tables[s.Table]; !ok {
		return Result{}, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	delete(e.tables, s.Table)
	e.writes++
	return Result{}, nil
}

// coerce converts a literal to the column type, allowing int→float.
func coerce(v Value, t ColType) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case TInt:
		if n, ok := v.(int64); ok {
			return n, nil
		}
	case TFloat:
		switch n := v.(type) {
		case float64:
			return n, nil
		case int64:
			return float64(n), nil
		}
	case TText:
		if s, ok := v.(string); ok {
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w: %v (%T) is not %s", ErrTypeMismatch, v, v, t)
}

func (e *Engine) execInsert(s InsertStmt) (Result, error) {
	t, ok := e.tables[s.Table]
	if !ok {
		return Result{}, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	row := make(Row, len(t.Columns))
	assigned := make([]bool, len(t.Columns))
	for i, cn := range s.Columns {
		ci, err := t.colIndex(cn)
		if err != nil {
			return Result{}, err
		}
		v, err := coerce(s.Values[i], t.Columns[ci].Type)
		if err != nil {
			return Result{}, fmt.Errorf("column %s: %w", cn, err)
		}
		row[ci] = v
		assigned[ci] = true
	}
	for i := range row {
		if !assigned[i] {
			row[i] = nil
		}
	}
	t.Rows = append(t.Rows, row)
	e.writes++
	return Result{Affected: 1}, nil
}

func matches(t *Table, row Row, conds []Cond) (bool, error) {
	for _, c := range conds {
		ci, err := t.colIndex(c.Column)
		if err != nil {
			return false, err
		}
		ok, err := compare(row[ci], c.Op, c.Val)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// compare evaluates "cell op literal". NULL compares equal only to NULL
// under "=" and unequal under "!="; ordered comparisons with NULL are
// false.
func compare(cell Value, op string, lit Value) (bool, error) {
	if cell == nil || lit == nil {
		switch op {
		case "=":
			return cell == nil && lit == nil, nil
		case "!=":
			return (cell == nil) != (lit == nil), nil
		default:
			return false, nil
		}
	}
	switch a := cell.(type) {
	case int64:
		var b int64
		switch l := lit.(type) {
		case int64:
			b = l
		case float64:
			return compareFloat(float64(a), op, l)
		default:
			return false, fmt.Errorf("%w: comparing INT with %T", ErrTypeMismatch, lit)
		}
		return compareInt(a, op, b)
	case float64:
		switch l := lit.(type) {
		case float64:
			return compareFloat(a, op, l)
		case int64:
			return compareFloat(a, op, float64(l))
		default:
			return false, fmt.Errorf("%w: comparing FLOAT with %T", ErrTypeMismatch, lit)
		}
	case string:
		b, ok := lit.(string)
		if !ok {
			return false, fmt.Errorf("%w: comparing TEXT with %T", ErrTypeMismatch, lit)
		}
		return compareString(a, op, b)
	}
	return false, fmt.Errorf("%w: unsupported cell type %T", ErrTypeMismatch, cell)
}

func compareInt(a int64, op string, b int64) (bool, error) {
	switch op {
	case "=":
		return a == b, nil
	case "!=":
		return a != b, nil
	case "<":
		return a < b, nil
	case ">":
		return a > b, nil
	case "<=":
		return a <= b, nil
	case ">=":
		return a >= b, nil
	}
	return false, fmt.Errorf("sql: bad operator %q", op)
}

func compareFloat(a float64, op string, b float64) (bool, error) {
	switch op {
	case "=":
		return a == b, nil
	case "!=":
		return a != b, nil
	case "<":
		return a < b, nil
	case ">":
		return a > b, nil
	case "<=":
		return a <= b, nil
	case ">=":
		return a >= b, nil
	}
	return false, fmt.Errorf("sql: bad operator %q", op)
}

func compareString(a, op, b string) (bool, error) {
	switch op {
	case "=":
		return a == b, nil
	case "!=":
		return a != b, nil
	case "<":
		return a < b, nil
	case ">":
		return a > b, nil
	case "<=":
		return a <= b, nil
	case ">=":
		return a >= b, nil
	}
	return false, fmt.Errorf("sql: bad operator %q", op)
}

func (e *Engine) execSelect(s SelectStmt) (Result, error) {
	t, ok := e.tables[s.Table]
	if !ok {
		return Result{}, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	var matched []Row
	for _, row := range t.Rows {
		ok, err := matches(t, row, s.Where)
		if err != nil {
			return Result{}, err
		}
		if ok {
			matched = append(matched, row)
		}
	}
	if s.OrderBy != "" {
		ci, err := t.colIndex(s.OrderBy)
		if err != nil {
			return Result{}, err
		}
		sort.SliceStable(matched, func(i, j int) bool {
			less := lessValue(matched[i][ci], matched[j][ci])
			if s.Desc {
				return lessValue(matched[j][ci], matched[i][ci])
			}
			return less
		})
	}
	if s.Limit >= 0 && len(matched) > s.Limit {
		matched = matched[:s.Limit]
	}
	if s.Count {
		return Result{Columns: []string{"count"}, Rows: []Row{{int64(len(matched))}}}, nil
	}
	if s.Columns == nil {
		cols := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			cols[i] = c.Name
		}
		out := make([]Row, len(matched))
		for i, r := range matched {
			out[i] = append(Row(nil), r...)
		}
		return Result{Columns: cols, Rows: out}, nil
	}
	idx := make([]int, len(s.Columns))
	for i, cn := range s.Columns {
		ci, err := t.colIndex(cn)
		if err != nil {
			return Result{}, err
		}
		idx[i] = ci
	}
	out := make([]Row, len(matched))
	for i, r := range matched {
		proj := make(Row, len(idx))
		for j, ci := range idx {
			proj[j] = r[ci]
		}
		out[i] = proj
	}
	return Result{Columns: append([]string(nil), s.Columns...), Rows: out}, nil
}

// lessValue orders values of the same family; NULL sorts first.
func lessValue(a, b Value) bool {
	if a == nil {
		return b != nil
	}
	if b == nil {
		return false
	}
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			return x < y
		case float64:
			return float64(x) < y
		}
	case float64:
		switch y := b.(type) {
		case float64:
			return x < y
		case int64:
			return x < float64(y)
		}
	case string:
		if y, ok := b.(string); ok {
			return x < y
		}
	}
	return false
}

func (e *Engine) execUpdate(s UpdateStmt) (Result, error) {
	t, ok := e.tables[s.Table]
	if !ok {
		return Result{}, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	// Validate assignments before mutating anything.
	type setOp struct {
		ci int
		v  Value
	}
	cols := make([]string, 0, len(s.Set))
	for cn := range s.Set {
		cols = append(cols, cn)
	}
	sort.Strings(cols)
	ops := make([]setOp, 0, len(cols))
	for _, cn := range cols {
		ci, err := t.colIndex(cn)
		if err != nil {
			return Result{}, err
		}
		v, err := coerce(s.Set[cn], t.Columns[ci].Type)
		if err != nil {
			return Result{}, fmt.Errorf("column %s: %w", cn, err)
		}
		ops = append(ops, setOp{ci: ci, v: v})
	}
	affected := 0
	for i, row := range t.Rows {
		ok, err := matches(t, row, s.Where)
		if err != nil {
			return Result{}, err
		}
		if !ok {
			continue
		}
		for _, op := range ops {
			t.Rows[i][op.ci] = op.v
		}
		affected++
	}
	e.writes++
	return Result{Affected: affected}, nil
}

func (e *Engine) execDelete(s DeleteStmt) (Result, error) {
	t, ok := e.tables[s.Table]
	if !ok {
		return Result{}, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	kept := t.Rows[:0]
	affected := 0
	for _, row := range t.Rows {
		ok, err := matches(t, row, s.Where)
		if err != nil {
			return Result{}, err
		}
		if ok {
			affected++
		} else {
			kept = append(kept, row)
		}
	}
	t.Rows = kept
	e.writes++
	return Result{Affected: affected}, nil
}

// Snapshot returns a deep copy of the database — the "initial known state"
// installed on a fresh replica before the recovery log replays the delta.
func (e *Engine) Snapshot() *Engine {
	cp := New()
	cp.writes = e.writes
	for name, t := range e.tables {
		nt := &Table{Name: t.Name, Columns: append([]Column(nil), t.Columns...)}
		nt.Rows = make([]Row, len(t.Rows))
		for i, r := range t.Rows {
			nt.Rows[i] = append(Row(nil), r...)
		}
		cp.tables[name] = nt
	}
	return cp
}

// Fingerprint returns a content hash of the full database state
// (schema + rows, order-independent across tables, order-dependent within
// a table as row order is part of engine state). Two replicas are
// consistent iff their fingerprints are equal.
func (e *Engine) Fingerprint() uint64 {
	h := fnv.New64a()
	for _, name := range e.Tables() {
		t := e.tables[name]
		h.Write([]byte("table:" + name))
		for _, c := range t.Columns {
			h.Write([]byte(c.Name + ":" + c.Type.String()))
		}
		for _, r := range t.Rows {
			for _, v := range r {
				writeValue(h, v)
			}
			h.Write([]byte{0xFF})
		}
	}
	return h.Sum64()
}

func writeValue(h interface{ Write([]byte) (int, error) }, v Value) {
	switch x := v.(type) {
	case nil:
		h.Write([]byte("N"))
	case int64:
		h.Write([]byte("i" + strconv.FormatInt(x, 10)))
	case float64:
		h.Write([]byte("f" + strconv.FormatFloat(x, 'g', -1, 64)))
	case string:
		h.Write([]byte("s" + x))
	}
	h.Write([]byte{0})
}

// RowCount returns the number of rows in a table (0 if absent).
func (e *Engine) RowCount(table string) int {
	if t, ok := e.tables[table]; ok {
		return len(t.Rows)
	}
	return 0
}
