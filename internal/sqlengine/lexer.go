// Package sqlengine implements the in-memory relational engine that stands
// in for MySQL 4.0 in this reproduction. It executes a practical SQL
// subset (CREATE TABLE / DROP TABLE / INSERT / SELECT / UPDATE / DELETE
// with WHERE, ORDER BY and LIMIT) over typed tables.
//
// The engine exists because the paper's C-JDBC layer keeps database
// replicas consistent by *logging write-request strings* and replaying
// them on a stale replica before activation (§4.1). Testing that protocol
// honestly requires real statement execution and state comparison, which
// Snapshot and Fingerprint provide.
package sqlengine

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , = < > <= >= != <> * .
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		case unicode.IsDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case strings.ContainsRune("(),=*.", rune(c)):
			l.emit(tokSymbol, string(c))
			l.pos++
		case c == '<' || c == '>' || c == '!':
			start := l.pos
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '=' || (c == '<' && l.src[l.pos] == '>')) {
				l.pos++
			}
			sym := l.src[start:l.pos]
			if sym == "!" {
				return nil, fmt.Errorf("sql: stray '!' at %d", start)
			}
			l.emit(tokSymbol, sym)
		case c == ';':
			l.pos++ // trailing statement separator is tolerated
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
		}
	}
	l.emit(tokEOF, "")
	return l.tokens, nil
}

func (l *lexer) emit(k tokenKind, text string) {
	l.tokens = append(l.tokens, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			l.pos++
		} else {
			break
		}
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
		} else if c == '.' && !seenDot {
			seenDot = true
			l.pos++
		} else {
			break
		}
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote, as in standard SQL.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string starting at %d", start)
}

// QuoteString renders a Go string as a SQL string literal.
func QuoteString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
