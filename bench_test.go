package jade

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (§5), plus the ablation studies DESIGN.md calls out.
// Each benchmark performs the full experiment per iteration (a complete
// ~2400-virtual-second cluster run for the figures) and prints the
// regenerated figure/table once, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Absolute numbers come from the
// simulated substrate; the shapes (who wins, by what factor, where the
// reconfigurations fall) are the reproduction targets — see
// EXPERIMENTS.md for the paper-vs-measured record.

import (
	"fmt"
	"sync"
	"testing"
)

// benchSeed keeps every benchmark on the same deterministic trajectory.
const benchSeed = 1

var printOnce sync.Map

// printFirst prints a regenerated artifact once per benchmark name.
func printFirst(name, artifact string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", name, artifact)
	}
}

func runPaper(b *testing.B) *PaperRuns {
	b.Helper()
	pr, err := RunPaperScenario(benchSeed, 1)
	if err != nil {
		b.Fatal(err)
	}
	return pr
}

// BenchmarkFigure4Reconfiguration regenerates the qualitative scenario of
// §5.1/Fig. 4: rebinding Apache1 from Tomcat1 to Tomcat2 as four
// management-layer operations, with the worker.properties rewrite hidden
// in the wrapper.
func BenchmarkFigure4Reconfiguration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := Figure4(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("Figure 4 (qualitative reconfiguration)", out)
	}
}

// BenchmarkFigure5ReplicaCounts regenerates Fig. 5: the dynamically
// adjusted number of replicas per tier under the ramp workload.
func BenchmarkFigure5ReplicaCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pr := runPaper(b)
		printFirst("Figure 5", pr.Figure5())
		b.ReportMetric(pr.Managed.DB.Replicas.Max(), "peak-db-replicas")
		b.ReportMetric(pr.Managed.App.Replicas.Max(), "peak-app-replicas")
		b.ReportMetric(float64(pr.Managed.Reconfigurations), "reconfigurations")
	}
}

// BenchmarkFigure6DatabaseTier regenerates Fig. 6: the database tier's
// CPU behaviour (moving average vs thresholds, managed vs static).
func BenchmarkFigure6DatabaseTier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pr := runPaper(b)
		printFirst("Figure 6", pr.Figure6())
		b.ReportMetric(pr.Managed.DB.CPUSmoothed.Max(), "managed-db-cpu-peak")
		b.ReportMetric(pr.Unmanaged.DB.CPUSmoothed.Max(), "static-db-cpu-peak")
	}
}

// BenchmarkFigure7ApplicationTier regenerates Fig. 7: the application
// tier's CPU behaviour (the static run stays moderate because the
// saturated database throttles it).
func BenchmarkFigure7ApplicationTier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pr := runPaper(b)
		printFirst("Figure 7", pr.Figure7())
		b.ReportMetric(pr.Managed.App.CPUSmoothed.Max(), "managed-app-cpu-peak")
		b.ReportMetric(pr.Unmanaged.App.CPUSmoothed.Max(), "static-app-cpu-peak")
	}
}

// BenchmarkFigure8LatencyWithoutJade regenerates Fig. 8: client response
// time without Jade diverges as the static configuration saturates and
// thrashes (paper: 10.42 s average).
func BenchmarkFigure8LatencyWithoutJade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pr := runPaper(b)
		printFirst("Figure 8", pr.Figure8())
		s := pr.Unmanaged.Stats.LatencySummary()
		b.ReportMetric(s.Mean*1000, "mean-latency-ms")
		b.ReportMetric(s.Max*1000, "max-latency-ms")
	}
}

// BenchmarkFigure9LatencyWithJade regenerates Fig. 9: client response
// time with Jade stays stable across the whole ramp (paper: ~590 ms
// average).
func BenchmarkFigure9LatencyWithJade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pr := runPaper(b)
		printFirst("Figure 9", pr.Figure9())
		printFirst("Scenario summary", pr.Summary())
		s := pr.Managed.Stats.LatencySummary()
		b.ReportMetric(s.Mean*1000, "mean-latency-ms")
		b.ReportMetric(s.Max*1000, "max-latency-ms")
	}
}

// BenchmarkTable1Intrusivity regenerates Table 1: Jade's overhead at a
// medium steady workload with no reconfigurations (paper: 12 vs 12 req/s,
// 89 vs 87 ms, 12.74 vs 12.42 % CPU, 20.1 vs 17.5 % memory).
func BenchmarkTable1Intrusivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunTable1(benchSeed, 600)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("Table 1", res.Render())
		b.ReportMetric(res.With.CPUPercent-res.Without.CPUPercent, "cpu-overhead-points")
		b.ReportMetric(res.With.MemPercent-res.Without.MemPercent, "mem-overhead-points")
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationNoMovingAverage quantifies what the temporal moving
// average buys: raw per-second CPU samples versus the paper's 60/90 s
// windows.
func BenchmarkAblationNoMovingAverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunAblationSmoothing(benchSeed, 2)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("Ablation: moving average", RenderAblation("Sensor smoothing", rows))
		b.ReportMetric(float64(rows[0].Reconfigurations), "reconfigs-unsmoothed")
		b.ReportMetric(float64(rows[len(rows)-1].Reconfigurations), "reconfigs-paper")
	}
}

// BenchmarkAblationNoInhibition quantifies the one-minute
// post-reconfiguration inhibition window.
func BenchmarkAblationNoInhibition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunAblationInhibition(benchSeed, 2)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("Ablation: inhibition window", RenderAblation("Reconfiguration inhibition", rows))
		b.ReportMetric(float64(rows[0].Reconfigurations), "reconfigs-no-inhibition")
		b.ReportMetric(float64(rows[1].Reconfigurations), "reconfigs-paper")
	}
}

// BenchmarkAblationThresholdSweep explores the min/max threshold space —
// the configuration the paper says was "determined manually with some
// benchmarks" and calls a key challenge.
func BenchmarkAblationThresholdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunAblationThresholds(benchSeed, 2)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("Ablation: thresholds", RenderAblation("Threshold sweep", rows))
	}
}

// BenchmarkAblationBalancerPolicy compares C-JDBC's read balancing
// policies over two static backends near saturation.
func BenchmarkAblationBalancerPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunAblationBalancerPolicy(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("Ablation: balancer policy", RenderAblation("C-JDBC read policy", rows))
	}
}

// BenchmarkAblationRecoveryLogReplay measures replica synchronization
// time versus the recovery-log delta replayed (§4.1).
func BenchmarkAblationRecoveryLogReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunAblationRecoveryLogReplay(benchSeed, []int{0, 250, 500, 1000, 2000})
		if err != nil {
			b.Fatal(err)
		}
		printFirst("Ablation: recovery-log replay", RenderReplay(rows))
		b.ReportMetric(rows[len(rows)-1].SyncSeconds, "sync-seconds-at-2000")
	}
}

// BenchmarkRecoveryUnderChurn exercises the self-recovery manager (the
// companion SRDS'05 system, Fig. 3 of this paper) under random node
// crashes (MTBF 300 s) and reports availability.
func BenchmarkRecoveryUnderChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultScenario(11, true)
		cfg.Recovery = true
		cfg.MTBFSeconds = 300
		cfg.Profile = ConstantProfile{Clients: 120, Length: 1800}
		r, err := RunScenario(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total := float64(r.Stats.Completed + r.Stats.Failed)
		availability := float64(r.Stats.Completed) / total
		printFirst("Recovery under churn", fmt.Sprintf(
			"crashes=%d repairs=%d completed=%d failed=%d availability=%.4f",
			r.InjectedFailures, r.Repairs, r.Stats.Completed, r.Stats.Failed, availability))
		b.ReportMetric(availability, "availability")
		b.ReportMetric(float64(r.Repairs), "repairs")
	}
}

// BenchmarkScenarioThroughput measures the simulator itself: full
// managed evaluation runs per wall-clock second (the engine replays a
// ~2400-virtual-second cluster day per iteration).
func BenchmarkScenarioThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultScenario(benchSeed, true)
		cfg.Profile = RampProfile{Base: 80, Peak: 500, StepPerMinute: 105, HoldAtPeak: 24}
		if _, err := RunScenario(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
