package jade

import "fmt"

// AlertLatVariant is one fault mode's run of the alert-latency
// experiment (see RunAlertLatency).
type AlertLatVariant struct {
	Name string
	// FaultAt is the virtual time of the injection (absolute).
	FaultAt float64
	// PageAfter is how long after the fault the alert plane raised its
	// first page (-1: never paged).
	PageAfter float64
	// PageComponent is the component the first page named.
	PageComponent string
	// Suspect is the causal suspect of the first incident.
	Suspect string
	// PhiAfter is how long after the fault the φ-accrual detector first
	// suspected anyone (-1: never — the definition of a gray failure).
	PhiAfter float64
	// Suspicions is the detector's total suspect-transition count.
	Suspicions uint64
	Result     *ScenarioResult
}

// AlertLatencyScenario returns the alert-latency experiment's
// configuration for one fault mode. Both modes start from the PR-6
// gray-failure scenario (round-robin, so nothing routes around the
// fault) with the simulated network enabled and the φ detector armed in
// monitor-only mode — detector and alert plane watch the same run
// side by side, and neither repairs anything.
//
//   - "gray":  the original schedule — tomcat2 crawls at ~1/16 speed and
//     mysql2 is moderately slowed, but heartbeats stay CPU-free, so φ
//     never fires and only the alert plane can see the failure.
//   - "crash": tomcat2's node dies outright at the same instant, the
//     case classic failure detection was built for — both φ and the
//     alert plane must fire.
func AlertLatencyScenario(seed int64, fault string, quick bool) ScenarioConfig {
	cfg := GrayFailureScenario(seed, "round-robin", quick)
	cfg.Net.Enabled = true
	cfg.Monitor = true
	if fault == "crash" {
		cfg.Chaos = ChaosSchedule{{At: alertLatFaultAt, Kind: ChaosCrash, Target: "tomcat2"}}
	}
	return cfg
}

// alertLatFaultAt is when (relative to workload start) both fault modes
// strike — the gray schedule in GrayFailureScenario uses the same
// instant.
const alertLatFaultAt = 20.0

// alertLatPageBound is the virtual-time window (seconds after the
// fault) within which the alert plane must page on the gray-degraded
// replica. Generous against the actual ~15-25 s the skew rule needs
// (two 5 s evaluation ticks once the reservoirs warm), tight against
// the 100+ s a slow-window-only burn alert would take.
const alertLatPageBound = 120.0

// RunAlertLatency measures virtual-time-to-first-page of the alerting
// plane against the φ-accrual failure detector on the same faults. The
// experiment is self-checking: it errors unless (gray) the alert plane
// pages within alertLatPageBound of the fault, names tomcat2, and φ
// records zero suspicions; and (crash) both the detector and the alert
// plane fire on the dead replica. quick shrinks the runs for smoke
// tests; variants fan out over Parallelism() workers and results are
// deterministic per seed regardless of the fan-out width.
func RunAlertLatency(seed int64, quick bool) ([]AlertLatVariant, string, error) {
	variants := []AlertLatVariant{{Name: "gray"}, {Name: "crash"}}
	errs := make([]error, len(variants))
	_ = forEachPar(len(variants), func(i int) error {
		r, err := RunScenario(AlertLatencyScenario(seed, variants[i].Name, quick))
		if err != nil {
			errs[i] = fmt.Errorf("alertlat %q: %w", variants[i].Name, err)
			return errs[i]
		}
		v := &variants[i]
		v.Result = r
		v.FaultAt = r.WorkloadStart + alertLatFaultAt
		v.PageAfter, v.PhiAfter = -1, -1
		if t := r.Alerts.FirstPageTime(); t >= 0 {
			v.PageAfter = t - v.FaultAt
		}
		if a := r.Alerts.FirstPage(); a != nil {
			v.PageComponent = a.Component
		}
		if incs := r.Alerts.Incidents(); len(incs) > 0 {
			v.Suspect = incs[0].Suspect
		}
		if t := r.Alerts.FirstContextTime("detector.suspect"); t >= 0 {
			v.PhiAfter = t - v.FaultAt
		}
		if r.Detector != nil {
			v.Suspicions = r.Detector.Suspicions
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, "", err
		}
	}

	for _, v := range variants {
		if viol := v.Result.InvariantViolation; viol != nil {
			return nil, "", fmt.Errorf("alertlat %q: invariant %q violated: %s", v.Name, viol.Checker, viol.Detail)
		}
	}
	gray, crash := &variants[0], &variants[1]
	if gray.Suspicions != 0 || gray.PhiAfter >= 0 {
		return nil, "", fmt.Errorf("alertlat gray: φ detector suspected a replica (%d suspicions) — the fault is not gray", gray.Suspicions)
	}
	if gray.PageAfter < 0 {
		return nil, "", fmt.Errorf("alertlat gray: alert plane never paged on the degraded replica")
	}
	if gray.PageAfter > alertLatPageBound {
		return nil, "", fmt.Errorf("alertlat gray: first page %.1f s after the fault, want <= %.0f s", gray.PageAfter, alertLatPageBound)
	}
	if gray.PageComponent != "tomcat2" || gray.Suspect != "tomcat2" {
		return nil, "", fmt.Errorf("alertlat gray: paged %q / suspected %q, want tomcat2 for both", gray.PageComponent, gray.Suspect)
	}
	if crash.Suspicions == 0 || crash.PhiAfter < 0 {
		return nil, "", fmt.Errorf("alertlat crash: φ detector never suspected the dead replica")
	}
	if crash.PageAfter < 0 {
		return nil, "", fmt.Errorf("alertlat crash: alert plane never paged on the dead replica")
	}

	title := "Alert latency vs φ-accrual detection (fault at t+20 s, constant 60 clients, 240 s)"
	if quick {
		title = "Alert latency vs φ-accrual detection (fault at t+20 s, constant 40 clients, 120 s, quick)"
	}
	tb := &TextTable{
		Title:   title,
		Headers: []string{"fault", "first page (s after fault)", "paged", "incident suspect", "φ first suspicion (s)", "φ suspicions", "p99 (s)", "completed", "failed"},
	}
	fmtAfter := func(v float64) string {
		if v < 0 {
			return "never"
		}
		return fmt.Sprintf("%.1f", v)
	}
	for _, v := range variants {
		r := v.Result
		tb.AddRow(v.Name,
			fmtAfter(v.PageAfter),
			orNone(v.PageComponent),
			orNone(v.Suspect),
			fmtAfter(v.PhiAfter),
			fmt.Sprintf("%d", v.Suspicions),
			fmt.Sprintf("%.3f", r.RequestLatency.Quantile(0.99)),
			fmt.Sprintf("%d", r.Stats.Completed),
			fmt.Sprintf("%d", r.Stats.Failed))
	}
	return variants, tb.Render(), nil
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
