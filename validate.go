package jade

import (
	"fmt"
	"strings"
)

// FieldError locates one validation failure by the JSON field path of
// the offending knob (e.g. "sizing.app.max: must be > sizing.app.min").
// The same errors flow through every validation surface: Spec.Validate,
// jadectl -config, and the admin /config POST 400 body.
type FieldError struct {
	// Path is the JSON field path within the Spec, dot-joined
	// ("alerting.fast_window_seconds", "faults.chaos[2].patch").
	Path string `json:"path"`
	// Msg states the constraint the value violates.
	Msg string `json:"message"`
}

// Error implements error.
func (e FieldError) Error() string { return e.Path + ": " + e.Msg }

// ValidationError aggregates every FieldError found in one validation
// pass, so a config file with three bad knobs reports all three at once
// instead of failing one knob per run.
type ValidationError struct {
	Fields []FieldError `json:"fields"`
}

// Error implements error: one line per field.
func (e *ValidationError) Error() string {
	if e == nil || len(e.Fields) == 0 {
		return "jade: invalid spec"
	}
	parts := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		parts[i] = f.Error()
	}
	return "jade: invalid spec: " + strings.Join(parts, "; ")
}

// addf appends one field error.
func (e *ValidationError) addf(path, format string, args ...any) {
	e.Fields = append(e.Fields, FieldError{Path: path, Msg: fmt.Sprintf(format, args...)})
}

// or returns nil when no field failed, the aggregate otherwise.
func (e *ValidationError) or() error {
	if len(e.Fields) == 0 {
		return nil
	}
	return e
}

// AsValidationError unwraps err into its field errors. Flat errors (IO,
// JSON syntax) come back as a single error-level FieldError with an
// empty path, so callers can render uniformly.
func AsValidationError(err error) []FieldError {
	if err == nil {
		return nil
	}
	if ve, ok := err.(*ValidationError); ok {
		return ve.Fields
	}
	if fe, ok := err.(FieldError); ok {
		return []FieldError{fe}
	}
	return []FieldError{{Msg: err.Error()}}
}
