package jade

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestAlertLatencyExperiment runs the self-checking flagship experiment:
// on the gray fault the alert plane must page within the bound and name
// tomcat2 while the φ detector stays silent; on the crash both fire.
// RunAlertLatency errors on any of those conditions, so most assertions
// live inside it — this re-checks the headline numbers from outside.
func TestAlertLatencyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("two full scenario runs")
	}
	variants, table, err := RunAlertLatency(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 2 || !strings.Contains(table, "tomcat2") {
		t.Fatalf("table:\n%s", table)
	}
	gray, crash := variants[0], variants[1]
	if gray.Name != "gray" || crash.Name != "crash" {
		t.Fatalf("variant order: %q, %q", gray.Name, crash.Name)
	}
	if gray.PageAfter < 0 || gray.PageAfter > 120 || gray.PageComponent != "tomcat2" {
		t.Fatalf("gray: page %.1fs after fault on %q", gray.PageAfter, gray.PageComponent)
	}
	if gray.Suspicions != 0 {
		t.Fatalf("gray: φ suspected %d times", gray.Suspicions)
	}
	if crash.PhiAfter < 0 || crash.PageAfter < 0 {
		t.Fatalf("crash: φ at %.1fs, page at %.1fs — both must fire", crash.PhiAfter, crash.PageAfter)
	}
	// The paging alert plane and the φ detector watched the same run:
	// the crash incident must blame the dead replica.
	if crash.Suspect != "tomcat2" {
		t.Fatalf("crash: incident suspect %q, want tomcat2", crash.Suspect)
	}
}

// TestAlertArtifactDeterminismSweep: over 20 seeds, two same-seed runs of
// the quick gray alert scenario must export byte-identical alerts.jsonl
// and incidents.json — the alert plane is a pure function of the
// trajectory, and the trajectory is a pure function of the seed.
func TestAlertArtifactDeterminismSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("20-seed sweep")
	}
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			var jsonl, incidents [2][]byte
			for i := 0; i < 2; i++ {
				r, err := RunScenario(AlertLatencyScenario(seed, "gray", true))
				if err != nil {
					t.Fatal(err)
				}
				jsonl[i] = r.Alerts.AlertsJSONL()
				incidents[i] = r.Alerts.IncidentsJSON(r.Platform.Eng.Now())
			}
			if len(jsonl[0]) == 0 {
				t.Fatal("empty alerts.jsonl (gray run should always alert)")
			}
			if !bytes.Equal(jsonl[0], jsonl[1]) {
				t.Fatalf("alerts.jsonl differs between same-seed runs:\n%s\nvs\n%s", jsonl[0], jsonl[1])
			}
			if !bytes.Equal(incidents[0], incidents[1]) {
				t.Fatalf("incidents.json differs between same-seed runs")
			}
			if _, err := ValidateAlertsJSONL(jsonl[0]); err != nil {
				t.Fatalf("alerts.jsonl invalid: %v", err)
			}
			if err := ValidateIncidentsJSON(incidents[0]); err != nil {
				t.Fatalf("incidents.json invalid: %v", err)
			}
		})
	}
}

// TestAlertingDisabledSameTrajectory: the alert ticker runs whether or
// not rules evaluate, and rules only read existing streams — so a run
// with alerting disabled must process exactly the same events and serve
// an empty alert page, not a different simulation.
func TestAlertingDisabledSameTrajectory(t *testing.T) {
	run := func(disabled bool) *ScenarioResult {
		cfg := GrayFailureScenario(5, "round-robin", true)
		cfg.Alerting.Disabled = disabled
		r, err := RunScenario(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	on, off := run(false), run(true)
	if p1, p2 := on.Platform.Eng.Processed(), off.Platform.Eng.Processed(); p1 != p2 {
		t.Fatalf("alerting switch changed the event schedule: %d vs %d events", p1, p2)
	}
	if on.Stats.Completed != off.Stats.Completed || on.Stats.Failed != off.Stats.Failed {
		t.Fatal("alerting switch changed request outcomes")
	}
	if len(on.Alerts.Alerts()) == 0 {
		t.Fatal("enabled run fired no alerts on the gray scenario")
	}
	if len(off.Alerts.Alerts()) != 0 {
		t.Fatal("disabled run fired alerts")
	}
}

// TestHealthzReportsDegraded: a run whose SLO cannot be met must flip
// /healthz to "degraded" and name the burning objective, while a healthy
// run stays "ok". Uses the served page after the run (the final
// published snapshot).
func TestHealthzReportsDegraded(t *testing.T) {
	fetch := func(impossible bool) string {
		cfg := DefaultScenario(21, true)
		cfg.Profile = ConstantProfile{Clients: 40, Length: 120}
		if impossible {
			slos := DefaultSLOs()
			for i := range slos {
				if slos[i].Name == "client-latency-p95" {
					slos[i].Max = 0.0001 // no run can meet 0.1 ms p95
				}
			}
			cfg.SLOs = slos
		}
		cfg.HTTPAddr = "127.0.0.1:0"
		r, err := RunScenario(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Admin.Close()
		resp, err := http.Get("http://" + r.AdminAddr + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	healthy := fetch(false)
	if !strings.Contains(healthy, `"status": "ok"`) {
		t.Fatalf("healthy run /healthz = %s", healthy)
	}
	degraded := fetch(true)
	if !strings.Contains(degraded, `"status": "degraded"`) {
		t.Fatalf("impossible-SLO run /healthz = %s", degraded)
	}
	if !strings.Contains(degraded, "client-latency-p95") {
		t.Fatalf("degraded /healthz does not name the burning objective: %s", degraded)
	}
}
