// Package jade is a reproduction of "Autonomic Management of Clustered
// Applications" (Bouchenak, De Palma, Hagimont, Taton — IEEE CLUSTER
// 2006): the Jade middleware for autonomic management of legacy
// distributed software, evaluated on a self-sizing clustered J2EE
// application.
//
// The package is a facade over the implementation packages:
//
//   - internal/fractal — the Fractal component model (components,
//     interfaces, bindings, attribute/binding/content/lifecycle
//     controllers);
//   - internal/legacy, internal/config — simulated legacy servers
//     (Apache, Tomcat, MySQL) configured exclusively through their
//     proprietary files (httpd.conf, server.xml, my.cnf,
//     worker.properties);
//   - internal/cjdbc, internal/plb, internal/l4 — the clustering
//     middleware (C-JDBC with its recovery log, the PLB application-tier
//     balancer, the L4 front-end switch);
//   - internal/core — Jade itself: wrappers, the Software Installation
//     Service, the ADL deployer, the control-loop framework, the
//     self-optimization and self-recovery managers;
//   - internal/rubis — the RUBiS auction-site workload (26 interactions,
//     client emulator);
//   - internal/netsim — the simulated network substrate: per-link
//     latency/jitter/loss, injectable partitions, tier RPC budgets and
//     the φ-accrual heartbeat failure detector;
//   - internal/invariant, internal/trace, internal/obs — invariant
//     checking with chaos schedules, the causal telemetry bus, and the
//     deterministic metrics registry;
//   - internal/sim, internal/cluster, internal/metrics, internal/report —
//     the discrete-event engine, the simulated node pool, and the
//     measurement/reporting substrate.
//
// Quick start:
//
//	p := jade.NewPlatform(jade.DefaultPlatformOptions())
//	db, _ := jade.DefaultDataset().InitialDatabase(1)
//	p.RegisterDump("rubis", db)
//	def, _ := jade.ParseADL(jade.ThreeTierADL)
//	p.Deploy(def, func(d *jade.Deployment, err error) { ... })
//	p.Eng.Run()
//
// The experiment harness (scenario.go, experiments.go) regenerates every
// table and figure of the paper's evaluation; see EXPERIMENTS.md.
package jade

import (
	"jade/internal/adl"
	"jade/internal/cluster"
	"jade/internal/core"
	"jade/internal/fluid"
	"jade/internal/fractal"
	"jade/internal/legacy"
	"jade/internal/metrics"
	"jade/internal/netsim"
	"jade/internal/obs"
	"jade/internal/obs/alert"
	"jade/internal/obs/attrib"
	"jade/internal/report"
	"jade/internal/rubis"
	"jade/internal/selector"
	"jade/internal/sim"
	"jade/internal/trace"
)

// Re-exported core types: the platform, deployment and manager surface.
type (
	// Platform is a Jade instance managing one simulated cluster.
	Platform = core.Platform
	// PlatformOptions configures a Platform.
	PlatformOptions = core.Options
	// Deployment is an application deployed from an ADL description.
	Deployment = core.Deployment
	// Wrapper is the management contract of wrapped legacy software.
	Wrapper = core.Wrapper
	// SizingManager is a deployed self-optimization manager.
	SizingManager = core.SizingManager
	// SizingConfig parameterizes a self-optimization manager.
	SizingConfig = core.SizingConfig
	// RecoveryManager is the self-recovery manager.
	RecoveryManager = core.RecoveryManager
	// AppTier is the application-tier actuator.
	AppTier = core.AppTier
	// DBTier is the database-tier actuator.
	DBTier = core.DBTier
	// TierActuator is the uniform resize surface of a replicated tier.
	TierActuator = core.TierActuator
	// ControlLoop binds a sensor to a reactor at a fixed period.
	ControlLoop = core.ControlLoop
	// Sensor observes the managed system.
	Sensor = core.Sensor
	// Reactor decides and actuates.
	Reactor = core.Reactor
	// CPUSensor is the spatial+temporal CPU probe.
	CPUSensor = core.CPUSensor
	// Inhibitor serializes reconfigurations across loops.
	Inhibitor = core.Inhibitor
	// InstallService is the Software Installation Service.
	InstallService = core.InstallService
	// Arbiter coordinates conflicting autonomic policies (the paper's
	// future-work arbitration manager).
	Arbiter = core.Arbiter
	// AdaptiveTuner dynamically adjusts a reactor's thresholds from the
	// observed response time (the paper's future-work incremental
	// parameter setting).
	AdaptiveTuner = core.AdaptiveTuner
	// ThresholdReactor is the paper's threshold decision logic.
	ThresholdReactor = core.ThresholdReactor
	// ResponseTimeSensor observes client-perceived latency.
	ResponseTimeSensor = core.ResponseTimeSensor
	// RoutingConfig names the backend-selection policy of each balancing
	// tier (L4 switch, PLB, C-JDBC reads); see RoutingPolicies for the
	// accepted spellings.
	RoutingConfig = core.RoutingConfig
)

// RoutingPolicies lists the accepted routing policy spellings:
// round-robin, weighted-round-robin, least-pending, balanced and
// rendezvous.
func RoutingPolicies() []string { return selector.PolicyNames() }

// RoutingPolicy is one backend-selection policy identifier.
type RoutingPolicy = selector.Policy

// ParseRoutingPolicy resolves one routing policy spelling, erroring on
// unknown names (the validation layer and live /config patches share
// it).
func ParseRoutingPolicy(name string) (RoutingPolicy, error) { return selector.ParsePolicy(name) }

// NewArbiter returns a policy arbiter with the given quiet window.
func NewArbiter(quietSeconds float64) *Arbiter { return core.NewArbiter(quietSeconds) }

// NewControlLoop wires a sensor to a reactor at a fixed period, wrapped
// in its own management component.
func NewControlLoop(p *Platform, name string, period float64, sensor Sensor, reactor Reactor) (*ControlLoop, error) {
	return core.NewControlLoop(p, name, period, sensor, reactor)
}

// NewAdaptiveTuner builds a threshold tuner targeting a latency SLO.
func NewAdaptiveTuner(reactor *ThresholdReactor, readLatency func(now float64) (float64, bool), slo float64) *AdaptiveTuner {
	return core.NewAdaptiveTuner(reactor, readLatency, slo)
}

// Arbitration priorities for Arbiter.Request.
const (
	PriorityOptimization = core.PriorityOptimization
	PriorityRecovery     = core.PriorityRecovery
)

// Re-exported architecture description types.
type (
	// ADLDefinition is a parsed architecture description.
	ADLDefinition = adl.Definition
	// Component is a Fractal component.
	Component = fractal.Component
	// Interface is a Fractal interface.
	Interface = fractal.Interface
)

// Re-exported workload types.
type (
	// Dataset sizes the RUBiS database.
	Dataset = rubis.Dataset
	// Mix is a weighted RUBiS interaction mix.
	Mix = rubis.Mix
	// Emulator is the closed-loop client emulator.
	Emulator = rubis.Emulator
	// WorkloadStats gathers emulator measurements.
	WorkloadStats = rubis.Stats
	// RampProfile is the paper's ramp workload profile.
	RampProfile = rubis.RampProfile
	// ConstantProfile holds a fixed client population.
	ConstantProfile = rubis.ConstantProfile
	// Profile shapes the client population over time.
	Profile = rubis.Profile
	// SessionChain is the Markov session model over the 26 interactions.
	SessionChain = rubis.Chain
	// ScaledProfile drives a sampled fraction of another profile's
	// population (the discrete stream of fluid workload mode).
	ScaledProfile = rubis.ScaledProfile
	// FluidDemand is a mix's calibrated mean per-request resource
	// profile, the constants behind the fluid tier equations.
	FluidDemand = rubis.FluidDemand
	// FluidReport summarizes a fluid-mode run (ScenarioResult.Fluid).
	FluidReport = fluid.Report
	// FluidStationReport is one tier's aggregate fluid outcome.
	FluidStationReport = fluid.StationReport
	// LatencyAttribution is the per-request latency decomposition over a
	// run's traced span forest (ScenarioResult.Attribution).
	LatencyAttribution = attrib.Analysis
	// LatencyBudget is the aggregated per-interaction-class budget report
	// with critical-path blame (ScenarioResult.LatencyBudget).
	LatencyBudget = attrib.Report
	// LatencyBandBlame names the dominant tier/component of one
	// percentile band in a LatencyBudget's critical path.
	LatencyBandBlame = attrib.BandBlame
)

// LatencyBudgetSchema identifies the latency_budget.json artifact.
const LatencyBudgetSchema = attrib.BudgetSchema

// ParseLatencyBudget parses and validates a latency_budget.json
// artifact (jadectl diff reads run directories through it).
func ParseLatencyBudget(raw []byte) (*LatencyBudget, error) { return attrib.ParseReport(raw) }

// DefaultTransitions is the bidding-mix session graph for Markov-session
// emulation.
func DefaultTransitions() *SessionChain { return rubis.DefaultTransitions() }

// Re-exported measurement types.
type (
	// Series is an append-only time series.
	Series = metrics.Series
	// Summary holds order statistics of a sample set.
	Summary = metrics.Summary
	// Chart renders time series as ASCII plots.
	Chart = report.Chart
	// ChartSeries is one plotted series.
	ChartSeries = report.ChartSeries
	// HLine is a horizontal chart reference line.
	HLine = report.HLine
	// TextTable renders aligned text tables.
	TextTable = report.Table
	// Engine is the discrete-event simulation engine.
	Engine = sim.Engine
	// Node is one simulated cluster machine.
	Node = cluster.Node
	// WebRequest is one HTTP request flowing through the tiers.
	WebRequest = legacy.WebRequest
	// Query is one SQL request with its CPU demand.
	Query = legacy.Query
)

// Re-exported network and fault-injection types: scenarios can route all
// inter-tier calls and heartbeats over a deterministic simulated network
// (see internal/netsim) with per-link latency, jitter, loss and
// injectable partitions, replacing the recovery manager's failure oracle
// with a φ-accrual heartbeat detector that can be wrong.
type (
	// NetworkConfig enables and parameterizes the simulated network.
	NetworkConfig = netsim.Config
	// LinkConfig is one directed link's latency/jitter/loss model.
	LinkConfig = netsim.Link
	// RPCBudget is a tier call's timeout/retry/backoff budget.
	RPCBudget = netsim.RPCBudget
	// HeartbeatConfig parameterizes the φ-accrual failure detector.
	HeartbeatConfig = netsim.HeartbeatConfig
	// NetworkFabric is the message-level simulated network.
	NetworkFabric = netsim.Fabric
	// NetworkStats counts fabric traffic, drops and abandoned RPCs.
	NetworkStats = netsim.Stats
	// FailureDetector is the heartbeat suspicion detector.
	FailureDetector = netsim.Detector
	// DetectorStats counts suspicions, mistakes and heals.
	DetectorStats = netsim.DetectorStats
)

// Pseudo-endpoints of the simulated network: the client population and
// the Jade management node.
const (
	ClientEndpoint     = netsim.ClientEndpoint
	ManagementEndpoint = netsim.ManagementEndpoint
)

// ErrRPCTimeout marks a tier call abandoned after its retry budget.
var ErrRPCTimeout = netsim.ErrRPCTimeout

// Re-exported telemetry types: every platform carries a structured event
// bus recording management decisions as causal spans (see internal/trace).
type (
	// Tracer is the deterministic telemetry bus.
	Tracer = trace.Tracer
	// TraceID identifies one event or span on the bus.
	TraceID = trace.ID
	// TraceEvent is one instantaneous bus record.
	TraceEvent = trace.Event
	// TraceSpan is one interval with a causal parent.
	TraceSpan = trace.Span
	// TraceSpanNode is a node of the reconstructed span tree.
	TraceSpanNode = trace.SpanNode
)

// ValidateChromeTrace checks data against the Chrome trace-event schema
// and returns the number of trace events.
func ValidateChromeTrace(data []byte) (int, error) { return trace.ValidateChromeTrace(data) }

// ChromeTraceStats reads the retention counters embedded in a Chrome
// trace export (dropped spans, evicted events); ok is false when the
// file carries no jade_trace_stats metadata.
func ChromeTraceStats(data []byte) (droppedSpans, evictedEvents uint64, ok bool) {
	return trace.ChromeTraceStats(data)
}

// Re-exported observability types: every platform carries a deterministic
// metrics registry clocked on virtual time (see internal/obs), exposed
// through snapshot files and the live admin endpoint.
type (
	// MetricsRegistry is the platform's deterministic metrics registry.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time view of every registered series.
	MetricsSnapshot = obs.Snapshot
	// Histogram is a log-bucketed latency histogram with exact quantiles.
	Histogram = obs.Histogram
	// SLObjective is one service-level objective under evaluation.
	SLObjective = obs.Objective
	// SLObjectiveKind names an objective family.
	SLObjectiveKind = obs.ObjectiveKind
	// SLOReport is the post-run compliance report.
	SLOReport = obs.SLOReport
	// SLObjectiveReport is one objective's line in the report.
	SLObjectiveReport = obs.ObjectiveReport
	// AdminServer is the live introspection HTTP endpoint.
	AdminServer = obs.AdminServer
	// LoopStatus is a control loop's introspection document.
	LoopStatus = obs.LoopStatus
	// ComponentView is the JSON introspection view of a Fractal component.
	ComponentView = fractal.View
)

// Objective kinds for SLObjective.Kind.
const (
	SLOLatencyPercentile = obs.LatencyPercentile
	SLOAbandonRate       = obs.AbandonRate
	SLOCPUBand           = obs.CPUBand
)

// Unbounded is the NaN sentinel for an SLObjective bound that doesn't
// apply.
func Unbounded() float64 { return obs.Unbounded() }

// ValidatePrometheusText checks a page against the Prometheus text
// exposition format 0.0.4 and returns the number of samples.
func ValidatePrometheusText(page []byte) (int, error) { return obs.ValidatePrometheusText(page) }

// ValidateMetricsJSON checks a jade-metrics/v1 document and returns the
// number of series.
func ValidateMetricsJSON(doc []byte) (int, error) { return obs.ValidateMetricsJSON(doc) }

// ValidateComponentsJSON checks a jade-components/v1 document and returns
// the number of component nodes.
func ValidateComponentsJSON(doc []byte) (int, error) { return obs.ValidateComponentsJSON(doc) }

// Re-exported alerting types: the deterministic alerting plane layered on
// the observability stack (see internal/obs/alert) — SLO burn-rate rules,
// streaming anomaly detectors, and the incident correlation engine behind
// /alerts, /incidents, alerts.jsonl and incidents.json.
type (
	// AlertEngine is a run's alerting plane (ScenarioResult.Alerts).
	AlertEngine = alert.Engine
	// AlertConfig tunes the alerting plane (ScenarioConfig.Alerting).
	AlertConfig = alert.Config
	// Alert is one fired (or resolved) alert instance.
	Alert = alert.Alert
	// AlertSeverity grades an alert (warn | page).
	AlertSeverity = alert.Severity
	// AlertTransition is one line of the alerts.jsonl stream.
	AlertTransition = alert.Transition
	// Incident is a set of correlated alerts with a causal timeline.
	Incident = alert.Incident
	// IncidentTimelineEntry is one causal step inside an incident.
	IncidentTimelineEntry = alert.TimelineEntry
)

// Alert severities.
const (
	AlertWarn = alert.SevWarn
	AlertPage = alert.SevPage
)

// ValidateAlertsJSONL checks an alerts.jsonl transition stream and
// returns the number of transitions.
func ValidateAlertsJSONL(data []byte) (int, error) { return alert.ValidateAlertsJSONL(data) }

// ValidateAlertsPage checks a jade-alerts/v1 document (/alerts).
func ValidateAlertsPage(doc []byte) error { return alert.ValidateAlertsPage(doc) }

// ValidateIncidentsJSON checks a jade-incidents/v1 document (/incidents,
// incidents.json).
func ValidateIncidentsJSON(doc []byte) error { return alert.ValidateIncidentsJSON(doc) }

// NewPlatform builds a platform with the standard wrapper registry.
func NewPlatform(opts PlatformOptions) *Platform { return core.NewPlatform(opts) }

// DefaultPlatformOptions mirrors the paper's 9-node testbed.
func DefaultPlatformOptions() PlatformOptions { return core.DefaultOptions() }

// ParseADL parses an XML architecture description.
func ParseADL(text string) (*ADLDefinition, error) { return adl.Parse(text) }

// DefaultDataset is the scaled-down RUBiS database.
func DefaultDataset() Dataset { return rubis.DefaultDataset() }

// BiddingMix is RUBiS's default read/write interaction mix.
func BiddingMix() *Mix { return rubis.BiddingMix() }

// BrowsingMix is the read-only interaction mix.
func BrowsingMix() *Mix { return rubis.BrowsingMix() }

// PaperRamp is the exact §5.2 workload: 80 clients, +21/minute to 500,
// then symmetric decrease.
func PaperRamp() RampProfile { return rubis.PaperRamp() }

// AppSizingDefaults mirrors the paper's application-tier control loop.
func AppSizingDefaults() SizingConfig { return core.AppSizingDefaults() }

// DBSizingDefaults mirrors the paper's database-tier control loop.
func DBSizingDefaults() SizingConfig { return core.DBSizingDefaults() }

// NewAppTier builds the application-tier actuator for a deployment.
func NewAppTier(p *Platform, d *Deployment, plbName, dbName string, replicas []string) (*AppTier, error) {
	return core.NewAppTier(p, d, plbName, dbName, replicas)
}

// NewDBTier builds the database-tier actuator for a deployment.
func NewDBTier(p *Platform, d *Deployment, cjdbcName string, replicas []string) (*DBTier, error) {
	return core.NewDBTier(p, d, cjdbcName, replicas)
}

// NewSizingManager assembles a self-optimization manager for one tier.
func NewSizingManager(p *Platform, name string, tier TierActuator, cfg SizingConfig, shared *Inhibitor) (*SizingManager, error) {
	return core.NewSizingManager(p, name, tier, cfg, shared)
}

// NewRecoveryManager assembles the self-recovery manager.
func NewRecoveryManager(p *Platform, name string, period float64, tiers ...core.RepairableTier) (*RecoveryManager, error) {
	return core.NewRecoveryManager(p, name, period, tiers...)
}

// NewEmulator creates a RUBiS client emulator against a front end.
func NewEmulator(eng *Engine, front legacy.HTTPHandler, mix *Mix, profile Profile, ds Dataset) *Emulator {
	return rubis.NewEmulator(eng, front, mix, profile, ds)
}

// ThreeTierADL is the paper's deployment: PLB in front of one Tomcat,
// C-JDBC in front of one MySQL holding the RUBiS dump.
const ThreeTierADL = `<?xml version="1.0"?>
<definition name="rubis-j2ee">
  <component name="plb1" wrapper="plb"/>
  <composite name="app-tier">
    <component name="tomcat1" wrapper="tomcat"/>
  </composite>
  <composite name="db-tier">
    <component name="cjdbc1" wrapper="cjdbc"/>
    <component name="mysql1" wrapper="mysql">
      <attribute name="dump" value="rubis"/>
    </component>
  </composite>
  <binding client="plb1.workers" server="tomcat1.http"/>
  <binding client="tomcat1.jdbc" server="cjdbc1.jdbc"/>
  <binding client="cjdbc1.backends" server="mysql1.sql"/>
</definition>
`

// FiveTierADL is the full Fig. 2 architecture: an L4 switch balancing
// two Apache replicas, each routing AJP traffic to both Tomcat replicas
// via mod_jk, over C-JDBC with two mirrored MySQL backends. It occupies
// eight of the default platform's nine nodes (the ninth hosted the Jade
// platform itself in the paper's testbed).
const FiveTierADL = `<?xml version="1.0"?>
<definition name="rubis-j2ee-full">
  <component name="l4" wrapper="l4"/>
  <composite name="web-tier">
    <component name="apache1" wrapper="apache"/>
    <component name="apache2" wrapper="apache"/>
  </composite>
  <composite name="app-tier">
    <component name="tomcat1" wrapper="tomcat"/>
    <component name="tomcat2" wrapper="tomcat"/>
  </composite>
  <composite name="db-tier">
    <component name="cjdbc1" wrapper="cjdbc"/>
    <component name="mysql1" wrapper="mysql">
      <attribute name="dump" value="rubis"/>
    </component>
    <component name="mysql2" wrapper="mysql">
      <attribute name="dump" value="rubis"/>
    </component>
  </composite>
  <binding client="l4.servers" server="apache1.http"/>
  <binding client="l4.servers" server="apache2.http"/>
  <binding client="apache1.ajp" server="tomcat1.ajp"/>
  <binding client="apache1.ajp" server="tomcat2.ajp"/>
  <binding client="apache2.ajp" server="tomcat1.ajp"/>
  <binding client="apache2.ajp" server="tomcat2.ajp"/>
  <binding client="tomcat1.jdbc" server="cjdbc1.jdbc"/>
  <binding client="tomcat2.jdbc" server="cjdbc1.jdbc"/>
  <binding client="cjdbc1.backends" server="mysql1.sql"/>
  <binding client="cjdbc1.backends" server="mysql2.sql"/>
</definition>
`
