module jade

go 1.22
