package jade

import (
	"errors"
	"fmt"

	"jade/internal/core"
	"jade/internal/legacy"
)

// AblationRow summarizes one ablation variant of the self-optimization
// design.
type AblationRow struct {
	Name             string
	MeanLatencyMS    float64
	MaxLatencyMS     float64
	Reconfigurations int
	NodeSeconds      float64
}

// RenderAblation formats ablation rows as a table.
func RenderAblation(title string, rows []AblationRow) string {
	t := &TextTable{Title: title, Headers: []string{"variant", "mean lat (ms)", "max lat (ms)", "reconfigs", "node-seconds"}}
	for _, r := range rows {
		t.AddRow(r.Name,
			fmt.Sprintf("%.0f", r.MeanLatencyMS),
			fmt.Sprintf("%.0f", r.MaxLatencyMS),
			fmt.Sprintf("%d", r.Reconfigurations),
			fmt.Sprintf("%.0f", r.NodeSeconds))
	}
	return t.Render()
}

func ablationRun(name string, seed int64, speedup float64, mutate func(*ScenarioConfig)) (AblationRow, error) {
	cfg := DefaultScenario(seed, true)
	cfg.Profile = RampProfile{Base: 80, Peak: 500, StepPerMinute: int(21 * speedup), HoldAtPeak: 120 / speedup}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := RunScenario(cfg)
	if err != nil {
		return AblationRow{}, fmt.Errorf("jade: ablation %s: %w", name, err)
	}
	s := r.Stats.LatencySummary()
	return AblationRow{
		Name:             name,
		MeanLatencyMS:    s.Mean * 1000,
		MaxLatencyMS:     s.Max * 1000,
		Reconfigurations: r.Reconfigurations,
		NodeSeconds:      r.NodeSeconds,
	}, nil
}

// RunAblationSmoothing compares the paper's temporal moving averages
// (60 s app / 90 s db) against raw per-second samples and an intermediate
// window. Without smoothing the thresholds see CPU noise and the loops
// reconfigure more often (§4.2: the moving average "removes artifacts
// characterizing the CPU consumption").
func RunAblationSmoothing(seed int64, speedup float64) ([]AblationRow, error) {
	variants := []struct {
		name    string
		app, db float64
	}{
		{"no smoothing (1 s)", 1, 1},
		{"short window (15 s)", 15, 15},
		{"paper windows (60/90 s)", 60, 90},
	}
	rows := make([]AblationRow, len(variants))
	err := forEachPar(len(variants), func(i int) error {
		v := variants[i]
		row, err := ablationRun(v.name, seed, speedup, func(cfg *ScenarioConfig) {
			cfg.AppSizing.Window = v.app
			cfg.DBSizing.Window = v.db
		})
		rows[i] = row
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RunAblationInhibition compares the paper's one-minute
// post-reconfiguration inhibition window against no inhibition. Without
// it, both loops can fire back-to-back on stale averages.
func RunAblationInhibition(seed int64, speedup float64) ([]AblationRow, error) {
	variants := []struct {
		name    string
		inhibit float64
	}{
		{"no inhibition", 0.001},
		{"paper inhibition (60 s)", 60},
	}
	rows := make([]AblationRow, len(variants))
	err := forEachPar(len(variants), func(i int) error {
		v := variants[i]
		row, err := ablationRun(v.name, seed, speedup, func(cfg *ScenarioConfig) {
			cfg.AppSizing.InhibitSeconds = v.inhibit
			cfg.DBSizing.InhibitSeconds = v.inhibit
		})
		rows[i] = row
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RunAblationThresholds sweeps the min/max CPU thresholds — the paper
// calls their manual determination "a key challenge of this manager"
// (§4.2). Tight thresholds trade extra reconfigurations for latency;
// loose thresholds under-provision.
func RunAblationThresholds(seed int64, speedup float64) ([]AblationRow, error) {
	pairs := []struct{ min, max float64 }{
		{0.20, 0.60},
		{0.35, 0.80}, // paper-calibrated
		{0.50, 0.90},
		{0.10, 0.95},
	}
	rows := make([]AblationRow, len(pairs))
	err := forEachPar(len(pairs), func(i int) error {
		pr := pairs[i]
		name := fmt.Sprintf("min=%.2f max=%.2f", pr.min, pr.max)
		row, err := ablationRun(name, seed, speedup, func(cfg *ScenarioConfig) {
			cfg.AppSizing.Min, cfg.AppSizing.Max = pr.min, pr.max
			cfg.DBSizing.Min, cfg.DBSizing.Max = pr.min, pr.max
		})
		rows[i] = row
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// twoBackendADL deploys two initial MySQL backends (for the balancer
// policy ablation) with an explicit read policy.
const twoBackendADL = `<?xml version="1.0"?>
<definition name="rubis-j2ee">
  <component name="plb1" wrapper="plb"/>
  <composite name="app-tier">
    <component name="tomcat1" wrapper="tomcat"/>
  </composite>
  <composite name="db-tier">
    <component name="cjdbc1" wrapper="cjdbc">
      <attribute name="read-policy" value="%s"/>
    </component>
    <component name="mysql1" wrapper="mysql"><attribute name="dump" value="rubis"/></component>
    <component name="mysql2" wrapper="mysql"><attribute name="dump" value="rubis"/></component>
  </composite>
  <binding client="plb1.workers" server="tomcat1.http"/>
  <binding client="tomcat1.jdbc" server="cjdbc1.jdbc"/>
  <binding client="cjdbc1.backends" server="mysql1.sql"/>
  <binding client="cjdbc1.backends" server="mysql2.sql"/>
</definition>
`

// RunAblationBalancerPolicy compares C-JDBC's read balancing policies
// (least-pending vs round-robin) over two static backends under a
// read-heavy constant load near saturation, where least-pending's
// queue awareness matters.
func RunAblationBalancerPolicy(seed int64) ([]AblationRow, error) {
	policies := []string{"least-pending", "round-robin"}
	rows := make([]AblationRow, len(policies))
	err := forEachPar(len(policies), func(i int) error {
		policy := policies[i]
		cfg := DefaultScenario(seed, false)
		cfg.ADL = fmt.Sprintf(twoBackendADL, policy)
		cfg.Mix = BrowsingMix()
		cfg.Profile = ConstantProfile{Clients: 420, Length: 400}
		r, err := RunScenario(cfg)
		if err != nil {
			return fmt.Errorf("jade: balancer ablation %s: %w", policy, err)
		}
		s := r.Stats.LatencySummary()
		rows[i] = AblationRow{
			Name:          policy,
			MeanLatencyMS: s.Mean * 1000,
			MaxLatencyMS:  s.Max * 1000,
			NodeSeconds:   r.NodeSeconds,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ReplayRow is one point of the recovery-log replay cost curve.
type ReplayRow struct {
	LogLength   int64
	SyncSeconds float64
}

// RunAblationRecoveryLogReplay measures the simulated time to bring a
// fresh database replica into the cluster as a function of the
// recovery-log delta it must replay (§4.1's synchronization protocol).
func RunAblationRecoveryLogReplay(seed int64, deltas []int) ([]ReplayRow, error) {
	rows := make([]ReplayRow, len(deltas))
	err := forEachPar(len(deltas), func(i int) error {
		row, err := replayLogRun(seed, deltas[i])
		rows[i] = row
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// replayLogRun measures one point of the replay cost curve on its own
// platform (each run is independent, so the curve fans out in parallel).
func replayLogRun(seed int64, delta int) (ReplayRow, error) {
	p := NewPlatform(PlatformOptions{Seed: seed, Nodes: 9})
	ds := Dataset{Regions: 3, Categories: 3, Users: 10, Items: 10, BidsPerItem: 1, CommentsPerUser: 1}
	dump, err := ds.InitialDatabase(seed)
	if err != nil {
		return ReplayRow{}, err
	}
	p.RegisterDump("rubis", dump)
	def, err := ParseADL(ThreeTierADL)
	if err != nil {
		return ReplayRow{}, err
	}
	var dep *Deployment
	derr := errors.New("jade: deployment did not complete")
	p.Deploy(def, func(d *Deployment, err error) { dep, derr = d, err })
	p.Eng.Run()
	if derr != nil {
		return ReplayRow{}, derr
	}
	cw := dep.MustComponent("cjdbc1").Content().(*core.CJDBCWrapper)
	// Snapshot now (index 0), then push the delta of writes that the
	// new replica will have to replay.
	for i := 0; i < delta; i++ {
		sql := fmt.Sprintf("INSERT INTO buy_now (id, buyer_id, item_id, qty, date) VALUES (%d, 1, 1, 1, %d)", i, i)
		cw.Controller().ExecSQL(legacy.Query{SQL: sql, Cost: 0.002}, func(err error) {
			if err != nil {
				derr = err
			}
		})
	}
	derr = nil
	p.Eng.Run()
	if derr != nil {
		return ReplayRow{}, derr
	}
	// Install a replica holding only the initial dump (log index 0),
	// so its synchronization replays exactly `delta` records. (The
	// DBTier actuator would snapshot an up-to-date backend instead —
	// this ablation quantifies what that optimization saves.)
	node, err := p.Pool.Allocate()
	if err != nil {
		return ReplayRow{}, err
	}
	comp, err := core.NewMySQLComponent(p, "mysql-sync", node)
	if err != nil {
		return ReplayRow{}, err
	}
	if err := comp.SetAttribute("dump", "rubis"); err != nil {
		return ReplayRow{}, err
	}
	serr := errors.New("jade: replica start did not complete")
	p.StartComponent(comp, func(err error) { serr = err })
	p.Eng.Run()
	if serr != nil {
		return ReplayRow{}, serr
	}
	t0 := p.Eng.Now()
	jerr := errors.New("jade: sync did not complete")
	err = cw.JoinBackend("mysql-sync", comp.Content().(*core.MySQLWrapper), 0,
		func(err error) { jerr = err })
	if err != nil {
		return ReplayRow{}, err
	}
	p.Eng.Run()
	if jerr != nil {
		return ReplayRow{}, jerr
	}
	row := ReplayRow{LogLength: int64(delta), SyncSeconds: p.Eng.Now() - t0}
	if !cw.Controller().CheckConsistency().Consistent {
		return ReplayRow{}, fmt.Errorf("jade: replicas diverged after replaying %d records", delta)
	}
	return row, nil
}

// RenderReplay formats the replay cost curve.
func RenderReplay(rows []ReplayRow) string {
	t := &TextTable{
		Title:   "Recovery-log replay cost (fresh replica synchronization)",
		Headers: []string{"log delta (writes)", "sync time (s)"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.LogLength), fmt.Sprintf("%.1f", r.SyncSeconds))
	}
	return t.Render()
}
