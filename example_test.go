package jade_test

import (
	"fmt"
	"log"

	"jade"
)

// ExampleParseADL validates the built-in three-tier architecture.
func ExampleParseADL() {
	def, err := jade.ParseADL(jade.ThreeTierADL)
	if err != nil {
		log.Fatal(err)
	}
	if err := def.Validate(nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println(def.Name, len(def.AllComponents()), "components", len(def.Bindings), "bindings")
	// Output: rubis-j2ee 4 components 3 bindings
}

// Example_deploy shows the full deployment round trip on a simulated
// cluster: parse, deploy, introspect.
func Example_deploy() {
	p := jade.NewPlatform(jade.DefaultPlatformOptions())
	db, err := jade.DefaultDataset().InitialDatabase(1)
	if err != nil {
		log.Fatal(err)
	}
	p.RegisterDump("rubis", db)
	def, err := jade.ParseADL(jade.ThreeTierADL)
	if err != nil {
		log.Fatal(err)
	}
	var dep *jade.Deployment
	p.Deploy(def, func(d *jade.Deployment, err error) {
		if err != nil {
			log.Fatal(err)
		}
		dep = d
	})
	p.Eng.Run()
	for _, name := range dep.ComponentNames() {
		node, _ := dep.NodeOf(name)
		fmt.Println(name, "on", node.Name())
	}
	// Output:
	// cjdbc1 on node3
	// mysql1 on node4
	// plb1 on node1
	// tomcat1 on node2
}

// Example_selfSizing arms the paper's self-optimization manager and lets
// it resize the application tier under synthetic overload.
func Example_selfSizing() {
	p := jade.NewPlatform(jade.DefaultPlatformOptions())
	db, _ := jade.DefaultDataset().InitialDatabase(1)
	p.RegisterDump("rubis", db)
	def, _ := jade.ParseADL(jade.ThreeTierADL)
	var dep *jade.Deployment
	p.Deploy(def, func(d *jade.Deployment, err error) {
		if err != nil {
			log.Fatal(err)
		}
		dep = d
	})
	p.Eng.Run()

	tier, err := jade.NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		log.Fatal(err)
	}
	cfg := jade.AppSizingDefaults()
	cfg.Window = 10
	mgr, err := jade.NewSizingManager(p, "self-optimization-app", tier, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.Loop.Start(); err != nil {
		log.Fatal(err)
	}

	// Saturate the single Tomcat.
	front, _ := dep.FrontEnd()
	tk := p.Eng.Every(1.0/95, "load", func(now float64) {
		front.HandleHTTP(&jade.WebRequest{WebCost: 0.0001, AppCost: 0.01}, func(error) {})
	})
	p.Eng.RunUntil(p.Eng.Now() + 120)
	tk.Stop()
	fmt.Println("replicas after overload:", tier.ReplicaCount())
	// Output: replicas after overload: 2
}

// ExampleRunSpec demonstrates the grouped configuration API and the
// simulated network: heartbeats from the Tomcat replica to the Jade
// management node are partitioned mid-run, the φ-accrual detector
// wrongly suspects the live replica, and the self-recovery manager
// repairs it — legally, as the double-repair invariant confirms the
// discarded survivor was really terminated.
func ExampleRunSpec() {
	spec := jade.DefaultSpec(1, true)
	spec.Recovery = true
	spec.Workload.Profile = jade.ProfileSpec{Kind: "constant", Clients: 40, DurationSeconds: 240}
	spec.Checks.Invariants = true
	spec.Faults.Network.Enabled = true
	spec.Faults.Partition = []jade.PartitionSpec{
		{At: 60, DurationSeconds: 30, A: []string{"tomcat1"}, B: []string{jade.ManagementEndpoint}},
	}
	r, err := jade.RunSpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("false-positive suspicions:", r.Detector.FalsePositives)
	fmt.Println("repairs confirmed legal:", r.RepairsConfirmedLegal)
	fmt.Println("invariant violation:", r.InvariantViolation)
	// Output:
	// false-positive suspicions: 2
	// repairs confirmed legal: 2
	// invariant violation: <nil>
}

// ExampleRunScenario runs a short managed evaluation and reports the
// outcome (deterministic per seed).
func ExampleRunScenario() {
	cfg := jade.DefaultScenario(1, true)
	cfg.Profile = jade.ConstantProfile{Clients: 60, Length: 120}
	r, err := jade.RunScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("failed requests:", r.Stats.Failed)
	fmt.Println("reconfigurations:", r.Reconfigurations)
	// Output:
	// failed requests: 0
	// reconfigurations: 0
}
